// Cluster-level tests for the storage-aware service model: an LSM run
// conserves work, reproduces bit-for-bit, actually exercises the store state
// machine (counters move), and survives continuous invariant audits — and
// the synthetic mode is provably inert to every LSM knob.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig lsm_config() {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.6;
  cfg.fanout = make_uniform_int(1, 8);
  cfg.policy = sched::Policy::kDas;
  cfg.seed = 7;
  cfg.store_model = StoreModel::kLsm;
  // A third of the traffic writes, so memtables fill and compaction runs
  // inside a short test window (the default 64KB memtable would be too calm).
  cfg.write_fraction = 0.3;
  cfg.lsm.memtable_bytes = 8.0 * 1024.0;
  cfg.lsm.stall_debt_bytes = 32.0 * 1024.0;
  return cfg;
}

RunWindow small_window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 30.0 * kMillisecond;
  return w;
}

TEST(StoreModelCluster, LsmRunConservesRequestsAndOps) {
  const ExperimentResult r = run_experiment(lsm_config(), small_window());
  EXPECT_GT(r.requests_generated, 0u);
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.ops_generated, r.ops_completed);
  EXPECT_GT(r.requests_measured, 0u);
}

TEST(StoreModelCluster, LsmCountersActuallyMove) {
  const ExperimentResult r = run_experiment(lsm_config(), small_window());
  // The configuration is tuned so every storage phenomenon occurs at least
  // once; zeros here mean the model is wired in but dead.
  EXPECT_GT(r.store_flushes, 0u);
  EXPECT_GT(r.store_compactions, 0u);
  EXPECT_GT(r.store_memtable_hits, 0u);
  EXPECT_GT(r.store_level_reads, 0u);
  EXPECT_GT(r.store_compaction_busy_us, 0.0);
}

TEST(StoreModelCluster, LsmRunIsBitIdentical) {
  const ExperimentResult a = run_experiment(lsm_config(), small_window());
  const ExperimentResult b = run_experiment(lsm_config(), small_window());
  EXPECT_EQ(a.requests_generated, b.requests_generated);
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_DOUBLE_EQ(a.rct.p999, b.rct.p999);
  EXPECT_EQ(a.store_flushes, b.store_flushes);
  EXPECT_EQ(a.store_compactions, b.store_compactions);
  EXPECT_DOUBLE_EQ(a.store_compaction_busy_us, b.store_compaction_busy_us);
}

TEST(StoreModelCluster, LsmSurvivesContinuousAudits) {
  auto cfg = lsm_config();
  cfg.audit_every_events = 64;  // audits the servers AND their store models
  const ExperimentResult r = run_experiment(cfg, small_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

TEST(StoreModelCluster, InterferenceOffIsFasterUnderWriteLoad) {
  auto noisy = lsm_config();
  // Slow the background drain so debt stacks past the (lowered) stall
  // threshold — the default drain clears each 8KB run long before the next.
  noisy.lsm.compaction_bytes_per_us = 0.5;
  noisy.lsm.stall_debt_bytes = 16.0 * 1024.0;
  auto quiet = noisy;
  quiet.lsm.interference = false;
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 100.0 * kMillisecond;
  const ExperimentResult with_dips = run_experiment(noisy, w);
  const ExperimentResult without = run_experiment(quiet, w);
  // Same workload stream; compaction dips and stalls only add service time.
  EXPECT_EQ(with_dips.requests_generated, without.requests_generated);
  EXPECT_GT(with_dips.rct.mean, without.rct.mean);
  EXPECT_GT(with_dips.store_write_stall_us, 0.0);
  EXPECT_DOUBLE_EQ(without.store_write_stall_us, 0.0);
}

TEST(StoreModelCluster, SyntheticModeIgnoresLsmKnobs) {
  // The golden-grid guarantee, stated directly: with store_model=synthetic,
  // arbitrarily weird LSM options change NOTHING — no fork of the seed
  // stream, no cost model, no capacity factor.
  auto plain = lsm_config();
  plain.store_model = StoreModel::kSynthetic;
  auto weird = plain;
  weird.lsm.memtable_bytes = 17.0;
  weird.lsm.compaction_capacity_factor = 0.01;
  weird.lsm.stall_write_multiplier = 100.0;
  const ExperimentResult a = run_experiment(plain, small_window());
  const ExperimentResult b = run_experiment(weird, small_window());
  EXPECT_EQ(a.requests_generated, b.requests_generated);
  EXPECT_EQ(a.rct.mean, b.rct.mean);  // bitwise, not approximate
  EXPECT_EQ(a.rct.p99, b.rct.p99);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.store_flushes, 0u);
  EXPECT_EQ(a.store_compaction_busy_us, 0.0);
}

TEST(StoreModelCluster, InvalidLsmOptionsRejectedAtValidate) {
  auto cfg = lsm_config();
  cfg.lsm.compaction_capacity_factor = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // ...but only when the LSM model is actually selected.
  cfg.store_model = StoreModel::kSynthetic;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(StoreModelCluster, StoreModelStringsRoundTrip) {
  StoreModel out = StoreModel::kLsm;
  EXPECT_TRUE(store_model_from_string("synthetic", out));
  EXPECT_EQ(out, StoreModel::kSynthetic);
  EXPECT_TRUE(store_model_from_string("lsm", out));
  EXPECT_EQ(out, StoreModel::kLsm);
  EXPECT_FALSE(store_model_from_string("rocksdb", out));
  EXPECT_EQ(out, StoreModel::kLsm);  // untouched on failure
  EXPECT_STREQ(to_string(StoreModel::kSynthetic), "synthetic");
  EXPECT_STREQ(to_string(StoreModel::kLsm), "lsm");
}

}  // namespace
}  // namespace das::core
