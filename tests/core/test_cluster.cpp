#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/registry.hpp"
#include "workload/replay.hpp"

namespace das::core {
namespace {

ClusterConfig small_config(sched::Policy policy = sched::Policy::kFcfs) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.6;
  cfg.fanout = make_uniform_int(1, 8);
  cfg.policy = policy;
  cfg.seed = 7;
  return cfg;
}

RunWindow small_window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 30.0 * kMillisecond;
  return w;
}

TEST(Cluster, ConservesRequestsAndOps) {
  Cluster cluster{small_config(), small_window()};
  const ExperimentResult r = cluster.run();
  EXPECT_GT(r.requests_generated, 0u);
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.ops_generated, r.ops_completed);
  EXPECT_GT(r.requests_measured, 0u);
  EXPECT_LE(r.requests_measured, r.requests_completed);
}

TEST(Cluster, RunIsSingleShot) {
  Cluster cluster{small_config(), small_window()};
  cluster.run();
  EXPECT_THROW(cluster.run(), std::logic_error);
}

TEST(Cluster, UtilizationNearTargetWithAverageCalibration) {
  auto cfg = small_config();
  cfg.target_load = 0.6;
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 100.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, w);
  EXPECT_NEAR(r.mean_server_utilization, 0.6, 0.05);
}

TEST(Cluster, HottestCalibrationKeepsEveryServerBelowTarget) {
  auto cfg = small_config();
  cfg.zipf_theta = 1.1;  // strong skew
  cfg.load_calibration = LoadCalibration::kHottestServer;
  cfg.target_load = 0.7;
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 100.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, w);
  EXPECT_LT(r.max_server_utilization, 0.85);  // target 0.7 + stochastic slack
  EXPECT_LT(r.mean_server_utilization, r.max_server_utilization);
}

TEST(Cluster, SameSeedSamePolicyIsBitIdentical) {
  const ExperimentResult a = run_experiment(small_config(), small_window());
  const ExperimentResult b = run_experiment(small_config(), small_window());
  EXPECT_EQ(a.requests_generated, b.requests_generated);
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_DOUBLE_EQ(a.rct.p999, b.rct.p999);
  EXPECT_EQ(a.net_messages, b.net_messages);
}

TEST(Cluster, SameSeedDifferentPolicySameWorkload) {
  const ExperimentResult fcfs = run_experiment(small_config(sched::Policy::kFcfs),
                                               small_window());
  const ExperimentResult das =
      run_experiment(small_config(sched::Policy::kDas), small_window());
  // The generated request stream is identical; only service order differs.
  EXPECT_EQ(fcfs.requests_generated, das.requests_generated);
  EXPECT_EQ(fcfs.ops_generated, das.ops_generated);
}

TEST(Cluster, DifferentSeedsDiffer) {
  auto cfg = small_config();
  cfg.seed = 1;
  const ExperimentResult a = run_experiment(cfg, small_window());
  cfg.seed = 2;
  const ExperimentResult b = run_experiment(cfg, small_window());
  EXPECT_NE(a.requests_generated, b.requests_generated);
}

TEST(Cluster, ProgressMessagesOnlyForFeedbackPolicies) {
  EXPECT_EQ(run_experiment(small_config(sched::Policy::kFcfs), small_window())
                .progress_messages,
            0u);
  EXPECT_EQ(run_experiment(small_config(sched::Policy::kDasNoAdapt), small_window())
                .progress_messages,
            0u);
  EXPECT_GT(run_experiment(small_config(sched::Policy::kDas), small_window())
                .progress_messages,
            0u);
}

TEST(Cluster, NetworkTrafficAccounted) {
  const ExperimentResult r = run_experiment(small_config(), small_window());
  // At least one request message and one response per op.
  EXPECT_GE(r.net_messages, 2 * r.ops_generated);
  EXPECT_GT(r.net_bytes, 0u);
}

TEST(Cluster, RingPartitionerWorksEndToEnd) {
  auto cfg = small_config();
  cfg.ring_vnodes = 64;
  const ExperimentResult r = run_experiment(cfg, small_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

TEST(Cluster, RctDominatesOpLatency) {
  const ExperimentResult r = run_experiment(small_config(), small_window());
  // A request is the max of its ops plus network: mean RCT must exceed mean
  // per-op service latency.
  EXPECT_GT(r.rct.mean, r.op_latency.mean);
}

TEST(Cluster, CompareHarnessCoversAllPolicies) {
  const auto runs = compare_policies(small_config(),
                                     {sched::Policy::kFcfs, sched::Policy::kDas},
                                     small_window());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].policy, sched::Policy::kFcfs);
  EXPECT_EQ(runs[1].policy, sched::Policy::kDas);
  EXPECT_EQ(runs[0].result.requests_generated, runs[1].result.requests_generated);
  EXPECT_GT(rct_improvement(runs[0].result, runs[1].result), -1.0);
}

TEST(Cluster, TimeVaryingSpeedProfilesRun) {
  auto cfg = small_config();
  cfg.speed_profiles = {workload::make_markov_two_state(1.0, 0.5, 10000.0, 5000.0,
                                                        1e6, 99)};
  cfg.target_load = 0.5;
  const ExperimentResult r = run_experiment(cfg, small_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

TEST(Cluster, LoadProfileModulatesArrivals) {
  auto cfg = small_config();
  cfg.load_profile = workload::make_sinusoidal_rate(1.0, 0.6, 20.0 * kMillisecond);
  const ExperimentResult r = run_experiment(cfg, small_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_GT(r.requests_measured, 0u);
}

TEST(Cluster, LegacyConfigHasNoTenantBreakdown) {
  const ExperimentResult r = run_experiment(small_config(), small_window());
  EXPECT_TRUE(r.tenants.empty());
  EXPECT_DOUBLE_EQ(r.jain_fairness, 1.0);
}

TEST(ClusterTenants, AccountingClosesExactly) {
  auto cfg = small_config();
  cfg.tenants = workload::parse_tenants("ycsb-c;ycsb-b+share:2;ycsb-a+name:w");
  const ExperimentResult r = run_experiment(cfg, small_window());
  ASSERT_EQ(r.tenants.size(), 3u);
  EXPECT_EQ(r.tenants[0].name, "t0");
  EXPECT_EQ(r.tenants[1].name, "t1");
  EXPECT_EQ(r.tenants[2].name, "w");
  EXPECT_DOUBLE_EQ(r.tenants[1].share, 2.0);
  std::uint64_t generated = 0, completed = 0, failed = 0, measured = 0;
  for (const TenantOutcome& t : r.tenants) {
    // Per-tenant conservation, exactly.
    EXPECT_EQ(t.requests_generated, t.requests_completed + t.requests_failed)
        << t.name;
    EXPECT_GT(t.requests_measured, 0u) << t.name;
    generated += t.requests_generated;
    completed += t.requests_completed;
    failed += t.requests_failed;
    measured += t.requests_measured;
  }
  // Tenant rows partition the cluster totals, exactly.
  EXPECT_EQ(generated, r.requests_generated);
  EXPECT_EQ(completed, r.requests_completed);
  EXPECT_EQ(failed, r.requests_failed);
  EXPECT_EQ(measured, r.requests_measured);
  EXPECT_GT(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.0);
}

TEST(ClusterTenants, SharesSplitTheArrivalRate) {
  auto cfg = small_config();
  cfg.tenants = workload::parse_tenants("ycsb-c+share:1;ycsb-c+share:3");
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 100.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, w);
  ASSERT_EQ(r.tenants.size(), 2u);
  const double ratio = static_cast<double>(r.tenants[1].requests_generated) /
                       static_cast<double>(r.tenants[0].requests_generated);
  EXPECT_NEAR(ratio, 3.0, 0.35);
}

TEST(ClusterTenants, MultiTenantRunsAreBitIdentical) {
  auto cfg = small_config();
  cfg.tenants = workload::parse_tenants(
      "ycsb-b+zipf:1.1+drift:5000:13+storm:8000:20000:4:0.6:7;ycsb-c");
  const ExperimentResult a = run_experiment(cfg, small_window());
  const ExperimentResult b = run_experiment(cfg, small_window());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].requests_generated, b.tenants[t].requests_generated);
    EXPECT_DOUBLE_EQ(a.tenants[t].rct.mean, b.tenants[t].rct.mean);
  }
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.net_messages, b.net_messages);
}

TEST(ClusterTenants, RecordThenReplayPreservesOpCount) {
  auto cfg = small_config();
  cfg.tenants = workload::parse_tenants("ycsb-b+zipf:0.9");
  workload::ReplayTrace recorded;
  {
    Cluster cluster{cfg, small_window()};
    cluster.set_workload_recorder(&recorded);
    cluster.run();
  }
  ASSERT_GT(recorded.size(), 0u);
  const std::string path = ::testing::TempDir() + "cluster_replay.csv";
  recorded.save(path);

  auto replay_cfg = small_config();
  replay_cfg.tenants = workload::parse_tenants("replay:" + path);
  const ExperimentResult r = run_experiment(replay_cfg, small_window());
  // The trace stores one record per operation; replay turns each into a
  // single-op request, so op counts round-trip exactly.
  EXPECT_EQ(r.ops_generated, recorded.size());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_EQ(r.tenants[0].requests_generated, recorded.size());
}

}  // namespace
}  // namespace das::core
