// Protocol codec: round-trip fidelity, checksum integrity, exact sizing.
#include "core/wire.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace das::core::wire {
namespace {

sched::OpContext random_op(Rng& rng) {
  sched::OpContext op;
  op.op_id = rng.next_u64();
  op.request_id = rng.next_u64();
  op.client = static_cast<ClientId>(rng.next_below(1 << 16));
  op.key = rng.next_u64();
  op.demand_us = rng.uniform(0, 1e6);
  op.request_arrival = rng.uniform(0, 1e9);
  op.remaining_critical_us = rng.uniform(0, 1e6);
  op.est_other_completion = rng.chance(0.5) ? rng.uniform(0, 1e9) : 0;
  op.bottleneck_ops = static_cast<std::uint32_t>(rng.next_below(256));
  op.bottleneck_demand_us = rng.uniform(0, 1e6);
  op.total_demand_us = rng.uniform(0, 1e7);
  op.deadline = rng.uniform(0, 1e9);
  op.is_write = rng.chance(0.3);
  op.write_size = rng.next_below(1 << 20);
  // Optional overload extension: absent (infinity) half of the time, like a
  // run without deadlines.
  op.expiry = rng.chance(0.5) ? rng.uniform(0, 1e9) : kTimeInfinity;
  return op;
}

OpResponse random_response(Rng& rng) {
  OpResponse resp;
  resp.op_id = rng.next_u64();
  resp.request_id = rng.next_u64();
  resp.client = static_cast<ClientId>(rng.next_below(1 << 16));
  resp.server = static_cast<ServerId>(rng.next_below(1 << 16));
  resp.key = rng.next_u64();
  resp.hit = rng.chance(0.9);
  resp.is_write = rng.chance(0.3);
  resp.value_size = rng.next_below(1 << 16);
  resp.completed_at = rng.uniform(0, 1e9);
  resp.d_hat_us = rng.uniform(0, 1e6);
  resp.mu_hat = rng.uniform(0.01, 4.0);
  return resp;
}

TEST(Wire, OpRoundTripFuzz) {
  Rng rng{1};
  for (int i = 0; i < 5000; ++i) {
    const sched::OpContext op = random_op(rng);
    const Buffer buf = encode_op(op);
    EXPECT_EQ(buf.size(), op_wire_size(op));
    const auto decoded = decode_op(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op_id, op.op_id);
    EXPECT_EQ(decoded->request_id, op.request_id);
    EXPECT_EQ(decoded->client, op.client);
    EXPECT_EQ(decoded->key, op.key);
    EXPECT_DOUBLE_EQ(decoded->demand_us, op.demand_us);
    EXPECT_DOUBLE_EQ(decoded->request_arrival, op.request_arrival);
    EXPECT_DOUBLE_EQ(decoded->remaining_critical_us, op.remaining_critical_us);
    EXPECT_DOUBLE_EQ(decoded->est_other_completion, op.est_other_completion);
    EXPECT_EQ(decoded->bottleneck_ops, op.bottleneck_ops);
    EXPECT_DOUBLE_EQ(decoded->bottleneck_demand_us, op.bottleneck_demand_us);
    EXPECT_DOUBLE_EQ(decoded->total_demand_us, op.total_demand_us);
    EXPECT_DOUBLE_EQ(decoded->deadline, op.deadline);
    EXPECT_EQ(decoded->is_write, op.is_write);
    EXPECT_EQ(decoded->write_size, op.write_size);
    EXPECT_DOUBLE_EQ(decoded->expiry, op.expiry);
  }
}

TEST(Wire, OpExpiryExtensionIsLengthDerived) {
  Rng rng{11};
  sched::OpContext op = random_op(rng);
  // No deadline: the wire image must be byte-identical to a pre-overload
  // build (no trailing extension at all).
  op.expiry = kTimeInfinity;
  const Buffer legacy = encode_op(op);
  EXPECT_EQ(legacy.size(), op_wire_size(op));
  op.expiry = 12345.5;
  const Buffer extended = encode_op(op);
  EXPECT_EQ(extended.size(), legacy.size() + 8);
  EXPECT_EQ(extended.size(), op_wire_size(op));
  const auto decoded_legacy = decode_op(legacy);
  ASSERT_TRUE(decoded_legacy.has_value());
  EXPECT_EQ(decoded_legacy->expiry, kTimeInfinity);
  const auto decoded_ext = decode_op(extended);
  ASSERT_TRUE(decoded_ext.has_value());
  EXPECT_DOUBLE_EQ(decoded_ext->expiry, 12345.5);
}

TEST(Wire, ResponseRoundTripFuzz) {
  Rng rng{2};
  for (int i = 0; i < 5000; ++i) {
    const OpResponse resp = random_response(rng);
    const Buffer buf = encode_response(resp);
    const auto decoded = decode_response(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op_id, resp.op_id);
    EXPECT_EQ(decoded->server, resp.server);
    EXPECT_EQ(decoded->hit, resp.hit);
    EXPECT_EQ(decoded->is_write, resp.is_write);
    EXPECT_EQ(decoded->value_size, resp.value_size);
    EXPECT_DOUBLE_EQ(decoded->d_hat_us, resp.d_hat_us);
    EXPECT_DOUBLE_EQ(decoded->mu_hat, resp.mu_hat);
  }
}

TEST(Wire, ShedResponseRoundTrip) {
  Rng rng{6};
  for (const OpStatus status : {OpStatus::kBusy, OpStatus::kExpired}) {
    OpResponse resp = random_response(rng);
    // respond_shed never carries a payload: hit=false, value_size=0.
    resp.hit = false;
    resp.value_size = 0;
    resp.status = status;
    const Buffer buf = encode_response(resp);
    EXPECT_EQ(buf.size(), response_wire_size(resp));
    const auto decoded = decode_response(buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, status);
    EXPECT_EQ(decoded->op_id, resp.op_id);
    EXPECT_FALSE(decoded->hit);
    EXPECT_DOUBLE_EQ(decoded->d_hat_us, resp.d_hat_us);
    EXPECT_DOUBLE_EQ(decoded->mu_hat, resp.mu_hat);
    // The status extension is one trailing byte past the kOk image.
    OpResponse ok = resp;
    ok.status = OpStatus::kOk;
    EXPECT_EQ(buf.size(), encode_response(ok).size() + 1);
  }
}

TEST(Wire, OkResponseCarriesNoStatusByte) {
  Rng rng{7};
  OpResponse resp = random_response(rng);
  const Buffer buf = encode_response(resp);
  EXPECT_EQ(buf.size(), response_wire_size(resp));
  const auto decoded = decode_response(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, OpStatus::kOk);
  // A non-canonical kOk-with-trailing-byte image is rejected outright, so
  // there is exactly one wire image per response. Rewrite the status byte
  // (just before the 4-byte trailer) to kOk and reseal the checksum so the
  // canonical-form check itself, not the checksum, does the rejecting.
  OpResponse shed = resp;
  shed.hit = false;
  shed.value_size = 0;
  shed.status = OpStatus::kBusy;
  Buffer padded = encode_response(shed);
  padded[padded.size() - 5] = 0;
  const std::uint32_t sum = fletcher32(padded.data(), padded.size() - 4);
  for (int i = 0; i < 4; ++i)
    padded[padded.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  EXPECT_FALSE(decode_response(padded).has_value());
}

TEST(Wire, ProgressRoundTrip) {
  sched::ProgressUpdate update;
  update.remaining_critical_us = 123.5;
  update.est_other_completion = 99887.25;
  update.remaining_total_us = 456.75;
  const Buffer buf = encode_progress(0xABCDEF, update);
  EXPECT_EQ(buf.size(), progress_wire_size());
  const auto decoded = decode_progress(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request, 0xABCDEFu);
  EXPECT_DOUBLE_EQ(decoded->update.remaining_critical_us, 123.5);
  EXPECT_DOUBLE_EQ(decoded->update.est_other_completion, 99887.25);
  EXPECT_DOUBLE_EQ(decoded->update.remaining_total_us, 456.75);
}

TEST(Wire, ChecksumDetectsSingleBitFlips) {
  Rng rng{3};
  const sched::OpContext op = random_op(rng);
  const Buffer original = encode_op(op);
  int detected = 0, trials = 0;
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Buffer corrupted = original;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      ++trials;
      if (!decode_op(corrupted).has_value()) ++detected;
    }
  }
  EXPECT_EQ(detected, trials);  // Fletcher-32 catches every single-bit flip
}

TEST(Wire, TruncationRejected) {
  Rng rng{4};
  const Buffer buf = encode_op(random_op(rng));
  for (std::size_t len : {0ul, 1ul, 4ul, buf.size() / 2, buf.size() - 1}) {
    Buffer truncated{buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(len)};
    EXPECT_FALSE(decode_op(truncated).has_value()) << "len=" << len;
  }
}

TEST(Wire, KindMismatchRejected) {
  Rng rng{5};
  const Buffer op_buf = encode_op(random_op(rng));
  EXPECT_FALSE(decode_response(op_buf).has_value());
  EXPECT_FALSE(decode_progress(op_buf).has_value());
}

TEST(Wire, ReadResponseChargesPayloadWriteAckDoesNot) {
  OpResponse resp;
  resp.hit = true;
  resp.is_write = false;
  resp.value_size = 1000;
  const std::size_t read_size = response_wire_size(resp);
  resp.is_write = true;
  const std::size_t write_size = response_wire_size(resp);
  EXPECT_EQ(read_size, write_size + 1000);
}

TEST(Wire, Fletcher32KnownProperties) {
  const std::uint8_t a[] = {'a', 'b', 'c', 'd', 'e'};
  const std::uint8_t b[] = {'a', 'b', 'c', 'd', 'f'};
  EXPECT_NE(fletcher32(a, sizeof a), fletcher32(b, sizeof b));
  EXPECT_EQ(fletcher32(a, sizeof a), fletcher32(a, sizeof a));
  EXPECT_EQ(fletcher32(a, 0), 0u);
}

}  // namespace
}  // namespace das::core::wire
