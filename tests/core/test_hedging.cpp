// Hedged reads: tail-cutting via duplication to a second replica.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig hedged_config(Duration hedge_delay) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.ring_vnodes = 64;
  cfg.replication = 2;
  cfg.replica_selection = ReplicaSelection::kPrimary;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.6;
  cfg.hedge_delay_us = hedge_delay;
  // One very slow server creates the stragglers hedging is meant to dodge.
  cfg.server_speed_factors.assign(8, 1.0);
  cfg.server_speed_factors[0] = 0.3;
  cfg.seed = 77;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 80.0 * kMillisecond;
  return w;
}

TEST(Hedging, RequestsCompleteAndHedgesFire) {
  const ExperimentResult r = run_experiment(hedged_config(500.0), window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_GT(r.ops_hedged, 0u);
}

TEST(Hedging, CutsTheTailOnStragglerClusters) {
  const ExperimentResult plain = run_experiment(hedged_config(0), window());
  const ExperimentResult hedged = run_experiment(hedged_config(500.0), window());
  EXPECT_LT(hedged.rct.p99, plain.rct.p99 * 0.9);
}

TEST(Hedging, RejectedWithoutReplication) {
  // Hedging needs a second replica; ClusterConfig::validate rejects the
  // combination up front instead of silently never hedging.
  auto cfg = hedged_config(500.0);
  cfg.replication = 1;
  EXPECT_THROW(run_experiment(cfg, window()), std::invalid_argument);
}

TEST(Hedging, ShorterDelayHedgesMore) {
  const ExperimentResult lazy = run_experiment(hedged_config(2000.0), window());
  const ExperimentResult eager = run_experiment(hedged_config(100.0), window());
  EXPECT_GT(eager.ops_hedged, lazy.ops_hedged * 2);
}

TEST(Hedging, DeterministicWithHedging) {
  const ExperimentResult a = run_experiment(hedged_config(300.0), window());
  const ExperimentResult b = run_experiment(hedged_config(300.0), window());
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_EQ(a.ops_hedged, b.ops_hedged);
}

TEST(Hedging, AbandonedHedgedOpsKeepAccountingClosed) {
  // Hedge x failover x abandon: kill BOTH replicas of a slice of the
  // keyspace so ops there hedge (to the equally dead secondary), retry,
  // and finally exhaust their budget and are abandoned. However an op
  // leaves the books — answered, hedge-answered, failed over, abandoned —
  // request conservation must hold at drain.
  auto cfg = hedged_config(300.0);
  cfg.ring_vnodes = 0;  // modulo: replicas of key k are {k%8, (k%8+1)%8}
  cfg.server_speed_factors.clear();
  cfg.retry_timeout_us = 500.0;
  cfg.retry_max_attempts = 3;
  cfg.suspicion_rto_threshold = 2;
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s0,crash@20ms:s1");
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed);
  EXPECT_GT(r.ops_hedged, 0u);
  EXPECT_GT(r.ops_abandoned, 0u);
  EXPECT_GT(r.requests_failed, 0u);
  EXPECT_LT(r.availability, 1.0);
}

TEST(Hedging, ComposesWithLossRecovery) {
  auto cfg = hedged_config(500.0);
  cfg.msg_loss_probability = 0.02;
  cfg.retry_timeout_us = 1.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_GT(r.ops_hedged, 0u);
  EXPECT_GT(r.ops_retransmitted, 0u);
}

}  // namespace
}  // namespace das::core
