#include "core/client.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace das::core {
namespace {

struct SentOp {
  ServerId server;
  sched::OpContext ctx;
};
struct SentProgress {
  ServerId server;
  RequestId request;
  sched::ProgressUpdate update;
};

struct ClientFixture : ::testing::Test {
  static constexpr std::size_t kServers = 4;

  sim::Simulator sim;
  Metrics metrics;
  store::PartitionerPtr partitioner = store::make_modulo_partitioner(kServers);
  std::vector<Bytes> key_sizes = std::vector<Bytes>(64, 100);  // demand 10+100/50=12us
  std::vector<SentOp> sent_ops;
  std::vector<SentProgress> sent_progress;
  std::unique_ptr<workload::MultigetGenerator> generator;
  std::unique_ptr<Client> client;

  void build(std::uint32_t fanout, Client::Params overrides = {}) {
    workload::MultigetGenerator::Config gen_cfg;
    gen_cfg.key_universe = key_sizes.size();
    gen_cfg.zipf_theta = 0.0;
    gen_cfg.fanout = make_fixed_int(fanout);
    generator = std::make_unique<workload::MultigetGenerator>(gen_cfg);

    Client::Params params = overrides;
    params.id = 3;
    params.num_servers = kServers;
    params.per_op_overhead_us = 10.0;
    params.service_bytes_per_us = 50.0;
    params.est_rtt_us = 10.0;

    client = std::make_unique<Client>(
        sim, params, Rng{42}, *generator,
        workload::make_deterministic_arrivals(0.001),  // every 1000us
        *partitioner, key_sizes, metrics,
        [this](ServerId s, const sched::OpContext& ctx) {
          sent_ops.push_back(SentOp{s, ctx});
        },
        [this](ServerId s, RequestId r, const sched::ProgressUpdate& u) {
          sent_progress.push_back(SentProgress{s, r, u});
        });
  }

  /// Completes one sent op and feeds the response back.
  void respond(const SentOp& op, double d_hat = 0.0, double mu_hat = 1.0) {
    OpResponse resp;
    resp.op_id = op.ctx.op_id;
    resp.request_id = op.ctx.request_id;
    resp.client = op.ctx.client;
    resp.server = op.server;
    resp.key = op.ctx.key;
    resp.hit = true;
    resp.value_size = 100;
    resp.completed_at = sim.now();
    resp.d_hat_us = d_hat;
    resp.mu_hat = mu_hat;
    client->on_response(resp);
  }
};

TEST_F(ClientFixture, GeneratesRequestWithCorrectFanout) {
  build(8);
  client->start(1500.0);
  sim.run();
  EXPECT_EQ(client->requests_generated(), 1u);
  EXPECT_EQ(sent_ops.size(), 8u);
  EXPECT_EQ(client->ops_generated(), 8u);
}

TEST_F(ClientFixture, OpsRoutedByPartitioner) {
  build(16);
  client->start(1500.0);
  sim.run();
  for (const SentOp& op : sent_ops)
    EXPECT_EQ(op.server, partitioner->server_for(op.ctx.key));
}

TEST_F(ClientFixture, TagsCarryRequestAggregates) {
  build(8);
  client->start(1500.0);
  sim.run();
  ASSERT_EQ(sent_ops.size(), 8u);
  const double expected_demand = 10.0 + 100.0 / 50.0;  // 12us each
  std::map<ServerId, double> per_server_demand;
  std::map<ServerId, std::uint32_t> per_server_ops;
  for (const SentOp& op : sent_ops) {
    EXPECT_DOUBLE_EQ(op.ctx.demand_us, expected_demand);
    per_server_demand[op.server] += expected_demand;
    ++per_server_ops[op.server];
  }
  double max_demand = 0;
  std::uint32_t max_ops = 0;
  for (const auto& [s, d] : per_server_demand) max_demand = std::max(max_demand, d);
  for (const auto& [s, n] : per_server_ops) max_ops = std::max(max_ops, n);

  for (const SentOp& op : sent_ops) {
    EXPECT_DOUBLE_EQ(op.ctx.total_demand_us, 8 * expected_demand);
    EXPECT_DOUBLE_EQ(op.ctx.bottleneck_demand_us, max_demand);
    EXPECT_EQ(op.ctx.bottleneck_ops, max_ops);
    EXPECT_DOUBLE_EQ(op.ctx.remaining_critical_us, expected_demand);
    EXPECT_EQ(op.ctx.request_id, sent_ops[0].ctx.request_id);
  }
}

TEST_F(ClientFixture, EstOtherCompletionExcludesOwnServer) {
  build(8);
  client->start(1500.0);
  sim.run();
  // With a cold view (d=0, mu=1) every op's full estimate is
  // arrival + rtt + demand; any op with at least one sibling on another
  // server carries exactly that bound.
  const SimTime arrival = 1000.0;
  const double full = arrival + 10.0 + 12.0;
  std::map<ServerId, int> per_server;
  for (const SentOp& op : sent_ops) ++per_server[op.server];
  for (const SentOp& op : sent_ops) {
    if (per_server.size() == 1) {
      EXPECT_DOUBLE_EQ(op.ctx.est_other_completion, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(op.ctx.est_other_completion, full);
    }
  }
}

TEST_F(ClientFixture, RequestCompletesWhenAllOpsRespond) {
  metrics.set_window(0, kTimeInfinity);
  build(4);
  client->start(1500.0);
  sim.run();
  ASSERT_EQ(sent_ops.size(), 4u);
  sim.run_until(2000.0);
  for (const SentOp& op : sent_ops) respond(op);
  EXPECT_EQ(client->requests_completed(), 1u);
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(metrics.rct().moments().count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.rct().moments().max(), 1000.0);  // 2000 - 1000
}

TEST_F(ClientFixture, AdaptiveEstimatesLearnFromPiggybacks) {
  Client::Params p;
  p.adaptive = true;
  p.ewma_alpha = 0.5;
  build(4, p);
  client->start(1500.0);
  sim.run();
  const ServerId s = sent_ops[0].server;
  EXPECT_DOUBLE_EQ(client->delay_estimate(s), 0.0);
  respond(sent_ops[0], /*d_hat=*/200.0, /*mu_hat=*/0.5);
  EXPECT_DOUBLE_EQ(client->delay_estimate(s), 100.0);   // 0 + 0.5*(200-0)
  EXPECT_DOUBLE_EQ(client->speed_estimate(s), 0.75);    // 1 + 0.5*(0.5-1)
}

TEST_F(ClientFixture, NonAdaptiveIgnoresPiggybacks) {
  Client::Params p;
  p.adaptive = false;
  build(4, p);
  client->start(1500.0);
  sim.run();
  respond(sent_ops[0], 500.0, 0.1);
  for (ServerId s = 0; s < kServers; ++s) {
    EXPECT_DOUBLE_EQ(client->delay_estimate(s), 0.0);
    EXPECT_DOUBLE_EQ(client->speed_estimate(s), 1.0);
  }
}

TEST_F(ClientFixture, ProgressSentWhenCriticalPathShrinks) {
  Client::Params p;
  p.progress_updates = true;
  p.progress_threshold = 0.05;
  build(8, p);
  client->start(1500.0);
  sim.run();
  sim.run_until(1600.0);
  respond(sent_ops[0]);
  // 7 ops remain across <= 4 servers; at most one update per pending server,
  // and none to fully-answered servers.
  EXPECT_GT(client->progress_sent(), 0u);
  std::map<ServerId, int> updates;
  for (const auto& prog : sent_progress) {
    EXPECT_EQ(prog.request, sent_ops[0].ctx.request_id);
    EXPECT_DOUBLE_EQ(prog.update.remaining_total_us, 7 * 12.0);
    ++updates[prog.server];
  }
  for (const auto& [server, count] : updates) EXPECT_EQ(count, 1);
}

TEST_F(ClientFixture, ProgressSuppressedWhenDisabled) {
  Client::Params p;
  p.progress_updates = false;
  build(8, p);
  client->start(1500.0);
  sim.run();
  respond(sent_ops[0]);
  EXPECT_EQ(client->progress_sent(), 0u);
}

TEST_F(ClientFixture, ProgressGatedByThreshold) {
  Client::Params p;
  p.progress_updates = true;
  p.progress_threshold = 10.0;  // absurdly high: never send
  build(8, p);
  client->start(1500.0);
  sim.run();
  respond(sent_ops[0]);
  EXPECT_EQ(client->progress_sent(), 0u);
}

TEST_F(ClientFixture, OpenLoopKeepsGeneratingWithoutResponses) {
  build(2);
  client->start(5500.0);
  sim.run();
  EXPECT_EQ(client->requests_generated(), 5u);  // arrivals at 1000..5000
  EXPECT_EQ(client->in_flight(), 5u);
}

TEST_F(ClientFixture, DuplicateResponseThrows) {
  build(2);
  client->start(1500.0);
  sim.run();
  respond(sent_ops[0]);
  EXPECT_THROW(respond(sent_ops[0]), std::logic_error);
}

TEST_F(ClientFixture, DuplicateResponseNeverTouchesTheLearnedView) {
  // Regression (PR 7): the EWMA update used to run BEFORE the duplicate
  // check, so every hedged/retried duplicate applied the same piggyback
  // twice and skewed the adaptive view toward whichever server answered
  // redundantly.
  Client::Params p;
  p.adaptive = true;
  p.ewma_alpha = 0.5;
  p.retry_timeout_us = 10'000.0;  // legalises duplicates; never fires here
  build(2, p);
  client->start(1500.0);
  sim.run_until(1050.0);
  ASSERT_EQ(sent_ops.size(), 2u);

  const ServerId s = sent_ops[0].server;
  respond(sent_ops[0], /*d_hat=*/200.0, /*mu_hat=*/0.5);
  EXPECT_DOUBLE_EQ(client->delay_estimate(s), 100.0);
  EXPECT_DOUBLE_EQ(client->speed_estimate(s), 0.75);

  // The same response delivered again (e.g. a served retransmission).
  respond(sent_ops[0], /*d_hat=*/200.0, /*mu_hat=*/0.5);
  EXPECT_EQ(client->duplicate_responses(), 1u);
  EXPECT_DOUBLE_EQ(client->delay_estimate(s), 100.0);  // NOT 150
  EXPECT_DOUBLE_EQ(client->speed_estimate(s), 0.75);   // NOT 0.625
}

TEST_F(ClientFixture, FailedOverOpNeverHedgesBackToSuspectedOrigin) {
  // Hedge x failover: once an op's origin is suspected and the op has moved
  // to a live replica, the (still pending) hedge must not resurrect the
  // origin — it targets the remaining third replica.
  Client::Params p;
  p.replication = 3;
  p.retry_timeout_us = 100.0;
  p.suspicion_rto_threshold = 1;
  p.hedge_delay_us = 150.0;
  build(1, p);
  client->start(1500.0);
  // t=1000: send to the primary. t in [1080, 1120]: first RTO -> origin
  // suspected, op fails over and is resent. t=1150: the hedge fires.
  sim.run_until(1200.0);
  ASSERT_EQ(sent_ops.size(), 3u);
  const ServerId origin = sent_ops[0].server;
  EXPECT_TRUE(client->suspects(origin));
  EXPECT_EQ(client->ops_failed_over(), 1u);
  EXPECT_EQ(client->ops_hedged(), 1u);
  const ServerId failover_target = sent_ops[1].server;
  const ServerId hedge_target = sent_ops[2].server;
  EXPECT_NE(failover_target, origin);
  EXPECT_NE(hedge_target, origin);
  EXPECT_NE(hedge_target, failover_target);
}

TEST_F(ClientFixture, LateDuplicateClearsSuspicionButNotTheView) {
  // The real-world shape of the duplicate path: an op fails over from a
  // suspected server to a live replica, completes there, and the original
  // server's late answer finally arrives. That answer is a liveness signal —
  // it must rehabilitate the suspected server — but it is NOT a fresh
  // feedback sample: the learned view stays untouched.
  Client::Params p;
  p.adaptive = true;
  p.ewma_alpha = 0.5;
  p.retry_timeout_us = 100.0;
  p.suspicion_rto_threshold = 2;
  p.replication = 2;
  build(1, p);
  client->start(1500.0);
  sim.run_until(1400.0);  // two RTOs: original server suspected, op failed over
  ASSERT_GE(sent_ops.size(), 1u);

  const ServerId original = sent_ops.front().server;
  ASSERT_TRUE(client->suspects(original));
  EXPECT_GE(client->ops_failed_over(), 1u);
  const ServerId target = sent_ops.back().server;
  ASSERT_NE(target, original);

  // The failover target answers: the op completes.
  OpResponse resp;
  resp.op_id = sent_ops.front().ctx.op_id;
  resp.request_id = sent_ops.front().ctx.request_id;
  resp.client = sent_ops.front().ctx.client;
  resp.server = target;
  resp.key = sent_ops.front().ctx.key;
  resp.hit = true;
  resp.value_size = 100;
  resp.completed_at = sim.now();
  client->on_response(resp);
  EXPECT_EQ(client->requests_completed(), 1u);

  // The original server's late answer to the first transmission.
  resp.server = original;
  resp.d_hat_us = 500.0;
  resp.mu_hat = 0.25;
  client->on_response(resp);
  EXPECT_EQ(client->duplicate_responses(), 1u);
  EXPECT_FALSE(client->suspects(original));  // liveness signal honoured
  EXPECT_DOUBLE_EQ(client->delay_estimate(original), 0.0);  // view untouched
  EXPECT_DOUBLE_EQ(client->speed_estimate(original), 1.0);
}

}  // namespace
}  // namespace das::core
