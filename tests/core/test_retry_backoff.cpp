// Retransmission backoff: exponential growth, the configured cap, ±20%
// jitter (retry desynchronization), the give-up bound, and RTO-driven
// suspicion. Uses a bare Client so retransmission instants are observable.
#include "core/client.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace das::core {
namespace {

struct TimedSend {
  SimTime at;
  ServerId server;
  OperationId op_id;
  sched::OpContext ctx;
};

struct RetryFixture : ::testing::Test {
  static constexpr std::size_t kServers = 4;

  sim::Simulator sim;
  Metrics metrics;
  store::PartitionerPtr partitioner = store::make_modulo_partitioner(kServers);
  std::vector<Bytes> key_sizes = std::vector<Bytes>(64, 100);
  std::vector<TimedSend> sends;
  std::unique_ptr<workload::MultigetGenerator> generator;
  std::unique_ptr<Client> client;

  void build(std::uint32_t fanout, Client::Params overrides) {
    workload::MultigetGenerator::Config gen_cfg;
    gen_cfg.key_universe = key_sizes.size();
    gen_cfg.zipf_theta = 0.0;
    gen_cfg.fanout = make_fixed_int(fanout);
    generator = std::make_unique<workload::MultigetGenerator>(gen_cfg);

    Client::Params params = overrides;
    params.id = 3;
    params.num_servers = kServers;
    params.per_op_overhead_us = 10.0;
    params.service_bytes_per_us = 50.0;
    params.est_rtt_us = 10.0;

    metrics.set_window(0, kTimeInfinity);
    client = std::make_unique<Client>(
        sim, params, Rng{42}, *generator,
        workload::make_deterministic_arrivals(0.001),  // one arrival at 1000us
        *partitioner, key_sizes, metrics,
        [this](ServerId s, const sched::OpContext& ctx) {
          sends.push_back(TimedSend{sim.now(), s, ctx.op_id, ctx});
        },
        [](ServerId, RequestId, const sched::ProgressUpdate&) {});
  }

  /// Send instants of one op, in order: index 0 is the original transmission.
  std::vector<SimTime> send_times(OperationId op_id) const {
    std::vector<SimTime> times;
    for (const TimedSend& s : sends)
      if (s.op_id == op_id) times.push_back(s.at);
    return times;
  }
};

TEST_F(RetryFixture, BackoffDoublesAndRespectsCap) {
  Client::Params p;
  p.retry_timeout_us = 100.0;
  p.retry_backoff_max_us = 400.0;
  build(1, p);
  client->start(1500.0);
  sim.run_until(5000.0);  // never respond: the op keeps retransmitting

  const std::vector<SimTime> times = send_times(sends.front().op_id);
  ASSERT_GE(times.size(), 6u);  // original + >= 5 retransmissions
  // Nominal gaps 100, 200, 400(capped), 400, 400 — each jittered ±20%.
  const double expected[] = {100.0, 200.0, 400.0, 400.0, 400.0};
  for (int i = 0; i < 5; ++i) {
    const double gap = times[i + 1] - times[i];
    EXPECT_GE(gap, 0.8 * expected[i] - 1e-9) << "retransmission " << i;
    EXPECT_LE(gap, 1.2 * expected[i] + 1e-9) << "retransmission " << i;
  }
}

TEST_F(RetryFixture, UncappedBackoffKeepsDoubling) {
  Client::Params p;
  p.retry_timeout_us = 100.0;
  build(1, p);
  client->start(1500.0);
  sim.run_until(5000.0);

  const std::vector<SimTime> times = send_times(sends.front().op_id);
  ASSERT_GE(times.size(), 5u);
  // Fourth gap is nominally 800us; a 400us cap would have clamped it.
  EXPECT_GE(times[4] - times[3], 0.8 * 800.0 - 1e-9);
}

TEST_F(RetryFixture, JitterDesynchronizesSimultaneousRetries) {
  // Regression for retry storms: eight ops of one request are all sent at
  // the same instant; un-jittered timers would retransmit all eight at the
  // same instant too, re-synchronizing the very burst the loss killed.
  Client::Params p;
  p.retry_timeout_us = 100.0;
  build(8, p);
  client->start(1500.0);
  sim.run_until(1250.0);

  std::set<OperationId> ops;
  for (const TimedSend& s : sends) ops.insert(s.op_id);
  ASSERT_EQ(ops.size(), 8u);
  std::set<SimTime> first_retry_instants;
  for (const OperationId op : ops) {
    const std::vector<SimTime> times = send_times(op);
    ASSERT_GE(times.size(), 2u);
    EXPECT_GE(times[1] - times[0], 80.0 - 1e-9);
    EXPECT_LE(times[1] - times[0], 120.0 + 1e-9);
    first_retry_instants.insert(times[1]);
  }
  // Jitter spreads the storm: the eight first-retries hit distinct instants.
  EXPECT_GT(first_retry_instants.size(), 4u);
}

TEST(RetryJitter, DeterministicAcrossRuns) {
  // The jitter stream is forked from the client's seed, so two identical
  // builds retransmit at bit-identical instants.
  const auto record_sends = [] {
    sim::Simulator sim;
    Metrics metrics;
    const store::PartitionerPtr partitioner = store::make_modulo_partitioner(4);
    std::vector<Bytes> key_sizes(64, 100);
    workload::MultigetGenerator::Config gen_cfg;
    gen_cfg.key_universe = key_sizes.size();
    gen_cfg.zipf_theta = 0.0;
    gen_cfg.fanout = make_fixed_int(4);
    workload::MultigetGenerator generator{gen_cfg};
    Client::Params params;
    params.id = 3;
    params.num_servers = 4;
    params.per_op_overhead_us = 10.0;
    params.service_bytes_per_us = 50.0;
    params.retry_timeout_us = 100.0;
    std::vector<std::pair<SimTime, OperationId>> sends;
    Client client{sim,
                  params,
                  Rng{42},
                  generator,
                  workload::make_deterministic_arrivals(0.001),
                  *partitioner,
                  key_sizes,
                  metrics,
                  [&](ServerId, const sched::OpContext& ctx) {
                    sends.emplace_back(sim.now(), ctx.op_id);
                  },
                  [](ServerId, RequestId, const sched::ProgressUpdate&) {}};
    client.start(1500.0);
    sim.run_until(1300.0);
    return sends;
  };
  const auto first_run = record_sends();
  const auto second_run = record_sends();
  ASSERT_EQ(first_run.size(), second_run.size());
  ASSERT_GT(first_run.size(), 4u);  // at least one retransmission happened
  for (std::size_t i = 0; i < first_run.size(); ++i) {
    EXPECT_DOUBLE_EQ(first_run[i].first, second_run[i].first);
    EXPECT_EQ(first_run[i].second, second_run[i].second);
  }
}

TEST_F(RetryFixture, GivesUpAfterMaxAttemptsAndAccountsTheFailure) {
  Client::Params p;
  p.retry_timeout_us = 100.0;
  p.retry_max_attempts = 3;
  build(2, p);
  client->start(1500.0);
  sim.run();  // silence: both ops exhaust their attempts

  for (const TimedSend& s : sends) {
    // 3 attempts per op: the original send plus two retransmissions.
    EXPECT_EQ(send_times(s.op_id).size(), 3u);
  }
  EXPECT_EQ(client->ops_abandoned(), 2u);
  EXPECT_EQ(client->requests_failed(), 1u);
  EXPECT_EQ(client->requests_completed(), 0u);
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(metrics.requests_failed_measured(), 1u);
  EXPECT_EQ(metrics.rct().moments().count(), 0u);  // failures never enter RCT
}

TEST_F(RetryFixture, ConsecutiveRtosRaiseSuspicionAndAResponseClearsIt) {
  Client::Params p;
  p.retry_timeout_us = 100.0;
  p.suspicion_rto_threshold = 2;
  build(1, p);
  client->start(1500.0);
  sim.run_until(1400.0);  // enough for two RTOs (jitter <= 120 + 240)

  const ServerId server = sends.front().server;
  EXPECT_TRUE(client->suspects(server));
  EXPECT_GE(client->suspicions_raised(), 1u);

  OpResponse resp;
  resp.op_id = sends.front().op_id;
  resp.request_id = sends.front().ctx.request_id;
  resp.client = sends.front().ctx.client;
  resp.server = server;
  resp.key = sends.front().ctx.key;
  resp.hit = true;
  resp.value_size = 100;
  resp.completed_at = sim.now();
  resp.mu_hat = 1.0;
  client->on_response(resp);
  EXPECT_FALSE(client->suspects(server));  // an answer rehabilitates
}

}  // namespace
}  // namespace das::core
