#include "core/server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/scheduler.hpp"

namespace das::core {
namespace {

struct ServerFixture : ::testing::Test {
  sim::Simulator sim;
  Metrics metrics;
  std::vector<OpResponse> responses;

  std::unique_ptr<Server> make_server(Server::Params params,
                                      sched::Policy policy = sched::Policy::kFcfs) {
    auto server = std::make_unique<Server>(sim, std::move(params),
                                           sched::make_scheduler(policy), metrics);
    server->set_response_handler(
        [this](const OpResponse& r) { responses.push_back(r); });
    return server;
  }

  static sched::OpContext op(OperationId id, KeyId key, double demand) {
    sched::OpContext ctx;
    ctx.op_id = id;
    ctx.request_id = id;
    ctx.key = key;
    ctx.demand_us = demand;
    return ctx;
  }
};

TEST_F(ServerFixture, ServesOpAfterServiceTime) {
  auto server = make_server({});
  server->populate(5, 100);
  server->receive_op(op(1, 5, 40.0));
  sim.run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0].completed_at, 40.0);
  EXPECT_TRUE(responses[0].hit);
  EXPECT_EQ(responses[0].value_size, 100u);
}

TEST_F(ServerFixture, MissOnUnknownKey) {
  auto server = make_server({});
  server->receive_op(op(1, 42, 10.0));
  sim.run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].hit);
  EXPECT_EQ(responses[0].value_size, 0u);
}

TEST_F(ServerFixture, HalfSpeedDoublesServiceTime) {
  Server::Params params;
  params.speed_factor = 0.5;
  auto server = make_server(std::move(params));
  server->receive_op(op(1, 1, 40.0));
  sim.run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0].completed_at, 80.0);
}

TEST_F(ServerFixture, SpeedProfileModulatesService) {
  Server::Params params;
  params.speed_profile = workload::make_step_rate({100.0}, {1.0, 0.5});
  auto server = make_server(std::move(params));
  server->receive_op(op(1, 1, 40.0));  // at t=0, speed 1.0 => done at 40
  sim.run();
  EXPECT_DOUBLE_EQ(responses[0].completed_at, 40.0);
  sim.run_until(200.0);
  server->receive_op(op(2, 1, 40.0));  // at t=200, speed 0.5 => 80us
  sim.run();
  EXPECT_DOUBLE_EQ(responses[1].completed_at, 280.0);
}

TEST_F(ServerFixture, QueueDrainsSequentially) {
  auto server = make_server({});
  for (OperationId i = 0; i < 5; ++i) server->receive_op(op(i, 1, 10.0));
  EXPECT_EQ(server->queue_length(), 4u);  // one already in service
  sim.run();
  ASSERT_EQ(responses.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(responses[i].completed_at, static_cast<double>(i + 1) * 10.0);
  EXPECT_EQ(server->ops_completed(), 5u);
  EXPECT_FALSE(server->busy());
}

TEST_F(ServerFixture, MuHatConvergesToTrueSpeed) {
  Server::Params params;
  params.speed_factor = 0.25;
  params.speed_alpha = 0.2;
  auto server = make_server(std::move(params));
  for (OperationId i = 0; i < 100; ++i) server->receive_op(op(i, 1, 10.0));
  sim.run();
  EXPECT_NEAR(server->mu_hat(), 0.25, 0.01);
}

TEST_F(ServerFixture, DHatReflectsBacklog) {
  auto server = make_server({});
  for (OperationId i = 0; i < 4; ++i) server->receive_op(op(i, 1, 25.0));
  // One op in service; three queued at 25us each = 75us of backlog.
  EXPECT_NEAR(server->d_hat_us(), 75.0, 1e-9);
  sim.run();
  EXPECT_DOUBLE_EQ(server->d_hat_us(), 0.0);
}

TEST_F(ServerFixture, ResponsePiggybacksEstimates) {
  auto server = make_server({});
  for (OperationId i = 0; i < 3; ++i) server->receive_op(op(i, 1, 10.0));
  sim.run();
  // First response sent when two ops remain queued... the server starts the
  // next op before responding, so the piggybacked d_hat covers the remaining
  // queue only.
  EXPECT_GT(responses[0].mu_hat, 0.0);
  EXPECT_GE(responses[0].d_hat_us, 0.0);
  EXPECT_GT(responses[0].d_hat_us, responses[2].d_hat_us);
}

TEST_F(ServerFixture, UtilizationWindowClipsBusyTime) {
  auto server = make_server({});
  server->set_utilization_window(50.0, 150.0);
  server->receive_op(op(1, 1, 100.0));  // busy [0, 100): 50 inside window
  sim.run();
  EXPECT_DOUBLE_EQ(server->busy_time_in_window(), 50.0);
}

TEST_F(ServerFixture, MetricsRecordOperationWaits) {
  metrics.set_window(0, kTimeInfinity);
  auto server = make_server({});
  server->receive_op(op(1, 1, 10.0));
  server->receive_op(op(2, 1, 10.0));
  sim.run();
  EXPECT_EQ(metrics.op_latency().moments().count(), 2u);
  // Second op waited 10us for the first.
  EXPECT_DOUBLE_EQ(metrics.op_wait().moments().max(), 10.0);
}

}  // namespace
}  // namespace das::core
