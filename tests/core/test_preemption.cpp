// Preempt-resume service mode (oracle upper bound).
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "sched/scheduler.hpp"

namespace das::core {
namespace {

ClusterConfig base(sched::Policy policy, bool preemptive) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.75;
  cfg.policy = policy;
  cfg.preemptive_service = preemptive;
  cfg.seed = 55;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 80.0 * kMillisecond;
  return w;
}

TEST(Preemption, ConservesOperations) {
  Cluster cluster{base(sched::Policy::kReqSrpt, true), window()};
  const ExperimentResult r = cluster.run();
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.ops_generated, r.ops_completed);
  std::uint64_t preemptions = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s)
    preemptions += cluster.server(s).preemptions();
  EXPECT_GT(preemptions, 0u);
}

TEST(Preemption, PreemptiveSrptWinsInClassicMG1) {
  // Single server, fan-out 1, heavy-tailed sizes: textbook SRPT territory,
  // where preemption must be a large win (no fork-join structure).
  ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.keys_per_server = 20'000;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.8;
  cfg.fanout = make_fixed_int(1);
  cfg.per_op_overhead_us = 0.0;
  cfg.service_bytes_per_us = 1.0;
  cfg.value_size_bytes = make_lognormal_mean(30.0, 1.5);
  cfg.policy = sched::Policy::kReqSrpt;
  cfg.seed = 55;
  RunWindow w;
  w.warmup_us = 50.0 * kMillisecond;
  w.measure_us = 500.0 * kMillisecond;
  const ExperimentResult np = run_experiment(cfg, w);
  cfg.preemptive_service = true;
  const ExperimentResult p = run_experiment(cfg, w);
  EXPECT_LT(p.op_wait.mean, np.op_wait.mean * 0.3);
  EXPECT_LT(p.rct.mean, np.rct.mean * 0.7);
}

TEST(Preemption, ForkJoinPreemptionIsNotAFreeWin) {
  // With multiget fan-out, preempting on REQUEST totals can postpone a
  // nearly-finished operation that would have completed its request — the
  // measured effect is a mean REGRESSION here. Documented as a finding:
  // non-preemptive service is not just an implementation constraint, it is
  // competitive for fork-join RCT.
  const ExperimentResult np =
      run_experiment(base(sched::Policy::kReqSrpt, false), window());
  const ExperimentResult p =
      run_experiment(base(sched::Policy::kReqSrpt, true), window());
  EXPECT_GT(p.rct.mean, np.rct.mean * 0.95);
}

TEST(Preemption, NoOpForPoliciesWithoutHook) {
  Cluster cluster{base(sched::Policy::kFcfs, true), window()};
  const ExperimentResult r = cluster.run();
  std::uint64_t preemptions = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s)
    preemptions += cluster.server(s).preemptions();
  EXPECT_EQ(preemptions, 0u);
  // Identical to the non-preemptive run.
  const ExperimentResult plain =
      run_experiment(base(sched::Policy::kFcfs, false), window());
  EXPECT_DOUBLE_EQ(r.rct.mean, plain.rct.mean);
}

TEST(Preemption, DeterministicUnderPreemption) {
  const ExperimentResult a =
      run_experiment(base(sched::Policy::kDas, true), window());
  const ExperimentResult b =
      run_experiment(base(sched::Policy::kDas, true), window());
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
}

TEST(Preemption, UtilisationUnchangedByPreemption) {
  // Preempt-resume wastes no work, so the served utilisation must match.
  const ExperimentResult np =
      run_experiment(base(sched::Policy::kReqSrpt, false), window());
  const ExperimentResult p =
      run_experiment(base(sched::Policy::kReqSrpt, true), window());
  EXPECT_NEAR(p.mean_server_utilization, np.mean_server_utilization, 0.01);
}

}  // namespace
}  // namespace das::core
