// SweepRunner determinism and the parallel-equals-serial contract.
//
// The whole point of the sweep subsystem is that fanning a grid across a
// thread pool changes WALL time only: every ExperimentResult must be
// bit-identical to the serial run, outcomes must come back in registration
// order, and the JSON emitter must render them as valid, reproducible JSON.
// Also covers the event-heap compaction the sweep leans on: a compacting run
// must dispatch exactly the same events as a compaction-disabled run.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/bench_json.hpp"
#include "core/cluster.hpp"
#include "core/sweep.hpp"

namespace das::core {
namespace {

ClusterConfig grid_config() {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 100;
  cfg.zipf_theta = 0.9;
  cfg.seed = 4242;
  return cfg;
}

RunWindow short_window() {
  RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 15.0 * kMillisecond;
  return w;
}

SweepRunner e1_style_grid() {
  SweepRunner runner;
  const auto window = short_window();
  for (const double load : {0.5, 0.7, 0.85}) {
    ClusterConfig cfg = grid_config();
    cfg.target_load = load;
    const std::string point = "load=" + std::to_string(load);
    for (const sched::Policy policy :
         {sched::Policy::kFcfs, sched::Policy::kReinSbf, sched::Policy::kDas}) {
      runner.add("sweep_test", point, policy, cfg, window);
    }
  }
  return runner;
}

void expect_bit_identical(const LatencySummary& a, const LatencySummary& b,
                          const char* which) {
  EXPECT_EQ(a.count, b.count) << which;
  EXPECT_EQ(a.mean, b.mean) << which;
  EXPECT_EQ(a.p50, b.p50) << which;
  EXPECT_EQ(a.p95, b.p95) << which;
  EXPECT_EQ(a.p99, b.p99) << which;
  EXPECT_EQ(a.p999, b.p999) << which;
  EXPECT_EQ(a.max, b.max) << which;
}

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  expect_bit_identical(a.rct, b.rct, "rct");
  expect_bit_identical(a.op_latency, b.op_latency, "op_latency");
  expect_bit_identical(a.op_wait, b.op_wait, "op_wait");
  EXPECT_EQ(a.requests_generated, b.requests_generated);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.requests_measured, b.requests_measured);
  EXPECT_EQ(a.ops_generated, b.ops_generated);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.mean_server_utilization, b.mean_server_utilization);
  EXPECT_EQ(a.max_server_utilization, b.max_server_utilization);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.progress_messages, b.progress_messages);
  EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
  // wall_seconds is real time and deliberately excluded.
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  const SweepRunner runner = e1_style_grid();
  const auto serial = runner.run(1);
  const auto parallel = runner.run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].experiment, parallel[i].experiment);
    EXPECT_EQ(serial[i].point, parallel[i].point);
    EXPECT_EQ(serial[i].policy, parallel[i].policy);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    expect_bit_identical(serial[i].result, parallel[i].result);
  }
}

TEST(SweepRunner, OutcomesComeBackInRegistrationOrder) {
  const SweepRunner runner = e1_style_grid();
  const auto outcomes = runner.run(4);
  ASSERT_EQ(outcomes.size(), 9u);
  std::size_t i = 0;
  for (const double load : {0.5, 0.7, 0.85}) {
    const std::string point = "load=" + std::to_string(load);
    for (const sched::Policy policy :
         {sched::Policy::kFcfs, sched::Policy::kReinSbf, sched::Policy::kDas}) {
      EXPECT_EQ(outcomes[i].point, point);
      EXPECT_EQ(outcomes[i].policy, policy);
      EXPECT_GT(outcomes[i].result.requests_measured, 0u);
      ++i;
    }
  }
}

TEST(SweepRunner, MoreJobsThanPointsIsFine) {
  SweepRunner runner;
  runner.add("sweep_test", "load=0.5", sched::Policy::kFcfs, grid_config(),
             short_window());
  const auto outcomes = runner.run(16);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_GT(outcomes[0].result.requests_measured, 0u);
}

TEST(SweepRunner, FailingPointPropagatesException) {
  SweepRunner runner;
  runner.add("sweep_test", "ok", sched::Policy::kFcfs, grid_config(),
             short_window());
  ClusterConfig bad = grid_config();
  RunWindow bad_window;
  bad_window.measure_us = 0;  // Cluster's precondition check throws
  runner.add("sweep_test", "bad", sched::Policy::kFcfs, bad, bad_window);
  EXPECT_THROW(runner.run(4), std::logic_error);
  EXPECT_THROW(runner.run(1), std::logic_error);
}

TEST(SweepRunner, EmptyGridRunsToNothing) {
  SweepRunner runner;
  EXPECT_TRUE(runner.run(4).empty());
}

TEST(SweepRunner, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(SweepRunner::default_jobs(), 1u);
}

// --- JSON emitter -----------------------------------------------------------

/// Minimal structural validation: balanced braces/brackets outside strings,
/// no bare NaN/Inf tokens, required keys present. (CI additionally parses
/// the emitted files with a real JSON parser.)
void expect_wellformed_json(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  // Non-finite doubles must be emitted as null. Match value positions
  // (": nan", ": inf", "-nan") rather than any substring — the field name
  // "tenants" legitimately contains "nan".
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": -nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
  EXPECT_EQ(json.find(": -inf"), std::string::npos);
}

TEST(BenchJson, EmitsWellformedReproducibleJson) {
  const SweepRunner runner = e1_style_grid();
  const auto outcomes = runner.run(2);
  const std::string json = bench_json_string("sweep_test", outcomes);
  expect_wellformed_json(json);
  EXPECT_NE(json.find("\"schema_version\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\""), std::string::npos);
  EXPECT_NE(json.find("\"tenants\": []"), std::string::npos);
  EXPECT_NE(json.find("\"overload\""), std::string::npos);
  EXPECT_NE(json.find("\"goodput_rps\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_shed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"storage\""), std::string::npos);
  EXPECT_NE(json.find("\"compaction_busy_us\""), std::string::npos);
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_rct_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_us\""), std::string::npos);
  EXPECT_NE(json.find("\"gain_vs_fcfs_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_deferred\""), std::string::npos);
  EXPECT_NE(json.find("\"reranks_applied\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"runnable_wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"rein-sbf\""), std::string::npos);

  // Everything but wall_seconds is deterministic: strip those lines and two
  // independent emissions must match byte for byte.
  const auto strip_wall = [](std::string s) {
    std::string out;
    std::size_t start = 0;
    while (start < s.size()) {
      std::size_t end = s.find('\n', start);
      if (end == std::string::npos) end = s.size();
      const std::string line = s.substr(start, end - start);
      if (line.find("wall_seconds") == std::string::npos) out += line + '\n';
      start = end + 1;
    }
    return out;
  };
  const std::string again = bench_json_string("sweep_test", runner.run(4));
  EXPECT_EQ(strip_wall(json), strip_wall(again));
}

TEST(BenchJson, EmptyExperimentStillValid) {
  const std::string json = bench_json_string("nothing_ran", {});
  expect_wellformed_json(json);
  EXPECT_NE(json.find("\"points\": []"), std::string::npos);
}

TEST(BenchJson, EscapesLabelStrings) {
  SweepOutcome o;
  o.experiment = "exp";
  o.point = "quote\"back\\slash";
  o.policy = sched::Policy::kFcfs;
  o.result.rct.mean = 1.0;
  const std::string json = bench_json_string("exp", {o});
  expect_wellformed_json(json);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

// --- heap compaction is behaviour-preserving --------------------------------

TEST(HeapCompaction, ClusterRunIdenticalWithAndWithoutCompaction) {
  // Hedged reads set a cancel-heavy timer per operation (the hedge timer is
  // cancelled whenever the primary answers first), exactly the workload the
  // lazy-cancel heap degenerates on. A compacting run must dispatch the same
  // events and produce bit-identical results.
  ClusterConfig cfg = grid_config();
  cfg.replication = 2;
  cfg.replica_selection = ReplicaSelection::kRandom;
  cfg.hedge_delay_us = 0.3 * kMillisecond;
  cfg.target_load = 0.7;

  Cluster with{cfg, short_window()};
  ASSERT_TRUE(with.simulator().compaction_enabled());
  const ExperimentResult a = with.run();

  Cluster without{cfg, short_window()};
  without.simulator().set_compaction_enabled(false);
  const ExperimentResult b = without.run();

  EXPECT_GT(with.simulator().compactions(), 0u);
  EXPECT_EQ(without.simulator().compactions(), 0u);
  EXPECT_EQ(with.simulator().events_dispatched(),
            without.simulator().events_dispatched());
  expect_bit_identical(a, b);
}

TEST(HeapCompaction, AuditedHedgedRunStaysClean) {
  // The extended simulator invariant (dead nodes never outnumber live ones)
  // must hold continuously through a cancel-heavy full run.
  ClusterConfig cfg = grid_config();
  cfg.replication = 2;
  cfg.replica_selection = ReplicaSelection::kRandom;
  cfg.hedge_delay_us = 0.3 * kMillisecond;
  cfg.target_load = 0.7;
  cfg.audit_every_events = 64;
  Cluster cluster{cfg, short_window()};
  const ExperimentResult r = cluster.run();
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_GT(cluster.simulator().audits_run(), 0u);
}

// --- parse_load_list: the --sweep-loads grid spec -------------------------

TEST(ParseLoadList, ParsesWellFormedList) {
  EXPECT_EQ(parse_load_list("0.3,0.5,0.8"),
            (std::vector<double>{0.3, 0.5, 0.8}));
  EXPECT_EQ(parse_load_list("0.7"), (std::vector<double>{0.7}));
}

TEST(ParseLoadList, EmptySpecRejected) {
  EXPECT_THROW(parse_load_list(""), std::invalid_argument);
}

TEST(ParseLoadList, MalformedTokenNamedInError) {
  try {
    parse_load_list("0.3,abc,0.8");
    FAIL() << "malformed token accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "malformed load 'abc' in load list");
  }
}

TEST(ParseLoadList, TrailingJunkRejected) {
  try {
    parse_load_list("0.5x");
    FAIL() << "trailing junk accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "malformed load '0.5x' in load list");
  }
}

TEST(ParseLoadList, EmptyElementsRejected) {
  // Double comma, leading comma, trailing comma: all are empty elements a
  // shell-quoting slip produces; none may silently shrink the grid.
  EXPECT_THROW(parse_load_list("0.3,,0.8"), std::invalid_argument);
  EXPECT_THROW(parse_load_list(",0.5"), std::invalid_argument);
  EXPECT_THROW(parse_load_list("0.5,"), std::invalid_argument);
}

TEST(ParseLoadList, OutOfRangeLoadRejected) {
  EXPECT_THROW(parse_load_list("0"), std::invalid_argument);
  EXPECT_THROW(parse_load_list("-0.3"), std::invalid_argument);
  EXPECT_THROW(parse_load_list("10"), std::invalid_argument);  // typo for 1.0
  EXPECT_THROW(parse_load_list("nan"), std::invalid_argument);
  EXPECT_THROW(parse_load_list("inf"), std::invalid_argument);
}

TEST(ParseLoadList, OverloadPointsAccepted) {
  // Loads at or above 1 are legitimate E22 overload points.
  EXPECT_EQ(parse_load_list("0.9,1.0,1.3"),
            (std::vector<double>{0.9, 1.0, 1.3}));
}

}  // namespace
}  // namespace das::core
