#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig timeline_config() {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.6;
  cfg.timeline_bucket_us = 10.0 * kMillisecond;
  cfg.seed = 31;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 0;
  w.measure_us = 100.0 * kMillisecond;
  return w;
}

TEST(Timeline, DisabledByDefault) {
  auto cfg = timeline_config();
  cfg.timeline_bucket_us = 0;
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_TRUE(r.timeline.empty());
}

TEST(Timeline, CoversTheRunInOrder) {
  const ExperimentResult r = run_experiment(timeline_config(), window());
  ASSERT_GE(r.timeline.size(), 9u);  // ~10 buckets of 10ms
  for (std::size_t i = 1; i < r.timeline.size(); ++i)
    EXPECT_GT(r.timeline[i].bucket_start, r.timeline[i - 1].bucket_start);
  std::size_t total = 0;
  for (const auto& p : r.timeline) {
    EXPECT_GT(p.count, 0u);
    EXPECT_GT(p.mean_rct, 0.0);
    // The per-bucket p99 comes from the log-bucketed histogram (bucket
    // midpoints), so it tracks the mean from above up to the ~0.5% bucket
    // resolution rather than exactly.
    EXPECT_GT(p.p99_rct, 0.0);
    EXPECT_GE(p.p99_rct, p.mean_rct * 0.99);
    total += p.count;
  }
  // The timeline covers ALL completions, including warmup arrivals.
  EXPECT_EQ(total, r.requests_completed);
}

TEST(Timeline, BucketP99MatchesSingleSample) {
  // A bucket holding one request reports that request's RCT as its p99 up to
  // the histogram's bucket-midpoint resolution.
  Metrics metrics;
  metrics.set_window(0, kTimeInfinity);
  metrics.enable_timeline(1000.0);
  metrics.record_request(10.0, 250.0, 4);
  const auto points = metrics.timeline();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].count, 1u);
  EXPECT_EQ(points[0].mean_rct, 240.0);
  EXPECT_NEAR(points[0].p99_rct, 240.0, 240.0 * 0.02);
}

TEST(Timeline, ReflectsALoadStep) {
  auto cfg = timeline_config();
  // Arrival rate triples for the middle of the run.
  cfg.load_profile = workload::make_step_rate(
      {30.0 * kMillisecond, 70.0 * kMillisecond}, {0.5, 1.5, 0.5});
  const ExperimentResult r = run_experiment(cfg, window());
  double early = 0, middle = 0;
  for (const auto& p : r.timeline) {
    if (p.bucket_start < 30.0 * kMillisecond) early = std::max(early, p.mean_rct);
    if (p.bucket_start >= 40.0 * kMillisecond && p.bucket_start < 70.0 * kMillisecond)
      middle = std::max(middle, p.mean_rct);
  }
  EXPECT_GT(middle, early);
}

}  // namespace
}  // namespace das::core
