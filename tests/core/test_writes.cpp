// Mixed read/write workloads: write-all PUTs alongside multiget reads.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig rw_config(double write_fraction, std::size_t replication = 1) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.ring_vnodes = replication > 1 ? 64 : 0;
  cfg.replication = replication;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.6;
  cfg.write_fraction = write_fraction;
  cfg.seed = 13;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 60.0 * kMillisecond;
  return w;
}

TEST(Writes, MixedWorkloadConserves) {
  for (const double w : {0.05, 0.3, 1.0}) {
    const ExperimentResult r = run_experiment(rw_config(w), window());
    EXPECT_EQ(r.requests_generated, r.requests_completed) << "w=" << w;
    EXPECT_EQ(r.ops_generated, r.ops_completed) << "w=" << w;
  }
}

TEST(Writes, StorageVersionsAdvance) {
  Cluster cluster{rw_config(0.5), window()};
  cluster.run();
  std::uint64_t puts = 0, updates = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    // Initial population counts as inserts; runtime writes are updates.
    puts += cluster.server(s).storage().stats().puts;
    updates += cluster.server(s).storage().stats().updates;
  }
  EXPECT_GT(updates, 0u);
  EXPECT_GT(puts, updates);  // population inserts included
}

TEST(Writes, WriteAllTouchesEveryReplica) {
  Cluster cluster{rw_config(1.0, 3), window()};
  const ExperimentResult r = cluster.run();
  // Every request is one PUT fanned out to 3 replicas.
  EXPECT_EQ(r.ops_generated, 3 * r.requests_generated);
  // Replicas converge: the same key stores the same size everywhere.
  const auto& part = cluster.partitioner();
  for (KeyId key = 0; key < 100; ++key) {
    const auto replicas = part.replicas_for(key, 3);
    const auto* primary = cluster.server(replicas[0]).storage().peek(key);
    ASSERT_NE(primary, nullptr);
    for (std::size_t i = 1; i < replicas.size(); ++i) {
      const auto* copy = cluster.server(replicas[i]).storage().peek(key);
      ASSERT_NE(copy, nullptr);
      EXPECT_EQ(copy->size, primary->size) << "key " << key;
    }
  }
}

TEST(Writes, UtilisationStaysCalibratedWithWrites) {
  // The calibration accounts for the write fan-out: utilisation should stay
  // near target across write fractions.
  for (const double w : {0.0, 0.5, 1.0}) {
    auto cfg = rw_config(w, 2);
    const ExperimentResult r = run_experiment(cfg, window());
    EXPECT_NEAR(r.mean_server_utilization, 0.6, 0.07) << "w=" << w;
  }
}

TEST(Writes, CatalogueTracksWrittenSizes) {
  auto cfg = rw_config(1.0);
  cfg.write_size_bytes = make_constant(4096.0);
  Cluster cluster{cfg, window()};
  cluster.run();
  // After an all-write run, most touched keys store 4096 bytes.
  std::size_t written = 0, scanned = 0;
  for (KeyId key = 0; key < cluster.key_sizes().size(); ++key) {
    ++scanned;
    if (cluster.key_sizes()[key] == 4096) ++written;
  }
  EXPECT_GT(written, scanned / 20);  // plenty of keys rewritten
}

TEST(Writes, DasStillBeatsFcfsWithWrites) {
  auto cfg = rw_config(0.2);
  cfg.num_servers = 16;
  cfg.target_load = 0.75;
  const auto runs = compare_policies(
      cfg, {sched::Policy::kFcfs, sched::Policy::kDas}, window());
  EXPECT_GT(rct_improvement(runs[0].result, runs[1].result), 0.05);
}

TEST(Writes, LogStructuredBackendMatchesHashBackend) {
  // Same seed, same workload: the storage engine must not change any
  // scheduling outcome — only its internal layout differs.
  auto cfg = rw_config(0.3, 2);
  const ExperimentResult hash = run_experiment(cfg, window());
  cfg.log_structured_storage = true;
  const ExperimentResult log = run_experiment(cfg, window());
  EXPECT_DOUBLE_EQ(hash.rct.mean, log.rct.mean);
  EXPECT_EQ(hash.ops_completed, log.ops_completed);
}

TEST(Writes, DeterministicWithWrites) {
  const ExperimentResult a = run_experiment(rw_config(0.3, 2), window());
  const ExperimentResult b = run_experiment(rw_config(0.3, 2), window());
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
}

}  // namespace
}  // namespace das::core
