#include "core/config.hpp"

#include <gtest/gtest.h>

namespace das::core {
namespace {

TEST(Config, MeanOpDemandCombinesOverheadAndTransfer) {
  ClusterConfig cfg;
  cfg.per_op_overhead_us = 10.0;
  cfg.service_bytes_per_us = 100.0;
  cfg.value_size_bytes = make_constant(500.0);
  EXPECT_DOUBLE_EQ(cfg.mean_op_demand_us(), 15.0);
}

TEST(Config, NominalCapacityIsServerCountWhenHomogeneous) {
  ClusterConfig cfg;
  cfg.num_servers = 48;
  EXPECT_DOUBLE_EQ(cfg.nominal_capacity(1e6), 48.0);
}

TEST(Config, CapacityHonoursSpeedFactors) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.server_speed_factors = {1.0, 1.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(cfg.nominal_capacity(1e6), 3.0);
}

TEST(Config, CapacityAveragesSharedSpeedProfile) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.speed_profiles = {workload::make_step_rate({500000.0}, {1.0, 0.5})};
  EXPECT_NEAR(cfg.nominal_capacity(1e6), 7.5, 0.1);
}

TEST(Config, ArrivalRateHitsTargetLoad) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.num_clients = 1;
  cfg.per_op_overhead_us = 10.0;
  cfg.service_bytes_per_us = 1.0;
  cfg.value_size_bytes = make_constant(10.0);  // 20us per op
  cfg.fanout = make_fixed_int(5);              // 100us per request
  cfg.target_load = 0.5;
  // capacity 10 work-us/us * 0.5 = 5 work-us/us; / 100us per request.
  EXPECT_NEAR(cfg.derived_arrival_rate(1e6), 0.05, 1e-9);
}

TEST(Config, ArrivalRateScalesInverselyWithLoadProfileMean) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.fanout = make_fixed_int(4);
  cfg.target_load = 0.6;
  const double base = cfg.derived_arrival_rate(1e6);
  cfg.load_profile = workload::make_constant_rate(2.0);
  EXPECT_NEAR(cfg.derived_arrival_rate(1e6), base / 2.0, base * 1e-9);
}

TEST(Config, MismatchedSpeedFactorLengthThrows) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.server_speed_factors = {1.0, 1.0};
  EXPECT_THROW(cfg.nominal_capacity(1e6), std::logic_error);
}

TEST(Config, InvalidTargetLoadThrows) {
  ClusterConfig cfg;
  cfg.target_load = 1.0;
  EXPECT_THROW(cfg.derived_arrival_rate(1e6), std::logic_error);
  cfg.target_load = 0.0;
  EXPECT_THROW(cfg.derived_arrival_rate(1e6), std::logic_error);
}

}  // namespace
}  // namespace das::core
