#include "core/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace das::core {
namespace {

/// Runs validate() and returns the rejection message ("" = accepted).
std::string validation_error(const ClusterConfig& cfg) {
  try {
    cfg.validate();
    return "";
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(Config, MeanOpDemandCombinesOverheadAndTransfer) {
  ClusterConfig cfg;
  cfg.per_op_overhead_us = 10.0;
  cfg.service_bytes_per_us = 100.0;
  cfg.value_size_bytes = make_constant(500.0);
  EXPECT_DOUBLE_EQ(cfg.mean_op_demand_us(), 15.0);
}

TEST(Config, NominalCapacityIsServerCountWhenHomogeneous) {
  ClusterConfig cfg;
  cfg.num_servers = 48;
  EXPECT_DOUBLE_EQ(cfg.nominal_capacity(1e6), 48.0);
}

TEST(Config, CapacityHonoursSpeedFactors) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.server_speed_factors = {1.0, 1.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(cfg.nominal_capacity(1e6), 3.0);
}

TEST(Config, CapacityAveragesSharedSpeedProfile) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.speed_profiles = {workload::make_step_rate({500000.0}, {1.0, 0.5})};
  EXPECT_NEAR(cfg.nominal_capacity(1e6), 7.5, 0.1);
}

TEST(Config, ArrivalRateHitsTargetLoad) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.num_clients = 1;
  cfg.per_op_overhead_us = 10.0;
  cfg.service_bytes_per_us = 1.0;
  cfg.value_size_bytes = make_constant(10.0);  // 20us per op
  cfg.fanout = make_fixed_int(5);              // 100us per request
  cfg.target_load = 0.5;
  // capacity 10 work-us/us * 0.5 = 5 work-us/us; / 100us per request.
  EXPECT_NEAR(cfg.derived_arrival_rate(1e6), 0.05, 1e-9);
}

TEST(Config, ArrivalRateScalesInverselyWithLoadProfileMean) {
  ClusterConfig cfg;
  cfg.num_servers = 10;
  cfg.fanout = make_fixed_int(4);
  cfg.target_load = 0.6;
  const double base = cfg.derived_arrival_rate(1e6);
  cfg.load_profile = workload::make_constant_rate(2.0);
  EXPECT_NEAR(cfg.derived_arrival_rate(1e6), base / 2.0, base * 1e-9);
}

TEST(Config, MismatchedSpeedFactorLengthThrows) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.server_speed_factors = {1.0, 1.0};
  EXPECT_THROW(cfg.nominal_capacity(1e6), std::logic_error);
}

TEST(Config, InvalidTargetLoadThrows) {
  // Loads past 1 are legal (E22 drives the cluster into overload on
  // purpose); only nonpositive or absurd targets are rejected.
  ClusterConfig cfg;
  cfg.target_load = 10.0;
  EXPECT_THROW(cfg.derived_arrival_rate(1e6), std::logic_error);
  cfg.target_load = 0.0;
  EXPECT_THROW(cfg.derived_arrival_rate(1e6), std::logic_error);
}

TEST(Config, OverloadTargetLoadIsAccepted) {
  ClusterConfig cfg;
  cfg.target_load = 1.2;
  EXPECT_GT(cfg.derived_arrival_rate(1e6), 0.0);
}

TEST(ConfigValidate, DefaultConfigIsAccepted) {
  EXPECT_EQ(validation_error(ClusterConfig{}), "");
}

TEST(ConfigValidate, RejectionsNameTheOffendingField) {
  ClusterConfig cfg;
  cfg.msg_loss_probability = 1.5;
  EXPECT_NE(validation_error(cfg).find("msg_loss_probability"),
            std::string::npos);

  cfg = ClusterConfig{};
  cfg.msg_loss_probability = 0.1;  // loss without retransmission
  EXPECT_NE(validation_error(cfg).find("retry_timeout_us"), std::string::npos);

  cfg = ClusterConfig{};
  cfg.hedge_delay_us = 500.0;  // hedging without a second replica
  EXPECT_NE(validation_error(cfg).find("replication"), std::string::npos);

  cfg = ClusterConfig{};
  cfg.retry_backoff_max_us = 100.0;  // cap without retransmission
  EXPECT_NE(validation_error(cfg).find("retry_backoff_max_us"),
            std::string::npos);

  cfg = ClusterConfig{};
  cfg.retry_timeout_us = 200.0;
  cfg.retry_backoff_max_us = 100.0;  // cap below the base timeout
  EXPECT_NE(validation_error(cfg).find("retry_backoff_max_us"),
            std::string::npos);

  cfg = ClusterConfig{};
  cfg.retry_max_attempts = 5;  // give-up bound without retransmission
  EXPECT_NE(validation_error(cfg).find("retry_max_attempts"),
            std::string::npos);
}

TEST(ConfigValidate, FaultPlanSafetyCoupling) {
  // A work-losing plan needs retransmission to keep accounting closed.
  ClusterConfig cfg;
  cfg.fault_plan = fault::parse_fault_plan("crash@1ms:s0,recover@2ms:s0");
  EXPECT_NE(validation_error(cfg).find("retry_timeout_us"), std::string::npos);
  cfg.retry_timeout_us = 100.0;
  EXPECT_EQ(validation_error(cfg), "");

  // A permanently dead target needs a bounded retry budget.
  cfg = ClusterConfig{};
  cfg.retry_timeout_us = 100.0;
  cfg.fault_plan = fault::parse_fault_plan("crash@1ms:s0");
  EXPECT_NE(validation_error(cfg).find("retry_max_attempts"),
            std::string::npos);
  cfg.retry_max_attempts = 4;
  EXPECT_EQ(validation_error(cfg), "");

  // Structural plan validation runs against the configured topology.
  cfg = ClusterConfig{};
  cfg.retry_timeout_us = 100.0;
  cfg.fault_plan = fault::parse_fault_plan("crash@1ms:s99,recover@2ms:s99");
  EXPECT_NE(validation_error(cfg).find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace das::core
