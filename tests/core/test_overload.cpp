// Overload control: QueueGuard / AdmissionController units, config
// validation, and cluster-level shedding + extended conservation.
#include "overload/overload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "workload/registry.hpp"

namespace das::overload {
namespace {

OverloadConfig bounded_config(std::size_t cap) {
  OverloadConfig cfg;
  cfg.queue_cap = cap;
  return cfg;
}

TEST(OverloadConfig, DefaultIsFullyOff) {
  const OverloadConfig cfg;
  EXPECT_FALSE(cfg.bounded());
  EXPECT_FALSE(cfg.deadlines());
  EXPECT_FALSE(cfg.enabled());
  cfg.validate();  // defaults must always validate
}

TEST(OverloadConfig, AnyFeatureFlipsEnabled) {
  OverloadConfig cfg;
  cfg.queue_cap = 1;
  EXPECT_TRUE(cfg.enabled());
  cfg = OverloadConfig{};
  cfg.deadline_budget_us = 1000;
  EXPECT_TRUE(cfg.enabled());
  cfg = OverloadConfig{};
  cfg.admission = true;
  EXPECT_TRUE(cfg.enabled());
}

TEST(OverloadConfig, EffectiveSojournResolution) {
  OverloadConfig cfg;
  cfg.sojourn_threshold_us = 500;
  EXPECT_DOUBLE_EQ(cfg.effective_sojourn_us(), 500);
  cfg.sojourn_threshold_us = 0;
  cfg.deadline_budget_us = 2000;
  EXPECT_DOUBLE_EQ(cfg.effective_sojourn_us(), 4000);  // 2x budget
  cfg.deadline_budget_us = 0;
  EXPECT_DOUBLE_EQ(cfg.effective_sojourn_us(), 10.0 * kMillisecond);
}

TEST(OverloadConfig, ValidateNamesTheField) {
  OverloadConfig cfg;
  cfg.sojourn_threshold_us = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("sojourn_threshold_us"),
              std::string::npos);
  }
  cfg = OverloadConfig{};
  cfg.deadline_budget_us = -5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.admission_floor = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.admission_floor = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.admission_increase = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = OverloadConfig{};
  cfg.admission_decrease = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(OverloadConfig, PolicyTokensRoundTrip) {
  RejectPolicy p = RejectPolicy::kRejectNew;
  EXPECT_TRUE(policy_from_string("sojourn-drop", p));
  EXPECT_EQ(p, RejectPolicy::kSojournDrop);
  EXPECT_STREQ(to_string(p), "sojourn-drop");
  EXPECT_TRUE(policy_from_string("reject-new", p));
  EXPECT_EQ(p, RejectPolicy::kRejectNew);
  EXPECT_STREQ(to_string(p), "reject-new");
  EXPECT_FALSE(policy_from_string("drop-tail", p));
  EXPECT_EQ(p, RejectPolicy::kRejectNew);  // untouched on failure
}

TEST(QueueGuard, RejectsOnlyAtCapWhenBounded) {
  const QueueGuard unbounded{OverloadConfig{}};
  EXPECT_FALSE(unbounded.should_reject(1u << 20));

  const QueueGuard guard{bounded_config(4)};
  EXPECT_FALSE(guard.should_reject(0));
  EXPECT_FALSE(guard.should_reject(3));
  EXPECT_TRUE(guard.should_reject(4));
  EXPECT_TRUE(guard.should_reject(5));
}

TEST(QueueGuard, SojournDropRequiresThePolicy) {
  OverloadConfig cfg = bounded_config(4);
  cfg.sojourn_threshold_us = 100;
  const QueueGuard reject_new{cfg};
  EXPECT_FALSE(reject_new.should_drop_sojourn(1000, 0));

  cfg.reject_policy = RejectPolicy::kSojournDrop;
  const QueueGuard sojourn{cfg};
  EXPECT_FALSE(sojourn.should_drop_sojourn(100, 0));  // == threshold: kept
  EXPECT_TRUE(sojourn.should_drop_sojourn(101, 0));
}

TEST(QueueGuard, ExpiryIsStrictAndGatedOnDeadlines) {
  const QueueGuard no_deadlines{bounded_config(4)};
  EXPECT_FALSE(no_deadlines.is_expired(1000, 1));

  OverloadConfig cfg;
  cfg.deadline_budget_us = 1000;
  const QueueGuard guard{cfg};
  EXPECT_FALSE(guard.is_expired(500, 500));  // at expiry: still served
  EXPECT_TRUE(guard.is_expired(501, 500));
  EXPECT_FALSE(guard.is_expired(501, kTimeInfinity));
}

TEST(QueueGuard, CountersSumToTotalShed) {
  OverloadConfig cfg = bounded_config(2);
  cfg.reject_policy = RejectPolicy::kSojournDrop;
  cfg.deadline_budget_us = 1000;
  QueueGuard guard{cfg};
  guard.note_rejected();
  guard.note_rejected();
  guard.note_sojourn_drop();
  guard.note_expired();
  EXPECT_EQ(guard.rejected_busy(), 2u);
  EXPECT_EQ(guard.dropped_sojourn(), 1u);
  EXPECT_EQ(guard.expired(), 1u);
  EXPECT_EQ(guard.total_shed(), 4u);
  guard.check_invariants();
}

TEST(AdmissionController, StartsWideOpenAndFlipsOneCoinPerAdmit) {
  AdmissionController ctl{2, AdmissionController::Params{}};
  Rng rng{42};
  Rng shadow{42};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ctl.admit(i % 2, rng));
  EXPECT_EQ(ctl.admitted(), 100u);
  EXPECT_EQ(ctl.refused(), 0u);
  // Exactly one uniform draw per admit: a shadow stream that made the same
  // number of draws stays aligned.
  for (int i = 0; i < 100; ++i) shadow.chance(0.5);
  EXPECT_EQ(rng.next_u64(), shadow.next_u64());
}

TEST(AdmissionController, AimdWithFloorAndCeiling) {
  AdmissionController::Params params;
  params.floor = 0.1;
  params.increase = 0.25;
  params.decrease = 0.5;
  AdmissionController ctl{1, params};
  EXPECT_DOUBLE_EQ(ctl.rate(0), 1.0);
  ctl.on_overload(0);
  EXPECT_DOUBLE_EQ(ctl.rate(0), 0.5);
  ctl.on_overload(0);
  ctl.on_overload(0);
  EXPECT_DOUBLE_EQ(ctl.rate(0), 0.125);
  ctl.on_overload(0);  // 0.0625 < floor: clamped
  EXPECT_DOUBLE_EQ(ctl.rate(0), 0.1);
  ctl.check_invariants();
  for (int i = 0; i < 10; ++i) ctl.on_success(0);
  EXPECT_DOUBLE_EQ(ctl.rate(0), 1.0);  // additive climb, capped at 1
  ctl.check_invariants();
}

TEST(AdmissionController, TenantsAreIndependent) {
  AdmissionController ctl{3, AdmissionController::Params{}};
  ctl.on_overload(1);
  EXPECT_DOUBLE_EQ(ctl.rate(0), 1.0);
  EXPECT_LT(ctl.rate(1), 1.0);
  EXPECT_DOUBLE_EQ(ctl.rate(2), 1.0);
}

}  // namespace
}  // namespace das::overload

// Cluster-level behaviour lives in das::core where the config helpers are.
namespace das::core {
namespace {

ClusterConfig overload_config(double load, sched::Policy policy) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = load;
  cfg.fanout = make_uniform_int(1, 8);
  cfg.policy = policy;
  cfg.seed = 7;
  return cfg;
}

RunWindow overload_window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 30.0 * kMillisecond;
  return w;
}

void expect_conserved(const ExperimentResult& r) {
  EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed +
                                      r.requests_shed + r.requests_expired);
}

TEST(ClusterOverload, BoundedQueueShedsAtOverloadAndConserves) {
  auto cfg = overload_config(1.3, sched::Policy::kFcfs);
  cfg.overload.queue_cap = 16;
  const ExperimentResult r = run_experiment(cfg, overload_window());
  EXPECT_GT(r.ops_rejected_busy, 0u);
  EXPECT_GT(r.requests_shed, 0u);
  EXPECT_EQ(r.requests_expired, 0u);  // no deadlines configured
  expect_conserved(r);
  EXPECT_LE(r.goodput_rps, r.throughput_rps);
  EXPECT_GT(r.goodput_rps, 0.0);
}

TEST(ClusterOverload, SojournDropActivatesUnderSustainedOverload) {
  auto cfg = overload_config(1.3, sched::Policy::kFcfs);
  cfg.overload.queue_cap = 64;
  cfg.overload.reject_policy = overload::RejectPolicy::kSojournDrop;
  cfg.overload.sojourn_threshold_us = 500;
  const ExperimentResult r = run_experiment(cfg, overload_window());
  EXPECT_GT(r.ops_shed_sojourn, 0u);
  expect_conserved(r);
}

TEST(ClusterOverload, DeadlinesExpireRequestsAndConserve) {
  auto cfg = overload_config(1.3, sched::Policy::kFcfs);
  cfg.overload.deadline_budget_us = 2.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, overload_window());
  EXPECT_GT(r.requests_expired, 0u);
  EXPECT_GT(r.ops_expired_dropped, 0u);
  expect_conserved(r);
}

TEST(ClusterOverload, AdmissionControlShedsClientSide) {
  auto cfg = overload_config(1.3, sched::Policy::kFcfs);
  cfg.overload.queue_cap = 16;
  cfg.overload.deadline_budget_us = 5.0 * kMillisecond;
  cfg.overload.admission = true;
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 60.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, w);
  EXPECT_GT(r.requests_shed_admission, 0u);
  EXPECT_LE(r.requests_shed_admission, r.requests_shed);
  expect_conserved(r);
}

TEST(ClusterOverload, RetriesRecoverBusyRejectionsAtModerateLoad) {
  // With retransmission armed, a BUSY rejection is retried instead of
  // immediately shedding the request — at moderate load most requests
  // still complete.
  auto cfg = overload_config(0.9, sched::Policy::kFcfs);
  cfg.overload.queue_cap = 8;
  cfg.retry_timeout_us = 2.0 * kMillisecond;
  cfg.retry_max_attempts = 4;
  const ExperimentResult r = run_experiment(cfg, overload_window());
  expect_conserved(r);
  EXPECT_GT(r.requests_completed, r.requests_shed);
}

TEST(ClusterOverload, OverloadOffMatchesBaselineBitForBit) {
  const ExperimentResult base =
      run_experiment(overload_config(0.6, sched::Policy::kDas), overload_window());
  auto cfg = overload_config(0.6, sched::Policy::kDas);
  cfg.overload = overload::OverloadConfig{};  // explicit all-off
  const ExperimentResult off = run_experiment(cfg, overload_window());
  EXPECT_EQ(base.requests_generated, off.requests_generated);
  EXPECT_DOUBLE_EQ(base.rct.mean, off.rct.mean);
  EXPECT_DOUBLE_EQ(base.rct.p999, off.rct.p999);
  EXPECT_EQ(base.net_messages, off.net_messages);
  EXPECT_EQ(base.net_bytes, off.net_bytes);  // wire sizes unchanged
  EXPECT_EQ(off.requests_shed, 0u);
  EXPECT_EQ(off.requests_expired, 0u);
  EXPECT_DOUBLE_EQ(off.goodput_rps, off.throughput_rps);
}

TEST(ClusterOverload, ProtectionKeepsGoodputPositivePastSaturation) {
  // The E22 claim in miniature: at load 1.3 the protected run still
  // completes a healthy stream of requests inside the measure window.
  auto cfg = overload_config(1.3, sched::Policy::kDas);
  cfg.overload.queue_cap = 32;
  cfg.overload.deadline_budget_us = 5.0 * kMillisecond;
  const ExperimentResult r = run_experiment(cfg, overload_window());
  EXPECT_GT(r.requests_measured, 0u);
  EXPECT_GT(r.goodput_rps, 0.0);
  EXPECT_LE(r.goodput_rps, r.throughput_rps);
  expect_conserved(r);
}

TEST(ClusterOverload, RetryDeadlineCouplingRejected) {
  auto cfg = overload_config(0.9, sched::Policy::kFcfs);
  cfg.overload.deadline_budget_us = 1.0 * kMillisecond;
  cfg.retry_timeout_us = 1.0 * kMillisecond;  // >= budget: dead weight
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("retry_timeout_us"),
              std::string::npos);
  }
  cfg.retry_timeout_us = 0.2 * kMillisecond;  // < budget: fine
  cfg.retry_max_attempts = 2;
  cfg.validate();
}

TEST(ClusterOverload, PerTenantDegradationAccountingCloses) {
  auto cfg = overload_config(1.3, sched::Policy::kFcfs);
  cfg.overload.queue_cap = 16;
  cfg.overload.deadline_budget_us = 5.0 * kMillisecond;
  cfg.tenants = workload::parse_tenants("ycsb-c+share:3+name:a;ycsb-c+name:b");
  const ExperimentResult r = run_experiment(cfg, overload_window());
  expect_conserved(r);
  ASSERT_EQ(r.tenants.size(), 2u);
  std::uint64_t shed = 0, expired = 0;
  double share_sum = 0;
  for (const TenantOutcome& t : r.tenants) {
    EXPECT_EQ(t.requests_generated, t.requests_completed + t.requests_failed +
                                        t.requests_shed + t.requests_expired);
    shed += t.requests_shed;
    expired += t.requests_expired;
    share_sum += t.goodput_share;
  }
  EXPECT_EQ(shed, r.requests_shed);
  EXPECT_EQ(expired, r.requests_expired);
  if (r.requests_measured > 0) {
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace das::core
