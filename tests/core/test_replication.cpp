#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig replicated_config(std::size_t r, ReplicaSelection sel) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.ring_vnodes = 64;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.4;
  cfg.replication = r;
  cfg.replica_selection = sel;
  cfg.seed = 11;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 40.0 * kMillisecond;
  return w;
}

TEST(Replication, EveryReplicaHoldsTheKey) {
  Cluster cluster{replicated_config(3, ReplicaSelection::kPrimary), window()};
  const auto& part = cluster.partitioner();
  for (KeyId key = 0; key < 200; ++key) {
    for (const ServerId s : part.replicas_for(key, 3)) {
      EXPECT_NE(cluster.server(s).storage().peek(key), nullptr)
          << "key " << key << " missing on replica " << s;
    }
  }
}

TEST(Replication, PrimarySelectionEqualsUnreplicatedSchedule) {
  const ExperimentResult r1 =
      run_experiment(replicated_config(1, ReplicaSelection::kPrimary), window());
  const ExperimentResult r3 =
      run_experiment(replicated_config(3, ReplicaSelection::kPrimary), window());
  // Reads always hit the primary, so the schedules are identical.
  EXPECT_DOUBLE_EQ(r1.rct.mean, r3.rct.mean);
  EXPECT_EQ(r1.net_messages, r3.net_messages);
}

class SelectionConservation : public ::testing::TestWithParam<ReplicaSelection> {};

TEST_P(SelectionConservation, AllRequestsCompleteAndHit) {
  Cluster cluster{replicated_config(2, GetParam()), window()};
  const ExperimentResult r = cluster.run();
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.ops_generated, r.ops_completed);
  // Every read must land on a server that holds the key.
  std::uint64_t gets = 0, hits = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    gets += cluster.server(s).storage().stats().gets;
    hits += cluster.server(s).storage().stats().hits;
  }
  EXPECT_EQ(gets, r.ops_completed);
  EXPECT_EQ(hits, gets);
}

INSTANTIATE_TEST_SUITE_P(AllSelections, SelectionConservation,
                         ::testing::Values(ReplicaSelection::kPrimary,
                                           ReplicaSelection::kRandom,
                                           ReplicaSelection::kLeastDelay,
                                           ReplicaSelection::kTars,
                                           ReplicaSelection::kPowerOfD),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ReplicaSelection::kPrimary: return "primary";
                             case ReplicaSelection::kRandom: return "random";
                             case ReplicaSelection::kLeastDelay: return "least_delay";
                             case ReplicaSelection::kTars: return "tars";
                             case ReplicaSelection::kPowerOfD: return "power_of_d";
                           }
                           return "unknown";
                         });

TEST(Replication, SpreadingSelectionReducesHotServerLoad) {
  // Skew strong enough that the hottest KEY dominates its server (~30% of
  // all accesses); spreading it over 2 replicas must halve that server's
  // utilisation, far beyond run-to-run noise.
  auto cfg = replicated_config(2, ReplicaSelection::kPrimary);
  cfg.zipf_theta = 1.4;
  cfg.target_load = 0.3;
  // Fan-out 1: the distinct-keys-per-multiget rule otherwise caps the hot
  // key at one op per request and dilutes the skew below ring-imbalance
  // noise.
  cfg.fanout = make_fixed_int(1);
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 100.0 * kMillisecond;
  const ExperimentResult primary = run_experiment(cfg, w);
  cfg.replica_selection = ReplicaSelection::kRandom;
  const ExperimentResult random = run_experiment(cfg, w);
  // The secondary replica inherits half the hot key, so the peak falls by
  // (hot-key share)/2 minus that replica's own base load — a solid but not
  // halved reduction.
  EXPECT_LT(random.max_server_utilization, primary.max_server_utilization * 0.95);
}

TEST(Replication, LeastDelayAvoidsStragglerReplicas) {
  auto cfg = replicated_config(2, ReplicaSelection::kLeastDelay);
  cfg.zipf_theta = 0.0;
  cfg.policy = sched::Policy::kDas;  // adaptive view feeds selection
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  cfg.server_speed_factors[0] = 0.25;  // one very slow server
  Cluster cluster{cfg, window()};
  cluster.run();
  // The slow server should have served measurably fewer ops than the mean of
  // the fast ones: clients learned to read the other replica.
  const double slow_ops = static_cast<double>(cluster.server(0).ops_completed());
  double fast_ops = 0;
  for (std::size_t s = 1; s < cluster.server_count(); ++s)
    fast_ops += static_cast<double>(cluster.server(s).ops_completed());
  fast_ops /= static_cast<double>(cluster.server_count() - 1);
  EXPECT_LT(slow_ops, fast_ops * 0.8);
}

TEST(Replication, TarsAvoidsStragglerReplicas) {
  // Same straggler setup as above: tars must also learn to leave the slow
  // replica, despite its switching being rate-bounded.
  auto cfg = replicated_config(2, ReplicaSelection::kTars);
  cfg.zipf_theta = 0.0;
  cfg.policy = sched::Policy::kDas;  // adaptive view feeds selection
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  cfg.server_speed_factors[0] = 0.25;
  Cluster cluster{cfg, window()};
  cluster.run();
  const double slow_ops = static_cast<double>(cluster.server(0).ops_completed());
  double fast_ops = 0;
  for (std::size_t s = 1; s < cluster.server_count(); ++s)
    fast_ops += static_cast<double>(cluster.server(s).ops_completed());
  fast_ops /= static_cast<double>(cluster.server_count() - 1);
  EXPECT_LT(slow_ops, fast_ops * 0.8);
}

TEST(Replication, PowerOfDAvoidsStragglerReplicas) {
  // With replication 2 the d=2 sample covers the whole replica set, so
  // power-of-d must steer off the straggler exactly like least-delay does.
  auto cfg = replicated_config(2, ReplicaSelection::kPowerOfD);
  cfg.zipf_theta = 0.0;
  cfg.policy = sched::Policy::kDas;
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  cfg.server_speed_factors[0] = 0.25;
  Cluster cluster{cfg, window()};
  cluster.run();
  const double slow_ops = static_cast<double>(cluster.server(0).ops_completed());
  double fast_ops = 0;
  for (std::size_t s = 1; s < cluster.server_count(); ++s)
    fast_ops += static_cast<double>(cluster.server(s).ops_completed());
  fast_ops /= static_cast<double>(cluster.server_count() - 1);
  EXPECT_LT(slow_ops, fast_ops * 0.8);
}

TEST(Replication, CountClampedToClusterSize) {
  auto cfg = replicated_config(100, ReplicaSelection::kRandom);
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

}  // namespace
}  // namespace das::core
