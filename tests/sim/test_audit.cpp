// Simulator-side auditing: the cadence fires every N dispatched events,
// registered components are included, violations abort the run by throwing,
// and the simulator's own structural invariants hold through heavy
// schedule/cancel churn.
#include <gtest/gtest.h>

#include "common/invariant.hpp"
#include "sim/simulator.hpp"

namespace das::sim {
namespace {

class CountingAuditable final : public Auditable {
 public:
  void check_invariants() const override { ++calls; }
  mutable int calls = 0;
};

class FailingAuditable final : public Auditable {
 public:
  void check_invariants() const override {
    DAS_AUDIT(false, "deliberately broken component");
  }
};

TEST(SimulatorAudit, OwnInvariantsHoldThroughChurn) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule_at(static_cast<SimTime>(i % 17), [] {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) sim.cancel(handles[i]);
  EXPECT_NO_THROW(sim.check_invariants());
  while (sim.step()) {
    EXPECT_NO_THROW(sim.check_invariants());
  }
}

TEST(SimulatorAudit, CadenceRunsRegisteredAuditables) {
  Simulator sim;
  CountingAuditable counting;
  sim.add_auditable(&counting);
  sim.set_audit_cadence(4);
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {});
  }
  sim.run();
  // 20 events at cadence 4 → audits after events 4, 8, 12, 16, 20.
  EXPECT_EQ(sim.audits_run(), 5u);
  EXPECT_EQ(counting.calls, 5);
}

TEST(SimulatorAudit, ZeroCadenceDisablesAudits) {
  Simulator sim;
  CountingAuditable counting;
  sim.add_auditable(&counting);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.audits_run(), 0u);
  EXPECT_EQ(counting.calls, 0);
}

TEST(SimulatorAudit, AuditNowIsOnDemand) {
  Simulator sim;
  CountingAuditable counting;
  sim.add_auditable(&counting);
  EXPECT_NO_THROW(sim.audit_now());
  EXPECT_EQ(sim.audits_run(), 1u);
  EXPECT_EQ(counting.calls, 1);
}

TEST(SimulatorAudit, BrokenComponentStopsTheRun) {
  Simulator sim;
  FailingAuditable failing;
  sim.add_auditable(&failing);
  sim.set_audit_cadence(1);
  sim.schedule_at(1.0, [] {});
  EXPECT_THROW(sim.run(), AuditError);
}

TEST(SimulatorAudit, CadenceAppliesToRunUntil) {
  Simulator sim;
  CountingAuditable counting;
  sim.add_auditable(&counting);
  sim.set_audit_cadence(2);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {});
  }
  sim.run_until(3.5);  // dispatches events at t = 0, 1, 2, 3
  EXPECT_EQ(sim.audits_run(), 2u);
  EXPECT_EQ(counting.calls, 2);
}

}  // namespace
}  // namespace das::sim
