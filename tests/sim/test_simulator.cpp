#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace das::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimesDispatchInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1, nullptr), std::logic_error);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(10, [] {});
  sim.run();
  sim.cancel(h);  // already fired: no-op
  sim.cancel(h);
  sim.cancel(EventHandle{});  // invalid handle: no-op
  bool fired = false;
  sim.schedule_at(20, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, PendingCountsLiveEventsOnly) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (double t : {10.0, 20.0, 30.0, 40.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(25.0);
  EXPECT_EQ(fired, (std::vector<SimTime>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesEventsAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(25.0, [&] { fired = true; });
  sim.run_until(25.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(1000.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1000.0);
}

TEST(Simulator, EventsScheduledDuringDispatchRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, DispatchCountTracks) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

TEST(PeriodicProcess, FiresAtMultiplesOfPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicProcess proc{sim, 10.0, [&] { fires.push_back(sim.now()); }};
  proc.start();
  sim.run_until(35.0);
  proc.stop();
  EXPECT_EQ(fires, (std::vector<SimTime>{10.0, 20.0, 30.0}));
  sim.run();  // nothing left
  EXPECT_EQ(fires.size(), 3u);
}

TEST(PeriodicProcess, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc{sim, 5.0, [&] {
                         if (++count == 2) proc.stop();
                       }};
  proc.start();
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(PeriodicProcess, StartIsIdempotent) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc{sim, 5.0, [&] { ++count; }};
  proc.start();
  proc.start();
  sim.run_until(12.0);
  proc.stop();
  EXPECT_EQ(count, 2);
}

TEST(PeriodicProcess, DestructorCancelsPending) {
  Simulator sim;
  {
    PeriodicProcess proc{sim, 5.0, [] {}};
    proc.start();
  }
  EXPECT_TRUE(sim.empty());
}

TEST(PeriodicProcess, RestartFromCallbackKeepsOneChain) {
  // Regression: stop() + start() inside the callback used to leave BOTH the
  // restart's event and fire()'s tail reschedule pending — two interleaved
  // chains firing the callback at twice the period forever.
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicProcess proc{sim, 10.0, [&] {
                         fires.push_back(sim.now());
                         if (fires.size() == 2) {
                           proc.stop();
                           proc.start();
                         }
                       }};
  proc.start();
  sim.run_until(65.0);
  proc.stop();
  // One chain only: 10, 20 (restart), 30, 40, 50, 60 — period preserved.
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30, 40, 50, 60}));
  sim.run();
  EXPECT_EQ(fires.size(), 6u);
}

TEST(PeriodicProcess, RestartFromCallbackLeavesNoOrphanEvents) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc{sim, 5.0, [&] {
                         ++count;
                         proc.stop();
                         proc.start();
                       }};
  proc.start();
  sim.run_until(50.0);
  proc.stop();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(sim.empty());  // no orphaned chain left behind
}

TEST(Simulator, HeavyCancelTriggersCompaction) {
  // Regression: cancelled nodes used to stay in the heap until popped, so a
  // cancel-almost-everything workload (hedge/retransmit timers) grew the
  // queue without bound and paid O(log dead) per pop.
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20000; ++i)
    handles.push_back(sim.schedule_at(i, [] {}));
  for (int i = 0; i < 20000; ++i)
    if (i % 100 != 0) sim.cancel(handles[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.pending(), 200u);
  // Dead nodes never outnumber live ones (up to the compaction floor).
  EXPECT_LE(sim.queued_nodes(), 2 * sim.pending() + 64);
  EXPECT_GT(sim.compactions(), 0u);
  sim.audit_now();  // dead-fraction invariant holds
  std::vector<SimTime> fired;
  while (sim.step()) fired.push_back(sim.now());
  ASSERT_EQ(fired.size(), 200u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_DOUBLE_EQ(fired[i], static_cast<double>(100 * i));
}

TEST(Simulator, CompactionDisabledKeepsLazyBehaviour) {
  Simulator sim;
  sim.set_compaction_enabled(false);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i)
    handles.push_back(sim.schedule_at(i, [] {}));
  for (int i = 0; i < 999; ++i)
    sim.cancel(handles[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.compactions(), 0u);
  EXPECT_EQ(sim.queued_nodes(), 1000u);  // dead nodes reclaimed only at pop
  EXPECT_EQ(sim.pending(), 1u);
  sim.audit_now();  // the dead-fraction bound is waived when disabled
  int fired = 0;
  sim.run();
  fired = static_cast<int>(sim.events_dispatched());
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CompactionPreservesInterleavedDispatchOrder) {
  // Same schedule/cancel sequence with and without compaction must fire the
  // surviving callbacks in the same order at the same times.
  const auto drive = [](bool compaction) {
    Simulator sim;
    sim.set_compaction_enabled(compaction);
    Rng rng{7};
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 5000; ++i) {
      handles.push_back(
          sim.schedule_at(rng.uniform(0, 1e5), [&order, i] { order.push_back(i); }));
      if (i % 3 != 0) sim.cancel(handles.back());
      // Also cancel a random earlier event to mix live/dead heap positions.
      if (i % 7 == 0)
        sim.cancel(handles[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(i) + 1))]);
    }
    sim.run();
    return order;
  };
  const auto with = drive(true);
  const auto without = drive(false);
  EXPECT_FALSE(with.empty());
  EXPECT_EQ(with, without);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  Rng rng{99};
  for (int i = 0; i < 20000; ++i) {
    sim.schedule_at(rng.uniform(0, 1e6), [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_dispatched(), 20000u);
}

}  // namespace
}  // namespace das::sim
