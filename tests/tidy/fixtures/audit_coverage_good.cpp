// Every concrete Auditable here either overrides check_invariants() or
// inherits a final one: das-audit-coverage stays silent.
#include "stubs.hpp"

namespace fix {

class Mid : public das::Auditable {
 public:
  void check_invariants() const override {}
};

class Leaf : public Mid {
 public:
  void check_invariants() const override { Mid::check_invariants(); }
  int extra_ = 0;
};

/// The SchedulerBase pattern: the base's final override closes the audit
/// question for the subtree by routing it through a hook.
class Base : public das::Auditable {
 public:
  void check_invariants() const final { check_policy_invariants(); }

 protected:
  virtual void check_policy_invariants() const {}
};

class Policy : public Base {  // fine: Base's final override covers it
 protected:
  void check_policy_invariants() const override {}
};

/// Abstract classes are exempt; their concrete descendants stay on the hook.
class StillAbstract : public das::Auditable {
 public:
  virtual void extra_hook() const = 0;
};

/// The overload-layer shapes (src/overload): counter-carrying guards and
/// per-tenant controllers are Auditable leaves with their own audits.
class QueueGuardLike final : public das::Auditable {
 public:
  void check_invariants() const override {}

 private:
  unsigned long long rejected_busy_ = 0;
  unsigned long long dropped_sojourn_ = 0;
  unsigned long long expired_ = 0;
};

class AdmissionLike final : public das::Auditable {
 public:
  void check_invariants() const override {}

 private:
  double rate_ = 1.0;
  unsigned long long admitted_ = 0;
  unsigned long long refused_ = 0;
};

}  // namespace fix
