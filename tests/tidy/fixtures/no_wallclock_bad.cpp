// das-no-wallclock must flag every wall-clock / ambient-entropy use here.
#include "stubs.hpp"

long read_host_time() {
  return std::chrono::steady_clock::now();  // banned type mention
}

long read_epoch() {
  using Clock = std::chrono::system_clock;  // banned even behind an alias
  return Clock::now();
}

unsigned ambient_entropy() {
  std::random_device rd;  // banned hardware entropy
  return rd();
}

int libc_randomness() {
  ::srand(static_cast<unsigned>(::time(nullptr)));  // two banned calls
  return ::rand();                                  // and a third
}
