// The sanctioned sources of time and randomness: das-no-wallclock stays
// silent on this file.
#include "stubs.hpp"

double simulated_draw(double sim_now_us) {
  das::Rng rng{42};                      // explicit seed: reproducible
  das::Rng stream = rng.fork(7);        // derived stream: still reproducible
  return sim_now_us + stream.uniform(1.0, 10.0);
}
