// Hermetic stand-ins for the std:: and das:: declarations the das- check
// fixtures exercise. Fixtures compile against this header only — no system
// headers — so the fixture tests run in milliseconds and behave identically
// on every host stdlib. Shapes (names, namespaces, default arguments) mirror
// the real declarations; bodies are irrelevant to the AST matchers.
#pragma once

namespace std {

namespace chrono {
struct system_clock {
  static long now();
};
struct steady_clock {
  static long now();
};
struct high_resolution_clock {
  static long now();
};
}  // namespace chrono

struct random_device {
  random_device();
  unsigned operator()();
};

template <unsigned long long... Params>
struct mersenne_twister_engine {
  mersenne_twister_engine();
};
using mt19937 = mersenne_twister_engine<32, 624>;

template <typename K, typename V>
struct unordered_map {
  V& operator[](const K&);
};
template <typename K>
struct unordered_set {
  bool insert(const K&);
};
template <typename K, typename V>
struct unordered_multimap {};
template <typename K>
struct unordered_multiset {};

template <typename K, typename V>
struct map {
  V& operator[](const K&);
};
template <typename K>
struct set {
  bool insert(const K&);
};

template <typename Sig>
class function;
template <typename R, typename... Args>
class function<R(Args...)> {
 public:
  function();
  template <typename F>
  function(F);  // NOLINT(google-explicit-constructor)
  R operator()(Args...) const;
};

long time(long*);
int rand();
void srand(unsigned);

}  // namespace std

extern "C" {
long time(long*);
int rand();
void srand(unsigned);
}

namespace das {

/// Mirrors src/common/rng.hpp: explicit ctor with a defaulted seed, so
/// `Rng r;` still goes through a CXXConstructExpr with a CXXDefaultArgExpr.
class Rng {
 public:
  explicit Rng(unsigned long long seed = 0x9E3779B97F4A7C15ull);
  Rng fork(unsigned long long tag);
  double uniform(double lo, double hi);
};

class Auditable {
 public:
  virtual ~Auditable();
  virtual void check_invariants() const = 0;
};

template <typename K, typename V>
class FlatMap {
 public:
  V& operator[](const K&);
};
template <typename K>
class FlatSet {
 public:
  bool insert(K);
};

template <typename Sig>
class SmallFn;
template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  SmallFn();
  template <typename F>
  SmallFn(F);  // NOLINT(google-explicit-constructor)
  R operator()(Args...) const;
};

}  // namespace das
