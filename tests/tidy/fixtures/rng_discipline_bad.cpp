// das-rng-discipline must flag every construction here.
#include "stubs.hpp"

double sample() {
  das::Rng rng;  // default seed: silently shares the library-default stream
  return rng.uniform(0.0, 1.0);
}

struct Component {
  Component() {}  // rng_ omitted from the init list: implicitly default-seeded
  das::Rng rng_;
};

unsigned std_engine() {
  std::mt19937 twister;  // unsanctioned engine, stdlib-specific distributions
  (void)twister;
  return 0;
}
