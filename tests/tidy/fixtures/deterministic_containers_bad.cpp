// das-deterministic-containers must flag each hash-ordered container here.
#include "stubs.hpp"

struct Registry {
  std::unordered_map<int, double> by_id;  // member
  std::unordered_set<int> seen;           // member
};

int count_locals() {
  std::unordered_map<long, long> local;   // local
  using Index = std::unordered_set<int>;  // alias
  Index idx;                              // and its use
  return static_cast<int>(idx.insert(1));
}
