// das-no-std-function-hot-path must flag each std::function mention inside
// the hot-path namespaces (default option: das::sim;das::sched;das::net).
#include "stubs.hpp"

namespace das::sim {
struct Event {
  std::function<void()> callback;  // hot path: member
};
void dispatch(std::function<void()> cb) { cb(); }  // hot path: parameter
}  // namespace das::sim

namespace das {
namespace net {
using Handler = std::function<void(int)>;  // hot path: alias (nested spelling)
}  // namespace net
}  // namespace das
