// Disciplined RNG use: explicit seeds, forked streams, copies of existing
// streams. das-rng-discipline stays silent here.
#include "stubs.hpp"

struct Component {
  explicit Component(das::Rng rng) : rng_(rng.fork(0xC0117)) {}
  das::Rng rng_;
};

double sample(unsigned long long seed) {
  das::Rng rng{seed};           // explicit seed
  das::Rng copy = rng;          // copying an existing stream is fine
  Component c{rng.fork(1)};     // forked stream
  return copy.uniform(0.0, 1.0);
}
