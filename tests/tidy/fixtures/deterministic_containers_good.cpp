// Deterministic containers, plus the sanctioned NOLINT escape for a
// lookup-only table: das-deterministic-containers stays silent here.
#include "stubs.hpp"

struct Registry {
  das::FlatMap<int, double> by_id;
  das::FlatSet<int> seen;
  std::map<int, double> ordered;  // ordered: iteration order is the key order
  // Lookup-only: populated once, never iterated, so its order never leaks.
  std::unordered_map<int, int> memo;  // NOLINT(das-deterministic-containers): lookup-only cache, never iterated
};
