// SmallFn on the hot path, std::function only outside it:
// das-no-std-function-hot-path stays silent here.
#include "stubs.hpp"

namespace das::sim {
struct Event {
  das::SmallFn<void()> callback;  // fixed-capacity, no heap, single indirection
};
void dispatch(const das::SmallFn<void()>& cb) { cb(); }
}  // namespace das::sim

namespace das::core {
// Setup-time wiring: not a hot-path namespace, flexibility wins.
struct Harness {
  std::function<void(int)> on_response;
};
}  // namespace das::core
