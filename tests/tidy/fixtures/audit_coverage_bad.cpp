// das-audit-coverage must flag Leaf: it adds state but silently inherits a
// non-final check_invariants(), so audits never see `extra_`.
#include "stubs.hpp"

namespace fix {

class Mid : public das::Auditable {
 public:
  void check_invariants() const override {}  // fine: declared here
};

class Leaf : public Mid {  // BAD: new state, inherited non-final audit
 public:
  int extra_ = 0;
};

}  // namespace fix
