// das-audit-coverage must flag Leaf: it adds state but silently inherits a
// non-final check_invariants(), so audits never see `extra_`.
#include "stubs.hpp"

namespace fix {

class Mid : public das::Auditable {
 public:
  void check_invariants() const override {}  // fine: declared here
};

class Leaf : public Mid {  // BAD: new state, inherited non-final audit
 public:
  int extra_ = 0;
};

/// The overload-layer trap: a specialised guard that grows its own shed
/// counter on top of an audited base. The base's audit checks ITS counters;
/// the new one is invisible to audits unless the subclass overrides too.
class GuardBase : public das::Auditable {
 public:
  void check_invariants() const override {}

 private:
  unsigned long long rejected_busy_ = 0;
};

class TenantGuard : public GuardBase {  // BAD: new counter, inherited audit
 public:
  unsigned long long tenant_shed_ = 0;
};

}  // namespace fix
