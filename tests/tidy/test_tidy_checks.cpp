// Fixture tests for the das- clang-tidy checks (tools/tidy).
//
// Each test shells out to the host clang-tidy with the plugin loaded and a
// single das- check enabled, over a pair of hermetic fixtures
// (tests/tidy/fixtures): the *_bad.cpp file must produce at least the
// expected number of diagnostics from that check, the *_good.cpp file —
// which for das-deterministic-containers includes the sanctioned NOLINT
// escape — must produce none.
//
// The build passes the clang-tidy path, plugin path and fixture dir in as
// compile definitions when the plugin was built; in a gcc-only environment
// they are absent and every test SKIPs (the suite still passes).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#if defined(DAS_TIDY_PLUGIN) && defined(DAS_CLANG_TIDY_EXE) && \
    defined(DAS_TIDY_FIXTURE_DIR)
constexpr bool kHaveTidy = true;
const char* const kClangTidy = DAS_CLANG_TIDY_EXE;
const char* const kPlugin = DAS_TIDY_PLUGIN;
const char* const kFixtureDir = DAS_TIDY_FIXTURE_DIR;
#else
constexpr bool kHaveTidy = false;
const char* const kClangTidy = "";
const char* const kPlugin = "";
const char* const kFixtureDir = "";
#endif

/// Runs `cmd`, returns its combined stdout (stderr discarded: clang-tidy
/// prints the "N warnings generated" chatter there, diagnostics go to
/// stdout).
std::string run_command(const std::string& cmd) {
  std::string output;
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return output;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr)
    output += buf.data();
  pclose(pipe);
  return output;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

/// clang-tidy over one fixture with exactly one das- check enabled.
std::string run_check(const std::string& check, const std::string& fixture) {
  const std::string cmd = std::string(kClangTidy) + " --load=" + kPlugin +
                          " --checks='-*," + check + "' " + kFixtureDir + "/" +
                          fixture + " -- -std=c++17 -I" + kFixtureDir;
  return run_command(cmd);
}

class TidyCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kHaveTidy)
      GTEST_SKIP() << "clang-tidy plugin not built in this environment";
  }

  /// The bad fixture must yield >= min_diags diagnostics tagged with the
  /// check; the good fixture must yield zero das- diagnostics of any kind.
  void expect_flags(const std::string& check, std::size_t min_diags) {
    const std::string tag = "[" + check + "]";
    const std::string bad = run_check(check, check_file(check, "bad"));
    EXPECT_GE(count_occurrences(bad, tag), min_diags)
        << "clang-tidy output for bad fixture:\n"
        << bad;
    const std::string good = run_check(check, check_file(check, "good"));
    EXPECT_EQ(count_occurrences(good, "[das-"), 0u)
        << "clang-tidy output for good fixture:\n"
        << good;
  }

  /// "das-no-wallclock" + "bad" -> "no_wallclock_bad.cpp".
  static std::string check_file(const std::string& check,
                                const std::string& kind) {
    std::string stem = check.substr(std::string("das-").size());
    for (char& c : stem)
      if (c == '-') c = '_';
    return stem + "_" + kind + ".cpp";
  }
};

TEST_F(TidyCheck, PluginLoadsAndListsChecks) {
  const std::string out = run_command(std::string(kClangTidy) + " --load=" +
                                      kPlugin + " --checks='das-*' --list-checks");
  EXPECT_NE(out.find("das-no-wallclock"), std::string::npos) << out;
  EXPECT_NE(out.find("das-deterministic-containers"), std::string::npos) << out;
  EXPECT_NE(out.find("das-rng-discipline"), std::string::npos) << out;
  EXPECT_NE(out.find("das-no-std-function-hot-path"), std::string::npos) << out;
  EXPECT_NE(out.find("das-audit-coverage"), std::string::npos) << out;
}

TEST_F(TidyCheck, NoWallclock) {
  // steady_clock, system_clock alias, random_device, srand+time+rand.
  expect_flags("das-no-wallclock", 5);
}

TEST_F(TidyCheck, DeterministicContainers) {
  // Two members, one local, one alias (the aliased use may or may not
  // re-report depending on sugar — require the four written mentions).
  expect_flags("das-deterministic-containers", 4);
}

TEST_F(TidyCheck, RngDiscipline) {
  // Default-seeded local, member omitted from init list, std::mt19937.
  expect_flags("das-rng-discipline", 3);
}

TEST_F(TidyCheck, NoStdFunctionHotPath) {
  // Member, parameter, alias — all inside hot-path namespaces.
  expect_flags("das-no-std-function-hot-path", 3);
}

TEST_F(TidyCheck, AuditCoverage) {
  // Two offenders: Leaf, and the overload-shaped TenantGuard (new counter
  // on an audited guard base without its own override).
  expect_flags("das-audit-coverage", 2);
}

}  // namespace
