#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace das::net {
namespace {

Network make_net(sim::Simulator& sim, LatencyPtr latency, bool fifo = true,
                 double bandwidth = 0.0) {
  Network::Config cfg;
  cfg.latency = std::move(latency);
  cfg.fifo_per_link = fifo;
  cfg.bandwidth_bytes_per_us = bandwidth;
  return Network{sim, cfg, Rng{1}};
}

TEST(LatencyModels, ConstantIsExact) {
  auto m = make_constant_latency(7.0);
  Rng rng{1};
  EXPECT_DOUBLE_EQ(m->sample(rng), 7.0);
  EXPECT_DOUBLE_EQ(m->mean(), 7.0);
}

TEST(LatencyModels, UniformBoundsAndMean) {
  auto m = make_uniform_latency(2.0, 10.0);
  Rng rng{2};
  for (int i = 0; i < 10000; ++i) {
    const Duration d = m->sample(rng);
    ASSERT_GE(d, 2.0);
    ASSERT_LT(d, 10.0);
  }
  EXPECT_DOUBLE_EQ(m->mean(), 6.0);
}

TEST(LatencyModels, LognormalEmpiricalMean) {
  auto m = make_lognormal_latency(20.0, 0.5);
  Rng rng{3};
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += m->sample(rng);
  EXPECT_NEAR(sum / n, 20.0, 0.3);
}

TEST(Network, DeliversAfterConstantLatency) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(5.0));
  SimTime delivered = -1;
  net.send(0, 1, 100, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, 5.0);
}

TEST(Network, BandwidthAddsSerialisationDelay) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(5.0), true, 10.0);
  SimTime delivered = -1;
  net.send(0, 1, 200, [&] { delivered = sim.now(); });  // 200B / 10B-per-us = 20us
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, 25.0);
}

TEST(Network, FifoPreservesPerLinkOrderUnderJitter) {
  sim::Simulator sim;
  Network net = make_net(sim, make_uniform_latency(1.0, 100.0), true);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) net.send(0, 1, 10, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 200; ++i) ASSERT_EQ(order[i], i);
}

TEST(Network, DifferentLinksCanReorder) {
  sim::Simulator sim;
  Network net = make_net(sim, make_uniform_latency(1.0, 100.0), true);
  std::vector<int> order;
  bool reordered = false;
  int expected = 0;
  for (int i = 0; i < 200; ++i) {
    const NodeId src = i % 4;
    net.send(src, 9, 10, [&, i] {
      if (i != expected) reordered = true;
      ++expected;
    });
  }
  sim.run();
  EXPECT_TRUE(reordered);  // cross-link ordering is NOT guaranteed
}

TEST(Network, NonFifoCanReorderSameLink) {
  sim::Simulator sim;
  Network net = make_net(sim, make_uniform_latency(1.0, 100.0), false);
  bool reordered = false;
  int expected = 0;
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1, 10, [&, i] {
      if (i != expected) reordered = true;
      ++expected;
    });
  }
  sim.run();
  EXPECT_TRUE(reordered);
}

TEST(Network, StatsCountMessagesAndBytes) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(1.0));
  net.send(0, 1, 100, [] {});
  net.send(1, 0, 250, [] {});
  sim.run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 350u);
}

TEST(Network, NullDeliveryThrows) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(1.0));
  EXPECT_THROW(net.send(0, 1, 10, nullptr), std::logic_error);
}

TEST(Network, LossDropsConfiguredFraction) {
  sim::Simulator sim;
  Network::Config cfg;
  cfg.latency = make_constant_latency(1.0);
  cfg.loss_probability = 0.25;
  Network net{sim, cfg, Rng{7}};
  int delivered = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) net.send(0, 1, 8, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(net.stats().messages_sent, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(net.stats().messages_dropped) / n, 0.25, 0.01);
  EXPECT_EQ(delivered + static_cast<int>(net.stats().messages_dropped), n);
}

TEST(Network, ZeroLossDeliversEverything) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(1.0));
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) net.send(0, 1, 8, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 1000);
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

TEST(Network, InvalidLossProbabilityRejected) {
  sim::Simulator sim;
  Network::Config cfg;
  cfg.latency = make_constant_latency(1.0);
  cfg.loss_probability = 1.0;
  EXPECT_THROW((Network{sim, cfg, Rng{1}}), std::logic_error);
}

// The delivery callback must move through send() and the event queue, never
// copy: a copy would double the captured per-op state (an OpContext on the
// cluster path) on every message. Counted end to end: call site -> EventFn
// -> scheduler slot -> dispatch.
TEST(Network, DeliveryCallbackIsMovedNotCopied) {
  struct Probe {
    int* copies;
    int* moves;
    int* invoked;
    Probe(int* c, int* m, int* i) : copies(c), moves(m), invoked(i) {}
    Probe(const Probe& o)
        : copies(o.copies), moves(o.moves), invoked(o.invoked) {
      ++*copies;
    }
    Probe(Probe&& o) noexcept
        : copies(o.copies), moves(o.moves), invoked(o.invoked) {
      ++*moves;
    }
    void operator()() const { ++*invoked; }
  };
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(1.0));
  int copies = 0, moves = 0, invoked = 0;
  net.send(0, 1, 8, Probe{&copies, &moves, &invoked});
  sim.run();
  EXPECT_EQ(invoked, 1);
  EXPECT_EQ(copies, 0);
  // Bounded hand-offs: into the EventFn, through schedule, into the pooled
  // slot, out at dispatch. A regression to by-value plumbing shows up here.
  EXPECT_LE(moves, 4);
}

TEST(Network, ZeroLatencyDeliversImmediatelyInOrder) {
  sim::Simulator sim;
  Network net = make_net(sim, make_constant_latency(0.0));
  std::vector<int> order;
  net.send(0, 1, 1, [&] { order.push_back(1); });
  net.send(0, 1, 1, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

}  // namespace
}  // namespace das::net
