// Cross-policy overload properties: the extended conservation law
//
//   generated == completed + failed + shed + expired
//
// and clean structural audits must hold for EVERY scheduling policy, with
// and without bounded queues, with and without deadlines, across seeds.
// The overload layer lives outside the schedulers — no policy should be
// able to break it, and no protection combination should be able to lose
// or double-count a request under any policy.
//
// Bit-identity of feature-off runs with the pre-PR engine is enforced by
// the pinned golden grid (test_golden_results.cpp, generated before this
// layer existed); here we additionally pin that an explicitly-constructed
// all-off OverloadConfig is indistinguishable from the default.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "overload/overload.hpp"

namespace das::core {
namespace {

ClusterConfig property_config(sched::Policy policy, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 2;
  cfg.keys_per_server = 100;
  cfg.zipf_theta = 0.6;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 1.2;  // past saturation: protections actually engage
  cfg.fanout = make_uniform_int(1, 6);
  cfg.policy = policy;
  cfg.seed = seed;
  cfg.audit_every_events = 256;  // deep structural audits along the run
  return cfg;
}

RunWindow property_window() {
  RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 10.0 * kMillisecond;
  return w;
}

void expect_conserved(const ExperimentResult& r, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed +
                                      r.requests_shed + r.requests_expired);
  EXPECT_LE(r.goodput_rps, r.throughput_rps + 1e-9);
  EXPECT_GE(r.wasted_service_us, 0.0);
}

// The bounded/unbounded x deadline on/off grid of the issue. Audits run
// during every simulation (audit_every_events above) and throw on the first
// violated invariant, so a plain successful run IS the audit assertion.
TEST(OverloadProperties, ConservationAcrossPoliciesProtectionsAndSeeds) {
  for (const sched::Policy policy : sched::all_policies()) {
    for (const bool bounded : {false, true}) {
      for (const bool deadlines : {false, true}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
          ClusterConfig cfg = property_config(policy, seed);
          if (bounded) cfg.overload.queue_cap = 24;
          if (deadlines) cfg.overload.deadline_budget_us = 4.0 * kMillisecond;
          const std::string what = std::string(sched::to_string(policy)) +
                                   (bounded ? " bounded" : " unbounded") +
                                   (deadlines ? " deadline" : " no-deadline") +
                                   " seed=" + std::to_string(seed);
          SCOPED_TRACE(what);
          const ExperimentResult r = run_experiment(cfg, property_window());
          expect_conserved(r, what.c_str());
          if (!bounded) {
            EXPECT_EQ(r.ops_rejected_busy, 0u);
            EXPECT_EQ(r.ops_shed_sojourn, 0u);
          }
          if (!deadlines) {
            EXPECT_EQ(r.requests_expired, 0u);
            EXPECT_EQ(r.ops_expired_dropped, 0u);
          }
        }
      }
    }
  }
}

// The sojourn-drop rejection policy rides the same grid; one policy per
// scheduler family keeps the runtime in check while still crossing the
// protection with every scheduling discipline shape.
TEST(OverloadProperties, SojournDropConservesAcrossPolicies) {
  for (const sched::Policy policy : sched::all_policies()) {
    ClusterConfig cfg = property_config(policy, 3);
    cfg.overload.queue_cap = 24;
    cfg.overload.reject_policy = overload::RejectPolicy::kSojournDrop;
    cfg.overload.deadline_budget_us = 4.0 * kMillisecond;
    const std::string what =
        std::string("sojourn-drop ") + sched::to_string(policy);
    SCOPED_TRACE(what);
    const ExperimentResult r = run_experiment(cfg, property_window());
    expect_conserved(r, what.c_str());
  }
}

// Admission control stacked on top must still close the books — shed at
// admission is still shed, and the coin flips must not disturb the
// workload stream that conservation is counted against.
TEST(OverloadProperties, AdmissionStacksWithoutLeaks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ClusterConfig cfg = property_config(sched::Policy::kDas, seed);
    cfg.overload.queue_cap = 24;
    cfg.overload.deadline_budget_us = 4.0 * kMillisecond;
    cfg.overload.admission = true;
    const std::string what = "admission seed=" + std::to_string(seed);
    SCOPED_TRACE(what);
    const ExperimentResult r = run_experiment(cfg, property_window());
    expect_conserved(r, what.c_str());
    EXPECT_LE(r.requests_shed_admission, r.requests_shed);
  }
}

// An explicitly-constructed all-off OverloadConfig (even with non-default
// AIMD tuning, which is inert while `admission` is false) must be
// bit-identical to the default: the tuning knobs alone must not perturb a
// single RNG draw or wire byte.
TEST(OverloadProperties, InertKnobsAreBitIdentical) {
  const ExperimentResult base =
      run_experiment(property_config(sched::Policy::kDas, 5), property_window());
  ClusterConfig cfg = property_config(sched::Policy::kDas, 5);
  cfg.overload.admission_floor = 0.5;
  cfg.overload.admission_increase = 0.9;
  cfg.overload.admission_decrease = 0.1;
  cfg.overload.sojourn_threshold_us = 123.0;  // inert without queue_cap
  const ExperimentResult tuned = run_experiment(cfg, property_window());
  EXPECT_EQ(base.requests_generated, tuned.requests_generated);
  EXPECT_EQ(base.net_messages, tuned.net_messages);
  EXPECT_EQ(base.net_bytes, tuned.net_bytes);
  EXPECT_EQ(base.rct.mean, tuned.rct.mean);
  EXPECT_EQ(base.rct.p999, tuned.rct.p999);
  EXPECT_EQ(tuned.requests_shed, 0u);
  EXPECT_EQ(tuned.requests_expired, 0u);
  EXPECT_DOUBLE_EQ(tuned.goodput_rps, tuned.throughput_rps);
}

}  // namespace
}  // namespace das::core
