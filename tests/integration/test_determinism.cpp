// Determinism regression: two full simulator runs with the same seed and
// config must produce BIT-IDENTICAL results — every statistic, not just the
// mean. Unordered-container iteration order leaking into scheduling
// decisions, uninitialized reads, or wall-clock contamination all break this
// before they are large enough to move an assertion with a tolerance.
//
// Also exercises the continuous invariant audit end-to-end: full runs with a
// tight audit cadence must complete without an AuditError, so every
// conservation and ordering invariant holds at thousands of intermediate
// points of a realistic workload, not just at the end.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig small_config(sched::Policy policy) {
  ClusterConfig cfg;
  cfg.num_servers = 12;
  cfg.num_clients = 3;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = LoadCalibration::kHottestServer;
  cfg.target_load = 0.7;
  cfg.policy = policy;
  cfg.seed = 777;
  cfg.timeline_bucket_us = 5.0 * kMillisecond;
  return cfg;
}

RunWindow short_window() {
  RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 20.0 * kMillisecond;
  return w;
}

void expect_bit_identical(const LatencySummary& a, const LatencySummary& b,
                          const char* which) {
  EXPECT_EQ(a.count, b.count) << which;
  // EXPECT_DOUBLE_EQ tolerates 4 ulps; determinism means exact bit equality.
  EXPECT_EQ(a.mean, b.mean) << which;
  EXPECT_EQ(a.p50, b.p50) << which;
  EXPECT_EQ(a.p95, b.p95) << which;
  EXPECT_EQ(a.p99, b.p99) << which;
  EXPECT_EQ(a.p999, b.p999) << which;
  EXPECT_EQ(a.max, b.max) << which;
}

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  expect_bit_identical(a.rct, b.rct, "rct");
  expect_bit_identical(a.op_latency, b.op_latency, "op_latency");
  expect_bit_identical(a.op_wait, b.op_wait, "op_wait");
  EXPECT_EQ(a.requests_generated, b.requests_generated);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.requests_measured, b.requests_measured);
  EXPECT_EQ(a.ops_generated, b.ops_generated);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.mean_server_utilization, b.mean_server_utilization);
  EXPECT_EQ(a.max_server_utilization, b.max_server_utilization);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.progress_messages, b.progress_messages);
  EXPECT_EQ(a.ops_deferred, b.ops_deferred);
  EXPECT_EQ(a.ops_resumed, b.ops_resumed);
  EXPECT_EQ(a.ops_aged, b.ops_aged);
  EXPECT_EQ(a.reranks_applied, b.reranks_applied);
  EXPECT_EQ(a.breakdown.requests, b.breakdown.requests);
  EXPECT_EQ(a.breakdown.mean_rct_us, b.breakdown.mean_rct_us);
  EXPECT_EQ(a.breakdown.mean_network_us, b.breakdown.mean_network_us);
  EXPECT_EQ(a.breakdown.mean_runnable_wait_us, b.breakdown.mean_runnable_wait_us);
  EXPECT_EQ(a.breakdown.mean_deferred_wait_us, b.breakdown.mean_deferred_wait_us);
  EXPECT_EQ(a.breakdown.mean_service_us, b.breakdown.mean_service_us);
  EXPECT_EQ(a.breakdown.mean_straggler_slack_us,
            b.breakdown.mean_straggler_slack_us);
  EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].bucket_start, b.timeline[i].bucket_start);
    EXPECT_EQ(a.timeline[i].mean_rct, b.timeline[i].mean_rct);
    EXPECT_EQ(a.timeline[i].p99_rct, b.timeline[i].p99_rct);
    EXPECT_EQ(a.timeline[i].count, b.timeline[i].count);
  }
}

class DeterminismBitIdentical : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(DeterminismBitIdentical, SameSeedSameBits) {
  const auto cfg = small_config(GetParam());
  const ExperimentResult a = run_experiment(cfg, short_window());
  const ExperimentResult b = run_experiment(cfg, short_window());
  expect_bit_identical(a, b);
}

TEST_P(DeterminismBitIdentical, DifferentSeedsactuallyDiffer) {
  // Guards the guard: if the workload ignored the seed, the bit-identical
  // test above would pass vacuously.
  auto cfg = small_config(GetParam());
  const ExperimentResult a = run_experiment(cfg, short_window());
  cfg.seed = 778;
  const ExperimentResult b = run_experiment(cfg, short_window());
  EXPECT_NE(a.rct.mean, b.rct.mean);
}

INSTANTIATE_TEST_SUITE_P(KeyPolicies, DeterminismBitIdentical,
                         ::testing::Values(sched::Policy::kFcfs,
                                           sched::Policy::kReinSbf,
                                           sched::Policy::kReqSrpt,
                                           sched::Policy::kDas),
                         [](const auto& param_info) {
                           auto name = sched::to_string(param_info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class ContinuousAudit : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(ContinuousAudit, FullRunStaysClean) {
  auto cfg = small_config(GetParam());
  cfg.audit_every_events = 64;
  const ExperimentResult r = run_experiment(cfg, short_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_GT(r.requests_measured, 0u);
}

TEST(ContinuousAuditModes, PreemptiveServiceStaysClean) {
  auto cfg = small_config(sched::Policy::kReqSrpt);
  cfg.preemptive_service = true;
  cfg.audit_every_events = 64;
  const ExperimentResult r = run_experiment(cfg, short_window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

TEST(ContinuousAuditModes, AuditDoesNotChangeResults) {
  // Auditing is observation only: a run with a tight cadence must produce
  // bit-identical numbers to an unaudited run.
  auto cfg = small_config(sched::Policy::kDas);
  const ExperimentResult plain = run_experiment(cfg, short_window());
  cfg.audit_every_events = 32;
  const ExperimentResult audited = run_experiment(cfg, short_window());
  expect_bit_identical(plain, audited);
}

INSTANTIATE_TEST_SUITE_P(KeyPolicies, ContinuousAudit,
                         ::testing::Values(sched::Policy::kFcfs,
                                           sched::Policy::kSjf,
                                           sched::Policy::kReinSbf,
                                           sched::Policy::kReqSrpt,
                                           sched::Policy::kDas,
                                           sched::Policy::kDasCritical),
                         [](const auto& param_info) {
                           auto name = sched::to_string(param_info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace das::core
