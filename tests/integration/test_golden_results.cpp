// Golden pinned-results regression: a fixed-seed E1-style grid (the five
// headline policies x loads {0.5, 0.8}) must reproduce EXACT pinned numbers.
//
// The determinism suite (test_determinism.cpp) proves two runs in the same
// build agree bit-for-bit; this test pins the values themselves, so any
// behaviour drift introduced by a refactor — container iteration order leaking
// into scheduling, an RNG consumed in a different order, a changed tie-break
// — fails loudly instead of silently shifting every published figure. The
// same table also protects every FUTURE refactor of the hot path. The
// engine-overhaul PR's hard constraint ("bit-identical ExperimentResult
// before vs after") is enforced exactly here: the table below was generated
// by the pre-overhaul engine.
//
// Updating the table (ONLY after an intentional behaviour change, with the
// diff explained in the PR):
//
//   DAS_REGEN_GOLDEN=1 ./build/tests/test_integration
//       --gtest_filter='GoldenResults.*' 2>/dev/null   (one command line)
//
// and paste the printed rows over kGolden below. Values are printed with
// %.17g, which round-trips doubles exactly, so EXPECT_EQ on the parsed
// literals is bit-exact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "workload/registry.hpp"

namespace das::core {
namespace {

struct GoldenCase {
  sched::Policy policy;
  double load;
};

struct GoldenRow {
  sched::Policy policy;
  double load;
  std::uint64_t requests_measured;
  double mean_rct_us;
  double p99_us;
};

// The five headline policies of the paper's figures (bench_common's
// headline_policies()), at a moderate and a high load.
constexpr GoldenCase kGrid[] = {
    {sched::Policy::kFcfs, 0.5},    {sched::Policy::kFcfs, 0.8},
    {sched::Policy::kSjf, 0.5},     {sched::Policy::kSjf, 0.8},
    {sched::Policy::kReqSrpt, 0.5}, {sched::Policy::kReqSrpt, 0.8},
    {sched::Policy::kReinSbf, 0.5}, {sched::Policy::kReinSbf, 0.8},
    {sched::Policy::kDas, 0.5},     {sched::Policy::kDas, 0.8},
};

ClusterConfig golden_config(sched::Policy policy, double load) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = LoadCalibration::kHottestServer;
  cfg.target_load = load;
  cfg.policy = policy;
  cfg.seed = 20260805;
  return cfg;
}

RunWindow golden_window() {
  RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 20.0 * kMillisecond;
  return w;
}

const char* policy_token(sched::Policy policy) {
  switch (policy) {
    case sched::Policy::kFcfs: return "sched::Policy::kFcfs";
    case sched::Policy::kSjf: return "sched::Policy::kSjf";
    case sched::Policy::kReqSrpt: return "sched::Policy::kReqSrpt";
    case sched::Policy::kReinSbf: return "sched::Policy::kReinSbf";
    case sched::Policy::kDas: return "sched::Policy::kDas";
    default: return "sched::Policy::kFcfs";
  }
}

// Pinned by the pre-overhaul engine (see the regen instructions above).
const GoldenRow kGolden[] = {
    // clang-format off
    {sched::Policy::kFcfs, 0.50, 238u, 111.7815549937673, 411.93545138558216},
    {sched::Policy::kFcfs, 0.80, 409u, 234.13564971657101, 771.03788468444714},
    {sched::Policy::kSjf, 0.50, 238u, 115.89562849463877, 538.89761471378563},
    {sched::Policy::kSjf, 0.80, 409u, 274.25575052204283, 1743.5257573947529},
    {sched::Policy::kReqSrpt, 0.50, 238u, 99.653541968123918, 468.82096919418495},
    {sched::Policy::kReqSrpt, 0.80, 409u, 159.21952965601406, 786.5357461666041},
    {sched::Policy::kReinSbf, 0.50, 238u, 101.95866451283365, 589.38438469719779},
    {sched::Policy::kReinSbf, 0.80, 409u, 176.83738478890336, 1346.0855100626377},
    {sched::Policy::kDas, 0.50, 238u, 100.2852144744184, 468.82096919418495},
    {sched::Policy::kDas, 0.80, 409u, 163.36876977997159, 1136.6043007220296},
    // clang-format on
};

// --- replica-selection dimension --------------------------------------------
//
// Same idea, one level up the stack: the client-side replica-selection layer
// (src/select) must not drift either. Replication 2 under DAS (the adaptive
// view feeds selection) pins every selection mode at the same two loads. The
// primary/random/least-delay rows below were generated BEFORE the selector
// refactor (PR 7) promoted the inline `Client::pick_server` switch into the
// pluggable layer — they prove the refactor is bit-exact. The tars and
// power-of-d rows pin the new modes from their first version.

struct SelectionGoldenRow {
  ReplicaSelection selection;
  double load;
  std::uint64_t requests_measured;
  double mean_rct_us;
  double p99_us;
};

constexpr ReplicaSelection kSelectionModes[] = {
    ReplicaSelection::kPrimary,    ReplicaSelection::kRandom,
    ReplicaSelection::kLeastDelay, ReplicaSelection::kTars,
    ReplicaSelection::kPowerOfD,   ReplicaSelection::kC3,
};

ClusterConfig selection_golden_config(ReplicaSelection selection, double load) {
  ClusterConfig cfg = golden_config(sched::Policy::kDas, load);
  cfg.replication = 2;
  cfg.replica_selection = selection;
  return cfg;
}

const char* selection_token(ReplicaSelection selection) {
  switch (selection) {
    case ReplicaSelection::kPrimary: return "ReplicaSelection::kPrimary";
    case ReplicaSelection::kRandom: return "ReplicaSelection::kRandom";
    case ReplicaSelection::kLeastDelay: return "ReplicaSelection::kLeastDelay";
    case ReplicaSelection::kTars: return "ReplicaSelection::kTars";
    case ReplicaSelection::kPowerOfD: return "ReplicaSelection::kPowerOfD";
    case ReplicaSelection::kC3: return "ReplicaSelection::kC3";
  }
  return "ReplicaSelection::kPrimary";
}

// Pinned by the pre-refactor inline pick_server (see above).
const SelectionGoldenRow kSelectionGolden[] = {
    // clang-format off
    {ReplicaSelection::kPrimary, 0.50, 238u, 100.2852144744184, 468.82096919418495},
    {ReplicaSelection::kPrimary, 0.80, 409u, 163.36876977997159, 1136.6043007220296},
    {ReplicaSelection::kRandom, 0.50, 304u, 110.09686772357466, 450.52773647699598},
    {ReplicaSelection::kRandom, 0.80, 512u, 156.60461695419744, 712.04055040433855},
    {ReplicaSelection::kLeastDelay, 0.50, 308u, 128.04665772156497, 544.28659086092296},
    {ReplicaSelection::kLeastDelay, 0.80, 504u, 168.51746036498113, 851.70550695269287},
    {ReplicaSelection::kTars, 0.50, 308u, 140.72191534556796, 684.25697341329601},
    {ReplicaSelection::kTars, 0.80, 504u, 177.07133119319812, 950.2208747876565},
    {ReplicaSelection::kPowerOfD, 0.50, 279u, 120.5384824696981, 549.72945676953248},
    {ReplicaSelection::kPowerOfD, 0.80, 467u, 168.45944438727741, 860.22256202222036},
    {ReplicaSelection::kC3, 0.50, 308u, 128.04665772156497, 544.28659086092296},
    {ReplicaSelection::kC3, 0.80, 504u, 168.51746036498113, 851.70550695269287},
    // clang-format on
};

TEST(GoldenResults, PinnedSelectionGridIsBitExact) {
  if (std::getenv("DAS_REGEN_GOLDEN") != nullptr) {
    for (const ReplicaSelection selection : kSelectionModes) {
      for (const double load : {0.5, 0.8}) {
        const ExperimentResult r = run_experiment(
            selection_golden_config(selection, load), golden_window());
        std::printf("    {%s, %.2f, %lluu, %.17g, %.17g},\n",
                    selection_token(selection), load,
                    static_cast<unsigned long long>(r.requests_measured),
                    r.rct.mean, r.rct.p99);
      }
    }
    GTEST_SKIP() << "DAS_REGEN_GOLDEN set: printed fresh rows, skipped the "
                    "comparison";
  }
  ASSERT_EQ(std::size(kSelectionGolden), std::size(kSelectionModes) * 2)
      << "selection golden table incomplete — regenerate with "
         "DAS_REGEN_GOLDEN=1";
  for (const SelectionGoldenRow& row : kSelectionGolden) {
    SCOPED_TRACE(std::string(selection_token(row.selection)) +
                 " @ load=" + std::to_string(row.load));
    const ExperimentResult r = run_experiment(
        selection_golden_config(row.selection, row.load), golden_window());
    EXPECT_EQ(r.requests_measured, row.requests_measured);
    EXPECT_EQ(r.rct.mean, row.mean_rct_us);
    EXPECT_EQ(r.rct.p99, row.p99_us);
  }
}

// --- multi-tenant dimension -------------------------------------------------
//
// One pinned multi-tenant row: a drifting, storm-prone YCSB-B tenant next to
// a read-only tenant with twice the arrival share, under DAS at load 0.8.
// This pins the whole tenant pipeline — registry parsing, per-tenant
// generators (drift rotation + storm hot sets), share-split arrivals and
// per-tenant accounting — on top of the same golden cluster. The legacy
// rows above MUST stay bit-identical; tenancy is opt-in and the legacy RNG
// fork order does not change.

struct TenantGoldenRow {
  const char* name;
  std::uint64_t requests_measured;
  double mean_rct_us;
};

constexpr const char* kTenantGoldenSpec =
    "ycsb-b+zipf:1.1+drift:4000:13+storm:6000:14000:4:0.6:7+name:bursty;"
    "ycsb-c+share:2+name:steady";

// Pinned by the first tenant-aware engine (regen as above).
const TenantGoldenRow kTenantGolden[] = {
    // clang-format off
    {"bursty", 164u, 157.40095129006468},
    {"steady", 324u, 201.15427001080627},
    // clang-format on
};
const double kTenantGoldenJain = 0.98532795326169331;

TEST(GoldenResults, PinnedTenantRowIsBitExact) {
  ClusterConfig cfg = golden_config(sched::Policy::kDas, 0.8);
  cfg.tenants = workload::parse_tenants(kTenantGoldenSpec);
  const ExperimentResult r = run_experiment(cfg, golden_window());
  ASSERT_EQ(r.tenants.size(), 2u);
  if (std::getenv("DAS_REGEN_GOLDEN") != nullptr) {
    for (const TenantOutcome& t : r.tenants) {
      std::printf("    {\"%s\", %lluu, %.17g},\n", t.name.c_str(),
                  static_cast<unsigned long long>(t.requests_measured),
                  t.rct.mean);
    }
    std::printf("const double kTenantGoldenJain = %.17g;\n", r.jain_fairness);
    GTEST_SKIP() << "DAS_REGEN_GOLDEN set: printed fresh rows, skipped the "
                    "comparison";
  }
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    SCOPED_TRACE(kTenantGolden[t].name);
    EXPECT_EQ(r.tenants[t].name, kTenantGolden[t].name);
    EXPECT_EQ(r.tenants[t].requests_measured, kTenantGolden[t].requests_measured);
    EXPECT_EQ(r.tenants[t].rct.mean, kTenantGolden[t].mean_rct_us);
  }
  EXPECT_EQ(r.jain_fairness, kTenantGoldenJain);
}

TEST(GoldenResults, PinnedGridIsBitExact) {
  if (std::getenv("DAS_REGEN_GOLDEN") != nullptr) {
    for (const GoldenCase& c : kGrid) {
      const ExperimentResult r =
          run_experiment(golden_config(c.policy, c.load), golden_window());
      std::printf("    {%s, %.2f, %lluu, %.17g, %.17g},\n", policy_token(c.policy),
                  c.load, static_cast<unsigned long long>(r.requests_measured),
                  r.rct.mean, r.rct.p99);
    }
    GTEST_SKIP() << "DAS_REGEN_GOLDEN set: printed fresh rows, skipped the "
                    "comparison";
  }
  ASSERT_EQ(std::size(kGolden), std::size(kGrid))
      << "golden table incomplete — regenerate with DAS_REGEN_GOLDEN=1";
  for (const GoldenRow& row : kGolden) {
    SCOPED_TRACE(std::string(sched::to_string(row.policy)) +
                 " @ load=" + std::to_string(row.load));
    const ExperimentResult r =
        run_experiment(golden_config(row.policy, row.load), golden_window());
    EXPECT_EQ(r.requests_measured, row.requests_measured);
    // Exact equality on purpose: these are pinned bits, not approximations.
    EXPECT_EQ(r.rct.mean, row.mean_rct_us);
    EXPECT_EQ(r.rct.p99, row.p99_us);
  }
}

}  // namespace
}  // namespace das::core
