// Message loss + retransmission: end-to-end recovery properties.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig lossy_config(double loss, sched::Policy policy = sched::Policy::kDas) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.5;
  cfg.policy = policy;
  cfg.msg_loss_probability = loss;
  cfg.retry_timeout_us = 1.0 * kMillisecond;
  cfg.seed = 99;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 50.0 * kMillisecond;
  return w;
}

TEST(FaultInjection, EveryRequestCompletesDespiteLoss) {
  for (const double loss : {0.001, 0.01, 0.05, 0.2}) {
    const ExperimentResult r = run_experiment(lossy_config(loss), window());
    EXPECT_EQ(r.requests_generated, r.requests_completed) << "loss=" << loss;
    EXPECT_GT(r.net_messages_dropped, 0u) << "loss=" << loss;
  }
}

TEST(FaultInjection, RetransmissionsScaleWithLossRate) {
  const ExperimentResult low = run_experiment(lossy_config(0.01), window());
  const ExperimentResult high = run_experiment(lossy_config(0.10), window());
  EXPECT_GT(low.ops_retransmitted, 0u);
  EXPECT_GT(high.ops_retransmitted, low.ops_retransmitted * 3);
}

TEST(FaultInjection, DropRateMatchesConfiguredProbability) {
  const double loss = 0.05;
  const ExperimentResult r = run_experiment(lossy_config(loss), window());
  const double measured = static_cast<double>(r.net_messages_dropped) /
                          static_cast<double>(r.net_messages);
  EXPECT_NEAR(measured, loss, 0.01);
}

TEST(FaultInjection, LossInflatesTailNotJustMean) {
  auto clean_cfg = lossy_config(0.0);
  clean_cfg.retry_timeout_us = 0;  // pristine baseline: no retry machinery
  const ExperimentResult clean = run_experiment(clean_cfg, window());
  const ExperimentResult lossy = run_experiment(lossy_config(0.02), window());
  // A lost op costs at least one RTO (1ms here) — visible at the tail.
  EXPECT_GT(lossy.rct.p999, clean.rct.p999 + 0.5 * kMillisecond);
  // Fork-join amplification: at 2% message loss a fan-out-8 request hits at
  // least one RTO with probability ~25%, so the mean rises by a bounded
  // fraction of the RTO — but stays well under one full RTO.
  EXPECT_LT(lossy.rct.mean, clean.rct.mean + 1.0 * kMillisecond);
}

TEST(FaultInjection, DuplicateResponsesAreDiscarded) {
  // High loss makes response-lost-after-service likely, which produces
  // duplicate responses after the retry is served too.
  const ExperimentResult r = run_experiment(lossy_config(0.2), window());
  EXPECT_GT(r.duplicate_responses, 0u);
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

TEST(FaultInjection, LossWithoutRetryIsRejected) {
  auto cfg = lossy_config(0.01);
  cfg.retry_timeout_us = 0;
  EXPECT_THROW(run_experiment(cfg, window()), std::logic_error);
}

TEST(FaultInjection, DeterministicUnderLoss) {
  const ExperimentResult a = run_experiment(lossy_config(0.05), window());
  const ExperimentResult b = run_experiment(lossy_config(0.05), window());
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_EQ(a.ops_retransmitted, b.ops_retransmitted);
  EXPECT_EQ(a.net_messages_dropped, b.net_messages_dropped);
}

TEST(FaultInjection, DasStillBeatsFcfsUnderLoss) {
  const ExperimentResult fcfs =
      run_experiment(lossy_config(0.02, sched::Policy::kFcfs), window());
  const ExperimentResult das =
      run_experiment(lossy_config(0.02, sched::Policy::kDas), window());
  EXPECT_LT(das.rct.mean, fcfs.rct.mean);
}

}  // namespace
}  // namespace das::core
