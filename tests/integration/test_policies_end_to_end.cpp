// End-to-end properties that must hold for EVERY policy, plus the paper's
// headline comparative claims on a fixed seed (deterministic, not flaky).
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace das::core {
namespace {

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.num_servers = 16;
  cfg.num_clients = 4;
  cfg.keys_per_server = 300;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.75;
  cfg.fanout = make_geometric(0.125, 128);
  cfg.seed = 2026;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 10.0 * kMillisecond;
  w.measure_us = 80.0 * kMillisecond;
  return w;
}

class PolicyEndToEnd : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(PolicyEndToEnd, ConservationAndSanity) {
  auto cfg = base_config();
  cfg.policy = GetParam();
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.ops_generated, r.ops_completed);
  EXPECT_GT(r.requests_measured, 1000u);
  EXPECT_GT(r.rct.mean, 0.0);
  EXPECT_LE(r.rct.p50, r.rct.p99);
  // Mean utilisation should be near the calibrated target regardless of
  // scheduling order (work conservation).
  EXPECT_NEAR(r.mean_server_utilization, 0.75, 0.06);
}

TEST_P(PolicyEndToEnd, DeterministicAcrossRuns) {
  auto cfg = base_config();
  cfg.policy = GetParam();
  RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 15.0 * kMillisecond;
  const ExperimentResult a = run_experiment(cfg, w);
  const ExperimentResult b = run_experiment(cfg, w);
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.progress_messages, b.progress_messages);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEndToEnd,
                         ::testing::ValuesIn(sched::all_policies()),
                         [](const ::testing::TestParamInfo<sched::Policy>& param_info) {
                           std::string name = sched::to_string(param_info.param);
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(PaperClaims, DasBeatsFcfsByAtLeast15Percent) {
  const auto runs = compare_policies(base_config(),
                                     {sched::Policy::kFcfs, sched::Policy::kDas},
                                     window());
  const double gain = rct_improvement(runs[0].result, runs[1].result);
  EXPECT_GE(gain, 0.15) << "DAS mean-RCT gain over FCFS below the paper's band";
}

TEST(PaperClaims, DasBeatsReinSbf) {
  const auto runs = compare_policies(base_config(),
                                     {sched::Policy::kReinSbf, sched::Policy::kDas},
                                     window());
  EXPECT_GT(rct_improvement(runs[0].result, runs[1].result), 0.0);
}

TEST(PaperClaims, AdaptivityContributes) {
  const auto runs = compare_policies(
      base_config(), {sched::Policy::kDasNoAdapt, sched::Policy::kDas}, window());
  EXPECT_GT(rct_improvement(runs[0].result, runs[1].result), 0.0);
}

TEST(PaperClaims, RandomIsNoBetterThanFcfs) {
  const auto runs = compare_policies(base_config(),
                                     {sched::Policy::kFcfs, sched::Policy::kRandom},
                                     window());
  EXPECT_LT(rct_improvement(runs[0].result, runs[1].result), 0.05);
}

TEST(Starvation, AgingBoundsWorstCaseWait) {
  auto cfg = base_config();
  cfg.policy = sched::Policy::kDas;
  cfg.sched_config.max_wait_us = 20.0 * kMillisecond;
  cfg.target_load = 0.85;
  const ExperimentResult r = run_experiment(cfg, window());
  // No operation may wait much longer than the aging bound (plus the service
  // time of whatever was ahead when it was promoted).
  EXPECT_LT(r.op_wait.max, 25.0 * kMillisecond);
}

TEST(Starvation, WithoutAgingWideRequestsCanWaitLonger) {
  auto cfg = base_config();
  cfg.target_load = 0.85;
  cfg.sched_config.max_wait_us = 10.0 * kMillisecond;
  cfg.policy = sched::Policy::kDas;
  const ExperimentResult with_aging = run_experiment(cfg, window());
  cfg.policy = sched::Policy::kDasNoAging;
  const ExperimentResult without = run_experiment(cfg, window());
  EXPECT_GT(without.op_wait.max, with_aging.op_wait.max);
}

TEST(Heterogeneity, AdaptiveDasHandlesStragglers) {
  auto cfg = base_config();
  cfg.load_calibration = LoadCalibration::kHottestServer;
  cfg.server_speed_factors.assign(16, 1.0);
  for (int i = 0; i < 4; ++i) cfg.server_speed_factors[i] = 0.5;
  const auto runs = compare_policies(
      cfg, {sched::Policy::kFcfs, sched::Policy::kDasNoAdapt, sched::Policy::kDas},
      window());
  const double das_gain = rct_improvement(runs[0].result, runs[2].result);
  const double na_gain = rct_improvement(runs[0].result, runs[1].result);
  EXPECT_GT(das_gain, 0.10);
  EXPECT_GT(das_gain, na_gain);  // adaptivity is what handles stragglers
}

}  // namespace
}  // namespace das::core
