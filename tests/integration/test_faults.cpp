// Fault plans end to end: crash/recovery lifecycle, failure detection and
// failover, graceful-degradation accounting, and the chaos property test.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "fault/fault_plan.hpp"

namespace das::core {
namespace {

ClusterConfig faulty_config(sched::Policy policy = sched::Policy::kDas) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.5;
  cfg.policy = policy;
  cfg.retry_timeout_us = 1.0 * kMillisecond;
  cfg.seed = 99;
  return cfg;
}

RunWindow window() {
  RunWindow w;
  w.warmup_us = 5.0 * kMillisecond;
  w.measure_us = 50.0 * kMillisecond;
  return w;
}

// --- failover proof: replication >= 2 rides out a single-server crash ----

TEST(Faults, ReplicatedClusterCompletesEveryRequestThroughACrash) {
  auto cfg = faulty_config();
  cfg.replication = 2;
  cfg.replica_selection = ReplicaSelection::kLeastDelay;
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s3,recover@40ms:s3");
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.requests_generated, r.requests_completed);
  EXPECT_EQ(r.requests_failed, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.server_crashes, 1u);
  EXPECT_EQ(r.server_recoveries, 1u);
  EXPECT_GT(r.ops_dropped_crashed, 0u);  // the crash really destroyed work
  // Suspicion kicked in and retries moved to the live replica.
  EXPECT_GT(r.suspicions_raised, 0u);
  EXPECT_GT(r.ops_failed_over, 0u);
  EXPECT_GT(r.requests_completed_after_failover, 0u);
}

TEST(Faults, FailoverProofHoldsForEveryPolicy) {
  for (const sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf, sched::Policy::kReqSrpt,
        sched::Policy::kReinSbf, sched::Policy::kDas}) {
    auto cfg = faulty_config(policy);
    cfg.replication = 2;
    cfg.replica_selection = ReplicaSelection::kLeastDelay;
    cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s3,recover@40ms:s3");
    const ExperimentResult r = run_experiment(cfg, window());
    EXPECT_EQ(r.requests_generated, r.requests_completed)
        << sched::to_string(policy);
    EXPECT_DOUBLE_EQ(r.availability, 1.0) << sched::to_string(policy);
  }
}

// --- replication 1: unreachable work fails loudly, never silently --------

TEST(Faults, UnreplicatedCrashWindowFailsRequestsButLosesNone) {
  auto cfg = faulty_config();
  cfg.retry_max_attempts = 4;
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s3,recover@35ms:s3");
  const ExperimentResult r = run_experiment(cfg, window());
  // Requests aimed at s3 inside the window exhaust their retry budget.
  EXPECT_GT(r.requests_failed, 0u);
  EXPECT_GT(r.ops_abandoned, 0u);
  EXPECT_LT(r.availability, 1.0);
  // Full accounting: nothing is ever silently lost.
  EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed);
  const double settled =
      static_cast<double>(r.requests_completed + r.requests_failed);
  EXPECT_DOUBLE_EQ(r.availability,
                   static_cast<double>(r.requests_completed) / settled);
}

TEST(Faults, RecoveredServerServesAgain) {
  auto cfg = faulty_config();
  cfg.retry_max_attempts = 8;
  // Crash early, recover with most of the run remaining: the recovered
  // server must absorb its keyspace again or the tail of the run would fail.
  cfg.fault_plan = fault::parse_fault_plan("crash@8ms:s2,recover@12ms:s2");
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_EQ(r.server_recoveries, 1u);
  EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed);
  // After recovery the vast majority of traffic completes.
  EXPECT_GT(r.availability, 0.9);
}

// --- other fault shapes ---------------------------------------------------

TEST(Faults, GrayFailureSlowdownInflatesLatencyWithoutFailures) {
  auto base = faulty_config();
  const ExperimentResult clean = run_experiment(base, window());
  auto cfg = faulty_config();
  cfg.fault_plan = fault::parse_fault_plan("slow@10ms-45ms:s1:x0.2");
  const ExperimentResult slowed = run_experiment(cfg, window());
  EXPECT_EQ(slowed.requests_failed, 0u);
  EXPECT_DOUBLE_EQ(slowed.availability, 1.0);
  EXPECT_GT(slowed.rct.p999, clean.rct.p999);
}

TEST(Faults, PartitionDropsLinkTrafficAndHeals) {
  auto cfg = faulty_config();
  cfg.fault_plan =
      fault::parse_fault_plan("partition@15ms:c0-s2,heal@30ms:c0-s2");
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_GT(r.net_messages_dropped_partition, 0u);
  EXPECT_EQ(r.requests_generated, r.requests_completed);  // retries recover
}

TEST(Faults, LossBurstRecoversThroughRetransmission) {
  auto cfg = faulty_config();
  cfg.fault_plan = fault::parse_fault_plan("lossburst@15ms-25ms:p0.4");
  const ExperimentResult r = run_experiment(cfg, window());
  EXPECT_GT(r.net_messages_dropped, 0u);
  EXPECT_GT(r.ops_retransmitted, 0u);
  EXPECT_EQ(r.requests_generated, r.requests_completed);
}

// --- config-level rejection of unsafe plans -------------------------------

TEST(Faults, WorkLosingPlanWithoutRetryIsRejected) {
  auto cfg = faulty_config();
  cfg.retry_timeout_us = 0;
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s3,recover@40ms:s3");
  EXPECT_THROW(run_experiment(cfg, window()), std::invalid_argument);
}

TEST(Faults, UnrecoveredFailureWithoutGiveUpBoundIsRejected) {
  auto cfg = faulty_config();
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s3");  // never recovers
  EXPECT_THROW(run_experiment(cfg, window()), std::invalid_argument);
}

TEST(Faults, PlanTargetingMissingServerIsRejected) {
  auto cfg = faulty_config();
  cfg.fault_plan = fault::parse_fault_plan("crash@20ms:s99,recover@40ms:s99");
  EXPECT_THROW(run_experiment(cfg, window()), std::invalid_argument);
}

// --- golden zero-cost property: an empty plan changes nothing -------------

TEST(Faults, EmptyPlanIsBitIdenticalToNoFaultLayer) {
  const ExperimentResult plain = run_experiment(faulty_config(), window());
  auto cfg = faulty_config();
  cfg.fault_plan = fault::FaultPlan{};
  const ExperimentResult with_empty_plan = run_experiment(cfg, window());
  EXPECT_DOUBLE_EQ(plain.rct.mean, with_empty_plan.rct.mean);
  EXPECT_DOUBLE_EQ(plain.rct.p999, with_empty_plan.rct.p999);
  EXPECT_EQ(plain.net_messages, with_empty_plan.net_messages);
}

// --- chaos property test --------------------------------------------------

TEST(Faults, ChaosPlansKeepAccountingClosedForEveryPolicy) {
  for (const std::uint64_t chaos_seed : {1ull, 7ull, 23ull}) {
    fault::ChaosOptions options;
    options.horizon_us = window().horizon();
    options.num_servers = 8;
    options.num_clients = 2;
    options.crashes = 2;
    options.slowdowns = 1;
    options.partitions = 1;
    const fault::FaultPlan plan = fault::make_chaos_plan(options, chaos_seed);
    for (const sched::Policy policy :
         {sched::Policy::kFcfs, sched::Policy::kSjf, sched::Policy::kReqSrpt,
          sched::Policy::kReinSbf, sched::Policy::kDas}) {
      auto cfg = faulty_config(policy);
      cfg.replication = 2;
      cfg.replica_selection = ReplicaSelection::kLeastDelay;
      cfg.retry_max_attempts = 12;
      cfg.fault_plan = plan;
      cfg.audit_every_events = 5000;  // deep structural audits stay clean
      const ExperimentResult r = run_experiment(cfg, window());
      EXPECT_EQ(r.requests_generated, r.requests_completed + r.requests_failed)
          << "seed=" << chaos_seed << " policy=" << sched::to_string(policy);
      EXPECT_GT(r.requests_completed, 0u);
    }
  }
}

TEST(Faults, ChaosRunsAreBitIdenticalAcrossReruns) {
  fault::ChaosOptions options;
  options.horizon_us = window().horizon();
  options.num_servers = 8;
  options.num_clients = 2;
  options.crashes = 2;
  options.partitions = 1;
  auto cfg = faulty_config();
  cfg.replication = 2;
  cfg.replica_selection = ReplicaSelection::kLeastDelay;
  cfg.fault_plan = fault::make_chaos_plan(options, 5);
  const ExperimentResult a = run_experiment(cfg, window());
  const ExperimentResult b = run_experiment(cfg, window());
  EXPECT_DOUBLE_EQ(a.rct.mean, b.rct.mean);
  EXPECT_DOUBLE_EQ(a.rct.p999, b.rct.p999);
  EXPECT_EQ(a.ops_retransmitted, b.ops_retransmitted);
  EXPECT_EQ(a.ops_failed_over, b.ops_failed_over);
  EXPECT_EQ(a.ops_dropped_crashed, b.ops_dropped_crashed);
  EXPECT_EQ(a.net_messages_dropped_partition, b.net_messages_dropped_partition);
}

}  // namespace
}  // namespace das::core
