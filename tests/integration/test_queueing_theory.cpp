// Quantitative validation of the whole simulation pipeline against closed-
// form queueing theory. A single-server cluster with single-key requests is
// an M/G/1 queue; under FCFS its mean waiting time must match the
// Pollaczek-Khinchine formula, and with exponential service the M/M/1
// special case. These tests catch entire classes of bugs (wrong service
// accounting, broken arrival process, biased RNG) that unit tests miss.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace das::core {
namespace {

// One server, one client, fan-out 1, negligible per-op overhead: service
// time == value_size / service_bytes_per_us at speed 1.
ClusterConfig mg1_config(RealDistPtr size_dist, double load) {
  ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.keys_per_server = 50'000;  // many keys so the size histogram matches
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = LoadCalibration::kAverageCapacity;
  cfg.target_load = load;
  cfg.fanout = make_fixed_int(1);
  cfg.per_op_overhead_us = 0.0;
  cfg.service_bytes_per_us = 1.0;  // demand_us == size bytes
  cfg.value_size_bytes = std::move(size_dist);
  cfg.policy = sched::Policy::kFcfs;
  cfg.seed = 404;
  return cfg;
}

RunWindow long_window() {
  RunWindow w;
  w.warmup_us = 200.0 * kMillisecond;
  w.measure_us = 3'000.0 * kMillisecond;
  return w;
}

// Pollaczek-Khinchine: E[W] = lambda * E[S^2] / (2 * (1 - rho)).
double pk_wait(double rho, double es, double es2) {
  const double lambda = rho / es;
  return lambda * es2 / (2.0 * (1.0 - rho));
}

TEST(QueueingTheory, MM1MeanWaitMatchesPollaczekKhinchine) {
  // Exponential service, mean 20us. E[S^2] = 2 * mean^2.
  const double mean_s = 20.0;
  for (const double rho : {0.3, 0.6, 0.8}) {
    const ExperimentResult r =
        run_experiment(mg1_config(make_exponential(mean_s), rho), long_window());
    const double expected = pk_wait(rho, mean_s, 2 * mean_s * mean_s);
    EXPECT_NEAR(r.op_wait.mean, expected, expected * 0.10)
        << "rho=" << rho << " measured=" << r.op_wait.mean;
  }
}

TEST(QueueingTheory, MD1MeanWaitIsHalfOfMM1) {
  // Deterministic service: E[S^2] = mean^2, so the wait is exactly half of
  // the exponential case at the same load.
  const double mean_s = 20.0;
  const double rho = 0.7;
  const ExperimentResult r =
      run_experiment(mg1_config(make_constant(mean_s), rho), long_window());
  const double expected = pk_wait(rho, mean_s, mean_s * mean_s);
  EXPECT_NEAR(r.op_wait.mean, expected, expected * 0.10);
}

TEST(QueueingTheory, UtilisationMatchesRho) {
  for (const double rho : {0.3, 0.7}) {
    const ExperimentResult r =
        run_experiment(mg1_config(make_exponential(20.0), rho), long_window());
    EXPECT_NEAR(r.mean_server_utilization, rho, 0.03);
  }
}

TEST(QueueingTheory, RctIsWaitPlusServicePlusNetwork) {
  const double mean_s = 20.0;
  const double rho = 0.6;
  auto cfg = mg1_config(make_exponential(mean_s), rho);
  cfg.net_latency_us = 5.0;
  const ExperimentResult r = run_experiment(cfg, long_window());
  // E[RCT] = 2 * one-way latency + E[W] + E[S] for fan-out-1 requests.
  const double expected =
      10.0 + pk_wait(rho, mean_s, 2 * mean_s * mean_s) + mean_s;
  EXPECT_NEAR(r.rct.mean, expected, expected * 0.10);
}

TEST(QueueingTheory, SrptBeatsFcfsByTheoreticalDirection) {
  // At rho=0.8 with exponential service, SRPT-style ordering must cut the
  // mean wait relative to FCFS (exact SRPT gain for M/M/1 is substantial);
  // with fan-out 1, req-srpt degenerates to local SJF-by-size which is
  // non-preemptive SJF: E[W_SJF] < E[W_FCFS] for any size variance.
  const double mean_s = 20.0;
  auto cfg = mg1_config(make_exponential(mean_s), 0.8);
  const ExperimentResult fcfs = run_experiment(cfg, long_window());
  cfg.policy = sched::Policy::kReqSrpt;
  const ExperimentResult srpt = run_experiment(cfg, long_window());
  EXPECT_LT(srpt.op_wait.mean, fcfs.op_wait.mean * 0.9);
}

}  // namespace
}  // namespace das::core
