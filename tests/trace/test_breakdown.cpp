// RCT attribution: unit exactness of make_request_breakdown, the collector's
// window/retention semantics, and the end-to-end invariant that every
// request's components sum bitwise to its RCT across an E1-style grid of
// loads and policies.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "trace/rct_breakdown.hpp"

namespace das::trace {
namespace {

OpServiceTiming timing(SimTime enq, SimTime start, SimTime end,
                       Duration deferred = 0) {
  OpServiceTiming t;
  t.enqueued_at = enq;
  t.service_start = start;
  t.service_end = end;
  t.deferred_us = deferred;
  t.valid = true;
  return t;
}

TEST(RequestBreakdown, ComponentsSumExactlyToTheRct) {
  // Deliberately awkward doubles: none of the differences are representable
  // exactly, so the residual construction has to absorb rounding.
  const SimTime arrival = 10.1;
  const SimTime completion = 31.4;
  const auto bd = make_request_breakdown(
      arrival, completion, timing(13.7, 20.3, 29.9, /*deferred=*/2.5),
      /*straggler_slack_sum_us=*/4.0, /*fanout=*/3);

  EXPECT_EQ(bd.rct_us, completion - arrival);
  EXPECT_EQ(bd.total_us(), bd.rct_us);  // bitwise, not NEAR
  EXPECT_DOUBLE_EQ(bd.network_us, (13.7 - 10.1) + (31.4 - 29.9));
  EXPECT_DOUBLE_EQ(bd.service_us, 29.9 - 20.3);
  EXPECT_EQ(bd.deferred_wait_us, 2.5);
  // wait = 20.3 - 13.7 = 6.6; runnable residual = wait - deferred.
  EXPECT_NEAR(bd.runnable_wait_us, 6.6 - 2.5, 1e-9);
  // Slack is the mean over the fanout-1 non-critical siblings.
  EXPECT_EQ(bd.straggler_slack_us, 2.0);
}

TEST(RequestBreakdown, FanoutOneHasNoSlack) {
  const auto bd = make_request_breakdown(0.0, 10.0, timing(1.0, 4.0, 9.0),
                                         /*straggler_slack_sum_us=*/0.0,
                                         /*fanout=*/1);
  EXPECT_EQ(bd.straggler_slack_us, 0.0);
  EXPECT_EQ(bd.total_us(), bd.rct_us);
}

TEST(RequestBreakdown, DeferredTimeIsClampedToTheWait) {
  // Preempt-resume can accumulate more deferred time than the final queueing
  // episode spans; the attribution clamps so runnable wait stays a wait.
  const auto bd = make_request_breakdown(0.0, 20.0,
                                         timing(2.0, 5.0, 18.0, /*deferred=*/7.5),
                                         0.0, 1);
  EXPECT_EQ(bd.deferred_wait_us, 3.0);  // clamped to service_start - enqueued
  EXPECT_EQ(bd.total_us(), bd.rct_us);
}

TEST(RequestBreakdown, RejectsDisorderedCutPoints) {
  EXPECT_THROW(
      make_request_breakdown(0.0, 8.0, timing(1.0, 4.0, 9.0), 0.0, 1),
      std::logic_error);  // completion before service_end
  EXPECT_THROW(
      make_request_breakdown(0.0, 10.0, timing(5.0, 4.0, 9.0), 0.0, 1),
      std::logic_error);  // service before enqueue
  OpServiceTiming invalid;
  EXPECT_THROW(make_request_breakdown(0.0, 10.0, invalid, 0.0, 1),
               std::logic_error);  // missing timing echo
}

TEST(BreakdownCollector, FiltersOnTheArrivalWindow) {
  BreakdownCollector collector;
  collector.set_window(100.0, 200.0);
  auto record_at = [&](SimTime arrival) {
    collector.record(make_request_breakdown(arrival, arrival + 10.0,
                                            timing(arrival + 1.0, arrival + 4.0,
                                                   arrival + 9.0),
                                            0.0, 1));
  };
  record_at(50.0);    // before the window
  record_at(100.0);   // inclusive lower edge
  record_at(150.0);
  record_at(200.0);   // exclusive upper edge
  const BreakdownSummary s = collector.summary();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_DOUBLE_EQ(s.mean_rct_us, 10.0);
  EXPECT_DOUBLE_EQ(s.mean_service_us, 5.0);
  EXPECT_EQ(s.mean_deferred_wait_us, 0.0);
}

TEST(BreakdownCollector, RetentionCapDropsRowsNotAggregates) {
  BreakdownCollector collector;
  collector.set_retain_cap(2);
  for (int i = 0; i < 5; ++i) {
    const SimTime arrival = 10.0 * i;
    collector.record(make_request_breakdown(arrival, arrival + 10.0,
                                            timing(arrival + 1.0, arrival + 4.0,
                                                   arrival + 9.0),
                                            0.0, 1));
  }
  EXPECT_EQ(collector.rows().size(), 2u);
  EXPECT_EQ(collector.rows_dropped(), 3u);
  EXPECT_EQ(collector.summary().requests, 5u);  // aggregates see every row
  // By default no rows are retained at all (aggregate-only).
  BreakdownCollector plain;
  plain.record(make_request_breakdown(0.0, 10.0, timing(1.0, 4.0, 9.0), 0.0, 1));
  EXPECT_TRUE(plain.rows().empty());
  EXPECT_EQ(plain.rows_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: E1-style grid. Every retained request of every policy at every
// load satisfies the bitwise sum identity, and policies without a deferral
// mechanism attribute exactly zero deferred wait.

core::ClusterConfig grid_config(sched::Policy policy, double load) {
  core::ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = core::LoadCalibration::kHottestServer;
  cfg.target_load = load;
  cfg.policy = policy;
  cfg.seed = 99;
  cfg.breakdown_retain_requests = 1u << 20;  // keep every row
  return cfg;
}

core::RunWindow grid_window() {
  core::RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 15.0 * kMillisecond;
  return w;
}

TEST(BreakdownEndToEnd, SumsExactlyForEveryPolicyAndLoad) {
  for (const double load : {0.5, 0.8}) {
    for (const sched::Policy policy : sched::all_policies()) {
      SCOPED_TRACE(std::string(sched::to_string(policy)) +
                   " load=" + std::to_string(load));
      core::Cluster cluster{grid_config(policy, load), grid_window()};
      const core::ExperimentResult r = cluster.run();
      const BreakdownCollector& collector = cluster.breakdown();
      ASSERT_GT(collector.rows().size(), 0u);
      EXPECT_EQ(collector.rows().size(), r.breakdown.requests);
      EXPECT_EQ(r.breakdown.requests, r.requests_measured);
      for (const RequestBreakdown& row : collector.rows()) {
        ASSERT_EQ(row.total_us(), row.rct_us);  // bitwise, every request
        EXPECT_GE(row.network_us, 0.0);
        EXPECT_GE(row.service_us, 0.0);
        EXPECT_GE(row.deferred_wait_us, 0.0);
        EXPECT_GE(row.straggler_slack_us, 0.0);
      }
    }
  }
}

TEST(BreakdownEndToEnd, NonDeferringPoliciesAttributeZeroDeferredWait) {
  for (const sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf, sched::Policy::kReqSrpt}) {
    SCOPED_TRACE(sched::to_string(policy));
    const core::ExperimentResult r =
        core::run_experiment(grid_config(policy, 0.8), grid_window());
    EXPECT_GT(r.breakdown.requests, 0u);
    EXPECT_EQ(r.breakdown.mean_deferred_wait_us, 0.0);
    EXPECT_EQ(r.ops_deferred, 0u);
    EXPECT_EQ(r.ops_resumed, 0u);
  }
}

TEST(BreakdownEndToEnd, MechanismCountersMatchThePolicy) {
  // FCFS exercises no mechanism at all.
  const core::ExperimentResult fcfs =
      core::run_experiment(grid_config(sched::Policy::kFcfs, 0.8), grid_window());
  EXPECT_EQ(fcfs.ops_deferred, 0u);
  EXPECT_EQ(fcfs.ops_resumed, 0u);
  EXPECT_EQ(fcfs.ops_aged, 0u);
  EXPECT_EQ(fcfs.reranks_applied, 0u);

  // DAS under load defers; every resume closes an earlier deferral.
  const core::ExperimentResult das =
      core::run_experiment(grid_config(sched::Policy::kDas, 0.8), grid_window());
  EXPECT_GT(das.ops_deferred, 0u);
  EXPECT_LE(das.ops_resumed, das.ops_deferred);
  EXPECT_GT(das.breakdown.mean_deferred_wait_us, 0.0);

  // req-srpt re-keys on progress messages but never defers.
  const core::ExperimentResult srpt = core::run_experiment(
      grid_config(sched::Policy::kReqSrpt, 0.8), grid_window());
  EXPECT_GT(srpt.reranks_applied, 0u);
  EXPECT_EQ(srpt.ops_deferred, 0u);
}

}  // namespace
}  // namespace das::trace
