#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/tracer.hpp"

namespace das::trace {
namespace {

TEST(Tracer, DefaultConfig) {
  const Tracer tracer;
  EXPECT_EQ(tracer.cap(), 1u << 20);
  EXPECT_EQ(tracer.counter_stride(), 16u);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.offered(), 0u);
}

TEST(Tracer, ConfigIsValidated) {
  EXPECT_THROW(Tracer(Tracer::Config{0, 16}), std::logic_error);
  EXPECT_THROW(Tracer(Tracer::Config{1024, 0}), std::logic_error);
}

TEST(Tracer, CapDropAccounting) {
  Tracer tracer{Tracer::Config{4, 16}};
  for (int i = 0; i < 10; ++i)
    tracer.server_enqueue(static_cast<SimTime>(i), /*op=*/i, /*request=*/i,
                          /*server=*/0);
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // retained + dropped = offered, always.
  EXPECT_EQ(tracer.offered(), 10u);
  // The retained prefix is the FIRST events offered, in order.
  for (std::size_t i = 0; i < tracer.events().size(); ++i)
    EXPECT_EQ(tracer.events()[i].t, static_cast<SimTime>(i));
}

TEST(Tracer, TypedEmittersFillThePayloadLayout) {
  Tracer tracer;
  tracer.request_arrival(1.0, /*request=*/7, /*client=*/2, /*fanout=*/5);
  tracer.op_send(2.0, /*op=*/70, /*request=*/7, /*client=*/2, /*server=*/3,
                 /*demand_us=*/12.5, /*resend=*/true);
  tracer.op_defer(3.0, 70, 7, 3, /*est_other_completion=*/99.5);
  tracer.op_rerank(4.0, 70, 7, 3, /*old_key=*/50.0, /*new_key=*/25.0);
  tracer.aging_promotion(5.0, 70, 7, 3, /*waited_us=*/44.0);
  tracer.service_start(6.0, 70, 7, 3, /*demand_us=*/12.5);
  tracer.request_complete(7.0, 7, 2, /*rct_us=*/6.0);
  tracer.counter_sample(8.0, /*server=*/3, /*backlog_us=*/123.0,
                        /*mu_hat=*/0.5, /*runnable=*/9, /*deferred=*/4);

  const auto& ev = tracer.events();
  ASSERT_EQ(ev.size(), 8u);

  EXPECT_EQ(ev[0].kind, EventKind::kRequestArrival);
  EXPECT_EQ(ev[0].request, 7u);
  EXPECT_EQ(ev[0].client, 2u);
  EXPECT_EQ(ev[0].a, 5.0);  // fanout
  EXPECT_EQ(ev[0].server, kInvalidServer);

  EXPECT_EQ(ev[1].kind, EventKind::kOpSend);
  EXPECT_EQ(ev[1].op, 70u);
  EXPECT_EQ(ev[1].server, 3u);
  EXPECT_EQ(ev[1].a, 12.5);  // demand
  EXPECT_EQ(ev[1].b, 1.0);   // resend

  EXPECT_EQ(ev[2].kind, EventKind::kOpDefer);
  EXPECT_EQ(ev[2].a, 99.5);  // est_other_completion

  EXPECT_EQ(ev[3].kind, EventKind::kOpRerank);
  EXPECT_EQ(ev[3].a, 50.0);  // old key
  EXPECT_EQ(ev[3].b, 25.0);  // new key

  EXPECT_EQ(ev[4].kind, EventKind::kAgingPromotion);
  EXPECT_EQ(ev[4].a, 44.0);  // waited

  EXPECT_EQ(ev[5].kind, EventKind::kServiceStart);
  EXPECT_EQ(ev[5].a, 12.5);

  EXPECT_EQ(ev[6].kind, EventKind::kRequestComplete);
  EXPECT_EQ(ev[6].a, 6.0);  // rct

  EXPECT_EQ(ev[7].kind, EventKind::kCounterSample);
  EXPECT_EQ(ev[7].server, 3u);
  EXPECT_EQ(ev[7].a, 123.0);  // backlog
  EXPECT_EQ(ev[7].b, 0.5);    // mu_hat
  EXPECT_EQ(ev[7].c, 9.0);    // runnable depth
  EXPECT_EQ(ev[7].d, 4.0);    // deferred depth
}

TEST(Tracer, EventKindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::kRequestArrival), "request_arrival");
  EXPECT_STREQ(to_string(EventKind::kOpDefer), "op_defer");
  EXPECT_STREQ(to_string(EventKind::kOpResume), "op_resume");
  EXPECT_STREQ(to_string(EventKind::kAgingPromotion), "aging_promotion");
  EXPECT_STREQ(to_string(EventKind::kServiceStart), "service_start");
  EXPECT_STREQ(to_string(EventKind::kCounterSample), "counter_sample");
}

}  // namespace
}  // namespace das::trace
