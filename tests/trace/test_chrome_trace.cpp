// End-to-end tracing: a traced cluster run produces a well-formed Chrome
// trace-event JSON, tracing is an observation-only side channel (bit-identical
// ExperimentResult with and without it), and traced runs are themselves
// deterministic (byte-identical JSON for the same seed).
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/tracer.hpp"

namespace das::trace {
namespace {

core::ClusterConfig traced_config() {
  core::ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.num_clients = 2;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.7;
  cfg.policy = sched::Policy::kDas;
  cfg.seed = 4242;
  return cfg;
}

core::RunWindow short_window() {
  core::RunWindow w;
  w.warmup_us = 2.0 * kMillisecond;
  w.measure_us = 15.0 * kMillisecond;
  return w;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

void expect_bit_identical(const core::ExperimentResult& a,
                          const core::ExperimentResult& b) {
  EXPECT_EQ(a.rct.count, b.rct.count);
  EXPECT_EQ(a.rct.mean, b.rct.mean);
  EXPECT_EQ(a.rct.p99, b.rct.p99);
  EXPECT_EQ(a.op_latency.mean, b.op_latency.mean);
  EXPECT_EQ(a.op_wait.mean, b.op_wait.mean);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.progress_messages, b.progress_messages);
  EXPECT_EQ(a.mean_server_utilization, b.mean_server_utilization);
  EXPECT_EQ(a.ops_deferred, b.ops_deferred);
  EXPECT_EQ(a.ops_resumed, b.ops_resumed);
  EXPECT_EQ(a.ops_aged, b.ops_aged);
  EXPECT_EQ(a.reranks_applied, b.reranks_applied);
  EXPECT_EQ(a.breakdown.requests, b.breakdown.requests);
  EXPECT_EQ(a.breakdown.mean_network_us, b.breakdown.mean_network_us);
  EXPECT_EQ(a.breakdown.mean_runnable_wait_us, b.breakdown.mean_runnable_wait_us);
  EXPECT_EQ(a.breakdown.mean_deferred_wait_us, b.breakdown.mean_deferred_wait_us);
  EXPECT_EQ(a.breakdown.mean_service_us, b.breakdown.mean_service_us);
  EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
}

TEST(ChromeTrace, TracingIsObservationOnly) {
  // A traced run must be bit-identical to an untraced one: no extra simulator
  // events, no RNG draws, no wire-size changes.
  const auto cfg = traced_config();
  const core::ExperimentResult plain = core::run_experiment(cfg, short_window());
  Tracer tracer;
  const core::ExperimentResult traced =
      core::run_experiment(cfg, short_window(), &tracer);
  EXPECT_GT(tracer.events().size(), 0u);
  expect_bit_identical(plain, traced);
}

TEST(ChromeTrace, SameSeedProducesByteIdenticalJson) {
  const auto cfg = traced_config();
  Tracer a;
  core::run_experiment(cfg, short_window(), &a);
  Tracer b;
  core::run_experiment(cfg, short_window(), &b);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(chrome_trace_string(a), chrome_trace_string(b));
}

TEST(ChromeTrace, CoversTheOpLifecycle) {
  const auto cfg = traced_config();
  Tracer tracer;
  const core::ExperimentResult r =
      core::run_experiment(cfg, short_window(), &tracer);

  std::size_t arrivals = 0, sends = 0, enqueues = 0, starts = 0, ends = 0,
              responses = 0, completes = 0, defers = 0, resumes = 0,
              samples = 0;
  for (const TraceEvent& ev : tracer.events()) {
    switch (ev.kind) {
      case EventKind::kRequestArrival: ++arrivals; break;
      case EventKind::kOpSend: ++sends; break;
      case EventKind::kServerEnqueue: ++enqueues; break;
      case EventKind::kServiceStart: ++starts; break;
      case EventKind::kServiceEnd: ++ends; break;
      case EventKind::kResponse: ++responses; break;
      case EventKind::kRequestComplete: ++completes; break;
      case EventKind::kOpDefer: ++defers; break;
      case EventKind::kOpResume: ++resumes; break;
      case EventKind::kCounterSample: ++samples; break;
      default: break;
    }
  }
  EXPECT_EQ(arrivals, r.requests_generated);
  EXPECT_EQ(completes, r.requests_completed);
  EXPECT_EQ(sends, r.ops_generated);
  EXPECT_EQ(enqueues, r.ops_generated);
  EXPECT_EQ(responses, r.ops_completed);
  // Non-preemptive run: every op has exactly one service slice.
  EXPECT_EQ(starts, r.ops_completed);
  EXPECT_EQ(ends, r.ops_completed);
  // DAS under load exercises its deferral machinery.
  EXPECT_EQ(static_cast<std::uint64_t>(defers), r.ops_deferred);
  EXPECT_EQ(static_cast<std::uint64_t>(resumes), r.ops_resumed);
  EXPECT_GT(samples, 0u);

  // Timestamps are monotone in dispatch order within each producer; globally
  // the recorder preserves simulator dispatch order, so the sequence is
  // non-decreasing.
  for (std::size_t i = 1; i < tracer.events().size(); ++i)
    EXPECT_GE(tracer.events()[i].t, tracer.events()[i - 1].t);
}

TEST(ChromeTrace, JsonShapeAndBalance) {
  const auto cfg = traced_config();
  Tracer tracer;
  core::run_experiment(cfg, short_window(), &tracer);
  const std::string json = chrome_trace_string(tracer);

  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);

  // All phases the exporter promises: metadata, async deferral spans, flow
  // steps, service slices, instants and counters.
  for (const char* phase :
       {"\"ph\": \"M\"", "\"ph\": \"b\"", "\"ph\": \"e\"", "\"ph\": \"s\"",
        "\"ph\": \"t\"", "\"ph\": \"f\"", "\"ph\": \"B\"", "\"ph\": \"E\"",
        "\"ph\": \"C\""})
    EXPECT_NE(json.find(phase), std::string::npos) << phase;

  // Track naming for Perfetto.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("server 0"), std::string::npos);
  EXPECT_NE(json.find("client 0"), std::string::npos);

  // No emitted text contains braces inside strings, so brace balance is a
  // meaningful structural check.
  EXPECT_EQ(count_of(json, "{"), count_of(json, "}"));
  EXPECT_EQ(count_of(json, "["), count_of(json, "]"));

  // Deferral spans are balanced writer-side: every async begin has an end.
  EXPECT_EQ(count_of(json, "\"ph\": \"b\""), count_of(json, "\"ph\": \"e\""));
  // Service slices balance too.
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), count_of(json, "\"ph\": \"E\""));
}

TEST(ChromeTrace, DropCountSurfacesInTheFooter) {
  const auto cfg = traced_config();
  Tracer tracer{Tracer::Config{500, 16}};
  core::run_experiment(cfg, short_window(), &tracer);
  EXPECT_EQ(tracer.events().size(), 500u);
  EXPECT_GT(tracer.dropped(), 0u);
  const std::string json = chrome_trace_string(tracer);
  EXPECT_NE(json.find("\"event_cap\": 500"), std::string::npos);
  EXPECT_EQ(json.find("\"dropped_events\": 0,"), std::string::npos);
}

}  // namespace
}  // namespace das::trace
