// Unit tests for the pluggable replica-selection layer (src/select): the
// tie-break contract every scan shares, the suspicion fallbacks, tars'
// rate-bounded switching and power-of-d's sampling — all against a
// hand-built LearnedView, no cluster required.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "select/selector.hpp"

namespace das::select {
namespace {

/// Owning test double for the non-owning LearnedView.
struct ViewFixture {
  std::vector<double> d_est;
  std::vector<double> mu_est;
  std::vector<char> suspected;
  double est_rtt_us = 10.0;
  bool adaptive = true;

  explicit ViewFixture(std::size_t servers)
      : d_est(servers, 0.0), mu_est(servers, 1.0), suspected(servers, 0) {}

  LearnedView view() const {
    LearnedView v;
    v.d_est = &d_est;
    v.mu_est = &mu_est;
    v.suspected = &suspected;
    v.est_rtt_us = est_rtt_us;
    v.adaptive = adaptive;
    return v;
  }
};

const SelectionContext kCtx{/*demand_us=*/40.0, /*key=*/7, /*now=*/1000.0};

TEST(ModeStrings, RoundTripAndRejectUnknown) {
  for (const Mode mode : all_modes()) {
    Mode parsed = Mode::kPrimary;
    EXPECT_TRUE(mode_from_string(to_string(mode), parsed)) << to_string(mode);
    EXPECT_EQ(parsed, mode);
  }
  Mode out = Mode::kRandom;
  EXPECT_FALSE(mode_from_string("cubic", out));
  EXPECT_EQ(out, Mode::kRandom);  // untouched on failure
  EXPECT_EQ(all_modes().size(), 6u);
}

TEST(LoadShareModelTest, OnlyPrimaryConcentrates) {
  EXPECT_EQ(load_share_model(Mode::kPrimary), LoadShareModel::kAllOnPrimary);
  for (const Mode mode : all_modes()) {
    if (mode == Mode::kPrimary) continue;
    EXPECT_EQ(load_share_model(mode), LoadShareModel::kUniformSpread)
        << to_string(mode);
  }
}

TEST(LearnedViewTest, CompletionEstimateMatchesClientFormula) {
  ViewFixture f(2);
  f.d_est[1] = 30.0;
  f.mu_est[1] = 0.5;
  const LearnedView v = f.view();
  EXPECT_DOUBLE_EQ(v.completion_estimate(0, 40.0), 10.0 + 0.0 + 40.0 / 1.0);
  EXPECT_DOUBLE_EQ(v.completion_estimate(1, 40.0), 10.0 + 30.0 + 40.0 / 0.5);
  // Non-adaptive: static view regardless of the learned numbers.
  f.adaptive = false;
  EXPECT_DOUBLE_EQ(f.view().completion_estimate(1, 40.0), 10.0 + 40.0);
}

// --- the shared scan: tie-break parity ---------------------------------------

TEST(LeastDelayScan, TiesBreakToTheFirstReplica) {
  // All-equal estimates: the FIRST candidate must win, both with and
  // without the suspicion filter — the single tie-break the fallback path
  // used to duplicate with differently-structured code (PR-7 satellite).
  ViewFixture f(4);
  const std::vector<ServerId> replicas = {2, 0, 3};
  const LearnedView v = f.view();
  EXPECT_EQ(least_delay_scan(replicas, v, 40.0, kInvalidServer, true), 2u);
  EXPECT_EQ(least_delay_scan(replicas, v, 40.0, kInvalidServer, false), 2u);
  // All suspected: the suspicion-honouring scan finds nobody, the plain one
  // still returns the first — identical tie-break in the fallback.
  f.suspected.assign(4, 1);
  const LearnedView vs = f.view();
  EXPECT_EQ(least_delay_scan(replicas, vs, 40.0, kInvalidServer, true),
            kInvalidServer);
  EXPECT_EQ(least_delay_scan(replicas, vs, 40.0, kInvalidServer, false), 2u);
}

TEST(LeastDelayScan, StrictImprovementWinsAndExcludeIsHonoured) {
  ViewFixture f(3);
  f.d_est[1] = -1.0;  // strictly better than replica 0
  const std::vector<ServerId> replicas = {0, 1, 2};
  EXPECT_EQ(least_delay_scan(replicas, f.view(), 40.0, kInvalidServer, true), 1u);
  EXPECT_EQ(least_delay_scan(replicas, f.view(), 40.0, /*exclude=*/1, true), 0u);
  // Excluding everything yields no pick.
  EXPECT_EQ(least_delay_scan({1}, f.view(), 40.0, 1, true), kInvalidServer);
}

// --- per-strategy picks ------------------------------------------------------

TEST(PrimarySelectorTest, AlwaysTheFront) {
  ViewFixture f(4);
  f.d_est[2] = -100.0;  // even a "faster" replica does not tempt it
  PrimarySelector sel;
  Rng rng{1};
  EXPECT_EQ(sel.pick({3, 2, 1}, f.view(), kCtx, rng), 3u);
}

TEST(RandomSelectorTest, DrawsExactlyOneFromTheCallerStream) {
  ViewFixture f(4);
  RandomSelector sel;
  const std::vector<ServerId> replicas = {0, 1, 2};
  Rng rng{42};
  Rng reference{42};
  const ServerId picked = sel.pick(replicas, f.view(), kCtx, rng);
  EXPECT_EQ(picked, replicas[reference.next_below(replicas.size())]);
  // Exactly one draw consumed: the streams stay in lockstep.
  EXPECT_EQ(rng.next_u64(), reference.next_u64());
}

TEST(LeastDelaySelectorTest, SkipsSuspectsAndFallsBackWhenAllSuspected) {
  ViewFixture f(3);
  f.d_est = {50.0, 5.0, 20.0};
  LeastDelaySelector sel;
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1, 2};
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 1u);
  f.suspected[1] = 1;
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 2u);
  f.suspected.assign(3, 1);
  // All suspected: plain ranking rather than refusing to send.
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 1u);
}

TEST(TarsSelectorTest, HysteresisDampsSwitching) {
  ViewFixture f(2);
  TarsSelector::Params p;
  p.hysteresis = 0.2;
  p.min_dwell_us = 100.0;
  TarsSelector sel{p};
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1};

  SelectionContext ctx{40.0, 7, 0.0};
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);  // first pick: best

  // Replica 1 becomes mildly better — inside the 20% margin, no switch.
  f.d_est[1] = -5.0;
  ctx.now = 1000.0;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);
  EXPECT_EQ(sel.switches(), 0u);

  // Decisively better: estimate 20 vs the incumbent's 50 * (1 - 0.2) = 40.
  f.d_est[1] = -30.0;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 1u);
  EXPECT_EQ(sel.switches(), 1u);
}

TEST(TarsSelectorTest, DwellTimeRateBoundsSwitching) {
  ViewFixture f(2);
  TarsSelector::Params p;
  p.hysteresis = 0.1;
  p.min_dwell_us = 500.0;
  TarsSelector sel{p};
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1};

  SelectionContext ctx{40.0, 7, 0.0};
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);

  // Replica 1 decisively better, but the incumbent has not dwelled yet.
  f.d_est[1] = -30.0;
  ctx.now = 100.0;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);
  EXPECT_EQ(sel.switches(), 0u);
  // After the dwell window the same improvement is allowed through.
  ctx.now = 600.0;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 1u);
  EXPECT_EQ(sel.switches(), 1u);
}

TEST(TarsSelectorTest, SuspectedIncumbentIsAbandonedImmediately) {
  ViewFixture f(2);
  TarsSelector sel;  // default dwell 500us
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1};
  SelectionContext ctx{40.0, 7, 0.0};
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);
  // The incumbent stops answering: no dwell, no margin — leave at once.
  f.suspected[0] = 1;
  ctx.now = 1.0;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 1u);
  // All suspected: plain fallback (lowest estimate, first wins).
  f.suspected[1] = 1;
  EXPECT_EQ(sel.pick(replicas, f.view(), ctx, rng), 0u);
}

TEST(TarsSelectorTest, StateIsPerReplicaGroup) {
  ViewFixture f(4);
  TarsSelector sel;
  Rng rng{1};
  SelectionContext ctx{40.0, 7, 0.0};
  f.d_est = {0.0, -5.0, -10.0, -20.0};
  // Two disjoint groups settle on their own incumbents.
  EXPECT_EQ(sel.pick({0, 1}, f.view(), ctx, rng), 1u);
  EXPECT_EQ(sel.pick({2, 3}, f.view(), ctx, rng), 3u);
  // Re-picking either group is sticky, not cross-contaminated.
  EXPECT_EQ(sel.pick({0, 1}, f.view(), ctx, rng), 1u);
  EXPECT_EQ(sel.pick({2, 3}, f.view(), ctx, rng), 3u);
}

TEST(TarsSelectorTest, StaleIncumbentOutsideTheCandidateSetIsReplaced) {
  // Group state is keyed by the primary, but a vnode ring can hand two keys
  // the same primary with different successor sets. A cached incumbent that
  // is not a replica of the current key must never be returned.
  ViewFixture f(4);
  TarsSelector sel;
  Rng rng{1};
  SelectionContext ctx{40.0, 7, 0.0};
  f.d_est = {0.0, -5.0, 0.0, -10.0};
  // Primary 0 with successor 1: the group settles on 1.
  EXPECT_EQ(sel.pick({0, 1}, f.view(), ctx, rng), 1u);
  // Same primary, different successor set {0, 3}: the incumbent 1 holds no
  // copy of this key — re-adopt from the candidates, without a switch charge.
  ctx.now = 1.0;
  EXPECT_EQ(sel.pick({0, 3}, f.view(), ctx, rng), 3u);
  EXPECT_EQ(sel.switches(), 0u);
}

TEST(PowerOfDSelectorTest, PicksTheBetterOfTheSampledPair) {
  ViewFixture f(8);
  f.d_est = {70.0, 60.0, 50.0, 40.0, 30.0, 20.0, 10.0, 0.0};
  PowerOfDSelector sel;
  const std::vector<ServerId> replicas = {0, 1, 2, 3, 4, 5, 6, 7};
  // Whatever pair the stream samples, the pick must be the estimate-minimum
  // of that pair — i.e. never the strictly worse sampled candidate. Replay
  // the sampling with a lockstep reference stream to know the pair.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng{seed};
    Rng reference{seed};
    const ServerId picked = sel.pick(replicas, f.view(), kCtx, rng);
    std::vector<ServerId> pool = replicas;
    const std::size_t i = reference.next_below(pool.size());
    std::swap(pool[0], pool[i]);
    const std::size_t j = 1 + reference.next_below(pool.size() - 1);
    std::swap(pool[1], pool[j]);
    const ServerId expected =
        f.d_est[pool[0]] <= f.d_est[pool[1]] ? pool[0] : pool[1];
    EXPECT_EQ(picked, expected) << "seed " << seed;
    // Exactly two draws consumed.
    EXPECT_EQ(rng.next_u64(), reference.next_u64());
  }
}

TEST(PowerOfDSelectorTest, SuspectsAreNeverSampled) {
  ViewFixture f(4);
  f.suspected = {0, 1, 1, 0};
  PowerOfDSelector sel;
  const std::vector<ServerId> replicas = {0, 1, 2, 3};
  Rng rng{9};
  for (int i = 0; i < 64; ++i) {
    const ServerId picked = sel.pick(replicas, f.view(), kCtx, rng);
    EXPECT_TRUE(picked == 0 || picked == 3) << picked;
  }
  // Single live replica: picked without touching the stream.
  f.suspected = {1, 1, 1, 0};
  Rng before{rng};
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 3u);
  EXPECT_EQ(rng.next_u64(), before.next_u64());
  // All suspected: deterministic plain fallback.
  f.suspected = {1, 1, 1, 1};
  f.d_est = {5.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 1u);
}

TEST(C3SelectorTest, ColdViewMatchesLeastDelay) {
  // With no learned delay the cubic term vanishes and the C3 score is
  // rtt + service — the least-delay ranking, first-replica tie-break and all.
  ViewFixture f(3);
  f.mu_est = {1.0, 2.0, 0.5};  // replica 1 is the fastest
  C3Selector c3;
  LeastDelaySelector ld;
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1, 2};
  EXPECT_EQ(c3.pick(replicas, f.view(), kCtx, rng),
            ld.pick(replicas, f.view(), kCtx, rng));
  ViewFixture flat(3);
  EXPECT_EQ(c3.pick({2, 0, 1}, flat.view(), kCtx, rng), 2u);  // tie: first
}

TEST(C3SelectorTest, CubicPenaltyOutweighsLinearDelay) {
  // demand 40: replica 0 has 100us of learned backlog (q̂=2.5 services), so
  // its cubic score is 10 + 40·(1+15.6) ≈ 677 while least-delay scores it
  // 10+100+40 = 150 — still ahead of replica 1's raw-but-slow 10+0+160=170.
  // C3 flips the pick to the idle slow replica (score 10+160=170): queue
  // depth dominates raw speed once it compounds.
  ViewFixture f(2);
  f.d_est = {100.0, 0.0};
  f.mu_est = {1.0, 0.25};
  C3Selector c3;
  LeastDelaySelector ld;
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1};
  EXPECT_EQ(ld.pick(replicas, f.view(), kCtx, rng), 0u);
  EXPECT_EQ(c3.pick(replicas, f.view(), kCtx, rng), 1u);
}

TEST(C3SelectorTest, SkipsSuspectsAndFallsBackWhenAllSuspected) {
  ViewFixture f(3);
  f.d_est = {50.0, 5.0, 20.0};
  C3Selector sel;
  Rng rng{1};
  const std::vector<ServerId> replicas = {0, 1, 2};
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 1u);
  f.suspected[1] = 1;
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 2u);
  f.suspected.assign(3, 1);
  // All suspected: plain cubic ranking rather than refusing to send.
  EXPECT_EQ(sel.pick(replicas, f.view(), kCtx, rng), 1u);
}

// --- the shared alternate (hedge / failover) ---------------------------------

TEST(PickAlternate, ExcludesOriginSkipsSuspectsNoFallback) {
  ViewFixture f(3);
  f.d_est = {0.0, 10.0, 20.0};
  const std::vector<ServerId> replicas = {0, 1, 2};
  // Every strategy shares the alternate contract; spot-check across two.
  PrimarySelector primary;
  PowerOfDSelector powd;
  for (ReplicaSelector* sel :
       std::vector<ReplicaSelector*>{&primary, &powd}) {
    EXPECT_EQ(sel->pick_alternate(replicas, f.view(), kCtx, /*exclude=*/0), 1u);
    f.suspected[1] = 1;
    EXPECT_EQ(sel->pick_alternate(replicas, f.view(), kCtx, 0), 2u);
    f.suspected[2] = 1;
    // No live distinct replica: the caller must stay put, not double load
    // onto a suspect.
    EXPECT_EQ(sel->pick_alternate(replicas, f.view(), kCtx, 0), kInvalidServer);
    f.suspected.assign(3, 0);
  }
}

}  // namespace
}  // namespace das::select
