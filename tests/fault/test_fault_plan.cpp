// FaultPlan: CLI-spec parser, structural validation, chaos generator.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace das::fault {
namespace {

TEST(FaultPlanParse, CrashRecoverAndPartitionSpec) {
  const FaultPlan plan =
      parse_fault_plan("crash@50ms:s3,recover@80ms:s3,partition@20ms:c0-s1");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 50.0 * kMillisecond);
  EXPECT_EQ(plan.events[0].server, 3u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kRecover);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 80.0 * kMillisecond);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kPartition);
  EXPECT_DOUBLE_EQ(plan.events[2].at, 20.0 * kMillisecond);
  EXPECT_EQ(plan.events[2].client, 0u);
  EXPECT_EQ(plan.events[2].server, 1u);
}

TEST(FaultPlanParse, WindowFormsExpandToStartEndPairs) {
  const FaultPlan plan =
      parse_fault_plan("slow@10ms-40ms:s2:x0.25,lossburst@5ms-9ms:p0.3");
  ASSERT_EQ(plan.events.size(), 4u);
  // Each window token expands to its start/end pair in token order (the
  // executor schedules by timestamp, so cross-token order is irrelevant).
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSlowStart);
  EXPECT_EQ(plan.events[0].server, 2u);
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 0.25);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kSlowEnd);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 40.0 * kMillisecond);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLossStart);
  EXPECT_DOUBLE_EQ(plan.events[2].at, 5.0 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 0.3);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kLossEnd);
  EXPECT_DOUBLE_EQ(plan.events[3].at, 9.0 * kMillisecond);
}

TEST(FaultPlanParse, TimeUnitsAndWildcardClient) {
  const FaultPlan plan =
      parse_fault_plan("partition@1500us:*-s0,heal@2000:*-s0");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 1500.0);
  EXPECT_EQ(plan.events[0].client, kAllClients);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 2000.0);  // bare number = us
  EXPECT_EQ(plan.events[1].kind, FaultKind::kHeal);
}

TEST(FaultPlanParse, MalformedTokensThrow) {
  EXPECT_THROW(parse_fault_plan("crash"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@50ms"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@50ms:c3"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("explode@50ms:s3"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@10ms-40ms:s2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@40ms-10ms:s2:x0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lossburst@1ms-2ms:p1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("partition@1ms:s1-s2"), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsOutOfRangeTargets) {
  const FaultPlan plan = parse_fault_plan("crash@50ms:s3,recover@80ms:s3");
  EXPECT_NO_THROW(plan.validate(4, 1));
  EXPECT_THROW(plan.validate(3, 1), std::invalid_argument);
  const FaultPlan link = parse_fault_plan("partition@1ms:c2-s0");
  EXPECT_THROW(link.validate(4, 2), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsBrokenLifecycles) {
  // Double crash without an intervening recover.
  EXPECT_THROW(parse_fault_plan("crash@1ms:s0,crash@2ms:s0").validate(2, 1),
               std::invalid_argument);
  // Recover of a server that never crashed.
  EXPECT_THROW(parse_fault_plan("recover@1ms:s0").validate(2, 1),
               std::invalid_argument);
  // Heal of an intact link.
  EXPECT_THROW(parse_fault_plan("heal@1ms:c0-s0").validate(2, 1),
               std::invalid_argument);
}

TEST(FaultPlanProperties, LosesWorkAndUnrecoveredFailure) {
  EXPECT_FALSE(FaultPlan{}.loses_work());
  EXPECT_FALSE(parse_fault_plan("slow@1ms-2ms:s0:x0.5").loses_work());
  EXPECT_TRUE(parse_fault_plan("crash@1ms:s0,recover@2ms:s0").loses_work());
  EXPECT_TRUE(parse_fault_plan("lossburst@1ms-2ms:p0.5").loses_work());

  EXPECT_FALSE(
      parse_fault_plan("crash@1ms:s0,recover@2ms:s0").has_unrecovered_failure());
  EXPECT_TRUE(parse_fault_plan("crash@1ms:s0").has_unrecovered_failure());
  EXPECT_TRUE(parse_fault_plan("partition@1ms:c0-s0").has_unrecovered_failure());
  EXPECT_FALSE(parse_fault_plan("partition@1ms:c0-s0,heal@2ms:c0-s0")
                   .has_unrecovered_failure());
}

TEST(ChaosPlan, DeterministicAndValid) {
  ChaosOptions options;
  options.horizon_us = 100.0 * kMillisecond;
  options.num_servers = 8;
  options.num_clients = 4;
  options.crashes = 3;
  options.slowdowns = 2;
  options.partitions = 2;
  const FaultPlan a = make_chaos_plan(options, 42);
  const FaultPlan b = make_chaos_plan(options, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].server, b.events[i].server);
    EXPECT_EQ(a.events[i].client, b.events[i].client);
    EXPECT_DOUBLE_EQ(a.events[i].factor, b.events[i].factor);
  }
  EXPECT_NO_THROW(a.validate(options.num_servers, options.num_clients));
  // Every window heals inside the horizon: chaos plans terminate cleanly.
  EXPECT_FALSE(a.has_unrecovered_failure());
  for (const FaultEvent& e : a.events) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, options.horizon_us);
  }
}

TEST(ChaosPlan, DifferentSeedsDiffer) {
  ChaosOptions options;
  options.horizon_us = 100.0 * kMillisecond;
  options.num_servers = 8;
  options.num_clients = 4;
  options.crashes = 3;
  const FaultPlan a = make_chaos_plan(options, 1);
  const FaultPlan b = make_chaos_plan(options, 2);
  bool any_difference = a.events.size() != b.events.size();
  for (std::size_t i = 0; !any_difference && i < a.events.size(); ++i)
    any_difference = a.events[i].at != b.events[i].at ||
                     a.events[i].server != b.events[i].server;
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace das::fault
