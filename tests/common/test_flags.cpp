#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace das {
namespace {

bool parse(Flags& flags, std::vector<const char*> args, std::string* error) {
  args.insert(args.begin(), "prog");
  return flags.parse(static_cast<int>(args.size()), args.data(), error);
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  Flags flags;
  flags.define("load", "0.7", "target load");
  std::string error;
  ASSERT_TRUE(parse(flags, {}, &error));
  EXPECT_DOUBLE_EQ(flags.get_double("load"), 0.7);
  EXPECT_FALSE(flags.set_on_command_line("load"));
}

TEST(Flags, EqualsFormParses) {
  Flags flags;
  flags.define("load", "0.7", "");
  std::string error;
  ASSERT_TRUE(parse(flags, {"--load=0.9"}, &error));
  EXPECT_DOUBLE_EQ(flags.get_double("load"), 0.9);
  EXPECT_TRUE(flags.set_on_command_line("load"));
}

TEST(Flags, SpaceFormParses) {
  Flags flags;
  flags.define("servers", "32", "");
  std::string error;
  ASSERT_TRUE(parse(flags, {"--servers", "64"}, &error));
  EXPECT_EQ(flags.get_int("servers"), 64);
}

TEST(Flags, BareBooleanForm) {
  Flags flags;
  flags.define("verbose", "false", "");
  std::string error;
  ASSERT_TRUE(parse(flags, {"--verbose"}, &error));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, UnknownFlagRejected) {
  Flags flags;
  flags.define("load", "0.7", "");
  std::string error;
  EXPECT_FALSE(parse(flags, {"--laod=0.9"}, &error));
  EXPECT_NE(error.find("laod"), std::string::npos);
}

// The error text is part of the contract: scripts and humans both match on
// it, so it must be deterministic and name the offending flag.
TEST(Flags, UnknownDasFlagNamedInError) {
  Flags flags;
  flags.define("das-defer-margin", "2", "");
  std::string error;
  EXPECT_FALSE(parse(flags, {"--das_defer_margin=3"}, &error));
  EXPECT_EQ(error, "unknown flag: --das_defer_margin");
}

TEST(Flags, MissingValueRejected) {
  Flags flags;
  flags.define("servers", "32", "");
  std::string error;
  EXPECT_FALSE(parse(flags, {"--servers"}, &error));
  EXPECT_EQ(error, "flag --servers needs a value");
}

TEST(Flags, DuplicateFlagRejected) {
  Flags flags;
  flags.define("load", "0.7", "");
  std::string error;
  EXPECT_FALSE(parse(flags, {"--load=0.5", "--load=0.9"}, &error));
  EXPECT_EQ(error, "duplicate flag: --load");
  // Mixed forms collide too: --load 0.5 then --load=0.9.
  Flags flags2;
  flags2.define("load", "0.7", "");
  EXPECT_FALSE(parse(flags2, {"--load", "0.5", "--load=0.9"}, &error));
  EXPECT_EQ(error, "duplicate flag: --load");
}

TEST(Flags, RepeatedBooleanRejected) {
  Flags flags;
  flags.define("verbose", "false", "");
  std::string error;
  EXPECT_FALSE(parse(flags, {"--verbose", "--verbose"}, &error));
  EXPECT_EQ(error, "duplicate flag: --verbose");
}

TEST(Flags, DistinctFlagsDoNotCollide) {
  Flags flags;
  flags.define("load", "0.7", "");
  flags.define("servers", "32", "");
  std::string error;
  ASSERT_TRUE(parse(flags, {"--load=0.5", "--servers=8"}, &error));
  EXPECT_DOUBLE_EQ(flags.get_double("load"), 0.5);
  EXPECT_EQ(flags.get_int("servers"), 8);
}

TEST(Flags, PositionalsCollected) {
  Flags flags;
  flags.define("load", "0.7", "");
  std::string error;
  ASSERT_TRUE(parse(flags, {"trace.txt", "--load=0.5", "out.csv"}, &error));
  EXPECT_EQ(flags.positionals(),
            (std::vector<std::string>{"trace.txt", "out.csv"}));
}

TEST(Flags, BadNumberThrows) {
  Flags flags;
  flags.define("load", "abc", "");
  EXPECT_THROW(flags.get_double("load"), std::logic_error);
  EXPECT_THROW(flags.get_int("load"), std::logic_error);
}

TEST(Flags, BoolVariants) {
  Flags flags;
  flags.define("a", "1", "");
  flags.define("b", "no", "");
  EXPECT_TRUE(flags.get_bool("a"));
  EXPECT_FALSE(flags.get_bool("b"));
}

TEST(Flags, UndeclaredAccessThrows) {
  Flags flags;
  EXPECT_THROW(flags.get_string("nope"), std::logic_error);
}

TEST(Flags, DuplicateDefinitionThrows) {
  Flags flags;
  flags.define("x", "1", "");
  EXPECT_THROW(flags.define("x", "2", ""), std::logic_error);
}

TEST(Flags, HelpListsFlagsAndDefaults) {
  Flags flags;
  flags.define("load", "0.7", "target load");
  std::ostringstream os;
  flags.print_help(os, "dassim");
  EXPECT_NE(os.str().find("--load"), std::string::npos);
  EXPECT_NE(os.str().find("0.7"), std::string::npos);
  EXPECT_NE(os.str().find("target load"), std::string::npos);
}

}  // namespace
}  // namespace das
