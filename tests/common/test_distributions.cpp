#include "common/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace das {
namespace {

double empirical_mean_real(const RealDistribution& d, int n, std::uint64_t seed) {
  Rng rng{seed};
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  return sum / n;
}

double empirical_mean_int(const IntDistribution& d, int n, std::uint64_t seed) {
  Rng rng{seed};
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  return sum / n;
}

TEST(Constant, SamplesEqualValueAndMean) {
  auto d = make_constant(42.5);
  Rng rng{1};
  EXPECT_DOUBLE_EQ(d->sample(rng), 42.5);
  EXPECT_DOUBLE_EQ(d->mean(), 42.5);
}

TEST(UniformReal, MeanMatchesAnalytic) {
  auto d = make_uniform_real(10.0, 30.0);
  EXPECT_DOUBLE_EQ(d->mean(), 20.0);
  EXPECT_NEAR(empirical_mean_real(*d, 100000, 2), 20.0, 0.2);
}

TEST(Exponential, MeanMatchesAnalytic) {
  auto d = make_exponential(7.5);
  EXPECT_DOUBLE_EQ(d->mean(), 7.5);
  EXPECT_NEAR(empirical_mean_real(*d, 200000, 3), 7.5, 0.15);
}

TEST(LognormalMean, EmpiricalMeanMatchesTarget) {
  auto d = make_lognormal_mean(100.0, 1.0);
  EXPECT_DOUBLE_EQ(d->mean(), 100.0);
  EXPECT_NEAR(empirical_mean_real(*d, 400000, 4), 100.0, 3.0);
}

TEST(GeneralizedPareto, CapIsRespected) {
  auto d = make_generalized_pareto(1.0, 250.0, 0.35, 4096.0);
  Rng rng{5};
  for (int i = 0; i < 100000; ++i) {
    const double x = d->sample(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 4096.0);
  }
}

TEST(GeneralizedPareto, TruncatedMeanMatchesEmpirical) {
  auto d = make_generalized_pareto(1.0, 250.0, 0.35, 65536.0);
  EXPECT_NEAR(empirical_mean_real(*d, 500000, 6), d->mean(), d->mean() * 0.03);
}

TEST(GeneralizedPareto, HeavierShapeRaisesMean) {
  auto light = make_generalized_pareto(1.0, 250.0, 0.2, 65536.0);
  auto heavy = make_generalized_pareto(1.0, 250.0, 0.5, 65536.0);
  EXPECT_GT(heavy->mean(), light->mean());
}

TEST(FixedInt, AlwaysK) {
  auto d = make_fixed_int(9);
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d->sample(rng), 9u);
  EXPECT_DOUBLE_EQ(d->mean(), 9.0);
}

TEST(FixedInt, RejectsZero) { EXPECT_THROW(make_fixed_int(0), std::logic_error); }

TEST(UniformInt, InclusiveBounds) {
  auto d = make_uniform_int(3, 6);
  Rng rng{8};
  std::map<std::uint32_t, int> seen;
  for (int i = 0; i < 40000; ++i) ++seen[d->sample(rng)];
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(3));
  EXPECT_TRUE(seen.count(6));
  EXPECT_DOUBLE_EQ(d->mean(), 4.5);
}

TEST(Geometric, MeanMatchesTruncatedAnalytic) {
  auto d = make_geometric(0.25, 1000);
  // Near-untruncated: mean ~= 1/p.
  EXPECT_NEAR(d->mean(), 4.0, 0.01);
  EXPECT_NEAR(empirical_mean_int(*d, 200000, 9), 4.0, 0.05);
}

TEST(Geometric, CapIsRespected) {
  auto d = make_geometric(0.05, 10);
  Rng rng{10};
  for (int i = 0; i < 50000; ++i) {
    const auto x = d->sample(rng);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 10u);
  }
  EXPECT_NEAR(empirical_mean_int(*d, 200000, 11), d->mean(), 0.05);
}

TEST(Geometric, PEqualOneIsAlwaysOne) {
  auto d = make_geometric(1.0, 100);
  Rng rng{12};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d->sample(rng), 1u);
  EXPECT_DOUBLE_EQ(d->mean(), 1.0);
}

TEST(ZipfInt, RangeAndSkew) {
  auto d = make_zipf_int(100, 1.0);
  Rng rng{13};
  std::map<std::uint32_t, int> seen;
  for (int i = 0; i < 100000; ++i) {
    const auto x = d->sample(rng);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 100u);
    ++seen[x];
  }
  EXPECT_GT(seen[1], seen[10] * 5);  // strong head
  EXPECT_NEAR(empirical_mean_int(*d, 200000, 14), d->mean(), d->mean() * 0.03);
}

TEST(Bimodal, OnlyTwoValues) {
  auto d = make_bimodal(2, 40, 0.1);
  Rng rng{15};
  int large = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto x = d->sample(rng);
    ASSERT_TRUE(x == 2 || x == 40);
    large += x == 40;
  }
  EXPECT_NEAR(static_cast<double>(large) / n, 0.1, 0.01);
  EXPECT_DOUBLE_EQ(d->mean(), 0.9 * 2 + 0.1 * 40);
}

TEST(BimodalReal, OnlyTwoValuesAndExactMean) {
  auto d = make_bimodal_real(100.0, 4096.0, 0.25);
  Rng rng{17};
  int large = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d->sample(rng);
    ASSERT_TRUE(x == 100.0 || x == 4096.0);
    large += x == 4096.0;
  }
  EXPECT_NEAR(static_cast<double>(large) / n, 0.25, 0.01);
  EXPECT_DOUBLE_EQ(d->mean(), 0.25 * 4096.0 + 0.75 * 100.0);
  EXPECT_THROW(make_bimodal_real(0.0, 10.0, 0.5), std::logic_error);
  EXPECT_THROW(make_bimodal_real(10.0, 5.0, 0.5), std::logic_error);
}

TEST(Discrete, RespectsWeights) {
  auto d = make_discrete({1, 5, 10}, {1.0, 2.0, 1.0});
  Rng rng{16};
  std::map<std::uint32_t, int> seen;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++seen[d->sample(rng)];
  EXPECT_NEAR(static_cast<double>(seen[5]) / n, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(d->mean(), (1 + 2 * 5 + 10) / 4.0);
}

TEST(Discrete, RejectsMismatchedSizes) {
  EXPECT_THROW(make_discrete({1, 2}, {1.0}), std::logic_error);
}

TEST(Discrete, RejectsZeroTotalWeight) {
  EXPECT_THROW(make_discrete({1, 2}, {0.0, 0.0}), std::logic_error);
}

TEST(ZipfGenerator, PmfSumsToOne) {
  ZipfGenerator gen{1000, 0.99};
  double sum = 0;
  for (std::uint64_t r = 0; r < 1000; ++r) sum += gen.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfGenerator, PmfIsMonotoneDecreasing) {
  ZipfGenerator gen{1000, 0.8};
  for (std::uint64_t r = 1; r < 1000; ++r) ASSERT_LT(gen.pmf(r), gen.pmf(r - 1));
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  ZipfGenerator gen{50, 0.0};
  for (std::uint64_t r = 0; r < 50; ++r) EXPECT_NEAR(gen.pmf(r), 0.02, 1e-12);
}

TEST(ZipfGenerator, EmpiricalHeadMatchesPmf) {
  ZipfGenerator gen{1000, 0.99};
  Rng rng{17};
  int rank0 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) rank0 += gen.sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(rank0) / n, gen.pmf(0), 0.005);
}

TEST(ZipfGenerator, SamplesInRange) {
  ZipfGenerator gen{10, 1.2};
  Rng rng{18};
  for (int i = 0; i < 10000; ++i) ASSERT_LT(gen.sample(rng), 10u);
}

TEST(ZipfGenerator, SingletonUniverse) {
  ZipfGenerator gen{1, 0.99};
  Rng rng{19};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(gen.pmf(0), 1.0);
}

// Property sweep: every integer family's analytic mean matches Monte Carlo.
class IntDistMeanProperty
    : public ::testing::TestWithParam<std::pair<const char*, IntDistPtr>> {};

TEST_P(IntDistMeanProperty, AnalyticMeanMatchesEmpirical) {
  const auto& [name, dist] = GetParam();
  SCOPED_TRACE(name);
  const double emp = empirical_mean_int(*dist, 400000, 0xBEEF);
  EXPECT_NEAR(emp, dist->mean(), std::max(0.02 * dist->mean(), 0.02));
}

INSTANTIATE_TEST_SUITE_P(
    Families, IntDistMeanProperty,
    ::testing::Values(
        std::pair<const char*, IntDistPtr>{"fixed", make_fixed_int(4)},
        std::pair<const char*, IntDistPtr>{"uniform", make_uniform_int(1, 31)},
        std::pair<const char*, IntDistPtr>{"geometric", make_geometric(0.125, 128)},
        std::pair<const char*, IntDistPtr>{"zipf", make_zipf_int(64, 1.1)},
        std::pair<const char*, IntDistPtr>{"bimodal", make_bimodal(2, 64, 0.05)},
        std::pair<const char*, IntDistPtr>{"discrete",
                                           make_discrete({1, 8, 32}, {4, 2, 1})}));

}  // namespace
}  // namespace das
