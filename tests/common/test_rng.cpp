#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace das {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345}, b{12345};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng{0};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 95u);  // not a degenerate constant stream
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng{11};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{3};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng{3};
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{5};
  std::array<int, 8> buckets{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) EXPECT_NEAR(count, n / 8, n / 8 * 0.1);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng{17};
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng{17};
  EXPECT_THROW(rng.exponential(0.0), std::logic_error);
  EXPECT_THROW(rng.exponential(-1.0), std::logic_error);
}

TEST(Rng, NormalMoments) {
  Rng rng{19};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{23};
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(2.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(2.0), 0.15);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng{29};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork(1);
  // Child diverges from parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsDeterministicInStateAndTag) {
  Rng a{31}, b{31};
  Rng ca = a.fork(7), cb = b.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ForkDifferentTagsDiffer) {
  Rng a{31}, b{31};
  Rng ca = a.fork(7), cb = b.fork(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (ca.next_u64() == cb.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng{37};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    ASSERT_GE(x, -5.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace das
