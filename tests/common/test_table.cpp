#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace das {
namespace {

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t{{"policy", "mean", "p99"}};
  t.add_row({"fcfs", "100.0", "500.0"});
  t.add_row({"das", "70.0", "350.0"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("fcfs"), std::string::npos);
  EXPECT_NE(out.find("das"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::logic_error);
}

TEST(Table, FmtFixesPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
}

TEST(Table, FmtPercent) {
  EXPECT_EQ(Table::fmt_percent(0.256, 1), "25.6%");
  EXPECT_EQ(Table::fmt_percent(-0.05, 0), "-5%");
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t{{"x", "y"}};
  t.add_row({"looooong", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is{os.str()};
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());
}

}  // namespace
}  // namespace das
