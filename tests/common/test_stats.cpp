#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace das {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, MatchesNaiveComputation) {
  Rng rng{1};
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform(-100, 100);
  StreamingStats s;
  for (double x : xs) s.add(x);

  const double naive_mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
                            static_cast<double>(xs.size());
  double naive_var = 0;
  for (double x : xs) naive_var += (x - naive_mean) * (x - naive_mean);
  naive_var /= static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(s.mean(), naive_mean, 1e-9);
  EXPECT_NEAR(s.variance(), naive_var, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(StreamingStats, MergeEqualsSinglePass) {
  Rng rng{2};
  StreamingStats all, a, b;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.exponential(10.0);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LogHistogram, QuantilesOfKnownPopulation) {
  LogHistogram h{1.0, 1e6, 1.01};
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i));
  // Relative error bounded by the bucket growth factor.
  EXPECT_NEAR(h.p50(), 5000.0, 5000.0 * 0.015);
  EXPECT_NEAR(h.p99(), 9900.0, 9900.0 * 0.015);
  EXPECT_NEAR(h.quantile(1.0), 10000.0, 10000.0 * 0.015);
}

TEST(LogHistogram, CountTracksAdds) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  h.add(5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LogHistogram, QuantileOnEmptyThrows) {
  LogHistogram h;
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
}

// The empty-input behavior is pinned: a fixed, deterministic message (tools
// and tests match on it), thrown for every quantile order including the
// p50/p99 shorthands.
TEST(LogHistogram, EmptyQuantileMessageIsDeterministic) {
  LogHistogram h;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    try {
      h.quantile(q);
      FAIL() << "quantile(" << q << ") on empty histogram did not throw";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string{e.what()}.find("quantile of empty histogram"),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_THROW(h.p50(), std::logic_error);
  EXPECT_THROW(h.p999(), std::logic_error);
}

TEST(LogHistogram, OutOfRangeQuantileOrderThrows) {
  LogHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.quantile(-0.01), std::logic_error);
  EXPECT_THROW(h.quantile(1.01), std::logic_error);
}

TEST(LogHistogram, BelowRangeClampsToFirstBucket) {
  LogHistogram h{1.0, 100.0, 1.05};
  h.add(0.001);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LT(h.quantile(0.5), 1.1);
}

TEST(LogHistogram, AboveRangeClampsAndCounts) {
  LogHistogram h{1.0, 100.0, 1.05};
  h.add(1e9);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_GT(h.quantile(0.5), 95.0);
}

TEST(LogHistogram, RejectsNonFiniteAndNegativeSamples) {
  // Regression: NaN fails every comparison, so the `!(value > lo)` clamp in
  // bucket_for silently filed NaN (and negatives) into bucket 0, corrupting
  // every quantile downstream. These must throw instead.
  LogHistogram h{1.0, 1e6, 1.01};
  EXPECT_THROW(h.add(std::numeric_limits<double>::quiet_NaN()), std::logic_error);
  EXPECT_THROW(h.add(std::numeric_limits<double>::infinity()), std::logic_error);
  EXPECT_THROW(h.add(-std::numeric_limits<double>::infinity()), std::logic_error);
  EXPECT_THROW(h.add(-1.0), std::logic_error);
  EXPECT_EQ(h.count(), 0u);  // rejected samples leave no trace
  h.add(0.0);  // zero is a legal (if degenerate) latency: clamps to bucket 0
  h.add(5.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyRecorder, RejectedSampleLeavesRecorderConsistent) {
  LatencyRecorder rec;
  rec.add(10.0);
  EXPECT_THROW(rec.add(std::numeric_limits<double>::quiet_NaN()), std::logic_error);
  EXPECT_THROW(rec.add(-5.0), std::logic_error);
  // Histogram and moment accumulator must agree after the throw.
  EXPECT_EQ(rec.moments().count(), 1u);
  EXPECT_EQ(rec.histogram().count(), 1u);
  EXPECT_DOUBLE_EQ(rec.summary().mean, 10.0);
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a{1.0, 1e6, 1.01}, b{1.0, 1e6, 1.01}, all{1.0, 1e6, 1.01};
  Rng rng{3};
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.exponential(100.0) + 0.5;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.p50(), all.p50());
  EXPECT_DOUBLE_EQ(a.p999(), all.p999());
}

TEST(LogHistogram, MergeLayoutMismatchThrows) {
  LogHistogram a{1.0, 1e6, 1.01}, b{1.0, 1e5, 1.01};
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h{0.1, 1e9, 1.01};
  Rng rng{4};
  for (int i = 0; i < 20000; ++i) h.add(rng.lognormal(3.0, 1.5));
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyRecorder, SummaryFieldsConsistent) {
  LatencyRecorder rec;
  Rng rng{5};
  for (int i = 0; i < 50000; ++i) rec.add(rng.exponential(200.0) + 1.0);
  const LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 50000u);
  EXPECT_NEAR(s.mean, 201.0, 3.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max * 1.02);
}

TEST(LatencyRecorder, EmptySummaryIsZeroed) {
  LatencyRecorder rec;
  const LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.p999, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(LatencyRecorder, MergeCombines) {
  LatencyRecorder a, b;
  for (int i = 0; i < 100; ++i) a.add(10.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  const LatencySummary s = a.summary();
  EXPECT_EQ(s.count, 200u);
  EXPECT_NEAR(s.mean, 505.0, 1.0);
}

}  // namespace
}  // namespace das
