// SmallFn: SBO behavior, move-only semantics, heap fallback, lifetime.
#include "common/small_fn.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sched/op_context.hpp"
#include "sim/simulator.hpp"

namespace das {
namespace {

TEST(SmallFn, DefaultIsEmpty) {
  SmallFn<64> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
  EXPECT_FALSE(fn != nullptr);
  EXPECT_FALSE(fn.is_inline());
}

TEST(SmallFn, SmallLambdaStaysInline) {
  int hits = 0;
  SmallFn<64> fn{[&hits] { ++hits; }};
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn<64> a{[&hits] { ++hits; }};
  SmallFn<64> b{std::move(a)};
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move): pinned state
  EXPECT_TRUE(b != nullptr);
  b();
  EXPECT_EQ(hits, 1);
  SmallFn<64> c;
  c = std::move(b);
  EXPECT_TRUE(b == nullptr);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, MoveOnlyCaptureWorks) {
  auto value = std::make_unique<int>(41);
  SmallFn<64> fn{[v = std::move(value)] { ++*v; }};
  SmallFn<64> moved{std::move(fn)};
  moved();  // must not crash; the unique_ptr moved along
}

TEST(SmallFn, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[256];
  };
  Big big{};
  big.bytes[0] = 7;
  char seen = 0;
  SmallFn<64> fn{[big, &seen] { seen = big.bytes[0]; }};
  EXPECT_FALSE(fn.is_inline());
  EXPECT_TRUE(fn != nullptr);
  fn();
  EXPECT_EQ(seen, 7);
  // Heap-held callables relocate by pointer steal.
  SmallFn<64> moved{std::move(fn)};
  EXPECT_FALSE(moved.is_inline());
  moved();
}

TEST(SmallFn, ThrowingMoveFallsBackToHeap) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(const ThrowingMove&) = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  // Fits by size, but a throwing move would break the noexcept relocate the
  // event heap relies on, so it must live on the heap.
  static_assert(sizeof(ThrowingMove) <= 64);
  SmallFn<64> fn{ThrowingMove{}};
  EXPECT_FALSE(fn.is_inline());
  fn();
}

TEST(SmallFn, DestroyReleasesCapture) {
  auto tracked = std::make_shared<int>(0);
  EXPECT_EQ(tracked.use_count(), 1);
  {
    SmallFn<64> fn{[tracked] {}};
    EXPECT_EQ(tracked.use_count(), 2);
    fn = nullptr;  // reset destroys the capture immediately
    EXPECT_EQ(tracked.use_count(), 1);
    EXPECT_TRUE(fn == nullptr);
  }
  SmallFn<64> fn{[tracked] {}};
  SmallFn<64> other{[] {}};
  fn = std::move(other);  // reassignment destroys the old capture
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(SmallFn, AssignCallableConstructsInPlace) {
  int hits = 0;
  SmallFn<64> fn;
  fn = [&hits] { ++hits; };
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, CopyNeverHappens) {
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& o) : copies(o.copies) { ++*copies; }
    CopyCounter(CopyCounter&& o) noexcept : copies(o.copies) {}
    void operator()() const {}
  };
  int copies = 0;
  SmallFn<64> fn{CopyCounter{&copies}};
  SmallFn<64> b{std::move(fn)};
  SmallFn<64> c;
  c = std::move(b);
  c();
  EXPECT_EQ(copies, 0);
}

// The event-queue hot path must never heap-allocate: pin that the largest
// real closures — an OpContext plus pointers (the cluster's per-op send
// capture shape) — fit inside EventFn's inline buffer.
TEST(SmallFn, HotPathClosureShapesStayInline) {
  sched::OpContext op;
  int sink = 0;
  int* self = &sink;
  sim::EventFn cluster_like{[self, op] { ++*self; }};
  EXPECT_TRUE(cluster_like.is_inline());
  sim::EventFn timer_like{[self] { ++*self; }};
  EXPECT_TRUE(timer_like.is_inline());
  cluster_like();
  timer_like();
  EXPECT_EQ(sink, 2);
}

TEST(SmallFn, CapacityIsReported) {
  EXPECT_EQ(SmallFn<64>::capacity(), 64u);
  EXPECT_EQ(sim::EventFn::capacity(), 192u);
}

}  // namespace
}  // namespace das
