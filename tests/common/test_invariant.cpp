// The audit macro layer itself: DAS_AUDIT always throws AuditError with a
// useful message; DAS_DCHECK is active exactly when DAS_AUDIT_ENABLED says so
// (Debug and sanitizer builds) and compiles out — expression unevaluated — in
// Release.
#include "common/invariant.hpp"

#include <gtest/gtest.h>

#include <string>

namespace das {
namespace {

TEST(Audit, PassingAuditIsSilent) {
  EXPECT_NO_THROW(DAS_AUDIT(1 + 1 == 2, "arithmetic"));
}

TEST(Audit, FailingAuditThrowsAuditError) {
  EXPECT_THROW(DAS_AUDIT(false, "broken"), AuditError);
}

TEST(Audit, AuditErrorIsALogicError) {
  // Existing DAS_CHECK handlers (catching std::logic_error) must also catch
  // audit failures.
  EXPECT_THROW(DAS_AUDIT(false, "broken"), std::logic_error);
}

TEST(Audit, MessageNamesExpressionLocationAndDetail) {
  try {
    DAS_AUDIT(2 < 1, "the detail string");
    FAIL() << "DAS_AUDIT did not throw";
  } catch (const AuditError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_invariant.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("the detail string"), std::string::npos) << what;
  }
}

TEST(Dcheck, ActiveExactlyWhenAuditEnabled) {
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  DAS_DCHECK(count());
  DAS_DCHECK_MSG(count(), "with message");
#if DAS_AUDIT_ENABLED
  EXPECT_EQ(evaluations, 2);
#else
  // Release: the expression must not be evaluated at all.
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Dcheck, FailureBehaviourMatchesBuildType) {
#if DAS_AUDIT_ENABLED
  EXPECT_THROW(DAS_DCHECK(false), AuditError);
  EXPECT_THROW(DAS_DCHECK_MSG(false, "msg"), AuditError);
#else
  EXPECT_NO_THROW(DAS_DCHECK(false));
  EXPECT_NO_THROW(DAS_DCHECK_MSG(false, "msg"));
#endif
}

class CountingAuditable final : public Auditable {
 public:
  void check_invariants() const override { ++calls; }
  mutable int calls = 0;
};

TEST(Auditable, PolymorphicDispatch) {
  CountingAuditable counting;
  const Auditable& as_interface = counting;
  as_interface.check_invariants();
  EXPECT_EQ(counting.calls, 1);
}

}  // namespace
}  // namespace das
