// FlatMap: open-addressing semantics, backshift deletion, determinism.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace das {
namespace {

TEST(FlatMap, StartsEmpty) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(0));
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  auto [it, inserted] = m.emplace(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 5u);
  EXPECT_EQ(it->second, 50);
  EXPECT_TRUE(m.contains(5));
  EXPECT_EQ(m.at(5), 50);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.erase(5), 1u);
  EXPECT_FALSE(m.contains(5));
  EXPECT_EQ(m.erase(5), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, EmplaceDoesNotOverwrite) {
  FlatMap<std::uint64_t, int> m;
  m.emplace(1, 10);
  auto [it, inserted] = m.emplace(1, 99);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, BracketDefaultConstructsAndUpdates) {
  FlatMap<std::uint64_t, double> m;
  EXPECT_EQ(m[3], 0.0);
  m[3] = 1.5;
  m[3] += 1.0;
  EXPECT_DOUBLE_EQ(m.at(3), 2.5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, AtOnMissingKeyThrows) {
  FlatMap<std::uint64_t, int> m;
  m.emplace(1, 1);
  EXPECT_THROW(m.at(2), std::logic_error);
  const auto& cm = m;
  EXPECT_THROW(cm.at(2), std::logic_error);
}

TEST(FlatMap, GrowthPreservesEverything) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) m.emplace(k * 31 + 1, k);
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(m.contains(k * 31 + 1)) << k;
    EXPECT_EQ(m.at(k * 31 + 1), k);
  }
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t expected_keys = 0, expected_vals = 0;
  for (std::uint64_t k = 1; k <= 200; ++k) {
    m.emplace(k, 1000 + k);
    expected_keys += k;
    expected_vals += 1000 + k;
  }
  std::uint64_t keys = 0, vals = 0;
  std::size_t n = 0;
  for (const auto& [k, v] : m) {
    keys += k;
    vals += v;
    ++n;
  }
  EXPECT_EQ(n, 200u);
  EXPECT_EQ(keys, expected_keys);
  EXPECT_EQ(vals, expected_vals);
}

TEST(FlatMap, EraseByIterator) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 10; ++k) m.emplace(k, static_cast<int>(k));
  const std::uint64_t victim = m.begin()->first;
  m.erase(m.begin());
  EXPECT_EQ(m.size(), 9u);
  EXPECT_FALSE(m.contains(victim));
}

TEST(FlatMap, IteratorSecondIsMutable) {
  FlatMap<std::uint64_t, double> m;
  m.emplace(9, 1.0);
  m.begin()->second = -1.0;
  EXPECT_DOUBLE_EQ(m.at(9), -1.0);
}

TEST(FlatMap, ClearAndReuse) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 64; ++k) m.emplace(k, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.begin(), m.end());
  m.emplace(3, 3);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(3), 3);
}

TEST(FlatMap, ReservePreventsGrowthInvalidation) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  m.emplace(1, 1);
  const int* addr = &m.at(1);
  for (std::uint64_t k = 2; k <= 1000; ++k) m.emplace(k, static_cast<int>(k));
  EXPECT_EQ(addr, &m.at(1));  // no rehash happened
}

TEST(FlatMap, HoldsNonTrivialValues) {
  FlatMap<std::uint64_t, std::vector<std::string>> m;
  m[1].push_back("a");
  m[1].push_back("b");
  m[2].push_back("c");
  EXPECT_EQ(m.at(1).size(), 2u);
  m.erase(1);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(2).front(), "c");
}

// Backshift-deletion torture: mirror a FlatMap against std::unordered_map
// through a long random insert/erase/update stream and require identical
// contents throughout. High churn at small capacity maximizes probe-chain
// collisions, which is exactly what backshift must repair.
TEST(FlatMap, RandomizedMirrorsUnorderedMap) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADull}) {
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng{seed};
    for (int step = 0; step < 20000; ++step) {
      // Key space of 97 forces constant collisions and reuse-after-erase.
      const std::uint64_t key = rng.next_u64() % 97;
      const std::uint64_t roll = rng.next_u64() % 10;
      if (roll < 5) {
        const std::uint64_t value = rng.next_u64();
        flat[key] = value;
        ref[key] = value;
      } else if (roll < 8) {
        EXPECT_EQ(flat.erase(key), ref.erase(key));
      } else {
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_FALSE(flat.contains(key));
        } else {
          ASSERT_TRUE(flat.contains(key));
          EXPECT_EQ(flat.at(key), it->second);
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    // Full final sweep in both directions.
    for (const auto& [k, v] : ref) {
      ASSERT_TRUE(flat.contains(k));
      EXPECT_EQ(flat.at(k), v);
    }
    std::size_t visited = 0;
    for (const auto& [k, v] : flat) {
      const auto it = ref.find(k);
      ASSERT_NE(it, ref.end());
      EXPECT_EQ(it->second, v);
      ++visited;
    }
    EXPECT_EQ(visited, ref.size());
  }
}

// Bit-identical experiment results rely on every container the simulation
// iterates being deterministic. Two maps fed the same operation sequence
// must iterate in the same order — across runs and across standard
// libraries (the hash is ours, not std::hash).
TEST(FlatMap, IterationOrderIsDeterministic) {
  const auto build = [] {
    FlatMap<std::uint64_t, int> m;
    Rng rng{7};
    for (int i = 0; i < 500; ++i) m[rng.next_u64() % 300] = i;
    for (int i = 0; i < 200; ++i) m.erase(rng.next_u64() % 300);
    return m;
  };
  const auto a = build();
  const auto b = build();
  std::vector<std::uint64_t> ka, kb;
  for (const auto& [k, v] : a) ka.push_back(k);
  for (const auto& [k, v] : b) kb.push_back(k);
  EXPECT_EQ(ka, kb);
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet<std::uint32_t> set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));  // duplicate: reports already-present
  EXPECT_TRUE(set.insert(9));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(8));
  EXPECT_EQ(set.erase(7), 1u);
  EXPECT_EQ(set.erase(7), 0u);
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.contains(9));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(9));
}

TEST(FlatSet, MatchesReferenceSetUnderChurn) {
  FlatSet<std::uint64_t> flat;
  std::set<std::uint64_t> ref;
  Rng rng{11};
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.next_u64() % 512;
    if (rng.uniform(0.0, 1.0) < 0.6) {
      EXPECT_EQ(flat.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(flat.contains(key), ref.count(key) == 1);
  }
}

}  // namespace
}  // namespace das
