// Property-based conservation audit, every policy, randomized op streams.
//
// The schedulers' core contract is conservation: every admitted operation is
// either still queued or has been served exactly once — nothing is lost,
// duplicated, or invented, no matter how enqueues, dequeues, progress
// re-rankings and speed updates interleave. This test drives each policy
// with many randomized streams and re-checks the contract plus the full
// structural audit (check_invariants) after EVERY step, so a violation
// pinpoints the exact (policy, seed, step) that introduced it.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sched/scheduler.hpp"
#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

struct StreamState {
  SimTime now = 0;
  OperationId next_op = 1;
  std::unordered_set<OperationId> queued;
  std::unordered_set<OperationId> served;
  std::unordered_map<OperationId, RequestId> request_of;
  std::size_t admitted = 0;
};

OpContext random_op(StreamState& st, Rng& rng) {
  const OperationId id = st.next_op++;
  // A small request pool makes progress updates fan into several queued ops.
  const RequestId req = 1 + rng.next_u64() % 8;
  const double demand = rng.uniform(1.0, 80.0);
  const double total = demand + rng.uniform(0.0, 200.0);
  OpContext op = OpBuilder{id}
                     .request(req)
                     .demand(demand)
                     .total(total)
                     .critical(rng.uniform(demand, total))
                     .deadline(st.now + rng.uniform(10.0, 2000.0))
                     .build();
  // Half the ops have siblings elsewhere (exercises DAS deferral), half not.
  if (rng.chance(0.5)) {
    op.est_other_completion = st.now + rng.uniform(1.0, 4000.0);
  }
  return op;
}

void check_conservation(Scheduler& s, const StreamState& st) {
  // admitted == served + queued, and the scheduler agrees on the queue size.
  ASSERT_EQ(st.admitted, st.served.size() + st.queued.size());
  ASSERT_EQ(s.size(), st.queued.size());
  ASSERT_EQ(s.empty(), st.queued.empty());
  ASSERT_NO_THROW(s.check_invariants());
}

void run_stream(Policy policy, const SchedulerConfig& config,
                std::uint64_t seed, int steps) {
  SchedulerPtr s = make_scheduler(policy, config);
  Rng rng{seed};
  StreamState st;
  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    st.now += rng.uniform(0.0, 40.0);  // time never runs backwards
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.45) {
      const OpContext op = random_op(st, rng);
      st.request_of[op.op_id] = op.request_id;
      s->enqueue(op, st.now);
      st.queued.insert(op.op_id);
      ++st.admitted;
    } else if (roll < 0.80) {
      if (!s->empty()) {
        const OpContext out = s->dequeue(st.now);
        // Served op must have been admitted, still queued, never served.
        ASSERT_TRUE(st.queued.erase(out.op_id) == 1)
            << "op " << out.op_id << " served but not queued";
        ASSERT_TRUE(st.served.insert(out.op_id).second)
            << "op " << out.op_id << " served twice";
        ASSERT_EQ(out.request_id, st.request_of.at(out.op_id));
      }
    } else if (roll < 0.90) {
      // Progress message for a random request: re-keys its queued ops.
      ProgressUpdate update;
      update.remaining_critical_us = rng.uniform(0.0, 300.0);
      update.remaining_total_us =
          update.remaining_critical_us + rng.uniform(0.0, 300.0);
      if (rng.chance(0.7)) {
        update.est_other_completion = st.now + rng.uniform(0.0, 4000.0);
      }
      s->on_request_progress(1 + rng.next_u64() % 8, update, st.now);
    } else if (roll < 0.95) {
      s->on_speed_estimate(rng.uniform(0.25, 4.0));
    } else {
      if (!s->empty()) {
        // Preemption queries are pure; they must not disturb the queue.
        const OpContext probe = random_op(st, rng);
        --st.next_op;  // probe was never admitted
        (void)s->preempts(probe, probe);
      }
    }
    check_conservation(*s, st);
  }
  // Drain: everything admitted comes out exactly once.
  while (!s->empty()) {
    st.now += rng.uniform(0.0, 40.0);
    const OpContext out = s->dequeue(st.now);
    ASSERT_TRUE(st.queued.erase(out.op_id) == 1);
    ASSERT_TRUE(st.served.insert(out.op_id).second);
    check_conservation(*s, st);
  }
  ASSERT_EQ(st.served.size(), st.admitted);
  ASSERT_NO_THROW(s->check_invariants());
}

TEST(SchedulerConservationProperty, AllPoliciesManySeeds) {
  for (const Policy policy : all_policies()) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      SCOPED_TRACE("policy " + to_string(policy) + " seed " +
                   std::to_string(seed));
      run_stream(policy, SchedulerConfig{}, seed, 400);
    }
  }
}

// Tight aging bound: the starvation path (serve the oldest unconditionally)
// fires constantly instead of almost never.
TEST(SchedulerConservationProperty, DasWithAggressiveAging) {
  SchedulerConfig config;
  config.max_wait_us = 50.0;  // vs the ~20us mean step, ages most ops
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_stream(Policy::kDas, config, seed, 400);
    run_stream(Policy::kReinSbf, config, seed, 400);
  }
}

// Degenerate streams: all ops of one request, and all ops identical. Equal
// keys everywhere stresses tie-breaking and the order-set erase paths.
TEST(SchedulerConservationProperty, DegenerateStreams) {
  for (const Policy policy : all_policies()) {
    SCOPED_TRACE("policy " + to_string(policy));
    SchedulerPtr s = make_scheduler(policy, SchedulerConfig{});
    SimTime now = 0;
    for (OperationId id = 1; id <= 64; ++id) {
      s->enqueue(OpBuilder{id}.request(1).demand(10.0).total(10.0).build(),
                 now);
      now += 1.0;
      ASSERT_NO_THROW(s->check_invariants());
    }
    ProgressUpdate update;
    update.remaining_total_us = 5.0;
    update.remaining_critical_us = 5.0;
    s->on_request_progress(1, update, now);
    ASSERT_NO_THROW(s->check_invariants());
    std::set<OperationId> seen;
    while (!s->empty()) {
      now += 1.0;
      ASSERT_TRUE(seen.insert(s->dequeue(now).op_id).second);
      ASSERT_NO_THROW(s->check_invariants());
    }
    EXPECT_EQ(seen.size(), 64u);
  }
}

}  // namespace
}  // namespace das::sched
