// The invariant-audit layer must (a) stay silent on healthy structures and
// (b) throw AuditError when internal state is corrupted on purpose. The
// corruptions below simulate exactly the drift bugs the audits exist to
// catch: lost order entries, desynced accounting, negative remaining work,
// and aging indexes that lose track of queued operations.
#include <gtest/gtest.h>

#include "common/invariant.hpp"
#include "sched/basic_policies.hpp"
#include "sched/das.hpp"
#include "sched/keyed_queue.hpp"
#include "sched/rein.hpp"
#include "sched/req_srpt.hpp"
#include "sched_test_util.hpp"

namespace das::sched {

/// White-box corruption hooks; friend of the queue and every scheduler.
struct TestCorruptor {
  static void bump_count(SchedulerBase& s) { ++s.count_; }
  static void poison_backlog(SchedulerBase& s) { s.backlog_us_ = -5.0; }

  template <typename Key>
  static void drop_op(KeyedQueue<Key>& q) {
    q.ops_.erase(q.ops_.begin());
  }
  template <typename Key>
  static void negate_demand(KeyedQueue<Key>& q) {
    q.ops_.begin()->second.demand_us = -1.0;
  }
  template <typename Key>
  static void duplicate_order_entry(KeyedQueue<Key>& q, Key other_key) {
    const auto front = *q.order_.begin();
    q.order_.insert({std::move(other_key), front.handle});
    q.ops_.emplace(q.next_seq_ + 100, OpContext{});  // keep sizes equal
  }

  static void lose_fifo_entry(DasScheduler& s) { s.fifo_.pop_front(); }
  static void unlink_active(DasScheduler& s) {
    s.active_.erase(s.active_.begin());
  }
  static void stale_active_key(DasScheduler& s) {
    auto node = s.active_.extract(s.active_.begin());
    node.value().k += 1e9;
    s.active_.insert(std::move(node));
  }
  static void negate_remaining(DasScheduler& s) {
    s.records_.begin()->second.op.remaining_critical_us = -1.0;
  }

  static void drop_key_index(ReqSrptScheduler& s) {
    s.key_of_.erase(s.key_of_.begin());
  }
  static void negate_key_index(ReqSrptScheduler& s) {
    s.key_of_.begin()->second = -1.0;
  }

  static void lose_fifo_entry(ReinSbfScheduler& s) { s.fifo_.pop_front(); }
  static void negate_threshold(ReinSbfScheduler& s) {
    s.ewma_bottleneck_ = -1.0;
  }

  static void reorder_fcfs(FcfsScheduler& s) {
    std::swap(s.queue_.front().enqueued_at, s.queue_.back().enqueued_at);
  }

  static KeyedQueue<double>& sjf_queue(SjfScheduler& s) { return s.queue_; }
};

namespace {

using testing::OpBuilder;

OpContext op(OperationId id, double demand = 10.0) {
  return OpBuilder{id}.demand(demand).build();
}

template <typename S>
void fill(S& s, int n) {
  for (int i = 0; i < n; ++i) {
    s.enqueue(op(static_cast<OperationId>(i), 10.0 + i), static_cast<double>(i));
  }
}

// --- healthy structures audit clean ----------------------------------------

TEST(InvariantAudit, HealthySchedulersPass) {
  FcfsScheduler fcfs;
  RandomScheduler random{7};
  SjfScheduler sjf;
  EdfScheduler edf;
  ReqSrptScheduler srpt;
  ReinSbfScheduler rein{{}};
  DasScheduler das{{}};
  for (Scheduler* s : std::initializer_list<Scheduler*>{&fcfs, &random, &sjf,
                                                        &edf, &srpt, &rein, &das}) {
    EXPECT_NO_THROW(s->check_invariants()) << "empty " << s->name();
    for (int i = 0; i < 16; ++i) {
      s->enqueue(op(static_cast<OperationId>(i), 5.0 + i), static_cast<double>(i));
    }
    EXPECT_NO_THROW(s->check_invariants()) << "filled " << s->name();
    for (int i = 0; i < 9; ++i) s->dequeue(100.0);
    EXPECT_NO_THROW(s->check_invariants()) << "drained " << s->name();
    while (!s->empty()) s->dequeue(200.0);
    EXPECT_NO_THROW(s->check_invariants()) << "empty again " << s->name();
  }
}

TEST(InvariantAudit, HealthyKeyedQueuePasses) {
  KeyedQueue<double> q;
  EXPECT_NO_THROW(q.check_invariants());
  for (int i = 0; i < 8; ++i) {
    q.insert(static_cast<double>(i % 3), op(static_cast<OperationId>(i)));
  }
  q.pop_min();
  EXPECT_NO_THROW(q.check_invariants());
}

// --- accounting corruption (shared SchedulerBase layer) ---------------------

TEST(InvariantAudit, CountDriftThrows) {
  FcfsScheduler s;
  fill(s, 4);
  TestCorruptor::bump_count(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, NegativeBacklogOnEmptyThrows) {
  SjfScheduler s;
  TestCorruptor::poison_backlog(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

// --- KeyedQueue corruption --------------------------------------------------

TEST(InvariantAudit, KeyedQueueLostOpThrows) {
  KeyedQueue<double> q;
  q.insert(1.0, op(1));
  q.insert(2.0, op(2));
  TestCorruptor::drop_op(q);
  EXPECT_THROW(q.check_invariants(), AuditError);
}

TEST(InvariantAudit, KeyedQueueNegativeDemandThrows) {
  KeyedQueue<double> q;
  q.insert(1.0, op(1));
  TestCorruptor::negate_demand(q);
  EXPECT_THROW(q.check_invariants(), AuditError);
}

TEST(InvariantAudit, KeyedQueueDuplicatedHandleThrows) {
  KeyedQueue<double> q;
  q.insert(1.0, op(1));
  TestCorruptor::duplicate_order_entry(q, 9.0);
  EXPECT_THROW(q.check_invariants(), AuditError);
}

TEST(InvariantAudit, CorruptedKeyedQueueFailsOwningScheduler) {
  // The SJF audit delegates to its queue, so queue corruption surfaces
  // through the scheduler's own check_invariants().
  SjfScheduler s;
  fill(s, 3);
  TestCorruptor::negate_demand(TestCorruptor::sjf_queue(s));
  EXPECT_THROW(s.check_invariants(), AuditError);
}

// --- DAS corruption ----------------------------------------------------------

TEST(InvariantAudit, DasAgingFifoLossThrows) {
  DasScheduler s{{}};
  fill(s, 4);
  TestCorruptor::lose_fifo_entry(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, DasOrderSetDesyncThrows) {
  DasScheduler s{{}};
  fill(s, 4);
  TestCorruptor::unlink_active(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, DasStaleOrderingKeyThrows) {
  DasScheduler s{{}};
  fill(s, 4);
  TestCorruptor::stale_active_key(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, DasNegativeRemainingThrows) {
  DasScheduler s{{}};
  fill(s, 2);
  TestCorruptor::negate_remaining(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

// --- Rein / SRPT corruption --------------------------------------------------

TEST(InvariantAudit, ReinAgingFifoLossThrows) {
  ReinSbfScheduler s{{}};
  fill(s, 4);
  TestCorruptor::lose_fifo_entry(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, ReinNegativeThresholdThrows) {
  ReinSbfScheduler s{{}};
  fill(s, 2);
  TestCorruptor::negate_threshold(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, SrptKeyIndexLossThrows) {
  ReqSrptScheduler s;
  fill(s, 3);
  TestCorruptor::drop_key_index(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

TEST(InvariantAudit, SrptNegativeRemainingThrows) {
  ReqSrptScheduler s;
  fill(s, 3);
  TestCorruptor::negate_key_index(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

// --- FCFS ordering -----------------------------------------------------------

TEST(InvariantAudit, FcfsOutOfOrderThrows) {
  FcfsScheduler s;
  fill(s, 4);
  TestCorruptor::reorder_fcfs(s);
  EXPECT_THROW(s.check_invariants(), AuditError);
}

}  // namespace
}  // namespace das::sched
