#include "sched/req_srpt.hpp"

#include <gtest/gtest.h>

#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

ProgressUpdate progress(double total) {
  ProgressUpdate u;
  u.remaining_total_us = total;
  return u;
}

TEST(ReqSrpt, OrdersByTotalRemainingDemand) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(101).total(300).build(), 0);
  s.enqueue(OpBuilder{2}.request(102).total(100).build(), 0);
  s.enqueue(OpBuilder{3}.request(103).total(200).build(), 0);
  EXPECT_EQ(s.dequeue(1).op_id, 2u);
  EXPECT_EQ(s.dequeue(1).op_id, 3u);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(ReqSrpt, SiblingOpsShareRequestKey) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(500).total(50).build(), 0);
  s.enqueue(OpBuilder{2}.request(500).total(50).build(), 1);
  s.enqueue(OpBuilder{3}.request(501).total(10).build(), 2);
  EXPECT_EQ(s.dequeue(3).op_id, 3u);  // smaller request first
  EXPECT_EQ(s.dequeue(3).op_id, 1u);  // then siblings in arrival order
  EXPECT_EQ(s.dequeue(3).op_id, 2u);
}

TEST(ReqSrpt, ProgressShrinksKeyAndReorders) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(601).total(300).build(), 0);
  s.enqueue(OpBuilder{2}.request(602).total(100).build(), 0);
  // Request 601's siblings elsewhere completed: now only 20us remain.
  s.on_request_progress(601, progress(20.0), 1.0);
  EXPECT_EQ(s.dequeue(2).op_id, 1u);
  EXPECT_EQ(s.dequeue(2).op_id, 2u);
}

TEST(ReqSrpt, ProgressForUnknownRequestIsIgnored) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(1).total(10).build(), 0);
  s.on_request_progress(999, progress(1.0), 1.0);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(ReqSrpt, ProgressAfterDequeueIsIgnored) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(1).total(10).build(), 0);
  s.dequeue(1);
  s.on_request_progress(1, progress(5.0), 2.0);  // must not crash
  EXPECT_TRUE(s.empty());
}

TEST(ReqSrpt, ProgressUpdatesAllSiblingOps) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(700).total(500).build(), 0);
  s.enqueue(OpBuilder{2}.request(700).total(500).build(), 0);
  s.enqueue(OpBuilder{3}.request(701).total(100).build(), 0);
  s.on_request_progress(700, progress(10.0), 1.0);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
  EXPECT_EQ(s.dequeue(1).op_id, 2u);
  EXPECT_EQ(s.dequeue(1).op_id, 3u);
}

TEST(ReqSrpt, BacklogAccountingSurvivesProgress) {
  ReqSrptScheduler s;
  s.enqueue(OpBuilder{1}.request(1).demand(40).total(100).build(), 0);
  s.on_request_progress(1, progress(60.0), 1.0);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 40.0);  // demand, not key
  s.dequeue(1);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 0.0);
}

}  // namespace
}  // namespace das::sched
