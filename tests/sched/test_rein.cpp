#include "sched/rein.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

ReinSbfScheduler make_rein(std::size_t levels = 2, bool use_bytes = true,
                           Duration max_wait = 50000.0) {
  ReinSbfScheduler::Options opt;
  opt.levels = levels;
  opt.use_bytes = use_bytes;
  opt.max_wait_us = max_wait;
  opt.threshold_alpha = 0.05;
  return ReinSbfScheduler{opt};
}

TEST(Rein, SmallBottleneckJumpsAhead) {
  auto s = make_rein();
  // Warm the threshold with medium bottlenecks.
  for (OperationId i = 0; i < 20; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(4, 100).build(), 0);
  while (!s.empty()) s.dequeue(1);

  s.enqueue(OpBuilder{100}.bottleneck(16, 800).build(), 2);  // wide
  s.enqueue(OpBuilder{101}.bottleneck(1, 20).build(), 2);    // narrow
  EXPECT_EQ(s.dequeue(3).op_id, 101u);
  EXPECT_EQ(s.dequeue(3).op_id, 100u);
}

TEST(Rein, FcfsWithinLevel) {
  auto s = make_rein();
  for (OperationId i = 0; i < 10; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(2, 50).build(), static_cast<double>(i));
  for (OperationId i = 0; i < 10; ++i) EXPECT_EQ(s.dequeue(20).op_id, i);
}

TEST(Rein, ThresholdAdaptsToWorkload) {
  auto s = make_rein();
  for (OperationId i = 0; i < 200; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(1, 1000).build(), 0);
  // After many 1000us bottlenecks the EWMA sits near 1000.
  EXPECT_NEAR(s.current_threshold(), 1000.0, 50.0);
  EXPECT_EQ(s.level_for(500.0), 0u);    // below mean -> high priority
  EXPECT_GE(s.level_for(3000.0), 1u);   // well above mean -> low priority
}

TEST(Rein, OpCountMetricWhenConfigured) {
  auto s = make_rein(2, /*use_bytes=*/false);
  for (OperationId i = 0; i < 50; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(8, 1.0).build(), 0);
  EXPECT_NEAR(s.current_threshold(), 8.0, 1.0);
}

TEST(Rein, AgingPromotesStarvedOp) {
  auto s = make_rein(2, true, /*max_wait=*/100.0);
  for (OperationId i = 0; i < 20; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(1, 10).build(), 0);
  while (!s.empty()) s.dequeue(1);

  // A wide op arrives at t=10, then a stream of narrow ops keeps coming.
  s.enqueue(OpBuilder{999}.bottleneck(32, 10000).build(), 10.0);
  for (OperationId i = 100; i < 110; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(1, 10).build(), 11.0);
  // Before the bound, narrow ops win.
  EXPECT_NE(s.dequeue(50.0).op_id, 999u);
  // Past the bound, the starved wide op is served next.
  EXPECT_EQ(s.dequeue(200.0).op_id, 999u);
}

TEST(Rein, MoreLevelsSeparateFiner) {
  auto s = make_rein(4);
  for (OperationId i = 0; i < 100; ++i)
    s.enqueue(OpBuilder{i}.bottleneck(1, 100).build(), 0);
  while (!s.empty()) s.dequeue(1);
  EXPECT_EQ(s.level_for(50.0), 0u);
  EXPECT_EQ(s.level_for(150.0), 1u);
  EXPECT_EQ(s.level_for(350.0), 2u);
  EXPECT_EQ(s.level_for(10000.0), 3u);  // clamped to last level
}

TEST(Rein, FirstOpSeedsThreshold) {
  auto s = make_rein();
  EXPECT_EQ(s.level_for(123.0), 0u);  // unseeded: everything high priority
  s.enqueue(OpBuilder{1}.bottleneck(1, 200).build(), 0);
  EXPECT_DOUBLE_EQ(s.current_threshold(), 200.0);
}

TEST(Rein, RejectsDegenerateOptions) {
  ReinSbfScheduler::Options opt;
  opt.levels = 1;
  EXPECT_THROW(ReinSbfScheduler{opt}, std::logic_error);
}

TEST(Rein, BacklogAccounting) {
  auto s = make_rein();
  s.enqueue(OpBuilder{1}.demand(25).build(), 0);
  s.enqueue(OpBuilder{2}.demand(35).build(), 0);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 60.0);
  s.dequeue(1);
  s.dequeue(1);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 0.0);
}

}  // namespace
}  // namespace das::sched
