#include "sched/basic_policies.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sched_test_util.hpp"
#include "sched/scheduler.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

TEST(Fcfs, ServesInArrivalOrder) {
  FcfsScheduler s;
  for (OperationId i = 0; i < 10; ++i)
    s.enqueue(OpBuilder{i}.build(), static_cast<double>(i));
  for (OperationId i = 0; i < 10; ++i) EXPECT_EQ(s.dequeue(100).op_id, i);
  EXPECT_TRUE(s.empty());
}

TEST(Fcfs, StampsEnqueueTime) {
  FcfsScheduler s;
  s.enqueue(OpBuilder{1}.build(), 42.0);
  EXPECT_DOUBLE_EQ(s.dequeue(50).enqueued_at, 42.0);
}

TEST(Fcfs, BacklogTracksDemand) {
  FcfsScheduler s;
  s.enqueue(OpBuilder{1}.demand(30).build(), 0);
  s.enqueue(OpBuilder{2}.demand(20).build(), 0);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 50.0);
  s.dequeue(1);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 20.0);
  s.dequeue(1);
  EXPECT_DOUBLE_EQ(s.backlog_demand_us(), 0.0);
}

TEST(Fcfs, DequeueEmptyThrows) {
  FcfsScheduler s;
  EXPECT_THROW(s.dequeue(0), std::logic_error);
}

TEST(Random, ServesEveryOpExactlyOnce) {
  RandomScheduler s{99};
  for (OperationId i = 0; i < 100; ++i) s.enqueue(OpBuilder{i}.build(), 0);
  std::set<OperationId> served;
  for (int i = 0; i < 100; ++i) served.insert(s.dequeue(1).op_id);
  EXPECT_EQ(served.size(), 100u);
  EXPECT_TRUE(s.empty());
}

TEST(Random, OrderIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    RandomScheduler s{seed};
    for (OperationId i = 0; i < 50; ++i) s.enqueue(OpBuilder{i}.build(), 0);
    std::vector<OperationId> order;
    while (!s.empty()) order.push_back(s.dequeue(1).op_id);
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Sjf, ServesSmallestDemandFirst) {
  SjfScheduler s;
  s.enqueue(OpBuilder{1}.demand(30).build(), 0);
  s.enqueue(OpBuilder{2}.demand(5).build(), 0);
  s.enqueue(OpBuilder{3}.demand(20).build(), 0);
  EXPECT_EQ(s.dequeue(1).op_id, 2u);
  EXPECT_EQ(s.dequeue(1).op_id, 3u);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Sjf, TiesBreakByArrival) {
  SjfScheduler s;
  for (OperationId i = 0; i < 5; ++i)
    s.enqueue(OpBuilder{i}.demand(10).build(), static_cast<double>(i));
  for (OperationId i = 0; i < 5; ++i) EXPECT_EQ(s.dequeue(10).op_id, i);
}

TEST(Edf, ServesEarliestDeadlineFirst) {
  EdfScheduler s;
  s.enqueue(OpBuilder{1}.deadline(300).build(), 0);
  s.enqueue(OpBuilder{2}.deadline(100).build(), 0);
  s.enqueue(OpBuilder{3}.deadline(200).build(), 0);
  EXPECT_EQ(s.dequeue(1).op_id, 2u);
  EXPECT_EQ(s.dequeue(1).op_id, 3u);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Factory, CreatesEveryPolicyWithMatchingName) {
  for (const Policy p : all_policies()) {
    const SchedulerPtr s = make_scheduler(p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), to_string(p));
    EXPECT_TRUE(s->empty());
  }
}

TEST(Factory, PolicyStringRoundTrip) {
  for (const Policy p : all_policies()) EXPECT_EQ(policy_from_string(to_string(p)), p);
}

TEST(Factory, UnknownPolicyNameThrows) {
  EXPECT_THROW(policy_from_string("no-such-policy"), std::logic_error);
}

// Property: every policy is conserving — n enqueues yield exactly the same n
// ops back, each exactly once, regardless of order.
class ConservationProperty : public ::testing::TestWithParam<Policy> {};

TEST_P(ConservationProperty, AllOpsServedExactlyOnce) {
  const SchedulerPtr s = make_scheduler(GetParam());
  Rng rng{17};
  std::set<OperationId> in;
  SimTime now = 0;
  for (OperationId i = 0; i < 500; ++i) {
    now += 1.0;
    s->enqueue(OpBuilder{i}
                   .demand(rng.uniform(1, 50))
                   .total(rng.uniform(1, 400))
                   .critical(rng.uniform(1, 100))
                   .other_completion(rng.chance(0.5) ? now + rng.uniform(0, 500) : 0)
                   .deadline(now + rng.uniform(10, 1000))
                   .build(),
               now);
    in.insert(i);
    // Interleave some dequeues.
    if (rng.chance(0.4) && !s->empty()) {
      const OperationId id = s->dequeue(now).op_id;
      ASSERT_TRUE(in.count(id));
      in.erase(id);
    }
  }
  while (!s->empty()) {
    now += 1.0;
    const OperationId id = s->dequeue(now).op_id;
    ASSERT_TRUE(in.count(id));
    in.erase(id);
  }
  EXPECT_TRUE(in.empty());
  EXPECT_DOUBLE_EQ(s->backlog_demand_us(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ConservationProperty,
                         ::testing::ValuesIn(all_policies()),
                         [](const ::testing::TestParamInfo<Policy>& param_info) {
                           std::string name = to_string(param_info.param);
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace das::sched
