// Cross-policy behavioural properties: equivalences and monotonicities that
// hold by construction and catch regressions no single-policy test sees.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sched/basic_policies.hpp"
#include "sched/das.hpp"
#include "sched/rein.hpp"
#include "sched/req_srpt.hpp"
#include "sched/scheduler.hpp"
#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

/// Random op stream shared by equivalence checks.
std::vector<OpContext> random_stream(std::size_t n, std::uint64_t seed,
                                     SimTime spacing = 1.0) {
  Rng rng{seed};
  std::vector<OpContext> ops;
  ops.reserve(n);
  for (OperationId i = 0; i < n; ++i) {
    OpContext op = OpBuilder{i}
                       .request(rng.next_below(n / 3 + 1))
                       .demand(rng.uniform(1, 50))
                       .total(rng.uniform(1, 400))
                       .critical(rng.uniform(1, 100))
                       .other_completion(rng.chance(0.4)
                                             ? spacing * static_cast<double>(i) +
                                                   rng.uniform(0, 1000)
                                             : 0)
                       .deadline(spacing * static_cast<double>(i) + 500.0)
                       .build();
    ops.push_back(op);
  }
  return ops;
}

/// Interleaved enqueue/dequeue service order under a policy.
std::vector<OperationId> service_order(Scheduler& s,
                                       const std::vector<OpContext>& ops,
                                       double dequeue_prob, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<OperationId> order;
  SimTime now = 0;
  std::size_t next = 0;
  while (order.size() < ops.size()) {
    now += 1.0;
    if (next < ops.size() && (s.empty() || !rng.chance(dequeue_prob))) {
      s.enqueue(ops[next++], now);
    } else if (!s.empty()) {
      order.push_back(s.dequeue(now).op_id);
    }
  }
  return order;
}

TEST(PolicyProperties, EdfWithUniformOffsetEqualsFcfs) {
  // Deadlines all arrival + constant: EDF order must equal FCFS order.
  const auto ops = random_stream(400, 11);
  FcfsScheduler fcfs;
  EdfScheduler edf;
  EXPECT_EQ(service_order(fcfs, ops, 0.5, 99), service_order(edf, ops, 0.5, 99));
}

TEST(PolicyProperties, DasNoAgingEqualsDasWhenNothingStarves) {
  // With gentle interleaving nothing waits anywhere near the default 50ms
  // bound, so aging never fires and das == das-noaging exactly.
  const auto ops = random_stream(400, 13);
  const SchedulerPtr das = make_scheduler(Policy::kDas);
  const SchedulerPtr noaging = make_scheduler(Policy::kDasNoAging);
  EXPECT_EQ(service_order(*das, ops, 0.5, 7), service_order(*noaging, ops, 0.5, 7));
}

TEST(PolicyProperties, DasNdEqualsReqSrptOrderOnSharedKeys) {
  // das-nd (no deferral) orders purely by total remaining with arrival
  // tie-breaks — identical to req-srpt when no progress updates arrive.
  const auto ops = random_stream(400, 17);
  const SchedulerPtr nd = make_scheduler(Policy::kDasNoDefer);
  ReqSrptScheduler srpt;
  EXPECT_EQ(service_order(*nd, ops, 0.5, 3), service_order(srpt, ops, 0.5, 3));
}

TEST(PolicyProperties, LargerDeferMarginDefersLess) {
  const auto ops = random_stream(600, 19);
  const auto deferrals = [&](double margin) {
    DasScheduler::Options opt;
    opt.defer_margin = margin;
    DasScheduler s{opt};
    service_order(s, ops, 0.5, 5);
    return s.total_deferrals();
  };
  const auto tight = deferrals(0.5);
  const auto loose = deferrals(4.0);
  EXPECT_GT(tight, 0u);
  EXPECT_LT(loose, tight);
}

TEST(PolicyProperties, EveryPolicyIsWorkConserving) {
  // A scheduler must hand out an op whenever it holds one: drain the whole
  // queue with no enqueues in between and count every op exactly once.
  for (const Policy policy : all_policies()) {
    SCOPED_TRACE(to_string(policy));
    const SchedulerPtr s = make_scheduler(policy);
    const auto ops = random_stream(300, 23);
    SimTime now = 0;
    for (const OpContext& op : ops) s->enqueue(op, now += 1.0);
    std::size_t served = 0;
    while (!s->empty()) {
      s->dequeue(now += 1.0);
      ++served;
    }
    EXPECT_EQ(served, ops.size());
    EXPECT_DOUBLE_EQ(s->backlog_demand_us(), 0.0);
  }
}

TEST(PolicyProperties, PrioritiesNeverAffectWhatOnlyWhen) {
  // All policies serve the same multiset of ops from the same stream.
  const auto ops = random_stream(500, 29);
  std::vector<OperationId> reference;
  for (const Policy policy : all_policies()) {
    SCOPED_TRACE(to_string(policy));
    const SchedulerPtr s = make_scheduler(policy);
    auto order = service_order(*s, ops, 0.5, 31);
    std::sort(order.begin(), order.end());
    if (reference.empty()) {
      reference = order;
    } else {
      EXPECT_EQ(order, reference);
    }
  }
}

TEST(PolicyProperties, ReinDegradesToFcfsWithinOneLevel) {
  // If every request has the same bottleneck, all ops land in level 0 and
  // Rein is plain FCFS.
  ReinSbfScheduler::Options opt;
  ReinSbfScheduler rein{opt};
  FcfsScheduler fcfs;
  std::vector<OpContext> ops;
  for (OperationId i = 0; i < 200; ++i)
    ops.push_back(OpBuilder{i}.bottleneck(4, 100).build());
  EXPECT_EQ(service_order(rein, ops, 0.5, 37), service_order(fcfs, ops, 0.5, 37));
}

}  // namespace
}  // namespace das::sched
