#include "sched/das.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

DasScheduler make_das(DasScheduler::Options opt = {}) { return DasScheduler{opt}; }

ProgressUpdate progress(double critical, SimTime other, double total) {
  ProgressUpdate u;
  u.remaining_critical_us = critical;
  u.est_other_completion = other;
  u.remaining_total_us = total;
  return u;
}

TEST(Das, SrptFirstOnTotalRemaining) {
  auto s = make_das();
  s.enqueue(OpBuilder{1}.request(1).total(300).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).total(50).build(), 0);
  s.enqueue(OpBuilder{3}.request(3).total(120).build(), 0);
  EXPECT_EQ(s.dequeue(1).op_id, 2u);
  EXPECT_EQ(s.dequeue(1).op_id, 3u);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Das, TiesBreakByArrival) {
  auto s = make_das();
  for (OperationId i = 0; i < 8; ++i)
    s.enqueue(OpBuilder{i}.request(i).total(77).build(), static_cast<double>(i));
  for (OperationId i = 0; i < 8; ++i) EXPECT_EQ(s.dequeue(10).op_id, i);
}

TEST(Das, DefersOpBottleneckedFarElsewhere) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  // Backlog ~ 30us; request 9's siblings cannot finish before t=100'000, so
  // this op is parked even though its total remaining is tiny.
  s.enqueue(OpBuilder{1}.request(1).demand(30).total(500).build(), 0);
  s.enqueue(
      OpBuilder{2}.request(9).demand(10).total(20).other_completion(100000).build(),
      0);
  EXPECT_EQ(s.deferred_count(), 1u);
  EXPECT_EQ(s.active_count(), 1u);
  // The non-deferred op is served first despite its larger total remaining.
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Das, WorkConservationServesDeferredWhenAloneInQueue) {
  auto s = make_das();
  s.enqueue(OpBuilder{1}.request(1).demand(10).other_completion(1e9).build(), 0);
  EXPECT_EQ(s.deferred_count(), 1u);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);  // never idle with queued work
  EXPECT_TRUE(s.empty());
}

TEST(Das, DeferredOpWakesWhenWindowCloses) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).demand(10).total(999).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).demand(10).total(5).other_completion(50).build(),
            0);
  EXPECT_EQ(s.deferred_count(), 1u);
  // At t=45 the remaining window (5us) is smaller than the drain time
  // (20us of backlog), so op 2 migrates to the runnable set and, with the
  // smallest total remaining, is served first.
  EXPECT_EQ(s.dequeue(45.0).op_id, 2u);
  EXPECT_EQ(s.deferred_count(), 0u);
}

TEST(Das, NoSiblingsElsewhereNeverDefers) {
  auto s = make_das();
  s.enqueue(OpBuilder{1}.request(1).other_completion(0).build(), 0);
  EXPECT_EQ(s.deferred_count(), 0u);
}

TEST(Das, DeferDisabledByOption) {
  DasScheduler::Options opt;
  opt.defer = false;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).other_completion(1e12).build(), 0);
  EXPECT_EQ(s.deferred_count(), 0u);
  EXPECT_EQ(s.total_deferrals(), 0u);
  EXPECT_EQ(s.name(), "das-nd");
}

TEST(Das, ProgressRekeysActiveOrdering) {
  auto s = make_das();
  s.enqueue(OpBuilder{1}.request(1).total(300).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).total(100).build(), 0);
  s.on_request_progress(1, progress(10.0, 0, 10.0), 1.0);
  EXPECT_EQ(s.dequeue(2).op_id, 1u);
  EXPECT_EQ(s.dequeue(2).op_id, 2u);
}

TEST(Das, ProgressCanWakeDeferredOp) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).demand(10).total(400).build(), 0);
  s.enqueue(
      OpBuilder{2}.request(2).demand(10).total(30).other_completion(100000).build(),
      0);
  EXPECT_EQ(s.deferred_count(), 1u);
  // The faraway sibling finished: no other pending work, wake up.
  s.on_request_progress(2, progress(10.0, 0, 10.0), 1.0);
  EXPECT_EQ(s.deferred_count(), 0u);
  EXPECT_EQ(s.dequeue(2).op_id, 2u);
}

TEST(Das, ProgressCanAlsoDeferActiveOp) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).demand(10).total(400).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).demand(10).total(30).build(), 0);
  EXPECT_EQ(s.deferred_count(), 0u);
  // New information: request 2 is actually blocked far elsewhere.
  s.on_request_progress(2, progress(30.0, 1e9, 30.0), 1.0);
  EXPECT_EQ(s.deferred_count(), 1u);
  EXPECT_EQ(s.dequeue(2).op_id, 1u);
}

TEST(Das, AgingServesOldestPastBound) {
  DasScheduler::Options opt;
  opt.max_wait_us = 100.0;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).total(100000).build(), 0);  // huge, sorts last
  for (OperationId i = 10; i < 15; ++i)
    s.enqueue(OpBuilder{i}.request(i).total(10).build(), 5.0);
  // Within the bound, small requests go first.
  EXPECT_NE(s.dequeue(50.0).op_id, 1u);
  // Past the bound, the starved op is served regardless of priority.
  EXPECT_EQ(s.dequeue(150.0).op_id, 1u);
  EXPECT_EQ(s.aging_promotions(), 1u);
}

TEST(Das, AgingDisabledByInfiniteBound) {
  DasScheduler::Options opt;
  opt.max_wait_us = kTimeInfinity;
  auto s = make_das(opt);
  s.enqueue(OpBuilder{1}.request(1).total(100000).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).total(10).build(), 0);
  EXPECT_EQ(s.dequeue(1e12).op_id, 2u);
  EXPECT_EQ(s.name(), "das-noaging");
}

TEST(Das, SpeedEstimateScalesDrainHorizon) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  s.on_speed_estimate(0.1);  // very slow server: drain horizon 10x longer
  s.enqueue(OpBuilder{1}.request(1).demand(50).total(500).build(), 0);
  // 50us of backlog at speed 0.1 = 500us drain; a 300us-away bottleneck is
  // NOT safe to defer (drain exceeds the window).
  s.enqueue(
      OpBuilder{2}.request(2).demand(10).total(20).other_completion(300).build(), 0);
  EXPECT_EQ(s.deferred_count(), 0u);
}

TEST(Das, NonAdaptiveIgnoresSpeedEstimate) {
  DasScheduler::Options opt;
  opt.adaptive = false;
  auto s = make_das(opt);
  s.on_speed_estimate(0.01);
  EXPECT_DOUBLE_EQ(s.speed_estimate(), 1.0);
  EXPECT_EQ(s.name(), "das-na");
}

TEST(Das, CriticalPathVariantOrdersByCritical) {
  DasScheduler::Options opt;
  opt.primary_key = DasScheduler::PrimaryKey::kCriticalPath;
  auto s = make_das(opt);
  EXPECT_EQ(s.name(), "das-crit");
  // Request 1: large total but small critical path; kCriticalPath prefers it.
  s.enqueue(OpBuilder{1}.request(1).total(500).critical(10).build(), 0);
  s.enqueue(OpBuilder{2}.request(2).total(50).critical(40).build(), 0);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Das, ProgressForUnknownRequestIgnored) {
  auto s = make_das();
  s.enqueue(OpBuilder{1}.request(1).build(), 0);
  s.on_request_progress(999, progress(1, 0, 1), 1.0);
  EXPECT_EQ(s.dequeue(1).op_id, 1u);
}

TEST(Das, BacklogAndCountsStayConsistentUnderChurn) {
  DasScheduler::Options opt;
  opt.defer_margin = 1.0;
  auto s = make_das(opt);
  Rng rng{21};
  double expected_backlog = 0;
  std::size_t expected_size = 0;
  SimTime now = 0;
  for (int step = 0; step < 4000; ++step) {
    now += 1.0;
    if (expected_size == 0 || rng.chance(0.55)) {
      const double demand = rng.uniform(1, 40);
      s.enqueue(OpBuilder{static_cast<OperationId>(step)}
                    .request(rng.next_below(50))
                    .demand(demand)
                    .total(rng.uniform(1, 300))
                    .other_completion(rng.chance(0.3) ? now + rng.uniform(0, 2000) : 0)
                    .build(),
                now);
      expected_backlog += demand;
      ++expected_size;
    } else if (rng.chance(0.8)) {
      const OpContext op = s.dequeue(now);
      expected_backlog -= op.demand_us;
      --expected_size;
    } else {
      s.on_request_progress(rng.next_below(50),
                            progress(rng.uniform(1, 100),
                                     rng.chance(0.5) ? now + rng.uniform(0, 2000) : 0,
                                     rng.uniform(1, 300)),
                            now);
    }
    ASSERT_EQ(s.size(), expected_size);
    ASSERT_EQ(s.active_count() + s.deferred_count(), expected_size);
    if (expected_size > 0) {
      ASSERT_NEAR(s.backlog_demand_us(), expected_backlog, 1e-6);
    }
  }
}

}  // namespace
}  // namespace das::sched
