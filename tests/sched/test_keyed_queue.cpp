#include "sched/keyed_queue.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace das::sched {
namespace {

OpContext op(OperationId id) {
  OpContext o;
  o.op_id = id;
  return o;
}

TEST(KeyedQueue, PopsInKeyOrder) {
  KeyedQueue<double> q;
  q.insert(3.0, op(3));
  q.insert(1.0, op(1));
  q.insert(2.0, op(2));
  EXPECT_EQ(q.pop_min().op_id, 1u);
  EXPECT_EQ(q.pop_min().op_id, 2u);
  EXPECT_EQ(q.pop_min().op_id, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(KeyedQueue, EqualKeysPopInInsertionOrder) {
  KeyedQueue<int> q;
  for (OperationId i = 0; i < 20; ++i) q.insert(7, op(i));
  for (OperationId i = 0; i < 20; ++i) EXPECT_EQ(q.pop_min().op_id, i);
}

TEST(KeyedQueue, MinKeyAndPeek) {
  KeyedQueue<double> q;
  q.insert(5.5, op(42));
  EXPECT_DOUBLE_EQ(q.min_key(), 5.5);
  EXPECT_EQ(q.peek_min().op_id, 42u);
  EXPECT_EQ(q.size(), 1u);  // peek does not remove
}

TEST(KeyedQueue, PopOnEmptyThrows) {
  KeyedQueue<int> q;
  EXPECT_THROW(q.pop_min(), std::logic_error);
  EXPECT_THROW(q.min_key(), std::logic_error);
}

TEST(KeyedQueue, RemoveWithKeyByHandle) {
  KeyedQueue<double> q;
  const auto h1 = q.insert(1.0, op(1));
  q.insert(2.0, op(2));
  EXPECT_TRUE(q.contains(h1));
  const OpContext removed = q.remove_with_key(1.0, h1);
  EXPECT_EQ(removed.op_id, 1u);
  EXPECT_FALSE(q.contains(h1));
  EXPECT_EQ(q.pop_min().op_id, 2u);
}

TEST(KeyedQueue, RemoveWithStaleKeyThrows) {
  KeyedQueue<double> q;
  const auto h = q.insert(1.0, op(1));
  EXPECT_THROW(q.remove_with_key(9.0, h), std::logic_error);
}

TEST(KeyedQueue, RekeyReordersElement) {
  KeyedQueue<double> q;
  const auto h1 = q.insert(1.0, op(1));
  q.insert(2.0, op(2));
  q.rekey(1.0, h1, 10.0);
  EXPECT_EQ(q.pop_min().op_id, 2u);
  EXPECT_EQ(q.pop_min().op_id, 1u);
}

TEST(KeyedQueue, GenericRemoveFallback) {
  KeyedQueue<double> q;
  const auto h = q.insert(3.0, op(9));
  q.insert(1.0, op(1));
  const OpContext removed = q.remove(h);
  EXPECT_EQ(removed.op_id, 9u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(KeyedQueue, AtAccessesByHandle) {
  KeyedQueue<int> q;
  const auto h = q.insert(4, op(77));
  EXPECT_EQ(q.at(h).op_id, 77u);
}

TEST(KeyedQueue, MixedOperationsStress) {
  KeyedQueue<double> q;
  std::vector<std::pair<double, KeyedQueue<double>::Handle>> live;
  Rng rng{123};
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const double key = rng.uniform(0, 100);
      live.emplace_back(key, q.insert(key, op(step)));
    } else if (rng.chance(0.5)) {
      q.pop_min();
      // Find and drop whichever live entry is the current min.
      std::size_t best = 0;
      for (std::size_t i = 1; i < live.size(); ++i)
        if (live[i].first < live[best].first ||
            (live[i].first == live[best].first &&
             live[i].second < live[best].second))
          best = i;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
    } else {
      const std::size_t i = rng.next_below(live.size());
      q.remove_with_key(live[i].first, live[i].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(q.size(), live.size());
  }
}

}  // namespace
}  // namespace das::sched
