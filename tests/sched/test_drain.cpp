// Crash support: drain() empties every policy's queue — runnable and
// deferred alike — returns exactly the ops that were still queued, and
// leaves the scheduler reusable for the server's recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/scheduler.hpp"
#include "sched_test_util.hpp"

namespace das::sched {
namespace {

using testing::OpBuilder;

class DrainTest : public ::testing::TestWithParam<Policy> {};

TEST_P(DrainTest, ReturnsEveryQueuedOpAndLeavesSchedulerReusable) {
  const SchedulerPtr sched = make_scheduler(GetParam());
  // A spread of demands and sibling estimates: DAS parks the far-future ops
  // in its deferred set, so draining must sweep both structures.
  std::set<OperationId> queued;
  for (OperationId id = 0; id < 10; ++id) {
    OpBuilder builder{id};
    builder.demand(5.0 + static_cast<double>(id))
        .total(40.0)
        .deadline(100.0 + static_cast<double>(id));
    if (id % 3 == 0) builder.other_completion(1.0e6);  // deferral candidate
    sched->enqueue(builder.build(), /*now=*/static_cast<double>(id));
    queued.insert(id);
  }
  for (int i = 0; i < 3; ++i) queued.erase(sched->dequeue(/*now=*/20.0).op_id);
  ASSERT_EQ(sched->size(), 7u);

  const std::vector<OpContext> drained = sched->drain(/*now=*/30.0);
  EXPECT_EQ(drained.size(), 7u);
  EXPECT_TRUE(sched->empty());
  EXPECT_EQ(sched->size(), 0u);
  EXPECT_EQ(sched->deferred_size(), 0u);
  EXPECT_DOUBLE_EQ(sched->backlog_demand_us(), 0.0);
  EXPECT_NO_THROW(sched->check_invariants());

  std::set<OperationId> drained_ids;
  for (const OpContext& op : drained) drained_ids.insert(op.op_id);
  EXPECT_EQ(drained_ids, queued);

  // Recovery reuses the same instance: enqueue and serve again, cleanly.
  sched->enqueue(OpBuilder{99}.build(), /*now=*/40.0);
  EXPECT_EQ(sched->size(), 1u);
  EXPECT_EQ(sched->dequeue(/*now=*/41.0).op_id, 99u);
  EXPECT_TRUE(sched->empty());
  EXPECT_NO_THROW(sched->check_invariants());
}

TEST_P(DrainTest, DrainOfEmptySchedulerIsANoop) {
  const SchedulerPtr sched = make_scheduler(GetParam());
  EXPECT_TRUE(sched->drain(/*now=*/0.0).empty());
  EXPECT_TRUE(sched->empty());
  EXPECT_NO_THROW(sched->check_invariants());
}

TEST_P(DrainTest, DrainConsumesNoRandomness) {
  // Two schedulers fed identically must serve identical orders after one of
  // them went through an enqueue/drain cycle first — drain() may not touch
  // the policy's RNG stream (randomized policies would diverge otherwise).
  const SchedulerPtr a = make_scheduler(GetParam());
  const SchedulerPtr b = make_scheduler(GetParam());
  for (OperationId id = 0; id < 6; ++id)
    b->enqueue(OpBuilder{id}.demand(3.0).build(), 0.0);
  b->drain(/*now=*/1.0);
  for (OperationId id = 100; id < 110; ++id) {
    const OpContext op =
        OpBuilder{id}.demand(static_cast<double>(id % 7) + 1.0).build();
    a->enqueue(op, 2.0);
    b->enqueue(op, 2.0);
  }
  while (!a->empty())
    EXPECT_EQ(a->dequeue(50.0).op_id, b->dequeue(50.0).op_id);
  EXPECT_TRUE(b->empty());
}

std::string policy_test_name(const ::testing::TestParamInfo<Policy>& param) {
  std::string name = to_string(param.param);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DrainTest,
                         ::testing::ValuesIn(all_policies()),
                         policy_test_name);

}  // namespace
}  // namespace das::sched
