// Shared builders for scheduler tests.
#pragma once

#include "sched/op_context.hpp"

namespace das::sched::testing {

struct OpBuilder {
  OpContext op;

  explicit OpBuilder(OperationId id) {
    op.op_id = id;
    op.request_id = id;
    op.demand_us = 10.0;
    op.total_demand_us = 10.0;
    op.remaining_critical_us = 10.0;
    op.bottleneck_demand_us = 10.0;
  }
  OpBuilder& request(RequestId r) {
    op.request_id = r;
    return *this;
  }
  OpBuilder& demand(double d) {
    op.demand_us = d;
    return *this;
  }
  OpBuilder& total(double t) {
    op.total_demand_us = t;
    return *this;
  }
  OpBuilder& critical(double c) {
    op.remaining_critical_us = c;
    return *this;
  }
  OpBuilder& other_completion(SimTime t) {
    op.est_other_completion = t;
    return *this;
  }
  OpBuilder& bottleneck(std::uint32_t ops, double demand) {
    op.bottleneck_ops = ops;
    op.bottleneck_demand_us = demand;
    return *this;
  }
  OpBuilder& deadline(SimTime d) {
    op.deadline = d;
    return *this;
  }
  OpContext build() const { return op; }
};

}  // namespace das::sched::testing
