#include "workload/spec.hpp"

#include <gtest/gtest.h>

namespace das::workload {
namespace {

TEST(SpecParse, IntFamilies) {
  EXPECT_DOUBLE_EQ(parse_int_dist("fixed:8")->mean(), 8.0);
  EXPECT_DOUBLE_EQ(parse_int_dist("uniform:1:15")->mean(), 8.0);
  EXPECT_NEAR(parse_int_dist("geometric:0.25:10000")->mean(), 4.0, 0.01);
  EXPECT_DOUBLE_EQ(parse_int_dist("bimodal:2:32:0.2")->mean(), 8.0);
  EXPECT_GT(parse_int_dist("zipf:64:1.1")->mean(), 1.0);
}

TEST(SpecParse, RealFamilies) {
  EXPECT_DOUBLE_EQ(parse_real_dist("constant:385")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("uniform:10:760")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("exponential:385")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("lognormal:385:1.5")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("bimodal:100:4096:0.25")->mean(), 1099.0);
  EXPECT_GT(parse_real_dist("gpareto:1:250:0.35:65536")->mean(), 1.0);
}

TEST(SpecParse, RoundTripDescribe) {
  // describe() is free-form but should at least name the family.
  EXPECT_NE(parse_int_dist("geometric:0.125:128")->describe().find("geometric"),
            std::string::npos);
}

TEST(SpecParse, UnknownFamilyThrows) {
  EXPECT_THROW(parse_int_dist("weibull:1:2"), std::logic_error);
  EXPECT_THROW(parse_real_dist("weibull:1:2"), std::logic_error);
}

TEST(SpecParse, WrongArityThrows) {
  EXPECT_THROW(parse_int_dist("fixed"), std::logic_error);
  EXPECT_THROW(parse_int_dist("fixed:1:2"), std::logic_error);
  EXPECT_THROW(parse_real_dist("gpareto:1:250:0.35"), std::logic_error);
}

TEST(SpecParse, BadNumberThrows) {
  EXPECT_THROW(parse_int_dist("fixed:eight"), std::logic_error);
  EXPECT_THROW(parse_real_dist("constant:3.14x"), std::logic_error);
  EXPECT_THROW(parse_int_dist("fixed:-3"), std::logic_error);
}

TEST(SpecParse, DegenerateValuesRejectedByFactories) {
  EXPECT_THROW(parse_int_dist("fixed:0"), std::logic_error);
  EXPECT_THROW(parse_real_dist("exponential:0"), std::logic_error);
}

}  // namespace
}  // namespace das::workload
