#include "workload/spec.hpp"

#include <gtest/gtest.h>

namespace das::workload {
namespace {

TEST(SpecParse, IntFamilies) {
  EXPECT_DOUBLE_EQ(parse_int_dist("fixed:8")->mean(), 8.0);
  EXPECT_DOUBLE_EQ(parse_int_dist("uniform:1:15")->mean(), 8.0);
  EXPECT_NEAR(parse_int_dist("geometric:0.25:10000")->mean(), 4.0, 0.01);
  EXPECT_DOUBLE_EQ(parse_int_dist("bimodal:2:32:0.2")->mean(), 8.0);
  EXPECT_GT(parse_int_dist("zipf:64:1.1")->mean(), 1.0);
}

TEST(SpecParse, RealFamilies) {
  EXPECT_DOUBLE_EQ(parse_real_dist("constant:385")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("uniform:10:760")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("exponential:385")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("lognormal:385:1.5")->mean(), 385.0);
  EXPECT_DOUBLE_EQ(parse_real_dist("bimodal:100:4096:0.25")->mean(), 1099.0);
  EXPECT_GT(parse_real_dist("gpareto:1:250:0.35:65536")->mean(), 1.0);
}

TEST(SpecParse, RoundTripDescribe) {
  // describe() is free-form but should at least name the family.
  EXPECT_NE(parse_int_dist("geometric:0.125:128")->describe().find("geometric"),
            std::string::npos);
}

TEST(SpecParse, UnknownFamilyThrows) {
  EXPECT_THROW(parse_int_dist("weibull:1:2"), std::logic_error);
  EXPECT_THROW(parse_real_dist("weibull:1:2"), std::logic_error);
}

TEST(SpecParse, WrongArityThrows) {
  EXPECT_THROW(parse_int_dist("fixed"), std::logic_error);
  EXPECT_THROW(parse_int_dist("fixed:1:2"), std::logic_error);
  EXPECT_THROW(parse_real_dist("gpareto:1:250:0.35"), std::logic_error);
}

TEST(SpecParse, BadNumberThrows) {
  EXPECT_THROW(parse_int_dist("fixed:eight"), std::logic_error);
  EXPECT_THROW(parse_real_dist("constant:3.14x"), std::logic_error);
  EXPECT_THROW(parse_int_dist("fixed:-3"), std::logic_error);
}

TEST(SpecParse, DegenerateValuesRejectedByFactories) {
  EXPECT_THROW(parse_int_dist("fixed:0"), std::logic_error);
  EXPECT_THROW(parse_real_dist("exponential:0"), std::logic_error);
}

// Negative grammar grid: every family rejects wrong arity, non-numeric
// arguments, empty arguments, a trailing colon and out-of-range values,
// always with std::logic_error. The grid pins the silent edges a tokenizer
// tends to grow: std::getline drops a trailing empty field ("fixed:3:" must
// NOT parse as fixed:3) and std::stod accepts leading whitespace and
// "nan"/"inf" ("constant: 3" and "constant:nan" must NOT parse).

template <typename Parser>
void expect_rejects(Parser parse, const std::string& spec) {
  EXPECT_THROW(parse(spec), std::logic_error) << "accepted: '" << spec << "'";
}

TEST(SpecParseNegative, IntFamilyGrid) {
  const auto p = [](const std::string& s) { return parse_int_dist(s); };
  // fixed:K
  for (const char* spec : {"fixed", "fixed:1:2", "fixed:one", "fixed:",
                           "fixed:3:", "fixed:3:junk", "fixed:0", "fixed:-3"})
    expect_rejects(p, spec);
  // uniform:LO:HI
  for (const char* spec : {"uniform", "uniform:1", "uniform:1:2:3",
                           "uniform:a:2", "uniform:1:", "uniform:1:2:",
                           "uniform:0:4", "uniform:9:2"})
    expect_rejects(p, spec);
  // geometric:P:CAP
  for (const char* spec :
       {"geometric", "geometric:0.5", "geometric:0.5:8:9", "geometric:p:8",
        "geometric::8", "geometric:0.5:8:", "geometric:0:8", "geometric:1.5:8",
        "geometric:0.5:0"})
    expect_rejects(p, spec);
  // zipf:N:THETA
  for (const char* spec : {"zipf", "zipf:64", "zipf:64:1:2", "zipf:n:1",
                           "zipf:64:", "zipf:64:1:", "zipf:0:1", "zipf:64:-1"})
    expect_rejects(p, spec);
  // bimodal:SMALL:LARGE:P_LARGE
  for (const char* spec :
       {"bimodal", "bimodal:2:32", "bimodal:2:32:0.2:9", "bimodal:2:32:p",
        "bimodal:2::0.2", "bimodal:2:32:0.2:", "bimodal:0:32:0.2",
        "bimodal:32:2:0.2", "bimodal:2:32:1.5"})
    expect_rejects(p, spec);
}

TEST(SpecParseNegative, RealFamilyGrid) {
  const auto p = [](const std::string& s) { return parse_real_dist(s); };
  // constant:V
  for (const char* spec : {"constant", "constant:1:2", "constant:v",
                           "constant:", "constant:1:", "constant:-1"})
    expect_rejects(p, spec);
  // uniform:LO:HI
  for (const char* spec : {"uniform", "uniform:1", "uniform:1:2:3",
                           "uniform:lo:2", "uniform::2", "uniform:1:2:",
                           "uniform:9:2"})
    expect_rejects(p, spec);
  // exponential:MEAN
  for (const char* spec : {"exponential", "exponential:1:2", "exponential:m",
                           "exponential:", "exponential:1:", "exponential:-1"})
    expect_rejects(p, spec);
  // lognormal:MEAN:SIGMA
  for (const char* spec :
       {"lognormal", "lognormal:385", "lognormal:385:1:2", "lognormal:m:1",
        "lognormal:385:", "lognormal:385:1:", "lognormal:0:1",
        "lognormal:385:-1"})
    expect_rejects(p, spec);
  // bimodal:SMALL:LARGE:P_LARGE
  for (const char* spec :
       {"bimodal", "bimodal:100:4096", "bimodal:100:4096:0.25:9",
        "bimodal:100:4096:p", "bimodal:100::0.25", "bimodal:100:4096:0.25:",
        "bimodal:0:4096:0.25", "bimodal:4096:100:0.25", "bimodal:100:4096:2"})
    expect_rejects(p, spec);
  // gpareto:LOC:SCALE:SHAPE:CAP
  for (const char* spec :
       {"gpareto", "gpareto:1:250:0.35", "gpareto:1:250:0.35:65536:9",
        "gpareto:l:250:0.35:65536", "gpareto:1:250:0.35:",
        "gpareto:1:0:0.35:65536", "gpareto:1:250:0:65536",
        "gpareto:65536:250:0.35:1"})
    expect_rejects(p, spec);
}

TEST(SpecParseNegative, WhitespaceAndNonFiniteRejected) {
  const auto real = [](const std::string& s) { return parse_real_dist(s); };
  const auto integer = [](const std::string& s) { return parse_int_dist(s); };
  // std::stod would silently skip the space and accept nan/inf; the parser
  // must not.
  for (const char* spec : {"constant: 3", "constant:3 ", "constant:\t3",
                           "constant:nan", "constant:inf", "constant:-inf",
                           "exponential:NAN", "lognormal:inf:1"})
    expect_rejects(real, spec);
  for (const char* spec : {"fixed: 3", "fixed:3 ", "fixed:nan", "fixed:inf"})
    expect_rejects(integer, spec);
}

TEST(SpecParseNegative, MessagesNameTheOffendingSpec) {
  // Error messages must carry the exact offending spec/argument so a typo in
  // a 10-tenant CLI string is findable.
  const auto message_of = [](const auto& fn) -> std::string {
    try {
      fn();
    } catch (const std::logic_error& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected std::logic_error";
    return "";
  };
  EXPECT_NE(message_of([] { parse_int_dist("fixed:eight"); }).find("'eight'"),
            std::string::npos);
  EXPECT_NE(
      message_of([] { parse_int_dist("fixed:eight"); }).find("fixed:eight"),
      std::string::npos);
  EXPECT_NE(message_of([] { parse_real_dist("constant:"); }).find("empty"),
            std::string::npos);
  EXPECT_NE(message_of([] { parse_real_dist("constant: 3"); }).find("whitespace"),
            std::string::npos);
  EXPECT_NE(message_of([] { parse_real_dist("constant:inf"); }).find("non-finite"),
            std::string::npos);
  EXPECT_NE(message_of([] { parse_real_dist("weibull:1:2"); })
                .find("unknown real distribution family 'weibull'"),
            std::string::npos);
  EXPECT_NE(message_of([] { parse_int_dist("fixed:1:2"); }).find("fixed:K"),
            std::string::npos);
}

}  // namespace
}  // namespace das::workload
