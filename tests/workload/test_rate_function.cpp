#include "workload/rate_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace das::workload {
namespace {

TEST(ConstantRate, IsFlat) {
  auto r = make_constant_rate(3.5);
  EXPECT_DOUBLE_EQ(r->value_at(0), 3.5);
  EXPECT_DOUBLE_EQ(r->value_at(1e9), 3.5);
  EXPECT_DOUBLE_EQ(r->max_value(), 3.5);
}

TEST(SinusoidalRate, OscillatesWithinBounds) {
  auto r = make_sinusoidal_rate(10.0, 4.0, 1000.0);
  for (SimTime t = 0; t < 5000; t += 7) {
    const double v = r->value_at(t);
    ASSERT_GE(v, 6.0 - 1e-9);
    ASSERT_LE(v, 14.0 + 1e-9);
  }
  EXPECT_DOUBLE_EQ(r->max_value(), 14.0);
}

TEST(SinusoidalRate, PeriodIsRespected) {
  auto r = make_sinusoidal_rate(10.0, 4.0, 1000.0);
  EXPECT_NEAR(r->value_at(123.0), r->value_at(1123.0), 1e-9);
  EXPECT_NEAR(r->value_at(250.0), 14.0, 1e-9);  // quarter period = peak
}

TEST(SinusoidalRate, RejectsNegativeExcursion) {
  EXPECT_THROW(make_sinusoidal_rate(2.0, 3.0, 100.0), std::logic_error);
}

TEST(StepRate, SelectsCorrectLevel) {
  auto r = make_step_rate({100.0, 200.0}, {1.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(r->value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(r->value_at(99.9), 1.0);
  EXPECT_DOUBLE_EQ(r->value_at(100.0), 5.0);
  EXPECT_DOUBLE_EQ(r->value_at(150.0), 5.0);
  EXPECT_DOUBLE_EQ(r->value_at(200.0), 2.0);
  EXPECT_DOUBLE_EQ(r->value_at(1e12), 2.0);
  EXPECT_DOUBLE_EQ(r->max_value(), 5.0);
}

TEST(StepRate, RejectsMismatchedSizes) {
  EXPECT_THROW(make_step_rate({1.0}, {1.0}), std::logic_error);
  EXPECT_THROW(make_step_rate({2.0, 1.0}, {1.0, 2.0, 3.0}), std::logic_error);
}

TEST(MarkovTwoState, ValuesAreOnlyHighOrLow) {
  auto r = make_markov_two_state(2.0, 0.5, 1000.0, 500.0, 100000.0, 42);
  for (SimTime t = 0; t < 100000.0; t += 37.0) {
    const double v = r->value_at(t);
    ASSERT_TRUE(v == 2.0 || v == 0.5) << v;
  }
}

TEST(MarkovTwoState, StartsHighAndSwitches) {
  auto r = make_markov_two_state(2.0, 0.5, 500.0, 500.0, 50000.0, 7);
  EXPECT_DOUBLE_EQ(r->value_at(0), 2.0);
  bool saw_low = false;
  for (SimTime t = 0; t < 50000.0; t += 11.0) saw_low |= r->value_at(t) == 0.5;
  EXPECT_TRUE(saw_low);
}

TEST(MarkovTwoState, DeterministicInSeed) {
  auto a = make_markov_two_state(2.0, 0.5, 300.0, 300.0, 20000.0, 9);
  auto b = make_markov_two_state(2.0, 0.5, 300.0, 300.0, 20000.0, 9);
  for (SimTime t = 0; t < 20000.0; t += 13.0)
    ASSERT_DOUBLE_EQ(a->value_at(t), b->value_at(t));
}

TEST(MarkovTwoState, DwellTimesAverageOut) {
  // With equal dwell means the long-run average is the midpoint.
  auto r = make_markov_two_state(2.0, 1.0, 200.0, 200.0, 2e6, 11);
  double acc = 0;
  std::size_t n = 0;
  for (SimTime t = 0; t < 2e6; t += 10.0, ++n) acc += r->value_at(t);
  EXPECT_NEAR(acc / static_cast<double>(n), 1.5, 0.08);
}

TEST(MarkovTwoState, MaxValueIsHigh) {
  auto r = make_markov_two_state(3.0, 1.0, 100.0, 100.0, 1000.0, 1);
  EXPECT_DOUBLE_EQ(r->max_value(), 3.0);
}

}  // namespace
}  // namespace das::workload
