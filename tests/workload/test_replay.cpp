#include "workload/replay.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

namespace das::workload {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path};
  out << content;
}

ReplayTrace sample_trace() {
  ReplayTrace trace;
  trace.records.push_back({0.0, ReplayOp::kRead, 7, 512});
  trace.records.push_back({12.5, ReplayOp::kWrite, 1042, 64});
  trace.records.push_back({12.5, ReplayOp::kRead, 3, 0});
  trace.records.push_back({99.25, ReplayOp::kWrite, 7, 4096});
  return trace;
}

void expect_equal(const ReplayTrace& a, const ReplayTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].timestamp_us, b.records[i].timestamp_us) << i;
    EXPECT_EQ(a.records[i].op, b.records[i].op) << i;
    EXPECT_EQ(a.records[i].key, b.records[i].key) << i;
    EXPECT_EQ(a.records[i].size_bytes, b.records[i].size_bytes) << i;
  }
}

TEST(ReplayTrace, CsvRoundTrip) {
  const std::string path = temp_path("round_trip.csv");
  const ReplayTrace trace = sample_trace();
  trace.save(path);
  expect_equal(trace, ReplayTrace::load(path));
}

TEST(ReplayTrace, JsonlRoundTrip) {
  const std::string path = temp_path("round_trip.jsonl");
  const ReplayTrace trace = sample_trace();
  trace.save(path);
  expect_equal(trace, ReplayTrace::load(path));
}

TEST(ReplayTrace, FormatsAgree) {
  // The same trace through either serialisation loads back identically, so a
  // CSV recording can be converted to JSONL without changing the experiment.
  const std::string csv = temp_path("agree.csv");
  const std::string jsonl = temp_path("agree.jsonl");
  const ReplayTrace trace = sample_trace();
  trace.save(csv);
  trace.save(jsonl);
  expect_equal(ReplayTrace::load(csv), ReplayTrace::load(jsonl));
}

TEST(ReplayTrace, MaxKey) {
  EXPECT_EQ(sample_trace().max_key(), 1042u);
  EXPECT_EQ(ReplayTrace{}.max_key(), 0u);
  EXPECT_TRUE(ReplayTrace{}.empty());
}

TEST(ReplayTrace, LoadRejectsUnknownExtension) {
  const std::string path = temp_path("trace.txt");
  write_file(path, "timestamp_us,op,key,size_bytes\n");
  EXPECT_THROW(ReplayTrace::load(path), std::logic_error);
}

TEST(ReplayTrace, LoadRejectsMissingFile) {
  EXPECT_THROW(ReplayTrace::load(temp_path("does_not_exist.csv")),
               std::logic_error);
}

TEST(ReplayTrace, CsvRejectsBadHeader) {
  const std::string path = temp_path("bad_header.csv");
  write_file(path, "time,op,key,size\n1,read,2,3\n");
  EXPECT_THROW(ReplayTrace::load(path), std::logic_error);
}

TEST(ReplayTrace, MalformedLinesThrowWithLineNumber) {
  const std::string header = "timestamp_us,op,key,size_bytes\n";
  struct Case {
    const char* label;
    const char* row;
  };
  const Case cases[] = {
      {"wrong field count", "1,read,2\n"},
      {"extra field", "1,read,2,3,4\n"},
      {"unknown op", "1,scan,2,3\n"},
      {"bad timestamp", "abc,read,2,3\n"},
      {"negative timestamp", "-1,read,2,3\n"},
      {"non-integer key", "1,read,2.5,3\n"},
      {"non-integer size", "1,read,2,3.7\n"},
      {"negative key", "1,read,-2,3\n"},
      {"empty field", "1,read,,3\n"},
  };
  for (const Case& c : cases) {
    const std::string path = temp_path("malformed.csv");
    write_file(path, header + std::string("0,read,1,1\n") + c.row);
    try {
      ReplayTrace::load(path);
      ADD_FAILURE() << "accepted " << c.label << ": " << c.row;
    } catch (const std::logic_error& e) {
      // The offending row is line 3 (header + one good row before it).
      EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
          << c.label << " message: " << e.what();
    }
  }
}

TEST(ReplayTrace, RejectsDecreasingTimestamps) {
  const std::string path = temp_path("decreasing.csv");
  write_file(path,
             "timestamp_us,op,key,size_bytes\n5,read,1,1\n4,read,2,1\n");
  try {
    ReplayTrace::load(path);
    ADD_FAILURE() << "accepted a time-travelling trace";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos) << e.what();
  }
  // Equal timestamps are fine (bursts).
  const std::string ties = temp_path("ties.csv");
  write_file(ties, "timestamp_us,op,key,size_bytes\n5,read,1,1\n5,read,2,1\n");
  EXPECT_EQ(ReplayTrace::load(ties).size(), 2u);
}

TEST(ReplayTrace, JsonlMalformedLinesThrow) {
  const char* rows[] = {
      "not json",
      "{\"timestamp_us\": 1, \"op\": \"read\", \"key\": 2}",
      "{\"timestamp_us\": 1, \"op\": \"scan\", \"key\": 2, \"size_bytes\": 3}",
      "{\"timestamp_us\": -1, \"op\": \"read\", \"key\": 2, \"size_bytes\": 3}",
  };
  for (const char* row : rows) {
    const std::string path = temp_path("malformed.jsonl");
    write_file(path, std::string(row) + "\n");
    EXPECT_THROW(ReplayTrace::load(path), std::logic_error) << row;
  }
}

}  // namespace
}  // namespace das::workload
