#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace das::workload {
namespace {

TEST(PoissonArrivals, MeanInterarrivalMatchesRate) {
  auto a = make_poisson_arrivals(0.1);  // every 10us on average
  Rng rng{1};
  SimTime t = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) t = a->next_arrival_after(t, rng);
  EXPECT_NEAR(t / n, 10.0, 0.15);
  EXPECT_DOUBLE_EQ(a->mean_rate(), 0.1);
}

TEST(PoissonArrivals, StrictlyIncreasing) {
  auto a = make_poisson_arrivals(1.0);
  Rng rng{2};
  SimTime t = 0;
  for (int i = 0; i < 10000; ++i) {
    const SimTime next = a->next_arrival_after(t, rng);
    ASSERT_GT(next, t);
    t = next;
  }
}

TEST(DeterministicArrivals, EvenlySpaced) {
  auto a = make_deterministic_arrivals(0.25);
  Rng rng{3};
  EXPECT_DOUBLE_EQ(a->next_arrival_after(0, rng), 4.0);
  EXPECT_DOUBLE_EQ(a->next_arrival_after(4.0, rng), 8.0);
}

TEST(ModulatedPoisson, ConstantModulationMatchesPlainPoisson) {
  auto a = make_modulated_poisson(0.05, make_constant_rate(1.0), 1e6);
  Rng rng{4};
  SimTime t = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) t = a->next_arrival_after(t, rng);
  EXPECT_NEAR(t / n, 20.0, 0.4);
  EXPECT_NEAR(a->mean_rate(), 0.05, 1e-6);
}

TEST(ModulatedPoisson, SinusoidDensityTracksRate) {
  // Count arrivals near the peak vs near the trough of the sinusoid.
  const Duration period = 100000.0;
  auto a = make_modulated_poisson(0.02, make_sinusoidal_rate(1.0, 0.8, period), 1e6);
  Rng rng{5};
  SimTime t = 0;
  int peak = 0, trough = 0;
  while (t < 50 * period) {
    t = a->next_arrival_after(t, rng);
    const double phase = std::fmod(t, period) / period;
    if (phase > 0.15 && phase < 0.35) ++peak;       // around sin max
    if (phase > 0.65 && phase < 0.85) ++trough;     // around sin min
  }
  EXPECT_GT(peak, trough * 3);  // 1.8 vs 0.2 instantaneous rate => ~9x
}

TEST(ModulatedPoisson, MeanRateAveragesModulation) {
  auto a = make_modulated_poisson(0.1, make_step_rate({500000.0}, {2.0, 1.0}), 1e6);
  EXPECT_NEAR(a->mean_rate(), 0.1 * 1.5, 0.01);
}

TEST(ArrivalProcesses, RejectNonPositiveRate) {
  EXPECT_THROW(make_poisson_arrivals(0.0), std::logic_error);
  EXPECT_THROW(make_deterministic_arrivals(-1.0), std::logic_error);
}

}  // namespace
}  // namespace das::workload
