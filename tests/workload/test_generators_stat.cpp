// Statistical validation of the workload generators: empirical frequencies
// against analytic laws with explicit tolerances, plus the seeded
// bit-identity guarantees the golden tests lean on. Every test uses a fixed
// seed, so failures are reproducible, never flaky.
#include "workload/multiget.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/spec.hpp"

namespace das::workload {
namespace {

MultigetGenerator::Config base_config(std::uint64_t universe, double theta) {
  MultigetGenerator::Config cfg;
  cfg.key_universe = universe;
  cfg.zipf_theta = theta;
  cfg.fanout = parse_int_dist("fixed:1");
  return cfg;
}

/// rank_of[key - key_base] via the key_for_rank bijection.
std::vector<std::uint64_t> invert_ranks(const MultigetGenerator& gen) {
  std::vector<std::uint64_t> rank_of(gen.key_universe());
  for (std::uint64_t r = 0; r < gen.key_universe(); ++r) {
    rank_of[gen.key_for_rank(r) - gen.key_base()] = r;
  }
  return rank_of;
}

TEST(GeneratorStat, ZipfFrequenciesMatchAnalyticPmf) {
  const MultigetGenerator gen{base_config(512, 0.9)};
  const auto rank_of = invert_ranks(gen);
  Rng rng{0xABCDEF};
  const int n = 200000;
  std::vector<int> hits(512, 0);
  for (int i = 0; i < n; ++i) ++hits[rank_of[gen.sample_key(rng)]];
  // Head ranks individually (standard error ~7e-4 at this sample size)...
  for (std::uint64_t rank = 0; rank < 5; ++rank) {
    EXPECT_NEAR(static_cast<double>(hits[rank]) / n, gen.rank_pmf(rank), 0.005)
        << "rank " << rank;
  }
  // ...and the head in aggregate: total variation over the first 64 ranks.
  double tv = 0.0;
  for (std::uint64_t rank = 0; rank < 64; ++rank) {
    tv += std::abs(static_cast<double>(hits[rank]) / n - gen.rank_pmf(rank));
  }
  EXPECT_LT(tv / 2, 0.01);
}

TEST(GeneratorStat, ThetaZeroIsUniform) {
  const std::uint64_t universe = 64;
  const MultigetGenerator gen{base_config(universe, 0.0)};
  Rng rng{0xFEED};
  const int n = 128000;
  std::vector<int> hits(universe, 0);
  for (int i = 0; i < n; ++i) ++hits[gen.sample_key(rng)];
  for (std::uint64_t key = 0; key < universe; ++key) {
    EXPECT_NEAR(static_cast<double>(hits[key]) / n, 1.0 / universe, 0.004)
        << "key " << key;
  }
}

TEST(GeneratorStat, FanoutMatchesDistributionAndKeysAreDistinct) {
  auto cfg = base_config(4096, 0.99);
  cfg.fanout = parse_int_dist("uniform:1:15");
  const MultigetGenerator gen{std::move(cfg)};
  Rng rng{0x5EED};
  const int n = 20000;
  std::size_t total_keys = 0;
  for (int i = 0; i < n; ++i) {
    MultigetSpec spec = gen.generate(rng);
    total_keys += spec.keys.size();
    ASSERT_GE(spec.keys.size(), 1u);
    ASSERT_LE(spec.keys.size(), 15u);
    std::sort(spec.keys.begin(), spec.keys.end());
    EXPECT_EQ(std::adjacent_find(spec.keys.begin(), spec.keys.end()),
              spec.keys.end())
        << "duplicate key in one multiget, request " << i;
  }
  EXPECT_NEAR(static_cast<double>(total_keys) / n, 8.0, 0.1);
}

TEST(GeneratorStat, KeyBaseConfinesKeysToSlice) {
  auto cfg = base_config(100, 0.9);
  cfg.key_base = 5000;
  cfg.fanout = parse_int_dist("uniform:1:4");
  const MultigetGenerator gen{std::move(cfg)};
  Rng rng{11};
  for (int i = 0; i < 5000; ++i) {
    for (const KeyId key : gen.generate(rng).keys) {
      EXPECT_GE(key, 5000u);
      EXPECT_LT(key, 5100u);
    }
  }
}

TEST(GeneratorStat, SeededBitIdentity) {
  auto make = [] {
    auto cfg = base_config(2048, 0.95);
    cfg.fanout = parse_int_dist("uniform:1:8");
    cfg.drift.rotate_period_us = 1000;
    cfg.drift.rotate_stride = 13;
    cfg.drift.storms.push_back({500.0, 1500.0, 4, 0.5, 7});
    return MultigetGenerator{std::move(cfg)};
  };
  const MultigetGenerator a = make();
  const MultigetGenerator b = make();
  Rng rng_a{42};
  Rng rng_b{42};
  for (int i = 0; i < 2000; ++i) {
    const SimTime now = static_cast<SimTime>(i);
    EXPECT_EQ(a.generate(rng_a, now).keys, b.generate(rng_b, now).keys) << i;
  }
  // Storm hot sets come from the storm seed, not the sampling RNG.
  EXPECT_EQ(a.storm_keys(0), b.storm_keys(0));
}

TEST(GeneratorStat, RankPermutationSeedChangesHotKeyPlacement) {
  auto cfg_a = base_config(2048, 0.99);
  auto cfg_b = base_config(2048, 0.99);
  cfg_b.rank_permutation_seed = cfg_a.rank_permutation_seed + 1;
  const MultigetGenerator a{std::move(cfg_a)};
  const MultigetGenerator b{std::move(cfg_b)};
  // Per-tenant permutation seeds exist so tenants' hot keys land on
  // different servers; the hottest rank must move.
  EXPECT_NE(a.key_for_rank(0), b.key_for_rank(0));
}

TEST(GeneratorStat, StationaryGeneratorIgnoresSimTime) {
  const MultigetGenerator gen{base_config(1024, 0.9)};
  Rng at_zero{99};
  Rng at_later{99};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.sample_key(at_zero, 0), gen.sample_key(at_later, 123456.0));
  }
}

TEST(GeneratorStat, RotationShiftsRanksByStridePerEpoch) {
  auto cfg = base_config(512, 0.9);
  cfg.drift.rotate_period_us = 1000;
  cfg.drift.rotate_stride = 13;
  const MultigetGenerator gen{std::move(cfg)};

  EXPECT_EQ(gen.epoch_at(0), 0u);
  EXPECT_EQ(gen.epoch_at(999.0), 0u);
  EXPECT_EQ(gen.epoch_at(1000.0), 1u);
  EXPECT_EQ(gen.epoch_at(3500.0), 3u);
  EXPECT_EQ(gen.effective_rank(0, 2500.0), 26u);
  EXPECT_EQ(gen.key_for_rank_at(0, 2500.0), gen.key_for_rank(26));

  // Empirically: the modal sampled key tracks the rotated rank-0 key.
  const auto modal_key = [&gen](SimTime now) {
    Rng rng{0xD81F7};
    std::vector<int> hits(gen.key_universe(), 0);
    for (int i = 0; i < 50000; ++i) ++hits[gen.sample_key(rng, now)];
    return static_cast<KeyId>(
        std::max_element(hits.begin(), hits.end()) - hits.begin());
  };
  EXPECT_EQ(modal_key(0), gen.key_for_rank(0));
  EXPECT_EQ(modal_key(1500.0), gen.key_for_rank(13));
  EXPECT_NE(gen.key_for_rank(0), gen.key_for_rank(13));
}

TEST(GeneratorStat, StormRaisesHotSetShareOnlyInsideWindow) {
  auto cfg = base_config(4096, 0.9);
  cfg.drift.storms.push_back({1000.0, 2000.0, 4, 0.6, 7});
  const MultigetGenerator gen{std::move(cfg)};

  EXPECT_EQ(gen.active_storm(500.0), MultigetGenerator::kNoStorm);
  EXPECT_EQ(gen.active_storm(1000.0), 0u);
  EXPECT_EQ(gen.active_storm(1999.0), 0u);
  EXPECT_EQ(gen.active_storm(2000.0), MultigetGenerator::kNoStorm);

  const std::vector<KeyId>& hot = gen.storm_keys(0);
  ASSERT_EQ(hot.size(), 4u);
  const auto hot_fraction = [&](SimTime now) {
    Rng rng{0xB01D};
    int in_set = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      const KeyId key = gen.sample_key(rng, now);
      if (std::find(hot.begin(), hot.end(), key) != hot.end()) ++in_set;
    }
    return static_cast<double>(in_set) / n;
  };
  const double inside = hot_fraction(1500.0);
  const double outside = hot_fraction(500.0);
  // Inside: share plus whatever stationary mass the 4 keys carry anyway.
  EXPECT_GT(inside, 0.57);
  EXPECT_LT(inside, 0.75);
  // Outside the window the generator is purely stationary again.
  EXPECT_LT(outside, 0.15);
  EXPECT_GT(inside - outside, 0.4);
}

}  // namespace
}  // namespace das::workload
