#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace das::workload {
namespace {

TEST(Registry, SingleTenantComposesClauses) {
  const TenantSpec t =
      parse_tenant("ycsb-b+zipf:1.1+share:3+name:heavy+drift:5000:37");
  EXPECT_EQ(t.name, "heavy");
  EXPECT_DOUBLE_EQ(t.share, 3.0);
  EXPECT_DOUBLE_EQ(t.zipf_theta, 1.1);
  EXPECT_TRUE(t.has_mix);
  EXPECT_DOUBLE_EQ(t.mix.read, 0.95);
  EXPECT_DOUBLE_EQ(t.drift.rotate_period_us, 5000.0);
  EXPECT_EQ(t.drift.rotate_stride, 37u);
  EXPECT_TRUE(t.drift.enabled());
  EXPECT_TRUE(t.replay_path.empty());
}

TEST(Registry, LegacyIsANoOp) {
  const TenantSpec t = parse_tenant("legacy");
  EXPECT_TRUE(t.name.empty());
  EXPECT_DOUBLE_EQ(t.share, 1.0);
  EXPECT_LT(t.zipf_theta, 0.0);  // inherit cluster theta
  EXPECT_FALSE(t.has_mix);
  EXPECT_TRUE(t.fanout_spec.empty());
  EXPECT_TRUE(t.value_size_spec.empty());
  EXPECT_FALSE(t.drift.enabled());
}

TEST(Registry, FanoutAndSizeKeepColonsInDistSpec) {
  // The clause splitter must not eat the ':' inside the nested dist spec.
  const TenantSpec t = parse_tenant("fanout:uniform:1:15+size:lognormal:385:1.5");
  EXPECT_EQ(t.fanout_spec, "uniform:1:15");
  EXPECT_EQ(t.value_size_spec, "lognormal:385:1.5");
}

TEST(Registry, StormClausesAccumulate) {
  const TenantSpec t =
      parse_tenant("storm:1000:2000:4:0.6:7+storm:5000:9000:2:0.3:9");
  ASSERT_EQ(t.drift.storms.size(), 2u);
  EXPECT_DOUBLE_EQ(t.drift.storms[0].start, 1000.0);
  EXPECT_DOUBLE_EQ(t.drift.storms[0].end, 2000.0);
  EXPECT_EQ(t.drift.storms[0].keys, 4u);
  EXPECT_DOUBLE_EQ(t.drift.storms[0].share, 0.6);
  EXPECT_EQ(t.drift.storms[0].seed, 7u);
  EXPECT_EQ(t.drift.storms[1].keys, 2u);
  EXPECT_TRUE(t.drift.enabled());
}

TEST(Registry, MultiTenantFillsDefaultNames) {
  const auto tenants = parse_tenants("ycsb-c;ycsb-a+name:writer;ycsb-b");
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants[0].name, "t0");
  EXPECT_EQ(tenants[1].name, "writer");
  EXPECT_EQ(tenants[2].name, "t2");
}

TEST(Registry, ReplayTenantParses) {
  const TenantSpec t = parse_tenant("replay:/tmp/trace.csv+share:2+name:cam");
  EXPECT_EQ(t.replay_path, "/tmp/trace.csv");
  EXPECT_DOUBLE_EQ(t.share, 2.0);
  EXPECT_EQ(t.name, "cam");
}

TEST(Registry, DescribeRoundTripsTheInterestingFields) {
  const std::string d =
      parse_tenant("ycsb-a+zipf:1.2+name:hot+drift:5000:3").describe();
  EXPECT_NE(d.find("hot"), std::string::npos);
  EXPECT_NE(d.find("1.2"), std::string::npos);
  EXPECT_NE(d.find("rotate=5000"), std::string::npos);
}

TEST(Registry, FactoryKnowsBuiltinsAndAcceptsNewFamilies) {
  WorkloadFactory& factory = WorkloadFactory::instance();
  for (const char* family : {"legacy", "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-f",
                             "mix", "zipf", "fanout", "size", "share", "name",
                             "drift", "storm", "replay"}) {
    EXPECT_TRUE(factory.has(family)) << family;
  }
  // workload_factory extension point: a new family composes like built-ins.
  factory.register_workload(
      "test-double-share",
      [](const std::vector<std::string>& args, TenantSpec& spec) {
        if (!args.empty()) {
          throw std::logic_error("test-double-share takes no arguments");
        }
        spec.share *= 2;
      });
  EXPECT_TRUE(factory.has("test-double-share"));
  EXPECT_DOUBLE_EQ(parse_tenant("share:3+test-double-share").share, 6.0);
}

// --- negative grammar ------------------------------------------------------

void expect_message(const std::string& spec, const std::string& needle) {
  try {
    if (spec.find(';') != std::string::npos) {
      (void)parse_tenants(spec);
    } else {
      (void)parse_tenant(spec);
    }
    ADD_FAILURE() << "accepted: '" << spec << "'";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << spec << " message: " << e.what();
  }
}

TEST(RegistryNegative, UnknownFamilyListsKnownFamilies) {
  try {
    (void)parse_tenant("ycsb-z");
    ADD_FAILURE() << "accepted ycsb-z";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown workload family 'ycsb-z'"), std::string::npos)
        << msg;
    // The message must enumerate the registry so a typo is self-correcting.
    for (const char* family : {"ycsb-a", "zipf", "drift", "replay"}) {
      EXPECT_NE(msg.find(family), std::string::npos) << family << ": " << msg;
    }
  }
}

TEST(RegistryNegative, EmptyAndMalformedSpecs) {
  EXPECT_THROW(parse_tenant(""), std::logic_error);
  EXPECT_THROW(parse_tenants(""), std::logic_error);
  expect_message("ycsb-b+", "empty clause");
  expect_message("+ycsb-b", "empty clause");
  expect_message("ycsb-b;;ycsb-a", "empty tenant");
  expect_message("ycsb-b;", "empty tenant");
}

TEST(RegistryNegative, ClauseArgumentValidation) {
  // Wrong arity.
  expect_message("ycsb-a:1", "takes no arguments");
  expect_message("legacy:x", "takes no arguments");
  expect_message("zipf", "zipf:THETA");
  expect_message("zipf:1:2", "zipf:THETA");
  expect_message("share", "share:WEIGHT");
  expect_message("name", "name:LABEL");
  expect_message("drift:5000", "drift:PERIOD_US:STRIDE");
  expect_message("storm:1:2:3:0.5", "storm:START_US:END_US:KEYS:SHARE:SEED");
  expect_message("mix:0.5:0.5", "mix:READ:UPDATE:RMW");
  expect_message("fanout", "fanout:<int dist spec>");
  expect_message("size", "size:<real dist spec>");
  expect_message("replay", "replay:PATH");
  // Bad numbers.
  expect_message("zipf:abc", "bad theta 'abc'");
  expect_message("zipf:", "empty theta");
  expect_message("zipf:-0.5", "theta must be >= 0");
  expect_message("share:0", "must be > 0");
  expect_message("share:-1", "must be > 0");
  expect_message("share:nan", "non-finite");
  expect_message("name:", "empty label");
  expect_message("drift:0:3", "period must be > 0");
  expect_message("drift:5000:0", "stride must be a positive integer");
  expect_message("drift:5000:1.5", "stride must be a positive integer");
  // Storm window sanity.
  expect_message("storm:2000:1000:4:0.5:7", "0 <= start < end");
  expect_message("storm:1000:1000:4:0.5:7", "0 <= start < end");
  expect_message("storm:1000:2000:0:0.5:7", "keys must be a positive integer");
  expect_message("storm:1000:2000:4:1.5:7", "share must be in [0,1]");
  expect_message("storm:1000:2000:4:0.5:-1", "seed must be a non-negative");
  // Nested dist specs validate eagerly at parse time.
  expect_message("fanout:weibull:1:2", "unknown int distribution family");
  expect_message("size:constant:nan", "non-finite");
}

TEST(RegistryNegative, ReplayExcludesSyntheticClauses) {
  for (const char* spec :
       {"replay:/tmp/t.csv+ycsb-a", "replay:/tmp/t.csv+zipf:0.9",
        "replay:/tmp/t.csv+fanout:fixed:8", "replay:/tmp/t.csv+drift:5000:3",
        "ycsb-a+replay:/tmp/t.csv"}) {
    expect_message(spec, "combines replay with synthetic clauses");
  }
  // share/name/size are still fine on a replay tenant.
  EXPECT_NO_THROW(parse_tenant("replay:/tmp/t.jsonl+share:2+name:cam"));
}

TEST(RegistryNegative, DuplicateTenantNames) {
  expect_message("ycsb-a+name:x;ycsb-b+name:x", "duplicate tenant name 'x'");
  // A default-assigned name colliding with an explicit one is also a dup.
  expect_message("ycsb-a;ycsb-b+name:t0", "duplicate tenant name 't0'");
}

}  // namespace
}  // namespace das::workload
