#include "workload/mix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace das::workload {
namespace {

TEST(OpMix, NamedYcsbMixes) {
  const OpMix a = parse_mix("ycsb-a");
  EXPECT_DOUBLE_EQ(a.read, 0.5);
  EXPECT_DOUBLE_EQ(a.update, 0.5);
  EXPECT_DOUBLE_EQ(a.rmw, 0.0);

  const OpMix b = parse_mix("ycsb-b");
  EXPECT_DOUBLE_EQ(b.read, 0.95);
  EXPECT_DOUBLE_EQ(b.update, 0.05);

  const OpMix c = parse_mix("ycsb-c");
  EXPECT_DOUBLE_EQ(c.read, 1.0);
  EXPECT_TRUE(c.read_only());

  const OpMix f = parse_mix("ycsb-f");
  EXPECT_DOUBLE_EQ(f.read, 0.5);
  EXPECT_DOUBLE_EQ(f.update, 0.0);
  EXPECT_DOUBLE_EQ(f.rmw, 0.5);
}

TEST(OpMix, ExplicitFractions) {
  const OpMix m = parse_mix("mix:0.7:0.2:0.1");
  EXPECT_DOUBLE_EQ(m.read, 0.7);
  EXPECT_DOUBLE_EQ(m.update, 0.2);
  EXPECT_DOUBLE_EQ(m.rmw, 0.1);
  EXPECT_FALSE(m.read_only());
}

TEST(OpMix, ReadOnlySamplingConsumesNoRandomness) {
  // Bit-identity guarantee: a read-only mix must not disturb the client's
  // RNG stream relative to the pre-mix workload path.
  const OpMix mix = parse_mix("ycsb-c");
  Rng rng{7};
  Rng untouched{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(mix.sample(rng), OpKind::kRead);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(OpMix, WriteMixConsumesExactlyOneDrawPerSample) {
  const OpMix mix = parse_mix("ycsb-a");
  Rng rng{7};
  Rng mirror{7};
  for (int i = 0; i < 100; ++i) {
    (void)mix.sample(rng);
    mirror.next_double();
  }
  EXPECT_EQ(rng.next_u64(), mirror.next_u64());
}

TEST(OpMix, SampleProportionsMatchFractions) {
  const OpMix mix = parse_mix("mix:0.6:0.3:0.1");
  Rng rng{42};
  int reads = 0, updates = 0, rmws = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (mix.sample(rng)) {
      case OpKind::kRead: ++reads; break;
      case OpKind::kUpdate: ++updates; break;
      case OpKind::kRmw: ++rmws; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(updates) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(rmws) / n, 0.1, 0.01);
}

TEST(OpMix, DescribeNamesFractions) {
  EXPECT_NE(parse_mix("ycsb-b").describe().find("0.95"), std::string::npos);
}

TEST(OpMixNegative, MalformedSpecsThrow) {
  for (const char* spec :
       {"ycsb-z", "mix", "mix:0.5:0.5", "mix:0.5:0.5:0:0", "mix:a:0.5:0.5",
        "mix::0.5:0.5", "mix:0.5:0.5:0:", "mix:0.6:0.6:0.6", "mix:1.5:-0.5:0",
        "mix:-0.1:1.1:0", "mix:0.5:0.25:0.2", "mix: 0.5:0.5:0", "mix:nan:0.5:0.5"}) {
    EXPECT_THROW(parse_mix(spec), std::logic_error) << "accepted: " << spec;
  }
}

}  // namespace
}  // namespace das::workload
