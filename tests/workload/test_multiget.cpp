#include "workload/multiget.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

namespace das::workload {
namespace {

MultigetGenerator make_gen(std::uint64_t universe, double theta, IntDistPtr fanout) {
  MultigetGenerator::Config cfg;
  cfg.key_universe = universe;
  cfg.zipf_theta = theta;
  cfg.fanout = std::move(fanout);
  return MultigetGenerator{cfg};
}

TEST(MultigetGenerator, KeysAreDistinct) {
  auto gen = make_gen(1000, 0.99, make_fixed_int(16));
  Rng rng{1};
  for (int i = 0; i < 2000; ++i) {
    const auto spec = gen.generate(rng);
    ASSERT_EQ(spec.keys.size(), 16u);
    std::set<KeyId> uniq(spec.keys.begin(), spec.keys.end());
    ASSERT_EQ(uniq.size(), 16u);
  }
}

TEST(MultigetGenerator, KeysWithinUniverse) {
  auto gen = make_gen(100, 0.5, make_uniform_int(1, 8));
  Rng rng{2};
  for (int i = 0; i < 5000; ++i) {
    for (const KeyId k : gen.generate(rng).keys) ASSERT_LT(k, 100u);
  }
}

TEST(MultigetGenerator, FanoutClampedToUniverse) {
  auto gen = make_gen(5, 0.0, make_fixed_int(50));
  Rng rng{3};
  const auto spec = gen.generate(rng);
  EXPECT_EQ(spec.keys.size(), 5u);  // all keys of the universe, distinct
  std::set<KeyId> uniq(spec.keys.begin(), spec.keys.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(MultigetGenerator, HeavySkewStillTerminatesWithDistinctKeys) {
  auto gen = make_gen(64, 1.5, make_fixed_int(32));
  Rng rng{4};
  for (int i = 0; i < 500; ++i) {
    const auto spec = gen.generate(rng);
    std::set<KeyId> uniq(spec.keys.begin(), spec.keys.end());
    ASSERT_EQ(uniq.size(), 32u);
  }
}

TEST(MultigetGenerator, SkewIsObservable) {
  auto gen = make_gen(10000, 0.99, make_fixed_int(1));
  Rng rng{5};
  std::map<KeyId, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[gen.generate(rng).keys[0]];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Hottest key should be far above the uniform expectation of 10.
  EXPECT_GT(max_count, 1000);
}

TEST(MultigetGenerator, ThetaZeroIsRoughlyUniform) {
  auto gen = make_gen(100, 0.0, make_fixed_int(1));
  Rng rng{6};
  std::map<KeyId, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.generate(rng).keys[0]];
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [k, c] : counts) EXPECT_NEAR(c, n / 100, n / 100 * 0.2);
}

TEST(MultigetGenerator, RankToKeyIsABijection) {
  auto gen = make_gen(10000, 0.9, make_fixed_int(1));
  std::set<KeyId> keys;
  for (std::uint64_t r = 0; r < 10000; ++r) keys.insert(gen.key_for_rank(r));
  EXPECT_EQ(keys.size(), 10000u);
  EXPECT_EQ(*keys.rbegin(), 9999u);
}

TEST(MultigetGenerator, RankPermutationScattersHotKeys) {
  auto gen = make_gen(10000, 0.9, make_fixed_int(1));
  // The top-100 ranks should not cluster in a narrow key-id band.
  KeyId lo = 10000, hi = 0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    lo = std::min(lo, gen.key_for_rank(r));
    hi = std::max(hi, gen.key_for_rank(r));
  }
  EXPECT_LT(lo, 2000u);
  EXPECT_GT(hi, 8000u);
}

TEST(MultigetGenerator, MeanFanoutDelegates) {
  auto gen = make_gen(100, 0.0, make_fixed_int(7));
  EXPECT_DOUBLE_EQ(gen.mean_fanout(), 7.0);
}

TEST(Trace, GenerateProducesSortedArrivals) {
  auto gen = make_gen(1000, 0.9, make_geometric(0.25, 64));
  Rng rng{7};
  const Trace trace = Trace::generate(gen, 0.01, 5000, rng);
  ASSERT_EQ(trace.requests.size(), 5000u);
  for (std::size_t i = 1; i < trace.requests.size(); ++i)
    ASSERT_GT(trace.requests[i].arrival, trace.requests[i - 1].arrival);
  EXPECT_GT(trace.total_operations(), 5000u);
}

TEST(Trace, SaveLoadRoundTrip) {
  auto gen = make_gen(500, 0.8, make_uniform_int(1, 12));
  Rng rng{8};
  const Trace trace = Trace::generate(gen, 0.05, 300, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "das_trace_test.txt").string();
  trace.save(path);
  const Trace loaded = Trace::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_DOUBLE_EQ(loaded.requests[i].arrival, trace.requests[i].arrival);
    ASSERT_EQ(loaded.requests[i].keys, trace.requests[i].keys);
  }
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(Trace::load("/nonexistent/path/trace.txt"), std::logic_error);
}

TEST(MultigetGenerator, DeterministicForSameRngSeed) {
  auto gen = make_gen(2000, 0.9, make_geometric(0.2, 32));
  Rng a{9}, b{9};
  for (int i = 0; i < 200; ++i) ASSERT_EQ(gen.generate(a).keys, gen.generate(b).keys);
}

}  // namespace
}  // namespace das::workload
