// Unit tests for the LSM service-time model (src/store/lsm_model.*): the
// flush/compaction/stall state machine, size-dependent read pricing, the
// interference control arm, crash semantics, and seeded bit-reproducibility
// — all by driving the provider interface directly, no server required.
#include "store/lsm_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace das::store {
namespace {

/// Small memtable and low stall threshold so a handful of writes exercises
/// every transition; jitter off by default so window math is exact.
LsmOptions tiny_options() {
  LsmOptions o;
  o.per_op_overhead_us = 10.0;
  o.service_bytes_per_us = 50.0;
  o.memtable_bytes = 1024.0;
  o.entry_overhead_bytes = 0.0;
  o.l0_compaction_trigger = 2;
  o.compaction_bytes_per_us = 16.0;
  o.compaction_jitter = 0.0;
  o.compaction_capacity_factor = 0.5;
  o.stall_debt_bytes = 2048.0;
  o.stall_write_multiplier = 4.0;
  return o;
}

OpCostQuery write_op(KeyId key, Bytes bytes) {
  OpCostQuery q;
  q.key = key;
  q.is_write = true;
  q.size_bytes = bytes;
  return q;
}

OpCostQuery read_op(KeyId key, Bytes bytes) {
  OpCostQuery q;
  q.key = key;
  q.size_bytes = bytes;
  return q;
}

/// Completes `n` writes of `bytes` each at distinct keys starting at `first`,
/// advancing time by 1us per op.
SimTime pump_writes(LsmModel& m, std::size_t n, Bytes bytes, SimTime at,
                    KeyId first = 1000) {
  for (std::size_t i = 0; i < n; ++i) {
    m.on_op_complete(write_op(first + static_cast<KeyId>(i), bytes), at);
    at += 1.0;
  }
  return at;
}

TEST(LsmOptionsTest, ValidateNamesTheOffendingField) {
  LsmOptions o;
  EXPECT_NO_THROW(o.validate());
  o.compaction_capacity_factor = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = LsmOptions{};
  o.stall_write_multiplier = 0.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = LsmOptions{};
  o.compaction_jitter = 1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  EXPECT_THROW(LsmModel(o, 1), std::invalid_argument);  // ctor validates too
}

TEST(LsmModelTest, MemtableHitIsCheaperThanLevelWalk) {
  LsmModel m{tiny_options(), 1};
  // Populate the memtable with key 7, then flush it out via filler writes.
  m.on_op_complete(write_op(7, 100), 0.0);
  const double hit = m.base_cost_us(read_op(7, 100), 1.0);
  // A miss (key never written) walks the levels of the same state.
  const double miss = m.base_cost_us(read_op(8, 100), 1.0);
  EXPECT_LT(hit, miss);
  // hit = overhead + bytes/rate * memtable_read_factor.
  EXPECT_DOUBLE_EQ(hit, 10.0 + (100.0 / 50.0) * 0.25);
  const StoreModelStats s = m.stats();
  EXPECT_EQ(s.memtable_hits, 1u);
  EXPECT_EQ(s.level_reads, 1u);
}

TEST(LsmModelTest, ReadCostIsMonotoneInSizeAndDepth) {
  LsmModel m{tiny_options(), 1};
  const double small = m.base_cost_us(read_op(1, 64), 0.0);
  const double large = m.base_cost_us(read_op(1, 4096), 0.0);
  EXPECT_LT(small, large);
  // Flush several runs (keep debt below the compaction end so runs linger):
  // more runs to search => costlier walk at the same size.
  LsmOptions deep = tiny_options();
  deep.l0_compaction_trigger = 100;  // never compacts in this test
  LsmModel d{deep, 1};
  const double shallow = d.base_cost_us(read_op(1, 4096), 0.0);
  pump_writes(d, 8, 512, 0.0);  // 4 flushes -> 4 L0 runs
  EXPECT_EQ(d.l0_runs(), 4u);
  const double deeper = d.base_cost_us(read_op(1, 4096), 10.0);
  EXPECT_GT(deeper, shallow);
}

TEST(LsmModelTest, FlushAccumulatesRunsAndTriggersCompaction) {
  LsmModel m{tiny_options(), 1};
  SimTime t = pump_writes(m, 2, 512, 0.0);  // fills 1024 -> first flush
  EXPECT_EQ(m.stats().flushes, 1u);
  EXPECT_EQ(m.l0_runs(), 1u);
  EXPECT_FALSE(m.compacting());  // below the 2-run trigger
  pump_writes(m, 2, 512, t);  // second flush -> trigger
  EXPECT_EQ(m.stats().flushes, 2u);
  EXPECT_TRUE(m.compacting());
  EXPECT_DOUBLE_EQ(m.compaction_debt_bytes(), 2048.0);
  m.check_invariants();
}

TEST(LsmModelTest, CompactionWindowDipsCapacityThenCloses) {
  LsmModel m{tiny_options(), 1};
  const SimTime t = pump_writes(m, 4, 512, 0.0);
  ASSERT_TRUE(m.compacting());
  EXPECT_DOUBLE_EQ(m.capacity_factor(t), 0.5);
  // Jitter is off: the window is exactly debt/rate = 2048/16 = 128us, anchored
  // at the second flush (time 3).
  EXPECT_DOUBLE_EQ(m.capacity_factor(3.0 + 127.9), 0.5);
  EXPECT_DOUBLE_EQ(m.capacity_factor(3.0 + 128.0), 1.0);
  EXPECT_FALSE(m.compacting());
  EXPECT_DOUBLE_EQ(m.compaction_debt_bytes(), 0.0);
  EXPECT_EQ(m.l0_runs(), 0u);
  const StoreModelStats s = m.stats();
  EXPECT_EQ(s.compactions, 1u);
  EXPECT_DOUBLE_EQ(s.compaction_busy_us, 128.0);
  EXPECT_DOUBLE_EQ(s.bytes_compacted, 2048.0);
  m.check_invariants();
}

TEST(LsmModelTest, WriteStallAmplifiesAndClearsWithHysteresis) {
  LsmOptions o = tiny_options();
  o.stall_debt_bytes = 2048.0;
  o.compaction_bytes_per_us = 1.0;  // slow drain: stall observable for long
  LsmModel m{o, 1};
  SimTime t = pump_writes(m, 4, 512, 0.0);  // 2 flushes, debt 2048 >= stall
  ASSERT_TRUE(m.stalled());
  EXPECT_EQ(m.stats().write_stalls, 1u);
  const double stalled_cost = m.base_cost_us(write_op(50, 100), t);
  EXPECT_DOUBLE_EQ(stalled_cost, (10.0 + 100.0 / 50.0) * 4.0);
  EXPECT_EQ(m.stats().stalled_write_ops, 1u);
  // The single window drains ALL outstanding debt when it closes, dropping
  // debt to 0 < threshold/2 — the stall exits with the window.
  m.capacity_factor(t + 5000.0);
  EXPECT_FALSE(m.stalled());
  EXPECT_GT(m.stats().write_stall_us, 0.0);
  const double normal_cost = m.base_cost_us(write_op(51, 100), t + 5000.0);
  EXPECT_DOUBLE_EQ(normal_cost, 10.0 + 100.0 / 50.0);
  m.check_invariants();
}

TEST(LsmModelTest, InterferenceOffDisablesDipsAndStallsOnly) {
  LsmOptions o = tiny_options();
  o.interference = false;
  LsmModel m{o, 1};
  const SimTime t = pump_writes(m, 4, 512, 0.0);
  // The state machine still runs (flushes, runs, debt)...
  EXPECT_EQ(m.stats().flushes, 2u);
  EXPECT_TRUE(m.compacting());
  // ...but neither the capacity dip nor the write stall applies.
  EXPECT_DOUBLE_EQ(m.capacity_factor(t), 1.0);
  EXPECT_FALSE(m.stalled());
  EXPECT_DOUBLE_EQ(m.base_cost_us(write_op(50, 100), t), 10.0 + 100.0 / 50.0);
  // Reads remain size/depth-dependent — the arm isolates interference, not
  // the storage cost structure.
  m.on_op_complete(write_op(77, 100), t);  // resident in the memtable
  EXPECT_LT(m.base_cost_us(read_op(77, 100), t + 1.0),
            m.base_cost_us(read_op(999, 100), t + 1.0));  // hit < walk
  m.check_invariants();
}

TEST(LsmModelTest, CrashLosesMemtableAndInterruptsCompaction) {
  LsmModel m{tiny_options(), 1};
  SimTime t = pump_writes(m, 4, 512, 0.0);
  m.on_op_complete(write_op(99, 100), t);  // partial memtable
  ASSERT_TRUE(m.compacting());
  ASSERT_GT(m.memtable_fill_bytes(), 0.0);
  m.on_crash(t + 1.0);
  EXPECT_DOUBLE_EQ(m.memtable_fill_bytes(), 0.0);
  EXPECT_FALSE(m.compacting());
  // Debt survives: the post-recovery instance must compact those runs again.
  EXPECT_DOUBLE_EQ(m.compaction_debt_bytes(), 2048.0);
  EXPECT_EQ(m.l0_runs(), 2u);
  // The dead key is no longer a memtable hit.
  m.base_cost_us(read_op(99, 100), t + 2.0);
  EXPECT_EQ(m.stats().level_reads, 1u);
  m.check_invariants();
  // Post-crash writes restart the machine cleanly.
  pump_writes(m, 2, 512, t + 3.0);
  EXPECT_TRUE(m.compacting());
  m.check_invariants();
}

TEST(LsmModelTest, FinalizeClosesOpenWindowsIdempotently) {
  LsmOptions o = tiny_options();
  o.compaction_bytes_per_us = 1.0;
  LsmModel m{o, 1};
  const SimTime t = pump_writes(m, 4, 512, 0.0);
  ASSERT_TRUE(m.compacting());
  ASSERT_TRUE(m.stalled());
  m.finalize(t + 100.0);
  const StoreModelStats once = m.stats();
  EXPECT_GT(once.compaction_busy_us, 0.0);
  EXPECT_GT(once.write_stall_us, 0.0);
  m.finalize(t + 100.0);  // same instant: nothing more to account
  EXPECT_DOUBLE_EQ(m.stats().compaction_busy_us, once.compaction_busy_us);
  EXPECT_DOUBLE_EQ(m.stats().write_stall_us, once.write_stall_us);
  m.check_invariants();
}

TEST(LsmModelTest, TransitionsRecordedOnlyWhenEnabled) {
  LsmModel quiet{tiny_options(), 1};
  pump_writes(quiet, 4, 512, 0.0);
  std::vector<StoreTransition> out;
  quiet.drain_transitions(out);
  EXPECT_TRUE(out.empty());  // recording off by default

  LsmModel traced{tiny_options(), 1};
  traced.set_record_transitions(true);
  pump_writes(traced, 4, 512, 0.0);
  traced.drain_transitions(out);
  // flush, flush+compaction-start at least; order is append order.
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out[0].kind, StoreTransitionKind::kFlush);
  bool saw_start = false;
  for (const StoreTransition& tr : out)
    saw_start |= tr.kind == StoreTransitionKind::kCompactionStart;
  EXPECT_TRUE(saw_start);
  traced.drain_transitions(out);  // drained: buffer now empty
  ASSERT_GE(out.size(), 3u);
}

TEST(LsmModelTest, SameSeedSameOpsBitIdentical) {
  LsmOptions o = tiny_options();
  o.compaction_jitter = 0.25;  // exercise the only random path
  LsmModel a{o, 42};
  LsmModel b{o, 42};
  LsmModel c{o, 43};
  // 50us between writes keeps compaction windows isolated (window <= 160us,
  // flush pairs 400us apart), so jittered durations are observable rather
  // than merging into one permanently-open window.
  SimTime t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const OpCostQuery w = write_op(static_cast<KeyId>(i), 300);
    const OpCostQuery r = read_op(static_cast<KeyId>(i / 2), 300);
    EXPECT_EQ(a.base_cost_us(w, t), b.base_cost_us(w, t));
    c.base_cost_us(w, t);
    a.on_op_complete(w, t + 1.0);
    b.on_op_complete(w, t + 1.0);
    c.on_op_complete(w, t + 1.0);
    EXPECT_EQ(a.base_cost_us(r, t + 2.0), b.base_cost_us(r, t + 2.0));
    EXPECT_EQ(a.capacity_factor(t + 2.0), b.capacity_factor(t + 2.0));
    t += 50.0;
  }
  a.finalize(t);
  b.finalize(t);
  c.finalize(t);
  EXPECT_EQ(a.stats().flushes, b.stats().flushes);
  EXPECT_EQ(a.stats().compactions, b.stats().compactions);
  EXPECT_EQ(a.compaction_debt_bytes(), b.compaction_debt_bytes());
  EXPECT_EQ(a.stats().compaction_busy_us, b.stats().compaction_busy_us);
  // A different jitter seed must actually shift the window durations.
  EXPECT_NE(a.stats().compaction_busy_us, c.stats().compaction_busy_us);
  a.check_invariants();
  c.check_invariants();
}

}  // namespace
}  // namespace das::store
