#include "store/log_engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/rng.hpp"

namespace das::store {
namespace {

LogStructuredEngine small_engine(std::size_t segment_capacity = 8,
                                 std::size_t compact_at = 3) {
  LogStructuredEngine::Options opt;
  opt.segment_capacity = segment_capacity;
  opt.compact_at_segments = compact_at;
  return LogStructuredEngine{opt};
}

TEST(LogEngine, PutGetRoundTrip) {
  auto eng = small_engine();
  eng.put(7, 128, 100.0);
  const auto rec = eng.get(7, 200.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->size, 128u);
  EXPECT_EQ(rec->version, 1u);
  EXPECT_DOUBLE_EQ(rec->created_at, 100.0);
}

TEST(LogEngine, OverwriteBumpsVersionKeepsCreatedAt) {
  auto eng = small_engine();
  eng.put(7, 100, 1.0);
  EXPECT_EQ(eng.put(7, 300, 2.0), 2u);
  const auto rec = eng.get(7, 3.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->size, 300u);
  EXPECT_EQ(rec->version, 2u);
  EXPECT_DOUBLE_EQ(rec->created_at, 1.0);
  EXPECT_DOUBLE_EQ(rec->updated_at, 2.0);
  EXPECT_EQ(eng.key_count(), 1u);
}

TEST(LogEngine, EraseHidesKeyAndWritesTombstone) {
  auto eng = small_engine();
  eng.put(1, 10, 0);
  EXPECT_TRUE(eng.erase(1));
  EXPECT_FALSE(eng.get(1, 1).has_value());
  EXPECT_EQ(eng.peek(1), nullptr);
  EXPECT_FALSE(eng.erase(1));
  EXPECT_EQ(eng.key_count(), 0u);
  EXPECT_GE(eng.total_entries(), 2u);  // value + tombstone in the log
}

TEST(LogEngine, SegmentsSealAtCapacity) {
  auto eng = small_engine(8, 100);  // high compaction threshold
  for (KeyId k = 0; k < 20; ++k) eng.put(k, 10, 0);
  EXPECT_EQ(eng.log_stats().segments_sealed, 2u);  // 20 entries / 8
  // All keys remain readable across the seal boundaries.
  for (KeyId k = 0; k < 20; ++k) ASSERT_TRUE(eng.get(k, 1).has_value()) << k;
}

TEST(LogEngine, CompactionDropsDeadVersions) {
  auto eng = small_engine(8, 3);
  // Overwrite one key many times: most entries become dead.
  for (int i = 0; i < 100; ++i) eng.put(1, 10 + i, i);
  EXPECT_GT(eng.log_stats().compactions, 0u);
  EXPECT_GT(eng.log_stats().entries_dropped, 50u);
  // The newest version survives.
  const auto rec = eng.get(1, 1000);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->size, 109u);
  EXPECT_EQ(rec->version, 100u);
  // Space amplification is bounded after compaction.
  EXPECT_LT(eng.total_entries(), 40u);
}

TEST(LogEngine, CompactionPreservesEveryLiveKey) {
  auto eng = small_engine(16, 3);
  Rng rng{5};
  std::map<KeyId, Bytes> expect;
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = rng.next_below(200);
    const Bytes size = 1 + rng.next_below(1000);
    eng.put(key, size, i);
    expect[key] = size;
  }
  EXPECT_GT(eng.log_stats().compactions, 0u);
  EXPECT_EQ(eng.key_count(), expect.size());
  for (const auto& [key, size] : expect) {
    const auto rec = eng.get(key, 1e6);
    ASSERT_TRUE(rec.has_value()) << key;
    EXPECT_EQ(rec->size, size) << key;
  }
}

TEST(LogEngine, RecoveryRebuildsIdenticalState) {
  auto eng = small_engine(16, 4);
  Rng rng{6};
  std::map<KeyId, std::optional<ValueRecord>> snapshot;
  for (int i = 0; i < 3000; ++i) {
    const KeyId key = rng.next_below(150);
    if (rng.chance(0.8)) {
      eng.put(key, 1 + rng.next_below(500), i);
    } else {
      eng.erase(key);
    }
  }
  for (KeyId key = 0; key < 150; ++key) {
    const ValueRecord* rec = eng.peek(key);
    snapshot[key] = rec ? std::optional<ValueRecord>{*rec} : std::nullopt;
  }
  const std::size_t live_before = eng.key_count();

  eng.recover();  // drop + replay the log

  EXPECT_EQ(eng.key_count(), live_before);
  for (KeyId key = 0; key < 150; ++key) {
    const ValueRecord* rec = eng.peek(key);
    ASSERT_EQ(rec != nullptr, snapshot[key].has_value()) << key;
    if (rec) {
      EXPECT_EQ(rec->size, snapshot[key]->size) << key;
      EXPECT_EQ(rec->version, snapshot[key]->version) << key;
    }
  }
}

TEST(LogEngine, FuzzAgainstHashEngine) {
  auto log = small_engine(32, 4);
  StorageEngine hash;
  Rng rng{7};
  for (int step = 0; step < 30000; ++step) {
    const KeyId key = rng.next_below(500);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const Bytes size = 1 + rng.next_below(2000);
        const auto t = static_cast<SimTime>(step);
        ASSERT_EQ(log.put(key, size, t), hash.put(key, size, t));
        break;
      }
      case 2: {
        const auto a = log.get(key, step);
        const auto b = hash.get(key, step);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          ASSERT_EQ(a->size, b->size);
          ASSERT_EQ(a->version, b->version);
        }
        break;
      }
      case 3:
        ASSERT_EQ(log.erase(key), hash.erase(key));
        break;
    }
    ASSERT_EQ(log.key_count(), hash.key_count());
    ASSERT_EQ(log.stats().resident_bytes, hash.stats().resident_bytes);
  }
}

TEST(LogEngine, WriteAmplificationIsObservable) {
  auto eng = small_engine(8, 2);
  for (int i = 0; i < 500; ++i) eng.put(i % 10, 10, i);
  const auto& ls = eng.log_stats();
  EXPECT_GT(ls.compactions, 0u);
  EXPECT_GT(ls.entries_rewritten, 0u);
  // 10 live keys; everything else written was eventually dead.
  EXPECT_GT(ls.entries_dropped, 300u);
}

}  // namespace
}  // namespace das::store
