#include "store/storage_engine.hpp"

#include <gtest/gtest.h>

namespace das::store {
namespace {

TEST(StorageEngine, GetMissingIsMiss) {
  StorageEngine eng;
  EXPECT_FALSE(eng.get(1, 0).has_value());
  EXPECT_EQ(eng.stats().gets, 1u);
  EXPECT_EQ(eng.stats().hits, 0u);
}

TEST(StorageEngine, PutThenGetHit) {
  StorageEngine eng;
  eng.put(7, 128, 100.0);
  const auto rec = eng.get(7, 200.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->size, 128u);
  EXPECT_EQ(rec->version, 1u);
  EXPECT_DOUBLE_EQ(rec->created_at, 100.0);
  EXPECT_EQ(eng.stats().hits, 1u);
}

TEST(StorageEngine, PutBumpsVersionAndUpdatesSize) {
  StorageEngine eng;
  EXPECT_EQ(eng.put(7, 100, 1.0), 1u);
  EXPECT_EQ(eng.put(7, 300, 2.0), 2u);
  const auto rec = eng.get(7, 3.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->size, 300u);
  EXPECT_EQ(rec->version, 2u);
  EXPECT_DOUBLE_EQ(rec->created_at, 1.0);
  EXPECT_DOUBLE_EQ(rec->updated_at, 2.0);
}

TEST(StorageEngine, ResidentBytesTracksPutsAndDeletes) {
  StorageEngine eng;
  eng.put(1, 100, 0);
  eng.put(2, 200, 0);
  EXPECT_EQ(eng.stats().resident_bytes, 300u);
  eng.put(1, 50, 1);  // shrink
  EXPECT_EQ(eng.stats().resident_bytes, 250u);
  EXPECT_TRUE(eng.erase(2));
  EXPECT_EQ(eng.stats().resident_bytes, 50u);
}

TEST(StorageEngine, EraseMissingReturnsFalse) {
  StorageEngine eng;
  EXPECT_FALSE(eng.erase(99));
  EXPECT_EQ(eng.stats().deletes, 0u);
}

TEST(StorageEngine, CountersDistinguishInsertsFromUpdates) {
  StorageEngine eng;
  eng.put(1, 10, 0);
  eng.put(1, 20, 0);
  eng.put(2, 10, 0);
  EXPECT_EQ(eng.stats().puts, 3u);
  EXPECT_EQ(eng.stats().inserts, 2u);
  EXPECT_EQ(eng.stats().updates, 1u);
  EXPECT_EQ(eng.key_count(), 2u);
}

TEST(StorageEngine, PeekDoesNotPerturbStats) {
  StorageEngine eng;
  eng.put(1, 10, 0);
  EXPECT_NE(eng.peek(1), nullptr);
  EXPECT_EQ(eng.peek(2), nullptr);
  EXPECT_EQ(eng.stats().gets, 0u);
}

TEST(StorageEngine, ManyKeys) {
  StorageEngine eng;
  for (KeyId k = 0; k < 20000; ++k) eng.put(k, k % 1000 + 1, 0);
  EXPECT_EQ(eng.key_count(), 20000u);
  for (KeyId k = 0; k < 20000; k += 97) {
    const auto rec = eng.get(k, 1);
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->size, k % 1000 + 1);
  }
}

}  // namespace
}  // namespace das::store
