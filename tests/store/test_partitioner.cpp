#include "store/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace das::store {
namespace {

TEST(ModuloPartitioner, CoversAllServers) {
  auto p = make_modulo_partitioner(16);
  std::set<ServerId> seen;
  for (KeyId k = 0; k < 10000; ++k) seen.insert(p->server_for(k));
  EXPECT_EQ(seen.size(), 16u);
}

TEST(ModuloPartitioner, IsDeterministic) {
  auto p = make_modulo_partitioner(8);
  for (KeyId k = 0; k < 100; ++k) EXPECT_EQ(p->server_for(k), p->server_for(k));
}

TEST(ModuloPartitioner, BalancedForSequentialKeys) {
  auto p = make_modulo_partitioner(10);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (KeyId k = 0; k < n; ++k) ++counts[p->server_for(k)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.05);
}

TEST(ModuloPartitioner, ReplicasDistinctAndPrimaryFirst) {
  auto p = make_modulo_partitioner(8);
  for (KeyId k = 0; k < 200; ++k) {
    const auto reps = p->replicas_for(k, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], p->server_for(k));
    std::set<ServerId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(ModuloPartitioner, ReplicaCountClampedToCluster) {
  auto p = make_modulo_partitioner(3);
  EXPECT_EQ(p->replicas_for(1, 10).size(), 3u);
}

TEST(ConsistentHashRing, CoversAllServers) {
  ConsistentHashRing ring{32, 128};
  std::set<ServerId> seen;
  for (KeyId k = 0; k < 100000; ++k) seen.insert(ring.server_for(k));
  EXPECT_EQ(seen.size(), 32u);
}

TEST(ConsistentHashRing, OwnershipSumsToOne) {
  ConsistentHashRing ring{16, 64};
  const auto shares = ring.ownership();
  double total = 0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ConsistentHashRing, ManyVnodesBoundImbalance) {
  ConsistentHashRing ring{32, 256};
  const auto shares = ring.ownership();
  const double avg = 1.0 / 32;
  for (double s : shares) {
    EXPECT_GT(s, avg * 0.5);
    EXPECT_LT(s, avg * 1.6);
  }
}

TEST(ConsistentHashRing, FewVnodesAreMoreImbalanced) {
  ConsistentHashRing few{32, 2}, many{32, 512};
  const auto spread = [](const ConsistentHashRing& r) {
    const auto s = r.ownership();
    return *std::max_element(s.begin(), s.end()) -
           *std::min_element(s.begin(), s.end());
  };
  EXPECT_GT(spread(few), spread(many));
}

TEST(ConsistentHashRing, MinimalDisruptionOnGrowth) {
  ConsistentHashRing before{32, 128};
  const ConsistentHashRing after = before.with_servers(33);
  const int n = 50000;
  int moved = 0;
  for (KeyId k = 0; k < n; ++k)
    if (before.server_for(k) != after.server_for(k)) ++moved;
  // Ideal churn is 1/33 of keys; allow 2x slack for vnode variance.
  EXPECT_LT(static_cast<double>(moved) / n, 2.0 / 33.0);
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashRing, ReplicasDistinct) {
  ConsistentHashRing ring{8, 64};
  for (KeyId k = 0; k < 500; ++k) {
    const auto reps = ring.replicas_for(k, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], ring.server_for(k));
    std::set<ServerId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(ConsistentHashRing, SingleServerOwnsEverything) {
  ConsistentHashRing ring{1, 16};
  for (KeyId k = 0; k < 100; ++k) EXPECT_EQ(ring.server_for(k), 0u);
  EXPECT_NEAR(ring.ownership()[0], 1.0, 1e-9);
}

TEST(ConsistentHashRing, SeedChangesLayout) {
  ConsistentHashRing a{16, 64, 1}, b{16, 64, 2};
  int differs = 0;
  for (KeyId k = 0; k < 1000; ++k)
    if (a.server_for(k) != b.server_for(k)) ++differs;
  EXPECT_GT(differs, 500);
}

}  // namespace
}  // namespace das::store
