#include "store/hash_table.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"

namespace das::store {
namespace {

TEST(RobinHoodMap, EmptyOnConstruction) {
  RobinHoodMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.contains(42));
}

TEST(RobinHoodMap, PutAndFind) {
  RobinHoodMap<int> map;
  EXPECT_TRUE(map.put(1, 100));
  EXPECT_TRUE(map.put(2, 200));
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), 100);
  EXPECT_EQ(*map.find(2), 200);
  EXPECT_EQ(map.size(), 2u);
}

TEST(RobinHoodMap, PutOverwritesAndReportsFalse) {
  RobinHoodMap<int> map;
  EXPECT_TRUE(map.put(1, 100));
  EXPECT_FALSE(map.put(1, 999));
  EXPECT_EQ(*map.find(1), 999);
  EXPECT_EQ(map.size(), 1u);
}

TEST(RobinHoodMap, EraseReturnsValue) {
  RobinHoodMap<std::string> map;
  map.put(5, "hello");
  const auto removed = map.erase(5);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, "hello");
  EXPECT_EQ(map.find(5), nullptr);
  EXPECT_EQ(map.size(), 0u);
}

TEST(RobinHoodMap, EraseMissingReturnsNullopt) {
  RobinHoodMap<int> map;
  map.put(1, 1);
  EXPECT_FALSE(map.erase(2).has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(RobinHoodMap, GrowsPastInitialCapacity) {
  RobinHoodMap<int> map{16};
  for (std::uint64_t k = 0; k < 1000; ++k) map.put(k, static_cast<int>(k * 3));
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_GE(map.capacity(), 1024u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), static_cast<int>(k * 3));
  }
}

TEST(RobinHoodMap, LoadFactorStaysBounded) {
  RobinHoodMap<int> map;
  for (std::uint64_t k = 0; k < 10000; ++k) map.put(k, 1);
  EXPECT_LE(map.load_factor(), 0.875 + 1e-9);
}

TEST(RobinHoodMap, ProbeDistancesStayShort) {
  RobinHoodMap<int> map;
  for (std::uint64_t k = 0; k < 50000; ++k) map.put(k * 2654435761u, 1);
  // Robin-Hood with load <= 7/8 keeps the worst probe chain modest.
  EXPECT_LT(map.max_probe_distance(), 64u);
}

TEST(RobinHoodMap, ForEachVisitsEverything) {
  RobinHoodMap<int> map;
  for (std::uint64_t k = 0; k < 500; ++k) map.put(k, static_cast<int>(k));
  std::uint64_t key_sum = 0;
  std::size_t visits = 0;
  map.for_each([&](std::uint64_t k, int) {
    key_sum += k;
    ++visits;
  });
  EXPECT_EQ(visits, 500u);
  EXPECT_EQ(key_sum, 499ull * 500 / 2);
}

TEST(RobinHoodMap, FuzzAgainstStdUnorderedMap) {
  RobinHoodMap<int> map;
  std::unordered_map<std::uint64_t, int> ref;
  Rng rng{0xF00D};
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = rng.next_below(5000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // put
        const int value = static_cast<int>(rng.next_below(1 << 20));
        const bool was_new = map.put(key, value);
        const bool ref_new = ref.insert_or_assign(key, value).second;
        ASSERT_EQ(was_new, ref_new);
        break;
      }
      case 2: {  // find
        const int* found = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
      case 3: {  // erase
        const auto removed = map.erase(key);
        const auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (removed) {
          ASSERT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Final full cross-check.
  map.for_each([&](std::uint64_t k, int v) {
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(it->second, v);
  });
}

TEST(MixKey, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix_key(42), mix_key(42));
  // Sequential keys should land in different low-bit buckets mostly.
  int same_bucket = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if ((mix_key(k) & 0xFF) == (mix_key(k + 1) & 0xFF)) ++same_bucket;
  }
  EXPECT_LT(same_bucket, 20);
}

}  // namespace
}  // namespace das::store
