#include "NoWallclockCheck.h"

using namespace clang::ast_matchers;

namespace clang::tidy::das {

void NoWallclockCheck::registerMatchers(MatchFinder* Finder) {
  // Any written mention of a banned clock/entropy type — variable types,
  // template arguments, `using` aliases, nested-name qualifiers in
  // `steady_clock::now()`. hasAnyName sees through inline namespaces, so
  // libstdc++'s std::chrono::_V2::steady_clock matches too; the desugared
  // form catches mentions hidden behind typedefs.
  const auto banned_record = cxxRecordDecl(
      hasAnyName("::std::chrono::system_clock", "::std::chrono::steady_clock",
                 "::std::chrono::high_resolution_clock",
                 "::std::random_device"));
  Finder->addMatcher(
      typeLoc(loc(qualType(anyOf(
                  hasDeclaration(banned_record),
                  hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(banned_record)))))))
          .bind("type"),
      this);
  // Calls to wall-clock / libc-RNG free functions (their names alone are
  // harmless; taking the address to call later is not a pattern this
  // codebase uses).
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::std::time", "::clock", "::std::clock",
                   "::gettimeofday", "::clock_gettime", "::timespec_get",
                   "::rand", "::std::rand", "::srand", "::std::srand",
                   "::random", "::srandom", "::rand_r", "::drand48"))))
          .bind("call"),
      this);
}

void NoWallclockCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* type = Result.Nodes.getNodeAs<TypeLoc>("type")) {
    const SourceLocation loc = type->getBeginLoc();
    if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
    diag(loc,
         "wall-clock/entropy type %0 is banned in simulation code; use "
         "sim::Simulator::now() for time and a seeded das::Rng for "
         "randomness (host-perf measurement may NOLINT with a reason)")
        << type->getType().getUnqualifiedType().getAsString();
    return;
  }
  if (const auto* call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    const SourceLocation loc = call->getBeginLoc();
    if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
    diag(loc,
         "call to wall-clock/ambient-RNG function %0 is banned in "
         "simulation code; use sim::Simulator::now() / das::Rng instead")
        << call->getDirectCallee();
  }
}

}  // namespace clang::tidy::das
