// Shared helpers for the das- clang-tidy checks.
//
// The checks are built as an out-of-tree plugin (see CMakeLists.txt in this
// directory) loaded into the host clang-tidy with `--load`. They therefore
// stick to the stable subset of the ClangTidyCheck / ASTMatchers API that is
// identical across LLVM 14..19: no isPureVirtual()/isPure() (renamed in 18),
// no AST matcher added after 14, qualified hasAnyName everywhere.
#pragma once

#include <set>
#include <utility>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceManager.h"

namespace clang::tidy::das {

/// TypeLoc-based matchers fire once per spelling layer (elaborated type,
/// typedef sugar, template argument...), so a single `std::unordered_map`
/// mention can match several times at the same location. Checks keep one of
/// these per check instance and bail out on repeats.
class LocationDeduper {
 public:
  /// True the first time `loc` is seen (after mapping through macros).
  bool first(SourceLocation loc, const SourceManager& sm) {
    const SourceLocation file_loc = sm.getFileLoc(loc);
    return seen_.insert({sm.getFileID(file_loc).getHashValue(),
                         sm.getFileOffset(file_loc)})
        .second;
  }

 private:
  std::set<std::pair<unsigned, unsigned>> seen_;
};

}  // namespace clang::tidy::das
