#pragma once

#include "DasTidyUtils.h"

namespace clang::tidy::das {

/// das-audit-coverage: every concrete class in the das::Auditable hierarchy
/// must say where its invariants are checked. A class that adds state but
/// silently inherits a base's check_invariants() gets audited against the
/// base's invariants only — the chaos harness then "passes" audits that
/// never looked at the new fields. Compliance is either (a) declaring
/// check_invariants() in the class itself, or (b) inheriting an
/// implementation marked `final` (the SchedulerBase pattern, which routes
/// subclass invariants through check_policy_invariants()).
class AuditCoverageCheck : public ClangTidyCheck {
 public:
  AuditCoverageCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;

 private:
  LocationDeduper deduper_;
};

}  // namespace clang::tidy::das
