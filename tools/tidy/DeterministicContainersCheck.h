#pragma once

#include "DasTidyUtils.h"

namespace clang::tidy::das {

/// das-deterministic-containers: bans std::unordered_{map,set,multimap,
/// multiset} in simulation code. Their iteration order depends on the
/// standard library's hash seed and bucket policy, so any loop over one can
/// change event ordering — and therefore results — across toolchains. Use
/// das::FlatMap / das::FlatSet (deterministic open addressing) or the
/// ordered std::map / std::set. Lookup-only tables that are provably never
/// iterated may stay, with
/// `// NOLINT(das-deterministic-containers): <why>`.
class DeterministicContainersCheck : public ClangTidyCheck {
 public:
  DeterministicContainersCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;

 private:
  LocationDeduper deduper_;
};

}  // namespace clang::tidy::das
