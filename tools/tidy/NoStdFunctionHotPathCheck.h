#pragma once

#include <string>
#include <vector>

#include "DasTidyUtils.h"

namespace clang::tidy::das {

/// das-no-std-function-hot-path: std::function heap-allocates once a
/// capture outgrows its small buffer and always calls through two
/// indirections; the engine overhaul replaced it with das::SmallFn on every
/// per-event path. This check keeps it out: any std::function mention
/// inside a hot-path namespace is an error. The namespace set is the
/// `HotPathNamespaces` check option (semicolon-separated, default
/// "das::sim;das::sched;das::net"); das::core keeps std::function for
/// setup-time wiring where flexibility beats nanoseconds.
class NoStdFunctionHotPathCheck : public ClangTidyCheck {
 public:
  NoStdFunctionHotPathCheck(StringRef Name, ClangTidyContext* Context);
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;

 private:
  const std::string raw_namespaces_;
  std::string namespace_regex_;
  LocationDeduper deduper_;
};

}  // namespace clang::tidy::das
