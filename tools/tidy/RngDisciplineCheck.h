#pragma once

#include "DasTidyUtils.h"

namespace clang::tidy::das {

/// das-rng-discipline: every das::Rng must be constructed from an explicit
/// seed (or copied/forked from an existing stream). `Rng r;` silently picks
/// the library's default seed, which makes two independently-written
/// components share a stream — consuming a draw in one perturbs the other,
/// the classic accidental-coupling bug that destroys seed-stability.
/// Also flags std::mt19937 & friends outright: the codebase's only sanctioned
/// generator is das::Rng (splitmix64/xoshiro, stable across stdlibs).
class RngDisciplineCheck : public ClangTidyCheck {
 public:
  RngDisciplineCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;

 private:
  LocationDeduper deduper_;
};

}  // namespace clang::tidy::das
