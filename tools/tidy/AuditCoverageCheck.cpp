#include "AuditCoverageCheck.h"

#include "clang/AST/Attr.h"
#include "clang/AST/DeclCXX.h"

using namespace clang::ast_matchers;

namespace clang::tidy::das {

namespace {

bool is_check_invariants(const CXXMethodDecl* method) {
  const IdentifierInfo* id = method->getIdentifier();
  return id != nullptr && id->getName() == "check_invariants";
}

/// Does `record` itself declare check_invariants()?
bool declares_check_invariants(const CXXRecordDecl* record) {
  for (const CXXMethodDecl* method : record->methods()) {
    if (is_check_invariants(method)) return true;
  }
  return false;
}

/// Does any (transitive) base of `record` declare a `final`
/// check_invariants()? A final override closes the audit question for the
/// whole subtree below it.
bool inherits_final_check_invariants(const CXXRecordDecl* record) {
  for (const CXXBaseSpecifier& base : record->bases()) {
    const CXXRecordDecl* base_record = base.getType()->getAsCXXRecordDecl();
    if (base_record == nullptr) continue;
    base_record = base_record->getDefinition();
    if (base_record == nullptr) continue;
    for (const CXXMethodDecl* method : base_record->methods()) {
      if (is_check_invariants(method) && method->hasAttr<FinalAttr>())
        return true;
    }
    if (inherits_final_check_invariants(base_record)) return true;
  }
  return false;
}

}  // namespace

void AuditCoverageCheck::registerMatchers(MatchFinder* Finder) {
  // Concrete definitions only: an abstract class without check_invariants()
  // is fine (its concrete descendants are still on the hook), and forward
  // declarations cannot be judged.
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(), unless(isAbstract()),
                    unless(isExpansionInSystemHeader()),
                    isDerivedFrom(cxxRecordDecl(hasName("::das::Auditable"))))
          .bind("record"),
      this);
}

void AuditCoverageCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (record == nullptr) return;
  if (declares_check_invariants(record)) return;
  if (inherits_final_check_invariants(record)) return;
  const SourceLocation loc = record->getLocation();
  if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
  diag(loc,
       "%0 derives das::Auditable but neither overrides check_invariants() "
       "nor inherits a final one; its own state is invisible to audits — "
       "override it (call the base version first), or derive from a base "
       "whose final check_invariants() delegates to a hook you override")
      << record;
}

}  // namespace clang::tidy::das
