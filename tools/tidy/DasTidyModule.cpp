// The das- clang-tidy module: project-specific determinism and audit
// discipline, enforced at analysis time.
//
// Built as an out-of-tree plugin; load with
//   clang-tidy --load=$BUILD/tools/tidy/libdas_tidy_checks.so \
//              --checks='das-*' ...
// (tools/run_tidy.sh does this automatically when the plugin was built).
// The registry entry below is what makes `--list-checks` show the das-
// checks once the plugin is loaded.
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AuditCoverageCheck.h"
#include "DeterministicContainersCheck.h"
#include "NoStdFunctionHotPathCheck.h"
#include "NoWallclockCheck.h"
#include "RngDisciplineCheck.h"

namespace clang::tidy {
namespace das {

class DasTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& Factories) override {
    Factories.registerCheck<NoWallclockCheck>("das-no-wallclock");
    Factories.registerCheck<DeterministicContainersCheck>(
        "das-deterministic-containers");
    Factories.registerCheck<RngDisciplineCheck>("das-rng-discipline");
    Factories.registerCheck<NoStdFunctionHotPathCheck>(
        "das-no-std-function-hot-path");
    Factories.registerCheck<AuditCoverageCheck>("das-audit-coverage");
  }
};

}  // namespace das

static ClangTidyModuleRegistry::Add<das::DasTidyModule> X(
    "das-module", "DAS simulator determinism and audit-coverage checks.");

// Referenced nowhere; its presence keeps the registration object above from
// being dropped by aggressive linkers.
volatile int DasTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
