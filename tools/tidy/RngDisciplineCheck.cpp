#include "RngDisciplineCheck.h"

#include "clang/AST/ExprCXX.h"

using namespace clang::ast_matchers;

namespace clang::tidy::das {

void RngDisciplineCheck::registerMatchers(MatchFinder* Finder) {
  // Every non-copy/move construction of das::Rng. Traversal is TK_AsIs by
  // default, so implicit constructions — a member omitted from a ctor init
  // list, `Rng{}` in a default member initializer — are matched too.
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasName("::das::Rng")),
                           unless(isCopyConstructor()),
                           unless(isMoveConstructor()))))
          .bind("ctor"),
      this);
  // std::mersenne_twister_engine & friends: not merely undisciplined but
  // unsanctioned — distributions over them differ across standard
  // libraries, so results would not reproduce. Named via both the typedefs
  // (mt19937) and the engine templates they alias.
  const auto std_engine = cxxRecordDecl(hasAnyName(
      "::std::mersenne_twister_engine", "::std::linear_congruential_engine",
      "::std::subtract_with_carry_engine", "::std::discard_block_engine",
      "::std::independent_bits_engine", "::std::shuffle_order_engine"));
  Finder->addMatcher(
      typeLoc(loc(qualType(anyOf(
                  hasDeclaration(std_engine),
                  hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(std_engine)))))))
          .bind("engine"),
      this);
}

void RngDisciplineCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* ctor = Result.Nodes.getNodeAs<CXXConstructExpr>("ctor")) {
    // Explicit-argument constructions are fine; a construction whose every
    // argument is the default (including zero-arg `Rng r;`) is the silent
    // shared-stream bug this check exists for.
    for (const Expr* arg : ctor->arguments()) {
      if (!isa<CXXDefaultArgExpr>(arg)) return;
    }
    const SourceLocation loc = ctor->getBeginLoc();
    if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
    diag(loc,
         "das::Rng constructed with the default seed; pass an explicit "
         "seed, or derive a stream with fork(tag) so components never "
         "share one");
    return;
  }
  if (const auto* engine = Result.Nodes.getNodeAs<TypeLoc>("engine")) {
    const SourceLocation loc = engine->getBeginLoc();
    if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
    diag(loc,
         "standard-library random engine %0 is banned: its distributions "
         "are stdlib-specific; use das::Rng (stable across toolchains)")
        << engine->getType().getUnqualifiedType().getAsString();
  }
}

}  // namespace clang::tidy::das
