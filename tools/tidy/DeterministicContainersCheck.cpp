#include "DeterministicContainersCheck.h"

using namespace clang::ast_matchers;

namespace clang::tidy::das {

void DeterministicContainersCheck::registerMatchers(MatchFinder* Finder) {
  const auto unordered = cxxRecordDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set",
      "::std::unordered_multimap", "::std::unordered_multiset"));
  // Written mentions only (declarations, members, locals, template args);
  // the desugared alternative catches `using Index = std::unordered_map<..>`
  // at the point of use as well as at the alias.
  Finder->addMatcher(
      typeLoc(loc(qualType(anyOf(
                  hasDeclaration(unordered),
                  hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(unordered)))))))
          .bind("type"),
      this);
}

void DeterministicContainersCheck::check(
    const MatchFinder::MatchResult& Result) {
  const auto* type = Result.Nodes.getNodeAs<TypeLoc>("type");
  if (type == nullptr) return;
  const SourceLocation loc = type->getBeginLoc();
  if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
  diag(loc,
       "hash-ordered container %0 is banned in simulation code: its "
       "iteration order is stdlib-specific and leaks into event ordering; "
       "use das::FlatMap/das::FlatSet or std::map/std::set, or justify a "
       "lookup-only table with NOLINT(das-deterministic-containers)")
      << type->getType().getUnqualifiedType().getAsString();
}

}  // namespace clang::tidy::das
