#pragma once

#include "DasTidyUtils.h"

namespace clang::tidy::das {

/// das-no-wallclock: bans wall-clock and ambient-entropy sources inside the
/// simulator. Simulation code must consume time from sim::Simulator::now()
/// and randomness from a seeded das::Rng (or a fork() of one); touching
/// std::chrono clocks, ::time(), std::rand() or std::random_device makes a
/// run irreproducible. Host-performance measurement code escapes with
/// `// NOLINT(das-no-wallclock): <why>`.
class NoWallclockCheck : public ClangTidyCheck {
 public:
  NoWallclockCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;

 private:
  LocationDeduper deduper_;
};

}  // namespace clang::tidy::das
