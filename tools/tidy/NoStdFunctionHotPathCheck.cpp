#include "NoStdFunctionHotPathCheck.h"

using namespace clang::ast_matchers;

namespace clang::tidy::das {

namespace {

/// "das::sim;das::sched" -> "^::das::sim$|^::das::sched$" (matchesName sees
/// fully qualified names with a leading "::"). Namespace names are
/// identifier characters and "::" only, so no regex escaping is needed.
std::string namespaces_to_regex(StringRef raw) {
  std::string regex;
  SmallVector<StringRef, 8> parts;
  raw.split(parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (const StringRef part : parts) {
    const StringRef name = part.trim();
    if (name.empty()) continue;
    if (!regex.empty()) regex += '|';
    regex += "^::";
    regex += name.str();
    regex += '$';
  }
  return regex;
}

}  // namespace

NoStdFunctionHotPathCheck::NoStdFunctionHotPathCheck(StringRef Name,
                                                     ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      raw_namespaces_(Options.get("HotPathNamespaces",
                                  "das::sim;das::sched;das::net")),
      namespace_regex_(namespaces_to_regex(raw_namespaces_)) {}

void NoStdFunctionHotPathCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "HotPathNamespaces", raw_namespaces_);
}

void NoStdFunctionHotPathCheck::registerMatchers(MatchFinder* Finder) {
  if (namespace_regex_.empty()) return;
  const auto std_function = cxxRecordDecl(hasName("::std::function"));
  Finder->addMatcher(
      typeLoc(loc(qualType(anyOf(
                  hasDeclaration(std_function),
                  hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(std_function)))))),
              hasAncestor(namespaceDecl(matchesName(namespace_regex_))))
          .bind("type"),
      this);
}

void NoStdFunctionHotPathCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* type = Result.Nodes.getNodeAs<TypeLoc>("type");
  if (type == nullptr) return;
  const SourceLocation loc = type->getBeginLoc();
  if (!loc.isValid() || !deduper_.first(loc, *Result.SourceManager)) return;
  diag(loc,
       "std::function in a hot-path namespace (%0): it heap-allocates on "
       "large captures and double-indirects every call; use das::SmallFn "
       "(common/small_fn.hpp) instead")
      << raw_namespaces_;
}

}  // namespace clang::tidy::das
