#!/usr/bin/env python3
"""Validate a BENCH_PERF.json emission and gate it against the committed baseline.

Usage:
    tools/check_perf.py MEASURED.json bench/perf_baseline.json

Two checks per point:
  1. Determinism: the dispatched-event count must equal the baseline count
     bit-for-bit (event counts are deterministic for a fixed --scale, so any
     drift means the engine's behaviour changed, not just its speed).
  2. Throughput: events/sec must stay >= baseline * (1 - tolerance).  The
     baseline values are deliberately conservative (see the comment field in
     bench/perf_baseline.json) so shared CI runners pass with headroom while
     a real hot-path regression still trips the gate.

Exit status: 0 when every point passes, 1 on any failure, 2 on usage or
schema errors.  Stdlib only -- no third-party imports.
"""

import json
import sys

REQUIRED_POINT_KEYS = {
    "point": str,
    "events": int,
    "wall_seconds": float,
    "events_per_sec": float,
    "sim_time_us": float,
}


def fail_usage(msg):
    print(f"check_perf: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"cannot read {path}: {e}")


def validate_measured_schema(doc, path):
    if doc.get("schema_version") != 2:
        fail_usage(f"{path}: schema_version must be 2, got {doc.get('schema_version')!r}")
    if doc.get("experiment") != "perf_throughput":
        fail_usage(f"{path}: experiment must be 'perf_throughput', got {doc.get('experiment')!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail_usage(f"{path}: 'points' must be a non-empty list")
    for i, p in enumerate(points):
        for key, ty in REQUIRED_POINT_KEYS.items():
            if key not in p:
                fail_usage(f"{path}: points[{i}] missing key {key!r}")
            value = p[key]
            # ints are acceptable where floats are expected (JSON does not
            # distinguish 3 from 3.0).
            if ty is float and isinstance(value, int):
                continue
            if not isinstance(value, ty):
                fail_usage(f"{path}: points[{i}].{key} has type {type(value).__name__}, want {ty.__name__}")
        if p["events"] <= 0 or p["wall_seconds"] <= 0 or p["events_per_sec"] <= 0:
            fail_usage(f"{path}: points[{i}] ({p['point']}) has a non-positive measurement")


def main(argv):
    if len(argv) != 3:
        fail_usage("usage: check_perf.py MEASURED.json BASELINE.json")
    measured_doc = load_json(argv[1])
    baseline_doc = load_json(argv[2])
    validate_measured_schema(measured_doc, argv[1])

    tolerance = baseline_doc.get("tolerance", 0.15)
    measured = {p["point"]: p for p in measured_doc["points"]}
    failures = []

    print(f"{'point':>18}  {'events':>9}  {'meas eps':>12}  {'floor eps':>12}  verdict")
    for base in baseline_doc["points"]:
        name = base["point"]
        if name not in measured:
            failures.append(f"{name}: missing from measured output")
            print(f"{name:>18}  {'-':>9}  {'-':>12}  {'-':>12}  MISSING")
            continue
        p = measured[name]
        floor = base["events_per_sec"] * (1.0 - tolerance)
        verdicts = []
        if p["events"] != base["events"]:
            verdicts.append(f"events {p['events']} != baseline {base['events']} (determinism drift)")
        if p["events_per_sec"] < floor:
            verdicts.append(f"events/sec {p['events_per_sec']:.0f} below floor {floor:.0f}")
        status = "OK" if not verdicts else "FAIL"
        print(f"{name:>18}  {p['events']:>9}  {p['events_per_sec']:>12.0f}  {floor:>12.0f}  {status}")
        for v in verdicts:
            failures.append(f"{name}: {v}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
