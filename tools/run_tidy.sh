#!/usr/bin/env bash
# clang-tidy driver: runs the curated .clang-tidy check set over every
# first-party translation unit using the compile database.
#
#   tools/run_tidy.sh                # all of src/ + tools/
#   tools/run_tidy.sh src/sched      # restrict to a subtree
#   BUILD_DIR=build tools/run_tidy.sh  # reuse an existing compile database
#
# When the das- plugin was built (tools/tidy; needs the clang-tidy dev
# headers) it is loaded automatically, adding the project's determinism and
# audit-coverage checks; point DAS_TIDY_PLUGIN at a .so to override the
# search. Without the plugin the curated stock checks still run (the das-*
# glob in .clang-tidy is ignored by a plugin-less clang-tidy).
#
# Exits nonzero on any finding (WarningsAsErrors: '*'); exits 0 with a notice
# when clang-tidy is not installed so environments without LLVM (including
# the pinned CI-less sandbox) are not blocked.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}
JOBS=${JOBS:-$(nproc)}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: clang-tidy not found in PATH; nothing checked (install clang-tidy to enable)." >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_tidy: generating compile database in ${BUILD_DIR}" >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Load the das- checks plugin when present (build it by configuring with the
# clang-tidy dev headers installed; see tools/tidy/CMakeLists.txt).
load_args=()
if [ -z "${DAS_TIDY_PLUGIN:-}" ]; then
  for candidate in "${BUILD_DIR}"/tools/tidy/libdas_tidy_checks.so \
                   build*/tools/tidy/libdas_tidy_checks.so; do
    if [ -f "${candidate}" ]; then
      DAS_TIDY_PLUGIN=${candidate}
      break
    fi
  done
fi
if [ -n "${DAS_TIDY_PLUGIN:-}" ] && [ -f "${DAS_TIDY_PLUGIN}" ]; then
  echo "run_tidy: loading das- checks from ${DAS_TIDY_PLUGIN}" >&2
  load_args=("--load=${DAS_TIDY_PLUGIN}")
else
  echo "run_tidy: das- plugin not built; running stock checks only" >&2
fi

# First-party sources only; dependencies and generated code are out of
# scope, as is tools/tidy itself (plugin code follows LLVM idiom and pulls
# in clang-tidy headers the project check set was never tuned for).
scope=("${@:-src tools}")
mapfile -t files < <(git ls-files '*.cpp' | grep -E "^($(echo "${scope[@]}" | tr ' ' '|'))" | grep -v '^tools/tidy/' || true)
if [ "${#files[@]}" -eq 0 ]; then
  echo "run_tidy: no sources matched scope: ${scope[*]}" >&2
  exit 2
fi

echo "run_tidy: checking ${#files[@]} files with $(clang-tidy --version | head -1)" >&2

# run-clang-tidy learned -load in LLVM 15; fall back to the serial loop on
# older wrappers when the plugin is in play.
if command -v run-clang-tidy >/dev/null 2>&1; then
  if [ "${#load_args[@]}" -eq 0 ]; then
    exec run-clang-tidy -p "${BUILD_DIR}" -quiet -j "${JOBS}" "${files[@]}"
  elif run-clang-tidy -h 2>&1 | grep -q -- '-load'; then
    exec run-clang-tidy -p "${BUILD_DIR}" -quiet -j "${JOBS}" \
         -load "${DAS_TIDY_PLUGIN}" "${files[@]}"
  fi
fi

status=0
for f in "${files[@]}"; do
  clang-tidy -p "${BUILD_DIR}" --quiet ${load_args[@]+"${load_args[@]}"} "$f" || status=1
done
exit "${status}"
