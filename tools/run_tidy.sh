#!/usr/bin/env bash
# clang-tidy driver: runs the curated .clang-tidy check set over every
# first-party translation unit using the compile database.
#
#   tools/run_tidy.sh                # all of src/ + tools/
#   tools/run_tidy.sh src/sched      # restrict to a subtree
#   BUILD_DIR=build tools/run_tidy.sh  # reuse an existing compile database
#
# Exits nonzero on any finding (WarningsAsErrors: '*'); exits 0 with a notice
# when clang-tidy is not installed so environments without LLVM (including
# the pinned CI-less sandbox) are not blocked.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}
JOBS=${JOBS:-$(nproc)}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: clang-tidy not found in PATH; nothing checked (install clang-tidy to enable)." >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_tidy: generating compile database in ${BUILD_DIR}" >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party sources only; dependencies and generated code are out of scope.
scope=("${@:-src tools}")
mapfile -t files < <(git ls-files '*.cpp' | grep -E "^($(echo "${scope[@]}" | tr ' ' '|'))" || true)
if [ "${#files[@]}" -eq 0 ]; then
  echo "run_tidy: no sources matched scope: ${scope[*]}" >&2
  exit 2
fi

echo "run_tidy: checking ${#files[@]} files with $(clang-tidy --version | head -1)" >&2

if command -v run-clang-tidy >/dev/null 2>&1; then
  exec run-clang-tidy -p "${BUILD_DIR}" -quiet -j "${JOBS}" "${files[@]}"
fi

status=0
for f in "${files[@]}"; do
  clang-tidy -p "${BUILD_DIR}" --quiet "$f" || status=1
done
exit "${status}"
