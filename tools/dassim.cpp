// dassim — run arbitrary DAS cluster experiments from the command line.
//
//   ./build/tools/dassim --policy=das --load=0.8 --servers=64
//   ./build/tools/dassim --policy=all --fanout=bimodal:2:32:0.2 --format=csv
//   ./build/tools/dassim --policy=das,fcfs --stragglers=0.25 --straggler-speed=0.5
//   ./build/tools/dassim --sweep --jobs=4 --json=BENCH_sweep.json
//   ./build/tools/dassim --policy=das --trace=trace.json --breakdown
//   ./build/tools/dassim --policy=das --load=1.2 --queue-cap=64 \
//       --deadline-ms=20 --admission
//   ./build/tools/dassim --perf --perf-json=BENCH_PERF.json
//
// Prints one row per policy; --format=csv emits machine-readable output for
// plotting scripts. --sweep runs a (load grid x policy) sweep across a
// thread pool (--jobs) with bit-identical-to-serial results and can persist
// them as BENCH_<experiment>.json (--json). --trace records the full op
// lifecycle of a single-policy run as Chrome trace-event JSON (open in
// Perfetto); --breakdown prints the exact per-component RCT attribution.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/bench_json.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/perf.hpp"
#include "core/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "overload/overload.hpp"
#include "select/selector.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/tracer.hpp"
#include "workload/registry.hpp"
#include "workload/replay.hpp"
#include "workload/spec.hpp"

namespace {

using namespace das;

std::vector<sched::Policy> parse_policies(const std::string& spec) {
  if (spec == "all") return sched::all_policies();
  std::vector<sched::Policy> out;
  std::istringstream is{spec};
  std::string name;
  while (std::getline(is, name, ',')) out.push_back(sched::policy_from_string(name));
  DAS_CHECK_MSG(!out.empty(), "no policies given");
  return out;
}

/// --sweep: the (load x policy) grid, fanned out over a thread pool. All
/// stdout output is deterministic (bit-identical across --jobs values); the
/// wall-clock line goes to stderr.
int run_sweep(const core::ClusterConfig& base, const core::RunWindow& window,
              const std::vector<sched::Policy>& policies, const Flags& flags) {
  const std::string experiment = flags.get_string("experiment");
  const auto loads = core::parse_load_list(flags.get_string("sweep-loads"));
  const auto jobs_flag = flags.get_int("jobs");
  const std::size_t jobs = jobs_flag <= 0 ? core::SweepRunner::default_jobs()
                                          : static_cast<std::size_t>(jobs_flag);

  // Optional third grid dimension: replica-selection modes. Empty keeps the
  // single mode of --selection and the historical "load=X" point labels.
  std::vector<core::ReplicaSelection> selections;
  const std::string selections_spec = flags.get_string("sweep-selections");
  {
    std::istringstream is{selections_spec};
    std::string token;
    while (std::getline(is, token, ',')) {
      core::ReplicaSelection mode = core::ReplicaSelection::kPrimary;
      if (!select::mode_from_string(token, mode)) {
        std::cerr << "unknown --sweep-selections mode: " << token << "\n";
        return 2;
      }
      selections.push_back(mode);
    }
  }
  const auto point_label = [&](double load,
                               core::ReplicaSelection sel) -> std::string {
    std::string point = "load=" + Table::fmt(load, 2);
    if (!selections.empty())
      point += std::string(" sel=") + select::to_string(sel);
    return point;
  };
  const std::vector<core::ReplicaSelection> grid_selections =
      selections.empty()
          ? std::vector<core::ReplicaSelection>{base.replica_selection}
          : selections;

  core::SweepRunner runner;
  for (const double load : loads) {
    for (const core::ReplicaSelection sel : grid_selections) {
      core::ClusterConfig cfg = base;
      cfg.target_load = load;
      cfg.replica_selection = sel;
      const std::string point = point_label(load, sel);
      for (const sched::Policy policy : policies)
        runner.add(experiment, point, policy, cfg, window);
    }
  }

  // Wall-clock sweep timing for the operator's progress line only.
  const auto wall_start = std::chrono::steady_clock::now();  // NOLINT(das-no-wallclock)
  const std::vector<core::SweepOutcome> outcomes = runner.run(jobs);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -  // NOLINT(das-no-wallclock)
                                    wall_start)
          .count();
  std::cerr << "sweep: " << outcomes.size() << " points, jobs=" << jobs << ", "
            << wall_seconds << " s\n";

  const auto find_mean = [&](const std::string& point,
                             sched::Policy policy) -> double {
    for (const auto& o : outcomes)
      if (o.point == point && o.policy == policy) return o.result.rct.mean;
    return 0.0;
  };

  const std::string format = flags.get_string("format");
  if (format == "csv") {
    std::cout << "experiment,point,policy,requests,mean_rct_us,p50_us,p95_us,"
                 "p99_us,p999_us,mean_util,max_util,net_msgs,progress_msgs\n";
    for (const auto& o : outcomes) {
      const auto& r = o.result;
      std::cout << o.experiment << ',' << o.point << ','
                << sched::to_string(o.policy) << ',' << r.requests_measured
                << ',' << r.rct.mean << ',' << r.rct.p50 << ',' << r.rct.p95
                << ',' << r.rct.p99 << ',' << r.rct.p999 << ','
                << r.mean_server_utilization << ',' << r.max_server_utilization
                << ',' << r.net_messages << ',' << r.progress_messages << '\n';
    }
  } else if (format == "table") {
    std::vector<std::string> headers{"point"};
    for (const sched::Policy p : policies) headers.push_back(sched::to_string(p));
    const bool gains = policies.size() > 1 &&
                       policies.front() == sched::Policy::kFcfs;
    if (gains) headers.push_back("last vs fcfs");
    Table table{headers};
    for (const double load : loads) {
      for (const core::ReplicaSelection sel : grid_selections) {
        const std::string point = point_label(load, sel);
        std::vector<std::string> cells{point};
        for (const sched::Policy p : policies)
          cells.push_back(Table::fmt(find_mean(point, p), 1));
        if (gains) {
          const double fcfs = find_mean(point, sched::Policy::kFcfs);
          const double last = find_mean(point, policies.back());
          cells.push_back(fcfs > 0 ? Table::fmt_percent(1.0 - last / fcfs) : "-");
        }
        table.add_row(std::move(cells));
      }
    }
    std::cout << "== " << experiment << " — mean RCT (us) ==\n";
    table.print(std::cout);
  } else {
    std::cerr << "unknown --format: " << format << "\n";
    return 2;
  }

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    core::write_bench_json(json_path, experiment, outcomes);
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("policy", "fcfs,rein-sbf,das",
               "comma-separated policy list, or 'all'");
  flags.define("servers", "32", "number of store servers");
  flags.define("clients", "8", "number of front-end clients");
  flags.define("keys-per-server", "1000", "keyspace size per server");
  flags.define("load", "0.7",
               "target utilisation; > 1 drives deliberate overload (E22)");
  flags.define("calibration", "average",
               "load calibration: 'average' capacity or 'hottest' server");
  flags.define("theta", "0", "Zipf key-popularity skew (0 = uniform)");
  flags.define("fanout", "geometric:0.125:128",
               "multiget fan-out spec (fixed:K, uniform:LO:HI, geometric:P:CAP, "
               "zipf:N:THETA, bimodal:S:L:P)");
  flags.define("value-size", "gpareto:1:250:0.35:65536",
               "value-size spec in bytes (constant:V, uniform:LO:HI, "
               "exponential:M, lognormal:M:S, gpareto:L:S:SH:CAP)");
  flags.define("op-overhead-us", "20", "fixed service cost per op (us)");
  flags.define("bytes-per-us", "50", "service transfer rate (bytes/us)");
  flags.define("net-latency-us", "5", "one-way network latency (us)");
  flags.define("replication", "1", "copies per key");
  flags.define("selection", "primary",
               "replica selection: primary | random | least-delay | tars | "
               "power-of-d | c3");
  flags.define("replica-selection", "",
               "alias of --selection (takes precedence when set)");
  flags.define("stragglers", "0", "fraction of servers at reduced speed");
  flags.define("straggler-speed", "0.5", "speed factor of straggler servers");
  flags.define("ring-vnodes", "0", "consistent-hash vnodes (0 = modulo)");
  flags.define("loss", "0", "per-message drop probability (needs --retry-ms > 0)");
  flags.define("retry-ms", "0", "retransmission timeout in ms (0 = off)");
  flags.define("backoff-cap-ms", "0",
               "cap on the backed-off retransmission timeout in ms (0 = none)");
  flags.define("retry-max-attempts", "0",
               "send attempts per op before giving up and counting the "
               "request as failed (0 = retry forever)");
  flags.define("suspicion-rtos", "3",
               "consecutive retry timeouts before a server is suspected and "
               "reads fail over to other replicas (0 = off)");
  flags.define("faults", "",
               "scripted fault plan, e.g. "
               "crash@50ms:s3,recover@80ms:s3,partition@20ms:c0-s1,"
               "heal@30ms:c0-s1,slow@10ms-40ms:s2:x0.25,lossburst@5ms-9ms:p0.3");
  flags.define("chaos-crashes", "0",
               "chaos generator: crash/recover windows to script randomly");
  flags.define("chaos-slowdowns", "0",
               "chaos generator: gray-failure slowdown windows to script");
  flags.define("chaos-partitions", "0",
               "chaos generator: client-server partition windows to script");
  flags.define("chaos-seed", "1", "seed of the chaos fault generator");
  flags.define("hedge-ms", "0",
               "hedged-read delay in ms (0 = off; needs --replication >= 2)");
  flags.define("queue-cap", "0",
               "bounded server queues: max ops queued per server (0 = off)");
  flags.define("overload-policy", "reject-new",
               "bounded-queue shed policy: reject-new | sojourn-drop");
  flags.define("sojourn-us", "0",
               "sojourn-drop threshold in us (0 derives 2x the deadline "
               "budget, else 10ms)");
  flags.define("deadline-ms", "0",
               "end-to-end request deadline budget in ms (0 = off)");
  flags.define("admission", "false",
               "client-side AIMD admission control driven by BUSY/expiry");
  flags.define("preemptive", "false",
               "preempt-resume service (oracle upper bound)");
  flags.define("write-fraction", "0",
               "fraction of requests that are write-all PUTs");
  flags.define("workload", "",
               "workload-registry spec for a single tenant: '+'-joined "
               "clauses (ycsb-a|b|c|f, mix:R:U:M, zipf:THETA, fanout:<dist>, "
               "size:<dist>, drift:PERIOD_US:STRIDE, "
               "storm:START:END:KEYS:SHARE:SEED, replay:PATH, name:LABEL, "
               "share:W); unset clauses inherit the cluster flags");
  flags.define("tenants", "",
               "';'-separated list of --workload specs, one tenant each, "
               "sharing the cluster (equal keyspace slices, arrival rate "
               "split by share:W)");
  flags.define("replay", "",
               "replay a recorded trace file (shorthand for "
               "--workload=replay:FILE)");
  flags.define("record", "",
               "record every generated operation as a replay trace (CSV or "
               "JSONL by extension) to this path; single --policy, no --sweep");
  flags.define("store", "synthetic",
               "service-time model: 'synthetic' (client-computed demand) or "
               "'lsm' (memtable/flush/compaction storage engine)");
  flags.define("lsm-memtable-kb", "64", "LSM memtable flush threshold (KB)");
  flags.define("lsm-compact-trigger", "2",
               "L0 runs that trigger a background compaction");
  flags.define("lsm-drain-bpus", "16",
               "background compaction drain rate (bytes/us)");
  flags.define("lsm-compact-slowdown", "0.6",
               "effective-speed factor while compacting, in (0,1]");
  flags.define("lsm-stall-kb", "256",
               "compaction debt (KB) at which writes start stalling");
  flags.define("lsm-stall-mult", "4",
               "write cost multiplier while stalled (>= 1)");
  flags.define("lsm-interference", "true",
               "false = compaction costs nothing and writes never stall (the "
               "E20 control arm; the flush/compaction state machine still runs)");
  flags.define("warmup-ms", "30", "warmup window (ms, excluded from metrics)");
  flags.define("measure-ms", "200", "measurement window (ms)");
  flags.define("seed", "42", "simulation seed");
  flags.define("audit-every", "0",
               "run the invariant audit every N dispatched events (0 = off)");
  flags.define("format", "table", "output: table | csv");
  flags.define("sweep", "false",
               "run a (load grid x policy) sweep instead of a single point");
  flags.define("jobs", "1",
               "sweep worker threads (0 = hardware concurrency); results are "
               "bit-identical to --jobs=1");
  flags.define("sweep-loads", "0.3,0.5,0.6,0.7,0.8,0.9",
               "comma-separated target loads of the sweep grid (the E1 grid)");
  flags.define("sweep-selections", "",
               "comma-separated replica-selection modes added as a third "
               "sweep dimension (empty = just --selection); needs "
               "--replication >= 2");
  flags.define("experiment", "e1_load_mean", "sweep experiment label");
  flags.define("json", "",
               "write sweep results as BENCH-schema JSON to this path");
  flags.define("trace", "",
               "write a Chrome trace-event JSON (Perfetto-loadable) of the "
               "run to this path; requires exactly one --policy, no --sweep");
  flags.define("trace-cap", "1000000",
               "maximum retained trace events (overflow counted, not kept)");
  flags.define("breakdown", "false",
               "print the exact per-component RCT attribution per policy");
  flags.define("perf", "false",
               "run the engine throughput suite (events/sec) instead of an "
               "experiment and write --perf-json");
  flags.define("perf-scale", "1", "event-budget multiplier for --perf");
  flags.define("perf-json", "BENCH_PERF.json",
               "where --perf writes its schema_version-2 JSON ('' = skip)");
  flags.define("help", "false", "show this help");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::cerr << error << "\n\n";
    flags.print_help(std::cerr, "dassim");
    return 2;
  }
  if (flags.get_bool("help")) {
    flags.print_help(std::cout, "dassim");
    return 0;
  }

  if (flags.get_bool("perf")) {
    core::PerfOptions options;
    options.scale = flags.get_double("perf-scale");
    if (options.scale <= 0) {
      std::cerr << "--perf-scale must be positive\n";
      return 2;
    }
    const std::vector<core::PerfPoint> points = core::run_perf_suite(options);
    Table table{{"point", "events", "wall (s)", "events/sec", "sim time (ms)"}};
    for (const core::PerfPoint& p : points) {
      table.add_row({p.point, std::to_string(p.events),
                     Table::fmt(p.wall_seconds, 3),
                     Table::fmt(p.events_per_sec, 0),
                     Table::fmt(p.sim_time_us / 1000.0, 1)});
    }
    std::cout << "== engine throughput (scale "
              << flags.get_string("perf-scale") << ") ==\n";
    table.print(std::cout);
    const std::string perf_json = flags.get_string("perf-json");
    if (!perf_json.empty()) {
      core::write_perf_json(perf_json, "perf_throughput", points);
      std::cerr << "wrote " << perf_json << "\n";
    }
    return 0;
  }

  core::ClusterConfig cfg;
  cfg.num_servers = static_cast<std::size_t>(flags.get_int("servers"));
  cfg.num_clients = static_cast<std::size_t>(flags.get_int("clients"));
  cfg.keys_per_server = static_cast<std::uint64_t>(flags.get_int("keys-per-server"));
  cfg.target_load = flags.get_double("load");
  const std::string calibration = flags.get_string("calibration");
  if (calibration == "average") {
    cfg.load_calibration = core::LoadCalibration::kAverageCapacity;
  } else if (calibration == "hottest") {
    cfg.load_calibration = core::LoadCalibration::kHottestServer;
  } else {
    std::cerr << "unknown --calibration: " << calibration << "\n";
    return 2;
  }
  cfg.zipf_theta = flags.get_double("theta");
  cfg.fanout = workload::parse_int_dist(flags.get_string("fanout"));
  cfg.value_size_bytes = workload::parse_real_dist(flags.get_string("value-size"));
  cfg.per_op_overhead_us = flags.get_double("op-overhead-us");
  cfg.service_bytes_per_us = flags.get_double("bytes-per-us");
  cfg.net_latency_us = flags.get_double("net-latency-us");
  cfg.replication = static_cast<std::size_t>(flags.get_int("replication"));
  std::string selection = flags.get_string("selection");
  if (!flags.get_string("replica-selection").empty())
    selection = flags.get_string("replica-selection");
  if (!select::mode_from_string(selection, cfg.replica_selection)) {
    std::cerr << "unknown --selection: " << selection << "\n";
    return 2;
  }
  cfg.ring_vnodes = static_cast<std::size_t>(flags.get_int("ring-vnodes"));
  cfg.msg_loss_probability = flags.get_double("loss");
  cfg.retry_timeout_us = flags.get_double("retry-ms") * kMillisecond;
  cfg.retry_backoff_max_us = flags.get_double("backoff-cap-ms") * kMillisecond;
  cfg.retry_max_attempts =
      static_cast<std::uint32_t>(flags.get_int("retry-max-attempts"));
  cfg.suspicion_rto_threshold =
      static_cast<std::uint32_t>(flags.get_int("suspicion-rtos"));
  cfg.hedge_delay_us = flags.get_double("hedge-ms") * kMillisecond;
  cfg.overload.queue_cap = static_cast<std::size_t>(flags.get_int("queue-cap"));
  if (!overload::policy_from_string(flags.get_string("overload-policy"),
                                    cfg.overload.reject_policy)) {
    std::cerr << "unknown --overload-policy: "
              << flags.get_string("overload-policy") << "\n";
    return 2;
  }
  cfg.overload.sojourn_threshold_us = flags.get_double("sojourn-us");
  cfg.overload.deadline_budget_us = flags.get_double("deadline-ms") * kMillisecond;
  cfg.overload.admission = flags.get_bool("admission");
  cfg.preemptive_service = flags.get_bool("preemptive");
  cfg.write_fraction = flags.get_double("write-fraction");
  if (!core::store_model_from_string(flags.get_string("store"), cfg.store_model)) {
    std::cerr << "unknown --store: " << flags.get_string("store") << "\n";
    return 2;
  }
  cfg.lsm.memtable_bytes = flags.get_double("lsm-memtable-kb") * 1024.0;
  cfg.lsm.l0_compaction_trigger =
      static_cast<std::size_t>(flags.get_int("lsm-compact-trigger"));
  cfg.lsm.compaction_bytes_per_us = flags.get_double("lsm-drain-bpus");
  cfg.lsm.compaction_capacity_factor = flags.get_double("lsm-compact-slowdown");
  cfg.lsm.stall_debt_bytes = flags.get_double("lsm-stall-kb") * 1024.0;
  cfg.lsm.stall_write_multiplier = flags.get_double("lsm-stall-mult");
  cfg.lsm.interference = flags.get_bool("lsm-interference");
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.audit_every_events = static_cast<std::uint64_t>(flags.get_int("audit-every"));
  const double straggler_fraction = flags.get_double("stragglers");
  if (straggler_fraction > 0) {
    cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
    const auto n = static_cast<std::size_t>(
        straggler_fraction * static_cast<double>(cfg.num_servers));
    const double speed = flags.get_double("straggler-speed");
    for (std::size_t i = 0; i < n && i < cfg.num_servers; ++i)
      cfg.server_speed_factors[i] = speed;
  }

  // Workload registry: --replay is sugar for --workload=replay:FILE; a
  // single --workload becomes a one-tenant list. Registry parse errors are
  // usage errors.
  try {
    std::string workload_spec = flags.get_string("workload");
    const std::string tenants_spec = flags.get_string("tenants");
    const std::string replay_path = flags.get_string("replay");
    if (!replay_path.empty()) {
      if (!workload_spec.empty() || !tenants_spec.empty()) {
        std::cerr << "--replay is shorthand for --workload=replay:FILE; give "
                     "only one of --replay / --workload / --tenants\n";
        return 2;
      }
      workload_spec = "replay:" + replay_path;
    }
    if (!workload_spec.empty() && !tenants_spec.empty()) {
      std::cerr << "--workload and --tenants are mutually exclusive\n";
      return 2;
    }
    if (!tenants_spec.empty()) {
      cfg.tenants = workload::parse_tenants(tenants_spec);
    } else if (!workload_spec.empty()) {
      cfg.tenants = {workload::parse_tenant(workload_spec)};
      if (cfg.tenants.front().name.empty()) cfg.tenants.front().name = "t0";
    }
  } catch (const std::logic_error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  core::RunWindow window;
  window.warmup_us = flags.get_double("warmup-ms") * kMillisecond;
  window.measure_us = flags.get_double("measure-ms") * kMillisecond;

  // Fault timeline: scripted spec and/or seeded chaos windows (appended, then
  // re-sorted so the combined plan stays time-ordered).
  try {
    const std::string fault_spec = flags.get_string("faults");
    if (!fault_spec.empty()) cfg.fault_plan = fault::parse_fault_plan(fault_spec);
    fault::ChaosOptions chaos;
    chaos.horizon_us = window.horizon();
    chaos.num_servers = static_cast<std::uint32_t>(cfg.num_servers);
    chaos.num_clients = static_cast<std::uint32_t>(cfg.num_clients);
    chaos.crashes = static_cast<std::uint32_t>(flags.get_int("chaos-crashes"));
    chaos.slowdowns = static_cast<std::uint32_t>(flags.get_int("chaos-slowdowns"));
    chaos.partitions = static_cast<std::uint32_t>(flags.get_int("chaos-partitions"));
    if (chaos.crashes + chaos.slowdowns + chaos.partitions > 0) {
      const fault::FaultPlan generated = fault::make_chaos_plan(
          chaos, static_cast<std::uint64_t>(flags.get_int("chaos-seed")));
      cfg.fault_plan.events.insert(cfg.fault_plan.events.end(),
                                   generated.events.begin(),
                                   generated.events.end());
      std::stable_sort(cfg.fault_plan.events.begin(), cfg.fault_plan.events.end(),
                       [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                         return a.at < b.at;
                       });
    }
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::vector<sched::Policy> policies;
  try {
    policies = parse_policies(flags.get_string("policy"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const std::string trace_path = flags.get_string("trace");
  const std::string record_path = flags.get_string("record");

  if (flags.get_bool("sweep")) {
    if (!trace_path.empty()) {
      std::cerr << "--trace is incompatible with --sweep\n";
      return 2;
    }
    if (!record_path.empty()) {
      std::cerr << "--record is incompatible with --sweep\n";
      return 2;
    }
    try {
      return run_sweep(cfg, window, policies, flags);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";  // malformed grid spec = usage error
      return 2;
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  std::vector<core::PolicyRun> runs;
  if (!trace_path.empty()) {
    if (policies.size() != 1) {
      std::cerr << "--trace requires exactly one --policy\n";
      return 2;
    }
    trace::Tracer::Config trace_cfg;
    trace_cfg.cap = static_cast<std::size_t>(flags.get_int("trace-cap"));
    trace::Tracer tracer{trace_cfg};
    cfg.policy = policies.front();
    runs.push_back({policies.front(), core::run_experiment(cfg, window, &tracer)});
    trace::write_chrome_trace(trace_path, tracer);
    std::cerr << "trace: " << tracer.events().size() << " events retained, "
              << tracer.dropped() << " dropped (cap " << tracer.cap()
              << ") -> " << trace_path << "\n";
  } else if (!record_path.empty()) {
    if (policies.size() != 1) {
      std::cerr << "--record requires exactly one --policy\n";
      return 2;
    }
    cfg.policy = policies.front();
    workload::ReplayTrace recorded;
    core::Cluster cluster{cfg, window};
    cluster.set_workload_recorder(&recorded);
    runs.push_back({policies.front(), cluster.run()});
    recorded.save(record_path);
    std::cerr << "recorded " << recorded.size() << " ops -> " << record_path
              << "\n";
  } else {
    runs = core::compare_policies(cfg, policies, window);
  }
  const std::string format = flags.get_string("format");
  const double fcfs_mean =
      runs.front().policy == sched::Policy::kFcfs ? runs.front().result.rct.mean : 0;

  // Exact RCT attribution: component means over the measurement window plus
  // the mechanism-activation counters (what the scheduler actually did).
  const auto print_breakdown = [&runs] {
    Table table{{"policy", "requests", "mean RCT", "network", "runnable wait",
                 "deferred wait", "service", "straggler slack", "deferred",
                 "resumed", "aged", "reranks"}};
    for (const auto& [policy, r] : runs) {
      const auto& b = r.breakdown;
      table.add_row({sched::to_string(policy), std::to_string(b.requests),
                     Table::fmt(b.mean_rct_us, 1), Table::fmt(b.mean_network_us, 1),
                     Table::fmt(b.mean_runnable_wait_us, 1),
                     Table::fmt(b.mean_deferred_wait_us, 1),
                     Table::fmt(b.mean_service_us, 1),
                     Table::fmt(b.mean_straggler_slack_us, 1),
                     std::to_string(r.ops_deferred), std::to_string(r.ops_resumed),
                     std::to_string(r.ops_aged), std::to_string(r.reranks_applied)});
    }
    std::cout << "== RCT breakdown (component means, us) ==\n";
    table.print(std::cout);
  };

  // Per-tenant accounting and fairness, shown whenever tenants are
  // configured. The Jain index is a per-run scalar; it appears on the first
  // tenant row of each policy.
  const auto print_tenants = [&runs] {
    Table table{{"policy", "tenant", "share", "generated", "completed",
                 "failed", "measured", "mean RCT", "p99", "jain"}};
    for (const auto& [policy, r] : runs) {
      bool first_row = true;
      for (const auto& t : r.tenants) {
        table.add_row({sched::to_string(policy), t.name, Table::fmt(t.share, 2),
                       std::to_string(t.requests_generated),
                       std::to_string(t.requests_completed),
                       std::to_string(t.requests_failed),
                       std::to_string(t.requests_measured),
                       Table::fmt(t.rct.mean, 1), Table::fmt(t.rct.p99, 1),
                       first_row ? Table::fmt(r.jain_fairness, 4) : ""});
        first_row = false;
      }
    }
    std::cout << "== per-tenant RCT ==\n";
    table.print(std::cout);
  };
  const bool have_tenants = !runs.empty() && !runs.front().result.tenants.empty();

  // Graceful-degradation accounting, shown whenever a fault plan ran.
  const auto print_degradation = [&runs] {
    Table table{{"policy", "availability", "completed", "failed", "failover ok",
                 "ops failed-over", "abandoned", "suspicions", "crash-dropped"}};
    for (const auto& [policy, r] : runs) {
      table.add_row({sched::to_string(policy), Table::fmt(r.availability, 4),
                     std::to_string(r.requests_completed),
                     std::to_string(r.requests_failed),
                     std::to_string(r.requests_completed_after_failover),
                     std::to_string(r.ops_failed_over),
                     std::to_string(r.ops_abandoned),
                     std::to_string(r.suspicions_raised),
                     std::to_string(r.ops_dropped_crashed)});
    }
    std::cout << "== graceful degradation ==\n";
    table.print(std::cout);
  };

  // Overload-layer accounting, shown whenever any protection is on. Goodput
  // vs throughput is the headline: how much of the settled work completed
  // in time, and how much capacity went to shedding/waste instead.
  const auto print_overload = [&runs] {
    Table table{{"policy", "goodput rps", "throughput rps", "shed", "admission",
                 "expired", "busy", "sojourn", "op-expired", "wasted (ms)"}};
    for (const auto& [policy, r] : runs) {
      table.add_row({sched::to_string(policy), Table::fmt(r.goodput_rps, 0),
                     Table::fmt(r.throughput_rps, 0),
                     std::to_string(r.requests_shed),
                     std::to_string(r.requests_shed_admission),
                     std::to_string(r.requests_expired),
                     std::to_string(r.ops_rejected_busy),
                     std::to_string(r.ops_shed_sojourn),
                     std::to_string(r.ops_expired_dropped),
                     Table::fmt(r.wasted_service_us / 1000.0, 1)});
    }
    std::cout << "== overload control ==\n";
    table.print(std::cout);
  };

  if (format == "csv") {
    std::cout << "policy,requests,mean_rct_us,p50_us,p95_us,p99_us,p999_us,"
                 "mean_util,max_util,net_msgs,progress_msgs\n";
    for (const auto& [policy, r] : runs) {
      std::cout << sched::to_string(policy) << ',' << r.requests_measured << ','
                << r.rct.mean << ',' << r.rct.p50 << ',' << r.rct.p95 << ','
                << r.rct.p99 << ',' << r.rct.p999 << ','
                << r.mean_server_utilization << ',' << r.max_server_utilization
                << ',' << r.net_messages << ',' << r.progress_messages << '\n';
    }
    if (flags.get_bool("breakdown")) print_breakdown();
    if (have_tenants) print_tenants();
    if (!cfg.fault_plan.empty()) print_degradation();
    if (cfg.overload.enabled()) print_overload();
    return 0;
  }
  if (format != "table") {
    std::cerr << "unknown --format: " << format << "\n";
    return 2;
  }

  Table table{{"policy", "mean RCT", "p50", "p95", "p99", "p999", "vs fcfs",
               "util", "max util"}};
  for (const auto& [policy, r] : runs) {
    table.add_row(
        {sched::to_string(policy), Table::fmt(r.rct.mean, 1),
         Table::fmt(r.rct.p50, 1), Table::fmt(r.rct.p95, 1),
         Table::fmt(r.rct.p99, 1), Table::fmt(r.rct.p999, 1),
         fcfs_mean > 0 ? Table::fmt_percent(1.0 - r.rct.mean / fcfs_mean) : "-",
         Table::fmt(r.mean_server_utilization, 3),
         Table::fmt(r.max_server_utilization, 3)});
  }
  table.print(std::cout);
  if (flags.get_bool("breakdown")) print_breakdown();
  if (have_tenants) print_tenants();
  if (!cfg.fault_plan.empty()) print_degradation();
  if (cfg.overload.enabled()) print_overload();
  return 0;
}
