// Heterogeneous cache-cluster scenario: stragglers and adaptivity.
//
// Real fleets are never uniform — a quarter of the machines are an older
// hardware generation running at half speed, and any server can slow down
// transiently (compaction, noisy neighbours). This example shows (a) how
// DAS's learned per-server speed estimates converge to the truth, and
// (b) how much the adaptive half of DAS is worth when stragglers appear.
//
//   ./build/examples/cache_cluster
#include <cstdio>
#include <iostream>

#include "das.hpp"

int main() {
  using namespace das;

  core::ClusterConfig cfg;
  cfg.num_servers = 16;
  cfg.num_clients = 4;
  cfg.keys_per_server = 800;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.75;
  // Servers 0-3 are the old hardware generation (half speed).
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  for (int i = 0; i < 4; ++i) cfg.server_speed_factors[i] = 0.5;
  cfg.policy = sched::Policy::kDas;

  core::RunWindow window;
  window.warmup_us = 30 * kMillisecond;
  window.measure_us = 150 * kMillisecond;

  // (a) Run one DAS cluster and inspect what client 0 learned purely from
  // response piggybacks — no configuration told it about the stragglers.
  {
    core::Cluster cluster{cfg, window};
    cluster.run();
    std::puts("client 0's learned per-server speed estimates");
    std::puts("(servers 0-3 really run at 0.5x; the rest at 1.0x)\n");
    std::printf("%-8s %14s %12s\n", "server", "true speed", "learned");
    for (std::size_t s = 0; s < cfg.num_servers; ++s) {
      std::printf("%-8zu %14.2f %12.2f\n", s, cfg.server_speed_factors[s],
                  cluster.client(0).speed_estimate(static_cast<ServerId>(s)));
    }
  }

  // (b) How much is adaptivity worth? Same workload, three schedulers.
  const auto runs = core::compare_policies(
      cfg,
      {sched::Policy::kFcfs, sched::Policy::kDasNoAdapt, sched::Policy::kDas},
      window);
  std::cout << "\nmean RCT with 25% half-speed stragglers\n\n";
  Table table{{"policy", "mean RCT (us)", "p99 (us)", "vs fcfs"}};
  const double fcfs_mean = runs[0].result.rct.mean;
  for (const auto& [policy, r] : runs) {
    table.add_row({sched::to_string(policy), Table::fmt(r.rct.mean, 1),
                   Table::fmt(r.rct.p99, 1),
                   Table::fmt_percent(1.0 - r.rct.mean / fcfs_mean)});
  }
  table.print(std::cout);
  return 0;
}
