// Quickstart: simulate a 32-server key-value store under multiget load and
// compare the default FCFS scheduling with DAS.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "das.hpp"

int main() {
  using namespace das;

  // A cluster is described by one config struct. Everything has sensible
  // defaults; here we pin the parts that matter for the comparison.
  core::ClusterConfig cfg;
  cfg.num_servers = 32;
  cfg.num_clients = 8;
  cfg.fanout = make_geometric(0.125, 128);  // multigets, mean 8 keys
  cfg.zipf_theta = 0.0;                     // uniform key popularity
  cfg.load_calibration = core::LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.7;                    // 70% of aggregate capacity

  core::RunWindow window;
  window.warmup_us = 30 * kMillisecond;
  window.measure_us = 200 * kMillisecond;

  std::printf("simulating %zu servers at load %.0f%%...\n\n", cfg.num_servers,
              cfg.target_load * 100);
  std::printf("%-10s %12s %12s %12s\n", "policy", "mean RCT", "p50", "p99");

  // compare_policies replays the identical request stream under each policy.
  const auto runs = core::compare_policies(
      cfg, {sched::Policy::kFcfs, sched::Policy::kReinSbf, sched::Policy::kDas},
      window);
  for (const auto& [policy, result] : runs) {
    std::printf("%-10s %10.1fus %10.1fus %10.1fus\n",
                sched::to_string(policy).c_str(), result.rct.mean, result.rct.p50,
                result.rct.p99);
  }

  const double gain = core::rct_improvement(runs.front().result, runs.back().result);
  std::printf("\nDAS cuts mean request completion time by %.1f%% vs FCFS\n",
              gain * 100);
  return 0;
}
