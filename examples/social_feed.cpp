// Social-feed scenario: the workload that motivates multiget scheduling.
//
// Rendering one feed page fans out into tens of key lookups (posts, authors,
// counters) across the cluster; the page renders when the LAST lookup
// returns. Fan-outs are heavy-tailed (most pages touch a few keys, some
// touch a hundred), popularity is Zipf-skewed, and the cluster runs hot at
// peak hours. This example sweeps the evening peak and shows how each
// scheduler holds up.
//
//   ./build/examples/social_feed
#include <iostream>

#include "das.hpp"

int main() {
  using namespace das;

  core::ClusterConfig cfg;
  cfg.num_servers = 64;
  cfg.num_clients = 16;
  cfg.keys_per_server = 1000;
  // Feed pages: 80% light (2 keys), 20% heavy (48 keys) — bimodal fan-out.
  cfg.fanout = make_bimodal(2, 48, 0.2);
  // Hot celebrities: Zipf(0.9) popularity; keep the hottest shard at the
  // target, not the average, so the peak stays stable.
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = core::LoadCalibration::kHottestServer;
  // Small metadata values: memcached-ETC-like sizes.
  cfg.value_size_bytes = make_generalized_pareto(1.0, 250.0, 0.35, 64 * 1024.0);

  core::RunWindow window;
  window.warmup_us = 30 * kMillisecond;
  window.measure_us = 150 * kMillisecond;

  Table table{{"peak load", "policy", "mean RCT (us)", "p99 (us)",
               "heavy-page penalty"}};
  for (const double load : {0.5, 0.7, 0.85}) {
    cfg.target_load = load;
    const auto runs = core::compare_policies(
        cfg, {sched::Policy::kFcfs, sched::Policy::kReinSbf, sched::Policy::kDas},
        window);
    for (const auto& [policy, r] : runs) {
      // "Heavy-page penalty": p99 over median — how much the wide pages and
      // queueing tail cost relative to a typical page.
      table.add_row({Table::fmt(load, 2), sched::to_string(policy),
                     Table::fmt(r.rct.mean, 1), Table::fmt(r.rct.p99, 1),
                     Table::fmt(r.rct.p99 / r.rct.p50, 1) + "x"});
    }
  }
  std::cout << "Feed-page completion time during the evening peak\n\n";
  table.print(std::cout);
  std::cout << "\nDAS keeps light pages fast without starving heavy ones\n"
               "(aging bounds the worst case; see bench_e11_ablation).\n";
  return 0;
}
