// Time-varying performance demo: the "A" in DAS.
//
// Every server's speed follows an independent two-state Markov process
// (full speed / 40% speed, ~10ms dwell) — modelling background compaction,
// GC pauses and noisy neighbours. A static scheduler keeps ranking
// operations by sizes that no longer reflect reality; DAS's EWMA estimators
// re-learn each server's effective speed within a few requests.
//
// The demo also shows the trace API: the exact same recorded request stream
// is replayed under each scheduler, so differences are scheduling-only.
//
//   ./build/examples/adaptive_demo
#include <iostream>

#include "das.hpp"

int main() {
  using namespace das;

  core::RunWindow window;
  window.warmup_us = 30 * kMillisecond;
  window.measure_us = 200 * kMillisecond;

  core::ClusterConfig cfg;
  cfg.num_servers = 32;
  cfg.num_clients = 8;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.75;
  // Independent per-server speed fluctuation.
  for (std::size_t s = 0; s < cfg.num_servers; ++s) {
    cfg.speed_profiles.push_back(workload::make_markov_two_state(
        1.0, 0.4, 10 * kMillisecond, 10 * kMillisecond, window.horizon(),
        0xFADE + s));
  }

  std::cout << "servers fluctuate between 1.0x and 0.4x speed (10ms dwell)\n\n";
  Table table{{"policy", "mean RCT (us)", "p99 (us)", "vs fcfs"}};
  const auto runs = core::compare_policies(
      cfg,
      {sched::Policy::kFcfs, sched::Policy::kReinSbf, sched::Policy::kDasNoAdapt,
       sched::Policy::kDas},
      window);
  const double fcfs_mean = runs[0].result.rct.mean;
  for (const auto& [policy, r] : runs) {
    table.add_row({sched::to_string(policy), Table::fmt(r.rct.mean, 1),
                   Table::fmt(r.rct.p99, 1),
                   Table::fmt_percent(1.0 - r.rct.mean / fcfs_mean)});
  }
  table.print(std::cout);
  std::cout << "\ndas-na is DAS with its estimators frozen — the gap between\n"
               "das-na and das is what adapting to time-varying performance "
               "buys.\n";

  // Transient view: every server drops to 0.7x speed at t=100ms and
  // recovers at t=200ms (the slow phase stays inside the stable region, so
  // this isolates ADAPTATION rather than overload drain). The 10ms-bucket
  // timeline shows das settling to a much lower plateau during the slow
  // phase than its frozen-estimator ablation.
  {
    core::ClusterConfig step_cfg;
    step_cfg.num_servers = 32;
    step_cfg.num_clients = 8;
    step_cfg.zipf_theta = 0.0;
    step_cfg.load_calibration = core::LoadCalibration::kHottestServer;
    step_cfg.target_load = 0.6;
    step_cfg.timeline_bucket_us = 10 * kMillisecond;
    step_cfg.speed_profiles = {workload::make_step_rate(
        {100.0 * kMillisecond, 200.0 * kMillisecond}, {1.0, 0.7, 1.0})};
    core::RunWindow step_window;
    step_window.warmup_us = 0;
    step_window.measure_us = 300 * kMillisecond;

    std::cout << "\nmean RCT per 10ms bucket (speed drops to 0.7x in "
                 "[100ms, 200ms)):\n\n";
    step_cfg.policy = sched::Policy::kDas;
    const auto das_run = core::run_experiment(step_cfg, step_window);
    step_cfg.policy = sched::Policy::kDasNoAdapt;
    const auto na_run = core::run_experiment(step_cfg, step_window);
    Table timeline{{"t (ms)", "das mean RCT", "das-na mean RCT"}};
    for (std::size_t i = 0; i < das_run.timeline.size() && i < na_run.timeline.size();
         ++i) {
      timeline.add_row({Table::fmt(das_run.timeline[i].bucket_start / kMillisecond, 0),
                        Table::fmt(das_run.timeline[i].mean_rct, 1),
                        Table::fmt(na_run.timeline[i].mean_rct, 1)});
    }
    timeline.print(std::cout);
  }

  // Bonus: record a workload trace and replay-check determinism.
  workload::MultigetGenerator::Config gen_cfg;
  gen_cfg.key_universe = 1000;
  gen_cfg.zipf_theta = 0.9;
  gen_cfg.fanout = make_geometric(0.25, 64);
  const workload::MultigetGenerator gen{gen_cfg};
  Rng rng{7};
  const workload::Trace trace = workload::Trace::generate(gen, 0.01, 1000, rng);
  const std::string path = "/tmp/das_adaptive_demo_trace.txt";
  trace.save(path);
  const workload::Trace replay = workload::Trace::load(path);
  std::cout << "\ntrace API: saved and reloaded " << replay.requests.size()
            << " requests (" << replay.total_operations() << " operations) via "
            << path << "\n";
  return 0;
}
