// E15 (extension) — Is non-preemptive service a real limitation? The paper
// (like production stores) serves operations to completion. This bench
// quantifies what preempt-resume service would buy: a large win in the
// classic single-key setting (textbook SRPT), but NOT in the fork-join
// multiget setting, where preempting on request totals postpones
// nearly-finished operations that would have completed their requests.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReqSrpt,
      das::sched::Policy::kDas};

  {
    // Classic M/G/1-flavoured point: fan-out 1, heavy-tailed sizes.
    auto cfg = dasbench::eval_config();
    cfg.fanout = das::make_fixed_int(1);
    cfg.per_op_overhead_us = 2.0;
    cfg.value_size_bytes = das::make_lognormal_mean(1000.0, 1.5);
    cfg.target_load = 0.8;
    cfg.preemptive_service = false;
    dasbench::register_point("E15_preemption", "fanout1/run-to-completion", cfg,
                             window, policies);
    cfg.preemptive_service = true;
    dasbench::register_point("E15_preemption", "fanout1/preempt-resume", cfg,
                             window, policies);
  }
  {
    // Fork-join point: the paper's default multiget workload.
    auto cfg = dasbench::eval_config();
    cfg.target_load = 0.8;
    cfg.preemptive_service = false;
    dasbench::register_point("E15_preemption", "multiget/run-to-completion", cfg,
                             window, policies);
    cfg.preemptive_service = true;
    dasbench::register_point("E15_preemption", "multiget/preempt-resume", cfg,
                             window, policies);
  }
  return dasbench::bench_main(argc, argv, "E15_preemption",
                              {{"Mean RCT: preemption ablation", "mean"},
                               {"p99 RCT: preemption ablation", "p99"}});
}
