// E18 (extension) — Faults & graceful degradation. Replication 2 with
// least-delay selection, 2ms retransmission RTO (capped exponential backoff)
// and timeout-based suspicion, so a crashed, partitioned or gray-failing
// server is detected from consecutive RTOs and reads fail over to the
// surviving replica. Every request still completes (availability stays 1.0);
// what the fault costs is tail latency, and the question is how much of the
// scheduling gain survives each fault shape.
#include "bench_common.hpp"
#include "fault/fault_plan.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.replication = 2;
  cfg.replica_selection = das::core::ReplicaSelection::kLeastDelay;
  cfg.retry_timeout_us = 2.0 * das::kMillisecond;
  cfg.retry_backoff_max_us = 16.0 * das::kMillisecond;
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};

  // All fault windows sit inside the 200ms measurement window (warmup ends
  // at 30ms), so the degradation they cause is fully observed.
  const std::pair<const char*, const char*> scenarios[] = {
      {"none", ""},
      {"crash", "crash@80ms:s3,recover@150ms:s3"},
      {"gray", "slow@60ms-180ms:s2:x0.25"},
      {"partition", "partition@60ms:c0-s1,heal@130ms:c0-s1"},
  };
  for (const auto& [name, spec] : scenarios) {
    cfg.fault_plan = spec[0] == '\0' ? das::fault::FaultPlan{}
                                     : das::fault::parse_fault_plan(spec);
    dasbench::register_point("E18_faults", std::string("fault=") + name, cfg,
                             window, policies);
  }

  // A denser randomized schedule from the chaos generator: two crash
  // windows, a slowdown and a partition, deterministically scripted from the
  // seed so the point is reproducible.
  das::fault::ChaosOptions chaos;
  chaos.horizon_us = window.horizon();
  chaos.num_servers = static_cast<std::uint32_t>(cfg.num_servers);
  chaos.num_clients = static_cast<std::uint32_t>(cfg.num_clients);
  chaos.crashes = 2;
  chaos.slowdowns = 1;
  chaos.partitions = 1;
  cfg.fault_plan = das::fault::make_chaos_plan(chaos, 18);
  dasbench::register_point("E18_faults", "fault=chaos", cfg, window, policies);

  return dasbench::bench_main(argc, argv, "E18_faults",
                              {{"Mean RCT vs fault scenario", "mean"},
                               {"p999 RCT vs fault scenario", "p999"},
                               {"Availability vs fault scenario", "availability"},
                               {"Ops failed over vs fault scenario",
                                "ops_failed_over"}});
}
