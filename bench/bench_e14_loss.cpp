// E14 (extension) — Robustness to message loss. Gets are idempotent, so
// recovery is client-side retransmission with exponential backoff (2ms base
// RTO). Loss mostly costs the tail (one RTO per lost op); the scheduling
// gain in the mean is expected to survive loss intact.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.retry_timeout_us = 2.0 * das::kMillisecond;
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};
  for (const double loss : {0.0, 0.001, 0.01, 0.05}) {
    cfg.msg_loss_probability = loss;
    dasbench::register_point("E14_loss", "loss=" + das::Table::fmt(loss * 100, 1) + "%",
                             cfg, window, policies);
  }
  return dasbench::bench_main(argc, argv, "E14_loss",
                              {{"Mean RCT vs message-loss rate", "mean"},
                               {"p999 RCT vs message-loss rate", "p999"}});
}
