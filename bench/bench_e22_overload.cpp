// E22 (extension) — Overload control: what does each protection layer buy
// when offered load crosses capacity? The paper stops at load 0.9; this
// sweep pushes 0.7 → 1.3 under four protection configs:
//
//   none      the paper's unprotected system. Past saturation the backlog
//             grows for as long as arrivals last — requests still complete
//             (the run drains after the window closes), but the mean RCT
//             scales with the run length: there IS no steady state.
//   bounded   per-server queue cap 64, reject-new. The queue guard converts
//             unbounded waiting into explicit BUSY shedding; RCT of the
//             admitted work stays bounded.
//   deadline  bounded + a 10ms end-to-end budget: servers drop expired ops
//             at dequeue, clients fail expired requests, service spent on
//             already-dead work is counted as waste.
//   full      bounded + deadline + client-side AIMD admission control: the
//             shedding moves from the server queue (paid after network +
//             queueing) to the client (free), and goodput recovers.
//
// The metastability scenario ("storm") replays the E21 hot-key storm with
// retransmission armed: retries amplify the storm's overload (each rejected
// op is retried into the same hot servers), which is the classic retry-storm
// metastability shape. Protection bounds the amplification; the honest
// reading of the table is in EXPERIMENTS.md E22.
#include "bench_common.hpp"
#include "workload/registry.hpp"

namespace {

struct Protection {
  const char* label;
  bool bounded;
  bool deadline;
  bool admission;
};

constexpr Protection kProtections[] = {
    {"none", false, false, false},
    {"bounded", true, false, false},
    {"deadline", true, true, false},
    {"full", true, true, true},
};

das::overload::OverloadConfig overload_for(const Protection& p) {
  das::overload::OverloadConfig o;
  if (p.bounded) o.queue_cap = 64;
  if (p.deadline) o.deadline_budget_us = 10.0 * das::kMillisecond;
  o.admission = p.admission;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};

  for (const double load : {0.7, 0.9, 1.1, 1.3}) {
    for (const Protection& protection : kProtections) {
      cfg.target_load = load;
      cfg.overload = overload_for(protection);
      char point[64];
      std::snprintf(point, sizeof point, "load=%.1f prot=%s", load,
                    protection.label);
      dasbench::register_point("E22_overload", point, cfg, window, policies);
    }
  }

  // Retry-storm metastability: a hot-key storm spanning most of the measure
  // window, with retransmission armed so every BUSY/loss is re-offered to
  // the same hot servers. Near saturation the unprotected system has no
  // slack to absorb the amplification; the protected one sheds it.
  cfg = dasbench::eval_config();
  cfg.target_load = 0.95;
  cfg.zipf_theta = 0.9;
  cfg.retry_timeout_us = 2.0 * das::kMillisecond;
  cfg.retry_max_attempts = 3;
  cfg.tenants = das::workload::parse_tenants(
      "ycsb-b+name:steady;"
      "ycsb-a+zipf:1.1+storm:50000:180000:4:0.7:7+name:bursty");
  for (const Protection& protection : {kProtections[0], kProtections[3]}) {
    cfg.overload = overload_for(protection);
    const std::string point = std::string("storm prot=") + protection.label;
    dasbench::register_point("E22_overload", point, cfg, window, policies);
  }

  return dasbench::bench_main(
      argc, argv, "E22_overload",
      {{"Mean RCT by protection", "mean"},
       {"p99 RCT by protection", "p99"},
       {"Goodput (completed/s, measured arrivals)", "goodput"},
       {"Throughput incl. degraded (settled/s)", "throughput"},
       {"Requests shed (BUSY give-up + admission)", "requests_shed"},
       {"Requests expired (deadline)", "requests_expired"},
       {"Wasted service (ms past expiry)", "wasted_ms"}});
}
