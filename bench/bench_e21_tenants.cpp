// E21 (extension) — Multi-tenant fairness: does DAS protect a small tenant?
// N tenants share one cluster (equal keyspace slices, arrival rate split by
// share); the question is how the per-tenant mean RCTs spread — summarised
// by the Jain index over tenant means (1.0 = perfectly even) — under three
// tenant mixes:
//
//   uniform      four identical YCSB-B tenants: the fairness control. Any
//                policy should land near J = 1.
//   one-heavy    three small YCSB-B tenants next to one write-heavy,
//                hot-keyed YCSB-A tenant with 5x the arrival share: the noisy
//                neighbour. Request-level scheduling (REIN/DAS) orders ops by
//                request metadata, not tenant identity, so protection is
//                indirect — shorter queues help everyone, but nothing stops
//                the heavy tenant's ops from crowding a hot server.
//   drift-storm  a steady YCSB-B tenant next to a skewed tenant whose
//                popularity rotates every 20ms and which aims 60% of its
//                keys at a 4-key hot set for half the measurement window:
//                fairness under a popularity regime change.
//
// Expectation: DAS compresses everyone's RCT (its usual gain) and lifts J
// somewhat in one-heavy/drift-storm via shorter queues at the hot servers —
// but it is NOT a fairness scheduler, and the honest reading of this table
// is how much unfairness remains (see EXPERIMENTS.md E21).
#include "bench_common.hpp"
#include "workload/registry.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.zipf_theta = 0.9;
  // Skewed tenants need the exact hottest-server calibration: at theta 0.9
  // the average-capacity rate would push the hottest server past 1.0 and
  // every arm would just measure saturation.
  cfg.load_calibration = das::core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.85;
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};

  struct Scenario {
    const char* label;
    const char* tenants;
  };
  // Storm/drift times are µs into the run; the 80–150ms storm sits inside
  // the 30ms-warmup + 200ms measurement window.
  const Scenario scenarios[] = {
      {"uniform",
       "ycsb-b+name:t0;ycsb-b+name:t1;ycsb-b+name:t2;ycsb-b+name:t3"},
      {"one-heavy",
       "ycsb-b+name:small0;ycsb-b+name:small1;ycsb-b+name:small2;"
       "ycsb-a+zipf:1.1+share:5+name:heavy"},
      {"drift-storm",
       "ycsb-b+name:steady;"
       "ycsb-b+zipf:1.1+drift:20000:13+storm:80000:150000:4:0.6:7+name:bursty"},
  };
  for (const Scenario& scenario : scenarios) {
    cfg.tenants = das::workload::parse_tenants(scenario.tenants);
    dasbench::register_point("E21_tenants", scenario.label, cfg, window,
                             policies);
  }
  return dasbench::bench_main(
      argc, argv, "E21_tenants",
      {{"Mean RCT by tenant mix", "mean"},
       {"p99 RCT by tenant mix", "p99"},
       {"Jain fairness over per-tenant mean RCT", "jain"}});
}
