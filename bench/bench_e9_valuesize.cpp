// E9 — Mean RCT across value-size distributions with matched means. Size
// variance is SJF's only signal; request-aware policies exploit it through
// the demand tags. Per-op overhead is reduced so transfer time dominates.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.per_op_overhead_us = 5.0;
  const auto window = dasbench::eval_window();
  const std::vector<std::pair<std::string, das::RealDistPtr>> families = {
      {"fixed385B", das::make_constant(385.0)},
      {"uniform10-760B", das::make_uniform_real(10.0, 760.0)},
      {"etc_pareto", das::make_generalized_pareto(1.0, 250.0, 0.35, 64 * 1024.0)},
      {"lognormal_s1.5", das::make_lognormal_mean(385.0, 1.5)},
  };
  for (const auto& [name, sizes] : families) {
    cfg.value_size_bytes = sizes;
    dasbench::register_point("E9_valuesize", name, cfg, window,
                             dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E9_valuesize",
                              {{"Mean RCT by value-size family", "mean"},
                               {"p99 RCT by value-size family", "p99"}});
}
