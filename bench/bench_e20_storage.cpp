// E20 (extension) — Storage-aware service times: scheduling × the LSM store
// model. The tentpole question: when service capacity dips under background
// compaction and writes stall behind compaction debt, do the feedback-driven
// policies (REIN-SBF, DAS) still beat FCFS — and by how much more than the
// synthetic model suggests? Three arms per load:
//
//   store=synthetic   the paper's flat service model (baseline);
//   store=lsm         full interference: compaction capacity dips + stalls;
//   store=lsm-quiet   the control — the same LSM cost structure (memtable
//                     hits, level walks) with interference disabled, so the
//                     lsm-vs-quiet delta isolates compaction/stall pain.
//
// A 30% write fraction feeds the memtables; the memtable/stall knobs are
// scaled down from production defaults so several compaction cycles fit in
// the 200ms window. Expectation: mu_hat absorbs the dips, so DAS sheds load
// off compacting servers while FCFS queues behind them — the DAS-vs-FCFS
// gain should widen in the lsm arm and revert toward baseline in lsm-quiet.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.replication = 2;
  cfg.replica_selection = das::core::ReplicaSelection::kLeastDelay;
  cfg.load_calibration = das::core::LoadCalibration::kAverageCapacity;
  cfg.write_fraction = 0.3;
  // Simulation-scale LSM: ~tens of flushes and several compaction windows
  // per server inside the measurement window.
  cfg.lsm.memtable_bytes = 16.0 * 1024.0;
  cfg.lsm.compaction_bytes_per_us = 4.0;
  cfg.lsm.stall_debt_bytes = 64.0 * 1024.0;
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};

  struct Arm {
    const char* label;
    das::core::StoreModel model;
    bool interference;
  };
  const Arm arms[] = {
      {"synthetic", das::core::StoreModel::kSynthetic, true},
      {"lsm", das::core::StoreModel::kLsm, true},
      {"lsm-quiet", das::core::StoreModel::kLsm, false},
  };

  for (const double load : {0.5, 0.8}) {
    cfg.target_load = load;
    for (const Arm& arm : arms) {
      cfg.store_model = arm.model;
      cfg.lsm.interference = arm.interference;
      dasbench::register_point(
          "E20_storage",
          std::string("store=") + arm.label +
              "/load=" + (load == 0.5 ? "0.5" : "0.8"),
          cfg, window, policies);
    }
  }
  return dasbench::bench_main(argc, argv, "E20_storage",
                              {{"Mean RCT by store model", "mean"},
                               {"p99 RCT by store model", "p99"},
                               {"Max server utilisation", "max_util"}});
}
