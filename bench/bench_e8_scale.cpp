// E8 — Mean RCT vs cluster size at constant per-server load. DAS is fully
// distributed (all state rides on messages), so its gain should be flat in
// the number of servers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  auto window = dasbench::eval_window();
  window.measure_us = 120.0 * das::kMillisecond;  // larger clusters, same events
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    cfg.num_servers = n;
    cfg.num_clients = std::max<std::size_t>(4, n / 8);
    dasbench::register_point("E8_scale", "servers=" + std::to_string(n), cfg, window,
                             dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E8_scale",
                              {{"Mean RCT vs cluster size", "mean"}});
}
