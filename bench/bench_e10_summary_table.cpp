// E10 — The paper's headline summary table: every policy at the default
// operating point (load 0.7, geometric fan-out, ETC sizes), mean/median and
// tail percentiles plus coordination-overhead accounting.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs,    das::sched::Policy::kRandom,
      das::sched::Policy::kSjf,     das::sched::Policy::kEdf,
      das::sched::Policy::kReqSrpt, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas,
  };
  dasbench::register_point("E10_summary", "load=0.7", cfg, window, policies);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Custom wide table: one row per policy.
  das::Table table{{"policy", "mean", "p50", "p95", "p99", "p999", "vs fcfs",
                    "util", "progress msgs"}};
  const auto& rows = dasbench::Collector::instance().rows();
  double fcfs_mean = 0;
  for (const auto& row : rows)
    if (row.policy == das::sched::Policy::kFcfs) fcfs_mean = row.result.rct.mean;
  for (const auto& row : rows) {
    const auto& r = row.result;
    table.add_row({das::sched::to_string(row.policy), das::Table::fmt(r.rct.mean, 1),
                   das::Table::fmt(r.rct.p50, 1), das::Table::fmt(r.rct.p95, 1),
                   das::Table::fmt(r.rct.p99, 1), das::Table::fmt(r.rct.p999, 1),
                   das::Table::fmt_percent(1.0 - r.rct.mean / fcfs_mean),
                   das::Table::fmt(r.mean_server_utilization, 3),
                   std::to_string(r.progress_messages)});
  }
  std::cout << "\n### E10 — Summary at load 0.7 (RCT in us)\n\n";
  table.print(std::cout);
  return 0;
}
