// E2 — Tail (p99) request completion time vs system load. SRPT-style
// policies trade a little tail for a lot of mean; the aging bound keeps the
// DAS tail close to FCFS.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  for (const double load : {0.5, 0.7, 0.9}) {
    cfg.target_load = load;
    dasbench::register_point("E2_load_tail", "load=" + das::Table::fmt(load, 1), cfg,
                             window, dasbench::headline_policies());
  }
  return dasbench::bench_main(
      argc, argv, "E2_load_tail",
      {{"p99 RCT vs load", "p99"}, {"p999 RCT vs load", "p999"}});
}
