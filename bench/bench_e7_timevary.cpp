// E7 — Time-varying server performance and load (the "adaptive" claim).
// Part A: every server's speed follows an independent two-state Markov
// fluctuation (fast 1.0 / slow 0.4). Part B: sinusoidal arrival-rate swing.
// DAS's estimators track both; DAS-NA (adaptivity off) loses the gain.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs,     das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas,      das::sched::Policy::kDasNoAdapt,
      das::sched::Policy::kDasNoDefer,
  };

  {
    auto cfg = dasbench::eval_config();
    cfg.load_calibration = das::core::LoadCalibration::kHottestServer;
    cfg.target_load = 0.75;
    for (const double dwell_ms : {2.0, 10.0, 50.0}) {
      cfg.speed_profiles.clear();
      for (std::size_t s = 0; s < cfg.num_servers; ++s) {
        cfg.speed_profiles.push_back(das::workload::make_markov_two_state(
            1.0, 0.4, dwell_ms * das::kMillisecond, dwell_ms * das::kMillisecond,
            window.horizon(), 0xD1CE + s));
      }
      dasbench::register_point("E7_timevary",
                               "speed_dwell=" + das::Table::fmt(dwell_ms, 0) + "ms",
                               cfg, window, policies);
    }
  }
  {
    auto cfg = dasbench::eval_config();
    cfg.target_load = 0.6;  // swings up to ~0.9 at the sinusoid peak
    cfg.load_profile =
        das::workload::make_sinusoidal_rate(1.0, 0.5, 50.0 * das::kMillisecond);
    dasbench::register_point("E7_timevary", "sinusoidal_load", cfg, window,
                             policies);
  }
  return dasbench::bench_main(argc, argv, "E7_timevary",
                              {{"Mean RCT under time-varying conditions", "mean"},
                               {"p99 RCT under time-varying conditions", "p99"}});
}
