// E6 — Mean RCT vs fraction of half-speed straggler servers. Rein's
// size-based bottleneck ranking cannot see that a server is slow; DAS's
// adaptive per-server speed estimates can (compare das vs das-na).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.load_calibration = das::core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.75;
  const auto window = dasbench::eval_window();

  auto policies = dasbench::headline_policies();
  policies.push_back(das::sched::Policy::kDasNoAdapt);

  for (const int slow_pct : {0, 12, 25, 50}) {
    cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
    const std::size_t slow =
        cfg.num_servers * static_cast<std::size_t>(slow_pct) / 100;
    for (std::size_t i = 0; i < slow; ++i) cfg.server_speed_factors[i] = 0.5;
    dasbench::register_point("E6_hetero", "slow=" + std::to_string(slow_pct) + "%",
                             cfg, window, policies);
  }
  return dasbench::bench_main(argc, argv, "E6_hetero",
                              {{"Mean RCT vs straggler fraction", "mean"},
                               {"p99 RCT vs straggler fraction", "p99"}});
}
