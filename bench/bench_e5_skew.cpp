// E5 — Mean RCT vs key-popularity skew (Zipf theta). Load is calibrated to
// the HOTTEST server so every point stays stable; higher skew concentrates
// queueing on hot servers, where scheduling matters most.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.load_calibration = das::core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.75;
  const auto window = dasbench::eval_window();
  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.2}) {
    cfg.zipf_theta = theta;
    dasbench::register_point("E5_skew", "theta=" + das::Table::fmt(theta, 2), cfg,
                             window, dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E5_skew",
                              {{"Mean RCT vs key skew (hottest-server load 0.75)",
                                "mean"},
                               {"Mean server utilisation (load concentrates)",
                                "util"}});
}
