// E12 — Scheduling overhead: per-operation decision cost of each policy as
// a function of queue depth, the cost of a progress update, and the
// per-operation metadata footprint. Supports the paper's claim that DAS's
// distributed coordination is cheap enough for a production datapath.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/wire.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace das;

sched::OpContext make_op(OperationId id, Rng& rng, SimTime now) {
  sched::OpContext op;
  op.op_id = id;
  op.request_id = id / 4;  // a few ops per request
  op.demand_us = rng.uniform(1, 60);
  op.total_demand_us = rng.uniform(10, 400);
  op.remaining_critical_us = rng.uniform(1, 100);
  op.est_other_completion = rng.chance(0.4) ? now + rng.uniform(0, 3000) : 0;
  op.bottleneck_ops = static_cast<std::uint32_t>(1 + rng.next_below(8));
  op.bottleneck_demand_us = rng.uniform(1, 200);
  op.deadline = now + rng.uniform(100, 10000);
  op.request_arrival = now;
  return op;
}

// Steady-state churn: hold the queue at `depth`, measure one
// enqueue+dequeue round trip.
void BM_EnqueueDequeue(benchmark::State& state) {
  const auto policy = static_cast<sched::Policy>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  sched::SchedulerPtr s = sched::make_scheduler(policy);
  Rng rng{42};
  SimTime now = 0;
  OperationId id = 0;
  for (std::size_t i = 0; i < depth; ++i) s->enqueue(make_op(id++, rng, now), now);
  for (auto _ : state) {
    now += 1.0;
    s->enqueue(make_op(id++, rng, now), now);
    benchmark::DoNotOptimize(s->dequeue(now));
  }
  state.SetLabel(sched::to_string(policy) + "/depth=" + std::to_string(depth));
}

// Progress-update cost at depth (feedback-driven policies only).
void BM_ProgressUpdate(benchmark::State& state) {
  const auto policy = static_cast<sched::Policy>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  sched::SchedulerPtr s = sched::make_scheduler(policy);
  Rng rng{43};
  SimTime now = 0;
  for (OperationId id = 0; id < depth; ++id) s->enqueue(make_op(id, rng, now), now);
  RequestId req = 0;
  for (auto _ : state) {
    now += 1.0;
    sched::ProgressUpdate update;
    update.remaining_critical_us = rng.uniform(1, 100);
    update.est_other_completion = rng.chance(0.5) ? now + rng.uniform(0, 3000) : 0;
    update.remaining_total_us = rng.uniform(10, 400);
    s->on_request_progress(req, update, now);
    req = (req + 1) % (depth / 4 + 1);
  }
  state.SetLabel(sched::to_string(policy) + "/depth=" + std::to_string(depth));
}

void register_benches() {
  const std::vector<sched::Policy> policies = {
      sched::Policy::kFcfs,    sched::Policy::kSjf,
      sched::Policy::kReqSrpt, sched::Policy::kReinSbf,
      sched::Policy::kDas,
  };
  for (const sched::Policy p : policies) {
    for (const std::int64_t depth : {16, 256, 4096}) {
      benchmark::RegisterBenchmark("E12/enqueue_dequeue", BM_EnqueueDequeue)
          ->Args({static_cast<std::int64_t>(p), depth});
    }
  }
  for (const sched::Policy p :
       {sched::Policy::kReqSrpt, sched::Policy::kDas}) {
    for (const std::int64_t depth : {16, 256, 4096}) {
      benchmark::RegisterBenchmark("E12/progress_update", BM_ProgressUpdate)
          ->Args({static_cast<std::int64_t>(p), depth});
    }
  }
}

// Wire-level message costs, measured from the actual protocol encoders
// (core/wire.hpp), plus the per-policy scheduling fields each policy reads
// out of the shared OpContext envelope.
void print_metadata_table() {
  Rng rng{4242};
  SimTime now = 0;
  const sched::OpContext op = make_op(1, rng, now);
  core::OpResponse resp;
  resp.hit = true;
  resp.value_size = 0;

  das::Table table{{"message", "wire bytes", "notes"}};
  table.add_row({"op request", std::to_string(core::wire::op_wire_size(op)),
                 "full tag envelope incl. Fletcher-32 trailer"});
  table.add_row({"op response (header)",
                 std::to_string(core::wire::response_wire_size(resp)),
                 "plus value payload for read hits"});
  table.add_row({"progress update",
                 std::to_string(core::wire::progress_wire_size()),
                 "per (request, still-pending server) on sibling completion"});
  std::cout << "\n### E12 — Protocol message sizes (measured from encoders)\n\n";
  table.print(std::cout);

  das::Table fields{{"policy", "scheduling fields read", "bytes of envelope used"}};
  fields.add_row({"fcfs", "(arrival order only)", "0"});
  fields.add_row({"sjf", "demand", "8"});
  fields.add_row({"edf", "deadline", "8"});
  fields.add_row({"req-srpt", "request id + total remaining", "16"});
  fields.add_row({"rein-sbf", "request id + bottleneck (ops, demand)", "20"});
  fields.add_row({"das",
                  "request id + total remaining + critical + other-completion",
                  "32"});
  std::cout << "\n### E12 — Per-policy use of the tag envelope\n\n";
  fields.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_metadata_table();
  return 0;
}
