// E17 (extension) — Read/write mix. Writes are single-key write-all PUTs
// (R=2 here), reads are multigets. Write ops enter the same per-server
// queues, so the schedulers order them too; the question is whether the
// multiget RCT gain survives write traffic in the queues.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.ring_vnodes = 128;
  cfg.replication = 2;
  const auto window = dasbench::eval_window();
  for (const double w : {0.0, 0.05, 0.2, 0.5}) {
    cfg.write_fraction = w;
    dasbench::register_point("E17_write_mix",
                             "writes=" + das::Table::fmt(w * 100, 0) + "%", cfg,
                             window, dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E17_write_mix",
                              {{"Mean RCT vs write fraction", "mean"},
                               {"p99 RCT vs write fraction", "p99"}});
}
