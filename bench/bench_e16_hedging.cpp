// E16 (extension) — Hedged reads vs scheduling: two tail-cutting techniques
// compared and composed. A cluster with 25% half-speed stragglers and R=2:
// hedging duplicates slow ops to the other replica, DAS re-orders queues.
// The interesting question is whether they are substitutes or complements.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.ring_vnodes = 128;
  cfg.replication = 2;
  cfg.replica_selection = das::core::ReplicaSelection::kPrimary;
  cfg.load_calibration = das::core::LoadCalibration::kHottestServer;
  cfg.target_load = 0.7;
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  for (std::size_t i = 0; i < cfg.num_servers / 4; ++i)
    cfg.server_speed_factors[i] = 0.5;

  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {das::sched::Policy::kFcfs,
                                                    das::sched::Policy::kDas};
  for (const double hedge_ms : {0.0, 0.2, 0.5, 2.0}) {
    cfg.hedge_delay_us = hedge_ms * das::kMillisecond;
    const std::string point =
        hedge_ms == 0 ? "no-hedge" : "hedge=" + das::Table::fmt(hedge_ms, 1) + "ms";
    dasbench::register_point("E16_hedging", point, cfg, window, policies);
  }
  return dasbench::bench_main(argc, argv, "E16_hedging",
                              {{"Mean RCT with hedged reads", "mean"},
                               {"p99 RCT with hedged reads", "p99"},
                               {"p999 RCT with hedged reads", "p999"}});
}
