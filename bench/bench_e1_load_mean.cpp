// E1 — Mean request completion time vs system load (the paper's headline
// figure). DAS should sit 15-50% below FCFS and below Rein-SBF throughout.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  for (const double load : {0.3, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    cfg.target_load = load;
    dasbench::register_point("E1_load_mean", "load=" + das::Table::fmt(load, 1), cfg,
                             window, dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E1_load_mean",
                              {{"Mean RCT vs load", "mean"}});
}
