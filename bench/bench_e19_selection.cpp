// E19 (extension) — Replica selection × scheduling, the full cross. PR 7's
// pluggable selector layer makes replica selection a first-class policy axis;
// this grid runs all five modes (primary / random / least-delay / tars /
// power-of-d) against {FCFS, REIN-SBF, DAS} at a moderate and a high load.
// The interesting question is interaction, not either axis alone: the
// view-driven selectors (least-delay, tars, power-of-d) feed off the same
// piggybacked d_hat/mu_hat feedback DAS uses for tagging, so their gains
// should compound with DAS and shrink under feedback-free FCFS. Skewed
// popularity plus a straggler replica gives both axes something to exploit.
#include "bench_common.hpp"
#include "select/selector.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.zipf_theta = 0.9;
  cfg.replication = 2;
  // Average-capacity calibration keeps the arrival rate identical across
  // selection modes at a given load (it depends only on total demand), so
  // the rows are comparable; the hottest-server model would re-derive a
  // different rate for primary vs the spreading modes.
  cfg.load_calibration = das::core::LoadCalibration::kAverageCapacity;
  // One half-speed straggler: selection has to learn around it.
  cfg.server_speed_factors.assign(cfg.num_servers, 1.0);
  cfg.server_speed_factors[3] = 0.5;
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs, das::sched::Policy::kReinSbf,
      das::sched::Policy::kDas};

  for (const double load : {0.5, 0.8}) {
    cfg.target_load = load;
    for (const das::select::Mode mode : das::select::all_modes()) {
      cfg.replica_selection = mode;
      dasbench::register_point(
          "E19_selection",
          std::string("sel=") + das::select::to_string(mode) +
              "/load=" + (load == 0.5 ? "0.5" : "0.8"),
          cfg, window, policies);
    }
  }
  return dasbench::bench_main(argc, argv, "E19_selection",
                              {{"Mean RCT by selection mode", "mean"},
                               {"p99 RCT by selection mode", "p99"},
                               {"Max server utilisation", "max_util"}});
}
