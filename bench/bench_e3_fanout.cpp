// E3 — Mean RCT vs multiget fan-out (fixed k per request) at load 0.7.
// The fork-join penalty grows with k; request-aware policies claw it back.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    cfg.fanout = das::make_fixed_int(k);
    dasbench::register_point("E3_fanout", "k=" + std::to_string(k), cfg, window,
                             dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E3_fanout",
                              {{"Mean RCT vs fan-out", "mean"}});
}
