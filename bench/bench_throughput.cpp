// bench_throughput — raw engine throughput (events/sec), the perf trajectory.
//
//   ./build/bench/bench_throughput                      # print the table
//   ./build/bench/bench_throughput --json=BENCH_PERF.json
//   ./build/bench/bench_throughput --scale=0.2          # CI smoke size
//
// Unlike the bench_e* binaries (which measure the SIMULATED system via
// google-benchmark), this measures the SIMULATOR itself: how many events per
// wall-clock second the engine dispatches under four fixed workloads (timer
// ring, cancel-heavy, network streaming, full cluster). CI's perf-smoke job
// runs it at a reduced scale, validates the JSON against the schema and
// gates on events/sec regressions versus bench/perf_baseline.json.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/perf.hpp"

int main(int argc, char** argv) {
  using namespace das;

  Flags flags;
  flags.define("scale", "1",
               "event-budget multiplier for every workload (CI uses < 1)");
  flags.define("engine-only", "false",
               "skip the two full-cluster points (microbenches only)");
  flags.define("json", "", "write results as BENCH_PERF-schema JSON here");
  flags.define("help", "false", "show this help");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::cerr << error << "\n\n";
    flags.print_help(std::cerr, "bench_throughput");
    return 2;
  }
  if (flags.get_bool("help")) {
    flags.print_help(std::cout, "bench_throughput");
    return 0;
  }

  core::PerfOptions options;
  options.scale = flags.get_double("scale");
  options.engine_only = flags.get_bool("engine-only");
  if (options.scale <= 0) {
    std::cerr << "--scale must be positive\n";
    return 2;
  }

  const std::vector<core::PerfPoint> points = core::run_perf_suite(options);

  Table table{{"point", "events", "wall (s)", "events/sec", "sim time (ms)"}};
  for (const core::PerfPoint& p : points) {
    table.add_row({p.point, std::to_string(p.events),
                   Table::fmt(p.wall_seconds, 3),
                   Table::fmt(p.events_per_sec, 0),
                   Table::fmt(p.sim_time_us / 1000.0, 1)});
  }
  std::cout << "== engine throughput (scale " << options.scale << ") ==\n";
  table.print(std::cout);

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    core::write_perf_json(json_path, "perf_throughput", points);
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
