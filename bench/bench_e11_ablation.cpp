// E11 — Ablation study over load: which DAS mechanism buys what. das-na
// (no adaptivity), das-nd (no LRPT-last deferral), das-noaging (no
// starvation bound), das-crit (critical-path key instead of total
// remaining); req-srpt shown as the bare-SRPT reference.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {
      das::sched::Policy::kFcfs,       das::sched::Policy::kDas,
      das::sched::Policy::kDasNoAdapt, das::sched::Policy::kDasNoDefer,
      das::sched::Policy::kDasNoAging, das::sched::Policy::kDasCritical,
      das::sched::Policy::kReqSrpt,
  };
  for (const double load : {0.5, 0.7, 0.85}) {
    cfg.target_load = load;
    dasbench::register_point("E11_ablation", "load=" + das::Table::fmt(load, 2), cfg,
                             window, policies);
  }
  return dasbench::bench_main(
      argc, argv, "E11_ablation",
      {{"Ablations — mean RCT", "mean"},
       {"Ablations — p99 RCT", "p99"},
       {"Ablations — progress messages", "progress_msgs"},
       {"Ablations — ops deferred (LRPT-last activations)", "ops_deferred"},
       {"Ablations — ops aged (starvation-bound activations)", "ops_aged"},
       {"Ablations — reranks applied (progress re-keying)", "reranks"},
       {"Ablations — mean deferred wait (us, RCT breakdown)",
        "bd_deferred_wait"}});
}
