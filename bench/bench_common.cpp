#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>

#include "common/table.hpp"

namespace dasbench {

using namespace das;

core::ClusterConfig eval_config() {
  core::ClusterConfig cfg;
  cfg.num_servers = 32;
  cfg.num_clients = 8;
  cfg.keys_per_server = 1000;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = core::LoadCalibration::kAverageCapacity;
  cfg.fanout = make_geometric(0.125, 128);  // mean 8, heavy tail
  cfg.target_load = 0.7;
  cfg.seed = 20260705;
  return cfg;
}

core::RunWindow eval_window() {
  core::RunWindow w;
  w.warmup_us = 30.0 * kMillisecond;
  w.measure_us = 200.0 * kMillisecond;
  return w;
}

const std::vector<sched::Policy>& headline_policies() {
  static const std::vector<sched::Policy> kSet = {
      sched::Policy::kFcfs,    sched::Policy::kSjf,
      sched::Policy::kReqSrpt, sched::Policy::kReinSbf,
      sched::Policy::kDas,
  };
  return kSet;
}

Collector& Collector::instance() {
  static Collector collector;
  return collector;
}

namespace {

std::string memo_key(const std::string& experiment, const std::string& point,
                     sched::Policy policy) {
  return experiment + '|' + point + '|' + sched::to_string(policy);
}

}  // namespace

const core::ExperimentResult* Collector::insert_locked(const std::string& key,
                                                       Row row) {
  // Caller holds mutex_. Keeps first-computed order; duplicate keys keep the
  // original row (results for the same coordinates are identical anyway).
  const auto [it, inserted] = index_.emplace(key, rows_.size());
  if (inserted) rows_.push_back(std::move(row));
  return &rows_[it->second].result;
}

const core::ExperimentResult& Collector::run(const std::string& experiment,
                                             const std::string& point,
                                             sched::Policy policy,
                                             const core::ClusterConfig& cfg,
                                             const core::RunWindow& window) {
  const std::string key = memo_key(experiment, point, policy);
  {
    const das::MutexLock lock{mutex_};
    const auto it = index_.find(key);
    if (it != index_.end()) return rows_[it->second].result;
  }

  // Simulate outside the lock so concurrent cache misses for different
  // points do not serialize; a racing duplicate of the SAME point computes
  // an identical result and insert_locked keeps whichever landed first.
  core::ClusterConfig run_cfg = cfg;
  run_cfg.policy = policy;
  Row row;
  row.experiment = experiment;
  row.point = point;
  row.policy = policy;
  row.seed = run_cfg.seed;
  row.result = core::run_experiment(run_cfg, window);

  const das::MutexLock lock{mutex_};
  return *insert_locked(key, std::move(row));
}

void Collector::insert(const std::string& experiment, const std::string& point,
                       sched::Policy policy, std::uint64_t seed,
                       const core::ExperimentResult& result) {
  Row row;
  row.experiment = experiment;
  row.point = point;
  row.policy = policy;
  row.seed = seed;
  row.result = result;
  const das::MutexLock lock{mutex_};
  insert_locked(memo_key(experiment, point, policy), std::move(row));
}

std::deque<Row> Collector::rows() const {
  const das::MutexLock lock{mutex_};
  return rows_;
}

std::vector<core::SweepOutcome> Collector::outcomes(
    const std::string& experiment) const {
  const das::MutexLock lock{mutex_};
  std::vector<core::SweepOutcome> out;
  for (const Row& row : rows_) {
    if (row.experiment != experiment) continue;
    core::SweepOutcome o;
    o.experiment = row.experiment;
    o.point = row.point;
    o.policy = row.policy;
    o.seed = row.seed;
    o.result = row.result;
    out.push_back(std::move(o));
  }
  return out;
}

double Collector::metric_value(const core::ExperimentResult& r,
                               const std::string& metric) const {
  if (metric == "mean") return r.rct.mean;
  if (metric == "p50") return r.rct.p50;
  if (metric == "p95") return r.rct.p95;
  if (metric == "p99") return r.rct.p99;
  if (metric == "p999") return r.rct.p999;
  if (metric == "op_mean") return r.op_latency.mean;
  if (metric == "util") return r.mean_server_utilization;
  if (metric == "max_util") return r.max_server_utilization;
  if (metric == "progress_msgs") return static_cast<double>(r.progress_messages);
  if (metric == "net_msgs") return static_cast<double>(r.net_messages);
  if (metric == "ops_deferred") return static_cast<double>(r.ops_deferred);
  if (metric == "ops_resumed") return static_cast<double>(r.ops_resumed);
  if (metric == "ops_aged") return static_cast<double>(r.ops_aged);
  if (metric == "reranks") return static_cast<double>(r.reranks_applied);
  if (metric == "bd_deferred_wait") return r.breakdown.mean_deferred_wait_us;
  if (metric == "bd_runnable_wait") return r.breakdown.mean_runnable_wait_us;
  if (metric == "availability") return r.availability;
  if (metric == "requests_failed") return static_cast<double>(r.requests_failed);
  if (metric == "failover_ok")
    return static_cast<double>(r.requests_completed_after_failover);
  if (metric == "ops_failed_over") return static_cast<double>(r.ops_failed_over);
  if (metric == "jain") return r.jain_fairness;
  if (metric == "goodput") return r.goodput_rps;
  if (metric == "throughput") return r.throughput_rps;
  if (metric == "requests_shed") return static_cast<double>(r.requests_shed);
  if (metric == "requests_expired")
    return static_cast<double>(r.requests_expired);
  if (metric == "wasted_ms") return r.wasted_service_us / 1e3;
  DAS_CHECK_MSG(false, "unknown metric: " + metric);
  return 0;
}

void Collector::print_table(std::ostream& os, const std::string& experiment,
                            const std::string& metric) const {
  const das::MutexLock lock{mutex_};
  // Column order: policies in first-seen order; rows: points in first-seen
  // order. Adds a "DAS vs FCFS" gain column when both are present.
  std::vector<std::string> points;
  std::vector<sched::Policy> policies;
  for (const Row& row : rows_) {
    if (row.experiment != experiment) continue;
    if (std::find(points.begin(), points.end(), row.point) == points.end())
      points.push_back(row.point);
    if (std::find(policies.begin(), policies.end(), row.policy) == policies.end())
      policies.push_back(row.policy);
  }
  if (points.empty()) return;

  const auto find_result =
      [&](const std::string& point,
          sched::Policy policy) -> const core::ExperimentResult* {
    for (const Row& row : rows_) {
      if (row.experiment == experiment && row.point == point && row.policy == policy)
        return &row.result;
    }
    return nullptr;
  };

  const bool has_fcfs = std::find(policies.begin(), policies.end(),
                                  sched::Policy::kFcfs) != policies.end();
  const bool has_das =
      std::find(policies.begin(), policies.end(), sched::Policy::kDas) !=
      policies.end();

  std::vector<std::string> headers{"point"};
  for (const sched::Policy p : policies) headers.push_back(sched::to_string(p));
  if (has_fcfs && has_das) headers.push_back("das vs fcfs");

  // Dimensionless ratio metrics read better with full precision than the
  // one-decimal µs default.
  const int precision =
      metric == "jain" || metric == "availability" ? 4 : 1;
  Table table{headers};
  for (const std::string& point : points) {
    std::vector<std::string> cells{point};
    for (const sched::Policy p : policies) {
      const core::ExperimentResult* r = find_result(point, p);
      cells.push_back(r ? Table::fmt(metric_value(*r, metric), precision) : "-");
    }
    if (has_fcfs && has_das) {
      const core::ExperimentResult* fcfs = find_result(point, sched::Policy::kFcfs);
      const core::ExperimentResult* its_das = find_result(point, sched::Policy::kDas);
      if (fcfs && its_das && metric_value(*fcfs, metric) > 0) {
        cells.push_back(Table::fmt_percent(
            1.0 - metric_value(*its_das, metric) / metric_value(*fcfs, metric)));
      } else {
        cells.push_back("-");
      }
    }
    table.add_row(std::move(cells));
  }
  os << "== " << experiment << " — RCT " << metric << " (us) ==\n";
  table.print(os);
  os << '\n';
}

namespace {

std::vector<core::SweepPoint>& mutable_registered_points() {
  static std::vector<core::SweepPoint> points;
  return points;
}

}  // namespace

const std::vector<core::SweepPoint>& registered_points() {
  return mutable_registered_points();
}

void register_point(const std::string& experiment, const std::string& point,
                    const core::ClusterConfig& cfg, const core::RunWindow& window,
                    const std::vector<sched::Policy>& policies) {
  for (const sched::Policy policy : policies) {
    core::SweepPoint sweep_point;
    sweep_point.experiment = experiment;
    sweep_point.point = point;
    sweep_point.policy = policy;
    sweep_point.config = cfg;
    sweep_point.window = window;
    mutable_registered_points().push_back(std::move(sweep_point));
    const std::string name =
        experiment + "/" + point + "/" + sched::to_string(policy);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [experiment, point, policy, cfg, window](benchmark::State& state) {
          const core::ExperimentResult* result = nullptr;
          for (auto _ : state) {
            result = &Collector::instance().run(experiment, point, policy, cfg,
                                                window);
          }
          state.counters["mean_rct_us"] = result->rct.mean;
          state.counters["p99_rct_us"] = result->rct.p99;
          state.counters["util"] = result->mean_server_utilization;
          if (policy != sched::Policy::kFcfs) {
            const auto& fcfs = Collector::instance().run(
                experiment, point, sched::Policy::kFcfs, cfg, window);
            state.counters["gain_vs_fcfs_pct"] =
                100.0 * (1.0 - result->rct.mean / fcfs.rct.mean);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

namespace {

/// Strips one "--name=value" argument from argv; returns the value of the
/// last occurrence, or `fallback` when absent.
std::string strip_arg(int& argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  std::string value = fallback;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return value;
}

}  // namespace

int bench_main(int argc, char** argv, const std::string& experiment,
               const std::vector<std::pair<std::string, std::string>>& metrics) {
  const std::string jobs_arg = strip_arg(argc, argv, "das_jobs", "1");
  const std::string json_arg =
      strip_arg(argc, argv, "das_json", "BENCH_" + experiment + ".json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const long jobs_flag = std::strtol(jobs_arg.c_str(), nullptr, 10);
  const std::size_t jobs = jobs_flag <= 0 ? core::SweepRunner::default_jobs()
                                          : static_cast<std::size_t>(jobs_flag);
  if (jobs > 1) {
    // Pre-compute the whole registered grid in parallel; the benchmark
    // entries below then run against the warm memo cache. Merging in
    // registration order keeps rows (and so tables and JSON) bit-identical
    // to the serial path.
    core::SweepRunner runner;
    for (const core::SweepPoint& p : registered_points()) runner.add(p);
    for (const core::SweepOutcome& o : runner.run(jobs))
      Collector::instance().insert(o.experiment, o.point, o.policy, o.seed,
                                   o.result);
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const auto& [heading, metric] : metrics) {
    std::cout << "\n### " << heading << "\n\n";
    Collector::instance().print_table(std::cout, experiment, metric);
  }
  if (json_arg != "off" && !json_arg.empty()) {
    core::write_bench_json(json_arg, experiment,
                           Collector::instance().outcomes(experiment));
    std::cout << "wrote " << json_arg << "\n";
  }
  return 0;
}

}  // namespace dasbench
