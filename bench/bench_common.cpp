#include "bench_common.hpp"

#include <algorithm>
#include <iostream>
#include <set>

#include "common/table.hpp"

namespace dasbench {

using namespace das;

core::ClusterConfig eval_config() {
  core::ClusterConfig cfg;
  cfg.num_servers = 32;
  cfg.num_clients = 8;
  cfg.keys_per_server = 1000;
  cfg.zipf_theta = 0.0;
  cfg.load_calibration = core::LoadCalibration::kAverageCapacity;
  cfg.fanout = make_geometric(0.125, 128);  // mean 8, heavy tail
  cfg.target_load = 0.7;
  cfg.seed = 20260705;
  return cfg;
}

core::RunWindow eval_window() {
  core::RunWindow w;
  w.warmup_us = 30.0 * kMillisecond;
  w.measure_us = 200.0 * kMillisecond;
  return w;
}

const std::vector<sched::Policy>& headline_policies() {
  static const std::vector<sched::Policy> kSet = {
      sched::Policy::kFcfs,    sched::Policy::kSjf,
      sched::Policy::kReqSrpt, sched::Policy::kReinSbf,
      sched::Policy::kDas,
  };
  return kSet;
}

Collector& Collector::instance() {
  static Collector collector;
  return collector;
}

const core::ExperimentResult& Collector::run(const std::string& experiment,
                                             const std::string& point,
                                             sched::Policy policy,
                                             const core::ClusterConfig& cfg,
                                             const core::RunWindow& window) {
  const std::string key = experiment + '|' + point + '|' + sched::to_string(policy);
  const auto it = index_.find(key);
  if (it != index_.end()) return rows_[it->second].result;

  core::ClusterConfig run_cfg = cfg;
  run_cfg.policy = policy;
  Row row;
  row.experiment = experiment;
  row.point = point;
  row.policy = policy;
  row.result = core::run_experiment(run_cfg, window);
  index_.emplace(key, rows_.size());
  rows_.push_back(std::move(row));
  return rows_.back().result;
}

double Collector::metric_value(const core::ExperimentResult& r,
                               const std::string& metric) const {
  if (metric == "mean") return r.rct.mean;
  if (metric == "p50") return r.rct.p50;
  if (metric == "p95") return r.rct.p95;
  if (metric == "p99") return r.rct.p99;
  if (metric == "p999") return r.rct.p999;
  if (metric == "op_mean") return r.op_latency.mean;
  if (metric == "util") return r.mean_server_utilization;
  if (metric == "max_util") return r.max_server_utilization;
  if (metric == "progress_msgs") return static_cast<double>(r.progress_messages);
  if (metric == "net_msgs") return static_cast<double>(r.net_messages);
  DAS_CHECK_MSG(false, "unknown metric: " + metric);
  return 0;
}

void Collector::print_table(std::ostream& os, const std::string& experiment,
                            const std::string& metric) const {
  // Column order: policies in first-seen order; rows: points in first-seen
  // order. Adds a "DAS vs FCFS" gain column when both are present.
  std::vector<std::string> points;
  std::vector<sched::Policy> policies;
  for (const Row& row : rows_) {
    if (row.experiment != experiment) continue;
    if (std::find(points.begin(), points.end(), row.point) == points.end())
      points.push_back(row.point);
    if (std::find(policies.begin(), policies.end(), row.policy) == policies.end())
      policies.push_back(row.policy);
  }
  if (points.empty()) return;

  const auto find_result =
      [&](const std::string& point,
          sched::Policy policy) -> const core::ExperimentResult* {
    for (const Row& row : rows_) {
      if (row.experiment == experiment && row.point == point && row.policy == policy)
        return &row.result;
    }
    return nullptr;
  };

  const bool has_fcfs = std::find(policies.begin(), policies.end(),
                                  sched::Policy::kFcfs) != policies.end();
  const bool has_das =
      std::find(policies.begin(), policies.end(), sched::Policy::kDas) !=
      policies.end();

  std::vector<std::string> headers{"point"};
  for (const sched::Policy p : policies) headers.push_back(sched::to_string(p));
  if (has_fcfs && has_das) headers.push_back("das vs fcfs");

  Table table{headers};
  for (const std::string& point : points) {
    std::vector<std::string> cells{point};
    for (const sched::Policy p : policies) {
      const core::ExperimentResult* r = find_result(point, p);
      cells.push_back(r ? Table::fmt(metric_value(*r, metric), 1) : "-");
    }
    if (has_fcfs && has_das) {
      const core::ExperimentResult* fcfs = find_result(point, sched::Policy::kFcfs);
      const core::ExperimentResult* its_das = find_result(point, sched::Policy::kDas);
      if (fcfs && its_das && metric_value(*fcfs, metric) > 0) {
        cells.push_back(Table::fmt_percent(
            1.0 - metric_value(*its_das, metric) / metric_value(*fcfs, metric)));
      } else {
        cells.push_back("-");
      }
    }
    table.add_row(std::move(cells));
  }
  os << "== " << experiment << " — RCT " << metric << " (us) ==\n";
  table.print(os);
  os << '\n';
}

void register_point(const std::string& experiment, const std::string& point,
                    const core::ClusterConfig& cfg, const core::RunWindow& window,
                    const std::vector<sched::Policy>& policies) {
  for (const sched::Policy policy : policies) {
    const std::string name =
        experiment + "/" + point + "/" + sched::to_string(policy);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [experiment, point, policy, cfg, window](benchmark::State& state) {
          const core::ExperimentResult* result = nullptr;
          for (auto _ : state) {
            result = &Collector::instance().run(experiment, point, policy, cfg,
                                                window);
          }
          state.counters["mean_rct_us"] = result->rct.mean;
          state.counters["p99_rct_us"] = result->rct.p99;
          state.counters["util"] = result->mean_server_utilization;
          if (policy != sched::Policy::kFcfs) {
            const auto& fcfs = Collector::instance().run(
                experiment, point, sched::Policy::kFcfs, cfg, window);
            state.counters["gain_vs_fcfs_pct"] =
                100.0 * (1.0 - result->rct.mean / fcfs.rct.mean);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

int bench_main(int argc, char** argv, const std::string& experiment,
               const std::vector<std::pair<std::string, std::string>>& metrics) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const auto& [heading, metric] : metrics) {
    std::cout << "\n### " << heading << "\n\n";
    Collector::instance().print_table(std::cout, experiment, metric);
  }
  return 0;
}

}  // namespace dasbench
