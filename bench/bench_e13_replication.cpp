// E13 (extension) — Replication and replica selection. The paper's future-
// work direction: with R copies per key, a client can both choose WHERE to
// send an operation (replica selection) and let DAS decide WHEN it runs.
// Compares primary / random / least-delay (C3-style) selection under FCFS
// and DAS, with skewed popularity so replica choice actually matters.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  cfg.zipf_theta = 0.9;
  // Average-capacity calibration keeps the arrival rate IDENTICAL across all
  // rows (it depends only on total demand), so schemes are comparable. At
  // this skew the hottest server runs near saturation with primary-only
  // reads — exactly the regime replication is meant to fix.
  cfg.load_calibration = das::core::LoadCalibration::kAverageCapacity;
  cfg.target_load = 0.45;
  cfg.ring_vnodes = 128;  // realistic placement for replica walks
  const auto window = dasbench::eval_window();
  const std::vector<das::sched::Policy> policies = {das::sched::Policy::kFcfs,
                                                    das::sched::Policy::kDas};

  cfg.replication = 1;
  dasbench::register_point("E13_replication", "R=1", cfg, window, policies);
  for (const std::size_t r : {2u, 3u}) {
    cfg.replication = r;
    cfg.replica_selection = das::core::ReplicaSelection::kPrimary;
    dasbench::register_point("E13_replication",
                             "R=" + std::to_string(r) + "/primary", cfg, window,
                             policies);
    cfg.replica_selection = das::core::ReplicaSelection::kRandom;
    dasbench::register_point("E13_replication",
                             "R=" + std::to_string(r) + "/random", cfg, window,
                             policies);
    cfg.replica_selection = das::core::ReplicaSelection::kLeastDelay;
    dasbench::register_point("E13_replication",
                             "R=" + std::to_string(r) + "/least-delay", cfg, window,
                             policies);
  }
  return dasbench::bench_main(argc, argv, "E13_replication",
                              {{"Mean RCT by replication scheme", "mean"},
                               {"p99 RCT by replication scheme", "p99"},
                               {"Max server utilisation", "max_util"}});
}
