// Shared infrastructure for the experiment benches.
//
// Every bench binary reproduces one table/figure of the paper's evaluation:
// it registers one google-benchmark entry per (sweep point, policy) pair —
// so standard --benchmark_* tooling works — and afterwards prints the
// paper-style comparison table assembled from the collected results.
// Results are memoized per (experiment, point, policy) so the FCFS baseline
// used for "vs FCFS" columns is simulated exactly once per point.
//
// Two das-specific arguments are stripped before google-benchmark sees argv:
//   --das_jobs=N    pre-compute every registered point across N threads via
//                   core::SweepRunner (0 = hardware concurrency); the
//                   benchmark entries then hit the memo cache. Results are
//                   bit-identical to the serial path.
//   --das_json=P    where to write the structured results
//                   (BENCH_<experiment>.json by default; "off" disables).
#pragma once

#include <benchmark/benchmark.h>

#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/bench_json.hpp"
#include "core/sweep.hpp"
#include "das.hpp"

namespace dasbench {

/// The evaluation's default cluster: 32 servers, open-loop Poisson multigets
/// with geometric fan-out (mean 8), ETC-like value sizes, uniform key
/// popularity, load expressed as fraction of aggregate capacity.
das::core::ClusterConfig eval_config();

/// Default measurement window: 30ms warmup + 200ms measured.
das::core::RunWindow eval_window();

/// The paper-table policy set: fcfs, sjf, req-srpt, rein-sbf, das.
const std::vector<das::sched::Policy>& headline_policies();

/// One collected result row.
struct Row {
  std::string experiment;
  std::string point;  // sweep coordinate, e.g. "load=0.7"
  das::sched::Policy policy{};
  std::uint64_t seed = 0;
  das::core::ExperimentResult result;
};

/// Process-wide result collector + memo cache. Thread-safe: the --das_jobs
/// sweep path inserts results from worker threads.
class Collector {
 public:
  static Collector& instance();

  /// Runs (or returns the cached) experiment for the given coordinates.
  /// Returned references stay valid for the process lifetime (rows live in
  /// a deque; nothing is ever erased).
  const das::core::ExperimentResult& run(const std::string& experiment,
                                         const std::string& point,
                                         das::sched::Policy policy,
                                         const das::core::ClusterConfig& cfg,
                                         const das::core::RunWindow& window);

  /// Seeds the memo cache with an already-computed result (no-op when the
  /// key is present). The SweepRunner pre-warm path lands here.
  void insert(const std::string& experiment, const std::string& point,
              das::sched::Policy policy, std::uint64_t seed,
              const das::core::ExperimentResult& result);

  /// Prints one paper-style table per metric column requested.
  /// `metric` selects the cell value; "gain" columns are relative to the
  /// FCFS row of the same point when present.
  void print_table(std::ostream& os, const std::string& experiment,
                   const std::string& metric) const;

  /// Rows of one experiment, in first-computed order, as JSON-emitter input.
  std::vector<das::core::SweepOutcome> outcomes(const std::string& experiment) const;

  /// Snapshot of every collected row, in first-computed order.
  std::deque<Row> rows() const;

 private:
  double metric_value(const das::core::ExperimentResult& r,
                      const std::string& metric) const;
  const das::core::ExperimentResult* insert_locked(const std::string& key,
                                                   Row row)
      DAS_REQUIRES(mutex_);

  mutable das::Mutex mutex_;
  std::map<std::string, std::size_t> index_
      DAS_GUARDED_BY(mutex_);  // key -> rows_ position
  std::deque<Row> rows_ DAS_GUARDED_BY(mutex_);  // deque: stable references
};

/// Every point handed to register_point, in registration order — the grid
/// the --das_jobs sweep pre-computes.
const std::vector<das::core::SweepPoint>& registered_points();

/// Registers one google-benchmark per policy for a single sweep point. Each
/// registered benchmark simulates (memoized) and exports mean/p99 RCT and
/// the gain over FCFS as counters.
void register_point(const std::string& experiment, const std::string& point,
                    const das::core::ClusterConfig& cfg,
                    const das::core::RunWindow& window,
                    const std::vector<das::sched::Policy>& policies);

/// Standard bench main body: run benchmarks, then print the tables.
/// `metrics` is a list of (heading, metric key) pairs.
int bench_main(int argc, char** argv, const std::string& experiment,
               const std::vector<std::pair<std::string, std::string>>& metrics);

}  // namespace dasbench
