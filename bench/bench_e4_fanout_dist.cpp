// E4 — Mean RCT across multiget fan-out distribution families (same mean
// fan-out of 8 where the family allows, increasing variance). The gain of
// request-aware scheduling grows with fan-out variance.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto cfg = dasbench::eval_config();
  const auto window = dasbench::eval_window();
  const std::vector<std::pair<std::string, das::IntDistPtr>> families = {
      {"fixed8", das::make_fixed_int(8)},
      {"uniform1-15", das::make_uniform_int(1, 15)},
      {"geometric8", das::make_geometric(0.125, 128)},
      {"bimodal2-32", das::make_bimodal(2, 32, 0.2)},
      {"zipf64", das::make_zipf_int(64, 1.1)},
  };
  for (const auto& [name, fanout] : families) {
    cfg.fanout = fanout;
    dasbench::register_point("E4_fanout_dist", name, cfg, window,
                             dasbench::headline_policies());
  }
  return dasbench::bench_main(argc, argv, "E4_fanout_dist",
                              {{"Mean RCT by fan-out family", "mean"},
                               {"p99 RCT by fan-out family", "p99"}});
}
