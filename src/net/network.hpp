// Simulated message-passing network.
//
// Everything runs in one process, so a "message" is a callback scheduled
// after a sampled propagation delay plus an optional serialisation delay
// (size / bandwidth). Per-link FIFO ordering is enforced by default — jitter
// never reorders messages on the same (src, dst) pair, matching a TCP
// connection — because schedulers downstream rely on feedback arriving in
// causal order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace das::net {

/// Network node address. Clients and servers share one address space; the
/// cluster assigns servers [0, N) and clients [N, N+C).
using NodeId = std::uint32_t;

/// One-way propagation delay family.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration sample(Rng& rng) const = 0;
  virtual Duration mean() const = 0;
  virtual std::string describe() const = 0;
};

using LatencyPtr = std::shared_ptr<const LatencyModel>;

/// Constant delay.
LatencyPtr make_constant_latency(Duration d);
/// Uniform on [lo, hi].
LatencyPtr make_uniform_latency(Duration lo, Duration hi);
/// Lognormal with the given mean and underlying-normal sigma — the classic
/// "mostly tight, occasionally spiky" datacenter RTT shape.
LatencyPtr make_lognormal_latency(Duration mean, double sigma);

/// Per-network traffic counters.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  /// Subset of messages_dropped destroyed by a link partition (fault layer).
  std::uint64_t messages_dropped_partition = 0;
  Bytes bytes_sent = 0;
};

class Network {
 public:
  struct Config {
    LatencyPtr latency;
    /// Serialisation rate in bytes per microsecond; 0 disables the
    /// size-dependent component (infinitely fast NIC).
    double bandwidth_bytes_per_us = 0.0;
    /// Keep per-(src,dst) delivery order even under jitter.
    bool fifo_per_link = true;
    /// Independent per-message drop probability in [0, 1); dropped messages
    /// are counted but never delivered (fault injection — end-to-end
    /// recovery is the clients' responsibility).
    double loss_probability = 0.0;
    /// Number of node addresses in play (the cluster sets servers+clients).
    /// Nonzero switches the FIFO clamp to a dense num_nodes^2 table — one
    /// indexed load per message instead of a hash probe. 0 keeps the sparse
    /// map for callers with an open-ended address space.
    std::uint32_t num_nodes = 0;
  };

  Network(sim::Simulator& sim, Config config, Rng rng);

  /// Sends `size` bytes from `from` to `to`; `deliver` runs at the receiver
  /// when the message arrives. Taken by rvalue reference and moved through
  /// delivery scheduling: the pooled callback type is never copied (lambdas
  /// convert to a temporary EventFn at the call site).
  void send(NodeId from, NodeId to, Bytes size, sim::EventFn&& deliver);

  /// Fault layer: cuts (or heals) the undirected link between `a` and `b`.
  /// While cut, every message on the link is destroyed — before any RNG
  /// draw, so partitions never perturb the loss/latency streams of the
  /// surviving traffic. Idempotent per direction.
  void set_partitioned(NodeId a, NodeId b, bool cut);
  bool partitioned(NodeId from, NodeId to) const;

  /// Fault layer: an additional cluster-wide drop probability layered on top
  /// of Config::loss_probability for the duration of a loss burst (0 = no
  /// burst). Burst drops consume one RNG draw per message, exactly like base
  /// loss.
  void set_burst_loss(double p);
  double burst_loss() const { return burst_loss_; }

  const NetworkStats& stats() const { return stats_; }
  Duration mean_latency() const { return config_.latency->mean(); }

 private:
  SimTime* link_last_slot(NodeId from, NodeId to);
  char& partition_slot(NodeId from, NodeId to);

  sim::Simulator& sim_;
  Config config_;
  Rng rng_;
  NetworkStats stats_;
  /// Last scheduled delivery time per directed link, for FIFO clamping.
  /// Dense table when num_nodes is known (indexed from*num_nodes+to; the
  /// initial 0.0 is the clamp's identity), sparse fallback otherwise.
  std::vector<SimTime> link_last_dense_;
  FlatMap<std::uint64_t, SimTime> link_last_sparse_;
  /// Directed partition state, same dense/sparse split as the FIFO clamp.
  /// `partitions_active_` counts cut directed links so the fault-free send
  /// path pays one integer compare and never touches the tables.
  std::vector<char> partition_dense_;
  FlatMap<std::uint64_t, char> partition_sparse_;
  std::uint32_t partitions_active_ = 0;
  double burst_loss_ = 0.0;
};

}  // namespace das::net
