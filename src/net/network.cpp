#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace das::net {

namespace {

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration d) : d_(d) { DAS_CHECK(d >= 0); }
  Duration sample(Rng&) const override { return d_; }
  Duration mean() const override { return d_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << d_ << "us)";
    return os.str();
  }

 private:
  Duration d_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    DAS_CHECK(lo >= 0);
    DAS_CHECK(lo <= hi);
  }
  Duration sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  Duration mean() const override { return 0.5 * (lo_ + hi_); }
  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << "us)";
    return os.str();
  }

 private:
  Duration lo_, hi_;
};

class LognormalLatency final : public LatencyModel {
 public:
  LognormalLatency(Duration mean, double sigma) : mean_(mean), sigma_(sigma) {
    DAS_CHECK(mean > 0);
    DAS_CHECK(sigma >= 0);
    mu_ = std::log(mean) - 0.5 * sigma * sigma;
  }
  Duration sample(Rng& rng) const override { return rng.lognormal(mu_, sigma_); }
  Duration mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(mean=" << mean_ << "us, sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  Duration mean_, sigma_, mu_;
};

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

LatencyPtr make_constant_latency(Duration d) {
  return std::make_shared<ConstantLatency>(d);
}
LatencyPtr make_uniform_latency(Duration lo, Duration hi) {
  return std::make_shared<UniformLatency>(lo, hi);
}
LatencyPtr make_lognormal_latency(Duration mean, double sigma) {
  return std::make_shared<LognormalLatency>(mean, sigma);
}

Network::Network(sim::Simulator& sim, Config config, Rng rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  DAS_CHECK(config_.latency != nullptr);
  DAS_CHECK(config_.bandwidth_bytes_per_us >= 0);
  DAS_CHECK(config_.loss_probability >= 0 && config_.loss_probability < 1);
  if (config_.num_nodes != 0) {
    link_last_dense_.assign(
        static_cast<std::size_t>(config_.num_nodes) * config_.num_nodes, 0.0);
  }
}

void Network::send(NodeId from, NodeId to, Bytes size, sim::EventFn&& deliver) {
  DAS_CHECK(deliver != nullptr);
  ++stats_.messages_sent;
  stats_.bytes_sent += size;
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  Duration delay = config_.latency->sample(rng_);
  if (config_.bandwidth_bytes_per_us > 0) {
    delay += static_cast<double>(size) / config_.bandwidth_bytes_per_us;
  }
  SimTime arrival = sim_.now() + delay;
  if (config_.fifo_per_link) {
    SimTime* last;
    if (config_.num_nodes != 0) {
      DAS_CHECK_MSG(from < config_.num_nodes && to < config_.num_nodes,
                    "node id beyond Config::num_nodes");
      last = &link_last_dense_[static_cast<std::size_t>(from) *
                                   config_.num_nodes +
                               to];
    } else {
      last = &link_last_sparse_[link_key(from, to)];
    }
    arrival = std::max(arrival, *last);
    *last = arrival;
  }
  sim_.schedule_at(arrival, std::move(deliver));
}

}  // namespace das::net
