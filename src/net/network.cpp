#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace das::net {

namespace {

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration d) : d_(d) { DAS_CHECK(d >= 0); }
  Duration sample(Rng&) const override { return d_; }
  Duration mean() const override { return d_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << d_ << "us)";
    return os.str();
  }

 private:
  Duration d_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    DAS_CHECK(lo >= 0);
    DAS_CHECK(lo <= hi);
  }
  Duration sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  Duration mean() const override { return 0.5 * (lo_ + hi_); }
  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << "us)";
    return os.str();
  }

 private:
  Duration lo_, hi_;
};

class LognormalLatency final : public LatencyModel {
 public:
  LognormalLatency(Duration mean, double sigma) : mean_(mean), sigma_(sigma) {
    DAS_CHECK(mean > 0);
    DAS_CHECK(sigma >= 0);
    mu_ = std::log(mean) - 0.5 * sigma * sigma;
  }
  Duration sample(Rng& rng) const override { return rng.lognormal(mu_, sigma_); }
  Duration mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(mean=" << mean_ << "us, sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  Duration mean_, sigma_, mu_;
};

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

LatencyPtr make_constant_latency(Duration d) {
  return std::make_shared<ConstantLatency>(d);
}
LatencyPtr make_uniform_latency(Duration lo, Duration hi) {
  return std::make_shared<UniformLatency>(lo, hi);
}
LatencyPtr make_lognormal_latency(Duration mean, double sigma) {
  return std::make_shared<LognormalLatency>(mean, sigma);
}

Network::Network(sim::Simulator& sim, Config config, Rng rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  DAS_CHECK(config_.latency != nullptr);
  DAS_CHECK(config_.bandwidth_bytes_per_us >= 0);
  DAS_CHECK(config_.loss_probability >= 0 && config_.loss_probability < 1);
  if (config_.num_nodes != 0) {
    link_last_dense_.assign(
        static_cast<std::size_t>(config_.num_nodes) * config_.num_nodes, 0.0);
  }
}

SimTime* Network::link_last_slot(NodeId from, NodeId to) {
  if (config_.num_nodes != 0) {
    DAS_CHECK_MSG(from < config_.num_nodes && to < config_.num_nodes,
                  "node id beyond Config::num_nodes");
    return &link_last_dense_[static_cast<std::size_t>(from) * config_.num_nodes +
                             to];
  }
  return &link_last_sparse_[link_key(from, to)];
}

char& Network::partition_slot(NodeId from, NodeId to) {
  if (config_.num_nodes != 0) {
    DAS_CHECK_MSG(from < config_.num_nodes && to < config_.num_nodes,
                  "node id beyond Config::num_nodes");
    if (partition_dense_.empty()) {
      partition_dense_.assign(
          static_cast<std::size_t>(config_.num_nodes) * config_.num_nodes, 0);
    }
    return partition_dense_[static_cast<std::size_t>(from) * config_.num_nodes +
                            to];
  }
  return partition_sparse_[link_key(from, to)];
}

void Network::set_partitioned(NodeId a, NodeId b, bool cut) {
  for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    char& slot = partition_slot(from, to);
    if (slot == (cut ? 1 : 0)) continue;
    slot = cut ? 1 : 0;
    if (cut) {
      ++partitions_active_;
    } else {
      DAS_CHECK(partitions_active_ > 0);
      --partitions_active_;
    }
  }
}

bool Network::partitioned(NodeId from, NodeId to) const {
  if (partitions_active_ == 0) return false;
  if (config_.num_nodes != 0) {
    if (partition_dense_.empty()) return false;
    return partition_dense_[static_cast<std::size_t>(from) * config_.num_nodes +
                            to] != 0;
  }
  const auto it = partition_sparse_.find(link_key(from, to));
  return it != partition_sparse_.end() && it->second != 0;
}

void Network::set_burst_loss(double p) {
  DAS_CHECK(p >= 0 && p < 1);
  burst_loss_ = p;
}

void Network::send(NodeId from, NodeId to, Bytes size, sim::EventFn&& deliver) {
  DAS_CHECK(deliver != nullptr);
  ++stats_.messages_sent;
  stats_.bytes_sent += size;
  // Partition check first: it consumes no randomness, so cutting a link
  // never shifts the loss or latency draws of messages on other links.
  if (partitions_active_ > 0 && partitioned(from, to)) {
    ++stats_.messages_dropped;
    ++stats_.messages_dropped_partition;
    return;
  }
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  if (burst_loss_ > 0 && rng_.chance(burst_loss_)) {
    ++stats_.messages_dropped;
    return;
  }
  Duration delay = config_.latency->sample(rng_);
  if (config_.bandwidth_bytes_per_us > 0) {
    delay += static_cast<double>(size) / config_.bandwidth_bytes_per_us;
  }
  SimTime arrival = sim_.now() + delay;
  if (config_.fifo_per_link) {
    SimTime* last = link_last_slot(from, to);
    arrival = std::max(arrival, *last);
    *last = arrival;
  }
  sim_.schedule_at(arrival, std::move(deliver));
}

}  // namespace das::net
