#include "select/selector.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace das::select {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kPrimary: return "primary";
    case Mode::kRandom: return "random";
    case Mode::kLeastDelay: return "least-delay";
    case Mode::kTars: return "tars";
    case Mode::kPowerOfD: return "power-of-d";
    case Mode::kC3: return "c3";
  }
  return "primary";
}

bool mode_from_string(std::string_view token, Mode& out) {
  for (const Mode mode : all_modes()) {
    if (token == to_string(mode)) {
      out = mode;
      return true;
    }
  }
  return false;
}

const std::vector<Mode>& all_modes() {
  static const std::vector<Mode> kModes = {
      Mode::kPrimary, Mode::kRandom, Mode::kLeastDelay, Mode::kTars,
      Mode::kPowerOfD, Mode::kC3,
  };
  return kModes;
}

LoadShareModel load_share_model(Mode mode) {
  return mode == Mode::kPrimary ? LoadShareModel::kAllOnPrimary
                                : LoadShareModel::kUniformSpread;
}

ServerId least_delay_scan(const std::vector<ServerId>& replicas,
                          const LearnedView& view, double demand,
                          ServerId exclude, bool honor_suspicion) {
  ServerId best = kInvalidServer;
  double best_est = 0;
  for (const ServerId candidate : replicas) {
    if (candidate == exclude) continue;
    if (honor_suspicion && view.suspects(candidate)) continue;
    const double est = view.completion_estimate(candidate, demand);
    if (best == kInvalidServer || est < best_est) {
      best = candidate;
      best_est = est;
    }
  }
  return best;
}

ServerId ReplicaSelector::pick_alternate(const std::vector<ServerId>& replicas,
                                         const LearnedView& view,
                                         const SelectionContext& ctx,
                                         ServerId exclude) {
  return least_delay_scan(replicas, view, ctx.demand_us, exclude,
                          /*honor_suspicion=*/true);
}

ServerId PrimarySelector::pick(const std::vector<ServerId>& replicas,
                               const LearnedView& /*view*/,
                               const SelectionContext& /*ctx*/, Rng& /*rng*/) {
  return replicas.front();
}

ServerId RandomSelector::pick(const std::vector<ServerId>& replicas,
                              const LearnedView& /*view*/,
                              const SelectionContext& /*ctx*/, Rng& rng) {
  return replicas[rng.next_below(replicas.size())];
}

ServerId LeastDelaySelector::pick(const std::vector<ServerId>& replicas,
                                  const LearnedView& view,
                                  const SelectionContext& ctx, Rng& /*rng*/) {
  const ServerId best = least_delay_scan(replicas, view, ctx.demand_us,
                                         kInvalidServer,
                                         /*honor_suspicion=*/true);
  if (best != kInvalidServer) return best;
  // Every replica suspected: fall back to the plain ranking rather than
  // refusing to send.
  return least_delay_scan(replicas, view, ctx.demand_us, kInvalidServer,
                          /*honor_suspicion=*/false);
}

TarsSelector::TarsSelector() : TarsSelector(Params()) {}

ServerId TarsSelector::pick(const std::vector<ServerId>& replicas,
                            const LearnedView& view, const SelectionContext& ctx,
                            Rng& /*rng*/) {
  const ServerId challenger = least_delay_scan(replicas, view, ctx.demand_us,
                                               kInvalidServer,
                                               /*honor_suspicion=*/true);
  if (challenger == kInvalidServer) {
    // Every replica suspected: degrade to the plain ranking; group state is
    // left untouched so a recovering incumbent is not charged a switch.
    return least_delay_scan(replicas, view, ctx.demand_us, kInvalidServer,
                            /*honor_suspicion=*/false);
  }
  GroupState& state = state_[replicas.front()];
  const bool incumbent_usable =
      state.current != kInvalidServer &&
      std::find(replicas.begin(), replicas.end(), state.current) !=
          replicas.end();
  if (!incumbent_usable) {
    // First pick for this replica group — or the cached incumbent is not a
    // replica of this key: a vnode ring can give two keys the same primary
    // but different successor sets, so group state keyed by the primary is
    // only a hint. Adopt the challenger without charging a switch.
    state.current = challenger;
    state.last_switch = ctx.now;
    return challenger;
  }
  if (view.suspects(state.current)) {
    // Liveness beats rate-bounding: abandon a suspected incumbent at once.
    state.current = challenger;
    state.last_switch = ctx.now;
    ++switches_;
    return challenger;
  }
  if (challenger == state.current) return state.current;
  const double incumbent_est =
      view.completion_estimate(state.current, ctx.demand_us);
  const double challenger_est =
      view.completion_estimate(challenger, ctx.demand_us);
  const bool dwelled = ctx.now - state.last_switch >= params_.min_dwell_us;
  const bool decisive =
      challenger_est < incumbent_est * (1.0 - params_.hysteresis);
  if (dwelled && decisive) {
    state.current = challenger;
    state.last_switch = ctx.now;
    ++switches_;
  }
  return state.current;
}

ServerId PowerOfDSelector::pick(const std::vector<ServerId>& replicas,
                                const LearnedView& view,
                                const SelectionContext& ctx, Rng& rng) {
  eligible_.clear();
  for (const ServerId candidate : replicas) {
    if (!view.suspects(candidate)) eligible_.push_back(candidate);
  }
  if (eligible_.empty()) {
    return least_delay_scan(replicas, view, ctx.demand_us, kInvalidServer,
                            /*honor_suspicion=*/false);
  }
  // A forced pick consumes no randomness.
  if (eligible_.size() == 1) return eligible_[0];
  const std::size_t samples = d_ < eligible_.size() ? d_ : eligible_.size();
  // Partial Fisher-Yates: after k steps the first k slots hold a uniform
  // k-subset in sampled order; the estimate comparison below keeps the
  // first-sampled tie-break.
  for (std::size_t k = 0; k < samples; ++k) {
    const std::size_t pool = eligible_.size() - k;
    const std::size_t j = k + static_cast<std::size_t>(rng.next_below(pool));
    std::swap(eligible_[k], eligible_[j]);
  }
  ServerId best = eligible_[0];
  double best_est = view.completion_estimate(best, ctx.demand_us);
  for (std::size_t k = 1; k < samples; ++k) {
    const double est = view.completion_estimate(eligible_[k], ctx.demand_us);
    if (est < best_est) {
      best = eligible_[k];
      best_est = est;
    }
  }
  return best;
}

namespace {

/// C3 score of one replica: rtt + service × (1 + q̂³) with q̂ the learned
/// queueing delay in units of this op's service time. With a cold view
/// (d̂ = 0) the score degenerates to rtt + service, exactly like least-delay.
double c3_score(const LearnedView& view, ServerId s, double demand) {
  const double d = view.adaptive ? (*view.d_est)[s] : 0.0;
  const double mu = view.adaptive ? (*view.mu_est)[s] : 1.0;
  const double service = demand / mu;
  const double q_hat = service > 0 ? d / service : 0.0;
  return view.est_rtt_us + service * (1.0 + q_hat * q_hat * q_hat);
}

ServerId c3_scan(const std::vector<ServerId>& replicas, const LearnedView& view,
                 double demand, bool honor_suspicion) {
  ServerId best = kInvalidServer;
  double best_score = 0;
  for (const ServerId candidate : replicas) {
    if (honor_suspicion && view.suspects(candidate)) continue;
    const double score = c3_score(view, candidate, demand);
    if (best == kInvalidServer || score < best_score) {
      best = candidate;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

ServerId C3Selector::pick(const std::vector<ServerId>& replicas,
                          const LearnedView& view, const SelectionContext& ctx,
                          Rng& /*rng*/) {
  const ServerId best =
      c3_scan(replicas, view, ctx.demand_us, /*honor_suspicion=*/true);
  if (best != kInvalidServer) return best;
  // Every replica suspected: rank them all rather than refusing to send.
  return c3_scan(replicas, view, ctx.demand_us, /*honor_suspicion=*/false);
}

std::unique_ptr<ReplicaSelector> make_selector(Mode mode) {
  switch (mode) {
    case Mode::kPrimary: return std::make_unique<PrimarySelector>();
    case Mode::kRandom: return std::make_unique<RandomSelector>();
    case Mode::kLeastDelay: return std::make_unique<LeastDelaySelector>();
    case Mode::kTars: return std::make_unique<TarsSelector>();
    case Mode::kPowerOfD: return std::make_unique<PowerOfDSelector>();
    case Mode::kC3: return std::make_unique<C3Selector>();
  }
  DAS_CHECK_MSG(false, "unknown replica selection mode");
  return std::make_unique<PrimarySelector>();
}

}  // namespace das::select
