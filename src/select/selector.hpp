// Pluggable client-side replica selection.
//
// When a key is replicated, the client must choose ONE replica per read (and
// an alternate for hedges and failovers). That choice is a policy axis of its
// own, orthogonal to server-side scheduling: the same piggybacked d_hat/mu_hat
// feedback that drives DAS tagging gives the client a learned per-server view
// that selection strategies can exploit. This library owns that axis —
// `ReplicaSelector` is the strategy interface and `make_selector` the
// factory; the Client routes pick_server / arm_hedge / maybe_fail_over
// through one selector instance instead of three divergent inline scans.
//
// Determinism contract: selectors draw randomness ONLY from the `Rng&` the
// caller passes (the client's own workload stream, so the legacy modes stay
// bit-identical to the pre-layer builds — kRandom consumed exactly one
// `next_below` from it per pick and still does). Stateful selectors (tars)
// key their state deterministically and never read wall clocks.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace das::select {

/// How a client picks one replica to read from when replication > 1.
enum class Mode {
  /// Always the primary (placement-preference order head).
  kPrimary,
  /// Uniformly random replica per operation.
  kRandom,
  /// The replica with the lowest estimated completion under the client's
  /// learned per-server delay/speed view (C3-style replica ranking).
  kLeastDelay,
  /// Timeliness-aware adaptive selection with rate-bounded switching: sticks
  /// with the current replica of a key's replica group until another one's
  /// estimated completion beats it by a hysteresis margin AND a minimum
  /// dwell time has passed (Tars-style, driven by the piggybacked feedback).
  kTars,
  /// Power-of-d-choices: sample d (default 2) distinct replicas uniformly,
  /// take the one with the lower estimated completion.
  kPowerOfD,
  /// C3-style cubic replica ranking: like least-delay, but the learned
  /// queueing-delay term is expressed in units of the op's own service time
  /// and CUBED, so a backlogged replica is penalised superlinearly and
  /// clients back off it before it saturates.
  kC3,
};

/// Canonical CLI token ("primary", "random", "least-delay", "tars",
/// "power-of-d", "c3").
const char* to_string(Mode mode);

/// Parses a CLI token (the exact strings of `to_string`). Returns false on an
/// unknown token, leaving `out` untouched.
bool mode_from_string(std::string_view token, Mode& out);

/// All modes, in enum order (CLI sweeps, test grids).
const std::vector<Mode>& all_modes();

/// How the load-calibration math should model a mode's steady-state replica
/// choice (see Cluster::derived_request_rate).
enum class LoadShareModel {
  /// Every read of a key lands on its primary.
  kAllOnPrimary,
  /// Reads spread (approximately) evenly across the replica set. Exact for
  /// kRandom; an approximation for the view-driven modes, which chase the
  /// momentarily fastest replica but equalise in the homogeneous steady
  /// state the calibration assumes.
  kUniformSpread,
};
LoadShareModel load_share_model(Mode mode);

/// Non-owning snapshot of the client's learned per-server state. The pointed
/// vectors are indexed by ServerId and outlive any selector call.
struct LearnedView {
  const std::vector<double>* d_est = nullptr;
  const std::vector<double>* mu_est = nullptr;
  /// Failure-detector flags: non-zero = suspected (stopped answering).
  const std::vector<char>* suspected = nullptr;
  /// Round-trip allowance added to every completion estimate.
  Duration est_rtt_us = 0;
  /// False = static view (zero delay, nominal speed), the DAS-NA ablation.
  bool adaptive = true;

  bool suspects(ServerId s) const { return (*suspected)[s] != 0; }

  /// Estimated completion of an op of `demand` sent to `s` now (relative
  /// time): rtt + learned queueing delay + demand over learned speed. The
  /// evaluation order reproduces Client::full_estimate(0, ...) bit-for-bit.
  double completion_estimate(ServerId s, double demand) const {
    const double d = adaptive ? (*d_est)[s] : 0.0;
    const double mu = adaptive ? (*mu_est)[s] : 1.0;
    return est_rtt_us + d + demand / mu;
  }
};

/// Per-pick inputs beyond the candidate set.
struct SelectionContext {
  /// Intrinsic demand of the op (µs at nominal speed).
  double demand_us = 0;
  /// The key being read (stateful selectors group state by its replica set).
  KeyId key = 0;
  /// Current simulation time (rate-bounded switching needs it).
  SimTime now = 0;
};

/// Shared suspicion-aware ranking scan: the replica with the lowest
/// completion estimate, skipping `exclude` (pass kInvalidServer for none)
/// and, when `honor_suspicion` is set, any suspected replica. Ties break to
/// the FIRST replica in candidate order — the one historical tie-break all
/// call sites (pick, hedge, failover, all-suspected fallback) now share.
/// Returns kInvalidServer when no candidate survives the filters.
ServerId least_delay_scan(const std::vector<ServerId>& replicas,
                          const LearnedView& view, double demand,
                          ServerId exclude, bool honor_suspicion);

/// Strategy interface. One instance per client; calls are sequential within
/// a simulation, so implementations may keep state without locking.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Picks the replica for a fresh read of `ctx.key` out of `replicas`
  /// (primary first, size >= 1). `rng` is the caller's stream; only
  /// randomised strategies draw from it.
  virtual ServerId pick(const std::vector<ServerId>& replicas,
                        const LearnedView& view, const SelectionContext& ctx,
                        Rng& rng) = 0;

  /// Picks the best replica OTHER than `exclude` for a hedge or failover:
  /// suspicion-aware least-delay with no fallback — duplicating load onto a
  /// server that stopped answering helps nobody, so when every other replica
  /// is suspected this returns kInvalidServer and the caller stays put.
  /// Deliberately shared by every strategy: an alternate is damage control,
  /// not steady-state placement, so it chases the fastest live replica
  /// regardless of how the primary path picks.
  virtual ServerId pick_alternate(const std::vector<ServerId>& replicas,
                                  const LearnedView& view,
                                  const SelectionContext& ctx, ServerId exclude);
};

/// Always the primary.
class PrimarySelector final : public ReplicaSelector {
 public:
  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;
};

/// Uniform pick; suspicion-blind (matching the historical mode — hedges and
/// failovers still avoid suspects via pick_alternate).
class RandomSelector final : public ReplicaSelector {
 public:
  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;
};

/// Lowest completion estimate among unsuspected replicas; when every replica
/// is suspected, falls back to the plain scan rather than refusing to send.
class LeastDelaySelector final : public ReplicaSelector {
 public:
  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;
};

/// Timeliness-aware selection with rate-bounded switching (Tars-style).
///
/// Greedy least-delay re-ranks on every pick, so two clients chasing the same
/// momentarily-fast replica herd onto it and oscillate. Tars damps that: per
/// replica group (keyed by the primary) it remembers the current choice and
/// only switches when the challenger's estimated completion undercuts the
/// incumbent's by `hysteresis` AND the incumbent has been held for at least
/// `min_dwell_us`. A suspected incumbent is abandoned immediately —
/// liveness beats rate-bounding.
class TarsSelector final : public ReplicaSelector {
 public:
  struct Params {
    /// Required relative improvement before switching: the challenger must
    /// beat the incumbent's estimate by this fraction.
    double hysteresis = 0.1;
    /// Minimum time between voluntary switches within one replica group.
    Duration min_dwell_us = 500.0;
  };
  TarsSelector();
  explicit TarsSelector(Params params) : params_(params) {}

  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;

  std::uint64_t switches() const { return switches_; }

 private:
  struct GroupState {
    ServerId current = kInvalidServer;
    SimTime last_switch = 0;
  };
  Params params_;
  /// Keyed by the group's primary replica — stable for a key across picks.
  FlatMap<ServerId, GroupState> state_;
  std::uint64_t switches_ = 0;
};

/// Power-of-d-choices: d distinct unsuspected replicas sampled uniformly
/// (partial Fisher-Yates on the caller's stream), lowest completion estimate
/// wins, ties to the first sampled. All-suspected falls back to the plain
/// scan, like least-delay.
class PowerOfDSelector final : public ReplicaSelector {
 public:
  explicit PowerOfDSelector(std::size_t d = 2) : d_(d < 2 ? 2 : d) {}

  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;

 private:
  std::size_t d_;
  /// Scratch candidate indices, reused across picks (no per-pick allocation
  /// in steady state).
  std::vector<ServerId> eligible_;
};

/// C3-style cubic ranking (Suresh et al., NSDI'15). The score of replica s
/// for an op of demand δ is
///
///   rtt + service × (1 + q̂³),  service = δ/μ̂(s),  q̂ = d̂(s)/service
///
/// i.e. least-delay's linear backlog term d̂ is replaced by service×q̂³: a
/// replica whose learned queueing delay is several multiples of this op's
/// service time is penalised cubically, which empties concentration on a
/// momentarily-fast replica before it herds. Suspicion-aware with the same
/// all-suspected fallback as least-delay.
class C3Selector final : public ReplicaSelector {
 public:
  ServerId pick(const std::vector<ServerId>& replicas, const LearnedView& view,
                const SelectionContext& ctx, Rng& rng) override;
};

/// Factory for the configured mode.
std::unique_ptr<ReplicaSelector> make_selector(Mode mode);

}  // namespace das::select
