// Umbrella public header for the DAS library.
//
// Typical use:
//
//   #include "das.hpp"
//
//   das::core::ClusterConfig cfg;
//   cfg.policy = das::sched::Policy::kDas;
//   cfg.target_load = 0.7;
//   auto result = das::core::run_experiment(cfg);
//   std::cout << "mean RCT: " << result.rct.mean << " us\n";
//
// Individual module headers remain includable directly for finer control.
#pragma once

#include "common/distributions.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "core/cluster.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/server.hpp"
#include "core/wire.hpp"
#include "net/network.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "store/log_engine.hpp"
#include "store/partitioner.hpp"
#include "store/storage_engine.hpp"
#include "workload/arrival.hpp"
#include "workload/multiget.hpp"
#include "workload/rate_function.hpp"
#include "workload/spec.hpp"
