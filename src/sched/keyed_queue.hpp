// Ordered operation queue with stable handles.
//
// Most policies are "serve the minimum of some key, ties by arrival". This
// container provides exactly that plus O(log n) removal/re-keying by handle,
// which the feedback-driven policies (Rein aging, DAS re-ranking) need. Keys
// are totally ordered via operator<; equal keys dequeue in insertion order.
#pragma once

#include <cstdint>
#include <set>
#include <utility>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/invariant.hpp"
#include "sched/op_context.hpp"

namespace das::sched {

template <typename Key>
class KeyedQueue : public Auditable {
 public:
  using Handle = std::uint64_t;

  Handle insert(Key key, OpContext op) {
    const Handle h = next_seq_++;
    order_.emplace(OrderEntry{std::move(key), h});
    ops_.emplace(h, std::move(op));
    return h;
  }

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }

  /// Key of the front element. Precondition: !empty().
  const Key& min_key() const {
    DAS_CHECK(!empty());
    return order_.begin()->key;
  }

  /// Front element's handle. Precondition: !empty().
  Handle min_handle() const {
    DAS_CHECK(!empty());
    return order_.begin()->handle;
  }

  /// Read-only access to the front op. Precondition: !empty().
  const OpContext& peek_min() const { return ops_.at(min_handle()); }

  /// Removes and returns the front op.
  OpContext pop_min() {
    DAS_CHECK(!empty());
    const auto it = order_.begin();
    const Handle h = it->handle;
    order_.erase(it);
    return take(h);
  }

  bool contains(Handle h) const { return ops_.contains(h); }

  /// Removes an arbitrary element by handle. Precondition: contains(h).
  OpContext remove(Handle h) {
    auto node = ops_.find(h);
    DAS_CHECK(node != ops_.end());
    // Erase the matching order entry; we must find it by scanning the equal-
    // key range, so callers pass the key they inserted with via rekey()/
    // remove_with_key() when they have it. Generic remove falls back to a
    // linear scan only in the rare handle-without-key path.
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->handle == h) {
        order_.erase(it);
        return take(h);
      }
    }
    DAS_CHECK_MSG(false, "KeyedQueue order/ops desync");
    return {};
  }

  /// O(log n) removal when the caller remembers the insertion key.
  OpContext remove_with_key(const Key& key, Handle h) {
    auto it = order_.find(OrderEntry{key, h});
    DAS_CHECK_MSG(it != order_.end(), "stale key passed to remove_with_key");
    order_.erase(it);
    return take(h);
  }

  /// Re-keys an element in O(log n); the handle stays valid.
  void rekey(const Key& old_key, Handle h, Key new_key) {
    auto it = order_.find(OrderEntry{old_key, h});
    DAS_CHECK_MSG(it != order_.end(), "stale key passed to rekey");
    order_.erase(it);
    order_.emplace(OrderEntry{std::move(new_key), h});
  }

  /// Read-only access by handle. Precondition: contains(h).
  const OpContext& at(Handle h) const { return ops_.at(h); }

  /// Structural audit: order index and op storage describe the same set of
  /// handles (same size, no dangling or duplicated order entries), every
  /// queued op has nonnegative demand, and no live handle is at or beyond
  /// the next to be issued.
  void check_invariants() const override {
    DAS_AUDIT(order_.size() == ops_.size(), "KeyedQueue order/ops size desync");
    FlatSet<Handle> seen;  // membership only, never iterated
    seen.reserve(order_.size());
    for (const OrderEntry& entry : order_) {
      DAS_AUDIT(seen.insert(entry.handle),
                "KeyedQueue handle ordered under two keys");
      DAS_AUDIT(ops_.contains(entry.handle),
                "KeyedQueue order entry without a stored op");
      DAS_AUDIT(entry.handle < next_seq_, "KeyedQueue handle from the future");
    }
    for (const auto& [handle, op] : ops_) {
      static_cast<void>(handle);
      DAS_AUDIT(op.demand_us >= 0, "queued op with negative demand");
    }
  }

 private:
  friend struct TestCorruptor;

  struct OrderEntry {
    Key key;
    Handle handle;
    bool operator<(const OrderEntry& o) const {
      if (key < o.key) return true;
      if (o.key < key) return false;
      return handle < o.handle;
    }
  };

  OpContext take(Handle h) {
    auto node = ops_.find(h);
    OpContext out = std::move(node->second);
    ops_.erase(node);
    return out;
  }

  std::set<OrderEntry> order_;
  FlatMap<Handle, OpContext> ops_;
  Handle next_seq_ = 0;
};

}  // namespace das::sched
