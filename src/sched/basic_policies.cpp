#include "sched/basic_policies.hpp"

namespace das::sched {

void FcfsScheduler::check_policy_invariants() const {
  DAS_AUDIT(queue_.size() == size(), "FCFS queue size drifted from accounting");
  SimTime prev = 0;
  for (const OpContext& op : queue_) {
    DAS_AUDIT(op.demand_us >= 0, "queued op with negative demand");
    DAS_AUDIT(op.enqueued_at >= prev, "FCFS queue out of arrival order");
    prev = op.enqueued_at;
  }
}

void RandomScheduler::check_policy_invariants() const {
  DAS_AUDIT(queue_.size() == size(), "Random queue size drifted from accounting");
  for (const OpContext& op : queue_) {
    DAS_AUDIT(op.demand_us >= 0, "queued op with negative demand");
  }
}

void SjfScheduler::check_policy_invariants() const {
  DAS_AUDIT(queue_.size() == size(), "SJF queue size drifted from accounting");
  queue_.check_invariants();
}

void EdfScheduler::check_policy_invariants() const {
  DAS_AUDIT(queue_.size() == size(), "EDF queue size drifted from accounting");
  queue_.check_invariants();
}

void FcfsScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);
  queue_.push_back(std::move(copy));
}

OpContext FcfsScheduler::dequeue(SimTime) {
  DAS_CHECK(!queue_.empty());
  OpContext op = std::move(queue_.front());
  queue_.pop_front();
  note_out(op);
  return op;
}

std::vector<OpContext> FcfsScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    OpContext op = std::move(queue_.front());
    queue_.pop_front();
    note_out(op);
    out.push_back(std::move(op));
  }
  return out;
}

void RandomScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);
  queue_.push_back(std::move(copy));
}

OpContext RandomScheduler::dequeue(SimTime) {
  DAS_CHECK(!queue_.empty());
  const std::size_t idx =
      static_cast<std::size_t>(rng_.next_below(queue_.size()));
  std::swap(queue_[idx], queue_.back());
  OpContext op = std::move(queue_.back());
  queue_.pop_back();
  note_out(op);
  return op;
}

std::vector<OpContext> RandomScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(queue_.size());
  for (OpContext& op : queue_) {
    note_out(op);
    out.push_back(std::move(op));
  }
  queue_.clear();
  return out;
}

void SjfScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);
  queue_.insert(copy.demand_us, std::move(copy));
}

OpContext SjfScheduler::dequeue(SimTime) {
  OpContext op = queue_.pop_min();
  note_out(op);
  return op;
}

std::vector<OpContext> SjfScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    OpContext op = queue_.pop_min();
    note_out(op);
    out.push_back(std::move(op));
  }
  return out;
}

void EdfScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);
  queue_.insert(copy.deadline, std::move(copy));
}

OpContext EdfScheduler::dequeue(SimTime) {
  OpContext op = queue_.pop_min();
  note_out(op);
  return op;
}

std::vector<OpContext> EdfScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    OpContext op = queue_.pop_min();
    note_out(op);
    out.push_back(std::move(op));
  }
  return out;
}

}  // namespace das::sched
