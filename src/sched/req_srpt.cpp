#include "sched/req_srpt.hpp"

#include "trace/tracer.hpp"

namespace das::sched {

void ReqSrptScheduler::check_policy_invariants() const {
  DAS_AUDIT(queue_.size() == size(), "SRPT queue size drifted from accounting");
  DAS_AUDIT(key_of_.size() == queue_.size(), "SRPT key index size desync");
  queue_.check_invariants();
  std::size_t request_handles = 0;
  for (const auto& [request, handles] : by_request_) {
    static_cast<void>(request);
    DAS_AUDIT(!handles.empty(), "empty per-request handle set not pruned");
    request_handles += handles.size();
    for (const Handle h : handles) {
      DAS_AUDIT(queue_.contains(h), "per-request index holds a served handle");
    }
  }
  DAS_AUDIT(request_handles == queue_.size(),
            "per-request index does not partition the queue");
  for (const auto& [h, key] : key_of_) {
    DAS_AUDIT(queue_.contains(h), "key index holds a served handle");
    DAS_AUDIT(key >= 0, "negative remaining total demand");
  }
}

void ReqSrptScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);
  const RequestId req = copy.request_id;
  const double key = copy.total_demand_us;
  const Handle h = queue_.insert(key, std::move(copy));
  key_of_[h] = key;
  by_request_[req].push_back(h);
}

OpContext ReqSrptScheduler::dequeue(SimTime) {
  const Handle h = queue_.min_handle();
  OpContext op = queue_.pop_min();
  forget(op, h);
  note_out(op);
  return op;
}

std::vector<OpContext> ReqSrptScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    const Handle h = queue_.min_handle();
    OpContext op = queue_.pop_min();
    forget(op, h);
    note_out(op);
    out.push_back(std::move(op));
  }
  return out;
}

void ReqSrptScheduler::forget(const OpContext& op, Handle h) {
  key_of_.erase(h);
  const auto it = by_request_.find(op.request_id);
  if (it != by_request_.end()) {
    std::erase(it->second, h);
    if (it->second.empty()) by_request_.erase(it);
  }
}

bool ReqSrptScheduler::preempts(const OpContext& incoming,
                                const OpContext& in_service) const {
  return incoming.total_demand_us < in_service.total_demand_us;
}

void ReqSrptScheduler::on_request_progress(RequestId request,
                                           const ProgressUpdate& update,
                                           SimTime now) {
  const auto it = by_request_.find(request);
  if (it == by_request_.end()) return;
  for (const Handle h : it->second) {
    auto key_it = key_of_.find(h);
    DAS_CHECK(key_it != key_of_.end());
    if (key_it->second == update.remaining_total_us) continue;
    const double old_key = key_it->second;
    queue_.rekey(old_key, h, update.remaining_total_us);
    key_it->second = update.remaining_total_us;
    ++reranks_;
    if (tracer_ != nullptr) {
      const OpContext& op = queue_.at(h);
      tracer_->op_rerank(now, op.op_id, op.request_id, tracer_server_, old_key,
                         update.remaining_total_us);
    }
  }
}

}  // namespace das::sched
