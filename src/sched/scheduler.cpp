#include "sched/scheduler.hpp"

#include "common/check.hpp"
#include "sched/basic_policies.hpp"
#include "sched/das.hpp"
#include "sched/rein.hpp"
#include "sched/req_srpt.hpp"

namespace das::sched {

void Scheduler::on_request_progress(RequestId, const ProgressUpdate&, SimTime) {}
void Scheduler::on_speed_estimate(double) {}
bool Scheduler::preempts(const OpContext&, const OpContext&) const { return false; }

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kRandom: return "random";
    case Policy::kSjf: return "sjf";
    case Policy::kReqSrpt: return "req-srpt";
    case Policy::kEdf: return "edf";
    case Policy::kReinSbf: return "rein-sbf";
    case Policy::kDas: return "das";
    case Policy::kDasNoAdapt: return "das-na";
    case Policy::kDasNoDefer: return "das-nd";
    case Policy::kDasNoAging: return "das-noaging";
    case Policy::kDasCritical: return "das-crit";
  }
  DAS_CHECK_MSG(false, "unknown policy enum");
  return {};
}

Policy policy_from_string(const std::string& name) {
  for (const Policy p : all_policies())
    if (to_string(p) == name) return p;
  DAS_CHECK_MSG(false, "unknown policy name: " + name);
  return Policy::kFcfs;
}

const std::vector<Policy>& all_policies() {
  static const std::vector<Policy> kAll = {
      Policy::kFcfs,       Policy::kRandom,     Policy::kSjf,
      Policy::kReqSrpt,    Policy::kEdf,        Policy::kReinSbf,
      Policy::kDas,        Policy::kDasNoAdapt, Policy::kDasNoDefer,
      Policy::kDasNoAging, Policy::kDasCritical,
  };
  return kAll;
}

SchedulerPtr make_scheduler(Policy policy, const SchedulerConfig& config) {
  switch (policy) {
    case Policy::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case Policy::kRandom:
      return std::make_unique<RandomScheduler>(config.seed);
    case Policy::kSjf:
      return std::make_unique<SjfScheduler>();
    case Policy::kReqSrpt:
      return std::make_unique<ReqSrptScheduler>();
    case Policy::kEdf:
      return std::make_unique<EdfScheduler>();
    case Policy::kReinSbf: {
      ReinSbfScheduler::Options opt;
      opt.levels = config.rein_levels;
      opt.threshold_alpha = config.rein_threshold_alpha;
      opt.use_bytes = config.rein_use_bytes;
      opt.max_wait_us = config.max_wait_us;
      return std::make_unique<ReinSbfScheduler>(opt);
    }
    case Policy::kDas:
    case Policy::kDasNoAdapt:
    case Policy::kDasNoDefer:
    case Policy::kDasNoAging:
    case Policy::kDasCritical: {
      DasScheduler::Options opt;
      opt.adaptive = policy != Policy::kDasNoAdapt;
      opt.defer = policy != Policy::kDasNoDefer;
      opt.max_wait_us =
          policy == Policy::kDasNoAging ? kTimeInfinity : config.max_wait_us;
      opt.defer_margin = config.das_defer_margin;
      opt.primary_key = policy == Policy::kDasCritical
                            ? DasScheduler::PrimaryKey::kCriticalPath
                            : DasScheduler::PrimaryKey::kTotalRemaining;
      return std::make_unique<DasScheduler>(opt);
    }
  }
  DAS_CHECK_MSG(false, "unknown policy enum");
  return nullptr;
}

}  // namespace das::sched
