// Baseline policies: FCFS, Random, SJF, EDF.
//
// These need no request-level feedback; their priority is frozen at enqueue.
// They exist both as the paper's comparison points (FCFS is the stores'
// default) and as controls in the test suite.
#pragma once

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "sched/keyed_queue.hpp"
#include "sched/scheduler_base.hpp"

namespace das::sched {

/// First-come first-served: the default behaviour of memcached/Redis-style
/// stores and the paper's primary baseline.
class FcfsScheduler final : public SchedulerBase {
 public:
  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  std::string name() const override { return "fcfs"; }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;
  std::deque<OpContext> queue_;
};

/// Uniformly random order; a sanity floor — any informed policy must beat it.
class RandomScheduler final : public SchedulerBase {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  /// Drains in arrival order: a crash drop must not consume randomness.
  std::vector<OpContext> drain(SimTime now) override;
  std::string name() const override { return "random"; }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;
  std::vector<OpContext> queue_;
  Rng rng_;
};

/// Shortest (local) job first: orders by the op's own demand only, ignoring
/// the request structure. Separates "size awareness" from "fork-join
/// awareness" in the evaluation.
class SjfScheduler final : public SchedulerBase {
 public:
  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  std::string name() const override { return "sjf"; }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;
  KeyedQueue<double> queue_;
};

/// Earliest deadline first on the request deadline tag.
class EdfScheduler final : public SchedulerBase {
 public:
  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  std::string name() const override { return "edf"; }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;
  KeyedQueue<SimTime> queue_;
};

}  // namespace das::sched
