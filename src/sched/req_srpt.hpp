// Request-level shortest-remaining-processing-time.
//
// Orders by the TOTAL remaining service demand of the operation's request
// across all servers, shrinking as siblings complete (progress messages).
// This is the classic mean-flow-time heuristic lifted to the fork-join
// setting; it lacks DAS's bottleneck awareness (it cannot tell whether the
// remaining work is parallel or serial) and serves as the strongest
// request-aware non-DAS baseline.
#pragma once

#include <vector>

#include "common/flat_map.hpp"
#include "sched/keyed_queue.hpp"
#include "sched/scheduler_base.hpp"

namespace das::sched {

class ReqSrptScheduler final : public SchedulerBase {
 public:
  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  void on_request_progress(RequestId request, const ProgressUpdate& update,
                           SimTime now) override;
  /// True preemptive SRPT when the server allows it: a strictly smaller
  /// remaining request interrupts the one in service.
  bool preempts(const OpContext& incoming, const OpContext& in_service) const override;
  std::string name() const override { return "req-srpt"; }

  MechanismCounters mechanism_counters() const override {
    return {0, 0, 0, reranks_};
  }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;

  using Handle = KeyedQueue<double>::Handle;

  KeyedQueue<double> queue_;
  /// Current remaining-demand key of each queued handle (needed to rekey).
  FlatMap<Handle, double> key_of_;
  /// Handles queued here per request in arrival order, for progress fan-in.
  /// Re-keying is per-handle independent, so the deterministic vector walk
  /// is result-equivalent to the hash set it replaced.
  FlatMap<RequestId, std::vector<Handle>> by_request_;
  std::uint64_t reranks_ = 0;

  void forget(const OpContext& op, Handle h);
};

}  // namespace das::sched
