#include "sched/das.hpp"

#include <cmath>

#include "trace/tracer.hpp"

namespace das::sched {

DasScheduler::DasScheduler(Options options) : options_(options) {
  DAS_CHECK(options_.max_wait_us > 0);
  DAS_CHECK(options_.defer_margin > 0);
}

void DasScheduler::check_policy_invariants() const {
  DAS_AUDIT(mu_hat_ > 0, "nonpositive speed estimate");
  DAS_AUDIT(records_.size() == size(), "DAS record count drifted from accounting");
  DAS_AUDIT(active_.size() + deferred_.size() == records_.size(),
            "DAS order sets do not partition the records");
  for (const OrderKey& entry : active_) {
    const auto it = records_.find(entry.h);
    DAS_AUDIT(it != records_.end(), "active entry without a record");
    DAS_AUDIT(!it->second.in_deferred, "deferred record linked in active set");
    DAS_AUDIT(entry.k == active_key(it->second.op), "stale active ordering key");
  }
  for (const OrderKey& entry : deferred_) {
    const auto it = records_.find(entry.h);
    DAS_AUDIT(it != records_.end(), "deferred entry without a record");
    DAS_AUDIT(it->second.in_deferred, "active record linked in deferred set");
    DAS_AUDIT(entry.k == it->second.op.est_other_completion,
              "stale deferral expiry key");
  }
  std::size_t request_handles = 0;
  for (const auto& [request, handles] : by_request_) {
    DAS_AUDIT(!handles.empty(), "empty per-request handle set not pruned");
    request_handles += handles.size();
    for (const Handle h : handles) {
      const auto it = records_.find(h);
      DAS_AUDIT(it != records_.end(), "per-request index holds a served handle");
      DAS_AUDIT(it->second.op.request_id == request,
                "per-request index points at the wrong request");
    }
  }
  DAS_AUDIT(request_handles == records_.size(),
            "per-request index does not partition the records");
  for (const auto& [h, rec] : records_) {
    DAS_AUDIT(h < next_handle_, "record handle from the future");
    DAS_AUDIT(rec.op.demand_us >= 0, "queued op with negative demand");
    DAS_AUDIT(rec.op.remaining_critical_us >= 0,
              "negative critical-path remaining time");
    DAS_AUDIT(rec.op.total_demand_us >= 0, "negative total remaining demand");
  }
  // Aging must be able to reach every queued op: each record appears in the
  // fifo exactly once (stale entries for served handles are skipped lazily).
  std::size_t live = 0;
  for (const Handle h : fifo_) {
    if (records_.contains(h)) ++live;
  }
  DAS_AUDIT(live == records_.size(), "aging fifo lost track of queued ops");
}

std::string DasScheduler::name() const {
  if (options_.primary_key == PrimaryKey::kCriticalPath) return "das-crit";
  if (!options_.adaptive) return "das-na";
  if (!options_.defer) return "das-nd";
  if (options_.max_wait_us == kTimeInfinity) return "das-noaging";
  return "das";
}

void DasScheduler::on_speed_estimate(double speed) {
  if (!options_.adaptive) return;
  DAS_CHECK(speed > 0);
  mu_hat_ = speed;
}

Duration DasScheduler::drain_time_us() const {
  return backlog_demand_us() / mu_hat_;
}

bool DasScheduler::safe_to_defer(SimTime est_other_completion, SimTime now) const {
  if (!options_.defer) return false;
  if (est_other_completion <= 0) return false;  // no siblings elsewhere
  // Even if served after everything currently queued, the op would complete
  // around now + drain_time; if the request cannot finish before
  // est_other_completion anyway, deferring costs its RCT nothing.
  return est_other_completion - now > drain_time_us() * options_.defer_margin;
}

bool DasScheduler::preempts(const OpContext& incoming,
                            const OpContext& in_service) const {
  return active_key(incoming) < active_key(in_service);
}

double DasScheduler::active_key(const OpContext& op) const {
  return options_.primary_key == PrimaryKey::kTotalRemaining
             ? op.total_demand_us
             : op.remaining_critical_us;
}

void DasScheduler::place(Handle h, Record& rec, SimTime now) {
  rec.in_deferred = safe_to_defer(rec.op.est_other_completion, now);
  if (rec.in_deferred) {
    ++total_deferrals_;
    rec.defer_started = now;
    deferred_.insert(OrderKey{rec.op.est_other_completion, h});
    if (tracer_ != nullptr) {
      tracer_->op_defer(now, rec.op.op_id, rec.op.request_id, tracer_server_,
                        rec.op.est_other_completion);
    }
  } else {
    active_.insert(OrderKey{active_key(rec.op), h});
  }
}

void DasScheduler::unlink(Handle h, Record& rec, SimTime now) {
  auto& set = rec.in_deferred ? deferred_ : active_;
  const double key =
      rec.in_deferred ? rec.op.est_other_completion : active_key(rec.op);
  const auto erased = set.erase(OrderKey{key, h});
  DAS_CHECK_MSG(erased == 1, "DAS order-set desync");
  if (rec.in_deferred) {
    rec.op.deferred_wait_us += now - rec.defer_started;
    rec.in_deferred = false;
  }
}

void DasScheduler::enqueue(const OpContext& op, SimTime now) {
  const Handle h = next_handle_++;
  Record rec;
  rec.op = op;
  rec.op.enqueued_at = now;
  note_in(rec.op);
  place(h, rec, now);
  fifo_.push_back(h);
  by_request_[op.request_id].push_back(h);
  records_.emplace(h, std::move(rec));
}

OpContext DasScheduler::finish(Handle h, SimTime now) {
  auto it = records_.find(h);
  DAS_CHECK(it != records_.end());
  unlink(h, it->second, now);
  OpContext op = std::move(it->second.op);
  auto by_req = by_request_.find(op.request_id);
  if (by_req != by_request_.end()) {
    std::erase(by_req->second, h);
    if (by_req->second.empty()) by_request_.erase(by_req);
  }
  records_.erase(it);
  note_out(op);
  return op;
}

void DasScheduler::migrate_due(SimTime now) {
  // The deferred set is ordered by deferral expiry (est_other_completion):
  // its minimum is the least-safe element. While that element's window has
  // closed — time passed, or the backlog shrank — it re-enters the runnable
  // set; once the minimum is safe, all later ones are too.
  while (!deferred_.empty()) {
    const OrderKey front = *deferred_.begin();
    if (safe_to_defer(front.k, now)) break;
    deferred_.erase(deferred_.begin());
    auto it = records_.find(front.h);
    DAS_CHECK(it != records_.end());
    Record& rec = it->second;
    rec.op.deferred_wait_us += now - rec.defer_started;
    rec.in_deferred = false;
    ++resumes_;
    active_.insert(OrderKey{active_key(rec.op), front.h});
    if (tracer_ != nullptr)
      tracer_->op_resume(now, rec.op.op_id, rec.op.request_id, tracer_server_);
  }
}

OpContext DasScheduler::dequeue(SimTime now) {
  DAS_CHECK(!empty());
  // 1. Aging: the oldest op is served unconditionally past its wait bound.
  if (options_.max_wait_us != kTimeInfinity) {
    while (!fifo_.empty() && !records_.contains(fifo_.front())) fifo_.pop_front();
    if (!fifo_.empty()) {
      const Handle h = fifo_.front();
      const Record& oldest = records_.at(h);
      if (now - oldest.op.enqueued_at > options_.max_wait_us) {
        fifo_.pop_front();
        ++aging_promotions_;
        if (tracer_ != nullptr) {
          tracer_->aging_promotion(now, oldest.op.op_id, oldest.op.request_id,
                                   tracer_server_, now - oldest.op.enqueued_at);
        }
        return finish(h, now);
      }
    }
  }
  // 2. Wake deferred ops whose safety window closed.
  migrate_due(now);
  // 3. SRPT-first on the runnable set; fall back to the deferred set so the
  // server never idles with work queued (work conservation).
  if (!active_.empty()) return finish(active_.begin()->h, now);
  DAS_CHECK(!deferred_.empty());
  return finish(deferred_.begin()->h, now);
}

std::vector<OpContext> DasScheduler::drain(SimTime now) {
  std::vector<OpContext> out;
  out.reserve(records_.size());
  // Walk the arrival fifo skipping stale entries; the fifo invariantly
  // covers every live record, so this empties records_, both order sets,
  // and the per-request index through the normal finish path.
  while (!fifo_.empty()) {
    const Handle h = fifo_.front();
    fifo_.pop_front();
    if (!records_.contains(h)) continue;
    out.push_back(finish(h, now));
  }
  DAS_CHECK_MSG(records_.empty(), "drain left DAS records behind");
  return out;
}

void DasScheduler::on_request_progress(RequestId request, const ProgressUpdate& update,
                                       SimTime now) {
  const auto it = by_request_.find(request);
  if (it == by_request_.end()) return;
  // Re-key every queued op of the request and re-evaluate its deferral.
  for (const Handle h : it->second) {
    auto rec_it = records_.find(h);
    DAS_CHECK(rec_it != records_.end());
    Record& rec = rec_it->second;
    if (rec.op.remaining_critical_us == update.remaining_critical_us &&
        rec.op.est_other_completion == update.est_other_completion &&
        rec.op.total_demand_us == update.remaining_total_us) {
      continue;
    }
    const double old_key = active_key(rec.op);
    unlink(h, rec, now);
    rec.op.remaining_critical_us = update.remaining_critical_us;
    rec.op.est_other_completion = update.est_other_completion;
    rec.op.total_demand_us = update.remaining_total_us;
    place(h, rec, now);
    ++reranks_;
    if (tracer_ != nullptr) {
      tracer_->op_rerank(now, rec.op.op_id, rec.op.request_id, tracer_server_,
                         old_key, active_key(rec.op));
    }
  }
}

}  // namespace das::sched
