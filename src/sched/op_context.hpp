// The unit of scheduling: one key-value access operation.
//
// Clients tag every operation with the request-level metadata the policies
// consume; carrying all tags on every op (a few dozen bytes) is exactly the
// paper's "distributed" design point — no scheduler ever needs state that is
// not on the message or local to the server.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace das::sched {

struct OpContext {
  OperationId op_id = 0;
  RequestId request_id = 0;
  ClientId client = 0;
  KeyId key = 0;

  /// Service demand at nominal server speed (µs). Derived by the client from
  /// the value size plus per-op overhead.
  double demand_us = 0;

  /// When the end-user request arrived at the client (FCFS baseline key, and
  /// the anchor for RCT accounting).
  SimTime request_arrival = 0;

  /// --- DAS tags -----------------------------------------------------------
  /// The request's intrinsic critical-path remaining time (µs): the max over
  /// its pending operations of demand/mu_est(server). This is the SRPT-first
  /// ordering key — deliberately free of queueing-delay terms, which are the
  /// scheduler's own decision variable. Progress messages shrink it.
  double remaining_critical_us = 0;
  /// Earliest ABSOLUTE time the request could complete considering only its
  /// operations on OTHER servers (client view: tag time + rtt + est. delay +
  /// service). The LRPT-last deferral bound: while this lies beyond the local
  /// drain horizon, serving the op early cannot improve its request's RCT.
  /// 0 means "no siblings elsewhere — never defer".
  SimTime est_other_completion = 0;

  /// --- Rein-SBF tags ------------------------------------------------------
  /// Bottleneck size of the request: max per-server aggregate of the
  /// request's operations, in ops and in demand-µs.
  std::uint32_t bottleneck_ops = 1;
  double bottleneck_demand_us = 0;

  /// --- Request-SRPT tag ---------------------------------------------------
  /// Total service demand of the request across all servers (µs), frozen at
  /// send time; progress updates shrink it.
  double total_demand_us = 0;

  /// --- EDF tag ------------------------------------------------------------
  SimTime deadline = kTimeInfinity;

  /// --- overload control ---------------------------------------------------
  /// ENFORCED end-to-end expiry (request arrival + deadline budget), distinct
  /// from the EDF `deadline` above, which is only a priority key. Servers
  /// shed the op at dequeue once this passes (src/overload); kTimeInfinity =
  /// deadlines off. Transmitted on the wire only when the overload layer is
  /// active, so feature-off message sizes are unchanged.
  SimTime expiry = kTimeInfinity;

  /// --- write path -----------------------------------------------------------
  /// PUT instead of GET: the server stores `write_size` bytes under `key`.
  /// Schedulers treat reads and writes uniformly (priority follows demand).
  bool is_write = false;
  Bytes write_size = 0;

  /// Set by the server when the op joins its queue.
  SimTime enqueued_at = 0;

  /// Cumulative time spent parked in a deferred set, accumulated by the
  /// scheduler. Instrumentation for the RCT breakdown
  /// (trace/rct_breakdown.hpp), never a scheduling input, and — like
  /// enqueued_at — server-local state that is not transmitted.
  Duration deferred_wait_us = 0;
};

/// Client -> server progress notification: a sibling of `request` completed
/// and the client's estimates moved. One message per server still holding
/// pending operations of the request.
struct ProgressUpdate {
  /// New critical-path remaining time (request-global).
  double remaining_critical_us = 0;
  /// New earliest completion over the request's ops on servers OTHER than
  /// the destination (deferral bound; 0 = none elsewhere).
  SimTime est_other_completion = 0;
  /// New total remaining demand (request-global; ReqSRPT's key).
  double remaining_total_us = 0;
};

}  // namespace das::sched
