#include "sched/rein.hpp"

#include <cmath>

#include "trace/tracer.hpp"

namespace das::sched {

ReinSbfScheduler::ReinSbfScheduler(Options options) : options_(options) {
  DAS_CHECK(options_.levels >= 2);
  DAS_CHECK(options_.threshold_alpha > 0 && options_.threshold_alpha <= 1);
  DAS_CHECK(options_.max_wait_us > 0);
  levels_.resize(options_.levels);
}

void ReinSbfScheduler::check_policy_invariants() const {
  std::size_t queued = 0;
  for (const auto& level : levels_) {
    level.check_invariants();
    queued += level.size();
  }
  DAS_AUDIT(queued == size(), "Rein level sizes drifted from accounting");
  DAS_AUDIT(ewma_bottleneck_ >= 0, "negative bottleneck threshold");
  DAS_AUDIT(seeded_ || size() == 0 || enqueued_total() == 0,
            "threshold never seeded despite arrivals");
  // Every queued op must be reachable by the aging scan: each live fifo
  // entry names a still-queued handle at its recorded level, and the live
  // entries cover the whole queue (stale entries for served ops are fine —
  // dequeue() skips them lazily).
  std::size_t live = 0;
  for (const FifoEntry& entry : fifo_) {
    DAS_AUDIT(entry.level < levels_.size(), "fifo entry with bad level");
    if (levels_[entry.level].contains(entry.handle)) ++live;
  }
  DAS_AUDIT(live == queued, "aging fifo lost track of queued ops");
}

std::size_t ReinSbfScheduler::level_for(double v) const {
  if (!seeded_ || ewma_bottleneck_ <= 0) return 0;
  // Geometric bands around the running mean: level 0 below the mean, then
  // one level per doubling. Matches Rein's "small multigets go first" split
  // for levels == 2 and generalises smoothly.
  if (v <= ewma_bottleneck_) return 0;
  const double ratio = v / ewma_bottleneck_;
  const auto level = static_cast<std::size_t>(1 + std::floor(std::log2(ratio)));
  return std::min(level, options_.levels - 1);
}

void ReinSbfScheduler::enqueue(const OpContext& op, SimTime now) {
  OpContext copy = op;
  copy.enqueued_at = now;
  note_in(copy);

  const double v = options_.use_bytes ? copy.bottleneck_demand_us
                                      : static_cast<double>(copy.bottleneck_ops);
  // Threshold adaptation sees every arrival, including ones routed to level 0.
  if (!seeded_) {
    ewma_bottleneck_ = v;
    seeded_ = true;
  } else {
    ewma_bottleneck_ += options_.threshold_alpha * (v - ewma_bottleneck_);
  }

  const std::size_t level = level_for(v);
  const std::uint64_t seq = next_arrival_seq_++;
  const Handle h = levels_[level].insert(seq, std::move(copy));
  fifo_.emplace_back(level, seq, h);
}

OpContext ReinSbfScheduler::take(std::size_t level, std::uint64_t arrival_seq,
                                 Handle h) {
  OpContext op = levels_[level].remove_with_key(arrival_seq, h);
  note_out(op);
  return op;
}

OpContext ReinSbfScheduler::dequeue(SimTime now) {
  DAS_CHECK(!empty());
  // Aging: the globally oldest queued op is promoted past all levels once its
  // wait exceeds the bound. Entries for already-served ops are skipped lazily.
  while (!fifo_.empty() && !levels_[fifo_.front().level].contains(fifo_.front().handle))
    fifo_.pop_front();
  if (!fifo_.empty()) {
    const FifoEntry front = fifo_.front();
    const OpContext& oldest = levels_[front.level].at(front.handle);
    if (now - oldest.enqueued_at > options_.max_wait_us) {
      fifo_.pop_front();
      ++aging_promotions_;
      if (tracer_ != nullptr) {
        tracer_->aging_promotion(now, oldest.op_id, oldest.request_id,
                                 tracer_server_, now - oldest.enqueued_at);
      }
      return take(front.level, front.arrival_seq, front.handle);
    }
  }
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (!levels_[level].empty()) {
      const Handle h = levels_[level].min_handle();
      const std::uint64_t seq = levels_[level].min_key();
      return take(level, seq, h);
    }
  }
  DAS_CHECK_MSG(false, "dequeue on empty ReinSbfScheduler");
  return {};
}

std::vector<OpContext> ReinSbfScheduler::drain(SimTime) {
  std::vector<OpContext> out;
  out.reserve(size());
  // Level order, FCFS inside a level — the no-aging serve order. The aging
  // fifo only ever points at queued ops, so it empties wholesale.
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    while (!levels_[level].empty()) {
      const Handle h = levels_[level].min_handle();
      const std::uint64_t seq = levels_[level].min_key();
      out.push_back(take(level, seq, h));
    }
  }
  fifo_.clear();
  return out;
}

}  // namespace das::sched
