// Rein-SBF: Smallest Bottleneck First with priority quantisation and aging.
//
// Reimplementation of the scheduling core of Rein (Reda et al., EuroSys'17),
// the paper's published baseline. A multiget's *bottleneck* is its largest
// per-server slice (ops or demand-µs); requests with small bottlenecks jump
// ahead. Rein quantises priorities into a small number of levels (the
// production system used two) with FCFS inside a level, and promotes
// operations that have waited too long to avoid starving wide multigets.
// The quantisation threshold adapts as an EWMA of observed bottleneck sizes,
// so the split tracks the workload without manual tuning.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/keyed_queue.hpp"
#include "sched/scheduler_base.hpp"

namespace das::sched {

class ReinSbfScheduler final : public SchedulerBase {
 public:
  struct Options {
    std::size_t levels = 2;       // >= 2
    double threshold_alpha = 0.05;  // EWMA smoothing of mean bottleneck
    bool use_bytes = true;          // rank on demand-µs (true) or op count
    Duration max_wait_us = 50.0 * kMillisecond;  // aging promotion bound
  };

  explicit ReinSbfScheduler(Options options);

  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  std::string name() const override { return "rein-sbf"; }

  /// Level an op with bottleneck `v` would be assigned right now (tests).
  std::size_t level_for(double v) const;
  double current_threshold() const { return ewma_bottleneck_; }

  MechanismCounters mechanism_counters() const override {
    return {0, 0, aging_promotions_, 0};
  }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;

  using Handle = KeyedQueue<std::uint64_t>::Handle;

  struct FifoEntry {
    std::size_t level;
    std::uint64_t arrival_seq;
    Handle handle;
  };

  Options options_;
  /// One FCFS queue per priority level, keyed by a global arrival sequence.
  std::vector<KeyedQueue<std::uint64_t>> levels_;
  /// Global arrival order for the aging check.
  std::deque<FifoEntry> fifo_;
  std::uint64_t next_arrival_seq_ = 0;
  double ewma_bottleneck_ = 0;
  bool seeded_ = false;
  std::uint64_t aging_promotions_ = 0;

  OpContext take(std::size_t level, std::uint64_t arrival_seq, Handle h);
};

}  // namespace das::sched
