// Shared bookkeeping for scheduler implementations.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "sched/scheduler.hpp"

namespace das::sched {

/// Tracks queue size and backlog demand; concrete policies call note_in /
/// note_out around their own data-structure updates so the accounting can
/// never drift from the queue contents.
class SchedulerBase : public Scheduler {
 public:
  bool empty() const final { return count_ == 0; }
  std::size_t size() const final { return count_; }
  double backlog_demand_us() const final { return backlog_us_ < 0 ? 0 : backlog_us_; }

  /// Conservation audit shared by every policy: ops enqueued over the
  /// scheduler's lifetime equal ops dequeued plus ops still queued, the
  /// backlog is nonnegative and zero exactly when the queue is empty. Policy
  /// structure is audited by check_policy_invariants().
  void check_invariants() const final {
    DAS_AUDIT(enqueued_total_ == dequeued_total_ + count_,
              "op conservation: enqueued != dequeued + queued");
    DAS_AUDIT(count_ > 0 || backlog_us_ == 0, "backlog nonzero on empty queue");
    DAS_AUDIT(backlog_demand_us() >= 0, "negative backlog demand");
    check_policy_invariants();
  }

  std::uint64_t enqueued_total() const { return enqueued_total_; }
  std::uint64_t dequeued_total() const { return dequeued_total_; }

 protected:
  /// Audits the policy's own order structures; default has none.
  virtual void check_policy_invariants() const {}

  void note_in(const OpContext& op) {
    ++count_;
    ++enqueued_total_;
    backlog_us_ += op.demand_us;
  }
  void note_out(const OpContext& op) {
    DAS_CHECK(count_ > 0);
    --count_;
    ++dequeued_total_;
    backlog_us_ -= op.demand_us;
    if (count_ == 0) backlog_us_ = 0;  // wash out float drift at empty
  }

 private:
  friend struct TestCorruptor;

  std::size_t count_ = 0;
  std::uint64_t enqueued_total_ = 0;
  std::uint64_t dequeued_total_ = 0;
  double backlog_us_ = 0;
};

}  // namespace das::sched
