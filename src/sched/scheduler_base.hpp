// Shared bookkeeping for scheduler implementations.
#pragma once

#include "common/check.hpp"
#include "sched/scheduler.hpp"

namespace das::sched {

/// Tracks queue size and backlog demand; concrete policies call note_in /
/// note_out around their own data-structure updates so the accounting can
/// never drift from the queue contents.
class SchedulerBase : public Scheduler {
 public:
  bool empty() const final { return count_ == 0; }
  std::size_t size() const final { return count_; }
  double backlog_demand_us() const final { return backlog_us_ < 0 ? 0 : backlog_us_; }

 protected:
  void note_in(const OpContext& op) {
    ++count_;
    backlog_us_ += op.demand_us;
  }
  void note_out(const OpContext& op) {
    DAS_CHECK(count_ > 0);
    --count_;
    backlog_us_ -= op.demand_us;
    if (count_ == 0) backlog_us_ = 0;  // wash out float drift at empty
  }

 private:
  std::size_t count_ = 0;
  double backlog_us_ = 0;
};

}  // namespace das::sched
