// Per-server operation scheduler interface and policy factory.
//
// A Scheduler owns the queue of pending operations of one server. The server
// asks for the next operation whenever it goes idle; policies differ only in
// the dequeue order. All policies are non-preemptive at operation
// granularity (a started get runs to completion), which is how real stores
// behave and what the paper assumes.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/invariant.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sched/op_context.hpp"

namespace das::trace {
class Tracer;
}  // namespace das::trace

namespace das::sched {

/// How often each scheduling mechanism actually fired over a scheduler's
/// lifetime; policies report zero for mechanisms they do not implement.
/// Summed over servers into ExperimentResult for the ablation study.
struct MechanismCounters {
  std::uint64_t ops_deferred = 0;     // LRPT-last parked an op (DAS)
  std::uint64_t ops_resumed = 0;      // deferral window closed; op woke up
  std::uint64_t ops_aged = 0;         // starvation bound served the oldest op
  std::uint64_t reranks_applied = 0;  // progress message re-keyed a queued op
};

/// Schedulers are Auditable: check_invariants() verifies conservation
/// (every enqueued op is still queued or was dequeued), nonnegative backlog
/// and remaining-work tags, and the consistency of the policy's internal
/// order structures. See SchedulerBase.
class Scheduler : public Auditable {
 public:
  ~Scheduler() override = default;

  /// Adds an operation to the queue. `now` is the server-local arrival time.
  virtual void enqueue(const OpContext& op, SimTime now) = 0;

  /// Removes and returns the next operation to serve.
  /// Precondition: !empty().
  virtual OpContext dequeue(SimTime now) = 0;

  /// Crash support: removes and returns EVERY queued operation — runnable
  /// and deferred alike — leaving the scheduler empty but reusable (a
  /// recovered server enqueues into the same instance). The ops are being
  /// dropped, not served, so implementations must keep the conservation
  /// accounting consistent (each drained op counts as dequeued), consume no
  /// randomness, and emit no tracer or mechanism-counter events.
  virtual std::vector<OpContext> drain(SimTime now) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  /// Sum of nominal demand (µs) of all queued operations; feeds the server's
  /// advertised delay estimate and the load metrics.
  virtual double backlog_demand_us() const = 0;

  /// Progress notification from the client side: a sibling operation of
  /// `request` completed and its scheduling estimates moved. Policies without
  /// request state ignore it.
  virtual void on_request_progress(RequestId request, const ProgressUpdate& update,
                                   SimTime now);

  /// The server's current service-speed estimate (work-µs per wall-µs, 1.0 =
  /// nominal). Adaptive policies use it to judge local queueing delay.
  virtual void on_speed_estimate(double speed);

  /// Preemption hook: should `incoming` interrupt `in_service`? Only
  /// consulted when the server runs in preemptive mode (an oracle-style
  /// upper bound — production stores serve operations to completion).
  /// `in_service.demand_us` holds the REMAINING demand. Default: never.
  virtual bool preempts(const OpContext& incoming, const OpContext& in_service) const;

  virtual std::string name() const = 0;

  /// Lifetime mechanism-activation counters (zeros unless overridden).
  virtual MechanismCounters mechanism_counters() const { return {}; }

  /// Ops currently parked in a deferred set; 0 for policies without one.
  /// size() always counts runnable + deferred together.
  virtual std::size_t deferred_size() const { return 0; }

  /// Attaches a lifecycle tracer (nullptr detaches). The scheduler emits
  /// defer/resume/re-rank/aging events tagged with `server`. Purely
  /// observational: attaching a tracer never changes scheduling decisions.
  void set_tracer(trace::Tracer* tracer, ServerId server) {
    tracer_ = tracer;
    tracer_server_ = server;
  }

 protected:
  trace::Tracer* tracer_ = nullptr;
  ServerId tracer_server_ = kInvalidServer;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// The policies under study. `kDas*` variants are ablations of kDas.
enum class Policy {
  kFcfs,
  kRandom,
  kSjf,
  kReqSrpt,
  kEdf,
  kReinSbf,
  kDas,
  kDasNoAdapt,    // DAS-NA: adaptive estimation disabled
  kDasNoDefer,    // DAS-ND: safe-deferral (LRPT-last) disabled
  kDasNoAging,    // DAS with starvation aging disabled
  kDasCritical,   // DAS ordering on critical-path remaining instead of total
};

/// Stable lower-case identifier, e.g. "fcfs", "rein-sbf", "das".
std::string to_string(Policy policy);
/// Inverse of to_string; throws on unknown names.
Policy policy_from_string(const std::string& name);
/// All policies in presentation order.
const std::vector<Policy>& all_policies();

/// Tuning shared by policy constructors; semantics per policy documented at
/// each implementation. Defaults reproduce the paper configuration.
struct SchedulerConfig {
  /// DAS / Rein anti-starvation: an op waiting longer than this is served
  /// next regardless of priority. Infinity disables aging.
  Duration max_wait_us = 50.0 * kMillisecond;
  /// Rein: number of priority levels (>= 2).
  std::size_t rein_levels = 2;
  /// Rein: EWMA smoothing for the adaptive bottleneck threshold.
  double rein_threshold_alpha = 0.05;
  /// Rein: rank on demand-µs bottleneck (true) or op-count bottleneck.
  bool rein_use_bytes = true;
  /// DAS: safety margin multiplier on the deferral test; > 1 defers less.
  double das_defer_margin = 2.0;
  /// Seed for randomized policies.
  std::uint64_t seed = 1;
};

SchedulerPtr make_scheduler(Policy policy, const SchedulerConfig& config = {});

}  // namespace das::sched
