// DAS — the Distributed Adaptive Scheduler (the paper's contribution).
//
// "A distributed combination of the largest remaining processing time last
// and shortest remaining processing time first algorithms" (the abstract)
// maps onto two mechanisms driven by client-computed tags:
//
//   SRPT-first — the runnable queue is ordered by the request's REMAINING
//       PROCESSING TIME: its total remaining service demand across all
//       servers (`total_demand_us`, shrunk by progress messages as siblings
//       complete). Requests that need the least further service finish
//       first, draining the in-flight population fastest — the classic
//       mean-flow-time argument, lifted to the fork-join setting. The key
//       deliberately contains no queueing-delay term: queueing is the
//       scheduler's own decision variable, and folding it into the priority
//       collapses the ordering back to FCFS under load.
//
//   LRPT-last — an operation whose request still has a LARGE remaining time
//       elsewhere gains nothing from running early here. The client tags
//       each op with `est_other_completion`, the earliest ABSOLUTE time its
//       request could complete considering only siblings on OTHER servers
//       (tag time + rtt + advertised delay + service). While that bound lies
//       beyond this server's drain horizon (backlog / mu_hat), even serving
//       the op dead last cannot hurt its request, so it parks in a deferred
//       set and yields to operations on their request's critical path.
//
// Adaptivity enters in three places: the client's per-server mu/delay
// estimates feeding the tags (learned from response piggybacks), the
// server's own EWMA speed estimate mu_hat scaling the drain horizon, and
// progress messages re-keying queued operations when siblings complete. An
// aging bound serves the globally oldest operation unconditionally once its
// wait exceeds max_wait, preventing starvation of wide requests.
//
// Each mechanism switches off independently for the ablation study, and the
// primary key can be switched to the request's critical-path remaining time
// (max instead of sum) to quantify why total remaining is the right notion.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "sched/scheduler_base.hpp"

namespace das::sched {

class DasScheduler final : public SchedulerBase {
 public:
  /// What "remaining processing time" means for the SRPT-first ordering.
  enum class PrimaryKey {
    /// Total remaining service demand of the request (the paper's notion;
    /// matches concurrent-open-shop theory for the sum objective).
    kTotalRemaining,
    /// Critical-path remaining time (max per-server remaining); an ablation
    /// that quantifies why the total is the right notion.
    kCriticalPath,
  };

  struct Options {
    /// Track the server's speed estimate; false freezes mu_hat at its
    /// initial value (the DAS-NA ablation's server half).
    bool adaptive = true;
    /// Enable the LRPT-last deferred set; false = pure SRPT-first
    /// (the DAS-ND ablation).
    bool defer = true;
    /// Starvation bound; infinity disables aging.
    Duration max_wait_us = 50.0 * kMillisecond;
    /// Margin multiplier on the safe-deferral test; > 1 defers less.
    double defer_margin = 2.0;
    PrimaryKey primary_key = PrimaryKey::kTotalRemaining;
  };

  explicit DasScheduler(Options options);

  void enqueue(const OpContext& op, SimTime now) override;
  OpContext dequeue(SimTime now) override;
  std::vector<OpContext> drain(SimTime now) override;
  void on_request_progress(RequestId request, const ProgressUpdate& update,
                           SimTime now) override;
  void on_speed_estimate(double speed) override;
  /// Oracle-mode preemption on the primary key (only used when the server
  /// runs preemptively; the paper's DAS is non-preemptive).
  bool preempts(const OpContext& incoming, const OpContext& in_service) const override;
  std::string name() const override;

  /// Introspection for tests and the overhead bench.
  std::size_t deferred_count() const { return deferred_.size(); }
  std::size_t active_count() const { return active_.size(); }
  double speed_estimate() const { return mu_hat_; }
  std::uint64_t total_deferrals() const { return total_deferrals_; }
  std::uint64_t aging_promotions() const { return aging_promotions_; }

  MechanismCounters mechanism_counters() const override {
    return {total_deferrals_, resumes_, aging_promotions_, reranks_};
  }
  std::size_t deferred_size() const override { return deferred_.size(); }

 protected:
  void check_policy_invariants() const override;

 private:
  friend struct TestCorruptor;

  using Handle = std::uint64_t;

  struct OrderKey {
    double k;  // active: remaining_critical_us; deferred: est_other_completion
    Handle h;
    bool operator<(const OrderKey& o) const {
      return k != o.k ? k < o.k : h < o.h;
    }
  };

  struct Record {
    OpContext op;
    bool in_deferred = false;
    /// When the current deferral episode began (valid while in_deferred).
    SimTime defer_started = 0;
  };

  /// Estimated time to drain the entire current backlog at current speed.
  Duration drain_time_us() const;
  double active_key(const OpContext& op) const;
  bool safe_to_defer(SimTime est_other_completion, SimTime now) const;
  void place(Handle h, Record& rec, SimTime now);
  void unlink(Handle h, Record& rec, SimTime now);
  OpContext finish(Handle h, SimTime now);
  void migrate_due(SimTime now);

  Options options_;
  double mu_hat_ = 1.0;

  FlatMap<Handle, Record> records_;
  std::set<OrderKey> active_;    // runnable, SRPT-first by critical remaining
  std::set<OrderKey> deferred_;  // safely deferrable, by deferral expiry
  std::deque<Handle> fifo_;      // arrival order, for aging
  /// Handles queued per request, in arrival order. Progress fan-in walks
  /// this; re-keying one handle never disturbs another's membership, and the
  /// per-handle outcome is order-independent, so a deterministic vector is
  /// result-equivalent to the hash set it replaced (and far cheaper).
  FlatMap<RequestId, std::vector<Handle>> by_request_;
  Handle next_handle_ = 0;
  std::uint64_t total_deferrals_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t aging_promotions_ = 0;
  std::uint64_t reranks_ = 0;
};

}  // namespace das::sched
