#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace das::sim {

void Simulator::compact() {
  std::erase_if(queue_, [this](const HeapEntry& e) { return !entry_live(e); });
  // Rebuilding cannot reorder dispatch: (t, seq) is a total order, so the
  // relative order of the surviving nodes is heap-shape-independent.
  std::make_heap(queue_.begin(), queue_.end());
  ++compactions_;
}

bool Simulator::pop_next(SimTime horizon, SimTime& t_out, EventFn& fn) {
  while (!queue_.empty()) {
    if (!entry_live(queue_.front())) {  // cancelled: drop the dead node
      std::pop_heap(queue_.begin(), queue_.end());
      queue_.pop_back();
      continue;
    }
    // Peek before popping: a beyond-horizon event stays exactly where it is,
    // so run_until never disturbs the queue it leaves behind.
    if (queue_.front().t > horizon) return false;
    std::pop_heap(queue_.begin(), queue_.end());
    const HeapEntry e = queue_.back();
    queue_.pop_back();
    t_out = e.t;
    // Move the callback out and recycle the slot BEFORE invoking: the
    // callback may schedule (growing the slab) or cancel, and a handle to
    // this event is already spent.
    fn = std::move(slots_[e.slot].fn);
    release_slot(e.slot);
    --live_;
    // Popping a live node can tip the dead fraction past the threshold.
    maybe_compact();
    return true;
  }
  return false;
}

bool Simulator::step() {
  SimTime t = 0;
  EventFn fn;
  if (!pop_next(kTimeInfinity, t, fn)) return false;
  DAS_CHECK(t >= now_);
  now_ = t;
  ++dispatched_;
  fn();
  maybe_audit();
  return true;
}

void Simulator::add_auditable(const Auditable* auditable) {
  DAS_CHECK(auditable != nullptr);
  auditables_.push_back(auditable);
}

void Simulator::check_invariants() const {
  DAS_AUDIT(std::is_heap(queue_.begin(), queue_.end()),
            "event queue lost the heap property");
  // Each live slot must be named by exactly one heap entry.
  std::vector<std::uint8_t> seen(slots_.size(), 0);
  std::size_t live = 0;
  for (const HeapEntry& e : queue_) {
    DAS_AUDIT(e.slot < slots_.size(), "heap entry names a slot out of range");
    DAS_AUDIT(e.seq != 0 && e.seq < next_seq_, "event sequence out of range");
    if (!entry_live(e)) continue;
    ++live;
    DAS_AUDIT(!seen[e.slot], "two live heap entries share a slot");
    seen[e.slot] = 1;
    // Time monotonicity: dispatching any live event may never move the
    // clock backwards.
    DAS_AUDIT(e.t >= now_, "live event scheduled in the past");
    DAS_AUDIT(slots_[e.slot].fn != nullptr, "live event without a callback");
  }
  DAS_AUDIT(live == live_, "live-event count out of sync with the heap");
  // Slab accounting: occupied slots are exactly the live events, and the
  // free list threads through every other slot exactly once.
  std::size_t occupied = 0;
  for (const Slot& s : slots_) {
    if (s.seq != 0) ++occupied;
  }
  DAS_AUDIT(occupied == live_, "slab occupancy out of sync with live events");
  std::size_t free_count = 0;
  for (std::uint32_t s = free_head_; s != kNoSlot; s = slots_[s].next_free) {
    DAS_AUDIT(s < slots_.size(), "free list points out of the slab");
    DAS_AUDIT(slots_[s].seq == 0, "occupied slot on the free list");
    ++free_count;
    DAS_AUDIT(free_count <= slots_.size(), "free list cycle");
  }
  DAS_AUDIT(occupied + free_count == slots_.size(),
            "slab slots neither occupied nor free");
  // Compaction runs after every cancel and pop, so dead nodes may exceed
  // live ones only while the queue sits under the compaction floor.
  if (compaction_enabled_) {
    const std::size_t dead = queue_.size() - live;
    DAS_AUDIT(queue_.size() < kCompactionFloor || dead <= live,
              "dead heap nodes outnumber live ones despite compaction");
  }
}

void Simulator::audit_now() const {
  ++audits_run_;
  check_invariants();
  for (const Auditable* auditable : auditables_) {
    auditable->check_invariants();
  }
}

void Simulator::maybe_audit() const {
  if (audit_cadence_ != 0 && dispatched_ % audit_cadence_ == 0) audit_now();
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  DAS_CHECK(t >= now_);
  SimTime event_t = 0;
  EventFn fn;
  while (pop_next(t, event_t, fn)) {
    now_ = event_t;
    ++dispatched_;
    fn();
    maybe_audit();
  }
  now_ = t;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, Duration period, EventFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  DAS_CHECK(period_ > 0);
  DAS_CHECK(fn_ != nullptr);
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicProcess::fire() {
  pending_ = EventHandle{};
  fn_();
  // The callback may have called stop() + start(), in which case start()
  // already scheduled the next occurrence; rescheduling here as well would
  // fork a second, orphaned event chain firing at twice the period.
  if (running_ && !pending_.valid())
    pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

}  // namespace das::sim
