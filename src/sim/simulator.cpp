#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace das::sim {

EventHandle Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  DAS_CHECK_MSG(t >= now_, "cannot schedule into the past");
  DAS_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.emplace_back(t, next_seq_++, id, std::move(fn));
  std::push_heap(queue_.begin(), queue_.end());
  pending_ids_.insert(id);
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  DAS_CHECK_MSG(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  // Erasing from pending_ids_ is the cancellation; the heap node is skipped
  // lazily at pop time. Cancelling fired/cancelled/foreign handles is a no-op.
  pending_ids_.erase(h.id_);
}

bool Simulator::pop_next(Node& out) {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end());
    Node node = std::move(queue_.back());
    queue_.pop_back();
    if (pending_ids_.erase(node.id) == 0) continue;  // was cancelled
    out = std::move(node);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Node node;
  if (!pop_next(node)) return false;
  DAS_CHECK(node.t >= now_);
  now_ = node.t;
  ++dispatched_;
  node.fn();
  maybe_audit();
  return true;
}

void Simulator::add_auditable(const Auditable* auditable) {
  DAS_CHECK(auditable != nullptr);
  auditables_.push_back(auditable);
}

void Simulator::check_invariants() const {
  DAS_AUDIT(std::is_heap(queue_.begin(), queue_.end()),
            "event queue lost the heap property");
  std::unordered_set<std::uint64_t> ids;
  ids.reserve(queue_.size());
  std::size_t live = 0;
  for (const Node& node : queue_) {
    DAS_AUDIT(ids.insert(node.id).second, "duplicate event id in the heap");
    DAS_AUDIT(node.id < next_id_, "event id from the future");
    DAS_AUDIT(node.seq < next_seq_, "event sequence from the future");
    if (pending_ids_.contains(node.id)) {
      ++live;
      // Time monotonicity: dispatching any live event may never move the
      // clock backwards.
      DAS_AUDIT(node.t >= now_, "live event scheduled in the past");
      DAS_AUDIT(node.fn != nullptr, "live event without a callback");
    }
  }
  DAS_AUDIT(live == pending_ids_.size(),
            "live-id index out of sync with the heap");
}

void Simulator::audit_now() const {
  ++audits_run_;
  check_invariants();
  for (const Auditable* auditable : auditables_) {
    auditable->check_invariants();
  }
}

void Simulator::maybe_audit() const {
  if (audit_cadence_ != 0 && dispatched_ % audit_cadence_ == 0) audit_now();
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  DAS_CHECK(t >= now_);
  for (;;) {
    Node node;
    if (!pop_next(node)) break;
    if (node.t > t) {
      // Beyond the horizon: re-insert and stop.
      pending_ids_.insert(node.id);
      queue_.push_back(std::move(node));
      std::push_heap(queue_.begin(), queue_.end());
      break;
    }
    now_ = node.t;
    ++dispatched_;
    node.fn();
    maybe_audit();
  }
  now_ = t;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, Duration period,
                                 std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  DAS_CHECK(period_ > 0);
  DAS_CHECK(fn_ != nullptr);
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicProcess::fire() {
  pending_ = EventHandle{};
  fn_();
  if (running_) pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

}  // namespace das::sim
