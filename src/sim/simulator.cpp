#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace das::sim {

EventHandle Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  DAS_CHECK_MSG(t >= now_, "cannot schedule into the past");
  DAS_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.emplace_back(t, next_seq_++, id, std::move(fn));
  std::push_heap(queue_.begin(), queue_.end());
  pending_ids_.insert(id);
  // Growth can carry the queue across the compaction floor with a backlog of
  // dead nodes accumulated while it was too small to bother compacting.
  maybe_compact();
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  DAS_CHECK_MSG(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  // Erasing from pending_ids_ is the cancellation; the heap node is skipped
  // lazily at pop time. Cancelling fired/cancelled/foreign handles is a no-op.
  if (pending_ids_.erase(h.id_) != 0) maybe_compact();
}

void Simulator::maybe_compact() {
  if (!compaction_enabled_ || queue_.size() < kCompactionFloor) return;
  const std::size_t dead = queue_.size() - pending_ids_.size();
  if (dead * 2 <= queue_.size()) return;
  std::erase_if(queue_, [this](const Node& node) {
    return !pending_ids_.contains(node.id);
  });
  // Rebuilding cannot reorder dispatch: (t, seq) is a total order, so the
  // relative order of the surviving nodes is heap-shape-independent.
  std::make_heap(queue_.begin(), queue_.end());
  ++compactions_;
}

bool Simulator::pop_next(Node& out) {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end());
    Node node = std::move(queue_.back());
    queue_.pop_back();
    if (pending_ids_.erase(node.id) == 0) continue;  // was cancelled
    // Popping a live node can tip the dead fraction past the threshold.
    maybe_compact();
    out = std::move(node);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Node node;
  if (!pop_next(node)) return false;
  DAS_CHECK(node.t >= now_);
  now_ = node.t;
  ++dispatched_;
  node.fn();
  maybe_audit();
  return true;
}

void Simulator::add_auditable(const Auditable* auditable) {
  DAS_CHECK(auditable != nullptr);
  auditables_.push_back(auditable);
}

void Simulator::check_invariants() const {
  DAS_AUDIT(std::is_heap(queue_.begin(), queue_.end()),
            "event queue lost the heap property");
  std::unordered_set<std::uint64_t> ids;
  ids.reserve(queue_.size());
  std::size_t live = 0;
  for (const Node& node : queue_) {
    DAS_AUDIT(ids.insert(node.id).second, "duplicate event id in the heap");
    DAS_AUDIT(node.id < next_id_, "event id from the future");
    DAS_AUDIT(node.seq < next_seq_, "event sequence from the future");
    if (pending_ids_.contains(node.id)) {
      ++live;
      // Time monotonicity: dispatching any live event may never move the
      // clock backwards.
      DAS_AUDIT(node.t >= now_, "live event scheduled in the past");
      DAS_AUDIT(node.fn != nullptr, "live event without a callback");
    }
  }
  DAS_AUDIT(live == pending_ids_.size(),
            "live-id index out of sync with the heap");
  // Compaction runs after every cancel and pop, so dead nodes may exceed
  // live ones only while the queue sits under the compaction floor.
  if (compaction_enabled_) {
    const std::size_t dead = queue_.size() - live;
    DAS_AUDIT(queue_.size() < kCompactionFloor || dead <= live,
              "dead heap nodes outnumber live ones despite compaction");
  }
}

void Simulator::audit_now() const {
  ++audits_run_;
  check_invariants();
  for (const Auditable* auditable : auditables_) {
    auditable->check_invariants();
  }
}

void Simulator::maybe_audit() const {
  if (audit_cadence_ != 0 && dispatched_ % audit_cadence_ == 0) audit_now();
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  DAS_CHECK(t >= now_);
  for (;;) {
    Node node;
    if (!pop_next(node)) break;
    if (node.t > t) {
      // Beyond the horizon: re-insert and stop.
      pending_ids_.insert(node.id);
      queue_.push_back(std::move(node));
      std::push_heap(queue_.begin(), queue_.end());
      break;
    }
    now_ = node.t;
    ++dispatched_;
    node.fn();
    maybe_audit();
  }
  now_ = t;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, Duration period,
                                 std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  DAS_CHECK(period_ > 0);
  DAS_CHECK(fn_ != nullptr);
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicProcess::fire() {
  pending_ = EventHandle{};
  fn_();
  // The callback may have called stop() + start(), in which case start()
  // already scheduled the next occurrence; rescheduling here as well would
  // fork a second, orphaned event chain firing at twice the period.
  if (running_ && !pending_.valid())
    pending_ = sim_.schedule_after(period_, [this] { fire(); });
}

}  // namespace das::sim
