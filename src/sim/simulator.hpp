// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered event queue. Events at equal timestamps
// dispatch in scheduling order (a monotone sequence number breaks ties), so
// runs are fully deterministic. Cancellation is lazy: cancelled events stay
// in the heap and are skipped at pop time, which keeps schedule/cancel O(log n)
// without an indexed heap. When dead (cancelled-but-still-queued) nodes come
// to outnumber live ones the heap is compacted — rebuilt from the live nodes
// only — so workloads that cancel almost every timer they set (hedging,
// retransmission) keep the queue proportional to the live event count.
// Compaction preserves the (t, seq) dispatch order exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/invariant.hpp"
#include "common/types.hpp"

namespace das::sim {

/// Opaque ticket for a scheduled event; valid until the event fires or is
/// cancelled. Default-constructed handles refer to no event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator : public Auditable {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now()).
  EventHandle schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid handle is a harmless no-op (idempotent).
  void cancel(EventHandle h);

  /// Runs until the queue is empty.
  void run();

  /// Runs until simulated time reaches `t` (events with timestamp <= t fire)
  /// or the queue empties. Afterwards now() == t if any horizon was reached.
  void run_until(SimTime t);

  /// Dispatches at most one event; returns false if the queue was empty.
  bool step();

  bool empty() const { return pending_ids_.empty(); }
  std::size_t pending() const { return pending_ids_.size(); }
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// --- lazy-cancel heap compaction ------------------------------------------
  /// Heap nodes including dead (cancelled, not yet reclaimed) ones; the gap
  /// versus pending() is what compaction bounds.
  std::size_t queued_nodes() const { return queue_.size(); }
  /// Times the heap has been rebuilt from its live nodes.
  std::uint64_t compactions() const { return compactions_; }
  /// Disabling compaction restores pure lazy cancellation (tests use this to
  /// show compaction is behaviour-preserving). Dispatch order is identical
  /// either way.
  void set_compaction_enabled(bool enabled) { compaction_enabled_ = enabled; }
  bool compaction_enabled() const { return compaction_enabled_; }

  /// --- invariant auditing ---------------------------------------------------
  /// Registers a component to audit alongside the simulator itself. The
  /// pointer must outlive the simulator (the cluster owns both). Audits run
  /// every `cadence` dispatched events (set_audit_cadence) and on audit_now().
  void add_auditable(const Auditable* auditable);

  /// Audit every `every_n_events` dispatched events; 0 disables (default).
  /// Event timestamps are checked between dispatches, so the cadence also
  /// verifies time monotonicity continuously.
  void set_audit_cadence(std::uint64_t every_n_events) { audit_cadence_ = every_n_events; }
  std::uint64_t audit_cadence() const { return audit_cadence_; }
  std::uint64_t audits_run() const { return audits_run_; }

  /// Audits the simulator and every registered component immediately.
  /// Throws AuditError on the first violation.
  void audit_now() const;

  /// Simulator-local invariants: the heap is a heap, no live event is
  /// scheduled in the past, the live-id index matches the heap contents, and
  /// (when compaction is enabled) dead nodes never outnumber live ones once
  /// the queue is past the compaction floor.
  void check_invariants() const override;

 private:
  struct Node {
    SimTime t;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
    // Min-heap by (t, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const Node& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  /// Pops skipping cancelled events; returns false when drained.
  bool pop_next(Node& out);

  /// Rebuilds the heap from its live nodes when dead ones outnumber them.
  /// Called after every operation that can raise the dead fraction (cancel
  /// and pop), so the dead <= live bound in check_invariants() always holds.
  void maybe_compact();

  /// Below this many heap nodes compaction never triggers: rebuilding a tiny
  /// heap saves nothing and the invariant bound would be noisy.
  static constexpr std::size_t kCompactionFloor = 64;

  // Binary heap managed with std::push_heap/std::pop_heap; a raw vector lets
  // us move the std::function out of the popped node. pending_ids_ holds the
  // ids of live (scheduled, not yet fired or cancelled) events: cancel()
  // erases from it and pop_next() skips heap nodes whose id is absent.
  /// Runs the cadence audit when one is due.
  void maybe_audit() const;

  std::vector<Node> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t compactions_ = 0;
  bool compaction_enabled_ = true;
  std::vector<const Auditable*> auditables_;
  std::uint64_t audit_cadence_ = 0;
  mutable std::uint64_t audits_run_ = 0;
};

/// Repeats a callback with a fixed period until stopped. The callback runs
/// at start + period, start + 2*period, ...; stop() cancels the pending
/// occurrence and prevents future ones. Safe to stop — and to restart via
/// stop() + start() — from within the callback itself; a restart owns the
/// schedule (exactly one chain of events ever exists).
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, Duration period, std::function<void()> fn);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

 private:
  void fire();

  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace das::sim
