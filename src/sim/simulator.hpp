// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered event queue. Events at equal timestamps
// dispatch in scheduling order (a monotone sequence number breaks ties), so
// runs are fully deterministic. Cancellation is lazy: cancelled events stay
// in the heap and are skipped at pop time, which keeps schedule/cancel O(log n)
// without an indexed heap. When dead (cancelled-but-still-queued) nodes come
// to outnumber live ones the heap is compacted — rebuilt from the live nodes
// only — so workloads that cancel almost every timer they set (hedging,
// retransmission) keep the queue proportional to the live event count.
// Compaction preserves the (t, seq) dispatch order exactly.
//
// Storage is split for throughput: the heap itself holds 24-byte POD entries
// {t, seq, slot} (sift operations are raw copies, no callable moves), and
// callbacks live in a slab of pooled slots recycled through a free list — no
// per-event allocation once the slab has grown to the high-water mark. A
// slot's current sequence number doubles as the liveness test: an EventHandle
// (and a heap entry) names {slot, seq}, and cancel/fire bumps the slot's seq
// to 0, so stale handles and dead heap entries are recognized by a single
// integer compare instead of a hash-set lookup per event.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/invariant.hpp"
#include "common/small_fn.hpp"
#include "common/types.hpp"

namespace das::sim {

/// Event callback. The inline capacity is sized for the largest hot-path
/// closure (the cluster's per-op send capture, an OpContext plus pointers);
/// anything bigger falls back to the heap rather than failing to compile.
using EventFn = SmallFn<192>;

/// Opaque ticket for a scheduled event; valid until the event fires or is
/// cancelled. Default-constructed handles refer to no event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  // 0 = no event (sequence numbers start at 1)
};

class Simulator : public Auditable {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now()). The EventFn overload
  /// serves pre-built callbacks (and rejects null ones); the template
  /// overload constructs a plain closure directly in its pooled slot, so the
  /// capture moves exactly once, call site -> slab.
  EventHandle schedule_at(SimTime t, EventFn fn) {
    DAS_CHECK(fn != nullptr);
    return schedule_impl(t, std::move(fn));
  }
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                            std::is_invocable_v<std::remove_cvref_t<F>&>>>
  EventHandle schedule_at(SimTime t, F&& fn) {
    return schedule_impl(t, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, EventFn fn) {
    DAS_CHECK(fn != nullptr);
    DAS_CHECK_MSG(delay >= 0, "delay must be non-negative");
    return schedule_impl(now_ + delay, std::move(fn));
  }
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                            std::is_invocable_v<std::remove_cvref_t<F>&>>>
  EventHandle schedule_after(Duration delay, F&& fn) {
    DAS_CHECK_MSG(delay >= 0, "delay must be non-negative");
    return schedule_impl(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid handle is a harmless no-op (idempotent). A handle is live iff
  /// its slot still carries the same sequence number; fired and cancelled
  /// events moved the slot on (or freed it), so stale and foreign handles
  /// fail the compare. The heap entry stays behind as a dead node, skipped
  /// lazily at pop time.
  void cancel(EventHandle h) {
    if (!h.valid()) return;
    if (h.slot_ >= slots_.size() || slots_[h.slot_].seq != h.seq_) return;
    release_slot(h.slot_);
    --live_;
    maybe_compact();
  }

  /// Runs until the queue is empty.
  void run();

  /// Runs until simulated time reaches `t` (events with timestamp <= t fire)
  /// or the queue empties. Afterwards now() == t if any horizon was reached.
  void run_until(SimTime t);

  /// Dispatches at most one event; returns false if the queue was empty.
  bool step();

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// --- lazy-cancel heap compaction ------------------------------------------
  /// Heap nodes including dead (cancelled, not yet reclaimed) ones; the gap
  /// versus pending() is what compaction bounds.
  std::size_t queued_nodes() const { return queue_.size(); }
  /// Times the heap has been rebuilt from its live nodes.
  std::uint64_t compactions() const { return compactions_; }
  /// Disabling compaction restores pure lazy cancellation (tests use this to
  /// show compaction is behaviour-preserving). Dispatch order is identical
  /// either way.
  void set_compaction_enabled(bool enabled) { compaction_enabled_ = enabled; }
  bool compaction_enabled() const { return compaction_enabled_; }

  /// Pooled callback slots currently allocated (the slab's high-water mark;
  /// introspection for tests — steady-state runs stop growing it).
  std::size_t slab_slots() const { return slots_.size(); }

  /// --- invariant auditing ---------------------------------------------------
  /// Registers a component to audit alongside the simulator itself. The
  /// pointer must outlive the simulator (the cluster owns both). Audits run
  /// every `cadence` dispatched events (set_audit_cadence) and on audit_now().
  void add_auditable(const Auditable* auditable);

  /// Audit every `every_n_events` dispatched events; 0 disables (default).
  /// Event timestamps are checked between dispatches, so the cadence also
  /// verifies time monotonicity continuously.
  void set_audit_cadence(std::uint64_t every_n_events) { audit_cadence_ = every_n_events; }
  std::uint64_t audit_cadence() const { return audit_cadence_; }
  std::uint64_t audits_run() const { return audits_run_; }

  /// Audits the simulator and every registered component immediately.
  /// Throws AuditError on the first violation.
  void audit_now() const;

  /// Simulator-local invariants: the heap is a heap, no live event is
  /// scheduled in the past, heap entries and slab slots describe the same
  /// live set, the free list is consistent with it, and (when compaction is
  /// enabled) dead nodes never outnumber live ones once the queue is past
  /// the compaction floor.
  void check_invariants() const override;

 private:
  /// POD heap node: sift operations copy 24 bytes and never touch the
  /// callback. `seq` snapshots the slot's sequence number at scheduling
  /// time; the entry is dead iff the slot has since moved on.
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
    // Min-heap by (t, seq): std::push_heap builds a max-heap, so invert.
    bool operator<(const HeapEntry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One pooled callback. `seq` == 0 marks a free slot (then `next_free`
  /// chains the free list).
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNoSlot;
  };

  bool entry_live(const HeapEntry& e) const { return slots_[e.slot].seq == e.seq; }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    DAS_CHECK_MSG(slots_.size() < kNoSlot, "event slab exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Destroys the slot's callback and returns it to the free list.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn = nullptr;  // destroy the callback now, releasing its captures
    s.seq = 0;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  template <typename F>
  EventHandle schedule_impl(SimTime t, F&& fn) {
    DAS_CHECK_MSG(t >= now_, "cannot schedule into the past");
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    try {
      s.fn = std::forward<F>(fn);
    } catch (...) {
      // The callable's own copy/move threw (or its heap fallback failed);
      // the slot is still marked free (seq 0), so just rechain it.
      release_slot(slot);
      throw;
    }
    s.seq = seq;
    queue_.push_back(HeapEntry{t, seq, slot});
    std::push_heap(queue_.begin(), queue_.end());
    ++live_;
    // Growth can carry the queue across the compaction floor with a backlog
    // of dead nodes accumulated while it was too small to bother compacting.
    maybe_compact();
    return EventHandle{slot, seq};
  }

  /// Pops the next live event with t <= horizon, moving its callback into
  /// `fn` and its timestamp into `t_out`. Dead heap entries encountered on
  /// the way are dropped. Returns false when drained or when the next live
  /// event lies beyond the horizon (which it peeks without disturbing).
  bool pop_next(SimTime horizon, SimTime& t_out, EventFn& fn);

  /// Rebuilds the heap from its live nodes when dead ones outnumber them.
  /// Called after every operation that can raise the dead fraction (cancel
  /// and pop), so the dead <= live bound in check_invariants() always holds.
  /// The threshold test is inline (three loads on the hot path); the rebuild
  /// itself is out of line.
  void maybe_compact() {
    if (!compaction_enabled_ || queue_.size() < kCompactionFloor) return;
    if ((queue_.size() - live_) * 2 <= queue_.size()) return;
    compact();
  }
  void compact();

  /// Below this many heap nodes compaction never triggers: rebuilding a tiny
  /// heap saves nothing and the invariant bound would be noisy.
  static constexpr std::size_t kCompactionFloor = 64;

  /// Runs the cadence audit when one is due.
  void maybe_audit() const;

  std::vector<HeapEntry> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;  // 0 is the invalid-handle sentinel
  std::uint64_t dispatched_ = 0;
  std::uint64_t compactions_ = 0;
  bool compaction_enabled_ = true;
  std::vector<const Auditable*> auditables_;
  std::uint64_t audit_cadence_ = 0;
  mutable std::uint64_t audits_run_ = 0;
};

/// Repeats a callback with a fixed period until stopped. The callback runs
/// at start + period, start + 2*period, ...; stop() cancels the pending
/// occurrence and prevents future ones. Safe to stop — and to restart via
/// stop() + start() — from within the callback itself; a restart owns the
/// schedule (exactly one chain of events ever exists).
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, Duration period, EventFn fn);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

 private:
  void fire();

  Simulator& sim_;
  Duration period_;
  EventFn fn_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace das::sim
