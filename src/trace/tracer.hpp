// Deterministic event recorder for the full operation lifecycle.
//
// The tracer answers "where did this request's time go, mechanically" at
// event granularity: request arrival, per-op send, server enqueue, the DAS
// mechanism actions (defer, resume, re-rank, aging promotion), service
// start/end, response and request completion, plus sampled per-server
// counters (backlog, mu_hat, runnable/deferred queue depths).
//
// Design constraints, in order:
//   * Zero overhead when disabled. Every producer holds a nullable
//     `Tracer*`; a null pointer means not a single instruction beyond the
//     branch runs. No simulator events, no RNG draws, no message-size
//     changes ever originate here, so a traced run is bit-identical (all
//     ExperimentResult fields) to an untraced one.
//   * Deterministic. Events are recorded in dispatch order with simulation
//     timestamps only; two traced runs with the same seed produce identical
//     event sequences (and byte-identical exported JSON, see
//     chrome_trace.hpp).
//   * Bounded. A configurable cap stops retention; overflow is counted
//     explicitly (dropped()) instead of silently truncating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace das::trace {

/// What happened. Payload fields a/b of TraceEvent are per-kind (documented
/// at each typed emitter below).
enum class EventKind : std::uint8_t {
  kRequestArrival,   // client: a new request entered the system
  kOpSend,           // client -> server op message (a=demand_us, b=resend)
  kServerEnqueue,    // op joined a server's scheduler queue
  kOpDefer,          // DAS parked the op in the deferred set (a=est_other)
  kOpResume,         // deferral window closed; op back in the runnable set
  kOpRerank,         // progress message re-keyed the op (a=old, b=new key)
  kAgingPromotion,   // starvation bound served the oldest op (a=waited_us)
  kServiceStart,     // op entered service (a=demand_us)
  kServiceEnd,       // op left service (completion or preemption)
  kResponse,         // client accepted the op's response
  kRequestComplete,  // last response arrived (a=rct_us)
  kCounterSample,    // per-server gauges (a=backlog_us, b=mu_hat,
                     //   c=runnable depth, d=deferred depth)
  kFaultEvent,       // fault-plan instant (a=FaultTraceKind, b=factor)
  kStoreEvent,       // store-model transition (a=StoreTraceKind, b=debt_bytes)
  kStoreCounterSample,  // store gauges (a=memtable_fill_bytes,
                        //   b=compaction_debt_bytes, c=l0 run count)
  kOpShed,            // overload layer shed the op (a=OpShedReason)
  kRequestShed,       // request shed: admission refusal / BUSY give-up
                      //   (a=age_us, b=1 when refused at admission)
  kRequestExpired,    // end-to-end deadline passed (a=age_us)
};

/// Stable lower-snake identifier, e.g. "op_defer", "service_start".
const char* to_string(EventKind kind);

/// Mirror of fault::FaultKind so the trace layer stays independent of the
/// fault library; the Cluster maps between the two when it executes a plan.
enum class FaultTraceKind : std::uint8_t {
  kCrash,
  kRecover,
  kSlowStart,
  kSlowEnd,
  kPartition,
  kHeal,
  kLossStart,
  kLossEnd,
};

/// Stable lower-snake identifier, e.g. "crash", "slow_start".
const char* to_string(FaultTraceKind kind);

/// Mirror of store::StoreTransitionKind so the trace layer stays independent
/// of the store library; the Server maps between the two when it forwards a
/// model transition.
enum class StoreTraceKind : std::uint8_t {
  kCompactionStart,
  kCompactionEnd,
  kWriteStallStart,
  kWriteStallEnd,
  kFlush,
};

/// Stable lower-snake identifier, e.g. "compaction_start", "flush".
const char* to_string(StoreTraceKind kind);

/// Why the overload layer shed an op (payload `a` of kOpShed).
enum class OpShedReason : std::uint8_t {
  kQueueFull,     // bounded queue at cap: arrival rejected BUSY
  kSojourn,       // sojourn-drop policy: waited past the threshold
  kExpired,       // end-to-end deadline passed before dispatch
};

/// Stable lower-snake identifier, e.g. "queue_full", "sojourn".
const char* to_string(OpShedReason reason);

/// One recorded event. Fixed-size so the ring stays cache-friendly; ids not
/// meaningful for a kind are left at their defaults (kInvalidServer etc.).
struct TraceEvent {
  EventKind kind = EventKind::kRequestArrival;
  SimTime t = 0;
  RequestId request = 0;
  OperationId op = 0;
  ClientId client = 0;
  ServerId server = kInvalidServer;
  /// Kind-specific payload; see EventKind.
  double a = 0;
  double b = 0;
  double c = 0;
  double d = 0;
};

class Tracer {
 public:
  struct Config {
    /// Maximum retained events; later events are counted as dropped.
    std::size_t cap = 1u << 20;
    /// Servers emit one counter sample every `counter_stride` received ops.
    std::size_t counter_stride = 16;
  };

  Tracer();
  explicit Tracer(Config config);

  void record(const TraceEvent& event);

  // --- typed emitters (thin wrappers building the payload layout) ---------
  void request_arrival(SimTime t, RequestId request, ClientId client,
                       std::size_t fanout);
  /// `resend` marks retransmissions and hedge copies.
  void op_send(SimTime t, OperationId op, RequestId request, ClientId client,
               ServerId server, double demand_us, bool resend);
  void server_enqueue(SimTime t, OperationId op, RequestId request,
                      ServerId server);
  void op_defer(SimTime t, OperationId op, RequestId request, ServerId server,
                SimTime est_other_completion);
  void op_resume(SimTime t, OperationId op, RequestId request, ServerId server);
  void op_rerank(SimTime t, OperationId op, RequestId request, ServerId server,
                 double old_key, double new_key);
  void aging_promotion(SimTime t, OperationId op, RequestId request,
                       ServerId server, Duration waited_us);
  void service_start(SimTime t, OperationId op, RequestId request,
                     ServerId server, double demand_us);
  void service_end(SimTime t, OperationId op, RequestId request, ServerId server);
  void response(SimTime t, OperationId op, RequestId request, ClientId client,
                ServerId server);
  void request_complete(SimTime t, RequestId request, ClientId client,
                        double rct_us);
  void counter_sample(SimTime t, ServerId server, double backlog_us,
                      double mu_hat, std::size_t runnable, std::size_t deferred);
  /// `server` is kInvalidServer for cluster-wide faults (loss bursts);
  /// `factor` carries the slowdown multiplier or burst loss probability.
  void fault_event(SimTime t, FaultTraceKind fault, ServerId server,
                   double factor);
  /// Store-model transition (compaction/stall window edge, memtable flush);
  /// `debt_bytes` is the compaction debt outstanding at the transition.
  void store_transition(SimTime t, StoreTraceKind kind, ServerId server,
                        double debt_bytes);
  /// Sampled store-model gauges; piggybacks on the same arrival stride as
  /// counter_sample.
  void store_counter_sample(SimTime t, ServerId server,
                            double memtable_fill_bytes,
                            double compaction_debt_bytes, std::size_t l0_runs);
  /// Overload layer: server shed one op (BUSY rejection, sojourn or expiry
  /// drop — `reason` says which).
  void op_shed(SimTime t, OperationId op, RequestId request, ServerId server,
               OpShedReason reason);
  /// Overload layer: the whole request was shed client-side. `at_admission`
  /// marks refusals before any op was sent.
  void request_shed(SimTime t, RequestId request, ClientId client,
                    double age_us, bool at_admission);
  /// Overload layer: the request's end-to-end deadline passed.
  void request_expired(SimTime t, RequestId request, ClientId client,
                       double age_us);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Events rejected by the cap (explicit drop accounting: retained +
  /// dropped = offered).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t offered() const {
    return static_cast<std::uint64_t>(events_.size()) + dropped_;
  }
  std::size_t cap() const { return config_.cap; }
  std::size_t counter_stride() const { return config_.counter_stride; }

 private:
  Config config_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace das::trace
