#include "trace/rct_breakdown.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace das::trace {

RequestBreakdown make_request_breakdown(SimTime arrival, SimTime completion,
                                        const OpServiceTiming& critical,
                                        double straggler_slack_sum_us,
                                        std::size_t fanout) {
  DAS_CHECK_MSG(critical.valid, "breakdown needs the server timing echo");
  // Cut-point ordering along the critical op's lifecycle.
  DAS_CHECK(completion >= arrival);
  DAS_CHECK(critical.enqueued_at >= arrival);
  DAS_CHECK(critical.service_start >= critical.enqueued_at);
  DAS_CHECK(critical.service_end >= critical.service_start);
  DAS_CHECK(completion >= critical.service_end);
  DAS_CHECK(critical.deferred_us >= 0);
  DAS_CHECK(fanout >= 1);

  RequestBreakdown bd;
  bd.arrival = arrival;
  // The exact expression Metrics::record_request computes — same doubles in,
  // same double out.
  bd.rct_us = completion - arrival;
  bd.network_us = (critical.enqueued_at - arrival) +
                  (completion - critical.service_end);
  bd.service_us = critical.service_end - critical.service_start;
  const double wait = critical.service_start - critical.enqueued_at;
  // Under preempt-resume the op re-enqueues mid-service, so the accumulated
  // deferred time can exceed the LAST queueing episode (the only one the
  // timing echo spans); clamp so the runnable residual stays a wait.
  bd.deferred_wait_us = std::min(critical.deferred_us, wait);
  bd.straggler_slack_us =
      fanout > 1 ? straggler_slack_sum_us / static_cast<double>(fanout - 1) : 0;

  // Residual construction: fold every rounding ulp of the decomposition into
  // the runnable-wait term, then nudge until the fixed-order sum (total_us())
  // reconstructs the measured RCT bitwise. Nudging runnable alone can fail:
  // when runnable and the sum share a binade, consecutive runnable values map
  // to sums two ulps apart under round-to-even and can straddle rct_us
  // forever. In that case shift the rounding phase instead — bump the
  // dominant sibling term by one of ITS ulps (a sub-ulp move at the sum's
  // scale) and retry; a result-ulp of phase is covered within ~64 shifts.
  double* phase = &bd.network_us;
  if (std::abs(bd.service_us) > std::abs(*phase)) phase = &bd.service_us;
  if (std::abs(bd.deferred_wait_us) > std::abs(*phase))
    phase = &bd.deferred_wait_us;
  double runnable = 0;
  bool closed = false;
  for (int shift = 0; shift < 4096 && !closed; ++shift) {
    const double partial = (bd.network_us + bd.deferred_wait_us) + bd.service_us;
    runnable = bd.rct_us - partial;
    for (int i = 0; i < 4 && partial + runnable != bd.rct_us; ++i) {
      runnable = std::nextafter(
          runnable,
          partial + runnable < bd.rct_us ? kTimeInfinity : -kTimeInfinity);
    }
    closed = partial + runnable == bd.rct_us;
    if (!closed) *phase = std::nextafter(*phase, kTimeInfinity);
  }
  bd.runnable_wait_us = runnable;
  DAS_CHECK_MSG(bd.total_us() == bd.rct_us,
                "breakdown components do not sum exactly to the RCT");
  // The residual must also agree with the direct measurement — otherwise the
  // sum is exact but the attribution itself is wrong.
  const double direct = wait - bd.deferred_wait_us;
  const double tol = 1e-6 * std::max(1.0, bd.rct_us);
  DAS_CHECK_MSG(std::abs(bd.runnable_wait_us - direct) <= tol,
                "runnable-wait residual drifted from the measured wait");
  DAS_CHECK(bd.runnable_wait_us >= -tol);
  return bd;
}

void BreakdownCollector::record(const RequestBreakdown& breakdown) {
  if (breakdown.arrival < window_begin_ || breakdown.arrival >= window_end_)
    return;
  rct_.add(breakdown.rct_us);
  network_.add(breakdown.network_us);
  runnable_.add(breakdown.runnable_wait_us);
  deferred_.add(breakdown.deferred_wait_us);
  service_.add(breakdown.service_us);
  slack_.add(breakdown.straggler_slack_us);
  if (rows_.size() < retain_cap_) {
    rows_.push_back(breakdown);
  } else if (retain_cap_ > 0) {
    ++rows_dropped_;
  }
}

BreakdownSummary BreakdownCollector::summary() const {
  BreakdownSummary s;
  s.requests = rct_.count();
  if (s.requests == 0) return s;
  s.mean_rct_us = rct_.mean();
  s.mean_network_us = network_.mean();
  s.mean_runnable_wait_us = runnable_.mean();
  s.mean_deferred_wait_us = deferred_.mean();
  s.mean_service_us = service_.mean();
  s.mean_straggler_slack_us = slack_.mean();
  return s;
}

}  // namespace das::trace
