#include "trace/tracer.hpp"

#include "common/check.hpp"

namespace das::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRequestArrival: return "request_arrival";
    case EventKind::kOpSend: return "op_send";
    case EventKind::kServerEnqueue: return "server_enqueue";
    case EventKind::kOpDefer: return "op_defer";
    case EventKind::kOpResume: return "op_resume";
    case EventKind::kOpRerank: return "op_rerank";
    case EventKind::kAgingPromotion: return "aging_promotion";
    case EventKind::kServiceStart: return "service_start";
    case EventKind::kServiceEnd: return "service_end";
    case EventKind::kResponse: return "response";
    case EventKind::kRequestComplete: return "request_complete";
    case EventKind::kCounterSample: return "counter_sample";
    case EventKind::kFaultEvent: return "fault_event";
    case EventKind::kStoreEvent: return "store_event";
    case EventKind::kStoreCounterSample: return "store_counter_sample";
    case EventKind::kOpShed: return "op_shed";
    case EventKind::kRequestShed: return "request_shed";
    case EventKind::kRequestExpired: return "request_expired";
  }
  DAS_CHECK_MSG(false, "unknown trace event kind");
  return "?";
}

const char* to_string(OpShedReason reason) {
  switch (reason) {
    case OpShedReason::kQueueFull: return "queue_full";
    case OpShedReason::kSojourn: return "sojourn";
    case OpShedReason::kExpired: return "expired";
  }
  DAS_CHECK_MSG(false, "unknown op shed reason");
  return "?";
}

const char* to_string(FaultTraceKind kind) {
  switch (kind) {
    case FaultTraceKind::kCrash: return "crash";
    case FaultTraceKind::kRecover: return "recover";
    case FaultTraceKind::kSlowStart: return "slow_start";
    case FaultTraceKind::kSlowEnd: return "slow_end";
    case FaultTraceKind::kPartition: return "partition";
    case FaultTraceKind::kHeal: return "heal";
    case FaultTraceKind::kLossStart: return "loss_start";
    case FaultTraceKind::kLossEnd: return "loss_end";
  }
  DAS_CHECK_MSG(false, "unknown fault trace kind");
  return "?";
}

const char* to_string(StoreTraceKind kind) {
  switch (kind) {
    case StoreTraceKind::kCompactionStart: return "compaction_start";
    case StoreTraceKind::kCompactionEnd: return "compaction_end";
    case StoreTraceKind::kWriteStallStart: return "write_stall_start";
    case StoreTraceKind::kWriteStallEnd: return "write_stall_end";
    case StoreTraceKind::kFlush: return "flush";
  }
  DAS_CHECK_MSG(false, "unknown store trace kind");
  return "?";
}

Tracer::Tracer() : Tracer(Config{}) {}

Tracer::Tracer(Config config) : config_(config) {
  DAS_CHECK(config_.cap > 0);
  DAS_CHECK(config_.counter_stride > 0);
}

void Tracer::record(const TraceEvent& event) {
  if (events_.size() >= config_.cap) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void Tracer::request_arrival(SimTime t, RequestId request, ClientId client,
                             std::size_t fanout) {
  TraceEvent ev;
  ev.kind = EventKind::kRequestArrival;
  ev.t = t;
  ev.request = request;
  ev.client = client;
  ev.a = static_cast<double>(fanout);
  record(ev);
}

void Tracer::op_send(SimTime t, OperationId op, RequestId request,
                     ClientId client, ServerId server, double demand_us,
                     bool resend) {
  TraceEvent ev;
  ev.kind = EventKind::kOpSend;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.client = client;
  ev.server = server;
  ev.a = demand_us;
  ev.b = resend ? 1 : 0;
  record(ev);
}

void Tracer::server_enqueue(SimTime t, OperationId op, RequestId request,
                            ServerId server) {
  TraceEvent ev;
  ev.kind = EventKind::kServerEnqueue;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  record(ev);
}

void Tracer::op_defer(SimTime t, OperationId op, RequestId request,
                      ServerId server, SimTime est_other_completion) {
  TraceEvent ev;
  ev.kind = EventKind::kOpDefer;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  ev.a = est_other_completion;
  record(ev);
}

void Tracer::op_resume(SimTime t, OperationId op, RequestId request,
                       ServerId server) {
  TraceEvent ev;
  ev.kind = EventKind::kOpResume;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  record(ev);
}

void Tracer::op_rerank(SimTime t, OperationId op, RequestId request,
                       ServerId server, double old_key, double new_key) {
  TraceEvent ev;
  ev.kind = EventKind::kOpRerank;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  ev.a = old_key;
  ev.b = new_key;
  record(ev);
}

void Tracer::aging_promotion(SimTime t, OperationId op, RequestId request,
                             ServerId server, Duration waited_us) {
  TraceEvent ev;
  ev.kind = EventKind::kAgingPromotion;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  ev.a = waited_us;
  record(ev);
}

void Tracer::service_start(SimTime t, OperationId op, RequestId request,
                           ServerId server, double demand_us) {
  TraceEvent ev;
  ev.kind = EventKind::kServiceStart;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  ev.a = demand_us;
  record(ev);
}

void Tracer::service_end(SimTime t, OperationId op, RequestId request,
                         ServerId server) {
  TraceEvent ev;
  ev.kind = EventKind::kServiceEnd;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  record(ev);
}

void Tracer::response(SimTime t, OperationId op, RequestId request,
                      ClientId client, ServerId server) {
  TraceEvent ev;
  ev.kind = EventKind::kResponse;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.client = client;
  ev.server = server;
  record(ev);
}

void Tracer::request_complete(SimTime t, RequestId request, ClientId client,
                              double rct_us) {
  TraceEvent ev;
  ev.kind = EventKind::kRequestComplete;
  ev.t = t;
  ev.request = request;
  ev.client = client;
  ev.a = rct_us;
  record(ev);
}

void Tracer::counter_sample(SimTime t, ServerId server, double backlog_us,
                            double mu_hat, std::size_t runnable,
                            std::size_t deferred) {
  TraceEvent ev;
  ev.kind = EventKind::kCounterSample;
  ev.t = t;
  ev.server = server;
  ev.a = backlog_us;
  ev.b = mu_hat;
  ev.c = static_cast<double>(runnable);
  ev.d = static_cast<double>(deferred);
  record(ev);
}

void Tracer::fault_event(SimTime t, FaultTraceKind fault, ServerId server,
                         double factor) {
  TraceEvent ev;
  ev.kind = EventKind::kFaultEvent;
  ev.t = t;
  ev.server = server;
  ev.a = static_cast<double>(fault);
  ev.b = factor;
  record(ev);
}

void Tracer::store_transition(SimTime t, StoreTraceKind kind, ServerId server,
                              double debt_bytes) {
  TraceEvent ev;
  ev.kind = EventKind::kStoreEvent;
  ev.t = t;
  ev.server = server;
  ev.a = static_cast<double>(kind);
  ev.b = debt_bytes;
  record(ev);
}

void Tracer::store_counter_sample(SimTime t, ServerId server,
                                  double memtable_fill_bytes,
                                  double compaction_debt_bytes,
                                  std::size_t l0_runs) {
  TraceEvent ev;
  ev.kind = EventKind::kStoreCounterSample;
  ev.t = t;
  ev.server = server;
  ev.a = memtable_fill_bytes;
  ev.b = compaction_debt_bytes;
  ev.c = static_cast<double>(l0_runs);
  record(ev);
}

void Tracer::op_shed(SimTime t, OperationId op, RequestId request,
                     ServerId server, OpShedReason reason) {
  TraceEvent ev;
  ev.kind = EventKind::kOpShed;
  ev.t = t;
  ev.request = request;
  ev.op = op;
  ev.server = server;
  ev.a = static_cast<double>(reason);
  record(ev);
}

void Tracer::request_shed(SimTime t, RequestId request, ClientId client,
                          double age_us, bool at_admission) {
  TraceEvent ev;
  ev.kind = EventKind::kRequestShed;
  ev.t = t;
  ev.request = request;
  ev.client = client;
  ev.a = age_us;
  ev.b = at_admission ? 1 : 0;
  record(ev);
}

void Tracer::request_expired(SimTime t, RequestId request, ClientId client,
                             double age_us) {
  TraceEvent ev;
  ev.kind = EventKind::kRequestExpired;
  ev.t = t;
  ev.request = request;
  ev.client = client;
  ev.a = age_us;
  record(ev);
}

}  // namespace das::trace
