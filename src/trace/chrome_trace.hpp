// Chrome trace-event JSON export (loads directly in Perfetto / chrome://tracing).
//
// Layout: one "process" per server (service slices on thread 0, scheduler
// mechanism instants on thread 1, backlog/mu_hat/queue-depth counter tracks)
// and one per client (async request-lifetime spans). Flow events stitch a
// request's operations across processes: op send (client) -> server enqueue
// -> response delivery (client), so the fan-out and the critical path are
// visible as arrows.
//
// The writer is purely a function of the recorded event sequence and prints
// doubles with round-trip precision, so two traced runs with the same seed
// emit byte-identical files.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace das::trace {

/// Renders `{"traceEvents": [...], ...}` (trailing newline included).
void render_chrome_trace(std::ostream& os, const Tracer& tracer);

/// render_chrome_trace to a string (determinism tests diff these).
std::string chrome_trace_string(const Tracer& tracer);

/// Writes the trace JSON to `path` (DAS_CHECK on I/O failure).
void write_chrome_trace(const std::string& path, const Tracer& tracer);

}  // namespace das::trace
