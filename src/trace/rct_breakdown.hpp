// Exact per-request decomposition of the request completion time.
//
// Every request's RCT is attributed to the critical-path operation — the op
// whose response completed the request — and split into four components
// that sum EXACTLY (bitwise, not approximately) to the measured RCT:
//
//   network_us        client->server delivery of the served copy plus
//                     server->client delivery of its response
//   runnable_wait_us  time queued in the scheduler's runnable set
//   deferred_wait_us  time parked in a deferred set (DAS's LRPT-last;
//                     identically zero for policies that never defer)
//   service_us        time in service at the server
//
// plus `straggler_slack_us`, the mean idle time between a non-critical
// sibling's response and the request's completion (how much slack LRPT-last
// can safely exploit). Slack describes the siblings, not the critical path,
// so it is reported alongside the sum rather than inside it.
//
// Exactness: the four components are computed from the same doubles the
// metrics pipeline uses, but a sum of rounded differences is not bitwise the
// difference of the endpoints. The residual construction below therefore
// derives runnable_wait_us as `rct - (network + deferred + service)` and
// nudges it by at most a few ulps until the fixed-order sum reconstructs the
// measured RCT exactly; a DAS_CHECK verifies both the bitwise identity and
// that the residual agrees with the directly measured runnable wait to
// float-noise tolerance. The invariant is enforced on EVERY request of
// EVERY run (collection is always on — it is pure arithmetic on values
// already in hand), so a broken attribution fails loudly, not statistically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace das::trace {

/// Per-op service timing echoed by the server on each response. This is
/// observability side-channel state, NOT protocol payload: it is excluded
/// from the wire-format encoders and sizes (core/wire.hpp), so enabling the
/// breakdown never changes simulated network bytes.
struct OpServiceTiming {
  SimTime enqueued_at = 0;    // joined the scheduler queue
  SimTime service_start = 0;  // entered service
  SimTime service_end = 0;    // left service (the response's completion time)
  /// Cumulative time the op spent parked in a deferred set.
  Duration deferred_us = 0;
  bool valid = false;
};

/// One request's attribution. total_us() == rct_us holds bitwise.
struct RequestBreakdown {
  SimTime arrival = 0;  // request arrival (window filtering key)
  double rct_us = 0;
  double network_us = 0;
  double runnable_wait_us = 0;
  double deferred_wait_us = 0;
  double service_us = 0;
  /// Mean over non-critical siblings of (completion - sibling response
  /// delivery); 0 for fanout-1 requests. Not part of the exact sum.
  double straggler_slack_us = 0;

  /// The fixed evaluation order the exactness guarantee is stated in.
  double total_us() const {
    return ((network_us + deferred_wait_us) + service_us) + runnable_wait_us;
  }
};

/// Builds the attribution of one request from the critical op's timing echo.
/// `straggler_slack_sum_us` is the SUM over the non-critical siblings.
/// DAS_CHECKs the cut-point ordering (arrival <= enqueue <= start <= end <=
/// completion) and the bitwise identity total_us() == rct_us.
RequestBreakdown make_request_breakdown(SimTime arrival, SimTime completion,
                                        const OpServiceTiming& critical,
                                        double straggler_slack_sum_us,
                                        std::size_t fanout);

/// Aggregate attribution over the measurement window of one run.
struct BreakdownSummary {
  std::uint64_t requests = 0;
  double mean_rct_us = 0;
  double mean_network_us = 0;
  double mean_runnable_wait_us = 0;
  double mean_deferred_wait_us = 0;
  double mean_service_us = 0;
  double mean_straggler_slack_us = 0;
};

/// Accumulates per-request breakdowns (window-filtered, like Metrics) into
/// component means; optionally retains the raw rows up to a cap for tests
/// and offline analysis.
class BreakdownCollector {
 public:
  void set_window(SimTime begin, SimTime end) {
    window_begin_ = begin;
    window_end_ = end;
  }
  /// Retain up to `cap` per-request rows (0 = aggregate only, the default).
  void set_retain_cap(std::size_t cap) { retain_cap_ = cap; }

  void record(const RequestBreakdown& breakdown);

  BreakdownSummary summary() const;
  const std::vector<RequestBreakdown>& rows() const { return rows_; }
  /// Rows that fell past the retention cap (aggregates still include them).
  std::uint64_t rows_dropped() const { return rows_dropped_; }

 private:
  SimTime window_begin_ = 0;
  SimTime window_end_ = kTimeInfinity;
  std::size_t retain_cap_ = 0;
  std::vector<RequestBreakdown> rows_;
  std::uint64_t rows_dropped_ = 0;
  StreamingStats rct_;
  StreamingStats network_;
  StreamingStats runnable_;
  StreamingStats deferred_;
  StreamingStats service_;
  StreamingStats slack_;
};

}  // namespace das::trace
