#include "trace/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/flat_map.hpp"

namespace das::trace {

namespace {

// Process ids: servers first, clients in a disjoint range. Perfetto groups
// tracks by pid, so this yields one lane per simulated machine.
std::uint64_t server_pid(ServerId s) { return 1 + static_cast<std::uint64_t>(s); }
std::uint64_t client_pid(ClientId c) {
  return 1'000'000 + static_cast<std::uint64_t>(c);
}
/// Lane for cluster-wide fault instants (loss bursts) that target no server.
constexpr std::uint64_t kClusterPid = 2'000'000;

/// Round-trip double formatting; ts values are already in microseconds, the
/// trace-event native unit.
void num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

/// Ids are emitted as decimal strings: request/op ids pack the client id in
/// the top bits and can exceed 2^53, where JSON numbers lose precision.
void id_str(std::ostream& os, std::uint64_t v) { os << '"' << v << '"'; }

/// One event object. `extra` (may be empty) is a pre-rendered fragment of
/// additional key/value pairs starting with ", ".
void event(std::ostream& os, bool& first, const char* ph, std::uint64_t pid,
           std::uint64_t tid, SimTime ts, const std::string& extra) {
  os << (first ? "\n" : ",\n") << R"(    {"ph": ")" << ph << R"(", "pid": )"
     << pid << R"(, "tid": )" << tid << R"(, "ts": )";
  first = false;
  num(os, ts);
  os << extra << "}";
}

}  // namespace

void render_chrome_trace(std::ostream& os, const Tracer& tracer) {
  // Participants, in deterministic (sorted) order for the metadata block.
  std::set<ServerId> servers;
  std::set<ClientId> clients;
  // Servers with store-model activity get an extra "storage" lane; tracked
  // separately so synthetic-mode traces stay byte-identical.
  std::set<ServerId> store_servers;
  bool cluster_lane = false;
  for (const TraceEvent& ev : tracer.events()) {
    if (ev.server != kInvalidServer) servers.insert(ev.server);
    if (ev.kind == EventKind::kFaultEvent && ev.server == kInvalidServer)
      cluster_lane = true;
    if (ev.kind == EventKind::kStoreEvent ||
        ev.kind == EventKind::kStoreCounterSample) {
      store_servers.insert(ev.server);
    }
    switch (ev.kind) {
      case EventKind::kRequestArrival:
      case EventKind::kOpSend:
      case EventKind::kResponse:
      case EventKind::kRequestComplete:
      case EventKind::kRequestShed:
      case EventKind::kRequestExpired:
        clients.insert(ev.client);
        break;
      default:
        break;
    }
  }

  os << "{\n  \"traceEvents\": [";
  bool first = true;

  const auto meta = [&](const char* what, std::uint64_t pid, std::uint64_t tid,
                        const std::string& name) {
    std::ostringstream extra;
    extra << R"(, "name": ")" << what << R"(", "args": {"name": ")" << name
          << R"("})";
    event(os, first, "M", pid, tid, 0, extra.str());
  };
  for (const ServerId s : servers) {
    meta("process_name", server_pid(s), 0, "server " + std::to_string(s));
    meta("thread_name", server_pid(s), 0, "service");
    meta("thread_name", server_pid(s), 1, "scheduler");
    if (store_servers.count(s) != 0)
      meta("thread_name", server_pid(s), 2, "storage");
  }
  for (const ClientId c : clients) {
    meta("process_name", client_pid(c), 0, "client " + std::to_string(c));
    meta("thread_name", client_pid(c), 0, "requests");
  }
  if (cluster_lane) meta("process_name", kClusterPid, 0, "cluster");

  // Ops currently shown inside an async "deferred" span; lets the writer
  // close spans for ops served straight out of the deferred set (no resume
  // event) and keep begin/end balanced.
  FlatSet<OperationId> deferred_open;  // membership only, never iterated
  const auto close_deferred = [&](const TraceEvent& ev) {
    if (deferred_open.erase(ev.op) == 0) return;
    std::ostringstream extra;
    extra << R"(, "cat": "deferred", "name": "deferred", "id": )";
    id_str(extra, ev.op);
    event(os, first, "e", server_pid(ev.server), 0, ev.t, extra.str());
  };

  for (const TraceEvent& ev : tracer.events()) {
    std::ostringstream extra;
    switch (ev.kind) {
      case EventKind::kRequestArrival:
        extra << R"(, "cat": "request", "name": "request", "id": )";
        id_str(extra, ev.request);
        extra << R"(, "args": {"fanout": )";
        num(extra, ev.a);
        extra << "}";
        event(os, first, "b", client_pid(ev.client), 0, ev.t, extra.str());
        break;
      case EventKind::kOpSend:
        extra << R"(, "cat": "op", "name": "op", "id": )";
        id_str(extra, ev.op);
        extra << R"(, "args": {"request": )";
        id_str(extra, ev.request);
        extra << R"(, "server": )" << ev.server << R"(, "demand_us": )";
        num(extra, ev.a);
        extra << R"(, "resend": )" << (ev.b != 0 ? "true" : "false") << "}";
        event(os, first, "s", client_pid(ev.client), 0, ev.t, extra.str());
        break;
      case EventKind::kServerEnqueue:
        extra << R"(, "cat": "op", "name": "op", "id": )";
        id_str(extra, ev.op);
        extra << R"(, "args": {"request": )";
        id_str(extra, ev.request);
        extra << "}";
        event(os, first, "t", server_pid(ev.server), 0, ev.t, extra.str());
        break;
      case EventKind::kOpDefer:
        if (deferred_open.insert(ev.op)) {
          extra << R"(, "cat": "deferred", "name": "deferred", "id": )";
          id_str(extra, ev.op);
          extra << R"(, "args": {"request": )";
          id_str(extra, ev.request);
          extra << R"(, "est_other_completion": )";
          num(extra, ev.a);
          extra << "}";
          event(os, first, "b", server_pid(ev.server), 0, ev.t, extra.str());
        }
        break;
      case EventKind::kOpResume:
        close_deferred(ev);
        break;
      case EventKind::kOpRerank:
        extra << R"(, "s": "t", "name": "rerank", "args": {"op": )";
        id_str(extra, ev.op);
        extra << R"(, "old_key": )";
        num(extra, ev.a);
        extra << R"(, "new_key": )";
        num(extra, ev.b);
        extra << "}";
        event(os, first, "i", server_pid(ev.server), 1, ev.t, extra.str());
        break;
      case EventKind::kAgingPromotion:
        extra << R"(, "s": "t", "name": "aging_promotion", "args": {"op": )";
        id_str(extra, ev.op);
        extra << R"(, "waited_us": )";
        num(extra, ev.a);
        extra << "}";
        event(os, first, "i", server_pid(ev.server), 1, ev.t, extra.str());
        break;
      case EventKind::kServiceStart:
        close_deferred(ev);
        extra << R"(, "name": "serve", "args": {"op": )";
        id_str(extra, ev.op);
        extra << R"(, "request": )";
        id_str(extra, ev.request);
        extra << R"(, "demand_us": )";
        num(extra, ev.a);
        extra << "}";
        event(os, first, "B", server_pid(ev.server), 0, ev.t, extra.str());
        break;
      case EventKind::kServiceEnd:
        extra << R"(, "name": "serve")";
        event(os, first, "E", server_pid(ev.server), 0, ev.t, extra.str());
        break;
      case EventKind::kResponse:
        extra << R"(, "cat": "op", "name": "op", "bp": "e", "id": )";
        id_str(extra, ev.op);
        event(os, first, "f", client_pid(ev.client), 0, ev.t, extra.str());
        break;
      case EventKind::kRequestComplete:
        extra << R"(, "cat": "request", "name": "request", "id": )";
        id_str(extra, ev.request);
        extra << R"(, "args": {"rct_us": )";
        num(extra, ev.a);
        extra << "}";
        event(os, first, "e", client_pid(ev.client), 0, ev.t, extra.str());
        break;
      case EventKind::kCounterSample: {
        const char* names[] = {"backlog_us", "mu_hat", "runnable", "deferred"};
        const double values[] = {ev.a, ev.b, ev.c, ev.d};
        for (int i = 0; i < 4; ++i) {
          std::ostringstream cx;
          cx << R"(, "name": ")" << names[i] << R"(", "args": {")" << names[i]
             << R"(": )";
          num(cx, values[i]);
          cx << "}";
          event(os, first, "C", server_pid(ev.server), 0, ev.t, cx.str());
        }
        break;
      }
      case EventKind::kFaultEvent: {
        const auto fault = static_cast<FaultTraceKind>(static_cast<int>(ev.a));
        extra << R"(, "s": "p", "cat": "fault", "name": "fault:)"
              << to_string(fault) << R"(", "args": {"factor": )";
        num(extra, ev.b);
        extra << "}";
        const bool on_server = ev.server != kInvalidServer;
        event(os, first, "i", on_server ? server_pid(ev.server) : kClusterPid,
              0, ev.t, extra.str());
        break;
      }
      case EventKind::kStoreEvent: {
        const auto kind = static_cast<StoreTraceKind>(static_cast<int>(ev.a));
        // Compaction and write-stall window edges render as async spans on
        // the storage lane; one id per (category, server) suffices because a
        // model never overlaps two windows of the same kind.
        const auto span = [&](const char* cat, bool begin) {
          extra << R"(, "cat": ")" << cat << R"(", "name": ")" << cat
                << R"(", "id": )";
          id_str(extra, ev.server);
          if (begin) {
            extra << R"(, "args": {"debt_bytes": )";
            num(extra, ev.b);
            extra << "}";
          }
          event(os, first, begin ? "b" : "e", server_pid(ev.server), 2, ev.t,
                extra.str());
        };
        switch (kind) {
          case StoreTraceKind::kCompactionStart: span("compaction", true); break;
          case StoreTraceKind::kCompactionEnd: span("compaction", false); break;
          case StoreTraceKind::kWriteStallStart: span("write_stall", true); break;
          case StoreTraceKind::kWriteStallEnd: span("write_stall", false); break;
          case StoreTraceKind::kFlush:
            extra << R"(, "s": "t", "name": "flush", "args": {"debt_bytes": )";
            num(extra, ev.b);
            extra << "}";
            event(os, first, "i", server_pid(ev.server), 2, ev.t, extra.str());
            break;
        }
        break;
      }
      case EventKind::kStoreCounterSample: {
        const char* names[] = {"memtable_fill_bytes", "compaction_debt_bytes",
                               "l0_runs"};
        const double values[] = {ev.a, ev.b, ev.c};
        for (int i = 0; i < 3; ++i) {
          std::ostringstream cx;
          cx << R"(, "name": ")" << names[i] << R"(", "args": {")" << names[i]
             << R"(": )";
          num(cx, values[i]);
          cx << "}";
          event(os, first, "C", server_pid(ev.server), 0, ev.t, cx.str());
        }
        break;
      }
      case EventKind::kOpShed: {
        // An op shed at dequeue may still be inside a "deferred" span.
        close_deferred(ev);
        const auto reason = static_cast<OpShedReason>(static_cast<int>(ev.a));
        extra << R"(, "s": "t", "cat": "overload", "name": "shed:)"
              << to_string(reason) << R"(", "args": {"op": )";
        id_str(extra, ev.op);
        extra << R"(, "request": )";
        id_str(extra, ev.request);
        extra << "}";
        event(os, first, "i", server_pid(ev.server), 0, ev.t, extra.str());
        break;
      }
      case EventKind::kRequestShed:
        // Shedding closes the request's async span, like completion.
        extra << R"(, "cat": "request", "name": "request", "id": )";
        id_str(extra, ev.request);
        extra << R"(, "args": {"outcome": "shed", "age_us": )";
        num(extra, ev.a);
        extra << R"(, "at_admission": )" << (ev.b != 0 ? "true" : "false")
              << "}";
        event(os, first, "e", client_pid(ev.client), 0, ev.t, extra.str());
        break;
      case EventKind::kRequestExpired:
        extra << R"(, "cat": "request", "name": "request", "id": )";
        id_str(extra, ev.request);
        extra << R"(, "args": {"outcome": "expired", "age_us": )";
        num(extra, ev.a);
        extra << "}";
        event(os, first, "e", client_pid(ev.client), 0, ev.t, extra.str());
        break;
    }
  }

  os << (first ? "]" : "\n  ]") << ",\n  \"displayTimeUnit\": \"ms\",\n"
     << "  \"otherData\": {\"tool\": \"dassim\", \"event_cap\": " << tracer.cap()
     << ", \"dropped_events\": " << tracer.dropped()
     << ", \"counter_stride\": " << tracer.counter_stride() << "}\n}\n";
}

std::string chrome_trace_string(const Tracer& tracer) {
  std::ostringstream os;
  render_chrome_trace(os, tracer);
  return os.str();
}

void write_chrome_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open trace output file: " + path);
  render_chrome_trace(out, tracer);
  out.flush();
  DAS_CHECK_MSG(out.good(), "failed writing trace output file: " + path);
}

}  // namespace das::trace
