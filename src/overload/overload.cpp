#include "overload/overload.hpp"

#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace das::overload {

const char* to_string(RejectPolicy policy) {
  switch (policy) {
    case RejectPolicy::kRejectNew:
      return "reject-new";
    case RejectPolicy::kSojournDrop:
      return "sojourn-drop";
  }
  DAS_CHECK_MSG(false, "unknown RejectPolicy");
  return "";
}

bool policy_from_string(std::string_view token, RejectPolicy& out) {
  if (token == "reject-new") {
    out = RejectPolicy::kRejectNew;
    return true;
  }
  if (token == "sojourn-drop") {
    out = RejectPolicy::kSojournDrop;
    return true;
  }
  return false;
}

Duration OverloadConfig::effective_sojourn_us() const {
  if (sojourn_threshold_us > 0) return sojourn_threshold_us;
  if (deadlines()) return 2.0 * deadline_budget_us;
  return 10.0 * kMillisecond;
}

void OverloadConfig::validate() const {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("OverloadConfig: " + what);
  };
  if (sojourn_threshold_us < 0)
    reject("sojourn_threshold_us must be >= 0 (got " +
           std::to_string(sojourn_threshold_us) + ")");
  if (deadline_budget_us < 0)
    reject("deadline_budget_us must be >= 0 (got " +
           std::to_string(deadline_budget_us) + ")");
  if (admission_floor <= 0 || admission_floor > 1)
    reject("admission_floor must be in (0, 1] (got " +
           std::to_string(admission_floor) + ")");
  if (admission_increase <= 0 || admission_increase > 1)
    reject("admission_increase must be in (0, 1] (got " +
           std::to_string(admission_increase) + ")");
  if (admission_decrease <= 0 || admission_decrease >= 1)
    reject("admission_decrease must be in (0, 1) (got " +
           std::to_string(admission_decrease) + ")");
}

void QueueGuard::check_invariants() const {
  // Counters only accumulate under the feature that owns them: a violation
  // means a shed path ran with its gate off (or double-counted).
  if (!config_.bounded())
    DAS_AUDIT(rejected_busy_ == 0 && dropped_sojourn_ == 0,
              "QueueGuard: BUSY counters nonzero with unbounded queue");
  if (config_.reject_policy != RejectPolicy::kSojournDrop)
    DAS_AUDIT(dropped_sojourn_ == 0,
              "QueueGuard: sojourn drops under reject-new policy");
  if (!config_.deadlines())
    DAS_AUDIT(expired_ == 0,
              "QueueGuard: expiry drops with deadlines disabled");
  DAS_AUDIT(total_shed() >= rejected_busy_,
            "QueueGuard: shed counter overflow");
}

AdmissionController::AdmissionController(std::size_t tenant_count,
                                         const Params& params)
    : params_(params), rate_(tenant_count == 0 ? 1 : tenant_count, 1.0) {
  DAS_CHECK_MSG(params.floor > 0 && params.floor <= 1,
                "AdmissionController: floor out of (0, 1]");
  DAS_CHECK_MSG(params.increase > 0, "AdmissionController: increase <= 0");
  DAS_CHECK_MSG(params.decrease > 0 && params.decrease < 1,
                "AdmissionController: decrease out of (0, 1)");
}

bool AdmissionController::admit(std::size_t tenant, Rng& rng) {
  DAS_CHECK(tenant < rate_.size());
  // Exactly one draw per call regardless of the rate, so the stream stays
  // aligned across configs that only differ in AIMD parameters.
  const bool ok = rng.chance(rate_[tenant]);
  if (ok)
    ++admitted_;
  else
    ++refused_;
  return ok;
}

void AdmissionController::on_success(std::size_t tenant) {
  DAS_CHECK(tenant < rate_.size());
  double& r = rate_[tenant];
  r = r + params_.increase > 1.0 ? 1.0 : r + params_.increase;
}

void AdmissionController::on_overload(std::size_t tenant) {
  DAS_CHECK(tenant < rate_.size());
  double& r = rate_[tenant];
  r = r * params_.decrease < params_.floor ? params_.floor
                                           : r * params_.decrease;
}

void AdmissionController::check_invariants() const {
  for (std::size_t t = 0; t < rate_.size(); ++t)
    DAS_AUDIT(rate_[t] >= params_.floor && rate_[t] <= 1.0,
              "AdmissionController: rate outside [floor, 1] for tenant " +
                  std::to_string(t));
}

}  // namespace das::overload
