// Overload control: bounded queues, deadline enforcement, admission control.
//
// The paper evaluates DAS only in the stable regime (load <= 0.9); above
// saturation an unprotected cluster accumulates unbounded backlog, every
// queued op is eventually served long after its requester stopped caring,
// and retry storms can push the system into a metastable state it never
// leaves. This library is the protection layer threaded through client,
// server and metrics:
//
//   QueueGuard (server side) — caps the scheduler backlog. An arriving op
//       that would push the queue past the cap is rejected with an explicit
//       BUSY response (which still carries d_hat/mu_hat, so rejection FEEDS
//       the learned view instead of looking like a loss). Under the
//       sojourn-drop policy the guard additionally sheds, at dequeue, ops
//       that waited longer than a CoDel-style sojourn threshold — keeping
//       the queue fresh so admitted work is young work.
//
//   Deadline enforcement — every request gets `deadline = arrival + budget`;
//       ops carry the absolute expiry on the wire and servers drop expired
//       ops at dequeue (serving them would be pure waste — Tars' timeliness
//       framing). Clients stop retrying past the deadline and fail the
//       request as EXPIRED. Request conservation extends to
//       generated == completed + failed + shed + expired.
//
//   AdmissionController (client side) — per-tenant AIMD throttle driven by
//       the BUSY/expiry rate: each success additively raises the tenant's
//       admit probability, each overload signal multiplicatively cuts it,
//       clamped to a configurable floor so one storming tenant cannot be
//       starved to zero (nor starve the others — its own storm traffic is
//       what gets shed).
//
// Determinism contract: no wall clocks, no global RNG. The admission coin
// flip draws from a dedicated client-owned stream forked off a COPY of the
// client's RNG, so feature-off runs are bit-identical to pre-layer builds.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/invariant.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace das::overload {

/// What a bounded queue does about excess work.
enum class RejectPolicy {
  /// Reject the ARRIVING op with BUSY when the queue is at cap.
  kRejectNew,
  /// Cap still rejects arrivals (hard backstop), but additionally every
  /// dequeued op that has waited longer than `sojourn_threshold_us` is shed
  /// as BUSY before service (CoDel-style head drop in the scheduler's own
  /// priority order): under sustained overload the queue serves young ops
  /// instead of a FIFO of zombies nobody is waiting for.
  kSojournDrop,
};

/// Canonical CLI token ("reject-new", "sojourn-drop").
const char* to_string(RejectPolicy policy);

/// Parses a CLI token (the exact strings of `to_string`). Returns false on
/// an unknown token, leaving `out` untouched.
bool policy_from_string(std::string_view token, RejectPolicy& out);

/// The overload-control layer's knobs. Everything defaults OFF: a
/// default-constructed config reproduces the unprotected system bit-for-bit.
struct OverloadConfig {
  /// Maximum ops queued per server, 0 = unbounded (feature off).
  std::size_t queue_cap = 0;
  /// What a bounded queue does about excess work.
  RejectPolicy reject_policy = RejectPolicy::kRejectNew;
  /// Sojourn threshold for kSojournDrop; 0 derives 2x the deadline budget
  /// when deadlines are on, else 10ms.
  Duration sojourn_threshold_us = 0;
  /// End-to-end request deadline budget, 0 = no deadlines (feature off).
  Duration deadline_budget_us = 0;
  /// Client-side AIMD admission control on/off.
  bool admission = false;
  /// Admission probability never drops below this floor (per tenant).
  double admission_floor = 0.05;
  /// Additive increase per successfully completed request.
  double admission_increase = 0.02;
  /// Multiplicative decrease factor per overload signal (BUSY / expiry).
  double admission_decrease = 0.5;

  bool bounded() const { return queue_cap > 0; }
  bool deadlines() const { return deadline_budget_us > 0; }
  /// True when ANY protection is active (feature gates + wire extensions).
  bool enabled() const { return bounded() || deadlines() || admission; }

  /// The sojourn threshold actually enforced (resolves the 0 default).
  Duration effective_sojourn_us() const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Server-side queue protection: owns the accept/shed decisions and the shed
/// counters. One instance per server; decisions are pure functions of the
/// config plus the caller-provided queue state, so the guard stays trivially
/// auditable.
class QueueGuard final : public Auditable {
 public:
  explicit QueueGuard(const OverloadConfig& config) : config_(config) {}

  /// True when the arriving op must be rejected BUSY: bounded queue at cap.
  /// (`queue_size` is the scheduler's size BEFORE the insert.)
  bool should_reject(std::size_t queue_size) const {
    return config_.bounded() && queue_size >= config_.queue_cap;
  }

  /// True when a dequeued op must be shed for over-long sojourn
  /// (kSojournDrop only).
  bool should_drop_sojourn(SimTime now, SimTime enqueued_at) const {
    return config_.bounded() &&
           config_.reject_policy == RejectPolicy::kSojournDrop &&
           now - enqueued_at > config_.effective_sojourn_us();
  }

  /// True when a dequeued op is past its end-to-end expiry.
  bool is_expired(SimTime now, SimTime expiry) const {
    return config_.deadlines() && expiry < now;
  }

  void note_rejected() { ++rejected_busy_; }
  void note_sojourn_drop() { ++dropped_sojourn_; }
  void note_expired() { ++expired_; }

  std::uint64_t rejected_busy() const { return rejected_busy_; }
  std::uint64_t dropped_sojourn() const { return dropped_sojourn_; }
  std::uint64_t expired() const { return expired_; }
  /// Every op the guard kept out of service.
  std::uint64_t total_shed() const {
    return rejected_busy_ + dropped_sojourn_ + expired_;
  }

  const OverloadConfig& config() const { return config_; }

  void check_invariants() const override;

 private:
  OverloadConfig config_;
  std::uint64_t rejected_busy_ = 0;    ///< arrivals rejected at cap
  std::uint64_t dropped_sojourn_ = 0;  ///< dequeues shed for sojourn
  std::uint64_t expired_ = 0;          ///< dequeues shed for expiry
};

/// Client-side per-tenant AIMD admission throttle.
///
/// Each tenant holds an admit probability in [floor, 1], starting at 1.
/// Completed requests raise it additively; overload signals (BUSY rejection,
/// request expiry) cut it multiplicatively. Dispatch flips a coin per
/// request on the caller's dedicated stream — a refused request is SHED
/// client-side before any op is sent, which is the whole point: under
/// sustained overload the shedding moves from the server queue (after
/// paying network + queueing) to the client (free).
class AdmissionController final : public Auditable {
 public:
  struct Params {
    double floor = 0.05;
    double increase = 0.02;
    double decrease = 0.5;
  };

  AdmissionController(std::size_t tenant_count, const Params& params);

  /// One coin flip on `rng` (exactly one uniform draw per call).
  /// True = dispatch the request, false = shed it.
  bool admit(std::size_t tenant, Rng& rng);

  /// A request of `tenant` completed inside its deadline.
  void on_success(std::size_t tenant);

  /// A request of `tenant` hit an overload signal (BUSY or expiry).
  void on_overload(std::size_t tenant);

  double rate(std::size_t tenant) const { return rate_[tenant]; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t refused() const { return refused_; }

  void check_invariants() const override;

 private:
  Params params_;
  std::vector<double> rate_;  ///< per-tenant admit probability
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace das::overload
