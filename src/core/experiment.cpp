#include "core/experiment.hpp"

#include "common/check.hpp"

namespace das::core {

ExperimentResult run_experiment(const ClusterConfig& config, const RunWindow& window,
                                trace::Tracer* tracer) {
  Cluster cluster{config, window, tracer};
  return cluster.run();
}

std::vector<PolicyRun> compare_policies(ClusterConfig base,
                                        const std::vector<sched::Policy>& policies,
                                        const RunWindow& window) {
  std::vector<PolicyRun> runs;
  runs.reserve(policies.size());
  for (const sched::Policy policy : policies) {
    base.policy = policy;
    runs.emplace_back(policy, run_experiment(base, window));
  }
  return runs;
}

double rct_improvement(const ExperimentResult& baseline,
                       const ExperimentResult& candidate) {
  DAS_CHECK(baseline.rct.mean > 0);
  return 1.0 - candidate.rct.mean / baseline.rct.mean;
}

}  // namespace das::core
