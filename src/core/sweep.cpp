#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"

namespace das::core {

std::vector<double> parse_load_list(const std::string& spec) {
  std::vector<double> out;
  std::istringstream is{spec};
  std::string token;
  while (std::getline(is, token, ',')) {
    if (token.empty()) {
      throw std::invalid_argument("empty element in load list: '" + spec + "'");
    }
    double load = 0;
    std::size_t pos = 0;
    try {
      load = std::stod(token, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed load '" + token + "' in load list");
    }
    if (pos != token.size() || !std::isfinite(load)) {
      throw std::invalid_argument("malformed load '" + token + "' in load list");
    }
    // Loads above 1 are deliberate overload points (E22); the config-level
    // bound (< 10) still catches typos like "12" for "1.2".
    if (load <= 0.0 || load >= 10.0) {
      throw std::invalid_argument("load '" + token +
                                  "' outside (0, 10) in load list");
    }
    out.push_back(load);
  }
  // getline never yields a token after a trailing comma; catch it explicitly
  // so "0.5," fails like ",0.5" does.
  if (!spec.empty() && spec.back() == ',') {
    throw std::invalid_argument("empty element in load list: '" + spec + "'");
  }
  if (out.empty()) throw std::invalid_argument("empty load list");
  return out;
}

std::size_t SweepRunner::add(SweepPoint point) {
  DAS_CHECK_MSG(!point.experiment.empty(), "sweep point needs an experiment label");
  DAS_CHECK_MSG(!point.point.empty(), "sweep point needs a point label");
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::size_t SweepRunner::add(std::string experiment, std::string point,
                             sched::Policy policy, const ClusterConfig& config,
                             const RunWindow& window) {
  SweepPoint p;
  p.experiment = std::move(experiment);
  p.point = std::move(point);
  p.policy = policy;
  p.config = config;
  p.window = window;
  return add(std::move(p));
}

namespace {

/// Failure channel shared by the sweep workers. Deterministic despite the
/// races: whichever worker fails, only the lowest-indexed failing point's
/// exception survives to be rethrown. The mutex-guarded members carry
/// thread-safety annotations so `-Wthread-safety` proves every access locks.
struct FirstError {
  Mutex mu;
  std::size_t index DAS_GUARDED_BY(mu) = static_cast<std::size_t>(-1);
  std::exception_ptr error DAS_GUARDED_BY(mu);

  void offer(std::size_t i, std::exception_ptr e) DAS_EXCLUDES(mu) {
    const MutexLock lock{mu};
    if (i < index) {
      index = i;
      error = std::move(e);
    }
  }
  std::exception_ptr take() DAS_EXCLUDES(mu) {
    const MutexLock lock{mu};
    return error;
  }
};

}  // namespace

std::vector<SweepOutcome> SweepRunner::run(std::size_t jobs) const {
  std::vector<SweepOutcome> outcomes(points_.size());
  if (points_.empty()) return outcomes;

  // Each outcome slot is written by exactly one worker (the one that claimed
  // the index) and read only after every worker joined, so outcomes need no
  // locking; `next` is the only shared mutable word on the success path.
  std::atomic<std::size_t> next{0};
  FirstError first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points_.size()) return;
      const SweepPoint& p = points_[i];
      try {
        ClusterConfig cfg = p.config;
        cfg.policy = p.policy;
        SweepOutcome out;
        out.experiment = p.experiment;
        out.point = p.point;
        out.policy = p.policy;
        out.seed = cfg.seed;
        out.result = run_experiment(cfg, p.window);
        outcomes[i] = std::move(out);
      } catch (...) {
        first_error.offer(i, std::current_exception());
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::min(jobs, points_.size()));
    for (std::size_t t = 0; t < std::min(jobs, points_.size()); ++t)
      pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic failure too: always the lowest-indexed failing point,
  // independent of worker interleaving.
  if (std::exception_ptr err = first_error.take()) std::rethrow_exception(err);
  return outcomes;
}

std::size_t SweepRunner::default_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace das::core
