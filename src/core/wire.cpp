#include "core/wire.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace das::core::wire {

namespace {

/// Little-endian fixed-width writer/reader. All doubles travel as their
/// IEEE-754 bit pattern (both ends of the simulated protocol agree).
class Writer {
 public:
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  Buffer seal() {
    const std::uint32_t sum = fletcher32(buf_.data(), buf_.size());
    u32(sum);
    return std::move(buf_);
  }

 private:
  Buffer buf_;
};

class Reader {
 public:
  /// Verifies the trailer before any field read; invalid() stays true on a
  /// bad checksum or short buffer.
  explicit Reader(const Buffer& buf) : buf_(buf) {
    if (buf.size() < 5) return;  // kind + trailer minimum
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
      stored |= static_cast<std::uint32_t>(buf[buf.size() - 4 + i]) << (8 * i);
    if (stored != fletcher32(buf.data(), buf.size() - 4)) return;
    end_ = buf.size() - 4;
    valid_ = true;
  }

  bool valid() const { return valid_ && pos_ <= end_; }

  std::uint8_t u8() { return take(1) ? buf_[pos_ - 1] : 0; }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(buf_[pos_ - 4 + i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(buf_[pos_ - 8 + i]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool exhausted() const { return pos_ == end_; }

 private:
  bool take(std::size_t n) {
    if (!valid_ || pos_ + n > end_) {
      valid_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const Buffer& buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  bool valid_ = false;
};

// Fixed field budgets (bytes, excluding the 4-byte trailer).
constexpr std::size_t kOpFixed = 1      // kind
                                 + 8    // op_id
                                 + 8    // request_id
                                 + 4    // client
                                 + 8    // key
                                 + 8    // demand
                                 + 8    // request_arrival
                                 + 8    // remaining_critical
                                 + 8    // est_other_completion
                                 + 4    // bottleneck_ops
                                 + 8    // bottleneck_demand
                                 + 8    // total_demand
                                 + 8    // deadline
                                 + 1    // is_write
                                 + 8;   // write_size
constexpr std::size_t kResponseFixed = 1 + 8 + 8 + 4 + 4 + 8 + 1 + 1 + 8 + 8 + 8 + 8;
constexpr std::size_t kProgressFixed = 1 + 8 + 8 + 8 + 8;
constexpr std::size_t kTrailer = 4;

// Overload-control extensions ride as OPTIONAL trailing fields, present only
// when the feature is active for the message (finite expiry / non-OK status).
// Presence is length-derived at decode, so protected and unprotected builds
// interoperate and feature-off message sizes are bit-identical to pre-layer
// builds.
constexpr std::size_t kOpExpiryExt = 8;      // f64 absolute expiry
constexpr std::size_t kResponseStatusExt = 1;  // u8 OpStatus

}  // namespace

std::uint32_t fletcher32(const std::uint8_t* data, std::size_t size) {
  // Operates on 16-bit words (pad the odd byte with zero), modulo 65535.
  std::uint32_t c0 = 0, c1 = 0;
  std::size_t i = 0;
  while (i < size) {
    // Block size 360 keeps the sums below 2^32 before reduction.
    const std::size_t block_end = std::min(size, i + 720);
    for (; i + 1 < block_end; i += 2) {
      c0 += static_cast<std::uint32_t>(data[i]) |
            (static_cast<std::uint32_t>(data[i + 1]) << 8);
      c1 += c0;
    }
    if (i < block_end) {  // trailing odd byte
      c0 += data[i];
      c1 += c0;
      ++i;
    }
    c0 %= 65535;
    c1 %= 65535;
  }
  return (c1 << 16) | c0;
}

Buffer encode_op(const sched::OpContext& op) {
  Writer w{kOpFixed + kTrailer};
  w.u8(static_cast<std::uint8_t>(MessageKind::kOpRequest));
  w.u64(op.op_id);
  w.u64(op.request_id);
  w.u32(op.client);
  w.u64(op.key);
  w.f64(op.demand_us);
  w.f64(op.request_arrival);
  w.f64(op.remaining_critical_us);
  w.f64(op.est_other_completion);
  w.u32(op.bottleneck_ops);
  w.f64(op.bottleneck_demand_us);
  w.f64(op.total_demand_us);
  w.f64(op.deadline);
  w.u8(op.is_write ? 1 : 0);
  w.u64(op.write_size);
  if (op.expiry != kTimeInfinity) w.f64(op.expiry);
  return w.seal();
}

std::optional<sched::OpContext> decode_op(const Buffer& buffer) {
  Reader r{buffer};
  if (!r.valid()) return std::nullopt;
  if (r.u8() != static_cast<std::uint8_t>(MessageKind::kOpRequest))
    return std::nullopt;
  sched::OpContext op;
  op.op_id = r.u64();
  op.request_id = r.u64();
  op.client = r.u32();
  op.key = r.u64();
  op.demand_us = r.f64();
  op.request_arrival = r.f64();
  op.remaining_critical_us = r.f64();
  op.est_other_completion = r.f64();
  op.bottleneck_ops = r.u32();
  op.bottleneck_demand_us = r.f64();
  op.total_demand_us = r.f64();
  op.deadline = r.f64();
  op.is_write = r.u8() != 0;
  op.write_size = r.u64();
  if (!r.exhausted()) op.expiry = r.f64();
  if (!r.valid() || !r.exhausted()) return std::nullopt;
  return op;
}

std::size_t op_wire_size(const sched::OpContext& op) {
  return kOpFixed + kTrailer + (op.expiry != kTimeInfinity ? kOpExpiryExt : 0);
}

Buffer encode_response(const OpResponse& resp) {
  Writer w{kResponseFixed + kTrailer};
  w.u8(static_cast<std::uint8_t>(MessageKind::kOpResponse));
  w.u64(resp.op_id);
  w.u64(resp.request_id);
  w.u32(resp.client);
  w.u32(resp.server);
  w.u64(resp.key);
  w.u8(resp.hit ? 1 : 0);
  w.u8(resp.is_write ? 1 : 0);
  w.u64(resp.value_size);
  w.f64(resp.completed_at);
  w.f64(resp.d_hat_us);
  w.f64(resp.mu_hat);
  if (resp.status != OpStatus::kOk)
    w.u8(static_cast<std::uint8_t>(resp.status));
  return w.seal();
}

std::optional<OpResponse> decode_response(const Buffer& buffer) {
  Reader r{buffer};
  if (!r.valid()) return std::nullopt;
  if (r.u8() != static_cast<std::uint8_t>(MessageKind::kOpResponse))
    return std::nullopt;
  OpResponse resp;
  resp.op_id = r.u64();
  resp.request_id = r.u64();
  resp.client = r.u32();
  resp.server = r.u32();
  resp.key = r.u64();
  resp.hit = r.u8() != 0;
  resp.is_write = r.u8() != 0;
  resp.value_size = r.u64();
  resp.completed_at = r.f64();
  resp.d_hat_us = r.f64();
  resp.mu_hat = r.f64();
  if (!r.exhausted()) {
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(OpStatus::kExpired))
      return std::nullopt;
    resp.status = static_cast<OpStatus>(status);
    if (resp.status == OpStatus::kOk) return std::nullopt;  // non-canonical
  }
  if (!r.valid() || !r.exhausted()) return std::nullopt;
  return resp;
}

std::size_t response_wire_size(const OpResponse& resp) {
  // Header plus the value payload for read hits (writes ack without data);
  // shed responses carry a status byte and never a payload.
  if (resp.status != OpStatus::kOk)
    return kResponseFixed + kTrailer + kResponseStatusExt;
  return kResponseFixed + kTrailer +
         (resp.hit && !resp.is_write ? resp.value_size : 0);
}

Buffer encode_progress(RequestId request, const sched::ProgressUpdate& update) {
  Writer w{kProgressFixed + kTrailer};
  w.u8(static_cast<std::uint8_t>(MessageKind::kProgress));
  w.u64(request);
  w.f64(update.remaining_critical_us);
  w.f64(update.est_other_completion);
  w.f64(update.remaining_total_us);
  return w.seal();
}

std::optional<DecodedProgress> decode_progress(const Buffer& buffer) {
  Reader r{buffer};
  if (!r.valid()) return std::nullopt;
  if (r.u8() != static_cast<std::uint8_t>(MessageKind::kProgress))
    return std::nullopt;
  DecodedProgress out;
  out.request = r.u64();
  out.update.remaining_critical_us = r.f64();
  out.update.est_other_completion = r.f64();
  out.update.remaining_total_us = r.f64();
  if (!r.valid() || !r.exhausted()) return std::nullopt;
  return out;
}

std::size_t progress_wire_size() { return kProgressFixed + kTrailer; }

}  // namespace das::core::wire
