#include "core/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace das::core {

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  // max_digits10 round-trips the exact double, so two emissions of the same
  // deterministic result diff clean.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void render_bench_json(std::ostream& os, const std::string& experiment,
                       const std::vector<SweepOutcome>& rows) {
  // FCFS baselines per point label, for the gain columns.
  const auto fcfs_mean = [&](const std::string& point) -> double {
    for (const SweepOutcome& row : rows) {
      if (row.experiment == experiment && row.point == point &&
          row.policy == sched::Policy::kFcfs)
        return row.result.rct.mean;
    }
    return 0.0;
  };

  // v4: added the always-present "storage" block (store-model counters;
  // all-zero under the synthetic model).
  // v5: added "jain_fairness" and the "tenants" array (per-tenant RCT and
  // accounting; empty for single-tenant runs).
  // v6: added the always-present "overload" block (goodput/throughput,
  // shed/expired counters; all-zero with the layer off) and the per-tenant
  // shed/expired/goodput_share fields.
  os << "{\n  \"schema_version\": 6,\n  \"experiment\": ";
  json_string(os, experiment);
  os << ",\n  \"points\": [";
  bool first = true;
  for (const SweepOutcome& row : rows) {
    if (row.experiment != experiment) continue;
    os << (first ? "\n" : ",\n") << "    {\n      \"point\": ";
    first = false;
    json_string(os, row.point);
    os << ",\n      \"policy\": ";
    json_string(os, sched::to_string(row.policy));
    const ExperimentResult& r = row.result;
    os << ",\n      \"seed\": " << row.seed;
    os << ",\n      \"requests_measured\": " << r.requests_measured;
    const auto field = [&](const char* name, double v) {
      os << ",\n      \"" << name << "\": ";
      json_double(os, v);
    };
    field("mean_rct_us", r.rct.mean);
    field("p50_us", r.rct.p50);
    field("p95_us", r.rct.p95);
    field("p99_us", r.rct.p99);
    field("p999_us", r.rct.p999);
    field("max_us", r.rct.max);
    field("mean_util", r.mean_server_utilization);
    field("max_util", r.max_server_utilization);
    os << ",\n      \"ops_deferred\": " << r.ops_deferred;
    os << ",\n      \"ops_resumed\": " << r.ops_resumed;
    os << ",\n      \"ops_aged\": " << r.ops_aged;
    os << ",\n      \"reranks_applied\": " << r.reranks_applied;
    os << ",\n      \"breakdown\": {\n        \"requests\": "
       << r.breakdown.requests;
    const auto bd_field = [&](const char* name, double v) {
      os << ",\n        \"" << name << "\": ";
      json_double(os, v);
    };
    bd_field("mean_rct_us", r.breakdown.mean_rct_us);
    bd_field("network_us", r.breakdown.mean_network_us);
    bd_field("runnable_wait_us", r.breakdown.mean_runnable_wait_us);
    bd_field("deferred_wait_us", r.breakdown.mean_deferred_wait_us);
    bd_field("service_us", r.breakdown.mean_service_us);
    bd_field("straggler_slack_us", r.breakdown.mean_straggler_slack_us);
    os << "\n      }";
    os << ",\n      \"degradation\": {\n        \"availability\": ";
    json_double(os, r.availability);
    os << ",\n        \"requests_completed\": " << r.requests_completed;
    os << ",\n        \"requests_failed\": " << r.requests_failed;
    os << ",\n        \"requests_completed_after_failover\": "
       << r.requests_completed_after_failover;
    os << ",\n        \"ops_failed_over\": " << r.ops_failed_over;
    os << ",\n        \"ops_abandoned\": " << r.ops_abandoned;
    os << ",\n        \"suspicions_raised\": " << r.suspicions_raised;
    os << ",\n        \"ops_dropped_crashed\": " << r.ops_dropped_crashed;
    os << ",\n        \"server_crashes\": " << r.server_crashes;
    os << ",\n        \"server_recoveries\": " << r.server_recoveries;
    os << ",\n        \"messages_dropped_partition\": "
       << r.net_messages_dropped_partition;
    os << "\n      }";
    os << ",\n      \"overload\": {\n        \"goodput_rps\": ";
    json_double(os, r.goodput_rps);
    os << ",\n        \"throughput_rps\": ";
    json_double(os, r.throughput_rps);
    os << ",\n        \"requests_shed\": " << r.requests_shed;
    os << ",\n        \"requests_shed_admission\": "
       << r.requests_shed_admission;
    os << ",\n        \"requests_expired\": " << r.requests_expired;
    os << ",\n        \"requests_shed_measured\": " << r.requests_shed_measured;
    os << ",\n        \"requests_expired_measured\": "
       << r.requests_expired_measured;
    os << ",\n        \"ops_rejected_busy\": " << r.ops_rejected_busy;
    os << ",\n        \"ops_shed_sojourn\": " << r.ops_shed_sojourn;
    os << ",\n        \"ops_expired_dropped\": " << r.ops_expired_dropped;
    os << ",\n        \"wasted_service_us\": ";
    json_double(os, r.wasted_service_us);
    os << "\n      }";
    os << ",\n      \"storage\": {\n        \"flushes\": " << r.store_flushes;
    os << ",\n        \"compactions\": " << r.store_compactions;
    os << ",\n        \"write_stalls\": " << r.store_write_stalls;
    os << ",\n        \"stalled_write_ops\": " << r.store_stalled_write_ops;
    os << ",\n        \"memtable_hits\": " << r.store_memtable_hits;
    os << ",\n        \"level_reads\": " << r.store_level_reads;
    os << ",\n        \"compaction_busy_us\": ";
    json_double(os, r.store_compaction_busy_us);
    os << ",\n        \"write_stall_us\": ";
    json_double(os, r.store_write_stall_us);
    os << "\n      }";
    os << ",\n      \"jain_fairness\": ";
    json_double(os, r.jain_fairness);
    os << ",\n      \"tenants\": [";
    bool first_tenant = true;
    for (const TenantOutcome& tenant : r.tenants) {
      os << (first_tenant ? "\n" : ",\n") << "        {\n          \"name\": ";
      first_tenant = false;
      json_string(os, tenant.name);
      os << ",\n          \"share\": ";
      json_double(os, tenant.share);
      os << ",\n          \"requests_generated\": " << tenant.requests_generated;
      os << ",\n          \"requests_completed\": " << tenant.requests_completed;
      os << ",\n          \"requests_failed\": " << tenant.requests_failed;
      os << ",\n          \"requests_measured\": " << tenant.requests_measured;
      os << ",\n          \"requests_failed_measured\": "
         << tenant.requests_failed_measured;
      os << ",\n          \"requests_shed\": " << tenant.requests_shed;
      os << ",\n          \"requests_expired\": " << tenant.requests_expired;
      os << ",\n          \"requests_shed_measured\": "
         << tenant.requests_shed_measured;
      os << ",\n          \"requests_expired_measured\": "
         << tenant.requests_expired_measured;
      const auto tenant_field = [&](const char* name, double v) {
        os << ",\n          \"" << name << "\": ";
        json_double(os, v);
      };
      tenant_field("mean_rct_us", tenant.rct.mean);
      tenant_field("p50_us", tenant.rct.p50);
      tenant_field("p95_us", tenant.rct.p95);
      tenant_field("p99_us", tenant.rct.p99);
      tenant_field("p999_us", tenant.rct.p999);
      tenant_field("max_us", tenant.rct.max);
      tenant_field("goodput_share", tenant.goodput_share);
      os << "\n        }";
    }
    os << (first_tenant ? "]" : "\n      ]");
    const double fcfs = fcfs_mean(row.point);
    os << ",\n      \"gain_vs_fcfs_pct\": ";
    if (fcfs > 0) {
      json_double(os, 100.0 * (1.0 - r.rct.mean / fcfs));
    } else {
      os << "null";
    }
    field("wall_seconds", r.wall_seconds);
    os << "\n    }";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

std::string bench_json_string(const std::string& experiment,
                              const std::vector<SweepOutcome>& rows) {
  std::ostringstream os;
  render_bench_json(os, experiment, rows);
  return os.str();
}

void write_bench_json(const std::string& path, const std::string& experiment,
                      const std::vector<SweepOutcome>& rows) {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open JSON output file: " + path);
  render_bench_json(out, experiment, rows);
  out.flush();
  DAS_CHECK_MSG(out.good(), "failed writing JSON output file: " + path);
}

void render_perf_json(std::ostream& os, const std::string& experiment,
                      const std::vector<PerfPoint>& points) {
  os << "{\n  \"schema_version\": 2,\n  \"experiment\": ";
  json_string(os, experiment);
  os << ",\n  \"points\": [";
  bool first = true;
  for (const PerfPoint& p : points) {
    os << (first ? "\n" : ",\n") << "    {\n      \"point\": ";
    first = false;
    json_string(os, p.point);
    os << ",\n      \"events\": " << p.events;
    os << ",\n      \"wall_seconds\": ";
    json_double(os, p.wall_seconds);
    os << ",\n      \"events_per_sec\": ";
    json_double(os, p.events_per_sec);
    os << ",\n      \"sim_time_us\": ";
    json_double(os, p.sim_time_us);
    os << "\n    }";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

std::string perf_json_string(const std::string& experiment,
                             const std::vector<PerfPoint>& points) {
  std::ostringstream os;
  render_perf_json(os, experiment, points);
  return os.str();
}

void write_perf_json(const std::string& path, const std::string& experiment,
                     const std::vector<PerfPoint>& points) {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open JSON output file: " + path);
  render_perf_json(out, experiment, points);
  out.flush();
  DAS_CHECK_MSG(out.good(), "failed writing JSON output file: " + path);
}

}  // namespace das::core
