// Simulated store server: storage engine + operation scheduler + service
// loop with time-varying speed and an adaptive service-rate estimator.
#pragma once

#include <functional>
#include <memory>

#include "common/invariant.hpp"
#include "common/types.hpp"
#include "core/metrics.hpp"
#include "overload/overload.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "store/log_engine.hpp"
#include "store/lsm_model.hpp"
#include "store/storage_engine.hpp"
#include "trace/rct_breakdown.hpp"
#include "trace/tracer.hpp"
#include "workload/rate_function.hpp"

namespace das::core {

/// Outcome of an operation, as reported to the client. Non-OK statuses are
/// explicit overload signals — unlike a silent drop they arrive promptly and
/// still piggyback d_hat/mu_hat, so shedding FEEDS the learned view.
enum class OpStatus : std::uint8_t {
  kOk = 0,
  /// Shed by the server's QueueGuard: queue at cap (reject-new) or sojourn
  /// threshold exceeded (sojourn-drop). The op was not served.
  kBusy = 1,
  /// Dropped at dequeue because the request's end-to-end deadline had
  /// already passed — serving it would have been pure waste.
  kExpired = 2,
};

/// What a server sends back to the client when an operation completes.
/// `d_hat_us` / `mu_hat` are the piggybacked adaptive state: the advertised
/// queueing-delay estimate and the observed service speed (1.0 = nominal).
struct OpResponse {
  OperationId op_id = 0;
  RequestId request_id = 0;
  ClientId client = 0;
  ServerId server = 0;
  KeyId key = 0;
  Bytes value_size = 0;
  bool hit = false;
  bool is_write = false;
  SimTime completed_at = 0;
  double d_hat_us = 0;
  double mu_hat = 1.0;
  /// kOk unless the op was shed by the overload layer (in which case `hit`
  /// is false, no value travels, and the wire adds one status byte).
  OpStatus status = OpStatus::kOk;
  /// Server-side timing echo for the RCT breakdown. Out of band: carried on
  /// the simulated message object but EXCLUDED from the wire-size model
  /// (net/wire.hpp), so enabling the breakdown never changes net_bytes.
  trace::OpServiceTiming timing;
};

class Server : public Auditable {
 public:
  /// Crash lifecycle. kRecovering behaves like kUp but marks the re-learning
  /// phase right after a restart: the estimator was warm-restarted and holds
  /// until a handful of completions have re-trained it.
  enum class State { kUp, kCrashed, kRecovering };

  struct Params {
    ServerId id = 0;
    /// Static speed multiplier (0.5 = half-speed straggler).
    double speed_factor = 1.0;
    /// Optional time-varying multiplier on top of speed_factor.
    workload::RatePtr speed_profile;  // nullptr = constant 1.0
    /// EWMA smoothing for the service-speed estimate.
    double speed_alpha = 0.1;
    /// Preempt-resume service: an arriving operation that the scheduler's
    /// preempts() hook prefers interrupts the one in service, whose
    /// remaining demand is requeued. An oracle-style upper bound; real
    /// stores (and the paper) serve operations to completion.
    bool preemptive = false;
    /// Storage backend: hash-table engine (default) or log-structured.
    bool log_structured_storage = false;
    /// Storage-aware service-time model. nullptr = synthetic mode: every op
    /// costs its client-tagged demand and storage never dents capacity.
    /// Owning a provider makes Params move-only.
    store::ServiceTimeProviderPtr service_model;
    /// Overload protection (bounded queue / deadline drops). All defaults
    /// off: the guard never fires and the server is bit-identical to
    /// pre-layer builds.
    overload::OverloadConfig overload;
  };

  Server(sim::Simulator& sim, Params params, sched::SchedulerPtr scheduler,
         Metrics& metrics);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Response delivery hook; the cluster routes it through the network.
  void set_response_handler(std::function<void(const OpResponse&)> handler);

  /// Preloads a key (cluster initialisation, before time starts).
  void populate(KeyId key, Bytes size);

  /// An operation message arrived from the network.
  void receive_op(const sched::OpContext& op);

  /// A client-side progress message arrived: a sibling of `request`
  /// completed and the scheduling estimates moved.
  void receive_progress(RequestId request, const sched::ProgressUpdate& update);

  /// Fail-stop crash: cancels the in-service op, drains and drops the whole
  /// queue, and stops accepting work until recover(). Lost ops are counted
  /// in ops_dropped() — end-to-end recovery is the clients' responsibility.
  void crash();
  /// A crashed server restarts empty. The speed estimate warm-restarts at
  /// the static factor; the time-varying component is re-learned from the
  /// next completions (State::kRecovering until then).
  void recover();
  /// Gray-failure multiplier from the fault plan (1.0 = healthy). Takes
  /// effect at the next dispatch; the in-service op keeps its sampled speed.
  void set_fault_slowdown(double factor);

  State state() const { return state_; }
  bool crashed() const { return state_ == State::kCrashed; }

  /// Advertised queueing-delay estimate: backlog over estimated speed.
  double d_hat_us() const;
  double mu_hat() const { return mu_hat_; }
  ServerId id() const { return params_.id; }
  bool busy() const { return busy_; }
  std::size_t queue_length() const { return scheduler_->size(); }

  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const store::KvStore& storage() const { return *storage_; }
  /// The storage service-time model, or nullptr in synthetic mode.
  const store::ServiceTimeProvider* service_model() const {
    return service_model_.get();
  }
  /// Closes the model's open compaction/stall windows in its stats at end of
  /// run (no-op in synthetic mode). Idempotent.
  void finalize_store();

  /// Attaches a lifecycle tracer (nullptr detaches); forwarded to the
  /// scheduler. Purely observational — never changes scheduling decisions.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    scheduler_->set_tracer(tracer, params_.id);
    // Transition recording costs nothing when no tracer is attached.
    if (service_model_ != nullptr) {
      service_model_->set_record_transitions(tracer != nullptr);
    }
  }

  /// Busy-time accounting clipped to [begin, end) for utilisation metrics.
  void set_utilization_window(SimTime begin, SimTime end);
  double busy_time_in_window() const { return busy_in_window_; }

  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t ops_received() const { return ops_received_; }
  std::uint64_t preemptions() const { return preemptions_; }
  std::uint64_t ops_dropped() const { return ops_dropped_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }

  /// Overload-layer shed counters (all zero with the layer off).
  const overload::QueueGuard& queue_guard() const { return guard_; }
  std::uint64_t ops_rejected_busy() const { return guard_.rejected_busy(); }
  std::uint64_t ops_shed_sojourn() const { return guard_.dropped_sojourn(); }
  std::uint64_t ops_expired() const { return guard_.expired(); }
  /// Service time (µs) spent on ops that later turned out to be expired at
  /// completion — counted as wasted even though the op was served, because
  /// no deadline check runs mid-service.
  Duration wasted_service_us() const { return wasted_service_us_; }

  /// Request conservation (every received op is queued, in service,
  /// completed, or dropped by a crash), nonnegative remaining service
  /// demand, a live completion event whenever the server is busy, an empty
  /// idle queue while crashed, and the scheduler's own invariants.
  void check_invariants() const override;

 private:
  /// THE one effective-speed composition path: static factor × speed profile
  /// × fault slowdown × storage capacity factor, every factor checked
  /// positive. Non-const because sampling the storage factor advances the
  /// store model's lazy clock.
  double effective_speed(SimTime now);
  /// Builds the store-model cost query for `op`; a read's size comes from
  /// the server's own storage engine, not the client's estimate.
  store::OpCostQuery cost_query(const sched::OpContext& op) const;
  /// Remaining scheduler-visible demand of the in-service op given its
  /// unserved base cost. Preserves the exact legacy subtraction in synthetic
  /// mode; scales the demand tag proportionally under a store model.
  double remaining_demand(double remaining_base_us) const;
  /// Forwards store-model transitions (compaction/stall spans, flushes) to
  /// the tracer. No-op when untraced.
  void emit_store_transitions();
  /// Answers a shed op with a BUSY/EXPIRED response — still piggybacking
  /// d_hat/mu_hat, so shedding feeds the client's learned view.
  void respond_shed(const sched::OpContext& op, OpStatus status);
  void maybe_start();
  void complete_current();
  /// Requeues the in-service op with its remaining demand.
  void preempt_current();
  void note_busy_interval(SimTime begin, SimTime end);

  sim::Simulator& sim_;
  Params params_;
  sched::SchedulerPtr scheduler_;
  Metrics& metrics_;
  /// Overload protection: accept/shed decisions and the shed counters.
  overload::QueueGuard guard_;
  std::unique_ptr<store::KvStore> storage_;
  /// Moved out of Params at construction; nullptr in synthetic mode.
  store::ServiceTimeProviderPtr service_model_;
  std::function<void(const OpResponse&)> respond_;
  trace::Tracer* tracer_ = nullptr;
  /// Scratch buffer for draining store-model transitions while traced.
  std::vector<store::StoreTransition> store_transitions_;

  bool busy_ = false;
  sched::OpContext current_op_{};
  SimTime current_started_ = 0;
  double current_speed_ = 1.0;
  /// Base cost (µs at nominal speed) of the in-service op: the store model's
  /// price when one is attached, the client-tagged demand otherwise.
  double current_base_cost_us_ = 0;
  /// Storage capacity factor sampled by the last effective_speed() call;
  /// kept for const invariant auditing. Exactly 1.0 in synthetic mode.
  double storage_factor_ = 1.0;
  sim::EventHandle completion_event_;
  double mu_hat_ = 1.0;
  State state_ = State::kUp;
  /// Fault-plan gray-failure multiplier; exactly 1.0 outside slow windows so
  /// fault-free runs never touch a faulted code path.
  double fault_slowdown_ = 1.0;
  /// Completions left before a recovering server counts as kUp again.
  std::uint32_t recovery_ops_left_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t ops_received_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t ops_dropped_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  /// Service time spent on ops that completed past their expiry.
  Duration wasted_service_us_ = 0;

  SimTime window_begin_ = 0;
  SimTime window_end_ = kTimeInfinity;
  double busy_in_window_ = 0;
};

}  // namespace das::core
