#include "core/perf.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace das::core {

namespace {

// NOLINTBEGIN(das-no-wallclock): this file IS the wall-clock harness — it
// measures host events/sec for BENCH_PERF.json. Simulation results never
// depend on these readings.
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

PerfPoint finish_point(std::string name, const sim::Simulator& sim,
                       Clock::time_point start) {
  PerfPoint p;
  p.point = std::move(name);
  p.events = sim.events_dispatched();
  p.wall_seconds = seconds_since(start);
  p.events_per_sec =
      static_cast<double>(p.events) / std::max(p.wall_seconds, 1e-9);
  p.sim_time_us = sim.now();
  return p;
}

/// Pure schedule + dispatch: many interleaved self-rescheduling timers keep
/// the heap at a realistic mixed depth with zero work per callback.
struct TimerRing {
  sim::Simulator sim;
  std::uint64_t remaining = 0;

  void arm(Duration period) {
    if (remaining == 0) return;
    --remaining;
    sim.schedule_after(period, [this, period] { arm(period); });
  }
};

PerfPoint run_timer_ring(std::uint64_t events) {
  TimerRing ring;
  ring.remaining = events;
  constexpr int kLanes = 64;
  for (int lane = 0; lane < kLanes; ++lane) {
    // Coprime-ish periods keep the lanes from dispatching in lockstep.
    ring.arm(1.0 + 0.137 * static_cast<double>(lane));
  }
  const auto start = Clock::now();
  ring.sim.run();
  return finish_point("sim_timer_ring", ring.sim, start);
}

/// Hedging-style cancellation: every dispatched "response" cancels three
/// armed timers that never fire, so the heap churns through dead nodes and
/// compaction under the exact pattern retry/hedge workloads produce.
struct CancelHeavy {
  sim::Simulator sim;
  Rng rng{0xCA4CE1};
  std::uint64_t remaining = 0;

  void step() {
    if (remaining == 0) return;
    --remaining;
    std::array<sim::EventHandle, 3> hedges;
    for (std::size_t i = 0; i < hedges.size(); ++i) {
      hedges[i] = sim.schedule_after(
          50.0 + static_cast<double>(i), [] {});
    }
    sim.schedule_after(rng.uniform(1.0, 10.0), [this, hedges] {
      for (const sim::EventHandle h : hedges) sim.cancel(h);
      step();
    });
  }
};

PerfPoint run_cancel_heavy(std::uint64_t events) {
  CancelHeavy bench;
  bench.remaining = events;
  constexpr int kLanes = 32;
  for (int lane = 0; lane < kLanes; ++lane) bench.step();
  const auto start = Clock::now();
  bench.sim.run();
  return finish_point("sim_cancel_heavy", bench.sim, start);
}

/// Network streaming: each delivery sends the next message on its link, so
/// the point measures send + latency sampling + FIFO clamping + dispatch.
struct NetStream {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::uint64_t remaining = 0;

  void pump(net::NodeId from, net::NodeId to) {
    if (remaining == 0) return;
    --remaining;
    net->send(from, to, 256, [this, from, to] { pump(to, from); });
  }
};

PerfPoint run_net_stream(std::uint64_t events) {
  NetStream bench;
  constexpr net::NodeId kLinks = 16;
  net::Network::Config cfg;
  cfg.latency = net::make_uniform_latency(2.0, 8.0);
  cfg.bandwidth_bytes_per_us = 50.0;
  cfg.num_nodes = 2 * kLinks;  // dense FIFO table, as the cluster configures
  bench.net = std::make_unique<net::Network>(bench.sim, cfg, Rng{0x4E7});
  bench.remaining = events;
  for (net::NodeId link = 0; link < kLinks; ++link) {
    bench.pump(link, kLinks + link);
  }
  const auto start = Clock::now();
  bench.sim.run();
  return finish_point("net_fifo_stream", bench.sim, start);
}

/// Full system: scheduler bookkeeping, progress fan-in, metrics, breakdown.
PerfPoint run_cluster_point(const char* name, sched::Policy policy,
                            Duration measure_us) {
  ClusterConfig cfg;
  cfg.num_servers = 16;
  cfg.num_clients = 4;
  cfg.keys_per_server = 200;
  cfg.zipf_theta = 0.9;
  cfg.load_calibration = LoadCalibration::kHottestServer;
  cfg.target_load = 0.8;
  cfg.policy = policy;
  cfg.seed = 93;
  RunWindow window;
  window.warmup_us = 10.0 * kMillisecond;
  window.measure_us = measure_us;
  Cluster cluster{cfg, window};
  const auto start = Clock::now();
  const ExperimentResult result = cluster.run();
  DAS_CHECK(result.requests_completed == result.requests_generated);
  return finish_point(name, cluster.simulator(), start);
}

// NOLINTEND(das-no-wallclock)

}  // namespace

std::vector<PerfPoint> run_perf_suite(const PerfOptions& options) {
  DAS_CHECK_MSG(options.scale > 0, "perf scale must be positive");
  const auto scaled = [&](double base) {
    return static_cast<std::uint64_t>(
        std::max(1.0, base * options.scale));
  };
  std::vector<PerfPoint> points;
  points.push_back(run_timer_ring(scaled(2e6)));
  points.push_back(run_cancel_heavy(scaled(5e5)));
  points.push_back(run_net_stream(scaled(1e6)));
  if (!options.engine_only) {
    const Duration measure = 150.0 * kMillisecond * options.scale;
    points.push_back(
        run_cluster_point("cluster_fcfs", sched::Policy::kFcfs, measure));
    points.push_back(
        run_cluster_point("cluster_das", sched::Policy::kDas, measure));
  }
  return points;
}

}  // namespace das::core
