// Cluster/experiment configuration.
//
// One struct drives everything: the experiment harness derives the open-loop
// arrival rate from `target_load` analytically (using the distributions'
// closed-form means), so sweeps express intent ("utilisation 0.7") rather
// than raw rates.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/distributions.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "overload/overload.hpp"
#include "sched/scheduler.hpp"
#include "select/selector.hpp"
#include "store/lsm_model.hpp"
#include "workload/rate_function.hpp"
#include "workload/registry.hpp"

namespace das::core {

/// What prices an operation's service time on each server.
enum class StoreModel {
  /// Client-tagged demand (overhead + bytes/rate) at full capacity. The
  /// historical model; bit-identical to builds that predate src/store's
  /// service-time providers.
  kSynthetic,
  /// Per-server LSM engine: memtable-hit vs level-walk reads, flush-driven
  /// compaction windows denting capacity, write stalls under compaction
  /// debt. See store::LsmModel.
  kLsm,
};

/// Stable lower-snake token, e.g. "synthetic", "lsm".
const char* to_string(StoreModel model);
bool store_model_from_string(std::string_view token, StoreModel& out);

/// How `target_load` is interpreted when deriving the arrival rate.
enum class LoadCalibration {
  /// Fraction of the aggregate nominal capacity (classic ρ). Under key skew
  /// the hottest server can exceed 1.0 and the system destabilises.
  kAverageCapacity,
  /// Fraction of the HOTTEST server's capacity, computed exactly from the
  /// key popularity law, per-key demands and placement. Keeps every sweep
  /// (skew, heterogeneity) inside the stable region. Default.
  kHottestServer,
};

/// How a client picks one replica to read from when replication > 1. The
/// modes and their implementations live in src/select (the pluggable
/// selector layer); this alias keeps the historical core-side name.
using ReplicaSelection = select::Mode;

struct ClusterConfig {
  // --- topology -----------------------------------------------------------
  std::size_t num_servers = 64;
  std::size_t num_clients = 8;
  /// Keyspace size = num_servers * keys_per_server.
  std::uint64_t keys_per_server = 2'000;
  /// 0 = modulo partitioner (perfectly balanced; default so scheduling
  /// effects are not confounded by placement skew); > 0 = consistent-hash
  /// ring with this many vnodes per server.
  std::size_t ring_vnodes = 0;
  /// Per-server storage backend: false = hash-table engine, true =
  /// log-structured engine (functionally identical reads; exercises the
  /// append/compact path under write workloads).
  bool log_structured_storage = false;
  /// Copies of every key (1 = no replication). Reads go to one replica
  /// chosen by `replica_selection`; clamped to num_servers.
  std::size_t replication = 1;
  ReplicaSelection replica_selection = ReplicaSelection::kPrimary;

  // --- workload -----------------------------------------------------------
  double zipf_theta = 0.9;
  /// Keys per multiget; geometric matches the heavy-tailed multiget widths
  /// of production social workloads (mean 8 here).
  IntDistPtr fanout = make_geometric(0.125, 128);
  /// Value sizes in bytes; default roughly Facebook-ETC shaped.
  RealDistPtr value_size_bytes = make_generalized_pareto(1.0, 250.0, 0.35, 64 * 1024.0);
  /// Target utilisation in (0, 1); see `load_calibration`.
  double target_load = 0.7;
  LoadCalibration load_calibration = LoadCalibration::kHottestServer;
  /// Fraction of requests that are single-key write-all PUTs (rest are
  /// multigets). Calibration accounts for the write fan-out.
  double write_fraction = 0.0;
  /// Sizes written by PUTs; nullptr reuses value_size_bytes.
  RealDistPtr write_size_bytes;
  /// Optional arrival-rate modulation (multiplier, mean should be ~1).
  workload::RatePtr load_profile;
  /// Multi-tenant workload (workload registry): each tenant generates its
  /// own stream (mix/popularity/drift/replay per its spec) against an equal
  /// contiguous slice of the keyspace, with the cluster arrival rate split
  /// by tenant share. Empty = single legacy stream (bit-identical to
  /// pre-registry builds). Unset tenant fields inherit the cluster-level
  /// workload settings above.
  std::vector<workload::TenantSpec> tenants;

  // --- service model ------------------------------------------------------
  /// Fixed CPU cost per operation (µs at nominal speed).
  double per_op_overhead_us = 20.0;
  /// Value transfer/processing rate (bytes per µs at nominal speed).
  double service_bytes_per_us = 50.0;
  /// Static per-server speed multipliers (empty = all 1.0). Length must be
  /// num_servers when non-empty. 0.5 = a half-speed straggler.
  std::vector<double> server_speed_factors;
  /// Optional per-server time-varying speed multiplier profiles (empty =
  /// constant 1.0; single entry = shared by all servers).
  std::vector<workload::RatePtr> speed_profiles;
  /// Service-time pricing: synthetic demand tags (default) or the per-server
  /// LSM model. Schedulers never see the store — only mu_hat/backlog.
  StoreModel store_model = StoreModel::kSynthetic;
  /// LSM knobs (used only when store_model == kLsm). The service-model
  /// anchors (per_op_overhead_us, service_bytes_per_us) are mirrored from
  /// this config by the Cluster, so leave those two at their defaults here.
  store::LsmOptions lsm;

  // --- scheduling ---------------------------------------------------------
  sched::Policy policy = sched::Policy::kFcfs;
  sched::SchedulerConfig sched_config;
  /// Preempt-resume service (oracle upper bound; policies without a
  /// preempts() hook are unaffected). The paper's setting is non-preemptive.
  bool preemptive_service = false;

  // --- DAS client side ----------------------------------------------------
  /// Use piggybacked per-server delay/speed estimates when tagging (the
  /// client half of adaptivity; forced off for the DAS-NA ablation).
  bool client_adaptive = true;
  /// Send sibling-progress messages so servers re-rank queued ops.
  bool progress_updates = true;
  /// EWMA smoothing of the client's per-server estimates.
  double client_ewma_alpha = 0.3;
  /// Server-side service-speed EWMA smoothing.
  double server_speed_alpha = 0.1;
  /// Request deadline offset for EDF (arrival + this).
  Duration edf_slo_us = 10.0 * kMillisecond;

  // --- network ------------------------------------------------------------
  Duration net_latency_us = 5.0;
  /// Lognormal jitter sigma; 0 = constant latency.
  double net_jitter_sigma = 0.0;
  /// Fault injection: independent per-message drop probability in [0, 1).
  /// Requires retry_timeout_us > 0 so requests still complete.
  double msg_loss_probability = 0.0;
  /// Client retransmission timeout (exponential backoff with ±20% seeded
  /// jitter); 0 disables.
  Duration retry_timeout_us = 0.0;
  /// Cap on the backed-off retransmission timeout; 0 = uncapped.
  Duration retry_backoff_max_us = 0.0;
  /// Send attempts per op before the client gives up and the request counts
  /// as FAILED; 0 = retry forever (requires every fault to heal).
  std::uint32_t retry_max_attempts = 0;
  /// Consecutive retry timeouts before a client suspects a server and fails
  /// reads over to other replicas; 0 disables failure detection.
  std::uint32_t suspicion_rto_threshold = 3;
  /// Hedged reads: duplicate an unanswered op to another replica after this
  /// delay (needs replication >= 2); 0 disables.
  Duration hedge_delay_us = 0.0;
  // (Message sizes are computed exactly by core/wire.hpp encoders.)

  // --- overload control ---------------------------------------------------
  /// Bounded queues / deadlines / admission control (src/overload). All
  /// defaults OFF: a default-constructed block reproduces the unprotected
  /// system bit-for-bit (wire sizes, RNG streams, results).
  overload::OverloadConfig overload;

  // --- faults -------------------------------------------------------------
  /// Scripted fault timeline (crashes/recoveries, gray-failure slowdowns,
  /// link partitions, loss bursts), executed by the Cluster through the
  /// simulator. Empty = fault layer fully inert (bit-identical runs).
  fault::FaultPlan fault_plan;

  // --- run control --------------------------------------------------------
  std::uint64_t seed = 42;
  /// Run the invariant audit (simulator + every server + its scheduler) each
  /// time this many events have been dispatched; 0 disables. Audits throw
  /// AuditError on any violated invariant, independent of build type.
  std::uint64_t audit_every_events = 0;
  /// Collect a mean-RCT-per-bucket timeline (plotting adaptation
  /// transients); 0 disables.
  Duration timeline_bucket_us = 0;
  /// Retain up to this many per-request RCT-breakdown rows (beyond the
  /// always-on aggregate summary) for tests and offline analysis; 0 keeps
  /// only the aggregate.
  std::size_t breakdown_retain_requests = 0;

  /// Cross-field validation of the fault/recovery configuration, run by the
  /// Cluster constructor before any simulation state is built. Throws
  /// std::invalid_argument naming the offending field(s) — a config that can
  /// lose work without the means to recover or account for it is rejected
  /// up front instead of tripping a mid-run invariant.
  void validate() const;

  /// Expected demand of one operation at nominal speed (µs).
  double mean_op_demand_us() const;
  /// Aggregate nominal service capacity (work-µs per µs) accounting for
  /// static speed factors and the long-run average of the speed profiles.
  double nominal_capacity(SimTime horizon) const;
  /// Request arrival rate (requests/µs across all clients) that hits
  /// target_load.
  double derived_arrival_rate(SimTime horizon) const;
};

}  // namespace das::core
