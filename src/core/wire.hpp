// Wire format for the client/server protocol.
//
// Fixed-layout little-endian encoding with a Fletcher-32 trailer. The
// simulator does not ship real bytes between entities — everything is
// in-process — but the encoders make the protocol concrete: the cluster
// charges the network with the EXACT encoded size of every message, the
// overhead study (E12) reports real bytes, and the codecs are round-trip
// fuzzed so the format is implementable outside the simulator as-is.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/server.hpp"
#include "sched/op_context.hpp"

namespace das::core::wire {

using Buffer = std::vector<std::uint8_t>;

/// Message kind tags (first byte of every message).
enum class MessageKind : std::uint8_t {
  kOpRequest = 1,
  kOpResponse = 2,
  kProgress = 3,
};

/// Fletcher-32 over a byte range (the 4-byte trailer of every message).
std::uint32_t fletcher32(const std::uint8_t* data, std::size_t size);

/// --- operation request ----------------------------------------------------
Buffer encode_op(const sched::OpContext& op);
/// Decodes and verifies the checksum; nullopt on truncation, corruption or
/// kind mismatch. Server-local fields (enqueued_at) are not transmitted.
std::optional<sched::OpContext> decode_op(const Buffer& buffer);
/// Exact encoded size without building the buffer.
std::size_t op_wire_size(const sched::OpContext& op);

/// --- operation response ---------------------------------------------------
/// The value payload is accounted for in wire size but not materialised.
Buffer encode_response(const OpResponse& resp);
std::optional<OpResponse> decode_response(const Buffer& buffer);
std::size_t response_wire_size(const OpResponse& resp);

/// --- progress update --------------------------------------------------------
Buffer encode_progress(RequestId request, const sched::ProgressUpdate& update);
struct DecodedProgress {
  RequestId request = 0;
  sched::ProgressUpdate update;
};
std::optional<DecodedProgress> decode_progress(const Buffer& buffer);
std::size_t progress_wire_size();

}  // namespace das::core::wire
