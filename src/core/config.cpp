#include "core/config.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "workload/spec.hpp"

namespace das::core {

const char* to_string(StoreModel model) {
  switch (model) {
    case StoreModel::kSynthetic: return "synthetic";
    case StoreModel::kLsm: return "lsm";
  }
  return "synthetic";
}

bool store_model_from_string(std::string_view token, StoreModel& out) {
  if (token == "synthetic") {
    out = StoreModel::kSynthetic;
    return true;
  }
  if (token == "lsm") {
    out = StoreModel::kLsm;
    return true;
  }
  return false;
}

void ClusterConfig::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("ClusterConfig: " + what);
  };
  if (msg_loss_probability < 0 || msg_loss_probability >= 1) {
    reject("msg_loss_probability must be in [0, 1)");
  }
  if (msg_loss_probability > 0 && retry_timeout_us <= 0) {
    reject(
        "msg_loss_probability > 0 requires retry_timeout_us > 0 — without "
        "retransmission a lost message strands its request forever");
  }
  if (fault_plan.loses_work() && retry_timeout_us <= 0) {
    reject(
        "fault_plan contains a crash/partition/lossburst but retry_timeout_us "
        "== 0 — dropped operations would never be retransmitted and their "
        "requests never finish");
  }
  if (fault_plan.has_unrecovered_failure() && retry_max_attempts == 0) {
    reject(
        "fault_plan leaves a server crashed or a link partitioned at the end "
        "but retry_max_attempts == 0 — unbounded retries against a "
        "permanently dead target never terminate; set retry_max_attempts so "
        "the client can give up and account the request as failed");
  }
  if (hedge_delay_us > 0 && replication < 2) {
    reject(
        "hedge_delay_us > 0 requires replication >= 2 — hedging needs a "
        "second replica to duplicate the read to");
  }
  if (retry_backoff_max_us > 0 && retry_timeout_us <= 0) {
    reject("retry_backoff_max_us is set but retry_timeout_us == 0 disables "
           "retransmission entirely");
  }
  if (retry_backoff_max_us > 0 && retry_backoff_max_us < retry_timeout_us) {
    reject("retry_backoff_max_us must be >= retry_timeout_us (the cap cannot "
           "sit below the base timeout)");
  }
  if (retry_max_attempts > 0 && retry_timeout_us <= 0) {
    reject("retry_max_attempts is set but retry_timeout_us == 0 disables "
           "retransmission entirely");
  }
  if (!fault_plan.empty()) {
    fault_plan.validate(static_cast<std::uint32_t>(num_servers),
                        static_cast<std::uint32_t>(num_clients));
  }
  if (store_model == StoreModel::kLsm) {
    // Re-thrown with the LsmOptions field name in the message.
    lsm.validate();
  }
  overload.validate();
  if (overload.deadlines() && retry_timeout_us > 0 &&
      retry_timeout_us >= overload.deadline_budget_us) {
    reject(
        "retry_timeout_us (" + std::to_string(retry_timeout_us) +
        ") must be < overload.deadline_budget_us (" +
        std::to_string(overload.deadline_budget_us) +
        ") — a request whose first retransmission fires at or after its "
        "end-to-end deadline can never retry before expiring, so the retry "
        "machinery is dead weight that only delays the expiry accounting");
  }
  if (!tenants.empty()) {
    const std::uint64_t universe = num_servers * keys_per_server;
    if (tenants.size() > universe) {
      reject("tenants: more tenants than keys — every tenant needs a "
             "non-empty keyspace slice");
    }
    bool any_synthetic = false;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const workload::TenantSpec& tenant = tenants[t];
      const std::string where = "tenants[" + std::to_string(t) + "] ('" +
                                tenant.name + "')";
      if (!(tenant.share > 0)) reject(where + ": share must be > 0");
      if (tenant.replay_path.empty()) any_synthetic = true;
      // Spec strings may come from code rather than the registry (which
      // validates eagerly); parse them here so a typo fails before any
      // simulation state exists. parse_* throw std::logic_error; translate.
      try {
        if (!tenant.fanout_spec.empty()) workload::parse_int_dist(tenant.fanout_spec);
        if (!tenant.value_size_spec.empty())
          workload::parse_real_dist(tenant.value_size_spec);
      } catch (const std::logic_error& e) {
        reject(where + ": " + e.what());
      }
      if (tenant.has_mix) {
        const workload::OpMix& mix = tenant.mix;
        const double sum = mix.read + mix.update + mix.rmw;
        if (mix.read < 0 || mix.update < 0 || mix.rmw < 0 ||
            sum < 1.0 - 1e-9 || sum > 1.0 + 1e-9) {
          reject(where + ": mix fractions must be non-negative and sum to 1");
        }
      }
      if (tenant.drift.rotate_period_us < 0) {
        reject(where + ": drift rotate_period_us must be >= 0");
      }
      if (tenant.drift.rotate_period_us > 0 && tenant.drift.rotate_stride < 1) {
        reject(where + ": drift rotate_stride must be >= 1");
      }
      for (const workload::StormWindow& storm : tenant.drift.storms) {
        if (storm.end <= storm.start || storm.start < 0) {
          reject(where + ": storm window must have 0 <= start < end");
        }
        if (storm.share < 0 || storm.share > 1) {
          reject(where + ": storm share must be in [0, 1]");
        }
        if (storm.keys < 1) reject(where + ": storm keys must be >= 1");
      }
      if (!tenant.replay_path.empty() && tenant.drift.enabled()) {
        reject(where + ": a replay tenant cannot also configure drift");
      }
    }
    if (!any_synthetic && write_fraction > 0) {
      reject("tenants: write_fraction is set but every tenant replays a "
             "trace — replay operations come verbatim from the file");
    }
  }
}

double ClusterConfig::mean_op_demand_us() const {
  DAS_CHECK(value_size_bytes != nullptr);
  DAS_CHECK(service_bytes_per_us > 0);
  return per_op_overhead_us + value_size_bytes->mean() / service_bytes_per_us;
}

double ClusterConfig::nominal_capacity(SimTime horizon) const {
  DAS_CHECK(num_servers >= 1);
  DAS_CHECK(server_speed_factors.empty() ||
            server_speed_factors.size() == num_servers);
  DAS_CHECK(speed_profiles.empty() || speed_profiles.size() == 1 ||
            speed_profiles.size() == num_servers);

  const auto profile_mean = [&](std::size_t server) -> double {
    if (speed_profiles.empty()) return 1.0;
    const auto& profile =
        speed_profiles.size() == 1 ? speed_profiles[0] : speed_profiles[server];
    if (profile == nullptr) return 1.0;
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < horizon; t += step, ++n) acc += profile->value_at(t);
    return n ? acc / static_cast<double>(n) : profile->value_at(0);
  };

  double capacity = 0;
  for (std::size_t s = 0; s < num_servers; ++s) {
    const double factor =
        server_speed_factors.empty() ? 1.0 : server_speed_factors[s];
    DAS_CHECK(factor > 0);
    capacity += factor * profile_mean(s);
  }
  return capacity;
}

double ClusterConfig::derived_arrival_rate(SimTime horizon) const {
  // Loads >= 1 are deliberately representable: the overload experiments
  // (E22) drive the cluster past saturation to study shedding and
  // metastability. The upper sanity bound only catches unit mistakes.
  DAS_CHECK(target_load > 0 && target_load < 10);
  DAS_CHECK(fanout != nullptr);
  DAS_CHECK(write_fraction >= 0 && write_fraction <= 1);
  const double read_work = fanout->mean() * mean_op_demand_us();
  const auto replicas = static_cast<double>(
      std::min(std::max<std::size_t>(replication, 1), num_servers));
  const double write_size =
      (write_size_bytes ? write_size_bytes : value_size_bytes)->mean();
  const double write_work =
      replicas * (per_op_overhead_us + write_size / service_bytes_per_us);
  const double work_per_request =
      (1.0 - write_fraction) * read_work + write_fraction * write_work;
  double load_profile_mean = 1.0;
  if (load_profile != nullptr) {
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < horizon; t += step, ++n) acc += load_profile->value_at(t);
    load_profile_mean = n ? acc / static_cast<double>(n) : load_profile->value_at(0);
    DAS_CHECK(load_profile_mean > 0);
  }
  return target_load * nominal_capacity(horizon) /
         (work_per_request * load_profile_mean);
}

}  // namespace das::core
