// Engine throughput measurement (the perf trajectory).
//
// Four fixed workloads bracket the hot path: a pure timer ring (schedule +
// dispatch only), a cancel-heavy pattern (hedging-style: most timers armed
// are cancelled before firing), a network streaming loop (send + FIFO clamp +
// delivery), and full cluster runs under FCFS and DAS (everything at once:
// scheduler bookkeeping, progress fan-in, metrics). Each point reports
// dispatched events, wall seconds and events/sec; `bench_throughput` and
// `dassim --perf` both write the result as BENCH_PERF.json (schema_version 2)
// and CI gates on events/sec regressions against the committed baseline.
//
// Event counts and simulated time are deterministic for a fixed scale; only
// the wall-clock fields vary run to run.
#pragma once

#include <vector>

#include "core/bench_json.hpp"

namespace das::core {

struct PerfOptions {
  /// Multiplies every workload's event budget; 1.0 is the committed-baseline
  /// size (a few seconds total), CI smoke uses a smaller scale.
  double scale = 1.0;
  /// Skip the two full-cluster points (engine microbenches only).
  bool engine_only = false;
};

/// Runs the whole suite and returns one PerfPoint per workload, in a fixed
/// order: sim_timer_ring, sim_cancel_heavy, net_fifo_stream, then (unless
/// engine_only) cluster_fcfs and cluster_das.
std::vector<PerfPoint> run_perf_suite(const PerfOptions& options);

}  // namespace das::core
