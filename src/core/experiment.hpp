// Experiment harness: single runs and paired policy comparisons.
//
// compare_policies() runs the *same* seed (hence the same request stream,
// key sizes and speed fluctuations) under each policy — the differences in
// the summaries are purely scheduling, which is what the paper's figures
// plot.
#pragma once

#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"

namespace das::core {

/// Builds a cluster from `config`, runs it, returns the aggregate result.
/// A non-null `tracer` records the full op lifecycle (purely observational —
/// the result is bit-identical with and without it).
ExperimentResult run_experiment(const ClusterConfig& config,
                                const RunWindow& window = {},
                                trace::Tracer* tracer = nullptr);

struct PolicyRun {
  sched::Policy policy;
  ExperimentResult result;
};

/// Runs `base` under each policy with identical workload randomness.
std::vector<PolicyRun> compare_policies(ClusterConfig base,
                                        const std::vector<sched::Policy>& policies,
                                        const RunWindow& window = {});

/// Mean-RCT improvement of `candidate` over `baseline` as a fraction
/// (0.25 = 25% lower mean RCT).
double rct_improvement(const ExperimentResult& baseline,
                       const ExperimentResult& candidate);

}  // namespace das::core
