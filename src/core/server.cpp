#include "core/server.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace das::core {

namespace {

// The trace layer mirrors store::StoreTransitionKind so it never depends on
// the store library; this switch is the one mapping point.
trace::StoreTraceKind to_trace(store::StoreTransitionKind kind) {
  switch (kind) {
    case store::StoreTransitionKind::kCompactionStart:
      return trace::StoreTraceKind::kCompactionStart;
    case store::StoreTransitionKind::kCompactionEnd:
      return trace::StoreTraceKind::kCompactionEnd;
    case store::StoreTransitionKind::kWriteStallStart:
      return trace::StoreTraceKind::kWriteStallStart;
    case store::StoreTransitionKind::kWriteStallEnd:
      return trace::StoreTraceKind::kWriteStallEnd;
    case store::StoreTransitionKind::kFlush:
      return trace::StoreTraceKind::kFlush;
  }
  DAS_CHECK_MSG(false, "unknown store transition kind");
  return trace::StoreTraceKind::kFlush;
}

}  // namespace

Server::Server(sim::Simulator& sim, Params params, sched::SchedulerPtr scheduler,
               Metrics& metrics)
    : sim_(sim),
      params_(std::move(params)),
      scheduler_(std::move(scheduler)),
      metrics_(metrics),
      guard_(params_.overload) {
  service_model_ = std::move(params_.service_model);
  if (params_.log_structured_storage) {
    storage_ = std::make_unique<store::LogStructuredEngine>();
  } else {
    storage_ = std::make_unique<store::StorageEngine>();
  }
  DAS_CHECK(scheduler_ != nullptr);
  DAS_CHECK(params_.speed_factor > 0);
  DAS_CHECK(params_.speed_alpha > 0 && params_.speed_alpha <= 1);
  // Start the speed estimate at the static factor: a server knows its own
  // hardware class; what it must *learn* is the time-varying component.
  mu_hat_ = params_.speed_factor;
  scheduler_->on_speed_estimate(mu_hat_);
}

void Server::set_response_handler(std::function<void(const OpResponse&)> handler) {
  DAS_CHECK(handler != nullptr);
  respond_ = std::move(handler);
}

void Server::populate(KeyId key, Bytes size) { storage_->put(key, size, 0); }

void Server::set_utilization_window(SimTime begin, SimTime end) {
  DAS_CHECK(begin <= end);
  window_begin_ = begin;
  window_end_ = end;
}

double Server::effective_speed(SimTime now) {
  const double profile =
      params_.speed_profile ? params_.speed_profile->value_at(now) : 1.0;
  DAS_CHECK_MSG(profile > 0, "speed profile must stay positive");
  storage_factor_ =
      service_model_ != nullptr ? service_model_->capacity_factor(now) : 1.0;
  DAS_CHECK_MSG(storage_factor_ > 0 && storage_factor_ <= 1.0,
                "storage capacity factor outside (0, 1]");
  // The single composition path for every capacity modifier: static factor ×
  // time-varying profile × fault slowdown × storage dip. Multiplying by an
  // exact 1.0 is bit-exact in IEEE-754, so fault-free synthetic runs stay
  // bit-identical to builds that predate the fault and storage layers.
  const double speed =
      params_.speed_factor * profile * fault_slowdown_ * storage_factor_;
  DAS_CHECK_MSG(speed > 0, "effective speed must stay positive");
  return speed;
}

double Server::remaining_demand(double remaining_base_us) const {
  // Synthetic mode prices ops at their client-tagged demand, so base cost
  // and demand coincide and the unserved base IS the remaining demand (the
  // exact legacy arithmetic). Under a store model the scheduler still thinks
  // in demand currency: scale the tag by the unserved base-cost fraction.
  if (service_model_ == nullptr) return remaining_base_us;
  return current_op_.demand_us * (remaining_base_us / current_base_cost_us_);
}

store::OpCostQuery Server::cost_query(const sched::OpContext& op) const {
  store::OpCostQuery q;
  q.key = op.key;
  q.is_write = op.is_write;
  q.nominal_demand_us = op.demand_us;
  if (op.is_write) {
    q.size_bytes = op.write_size;
  } else {
    const store::ValueRecord* rec = storage_->peek(op.key);
    q.size_bytes = rec != nullptr ? rec->size : 0;
  }
  return q;
}

void Server::emit_store_transitions() {
  if (tracer_ == nullptr) return;
  store_transitions_.clear();
  service_model_->drain_transitions(store_transitions_);
  for (const store::StoreTransition& tr : store_transitions_) {
    tracer_->store_transition(tr.at, to_trace(tr.kind), params_.id,
                              tr.debt_bytes);
  }
}

void Server::finalize_store() {
  if (service_model_ == nullptr) return;
  service_model_->finalize(sim_.now());
  emit_store_transitions();
}

double Server::d_hat_us() const {
  return scheduler_->backlog_demand_us() / mu_hat_;
}

void Server::check_invariants() const {
  DAS_AUDIT(ops_received_ == scheduler_->size() + (busy_ ? 1 : 0) +
                                 ops_completed_ + ops_dropped_ +
                                 guard_.total_shed(),
            "op conservation: received != queued + in-service + completed + "
            "dropped + shed");
  guard_.check_invariants();
  DAS_AUDIT(wasted_service_us_ >= 0, "negative wasted service");
  DAS_AUDIT(mu_hat_ > 0, "nonpositive speed estimate");
  DAS_AUDIT(fault_slowdown_ > 0, "nonpositive fault slowdown");
  // effective_speed() factor bounds: each factor in range, product positive.
  DAS_AUDIT(storage_factor_ > 0 && storage_factor_ <= 1.0,
            "storage capacity factor outside (0, 1]");
  DAS_AUDIT(params_.speed_factor * fault_slowdown_ * storage_factor_ > 0,
            "effective-speed factor product must stay positive");
  if (service_model_ != nullptr) service_model_->check_invariants();
  if (state_ == State::kCrashed) {
    DAS_AUDIT(!busy_, "crashed server still in service");
    DAS_AUDIT(scheduler_->empty(), "crashed server with queued work");
  }
  if (busy_) {
    DAS_AUDIT(current_op_.demand_us >= 0, "negative remaining service demand");
    DAS_AUDIT(current_base_cost_us_ >= 0, "negative base service cost");
    DAS_AUDIT(completion_event_.valid(), "busy server without a completion event");
    DAS_AUDIT(current_speed_ > 0, "busy server with nonpositive service speed");
  } else {
    DAS_AUDIT(scheduler_->empty(), "idle server with queued work");
  }
  scheduler_->check_invariants();
}

void Server::receive_op(const sched::OpContext& op) {
  ++ops_received_;
  if (state_ == State::kCrashed) {
    // The message reached a dead host. Counting it keeps conservation
    // closed: received == queued + in-service + completed + dropped.
    ++ops_dropped_;
    return;
  }
  const SimTime now = sim_.now();
  const bool reject = guard_.should_reject(scheduler_->size());
  if (tracer_ != nullptr) {
    if (!reject) {
      tracer_->server_enqueue(now, op.op_id, op.request_id, params_.id);
    }
    // Sampled queue-state counters piggyback on arrivals — rejected ones
    // included: the gauges matter most exactly when the queue is full. No
    // extra simulator events, so tracing cannot perturb the event schedule.
    if (ops_received_ % tracer_->counter_stride() == 0) {
      tracer_->counter_sample(now, params_.id, scheduler_->backlog_demand_us(),
                              mu_hat_,
                              scheduler_->size() - scheduler_->deferred_size(),
                              scheduler_->deferred_size());
      if (service_model_ != nullptr) {
        const store::StoreGauges g = service_model_->gauges();
        tracer_->store_counter_sample(now, params_.id, g.memtable_fill_bytes,
                                      g.compaction_debt_bytes, g.l0_runs);
      }
    }
  }
  if (reject) {
    // Bounded queue at cap: the arrival bounces straight back as BUSY. The
    // rejection costs the network a response but zero service — shedding at
    // the door is the whole point of the bound.
    guard_.note_rejected();
    if (tracer_ != nullptr) {
      tracer_->op_shed(now, op.op_id, op.request_id, params_.id,
                       trace::OpShedReason::kQueueFull);
    }
    respond_shed(op, OpStatus::kBusy);
    return;
  }
  if (busy_ && params_.preemptive) {
    // Snapshot the in-service op's remaining demand and ask the policy.
    // Progress is measured in base-cost units (identical to demand units in
    // synthetic mode).
    const double consumed = (now - current_started_) * current_speed_;
    const double remaining_base = current_base_cost_us_ - consumed;
    if (remaining_base > 1e-9) {
      sched::OpContext snapshot = current_op_;
      snapshot.demand_us = remaining_demand(remaining_base);
      if (scheduler_->preempts(op, snapshot)) preempt_current();
    }
  }
  scheduler_->enqueue(op, now);
  maybe_start();
}

void Server::respond_shed(const sched::OpContext& op, OpStatus status) {
  OpResponse resp;
  resp.op_id = op.op_id;
  resp.request_id = op.request_id;
  resp.client = op.client;
  resp.server = params_.id;
  resp.key = op.key;
  resp.hit = false;
  resp.is_write = op.is_write;
  resp.completed_at = sim_.now();
  resp.d_hat_us = d_hat_us();
  resp.mu_hat = mu_hat_;
  resp.status = status;
  DAS_CHECK_MSG(respond_ != nullptr, "response handler not wired");
  respond_(resp);
}

void Server::preempt_current() {
  DAS_CHECK(busy_);
  const SimTime now = sim_.now();
  sim_.cancel(completion_event_);
  completion_event_ = sim::EventHandle{};
  note_busy_interval(current_started_, now);
  const double consumed = (now - current_started_) * current_speed_;
  const double remaining_base = current_base_cost_us_ - consumed;
  current_op_.demand_us = std::max(remaining_demand(remaining_base), 0.0);
  busy_ = false;
  ++preemptions_;
  if (tracer_ != nullptr) {
    tracer_->service_end(now, current_op_.op_id, current_op_.request_id,
                         params_.id);
  }
  // Preempt-resume: the remainder rejoins the queue and competes normally.
  scheduler_->enqueue(current_op_, now);
}

void Server::note_busy_interval(SimTime begin, SimTime end) {
  const SimTime clip_begin = std::max(begin, window_begin_);
  const SimTime clip_end = std::min(end, window_end_);
  if (clip_end > clip_begin) busy_in_window_ += clip_end - clip_begin;
}

void Server::receive_progress(RequestId request,
                              const sched::ProgressUpdate& update) {
  if (state_ == State::kCrashed) return;
  scheduler_->on_request_progress(request, update, sim_.now());
}

void Server::crash() {
  DAS_CHECK_MSG(state_ != State::kCrashed, "crash of an already-crashed server");
  const SimTime now = sim_.now();
  if (busy_) {
    sim_.cancel(completion_event_);
    completion_event_ = sim::EventHandle{};
    note_busy_interval(current_started_, now);
    if (tracer_ != nullptr) {
      // Close the open service slice so trace spans stay balanced.
      tracer_->service_end(now, current_op_.op_id, current_op_.request_id,
                           params_.id);
    }
    busy_ = false;
    ++ops_dropped_;
  }
  ops_dropped_ += scheduler_->drain(now).size();
  DAS_CHECK_MSG(scheduler_->empty(), "crash left the scheduler non-empty");
  if (service_model_ != nullptr) {
    // The memtable dies with the process; background compaction is cut off.
    service_model_->on_crash(now);
    emit_store_transitions();
  }
  state_ = State::kCrashed;
  ++crashes_;
}

void Server::recover() {
  DAS_CHECK_MSG(state_ == State::kCrashed, "recover of a live server");
  DAS_CHECK(!busy_ && scheduler_->empty());
  state_ = State::kRecovering;
  recovery_ops_left_ = 16;
  ++recoveries_;
  // Warm restart of the estimator: the hardware class is known; the
  // time-varying component is re-learned from the next completions.
  mu_hat_ = params_.speed_factor;
  scheduler_->on_speed_estimate(mu_hat_);
}

void Server::set_fault_slowdown(double factor) {
  DAS_CHECK_MSG(factor > 0, "fault slowdown must be positive");
  fault_slowdown_ = factor;
}

void Server::maybe_start() {
  if (busy_ || state_ == State::kCrashed || scheduler_->empty()) return;
  const SimTime now = sim_.now();
  // Dequeue-time shedding: with the overload layer on, the head pick may be
  // past its end-to-end deadline (serving it would be pure waste) or — under
  // the sojourn-drop policy — have waited past the sojourn threshold (the
  // CoDel signal that the queue has gone standing). Either way the op is
  // answered immediately and the loop pulls the next candidate, so the
  // server never idles while sheddable work hides a runnable op behind it.
  bool selected = false;
  while (!scheduler_->empty()) {
    sched::OpContext head = scheduler_->dequeue(now);
    if (guard_.is_expired(now, head.expiry)) {
      guard_.note_expired();
      if (tracer_ != nullptr) {
        tracer_->op_shed(now, head.op_id, head.request_id, params_.id,
                         trace::OpShedReason::kExpired);
      }
      respond_shed(head, OpStatus::kExpired);
      continue;
    }
    if (guard_.should_drop_sojourn(now, head.enqueued_at)) {
      guard_.note_sojourn_drop();
      if (tracer_ != nullptr) {
        tracer_->op_shed(now, head.op_id, head.request_id, params_.id,
                         trace::OpShedReason::kSojourn);
      }
      respond_shed(head, OpStatus::kBusy);
      continue;
    }
    current_op_ = head;
    selected = true;
    break;
  }
  // Shedding may have drained the whole queue.
  if (!selected) return;
  current_started_ = now;
  busy_ = true;
  // Base cost: the store model's price when one is attached (size-dependent
  // read path, write-stall amplification), the client-tagged demand
  // otherwise. Priced once at dispatch.
  current_base_cost_us_ =
      service_model_ != nullptr
          ? service_model_->base_cost_us(cost_query(current_op_), now)
          : current_op_.demand_us;
  if (service_model_ != nullptr) emit_store_transitions();
  // The speed is sampled at dispatch; dwell times of the fluctuation
  // processes are orders of magnitude longer than one service, so freezing
  // the rate for the op's duration is a faithful approximation.
  current_speed_ = effective_speed(now);
  if (tracer_ != nullptr) {
    tracer_->service_start(now, current_op_.op_id, current_op_.request_id,
                           params_.id, current_base_cost_us_);
  }
  const double service = current_base_cost_us_ / current_speed_;
  completion_event_ = sim_.schedule_after(service, [this] { complete_current(); });
}

void Server::complete_current() {
  const SimTime now = sim_.now();
  const Duration elapsed = now - current_started_;
  DAS_CHECK(elapsed > 0);

  // Adaptive service-speed estimate from the observed completion.
  const double observed_speed = current_op_.demand_us / elapsed;
  mu_hat_ += params_.speed_alpha * (observed_speed - mu_hat_);
  scheduler_->on_speed_estimate(mu_hat_);

  note_busy_interval(current_started_, now);
  completion_event_ = sim::EventHandle{};

  std::optional<store::ValueRecord> record;
  if (current_op_.is_write) {
    storage_->put(current_op_.key, current_op_.write_size, now);
    record = *storage_->peek(current_op_.key);
  } else {
    record = storage_->get(current_op_.key, now);
  }
  if (service_model_ != nullptr) {
    // A completed write lands in the model's memtable and may trigger a
    // flush / compaction / stall transition.
    service_model_->on_op_complete(cost_query(current_op_), now);
    emit_store_transitions();
  }
  ++ops_completed_;
  // Deadlines are only checked at dequeue, never mid-service: an op that
  // expired while being served still completes, but its service time was
  // wasted — the client's deadline timer has already failed the request.
  if (guard_.is_expired(now, current_op_.expiry)) {
    wasted_service_us_ += elapsed;
  }
  if (state_ == State::kRecovering && --recovery_ops_left_ == 0)
    state_ = State::kUp;

  metrics_.record_operation(current_op_.enqueued_at, now,
                            current_started_ - current_op_.enqueued_at);

  OpResponse resp;
  resp.op_id = current_op_.op_id;
  resp.request_id = current_op_.request_id;
  resp.client = current_op_.client;
  resp.server = params_.id;
  resp.key = current_op_.key;
  resp.hit = record.has_value();
  resp.is_write = current_op_.is_write;
  resp.value_size = record ? record->size : 0;
  resp.completed_at = now;
  resp.d_hat_us = d_hat_us();
  resp.mu_hat = mu_hat_;
  // Timing echo for the client-side RCT breakdown. Under preempt-resume the
  // cut points describe the FINAL service slice (the remainder's re-enqueue
  // and dispatch), so earlier slices fold into the "network" residual.
  resp.timing.enqueued_at = current_op_.enqueued_at;
  resp.timing.service_start = current_started_;
  resp.timing.service_end = now;
  resp.timing.deferred_us = current_op_.deferred_wait_us;
  resp.timing.valid = true;

  if (tracer_ != nullptr) {
    tracer_->service_end(now, current_op_.op_id, current_op_.request_id,
                         params_.id);
  }

  busy_ = false;
  // Start the next op before responding: the response callback can inject
  // new work (it runs through the network anyway), and the server must never
  // idle with a non-empty queue.
  maybe_start();

  DAS_CHECK_MSG(respond_ != nullptr, "response handler not wired");
  respond_(resp);
}

}  // namespace das::core
