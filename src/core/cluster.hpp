// Cluster: wires simulator, network, partitioner, servers and clients into
// one runnable system and collects the results.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/server.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "workload/multiget.hpp"
#include "workload/replay.hpp"

namespace das::core {

/// Warmup/measurement windows of a run. Requests arriving in
/// [warmup, warmup + measure) are measured; everything is simulated to
/// completion either way so the tail is not truncated.
struct RunWindow {
  Duration warmup_us = 50.0 * kMillisecond;
  Duration measure_us = 300.0 * kMillisecond;
  SimTime horizon() const { return warmup_us + measure_us; }
};

class Cluster {
 public:
  /// `tracer` (optional, caller-owned, must outlive the cluster) records the
  /// full op lifecycle; null means zero tracing overhead.
  Cluster(ClusterConfig config, RunWindow window,
          trace::Tracer* tracer = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs to completion (all generated requests answered) and returns the
  /// aggregated result. Callable once.
  ExperimentResult run();

  // Introspection for tests.
  sim::Simulator& simulator() { return sim_; }
  const Metrics& metrics() const { return metrics_; }
  const ClusterConfig& config() const { return config_; }
  Server& server(std::size_t i) { return *servers_.at(i); }
  Client& client(std::size_t i) { return *clients_.at(i); }
  std::size_t server_count() const { return servers_.size(); }
  std::size_t client_count() const { return clients_.size(); }
  const store::Partitioner& partitioner() const { return *partitioner_; }
  const std::vector<Bytes>& key_sizes() const { return key_sizes_; }
  /// Tenant t's generator (nullptr for replay tenants); valid only when the
  /// config declares tenants.
  const workload::MultigetGenerator* tenant_generator(std::size_t t) const {
    return tenant_generators_.at(t).get();
  }
  /// Records every generated operation into `sink` for later replay
  /// (one record per read key, one per write); call before run(). nullptr
  /// detaches. Purely observational.
  void set_workload_recorder(workload::ReplayTrace* sink);
  /// Per-request RCT decomposition (aggregate always; rows when
  /// config.breakdown_retain_requests > 0).
  const trace::BreakdownCollector& breakdown() const { return breakdown_; }

 private:
  /// Request arrival rate (requests/µs, all clients) per the calibration mode.
  double derived_request_rate() const;
  /// Multi-tenant variant: share-weighted, mix-aware demand model across the
  /// synthetic tenants (replay tenants pace themselves off their trace).
  double derived_tenant_request_rate() const;

  /// Executes one scripted fault event (run() schedules one call per
  /// FaultPlan entry) and mirrors it into the trace as an instant event.
  void apply_fault(const fault::FaultEvent& event);

  net::NodeId server_node(ServerId s) const { return s; }
  net::NodeId client_node(ClientId c) const {
    return static_cast<net::NodeId>(config_.num_servers + c);
  }

  ClusterConfig config_;
  RunWindow window_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  store::PartitionerPtr partitioner_;
  std::vector<Bytes> key_sizes_;
  std::unique_ptr<workload::MultigetGenerator> generator_;
  /// Multi-tenant mode: one generator per tenant over its keyspace slice
  /// (nullptr entries for replay tenants) plus the loaded traces and the
  /// parsed per-tenant value-size distributions. All empty in legacy mode.
  std::vector<std::unique_ptr<workload::MultigetGenerator>> tenant_generators_;
  std::vector<workload::ReplayTrace> replay_traces_;
  std::vector<RealDistPtr> tenant_value_dists_;
  Metrics metrics_;
  trace::Tracer* tracer_ = nullptr;
  trace::BreakdownCollector breakdown_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::uint64_t progress_messages_ = 0;
  bool ran_ = false;
};

}  // namespace das::core
