// Parallel sweep execution.
//
// The evaluation is a grid of independent (config, policy, seed) experiment
// points; running them serially on one core is what makes the full sweep too
// slow for CI. A SweepRunner fans registered points out across a std::thread
// pool while keeping results DETERMINISTIC: every point owns its whole
// simulation (Cluster, Simulator, RNG streams — nothing mutable is shared;
// the distribution objects in ClusterConfig are immutable), and outcomes are
// merged back in registration order. A sweep at --jobs=N is therefore
// bit-identical to the same sweep at --jobs=1, which the test suite and the
// CI bench-smoke job both enforce.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"

namespace das::core {

/// Parses a comma-separated target-load list ("0.3,0.5,0.8") into the sweep
/// grid. Strict and deterministic: throws std::invalid_argument naming the
/// offending token on an empty list, an empty element (trailing/double
/// comma), a non-numeric element, trailing junk ("0.5x"), or a load outside
/// (0, 10) — a malformed grid must fail before any point runs, not after the
/// valid prefix burned an hour. Loads above 1 are deliberate overload points
/// (E22): run them behind the overload protections or expect a long drain.
std::vector<double> parse_load_list(const std::string& spec);

/// One experiment point of a sweep grid. `experiment` and `point` are labels
/// (table/JSON coordinates, e.g. "E1_load_mean" / "load=0.7"); the policy is
/// applied onto `config` when the point runs.
struct SweepPoint {
  std::string experiment;
  std::string point;
  sched::Policy policy = sched::Policy::kFcfs;
  ClusterConfig config;
  RunWindow window;
};

/// A completed point: its coordinates plus the experiment result. `seed` is
/// copied from the point's config so a JSON row can be re-run in isolation.
struct SweepOutcome {
  std::string experiment;
  std::string point;
  sched::Policy policy = sched::Policy::kFcfs;
  std::uint64_t seed = 0;
  ExperimentResult result;
};

class SweepRunner {
 public:
  /// Registers a point; returns its index. Outcomes are returned in
  /// registration order regardless of which thread finishes first.
  std::size_t add(SweepPoint point);
  std::size_t add(std::string experiment, std::string point,
                  sched::Policy policy, const ClusterConfig& config,
                  const RunWindow& window);

  std::size_t size() const { return points_.size(); }

  /// Runs every registered point across `jobs` worker threads (clamped to
  /// [1, size()]; jobs <= 1 runs inline on the calling thread). Each worker
  /// claims the next unclaimed index, so scheduling is dynamic but the merge
  /// is positional. If any point throws, the exception from the
  /// lowest-indexed failing point is rethrown after all workers join.
  /// Callable repeatedly; each call re-runs the whole grid.
  std::vector<SweepOutcome> run(std::size_t jobs) const;

  /// The machine's hardware concurrency (>= 1), the natural --jobs default.
  static std::size_t default_jobs();

 private:
  std::vector<SweepPoint> points_;
};

}  // namespace das::core
