// Simulated front-end client.
//
// Generates multiget requests open-loop, fans each out into per-server
// operations tagged with the scheduling metadata (DAS completion estimates,
// Rein bottleneck sizes, SRPT totals, EDF deadlines), tracks responses, and
// emits sibling-progress updates so servers can re-rank queued operations.
// The client's per-server delay/speed view is learned purely from response
// piggybacks — the "distributed" half of the paper's design.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/server.hpp"
#include "sched/op_context.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "trace/rct_breakdown.hpp"
#include "trace/tracer.hpp"
#include "workload/arrival.hpp"
#include "workload/mix.hpp"
#include "workload/multiget.hpp"
#include "workload/replay.hpp"

namespace das::core {

class Client {
 public:
  struct Params {
    ClientId id = 0;
    std::size_t num_servers = 0;
    /// Total clients in the cluster; replay tenants shard trace records
    /// across clients by index stride (client c takes records i ≡ c mod N).
    std::size_t num_clients = 1;
    /// Per-op demand model (must match the servers' service model).
    double per_op_overhead_us = 0;
    double service_bytes_per_us = 1;
    /// Learn per-server d/mu estimates from piggybacks; false = static view
    /// (zero delay, nominal speed) — the client half of the DAS-NA ablation.
    bool adaptive = true;
    /// Send sibling-progress updates to servers holding pending ops.
    bool progress_updates = true;
    /// Suppress a progress update when the completion estimate moved by less
    /// than this fraction of the remaining horizon (overhead control).
    double progress_threshold = 0.05;
    double ewma_alpha = 0.3;
    /// Round-trip allowance added to completion estimates at tag time.
    Duration est_rtt_us = 10.0;
    Duration edf_slo_us = 10.0 * kMillisecond;
    /// Read-one replication: candidate replicas per key and how to choose.
    std::size_t replication = 1;
    ReplicaSelection replica_selection = ReplicaSelection::kPrimary;
    /// End-to-end recovery from message loss: an operation unanswered for
    /// this long is retransmitted (same op id; duplicate service is
    /// harmless for reads, duplicate responses are discarded). 0 disables
    /// retransmission. Backs off exponentially (x2 per attempt) with
    /// deterministic ±20% jitter so synchronized losses do not yield
    /// synchronized retry storms.
    Duration retry_timeout_us = 0;
    /// Upper bound on the backed-off timeout (0 = uncapped): without a cap,
    /// an op unlucky through a long outage ends up probing a recovered
    /// server minutes apart.
    Duration retry_backoff_max_us = 0;
    /// Give-up bound: after this many send attempts the op is declared
    /// FAILED (never silently lost — it leaves the request accounted as
    /// failed). 0 retries forever, which is only safe when every outage
    /// eventually heals.
    std::uint32_t retry_max_attempts = 0;
    /// Failure detection: a server with this many consecutive retry
    /// timeouts and no intervening response is SUSPECTED — retries of reads
    /// fail over to live replicas and replica ranking avoids it until it
    /// answers again. 0 disables suspicion.
    std::uint32_t suspicion_rto_threshold = 3;
    /// Hedged reads: an operation unanswered after this delay is duplicated
    /// to a different replica (first response wins, the loser is
    /// discarded). Requires replication >= 2; 0 disables. Fires once.
    Duration hedge_delay_us = 0;
    /// Fraction of requests that are single-key PUTs fanned out to ALL
    /// replicas (write-all); the rest are multigets. 0 = read-only.
    /// Applies to tenants that do not carry their own operation mix.
    double write_fraction = 0;
    /// Sizes of written values; nullptr falls back to existing key size.
    RealDistPtr write_size_bytes;
    /// Overload protection (deadlines, admission control, BUSY handling).
    /// All defaults off: the client is bit-identical to pre-layer builds.
    overload::OverloadConfig overload;
  };

  /// One tenant's traffic source as seen by this client. A synthetic tenant
  /// has a generator plus an arrival process; a replay tenant has a trace
  /// (records sharded across clients by index stride) and neither.
  struct TenantStream {
    const workload::MultigetGenerator* generator = nullptr;
    workload::ArrivalPtr arrivals;
    /// has_mix=false inherits the legacy Params::write_fraction behaviour.
    bool has_mix = false;
    workload::OpMix mix{};
    /// Write sizes for this tenant; nullptr falls back to the cluster-wide
    /// Params::write_size_bytes (then to the key's existing size).
    RealDistPtr write_size_bytes;
    const workload::ReplayTrace* replay = nullptr;
  };

  using SendOp = std::function<void(ServerId, const sched::OpContext&)>;
  using SendProgress =
      std::function<void(ServerId, RequestId, const sched::ProgressUpdate&)>;

  /// Multi-tenant form: one TenantStream per tenant. `key_sizes` is the
  /// shared size catalogue; writes update it in place (the writer knows the
  /// size it wrote; other clients' estimates converge on their next access).
  Client(sim::Simulator& sim, Params params, Rng rng,
         std::vector<TenantStream> tenants, const store::Partitioner& partitioner,
         std::vector<Bytes>& key_sizes, Metrics& metrics, SendOp send_op,
         SendProgress send_progress);

  /// Single-stream form (the legacy workload): wraps `generator` + `arrivals`
  /// into one tenant. Bit-identical to pre-tenant builds.
  Client(sim::Simulator& sim, Params params, Rng rng,
         const workload::MultigetGenerator& generator,
         workload::ArrivalPtr arrivals, const store::Partitioner& partitioner,
         std::vector<Bytes>& key_sizes, Metrics& metrics, SendOp send_op,
         SendProgress send_progress);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Begins generating requests; arrivals strictly before `horizon`.
  void start(SimTime horizon);

  /// A server response arrived (cluster delivers through the network).
  void on_response(const OpResponse& resp);

  std::uint64_t requests_generated() const { return requests_generated_; }
  std::uint64_t requests_completed() const { return requests_completed_; }
  std::uint64_t requests_failed() const { return requests_failed_; }
  /// Requests shed by the overload layer (admission refusal or BUSY).
  std::uint64_t requests_shed() const { return requests_shed_; }
  /// Subset of requests_shed() refused at admission (no op ever sent).
  std::uint64_t requests_shed_admission() const {
    return requests_shed_admission_;
  }
  /// Requests whose end-to-end deadline passed before the last response.
  std::uint64_t requests_expired() const { return requests_expired_; }
  /// Current AIMD admit probability for tenant `t` (1.0 with admission off).
  double admission_rate(std::size_t t) const {
    return admission_ != nullptr ? admission_->rate(t) : 1.0;
  }
  /// Per-tenant slices of the outcome counters above; the sums over tenants
  /// equal the totals exactly (checked by Cluster::run).
  std::uint64_t tenant_requests_generated(std::size_t t) const {
    return tenant_generated_.at(t);
  }
  std::uint64_t tenant_requests_completed(std::size_t t) const {
    return tenant_completed_.at(t);
  }
  std::uint64_t tenant_requests_failed(std::size_t t) const {
    return tenant_failed_.at(t);
  }
  std::uint64_t tenant_requests_shed(std::size_t t) const {
    return tenant_shed_.at(t);
  }
  std::uint64_t tenant_requests_expired(std::size_t t) const {
    return tenant_expired_.at(t);
  }
  std::size_t tenant_count() const { return tenants_.size(); }
  std::uint64_t requests_completed_after_failover() const {
    return requests_completed_failover_;
  }
  std::uint64_t ops_generated() const { return ops_generated_; }
  std::uint64_t progress_sent() const { return progress_sent_; }
  std::uint64_t ops_retransmitted() const { return ops_retransmitted_; }
  std::uint64_t duplicate_responses() const { return duplicate_responses_; }
  std::uint64_t ops_hedged() const { return ops_hedged_; }
  std::uint64_t ops_failed_over() const { return ops_failed_over_; }
  std::uint64_t ops_abandoned() const { return ops_abandoned_; }
  std::uint64_t suspicions_raised() const { return suspicions_raised_; }
  std::size_t in_flight() const { return pending_.size(); }
  bool suspects(ServerId s) const { return suspected_[s] != 0; }

  /// Current learned view (tests).
  double delay_estimate(ServerId s) const { return d_est_[s]; }
  double speed_estimate(ServerId s) const { return mu_est_[s]; }

  /// Attaches a lifecycle tracer (nullptr detaches). Purely observational.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches the per-request RCT-breakdown sink (nullptr detaches).
  void set_breakdown_collector(trace::BreakdownCollector* collector) {
    breakdown_ = collector;
  }
  /// Attaches a replay-trace sink that records every generated operation
  /// (one record per read key, one per write) for later replay; nullptr
  /// detaches. Purely observational.
  void set_op_recorder(workload::ReplayTrace* sink) { recorder_ = sink; }

 private:
  struct PendingOp {
    OperationId op_id = 0;
    ServerId server = 0;
    KeyId key = 0;
    double demand_us = 0;
    bool done = false;
    /// Message as originally sent, kept for retransmission/hedging.
    sched::OpContext sent_ctx;
    sim::EventHandle retry_timer;
    sim::EventHandle hedge_timer;
    std::uint32_t attempts = 1;
    bool hedged = false;
    /// When the (first) response was delivered; feeds straggler slack.
    SimTime delivered_at = 0;
    /// The server answered BUSY at least once (overload layer). Re-attributes
    /// a later retry-budget exhaustion to shed instead of failed.
    bool busy_rejected = false;
    /// Server-side timing echo from that response.
    trace::OpServiceTiming timing;
  };
  struct PendingRequest {
    SimTime arrival = 0;
    /// Index of the tenant that generated the request (0 in legacy mode).
    std::uint32_t tenant = 0;
    std::vector<PendingOp> ops;
    std::size_t remaining = 0;
    double last_sent_critical = 0;
    double last_sent_total = 0;
    /// At least one op was redirected to another replica by suspicion.
    bool failed_over = false;
    /// Ops abandoned after exhausting the retry budget; > 0 makes the whole
    /// request count as failed instead of completed.
    std::size_t failed_ops = 0;
    /// Ops terminally shed by the overload layer (BUSY with no retry budget
    /// left, or BUSY with retries disabled); > 0 marks the request SHED,
    /// taking precedence over failed.
    std::size_t shed_ops = 0;
    /// Absolute end-to-end deadline (arrival + budget); kTimeInfinity when
    /// deadlines are off. Carried on every op's wire context.
    SimTime expiry = kTimeInfinity;
    /// Fires expire_request at `expiry`; cancelled on any earlier settle.
    sim::EventHandle deadline_timer;
  };

  /// What one planned operation looks like before tagging/sending.
  struct PlannedOp {
    KeyId key = 0;
    ServerId server = 0;
    double demand = 0;
    bool is_write = false;
    Bytes write_size = 0;
  };

  void schedule_next_arrival(std::size_t tenant, SimTime horizon);
  void generate_request(std::size_t tenant);
  /// Chain-schedules this client's next assigned replay record (>= `index`,
  /// stepping by num_clients) of tenant `tenant`.
  void schedule_replay(std::size_t tenant, std::size_t index, SimTime horizon);
  void generate_replay_request(std::size_t tenant, std::size_t index);
  /// Tags, accounts and sends a planned request (shared by the synthetic and
  /// replay paths).
  void dispatch_plan(std::size_t tenant, const std::vector<PlannedOp>& plan);
  /// The RNG stream backing tenant `t`'s workload draws. Tenant 0 IS the
  /// client stream (bit-identity with single-tenant builds); later tenants
  /// fork from a copy at construction.
  Rng& tenant_rng(std::size_t t) {
    return t == 0 ? rng_ : extra_tenant_rngs_[t - 1];
  }
  double op_demand_us(KeyId key) const;
  /// Target replica for `key` per the configured selection strategy.
  ServerId pick_server(KeyId key, double demand);
  /// Snapshot of the learned per-server state for the selector layer.
  select::LearnedView learned_view() const;
  /// Intrinsic service-time estimate of one op (demand over learned speed).
  double service_estimate_us(ServerId server, double demand) const;
  /// Full completion estimate of one op if sent now (rtt + queueing + service).
  SimTime full_estimate(SimTime now, ServerId server, double demand) const;

  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  std::vector<TenantStream> tenants_;
  const store::Partitioner& partitioner_;
  std::vector<Bytes>& key_sizes_;
  Metrics& metrics_;
  SendOp send_op_;
  SendProgress send_progress_;
  trace::Tracer* tracer_ = nullptr;
  trace::BreakdownCollector* breakdown_ = nullptr;
  workload::ReplayTrace* recorder_ = nullptr;

  std::vector<double> d_est_;
  std::vector<double> mu_est_;
  /// The replica-selection strategy (src/select); shared by fresh picks,
  /// hedges and failovers so their ranking logic cannot diverge again.
  std::unique_ptr<select::ReplicaSelector> selector_;
  // Lookup-only tables (never iterated): FlatMap keeps them deterministic
  // across standard libraries and off the per-response allocation path.
  FlatMap<RequestId, PendingRequest> pending_;
  FlatMap<OperationId, RequestId> op_to_request_;

  /// Jitter stream for retry backoff, forked off a COPY of the client RNG at
  /// construction so the workload draws stay bit-identical to jitter-free
  /// builds; only armed retries consume from it.
  Rng retry_rng_;
  /// Admission coin flips, forked off a COPY of the client RNG likewise;
  /// only drawn when admission control is on (exactly once per request).
  Rng admission_rng_;
  /// Per-tenant AIMD admission throttle; nullptr when admission is off.
  std::unique_ptr<overload::AdmissionController> admission_;
  /// Workload streams for tenants 1..N-1, each forked off a COPY of the
  /// client RNG with a tenant-distinct tag. Tenant 0 uses rng_ directly so a
  /// single-tenant run draws exactly like a pre-tenant build.
  std::vector<Rng> extra_tenant_rngs_;
  /// Consecutive unanswered retry timeouts per server and the derived
  /// suspicion flags (failure detection).
  std::vector<std::uint32_t> rto_strikes_;
  std::vector<char> suspected_;

  std::uint64_t next_request_seq_ = 0;
  std::uint64_t next_op_seq_ = 0;
  std::uint64_t requests_generated_ = 0;
  std::uint64_t requests_completed_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t requests_shed_ = 0;
  std::uint64_t requests_shed_admission_ = 0;
  std::uint64_t requests_expired_ = 0;
  /// Per-tenant slices of the request counters (always sized tenant_count()).
  std::vector<std::uint64_t> tenant_generated_;
  std::vector<std::uint64_t> tenant_completed_;
  std::vector<std::uint64_t> tenant_failed_;
  std::vector<std::uint64_t> tenant_shed_;
  std::vector<std::uint64_t> tenant_expired_;
  std::uint64_t requests_completed_failover_ = 0;
  std::uint64_t ops_generated_ = 0;
  std::uint64_t progress_sent_ = 0;
  std::uint64_t ops_retransmitted_ = 0;
  std::uint64_t duplicate_responses_ = 0;
  std::uint64_t ops_hedged_ = 0;
  std::uint64_t ops_failed_over_ = 0;
  std::uint64_t ops_abandoned_ = 0;
  std::uint64_t suspicions_raised_ = 0;

  /// Arms (or re-arms) the retransmission timer for an op of `rid`.
  void arm_retry(RequestId rid, PendingOp& op);
  /// Arms the one-shot hedge timer for an op of `rid`.
  void arm_hedge(RequestId rid, PendingOp& op);
  /// Failure detection: one more consecutive timeout against `server`.
  void note_rto(ServerId server);
  /// Redirects a read retry to the best unsuspected replica, if any.
  void maybe_fail_over(PendingRequest& req, PendingOp& op);
  /// Retry budget exhausted: the op is declared failed (or shed, if its last
  /// word from the server was BUSY); finalizes once no op remains in flight.
  void abandon_op(RequestId rid, PendingOp& op);
  /// A BUSY response arrived for a pending op: feed the admission throttle
  /// and either lean on the armed retry timer or shed the op terminally.
  void on_shed_response(const OpResponse& resp, RequestId rid);
  /// Terminally sheds one op (mirrors abandon_op with shed attribution).
  void shed_op(RequestId rid, PendingOp& op);
  /// remaining == 0 with shed_ops or failed_ops: settles the request as
  /// SHED (precedence) or FAILED and erases it.
  void finalize_degraded(RequestId rid);
  /// Deadline timer callback: fails the whole request as EXPIRED, tearing
  /// down every in-flight op (late responses discard as duplicates).
  void expire_request(RequestId rid);
};

}  // namespace das::core
