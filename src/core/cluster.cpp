#include "core/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "core/wire.hpp"
#include "workload/arrival.hpp"
#include "workload/spec.hpp"

namespace das::core {

namespace {

/// Tenant t's contiguous keyspace slice: equal floor(universe / count) keys
/// each, the last tenant absorbing the remainder.
struct TenantSlice {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
};

TenantSlice tenant_slice(std::uint64_t universe, std::size_t count, std::size_t t) {
  const std::uint64_t slice = universe / count;
  const std::uint64_t base = slice * static_cast<std::uint64_t>(t);
  return {base, t + 1 == count ? universe - base : slice};
}

bool policy_uses_progress(sched::Policy policy) {
  switch (policy) {
    case sched::Policy::kDas:
    case sched::Policy::kDasNoDefer:
    case sched::Policy::kDasNoAging:
    case sched::Policy::kDasCritical:
    case sched::Policy::kReqSrpt:
      return true;
    // DAS-NA turns the whole adaptive feedback loop off, progress included.
    case sched::Policy::kDasNoAdapt:
    default:
      return false;
  }
}

}  // namespace

Cluster::Cluster(ClusterConfig config, RunWindow window, trace::Tracer* tracer)
    : config_(std::move(config)), window_(window), tracer_(tracer) {
  DAS_CHECK(config_.num_servers >= 1);
  DAS_CHECK(config_.num_clients >= 1);
  DAS_CHECK(config_.keys_per_server >= 1);
  DAS_CHECK(window_.measure_us > 0);
  config_.validate();

  Rng master{config_.seed};

  // Network.
  net::Network::Config net_cfg;
  net_cfg.latency = config_.net_jitter_sigma > 0
                        ? net::make_lognormal_latency(config_.net_latency_us,
                                                      config_.net_jitter_sigma)
                        : net::make_constant_latency(config_.net_latency_us);
  net_cfg.loss_probability = config_.msg_loss_probability;
  net_cfg.num_nodes = static_cast<std::uint32_t>(config_.num_servers +
                                                 config_.num_clients);
  net_ = std::make_unique<net::Network>(sim_, net_cfg, master.fork(0xA11CE));

  // Placement.
  partitioner_ = config_.ring_vnodes > 0
                     ? store::make_consistent_hash_ring(config_.num_servers,
                                                        config_.ring_vnodes)
                     : store::make_modulo_partitioner(config_.num_servers);

  // Key catalogue: sizes drawn once, shared by clients (demand estimation)
  // and servers (stored values). With tenants, each key draws from its
  // owning tenant's value-size distribution (inheriting the cluster's when
  // the tenant sets none) — same single sequential stream either way, so the
  // legacy path is untouched.
  const std::uint64_t universe =
      config_.num_servers * config_.keys_per_server;
  const std::size_t tenant_count = config_.tenants.size();
  tenant_value_dists_.resize(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    tenant_value_dists_[t] =
        config_.tenants[t].value_size_spec.empty()
            ? config_.value_size_bytes
            : workload::parse_real_dist(config_.tenants[t].value_size_spec);
  }
  key_sizes_.resize(universe);
  {
    Rng size_rng = master.fork(0x512E);
    if (tenant_count == 0) {
      for (auto& size : key_sizes_) {
        size = static_cast<Bytes>(
            std::max(1.0, std::round(config_.value_size_bytes->sample(size_rng))));
      }
    } else {
      const std::uint64_t slice = universe / tenant_count;
      for (std::uint64_t key = 0; key < universe; ++key) {
        const std::size_t owner = slice == 0
                                      ? tenant_count - 1
                                      : std::min<std::size_t>(
                                            tenant_count - 1,
                                            static_cast<std::size_t>(key / slice));
        key_sizes_[key] = static_cast<Bytes>(std::max(
            1.0, std::round(tenant_value_dists_[owner]->sample(size_rng))));
      }
    }
  }

  // Servers.
  metrics_.set_window(window_.warmup_us, window_.horizon());
  if (config_.timeline_bucket_us > 0)
    metrics_.enable_timeline(config_.timeline_bucket_us);
  servers_.reserve(config_.num_servers);
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    Server::Params params;
    params.id = static_cast<ServerId>(s);
    params.speed_factor =
        config_.server_speed_factors.empty() ? 1.0 : config_.server_speed_factors[s];
    if (!config_.speed_profiles.empty()) {
      params.speed_profile = config_.speed_profiles.size() == 1
                                 ? config_.speed_profiles[0]
                                 : config_.speed_profiles[s];
    }
    params.speed_alpha = config_.server_speed_alpha;
    params.preemptive = config_.preemptive_service;
    params.log_structured_storage = config_.log_structured_storage;
    params.overload = config_.overload;
    if (config_.store_model == StoreModel::kLsm) {
      store::LsmOptions lsm_opt = config_.lsm;
      // Costs are expressed in the same currency as the synthetic demand
      // model: mirror the service-model anchors from the config.
      lsm_opt.per_op_overhead_us = config_.per_op_overhead_us;
      lsm_opt.service_bytes_per_us = config_.service_bytes_per_us;
      // Forked only in LSM mode so the synthetic fork sequence — and with it
      // every golden result — is untouched (Rng::fork consumes parent state).
      params.service_model = std::make_unique<store::LsmModel>(
          lsm_opt, master.fork(0x15A0D0 + s).next_u64());
    }

    sched::SchedulerConfig sched_cfg = config_.sched_config;
    sched_cfg.seed = master.fork(0x5EED + s).next_u64();
    auto scheduler = sched::make_scheduler(config_.policy, sched_cfg);

    auto server = std::make_unique<Server>(sim_, std::move(params),
                                           std::move(scheduler), metrics_);
    server->set_utilization_window(window_.warmup_us, window_.horizon());
    if (tracer_ != nullptr) server->set_tracer(tracer_);
    servers_.push_back(std::move(server));
  }

  // Every server (and through it, its scheduler) is auditable; the cadence
  // decides whether audits run continuously during the event loop.
  for (const auto& server : servers_) sim_.add_auditable(server.get());
  sim_.set_audit_cadence(config_.audit_every_events);

  // Populate every key on its replica set (primary-only when replication=1).
  const std::size_t replication =
      std::min(std::max<std::size_t>(config_.replication, 1), config_.num_servers);
  for (std::uint64_t key = 0; key < universe; ++key) {
    for (const ServerId s : partitioner_->replicas_for(key, replication)) {
      servers_[s]->populate(key, key_sizes_[key]);
    }
  }

  // Response routing: server -> network -> client.
  for (auto& server : servers_) {
    server->set_response_handler([this](const OpResponse& resp) {
      net_->send(server_node(resp.server), client_node(resp.client),
                 wire::response_wire_size(resp),
                 [this, resp] { clients_[resp.client]->on_response(resp); });
    });
  }

  // Workload generators. Legacy: one generator over the full keyspace shared
  // by all clients. Tenants: one per tenant over its contiguous slice
  // (replay tenants load their trace instead).
  if (tenant_count == 0) {
    workload::MultigetGenerator::Config gen_cfg;
    gen_cfg.key_universe = universe;
    gen_cfg.zipf_theta = config_.zipf_theta;
    gen_cfg.fanout = config_.fanout;
    generator_ = std::make_unique<workload::MultigetGenerator>(gen_cfg);
  } else {
    tenant_generators_.resize(tenant_count);
    replay_traces_.resize(tenant_count);
    for (std::size_t t = 0; t < tenant_count; ++t) {
      const workload::TenantSpec& tenant = config_.tenants[t];
      if (!tenant.replay_path.empty()) {
        replay_traces_[t] = workload::ReplayTrace::load(tenant.replay_path);
        DAS_CHECK_MSG(replay_traces_[t].empty() ||
                          replay_traces_[t].max_key() < universe,
                      "replay trace '" + tenant.replay_path +
                          "' references keys outside the keyspace");
        continue;
      }
      const TenantSlice slice = tenant_slice(universe, tenant_count, t);
      workload::MultigetGenerator::Config gen_cfg;
      gen_cfg.key_universe = slice.size;
      gen_cfg.key_base = slice.base;
      gen_cfg.zipf_theta =
          tenant.zipf_theta >= 0 ? tenant.zipf_theta : config_.zipf_theta;
      gen_cfg.fanout = tenant.fanout_spec.empty()
                           ? config_.fanout
                           : workload::parse_int_dist(tenant.fanout_spec);
      // Distinct permutation per tenant so tenants' hot keys land on
      // different servers instead of colliding rank-for-rank.
      gen_cfg.rank_permutation_seed =
          0x9E3779B9ull + 0xD1B54A32D192ED03ull * static_cast<std::uint64_t>(t);
      gen_cfg.drift = tenant.drift;
      tenant_generators_[t] =
          std::make_unique<workload::MultigetGenerator>(gen_cfg);
    }
    metrics_.enable_tenants(tenant_count);
  }

  // Clients.
  bool any_synthetic = tenant_count == 0;
  double share_sum = 0;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    if (config_.tenants[t].replay_path.empty()) {
      any_synthetic = true;
      share_sum += config_.tenants[t].share;
    }
  }
  const double total_rate = any_synthetic ? derived_request_rate() : 0.0;
  const double per_client_rate = total_rate / static_cast<double>(config_.num_clients);
  const bool progress =
      config_.progress_updates && policy_uses_progress(config_.policy);
  const bool adaptive =
      config_.client_adaptive && config_.policy != sched::Policy::kDasNoAdapt;

  clients_.reserve(config_.num_clients);
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    Client::Params params;
    params.id = static_cast<ClientId>(c);
    params.num_servers = config_.num_servers;
    params.per_op_overhead_us = config_.per_op_overhead_us;
    params.service_bytes_per_us = config_.service_bytes_per_us;
    params.adaptive = adaptive;
    params.progress_updates = progress;
    params.ewma_alpha = config_.client_ewma_alpha;
    params.est_rtt_us = 2.0 * config_.net_latency_us;
    params.edf_slo_us = config_.edf_slo_us;
    params.replication = replication;
    params.replica_selection = config_.replica_selection;
    params.retry_timeout_us = config_.retry_timeout_us;
    params.retry_backoff_max_us = config_.retry_backoff_max_us;
    params.retry_max_attempts = config_.retry_max_attempts;
    params.suspicion_rto_threshold = config_.suspicion_rto_threshold;
    params.hedge_delay_us = config_.hedge_delay_us;
    params.write_fraction = config_.write_fraction;
    params.write_size_bytes = config_.write_size_bytes ? config_.write_size_bytes
                                                       : config_.value_size_bytes;
    params.overload = config_.overload;

    auto send_op = [this](ServerId server, const sched::OpContext& ctx) {
      net_->send(client_node(ctx.client), server_node(server),
                 wire::op_wire_size(ctx),
                 [this, server, ctx] { servers_[server]->receive_op(ctx); });
    };
    auto send_progress = [this, c](ServerId server, RequestId rid,
                                   const sched::ProgressUpdate& update) {
      ++progress_messages_;
      net_->send(client_node(static_cast<ClientId>(c)), server_node(server),
                 wire::progress_wire_size(), [this, server, rid, update] {
                   servers_[server]->receive_progress(rid, update);
                 });
    };

    const auto make_arrivals = [&](double rate) -> workload::ArrivalPtr {
      return config_.load_profile
                 ? workload::make_modulated_poisson(rate, config_.load_profile,
                                                    window_.horizon())
                 : workload::make_poisson_arrivals(rate);
    };

    if (tenant_count == 0) {
      clients_.push_back(std::make_unique<Client>(
          sim_, params, master.fork(0xC11E47 + c), *generator_,
          make_arrivals(per_client_rate), *partitioner_, key_sizes_, metrics_,
          std::move(send_op), std::move(send_progress)));
    } else {
      params.num_clients = config_.num_clients;
      std::vector<Client::TenantStream> streams(tenant_count);
      for (std::size_t t = 0; t < tenant_count; ++t) {
        const workload::TenantSpec& tenant = config_.tenants[t];
        Client::TenantStream& stream = streams[t];
        if (!tenant.replay_path.empty()) {
          stream.replay = &replay_traces_[t];
          continue;
        }
        stream.generator = tenant_generators_[t].get();
        // The cluster rate splits across synthetic tenants by share, then
        // across clients evenly.
        stream.arrivals =
            make_arrivals(per_client_rate * tenant.share / share_sum);
        stream.has_mix = tenant.has_mix;
        stream.mix = tenant.mix;
        if (!tenant.value_size_spec.empty()) {
          stream.write_size_bytes = tenant_value_dists_[t];
        }
      }
      clients_.push_back(std::make_unique<Client>(
          sim_, params, master.fork(0xC11E47 + c), std::move(streams),
          *partitioner_, key_sizes_, metrics_, std::move(send_op),
          std::move(send_progress)));
    }
    if (tracer_ != nullptr) clients_.back()->set_tracer(tracer_);
    clients_.back()->set_breakdown_collector(&breakdown_);
  }

  // The breakdown uses the same measurement window as the metrics.
  breakdown_.set_window(window_.warmup_us, window_.horizon());
  breakdown_.set_retain_cap(config_.breakdown_retain_requests);
}

double Cluster::derived_request_rate() const {
  if (!config_.tenants.empty()) return derived_tenant_request_rate();
  if (config_.load_calibration == LoadCalibration::kAverageCapacity) {
    return config_.derived_arrival_rate(window_.horizon());
  }
  // Hottest-server calibration: expected demand share of server s per drawn
  // key is  share_s = sum over its keys of pmf(rank) * demand(key).
  // Utilisation of s at op rate L is  L * share_s / speed_s, so the op rate
  // that puts the hottest server at target_load is
  //   L = target_load / max_s(share_s / speed_s).
  std::vector<double> share(config_.num_servers, 0.0);
  const std::uint64_t universe = key_sizes_.size();
  const std::size_t replication =
      std::min(std::max<std::size_t>(config_.replication, 1), config_.num_servers);
  for (std::uint64_t rank = 0; rank < universe; ++rank) {
    const KeyId key = generator_->key_for_rank(rank);
    const double demand =
        config_.per_op_overhead_us +
        static_cast<double>(key_sizes_[key]) / config_.service_bytes_per_us;
    // Selection-aware share model (src/select): modes that never leave the
    // primary put a key's whole demand there; every other mode spreads it
    // evenly across the replica set — exact for kRandom, a deliberate
    // approximation for the view-driven modes (least-delay/tars/power-of-d),
    // which chase the momentarily fastest replica but equalise in the
    // homogeneous steady state this calibration assumes (see EXPERIMENTS.md,
    // "Replica selection").
    if (replication == 1 ||
        select::load_share_model(config_.replica_selection) ==
            select::LoadShareModel::kAllOnPrimary) {
      share[partitioner_->server_for(key)] += generator_->rank_pmf(rank) * demand;
    } else {
      const auto replicas = partitioner_->replicas_for(key, replication);
      const double slice = generator_->rank_pmf(rank) * demand /
                           static_cast<double>(replicas.size());
      for (const ServerId s : replicas) share[s] += slice;
    }
  }
  const auto profile_mean = [&](std::size_t s) -> double {
    if (config_.speed_profiles.empty()) return 1.0;
    const auto& profile = config_.speed_profiles.size() == 1
                              ? config_.speed_profiles[0]
                              : config_.speed_profiles[s];
    if (profile == nullptr) return 1.0;
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < window_.horizon(); t += step, ++n)
      acc += profile->value_at(t);
    return n ? acc / static_cast<double>(n) : profile->value_at(0);
  };
  double hottest = 0;
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    const double speed =
        (config_.server_speed_factors.empty() ? 1.0 : config_.server_speed_factors[s]) *
        profile_mean(s);
    hottest = std::max(hottest, share[s] / speed);
  }
  DAS_CHECK(hottest > 0);
  double load_profile_mean = 1.0;
  if (config_.load_profile != nullptr) {
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < window_.horizon(); t += step, ++n)
      acc += config_.load_profile->value_at(t);
    load_profile_mean = acc / static_cast<double>(n);
  }
  const double op_rate = config_.target_load / (hottest * load_profile_mean);
  return op_rate / config_.fanout->mean();
}

double Cluster::derived_tenant_request_rate() const {
  // Multi-tenant calibration: the expected demand of one request is the
  // share-weighted average across SYNTHETIC tenants of their mix-weighted
  // read / update / read-modify-write work. Replay tenants contribute no
  // derived load — their rate comes verbatim from the trace timestamps.
  const std::size_t tenant_count = config_.tenants.size();
  const std::uint64_t universe = key_sizes_.size();
  const std::size_t replication =
      std::min(std::max<std::size_t>(config_.replication, 1), config_.num_servers);
  const double rate = config_.service_bytes_per_us;
  const double overhead = config_.per_op_overhead_us;

  double share_sum = 0;
  for (const workload::TenantSpec& tenant : config_.tenants) {
    if (tenant.replay_path.empty()) share_sum += tenant.share;
  }
  DAS_CHECK_MSG(share_sum > 0, "rate derivation needs a synthetic tenant");

  // Per-tenant mix (legacy write_fraction when the spec carries none) and
  // written-value mean. A tenant without any write-size distribution keeps
  // the key's existing size on writes, so its write demand is per-key.
  const auto mix_of = [&](const workload::TenantSpec& tenant) {
    workload::OpMix mix;
    if (tenant.has_mix) {
      mix = tenant.mix;
    } else {
      mix.read = 1.0 - config_.write_fraction;
      mix.update = config_.write_fraction;
      mix.rmw = 0.0;
    }
    return mix;
  };
  const auto write_mean_of = [&](std::size_t t, bool& has_dist) -> double {
    if (!config_.tenants[t].value_size_spec.empty()) {
      has_dist = true;
      return tenant_value_dists_[t]->mean();
    }
    if (config_.write_size_bytes != nullptr) {
      has_dist = true;
      return config_.write_size_bytes->mean();
    }
    has_dist = false;
    return 0.0;
  };

  double load_profile_mean = 1.0;
  if (config_.load_profile != nullptr) {
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < window_.horizon(); t += step, ++n)
      acc += config_.load_profile->value_at(t);
    load_profile_mean = acc / static_cast<double>(n);
    DAS_CHECK(load_profile_mean > 0);
  }

  if (config_.load_calibration == LoadCalibration::kAverageCapacity) {
    double work_per_request = 0;
    const auto replicas = static_cast<double>(replication);
    for (std::size_t t = 0; t < tenant_count; ++t) {
      const workload::TenantSpec& tenant = config_.tenants[t];
      if (!tenant.replay_path.empty()) continue;
      const double weight = tenant.share / share_sum;
      const workload::OpMix mix = mix_of(tenant);
      const double value_mean = tenant_value_dists_[t]->mean();
      bool has_wdist = false;
      const double write_mean_or = write_mean_of(t, has_wdist);
      const double write_mean = has_wdist ? write_mean_or : value_mean;
      const double read_work = tenant_generators_[t]->mean_fanout() *
                               (overhead + value_mean / rate);
      const double update_work = replicas * (overhead + write_mean / rate);
      const double rmw_work =
          replicas * (2.0 * overhead + (value_mean + write_mean) / rate);
      work_per_request += weight * (mix.read * read_work +
                                    mix.update * update_work +
                                    mix.rmw * rmw_work);
    }
    return config_.target_load * config_.nominal_capacity(window_.horizon()) /
           (work_per_request * load_profile_mean);
  }

  // Hottest-server calibration: expected demand share of server s PER
  // REQUEST, summed over every synthetic tenant's popularity law over its
  // slice. Reads follow the selection-aware share model (see the
  // single-tenant branch); updates/RMWs land on the whole replica set.
  std::vector<double> share(config_.num_servers, 0.0);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    const workload::TenantSpec& tenant = config_.tenants[t];
    if (!tenant.replay_path.empty()) continue;
    const workload::MultigetGenerator& gen = *tenant_generators_[t];
    const double weight = tenant.share / share_sum;
    const workload::OpMix mix = mix_of(tenant);
    bool has_wdist = false;
    const double write_mean = write_mean_of(t, has_wdist);
    const double read_scale = weight * mix.read * gen.mean_fanout();
    const double write_frac = mix.update + mix.rmw;
    const bool spread =
        replication > 1 && select::load_share_model(config_.replica_selection) !=
                               select::LoadShareModel::kAllOnPrimary;
    const std::uint64_t slice = tenant_slice(universe, tenant_count, t).size;
    for (std::uint64_t rank = 0; rank < slice; ++rank) {
      const KeyId key = gen.key_for_rank(rank);
      const double pmf = gen.rank_pmf(rank);
      const double key_bytes = static_cast<double>(key_sizes_[key]);
      const double read_demand = overhead + key_bytes / rate;
      if (read_scale > 0) {
        const double read_slice = read_scale * pmf * read_demand;
        if (!spread) {
          share[partitioner_->server_for(key)] += read_slice;
        } else {
          const auto reps = partitioner_->replicas_for(key, replication);
          const double each = read_slice / static_cast<double>(reps.size());
          for (const ServerId s : reps) share[s] += each;
        }
      }
      if (write_frac > 0) {
        const double new_bytes = has_wdist ? write_mean : key_bytes;
        const double update_demand = overhead + new_bytes / rate;
        const double rmw_demand =
            2.0 * overhead + (key_bytes + new_bytes) / rate;
        const double write_slice =
            weight * pmf *
            (mix.update * update_demand + mix.rmw * rmw_demand);
        for (const ServerId s : partitioner_->replicas_for(key, replication)) {
          share[s] += write_slice;
        }
      }
    }
  }
  const auto profile_mean = [&](std::size_t s) -> double {
    if (config_.speed_profiles.empty()) return 1.0;
    const auto& profile = config_.speed_profiles.size() == 1
                              ? config_.speed_profiles[0]
                              : config_.speed_profiles[s];
    if (profile == nullptr) return 1.0;
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < window_.horizon(); t += step, ++n)
      acc += profile->value_at(t);
    return n ? acc / static_cast<double>(n) : profile->value_at(0);
  };
  double hottest = 0;
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    const double speed =
        (config_.server_speed_factors.empty() ? 1.0 : config_.server_speed_factors[s]) *
        profile_mean(s);
    hottest = std::max(hottest, share[s] / speed);
  }
  DAS_CHECK(hottest > 0);
  // `share` is per-request already (fanout folded in above), so the result
  // needs no division by a mean fanout.
  return config_.target_load / (hottest * load_profile_mean);
}

void Cluster::set_workload_recorder(workload::ReplayTrace* sink) {
  for (auto& client : clients_) client->set_op_recorder(sink);
}

void Cluster::apply_fault(const fault::FaultEvent& event) {
  const SimTime now = sim_.now();
  switch (event.kind) {
    case fault::FaultKind::kCrash:
      servers_[event.server]->crash();
      break;
    case fault::FaultKind::kRecover:
      servers_[event.server]->recover();
      break;
    case fault::FaultKind::kSlowStart:
      servers_[event.server]->set_fault_slowdown(event.factor);
      break;
    case fault::FaultKind::kSlowEnd:
      servers_[event.server]->set_fault_slowdown(1.0);
      break;
    case fault::FaultKind::kPartition:
    case fault::FaultKind::kHeal: {
      const bool cut = event.kind == fault::FaultKind::kPartition;
      if (event.client == fault::kAllClients) {
        for (std::size_t c = 0; c < clients_.size(); ++c) {
          net_->set_partitioned(client_node(static_cast<ClientId>(c)),
                                server_node(event.server), cut);
        }
      } else {
        net_->set_partitioned(client_node(event.client),
                              server_node(event.server), cut);
      }
      break;
    }
    case fault::FaultKind::kLossStart:
      net_->set_burst_loss(event.factor);
      break;
    case fault::FaultKind::kLossEnd:
      net_->set_burst_loss(0.0);
      break;
  }
  if (tracer_ != nullptr) {
    // trace::FaultTraceKind mirrors fault::FaultKind value-for-value (the
    // trace layer must not depend on the fault library).
    tracer_->fault_event(now, static_cast<trace::FaultTraceKind>(event.kind),
                         event.server, event.factor);
  }
}

ExperimentResult Cluster::run() {
  DAS_CHECK_MSG(!ran_, "Cluster::run is single-shot");
  ran_ = true;

  // Wall-clock (not sim-time) bracket around the run: reports host
  // throughput only, never feeds back into simulation state.
  const auto wall_start = std::chrono::steady_clock::now();  // NOLINT(das-no-wallclock)
  // Script the fault timeline before workload generation begins; each event
  // is an ordinary simulator event, so faults interleave deterministically
  // with the workload.
  for (const fault::FaultEvent& event : config_.fault_plan.events) {
    sim_.schedule_at(event.at, [this, event] { apply_fault(event); });
  }
  for (auto& client : clients_) client->start(window_.horizon());
  sim_.run();
  // Close the store models' open compaction/stall windows so busy-time
  // accounting covers the whole run (no-op in synthetic mode).
  for (auto& server : servers_) server->finalize_store();
  const auto wall_end = std::chrono::steady_clock::now();  // NOLINT(das-no-wallclock)

  ExperimentResult result;
  result.rct = metrics_.rct().summary();
  result.op_latency = metrics_.op_latency().summary();
  result.op_wait = metrics_.op_wait().summary();
  for (const auto& client : clients_) {
    result.requests_generated += client->requests_generated();
    result.requests_completed += client->requests_completed();
    result.requests_failed += client->requests_failed();
    result.requests_shed += client->requests_shed();
    result.requests_shed_admission += client->requests_shed_admission();
    result.requests_expired += client->requests_expired();
    result.requests_completed_after_failover +=
        client->requests_completed_after_failover();
    result.ops_generated += client->ops_generated();
    result.ops_retransmitted += client->ops_retransmitted();
    result.duplicate_responses += client->duplicate_responses();
    result.ops_hedged += client->ops_hedged();
    result.ops_failed_over += client->ops_failed_over();
    result.ops_abandoned += client->ops_abandoned();
    result.suspicions_raised += client->suspicions_raised();
    DAS_CHECK_MSG(client->in_flight() == 0, "request leaked past drain");
  }
  // Graceful degradation, not silent loss: every generated request is either
  // completed or explicitly accounted as failed, shed (overload rejection)
  // or expired (end-to-end deadline).
  DAS_CHECK_MSG(result.requests_generated ==
                    result.requests_completed + result.requests_failed +
                        result.requests_shed + result.requests_expired,
                "request conservation violated");
  if (!config_.tenants.empty()) {
    const std::size_t tenant_count = config_.tenants.size();
    result.tenants.resize(tenant_count);
    std::uint64_t generated_sum = 0;
    std::uint64_t completed_sum = 0;
    std::uint64_t failed_sum = 0;
    std::uint64_t shed_sum = 0;
    std::uint64_t expired_sum = 0;
    for (std::size_t t = 0; t < tenant_count; ++t) {
      TenantOutcome& outcome = result.tenants[t];
      outcome.name = config_.tenants[t].name;
      outcome.share = config_.tenants[t].share;
      for (const auto& client : clients_) {
        outcome.requests_generated += client->tenant_requests_generated(t);
        outcome.requests_completed += client->tenant_requests_completed(t);
        outcome.requests_failed += client->tenant_requests_failed(t);
        outcome.requests_shed += client->tenant_requests_shed(t);
        outcome.requests_expired += client->tenant_requests_expired(t);
      }
      // The same conservation law must close PER TENANT: a request generated
      // by tenant t settles as tenant t, never as a neighbour.
      DAS_CHECK_MSG(outcome.requests_generated ==
                        outcome.requests_completed + outcome.requests_failed +
                            outcome.requests_shed + outcome.requests_expired,
                    "per-tenant request conservation violated");
      outcome.rct = metrics_.tenant_rct(t).summary();
      outcome.requests_measured = metrics_.tenant_rct(t).moments().count();
      outcome.requests_failed_measured = metrics_.tenant_failed_measured(t);
      outcome.requests_shed_measured = metrics_.tenant_shed_measured(t);
      outcome.requests_expired_measured = metrics_.tenant_expired_measured(t);
      generated_sum += outcome.requests_generated;
      completed_sum += outcome.requests_completed;
      failed_sum += outcome.requests_failed;
      shed_sum += outcome.requests_shed;
      expired_sum += outcome.requests_expired;
    }
    // And the tenant slices must partition the cluster totals exactly.
    DAS_CHECK_MSG(generated_sum == result.requests_generated &&
                      completed_sum == result.requests_completed &&
                      failed_sum == result.requests_failed &&
                      shed_sum == result.requests_shed &&
                      expired_sum == result.requests_expired,
                  "tenant counters do not sum to the cluster totals");
    // Degradation share: each tenant's fraction of the cluster's measured
    // goodput — the number E22 reads to see WHO keeps completing under
    // overload (per-tenant admission floors are about exactly this).
    const std::uint64_t measured_total = metrics_.requests_measured();
    for (TenantOutcome& outcome : result.tenants) {
      outcome.goodput_share =
          measured_total == 0 ? 0.0
                              : static_cast<double>(outcome.requests_measured) /
                                    static_cast<double>(measured_total);
    }
    // Jain fairness over per-tenant mean RCT: 1.0 = all tenants see the same
    // mean, 1/n = one tenant absorbs all the latency. Tenants with no
    // measured requests are excluded; fewer than two leaves J = 1.
    double sum = 0, sum_sq = 0;
    std::size_t n = 0;
    for (const TenantOutcome& outcome : result.tenants) {
      if (outcome.requests_measured == 0) continue;
      const double mean = outcome.rct.mean;
      sum += mean;
      sum_sq += mean * mean;
      ++n;
    }
    result.jain_fairness =
        n >= 2 && sum_sq > 0 ? (sum * sum) / (static_cast<double>(n) * sum_sq)
                             : 1.0;
  }
  double util_sum = 0;
  for (const auto& server : servers_) {
    result.ops_completed += server->ops_completed();
    result.ops_dropped_crashed += server->ops_dropped();
    result.ops_rejected_busy += server->ops_rejected_busy();
    result.ops_shed_sojourn += server->ops_shed_sojourn();
    result.ops_expired_dropped += server->ops_expired();
    result.wasted_service_us += server->wasted_service_us();
    result.server_crashes += server->crashes();
    result.server_recoveries += server->recoveries();
    const double util = server->busy_time_in_window() / window_.measure_us;
    util_sum += util;
    result.max_server_utilization = std::max(result.max_server_utilization, util);
    const sched::MechanismCounters counters =
        server->scheduler().mechanism_counters();
    result.ops_deferred += counters.ops_deferred;
    result.ops_resumed += counters.ops_resumed;
    result.ops_aged += counters.ops_aged;
    result.reranks_applied += counters.reranks_applied;
    if (const store::ServiceTimeProvider* model = server->service_model()) {
      const store::StoreModelStats st = model->stats();
      result.store_flushes += st.flushes;
      result.store_compactions += st.compactions;
      result.store_write_stalls += st.write_stalls;
      result.store_stalled_write_ops += st.stalled_write_ops;
      result.store_memtable_hits += st.memtable_hits;
      result.store_level_reads += st.level_reads;
      result.store_compaction_busy_us += st.compaction_busy_us;
      result.store_write_stall_us += st.write_stall_us;
    }
  }
  result.breakdown = breakdown_.summary();
  if (config_.msg_loss_probability == 0 && config_.retry_timeout_us == 0 &&
      config_.hedge_delay_us == 0 && !config_.fault_plan.loses_work() &&
      !config_.overload.enabled()) {
    // Exact conservation without faults. With retransmission enabled,
    // spurious retries (RTO shorter than a queueing spike) can be served
    // more than once even at zero loss, and the overload layer sheds ops by
    // design, so the request-level check above (every request settled) is
    // the meaningful invariant there.
    DAS_CHECK_MSG(result.ops_generated == result.ops_completed,
                  "operation conservation violated");
  }
  result.mean_server_utilization = util_sum / static_cast<double>(servers_.size());
  result.requests_measured = metrics_.requests_measured();
  result.requests_failed_measured = metrics_.requests_failed_measured();
  result.requests_shed_measured = metrics_.requests_shed_measured();
  result.requests_expired_measured = metrics_.requests_expired_measured();
  const std::uint64_t settled = result.requests_completed +
                                result.requests_failed + result.requests_shed +
                                result.requests_expired;
  result.availability =
      settled == 0 ? 1.0
                   : static_cast<double>(result.requests_completed) /
                         static_cast<double>(settled);
  // Goodput vs throughput over the measure window: goodput counts only
  // completed-in-time requests, throughput every settled one. A protected
  // cluster under overload shows throughput >> goodput on the unprotected
  // baseline flipping to goodput ~= capacity with the excess shed cheaply.
  const double measure_seconds = window_.measure_us / 1e6;
  const std::uint64_t measured_settled =
      result.requests_measured + result.requests_failed_measured +
      result.requests_shed_measured + result.requests_expired_measured;
  result.goodput_rps =
      static_cast<double>(result.requests_measured) / measure_seconds;
  result.throughput_rps =
      static_cast<double>(measured_settled) / measure_seconds;
  result.net_messages = net_->stats().messages_sent;
  result.net_messages_dropped = net_->stats().messages_dropped;
  result.net_messages_dropped_partition =
      net_->stats().messages_dropped_partition;
  result.net_bytes = net_->stats().bytes_sent;
  result.progress_messages = progress_messages_;
  result.sim_duration_us = sim_.now();
  result.timeline = metrics_.timeline();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

}  // namespace das::core
