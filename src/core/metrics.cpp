#include "core/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace das::core {

void Metrics::enable_timeline(Duration bucket_us) {
  DAS_CHECK(bucket_us >= 0);
  timeline_bucket_us_ = bucket_us;
}

void Metrics::enable_tenants(std::size_t count) {
  DAS_CHECK(count >= 1);
  tenant_rct_.assign(count, LatencyRecorder{1e9});
  tenant_failures_measured_.assign(count, 0);
  tenant_shed_measured_.assign(count, 0);
  tenant_expired_measured_.assign(count, 0);
}

void Metrics::record_request(SimTime arrival, SimTime completion, std::size_t fan,
                             std::uint32_t tenant) {
  DAS_CHECK(completion >= arrival);
  if (timeline_bucket_us_ > 0) {
    const auto bucket = static_cast<std::size_t>(completion / timeline_bucket_us_);
    if (bucket >= timeline_buckets_.size()) timeline_buckets_.resize(bucket + 1);
    timeline_buckets_[bucket].add(completion - arrival);
  }
  if (!in_window(arrival)) return;
  rct_.add(completion - arrival);
  fanout_.add(static_cast<double>(fan));
  if (!tenant_rct_.empty()) {
    DAS_CHECK(tenant < tenant_rct_.size());
    tenant_rct_[tenant].add(completion - arrival);
  }
}

void Metrics::record_request_failure(SimTime arrival, SimTime failed_at,
                                     std::uint32_t tenant) {
  DAS_CHECK(failed_at >= arrival);
  if (timeline_bucket_us_ > 0) {
    const auto bucket = static_cast<std::size_t>(failed_at / timeline_bucket_us_);
    if (bucket >= timeline_failed_.size()) timeline_failed_.resize(bucket + 1);
    ++timeline_failed_[bucket];
  }
  if (!in_window(arrival)) return;
  ++failures_measured_;
  if (!tenant_failures_measured_.empty()) {
    DAS_CHECK(tenant < tenant_failures_measured_.size());
    ++tenant_failures_measured_[tenant];
  }
}

void Metrics::record_request_shed(SimTime arrival, SimTime shed_at,
                                  std::uint32_t tenant) {
  DAS_CHECK(shed_at >= arrival);
  if (timeline_bucket_us_ > 0) {
    const auto bucket = static_cast<std::size_t>(shed_at / timeline_bucket_us_);
    if (bucket >= timeline_shed_.size()) timeline_shed_.resize(bucket + 1);
    ++timeline_shed_[bucket];
  }
  if (!in_window(arrival)) return;
  ++shed_measured_;
  if (!tenant_shed_measured_.empty()) {
    DAS_CHECK(tenant < tenant_shed_measured_.size());
    ++tenant_shed_measured_[tenant];
  }
}

void Metrics::record_request_expired(SimTime arrival, SimTime expired_at,
                                     std::uint32_t tenant) {
  DAS_CHECK(expired_at >= arrival);
  if (timeline_bucket_us_ > 0) {
    const auto bucket =
        static_cast<std::size_t>(expired_at / timeline_bucket_us_);
    if (bucket >= timeline_expired_.size()) timeline_expired_.resize(bucket + 1);
    ++timeline_expired_[bucket];
  }
  if (!in_window(arrival)) return;
  ++expired_measured_;
  if (!tenant_expired_measured_.empty()) {
    DAS_CHECK(tenant < tenant_expired_measured_.size());
    ++tenant_expired_measured_[tenant];
  }
}

std::vector<Metrics::TimelinePoint> Metrics::timeline() const {
  std::vector<TimelinePoint> points;
  const std::size_t buckets =
      std::max({timeline_buckets_.size(), timeline_failed_.size(),
                timeline_shed_.size(), timeline_expired_.size()});
  for (std::size_t b = 0; b < buckets; ++b) {
    const LatencyRecorder* rec =
        b < timeline_buckets_.size() ? &timeline_buckets_[b] : nullptr;
    const std::size_t completed = rec != nullptr ? rec->moments().count() : 0;
    const std::size_t failed = b < timeline_failed_.size() ? timeline_failed_[b] : 0;
    const std::size_t shed = b < timeline_shed_.size() ? timeline_shed_[b] : 0;
    const std::size_t expired =
        b < timeline_expired_.size() ? timeline_expired_[b] : 0;
    if (completed == 0 && failed == 0 && shed == 0 && expired == 0) continue;
    TimelinePoint point;
    point.bucket_start = static_cast<double>(b) * timeline_bucket_us_;
    if (completed > 0) {
      point.mean_rct = rec->moments().mean();
      point.p99_rct = rec->histogram().p99();
    }
    point.count = completed;
    point.failed = failed;
    point.shed = shed;
    point.expired = expired;
    points.push_back(point);
  }
  return points;
}

void Metrics::record_operation(SimTime server_arrival, SimTime completion,
                               Duration wait) {
  DAS_CHECK(completion >= server_arrival);
  if (!in_window(server_arrival)) return;
  op_latency_.add(completion - server_arrival);
  op_wait_.add(wait);
}

}  // namespace das::core
