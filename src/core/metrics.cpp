#include "core/metrics.hpp"

#include "common/check.hpp"

namespace das::core {

void Metrics::enable_timeline(Duration bucket_us) {
  DAS_CHECK(bucket_us >= 0);
  timeline_bucket_us_ = bucket_us;
}

void Metrics::record_request(SimTime arrival, SimTime completion, std::size_t fan) {
  DAS_CHECK(completion >= arrival);
  if (timeline_bucket_us_ > 0) {
    const auto bucket = static_cast<std::size_t>(completion / timeline_bucket_us_);
    if (bucket >= timeline_buckets_.size()) timeline_buckets_.resize(bucket + 1);
    timeline_buckets_[bucket].add(completion - arrival);
  }
  if (!in_window(arrival)) return;
  rct_.add(completion - arrival);
  fanout_.add(static_cast<double>(fan));
}

std::vector<Metrics::TimelinePoint> Metrics::timeline() const {
  std::vector<TimelinePoint> points;
  for (std::size_t b = 0; b < timeline_buckets_.size(); ++b) {
    const LatencyRecorder& rec = timeline_buckets_[b];
    if (rec.moments().count() == 0) continue;
    points.emplace_back(static_cast<double>(b) * timeline_bucket_us_,
                        rec.moments().mean(), rec.histogram().p99(),
                        rec.moments().count());
  }
  return points;
}

void Metrics::record_operation(SimTime server_arrival, SimTime completion,
                               Duration wait) {
  DAS_CHECK(completion >= server_arrival);
  if (!in_window(server_arrival)) return;
  op_latency_.add(completion - server_arrival);
  op_wait_.add(wait);
}

}  // namespace das::core
