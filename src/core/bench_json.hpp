// Structured JSON results emitter.
//
// Every bench (and dassim --sweep) can persist its sweep as
// BENCH_<experiment>.json so the perf trajectory is machine-readable instead
// of living only in printed tables. Schema (schema_version 6):
//
//   {
//     "schema_version": 6,
//     "experiment": "E1_load_mean",
//     "points": [
//       {
//         "point": "load=0.7", "policy": "das", "seed": 20260705,
//         "requests_measured": 57344,
//         "mean_rct_us": ..., "p50_us": ..., "p95_us": ..., "p99_us": ...,
//         "p999_us": ..., "max_us": ...,
//         "mean_util": ..., "max_util": ...,
//         "ops_deferred": ..., "ops_resumed": ..., "ops_aged": ...,
//         "reranks_applied": ...,    // mechanism-activation counters
//         "breakdown": {             // exact mean RCT decomposition
//           "requests": ..., "mean_rct_us": ..., "network_us": ...,
//           "runnable_wait_us": ..., "deferred_wait_us": ...,
//           "service_us": ..., "straggler_slack_us": ...
//         },
//         "degradation": {           // fault-layer accounting; all zeros /
//           "availability": ...,     // availability 1.0 for fault-free runs
//           "requests_completed": ..., "requests_failed": ...,
//           "requests_completed_after_failover": ...,
//           "ops_failed_over": ..., "ops_abandoned": ...,
//           "suspicions_raised": ..., "ops_dropped_crashed": ...,
//           "server_crashes": ..., "server_recoveries": ...,
//           "messages_dropped_partition": ...
//         },
//         "overload": {              // overload-layer accounting; all zeros
//           "goodput_rps": ...,      // (and goodput == throughput) with the
//           "throughput_rps": ...,   // layer off
//           "requests_shed": ..., "requests_shed_admission": ...,
//           "requests_expired": ..., "requests_shed_measured": ...,
//           "requests_expired_measured": ..., "ops_rejected_busy": ...,
//           "ops_shed_sojourn": ..., "ops_expired_dropped": ...,
//           "wasted_service_us": ...
//         },
//         "storage": { ... },        // store-model counters (all zero when
//                                    // the synthetic model prices service)
//         "jain_fairness": ...,      // 1.0 for single-tenant runs
//         "tenants": [               // one object per configured tenant;
//           {                        // [] for single-tenant (legacy) runs
//             "name": "t0", "share": 1.0,
//             "requests_generated": ..., "requests_completed": ...,
//             "requests_failed": ..., "requests_measured": ...,
//             "requests_failed_measured": ...,
//             "requests_shed": ..., "requests_expired": ...,
//             "requests_shed_measured": ..., "requests_expired_measured": ...,
//             "mean_rct_us": ..., "p50_us": ..., "p95_us": ...,
//             "p99_us": ..., "p999_us": ..., "max_us": ...,
//             "goodput_share": ...
//           }, ...
//         ],
//         "gain_vs_fcfs_pct": ...,   // null when the point has no FCFS row
//         "wall_seconds": ...        // NOT deterministic; everything else is
//       }, ...
//     ]
//   }
//
// schema_version history: 6 added the always-present "overload" object
// (goodput/throughput, shed/expired accounting) and the per-tenant
// shed/expired/goodput_share fields; 5 added "jain_fairness" and the
// per-tenant "tenants" array (workload registry / multi-tenancy); 4 added the
// always-present "storage" object (store-model counters); 3 added the
// per-point "degradation" object (fault plans, failover and
// graceful-degradation accounting); 2 added the mechanism counters and the
// per-point "breakdown" object (PR 3); 1 was the initial shape. (The perf
// emitter below stays at schema_version 2 — its shape did not change.)
//
// Points appear in registration order; all fields except wall_seconds are
// bit-reproducible for a fixed seed, so diffs of two emissions reveal real
// behaviour changes. The writer is dependency-free and always emits valid
// JSON (doubles are printed with round-trip precision; non-finite values,
// which JSON cannot represent, become null).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace das::core {

/// Renders the rows of one experiment as a JSON document (trailing newline
/// included). Rows whose experiment label differs are skipped, so a mixed
/// outcome list can be split into one file per experiment.
void render_bench_json(std::ostream& os, const std::string& experiment,
                       const std::vector<SweepOutcome>& rows);

/// render_bench_json to a string.
std::string bench_json_string(const std::string& experiment,
                              const std::vector<SweepOutcome>& rows);

/// Writes BENCH_<experiment>.json-style output to `path` (DAS_CHECK on I/O
/// failure).
void write_bench_json(const std::string& path, const std::string& experiment,
                      const std::vector<SweepOutcome>& rows);

/// One throughput measurement of the perf bench (BENCH_PERF.json). `events`
/// and `sim_time_us` are deterministic for a fixed seed; the wall-clock
/// fields are what the perf trajectory tracks.
struct PerfPoint {
  std::string point;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double sim_time_us = 0;
};

/// Renders perf points as a BENCH_PERF.json document (schema_version 2, same
/// envelope as render_bench_json: {schema_version, experiment, points}).
void render_perf_json(std::ostream& os, const std::string& experiment,
                      const std::vector<PerfPoint>& points);

/// render_perf_json to a string.
std::string perf_json_string(const std::string& experiment,
                             const std::vector<PerfPoint>& points);

/// Writes BENCH_PERF.json-style output to `path` (DAS_CHECK on I/O failure).
void write_perf_json(const std::string& path, const std::string& experiment,
                     const std::vector<PerfPoint>& points);

}  // namespace das::core
