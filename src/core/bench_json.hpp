// Structured JSON results emitter.
//
// Every bench (and dassim --sweep) can persist its sweep as
// BENCH_<experiment>.json so the perf trajectory is machine-readable instead
// of living only in printed tables. Schema (schema_version 2):
//
//   {
//     "schema_version": 2,
//     "experiment": "E1_load_mean",
//     "points": [
//       {
//         "point": "load=0.7", "policy": "das", "seed": 20260705,
//         "requests_measured": 57344,
//         "mean_rct_us": ..., "p50_us": ..., "p95_us": ..., "p99_us": ...,
//         "p999_us": ..., "max_us": ...,
//         "mean_util": ..., "max_util": ...,
//         "ops_deferred": ..., "ops_resumed": ..., "ops_aged": ...,
//         "reranks_applied": ...,    // mechanism-activation counters
//         "breakdown": {             // exact mean RCT decomposition
//           "requests": ..., "mean_rct_us": ..., "network_us": ...,
//           "runnable_wait_us": ..., "deferred_wait_us": ...,
//           "service_us": ..., "straggler_slack_us": ...
//         },
//         "gain_vs_fcfs_pct": ...,   // null when the point has no FCFS row
//         "wall_seconds": ...        // NOT deterministic; everything else is
//       }, ...
//     ]
//   }
//
// schema_version history: 2 added the mechanism counters and the per-point
// "breakdown" object (PR 3); 1 was the initial shape.
//
// Points appear in registration order; all fields except wall_seconds are
// bit-reproducible for a fixed seed, so diffs of two emissions reveal real
// behaviour changes. The writer is dependency-free and always emits valid
// JSON (doubles are printed with round-trip precision; non-finite values,
// which JSON cannot represent, become null).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace das::core {

/// Renders the rows of one experiment as a JSON document (trailing newline
/// included). Rows whose experiment label differs are skipped, so a mixed
/// outcome list can be split into one file per experiment.
void render_bench_json(std::ostream& os, const std::string& experiment,
                       const std::vector<SweepOutcome>& rows);

/// render_bench_json to a string.
std::string bench_json_string(const std::string& experiment,
                              const std::vector<SweepOutcome>& rows);

/// Writes BENCH_<experiment>.json-style output to `path` (DAS_CHECK on I/O
/// failure).
void write_bench_json(const std::string& path, const std::string& experiment,
                      const std::vector<SweepOutcome>& rows);

}  // namespace das::core
