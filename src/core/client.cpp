#include "core/client.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"

namespace das::core {

Client::Client(sim::Simulator& sim, Params params, Rng rng,
               const workload::MultigetGenerator& generator,
               workload::ArrivalPtr arrivals, const store::Partitioner& partitioner,
               std::vector<Bytes>& key_sizes, Metrics& metrics, SendOp send_op,
               SendProgress send_progress)
    : sim_(sim),
      params_(params),
      rng_(rng),
      generator_(generator),
      arrivals_(std::move(arrivals)),
      partitioner_(partitioner),
      key_sizes_(key_sizes),
      metrics_(metrics),
      send_op_(std::move(send_op)),
      send_progress_(std::move(send_progress)),
      // Fork the jitter stream off a COPY so the workload stream of rng_ is
      // untouched: runs without retries stay bit-identical to older builds.
      // Seeded in the init list — retry_rng_ is never default-constructed
      // (das-rng-discipline).
      retry_rng_(Rng{rng_}.fork(0xBAC0FFull + params_.id)) {
  DAS_CHECK(params_.num_servers >= 1);
  DAS_CHECK(arrivals_ != nullptr);
  DAS_CHECK(send_op_ != nullptr);
  DAS_CHECK(send_progress_ != nullptr);
  DAS_CHECK(params_.ewma_alpha > 0 && params_.ewma_alpha <= 1);
  d_est_.assign(params_.num_servers, 0.0);
  mu_est_.assign(params_.num_servers, 1.0);
  selector_ = select::make_selector(params_.replica_selection);
  rto_strikes_.assign(params_.num_servers, 0);
  suspected_.assign(params_.num_servers, 0);
}

void Client::start(SimTime horizon) { schedule_next_arrival(horizon); }

void Client::schedule_next_arrival(SimTime horizon) {
  const SimTime next = arrivals_->next_arrival_after(sim_.now(), rng_);
  if (next >= horizon) return;
  sim_.schedule_at(next, [this, horizon] {
    generate_request();
    schedule_next_arrival(horizon);
  });
}

double Client::op_demand_us(KeyId key) const {
  DAS_CHECK(key < key_sizes_.size());
  return params_.per_op_overhead_us +
         static_cast<double>(key_sizes_[key]) / params_.service_bytes_per_us;
}

double Client::service_estimate_us(ServerId server, double demand) const {
  const double mu = params_.adaptive ? mu_est_[server] : 1.0;
  return demand / mu;
}

SimTime Client::full_estimate(SimTime now, ServerId server, double demand) const {
  const double d = params_.adaptive ? d_est_[server] : 0.0;
  return now + params_.est_rtt_us + d + service_estimate_us(server, demand);
}

select::LearnedView Client::learned_view() const {
  select::LearnedView view;
  view.d_est = &d_est_;
  view.mu_est = &mu_est_;
  view.suspected = &suspected_;
  view.est_rtt_us = params_.est_rtt_us;
  view.adaptive = params_.adaptive;
  return view;
}

ServerId Client::pick_server(KeyId key, double demand) {
  if (params_.replication <= 1) return partitioner_.server_for(key);
  const std::vector<ServerId> replicas =
      partitioner_.replicas_for(key, params_.replication);
  // The selector draws (if it draws at all) from the client's own workload
  // stream — exactly the pre-layer behaviour, so legacy modes stay
  // bit-identical (pinned by GoldenResults.PinnedSelectionGridIsBitExact).
  return selector_->pick(replicas, learned_view(),
                         {demand, key, sim_.now()}, rng_);
}

void Client::generate_request() {
  const SimTime now = sim_.now();

  // Plan the request's operations: either a multiget fan-out (one GET per
  // distinct key at its chosen replica) or a single-key write-all PUT (one
  // op per replica of the key).
  struct PlannedOp {
    KeyId key = 0;
    ServerId server = 0;
    double demand = 0;
    bool is_write = false;
    Bytes write_size = 0;
  };
  std::vector<PlannedOp> plan;
  const bool is_write =
      params_.write_fraction > 0 && rng_.chance(params_.write_fraction);
  if (is_write) {
    const KeyId key = generator_.sample_key(rng_);
    const Bytes new_size =
        params_.write_size_bytes
            ? static_cast<Bytes>(
                  std::max(1.0, std::round(params_.write_size_bytes->sample(rng_))))
            : key_sizes_[key];
    // The writer knows the size it is writing; publish it to the shared
    // catalogue so demand estimates track the store's contents.
    key_sizes_[key] = new_size;
    const double demand =
        params_.per_op_overhead_us +
        static_cast<double>(new_size) / params_.service_bytes_per_us;
    for (const ServerId server :
         partitioner_.replicas_for(key, std::max<std::size_t>(params_.replication, 1))) {
      plan.emplace_back(key, server, demand, true, new_size);
    }
  } else {
    const workload::MultigetSpec spec = generator_.generate(rng_);
    DAS_CHECK(!spec.keys.empty());
    plan.reserve(spec.keys.size());
    for (const KeyId key : spec.keys) {
      const double demand = op_demand_us(key);
      plan.emplace_back(key, pick_server(key, demand), demand, false, 0);
    }
  }

  const RequestId rid =
      (static_cast<RequestId>(params_.id) << 48) | next_request_seq_++;

  PendingRequest pending;
  pending.arrival = now;
  pending.ops.reserve(plan.size());

  // Per-server aggregates: (op count, demand sum) for the Rein bottleneck
  // tags, plus the per-server max full-completion estimate for the DAS
  // deferral bounds.
  struct ServerAgg {
    std::uint32_t ops = 0;
    double demand = 0;
    SimTime max_full_estimate = 0;
  };
  // FlatMap, not unordered_map: only max/sum aggregation below, so iteration
  // order cannot leak into results — but FlatMap's order is at least
  // deterministic across standard libraries.
  FlatMap<ServerId, ServerAgg> per_server;
  double total_demand = 0;
  double critical_us = 0;
  for (const PlannedOp& planned : plan) {
    auto& agg = per_server[planned.server];
    ++agg.ops;
    agg.demand += planned.demand;
    agg.max_full_estimate = std::max(
        agg.max_full_estimate, full_estimate(now, planned.server, planned.demand));
    total_demand += planned.demand;
    critical_us =
        std::max(critical_us, service_estimate_us(planned.server, planned.demand));

    PendingOp op;
    op.op_id = (static_cast<OperationId>(params_.id) << 48) | next_op_seq_++;
    op.server = planned.server;
    op.key = planned.key;
    op.demand_us = planned.demand;
    op.sent_ctx.is_write = planned.is_write;
    op.sent_ctx.write_size = planned.write_size;
    pending.ops.push_back(op);
  }
  std::uint32_t bottleneck_ops = 0;
  double bottleneck_demand = 0;
  for (const auto& [server, agg] : per_server) {
    bottleneck_ops = std::max(bottleneck_ops, agg.ops);
    bottleneck_demand = std::max(bottleneck_demand, agg.demand);
  }

  pending.remaining = pending.ops.size();
  pending.last_sent_critical = critical_us;
  pending.last_sent_total = total_demand;

  if (tracer_ != nullptr) {
    tracer_->request_arrival(now, rid, params_.id, pending.ops.size());
  }

  for (PendingOp& op : pending.ops) {
    // Deferral bound: the latest completion estimate among siblings on
    // servers other than this op's.
    SimTime est_other = 0;
    for (const auto& [server, agg] : per_server) {
      if (server == op.server) continue;
      est_other = std::max(est_other, agg.max_full_estimate);
    }

    sched::OpContext ctx;
    ctx.op_id = op.op_id;
    ctx.request_id = rid;
    ctx.client = params_.id;
    ctx.key = op.key;
    ctx.demand_us = op.demand_us;
    ctx.request_arrival = now;
    ctx.remaining_critical_us = critical_us;
    ctx.est_other_completion = est_other;
    ctx.bottleneck_ops = bottleneck_ops;
    ctx.bottleneck_demand_us = bottleneck_demand;
    ctx.total_demand_us = total_demand;
    ctx.deadline = now + params_.edf_slo_us;
    ctx.is_write = op.sent_ctx.is_write;
    ctx.write_size = op.sent_ctx.write_size;
    op_to_request_.emplace(op.op_id, rid);
    op.sent_ctx = ctx;
    send_op_(op.server, ctx);
    ++ops_generated_;
    if (tracer_ != nullptr) {
      tracer_->op_send(now, op.op_id, rid, params_.id, op.server, op.demand_us,
                       /*resend=*/false);
    }
  }
  auto [it, inserted] = pending_.emplace(rid, std::move(pending));
  DAS_CHECK(inserted);
  for (PendingOp& op : it->second.ops) {
    if (params_.retry_timeout_us > 0) arm_retry(rid, op);
    // Writes already fan out to every replica; hedging applies to reads.
    if (params_.hedge_delay_us > 0 && params_.replication >= 2 &&
        !op.sent_ctx.is_write) {
      arm_hedge(rid, op);
    }
  }
  ++requests_generated_;
}

void Client::arm_hedge(RequestId rid, PendingOp& op) {
  const OperationId op_id = op.op_id;
  op.hedge_timer = sim_.schedule_after(params_.hedge_delay_us, [this, rid, op_id] {
    const auto req_it = pending_.find(rid);
    if (req_it == pending_.end()) return;
    auto& ops = req_it->second.ops;
    const auto it = std::find_if(ops.begin(), ops.end(), [&](const PendingOp& o) {
      return o.op_id == op_id;
    });
    if (it == ops.end() || it->done || it->hedged) return;
    // Pick the best OTHER replica under the current learned view. Hedging to
    // a suspected replica only doubles the load on a host that is not
    // answering, so pick_alternate skips suspects.
    const auto replicas = partitioner_.replicas_for(it->key, params_.replication);
    const ServerId alternate = selector_->pick_alternate(
        replicas, learned_view(), {it->demand_us, it->key, sim_.now()},
        it->server);
    if (alternate == kInvalidServer) return;  // no distinct live replica
    it->hedged = true;
    ++ops_hedged_;
    send_op_(alternate, it->sent_ctx);
    if (tracer_ != nullptr) {
      tracer_->op_send(sim_.now(), op_id, rid, params_.id, alternate,
                       it->demand_us, /*resend=*/true);
    }
  });
}

void Client::arm_retry(RequestId rid, PendingOp& op) {
  // Exponential backoff: timeout doubles with each attempt, bounded by the
  // configured cap, with ±20% jitter so clients whose ops died in the same
  // loss burst (or crash) do not retransmit in lockstep.
  Duration timeout =
      params_.retry_timeout_us * static_cast<double>(1u << std::min(op.attempts - 1,
                                                                    10u));
  if (params_.retry_backoff_max_us > 0) {
    timeout = std::min(timeout, params_.retry_backoff_max_us);
  }
  timeout *= retry_rng_.uniform(0.8, 1.2);
  const OperationId op_id = op.op_id;
  op.retry_timer = sim_.schedule_after(timeout, [this, rid, op_id] {
    const auto req_it = pending_.find(rid);
    if (req_it == pending_.end()) return;
    auto& ops = req_it->second.ops;
    const auto it = std::find_if(ops.begin(), ops.end(), [&](const PendingOp& o) {
      return o.op_id == op_id;
    });
    if (it == ops.end() || it->done) return;
    // Failure detection: one more consecutive unanswered timeout against
    // this server.
    note_rto(it->server);
    if (params_.retry_max_attempts > 0 &&
        it->attempts >= params_.retry_max_attempts) {
      abandon_op(rid, *it);
      return;
    }
    ++it->attempts;
    ++ops_retransmitted_;
    maybe_fail_over(req_it->second, *it);
    send_op_(it->server, it->sent_ctx);
    if (tracer_ != nullptr) {
      tracer_->op_send(sim_.now(), op_id, rid, params_.id, it->server,
                       it->demand_us, /*resend=*/true);
    }
    arm_retry(rid, *it);
  });
}

void Client::note_rto(ServerId server) {
  if (params_.suspicion_rto_threshold == 0) return;
  ++rto_strikes_[server];
  if (suspected_[server] == 0 &&
      rto_strikes_[server] >= params_.suspicion_rto_threshold) {
    suspected_[server] = 1;
    ++suspicions_raised_;
  }
}

void Client::maybe_fail_over(PendingRequest& req, PendingOp& op) {
  // Writes are fanned out to every replica already — a write retry must keep
  // hammering its own replica. Reads can move.
  if (params_.replication < 2 || op.sent_ctx.is_write) return;
  if (suspected_[op.server] == 0) return;
  const auto replicas = partitioner_.replicas_for(op.key, params_.replication);
  const ServerId best = selector_->pick_alternate(
      replicas, learned_view(), {op.demand_us, op.key, sim_.now()}, op.server);
  if (best == kInvalidServer) return;  // every replica suspected: keep trying
  op.server = best;
  ++ops_failed_over_;
  req.failed_over = true;
}

void Client::abandon_op(RequestId rid, PendingOp& op) {
  // The retry budget is spent: declare the op failed so the request leaves
  // the books as FAILED rather than hanging in flight forever. A straggler
  // response arriving later is discarded as a duplicate.
  op.done = true;
  sim_.cancel(op.hedge_timer);
  op_to_request_.erase(op.op_id);
  ++ops_abandoned_;
  const auto req_it = pending_.find(rid);
  DAS_CHECK(req_it != pending_.end());
  PendingRequest& req = req_it->second;
  ++req.failed_ops;
  DAS_CHECK(req.remaining > 0);
  --req.remaining;
  if (req.remaining == 0) {
    const SimTime now = sim_.now();
    metrics_.record_request_failure(req.arrival, now);
    if (tracer_ != nullptr) {
      tracer_->request_complete(now, rid, params_.id, now - req.arrival);
    }
    pending_.erase(req_it);
    ++requests_failed_;
  }
}

void Client::on_response(const OpResponse& resp) {
  const SimTime now = sim_.now();

  // Any response — including a duplicate — clears the server's failure
  // suspicion: the streak of consecutive unanswered timeouts is broken.
  rto_strikes_[resp.server] = 0;
  suspected_[resp.server] = 0;

  const auto op_it = op_to_request_.find(resp.op_id);
  if (op_it == op_to_request_.end()) {
    // With retransmission or hedging enabled, a second copy of a served op
    // yields a duplicate response; discard it. Otherwise it is a protocol
    // bug. The duplicate stays a pure liveness signal: the EWMA update below
    // must NOT run, or each redundant answer double-applies the same
    // piggyback and skews the learned view.
    DAS_CHECK_MSG(params_.retry_timeout_us > 0 || params_.hedge_delay_us > 0,
                  "response for unknown op");
    ++duplicate_responses_;
    return;
  }
  if (params_.adaptive) {
    d_est_[resp.server] +=
        params_.ewma_alpha * (resp.d_hat_us - d_est_[resp.server]);
    mu_est_[resp.server] +=
        params_.ewma_alpha * (resp.mu_hat - mu_est_[resp.server]);
  }
  const RequestId rid = op_it->second;
  op_to_request_.erase(op_it);

  const auto req_it = pending_.find(rid);
  DAS_CHECK_MSG(req_it != pending_.end(), "response for completed request");
  PendingRequest& req = req_it->second;

  const auto pop = std::find_if(req.ops.begin(), req.ops.end(),
                                [&](const PendingOp& op) { return op.op_id == resp.op_id; });
  DAS_CHECK(pop != req.ops.end());
  DAS_CHECK_MSG(!pop->done, "duplicate response");
  pop->done = true;
  pop->delivered_at = now;
  pop->timing = resp.timing;
  sim_.cancel(pop->retry_timer);
  sim_.cancel(pop->hedge_timer);
  DAS_CHECK(req.remaining > 0);
  --req.remaining;
  if (tracer_ != nullptr) {
    tracer_->response(now, resp.op_id, rid, params_.id, resp.server);
  }

  if (req.remaining == 0) {
    if (req.failed_ops > 0) {
      // A sibling op was abandoned earlier: the request is failed as a
      // whole even though this last op did get served. Its latency must not
      // enter the RCT population.
      metrics_.record_request_failure(req.arrival, now);
      if (tracer_ != nullptr) {
        tracer_->request_complete(now, rid, params_.id, now - req.arrival);
      }
      pending_.erase(req_it);
      ++requests_failed_;
      return;
    }
    metrics_.record_request(req.arrival, now, req.ops.size());
    if (req.failed_over) ++requests_completed_failover_;
    if (tracer_ != nullptr) {
      tracer_->request_complete(now, rid, params_.id, now - req.arrival);
    }
    // The critical op is the one whose response completed the request; its
    // siblings' idle tails since delivery form the straggler slack.
    if (breakdown_ != nullptr && pop->timing.valid) {
      double slack_sum = 0;
      for (const PendingOp& op : req.ops) {
        if (op.op_id == pop->op_id) continue;
        slack_sum += now - op.delivered_at;
      }
      breakdown_->record(trace::make_request_breakdown(
          req.arrival, now, pop->timing, slack_sum, req.ops.size()));
    }
    pending_.erase(req_it);
    ++requests_completed_;
    return;
  }

  if (!params_.progress_updates) return;

  // Recompute the scheduling estimates from the surviving ops under the
  // *current* per-server view and propagate when the critical path moved
  // enough to change scheduling decisions.
  double new_critical = 0;
  double remaining_demand = 0;
  // Iteration order below decides the order progress updates hit the
  // network (event sequence numbers!), so this must NOT be an unordered
  // container: libstdc++ and libc++ would send in different orders and
  // produce different results. First-touch order — the order ops appear in
  // the request — is deterministic everywhere. A request touches few
  // distinct servers (fan-out mean 8), so the linear scan is cheap.
  std::vector<std::pair<ServerId, SimTime>> server_max_full;
  for (const PendingOp& op : req.ops) {
    if (op.done) continue;
    remaining_demand += op.demand_us;
    new_critical =
        std::max(new_critical, service_estimate_us(op.server, op.demand_us));
    const auto slot = std::find_if(
        server_max_full.begin(), server_max_full.end(),
        [&](const auto& entry) { return entry.first == op.server; });
    const SimTime est = full_estimate(now, op.server, op.demand_us);
    if (slot == server_max_full.end()) {
      server_max_full.emplace_back(op.server, est);
    } else {
      slot->second = std::max(slot->second, est);
    }
  }
  // Send when either the critical path (DAS's key) or the total remaining
  // (ReqSRPT's key) moved by more than the threshold, relative to its last
  // sent value.
  const bool critical_moved =
      std::abs(new_critical - req.last_sent_critical) >=
      params_.progress_threshold * std::max(req.last_sent_critical, 1.0);
  const bool total_moved =
      std::abs(remaining_demand - req.last_sent_total) >=
      params_.progress_threshold * std::max(req.last_sent_total, 1.0);
  if (!critical_moved && !total_moved) return;
  req.last_sent_critical = new_critical;
  req.last_sent_total = remaining_demand;
  // One update per distinct server still holding pending ops; the deferral
  // bound is per destination (max full estimate over the OTHER servers).
  for (const auto& [server, unused] : server_max_full) {
    (void)unused;
    SimTime est_other = 0;
    for (const auto& [other, est] : server_max_full) {
      if (other == server) continue;
      est_other = std::max(est_other, est);
    }
    sched::ProgressUpdate update;
    update.remaining_critical_us = new_critical;
    update.est_other_completion = est_other;
    update.remaining_total_us = remaining_demand;
    send_progress_(server, rid, update);
    ++progress_sent_;
  }
}

}  // namespace das::core
