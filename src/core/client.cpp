#include "core/client.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"

namespace das::core {

namespace {

std::vector<Client::TenantStream> single_stream(
    const workload::MultigetGenerator& generator, workload::ArrivalPtr arrivals) {
  std::vector<Client::TenantStream> tenants(1);
  tenants[0].generator = &generator;
  tenants[0].arrivals = std::move(arrivals);
  return tenants;
}

}  // namespace

Client::Client(sim::Simulator& sim, Params params, Rng rng,
               std::vector<TenantStream> tenants,
               const store::Partitioner& partitioner,
               std::vector<Bytes>& key_sizes, Metrics& metrics, SendOp send_op,
               SendProgress send_progress)
    : sim_(sim),
      params_(params),
      rng_(rng),
      tenants_(std::move(tenants)),
      partitioner_(partitioner),
      key_sizes_(key_sizes),
      metrics_(metrics),
      send_op_(std::move(send_op)),
      send_progress_(std::move(send_progress)),
      // Fork the jitter stream off a COPY so the workload stream of rng_ is
      // untouched: runs without retries stay bit-identical to older builds.
      // Seeded in the init list — retry_rng_ is never default-constructed
      // (das-rng-discipline).
      retry_rng_(Rng{rng_}.fork(0xBAC0FFull + params_.id)),
      // Admission coin flips get their own stream for the same reason: a run
      // with admission off draws nothing from it and stays bit-identical.
      admission_rng_(Rng{rng_}.fork(0xADC0DEull + params_.id)) {
  DAS_CHECK(params_.num_servers >= 1);
  DAS_CHECK(params_.num_clients >= 1);
  DAS_CHECK(!tenants_.empty());
  for (const TenantStream& tenant : tenants_) {
    if (tenant.replay != nullptr) {
      DAS_CHECK_MSG(tenant.generator == nullptr && tenant.arrivals == nullptr,
                    "a replay tenant takes its stream from the trace");
    } else {
      DAS_CHECK(tenant.generator != nullptr);
      DAS_CHECK(tenant.arrivals != nullptr);
    }
  }
  DAS_CHECK(send_op_ != nullptr);
  DAS_CHECK(send_progress_ != nullptr);
  DAS_CHECK(params_.ewma_alpha > 0 && params_.ewma_alpha <= 1);
  // Tenants past the first get their own workload streams, forked off COPIES
  // so neither rng_ nor the single-tenant draw sequence is perturbed.
  extra_tenant_rngs_.reserve(tenants_.size() - 1);
  for (std::size_t t = 1; t < tenants_.size(); ++t) {
    extra_tenant_rngs_.push_back(
        Rng{rng_}.fork(0x7E4A0000ull + t * 0x10001ull + params_.id));
  }
  tenant_generated_.assign(tenants_.size(), 0);
  tenant_completed_.assign(tenants_.size(), 0);
  tenant_failed_.assign(tenants_.size(), 0);
  tenant_shed_.assign(tenants_.size(), 0);
  tenant_expired_.assign(tenants_.size(), 0);
  if (params_.overload.admission) {
    admission_ = std::make_unique<overload::AdmissionController>(
        tenants_.size(),
        overload::AdmissionController::Params{params_.overload.admission_floor,
                                              params_.overload.admission_increase,
                                              params_.overload.admission_decrease});
  }
  d_est_.assign(params_.num_servers, 0.0);
  mu_est_.assign(params_.num_servers, 1.0);
  selector_ = select::make_selector(params_.replica_selection);
  rto_strikes_.assign(params_.num_servers, 0);
  suspected_.assign(params_.num_servers, 0);
}

Client::Client(sim::Simulator& sim, Params params, Rng rng,
               const workload::MultigetGenerator& generator,
               workload::ArrivalPtr arrivals, const store::Partitioner& partitioner,
               std::vector<Bytes>& key_sizes, Metrics& metrics, SendOp send_op,
               SendProgress send_progress)
    : Client(sim, params, rng, single_stream(generator, std::move(arrivals)),
             partitioner, key_sizes, metrics, std::move(send_op),
             std::move(send_progress)) {}

void Client::start(SimTime horizon) {
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    if (tenants_[t].replay != nullptr) {
      schedule_replay(t, params_.id % params_.num_clients, horizon);
    } else {
      schedule_next_arrival(t, horizon);
    }
  }
}

void Client::schedule_next_arrival(std::size_t tenant, SimTime horizon) {
  const SimTime next =
      tenants_[tenant].arrivals->next_arrival_after(sim_.now(), tenant_rng(tenant));
  if (next >= horizon) return;
  sim_.schedule_at(next, [this, tenant, horizon] {
    generate_request(tenant);
    schedule_next_arrival(tenant, horizon);
  });
}

void Client::schedule_replay(std::size_t tenant, std::size_t index,
                             SimTime horizon) {
  const auto& records = tenants_[tenant].replay->records;
  if (index >= records.size()) return;
  const workload::ReplayRecord& rec = records[index];
  if (rec.timestamp_us >= horizon) return;
  // Chain-schedule one record at a time (like the synthetic arrival chain)
  // so the event heap holds one pending arrival per stream, not the file.
  sim_.schedule_at(rec.timestamp_us, [this, tenant, index, horizon] {
    generate_replay_request(tenant, index);
    schedule_replay(tenant, index + params_.num_clients, horizon);
  });
}

double Client::op_demand_us(KeyId key) const {
  DAS_CHECK(key < key_sizes_.size());
  return params_.per_op_overhead_us +
         static_cast<double>(key_sizes_[key]) / params_.service_bytes_per_us;
}

double Client::service_estimate_us(ServerId server, double demand) const {
  const double mu = params_.adaptive ? mu_est_[server] : 1.0;
  return demand / mu;
}

SimTime Client::full_estimate(SimTime now, ServerId server, double demand) const {
  const double d = params_.adaptive ? d_est_[server] : 0.0;
  return now + params_.est_rtt_us + d + service_estimate_us(server, demand);
}

select::LearnedView Client::learned_view() const {
  select::LearnedView view;
  view.d_est = &d_est_;
  view.mu_est = &mu_est_;
  view.suspected = &suspected_;
  view.est_rtt_us = params_.est_rtt_us;
  view.adaptive = params_.adaptive;
  return view;
}

ServerId Client::pick_server(KeyId key, double demand) {
  if (params_.replication <= 1) return partitioner_.server_for(key);
  const std::vector<ServerId> replicas =
      partitioner_.replicas_for(key, params_.replication);
  // The selector draws (if it draws at all) from the client's own workload
  // stream — exactly the pre-layer behaviour, so legacy modes stay
  // bit-identical (pinned by GoldenResults.PinnedSelectionGridIsBitExact).
  return selector_->pick(replicas, learned_view(),
                         {demand, key, sim_.now()}, rng_);
}

void Client::generate_request(std::size_t tenant) {
  const SimTime now = sim_.now();
  const TenantStream& stream = tenants_[tenant];
  Rng& rng = tenant_rng(tenant);

  // Plan the request's operations: a multiget fan-out (one GET per distinct
  // key at its chosen replica), a single-key write-all PUT (one op per
  // replica), or a read-modify-write (write-all whose per-replica demand
  // covers reading the old value plus writing the new one).
  std::vector<PlannedOp> plan;
  bool is_write = false;
  bool is_rmw = false;
  if (stream.has_mix) {
    const workload::OpKind kind = stream.mix.sample(rng);
    is_write = kind != workload::OpKind::kRead;
    is_rmw = kind == workload::OpKind::kRmw;
  } else {
    // Legacy draw order: the Bernoulli is only consumed when write_fraction
    // is set, keeping read-only runs bit-identical to pre-mix builds.
    is_write = params_.write_fraction > 0 && rng.chance(params_.write_fraction);
  }
  if (is_write) {
    const KeyId key = stream.generator->sample_key(rng, now);
    const Bytes old_size = key_sizes_[key];
    const RealDistPtr& write_dist =
        stream.write_size_bytes ? stream.write_size_bytes : params_.write_size_bytes;
    const Bytes new_size =
        write_dist ? static_cast<Bytes>(
                         std::max(1.0, std::round(write_dist->sample(rng))))
                   : old_size;
    // The writer knows the size it is writing; publish it to the shared
    // catalogue so demand estimates track the store's contents.
    key_sizes_[key] = new_size;
    const double demand =
        is_rmw ? 2.0 * params_.per_op_overhead_us +
                     static_cast<double>(old_size + new_size) /
                         params_.service_bytes_per_us
               : params_.per_op_overhead_us +
                     static_cast<double>(new_size) / params_.service_bytes_per_us;
    if (recorder_ != nullptr) {
      recorder_->records.push_back(
          {now, workload::ReplayOp::kWrite, key, new_size});
    }
    for (const ServerId server :
         partitioner_.replicas_for(key, std::max<std::size_t>(params_.replication, 1))) {
      plan.emplace_back(key, server, demand, true, new_size);
    }
  } else {
    const workload::MultigetSpec spec = stream.generator->generate(rng, now);
    DAS_CHECK(!spec.keys.empty());
    plan.reserve(spec.keys.size());
    for (const KeyId key : spec.keys) {
      const double demand = op_demand_us(key);
      if (recorder_ != nullptr) {
        recorder_->records.push_back(
            {now, workload::ReplayOp::kRead, key, key_sizes_[key]});
      }
      plan.emplace_back(key, pick_server(key, demand), demand, false, 0);
    }
  }
  dispatch_plan(tenant, plan);
}

void Client::generate_replay_request(std::size_t tenant, std::size_t index) {
  const SimTime now = sim_.now();
  const workload::ReplayRecord& rec = tenants_[tenant].replay->records[index];
  DAS_CHECK_MSG(rec.key < key_sizes_.size(),
                "replay record references a key outside the keyspace");
  std::vector<PlannedOp> plan;
  if (rec.op == workload::ReplayOp::kWrite) {
    const Bytes new_size = rec.size_bytes > 0 ? rec.size_bytes : key_sizes_[rec.key];
    key_sizes_[rec.key] = new_size;
    const double demand =
        params_.per_op_overhead_us +
        static_cast<double>(new_size) / params_.service_bytes_per_us;
    if (recorder_ != nullptr) {
      recorder_->records.push_back(
          {now, workload::ReplayOp::kWrite, rec.key, new_size});
    }
    for (const ServerId server : partitioner_.replicas_for(
             rec.key, std::max<std::size_t>(params_.replication, 1))) {
      plan.emplace_back(rec.key, server, demand, true, new_size);
    }
  } else {
    // The trace's size is authoritative for the key's catalogued size: the
    // replayed store serves what the traced store served.
    if (rec.size_bytes > 0) key_sizes_[rec.key] = rec.size_bytes;
    const double demand = op_demand_us(rec.key);
    if (recorder_ != nullptr) {
      recorder_->records.push_back(
          {now, workload::ReplayOp::kRead, rec.key, key_sizes_[rec.key]});
    }
    plan.emplace_back(rec.key, pick_server(rec.key, demand), demand, false, 0);
  }
  dispatch_plan(tenant, plan);
}

void Client::dispatch_plan(std::size_t tenant, const std::vector<PlannedOp>& plan) {
  const SimTime now = sim_.now();
  const RequestId rid =
      (static_cast<RequestId>(params_.id) << 48) | next_request_seq_++;

  // Admission gate, AFTER the plan is built: the tenant's workload stream
  // draws identically whether or not the request is admitted, so throttling
  // never desynchronises the generated traffic across configs.
  if (admission_ != nullptr && !admission_->admit(tenant, admission_rng_)) {
    metrics_.record_request_shed(now, now, static_cast<std::uint32_t>(tenant));
    if (tracer_ != nullptr) {
      tracer_->request_shed(now, rid, params_.id, /*age_us=*/0.0,
                            /*at_admission=*/true);
    }
    ++requests_shed_;
    ++requests_shed_admission_;
    ++tenant_shed_[tenant];
    ++requests_generated_;
    ++tenant_generated_[tenant];
    return;
  }

  PendingRequest pending;
  pending.arrival = now;
  pending.tenant = static_cast<std::uint32_t>(tenant);
  if (params_.overload.deadlines()) {
    pending.expiry = now + params_.overload.deadline_budget_us;
  }
  const SimTime expiry = pending.expiry;
  pending.ops.reserve(plan.size());

  // Per-server aggregates: (op count, demand sum) for the Rein bottleneck
  // tags, plus the per-server max full-completion estimate for the DAS
  // deferral bounds.
  struct ServerAgg {
    std::uint32_t ops = 0;
    double demand = 0;
    SimTime max_full_estimate = 0;
  };
  // FlatMap, not unordered_map: only max/sum aggregation below, so iteration
  // order cannot leak into results — but FlatMap's order is at least
  // deterministic across standard libraries.
  FlatMap<ServerId, ServerAgg> per_server;
  double total_demand = 0;
  double critical_us = 0;
  for (const PlannedOp& planned : plan) {
    auto& agg = per_server[planned.server];
    ++agg.ops;
    agg.demand += planned.demand;
    agg.max_full_estimate = std::max(
        agg.max_full_estimate, full_estimate(now, planned.server, planned.demand));
    total_demand += planned.demand;
    critical_us =
        std::max(critical_us, service_estimate_us(planned.server, planned.demand));

    PendingOp op;
    op.op_id = (static_cast<OperationId>(params_.id) << 48) | next_op_seq_++;
    op.server = planned.server;
    op.key = planned.key;
    op.demand_us = planned.demand;
    op.sent_ctx.is_write = planned.is_write;
    op.sent_ctx.write_size = planned.write_size;
    pending.ops.push_back(op);
  }
  std::uint32_t bottleneck_ops = 0;
  double bottleneck_demand = 0;
  for (const auto& [server, agg] : per_server) {
    bottleneck_ops = std::max(bottleneck_ops, agg.ops);
    bottleneck_demand = std::max(bottleneck_demand, agg.demand);
  }

  pending.remaining = pending.ops.size();
  pending.last_sent_critical = critical_us;
  pending.last_sent_total = total_demand;

  if (tracer_ != nullptr) {
    tracer_->request_arrival(now, rid, params_.id, pending.ops.size());
  }

  for (PendingOp& op : pending.ops) {
    // Deferral bound: the latest completion estimate among siblings on
    // servers other than this op's.
    SimTime est_other = 0;
    for (const auto& [server, agg] : per_server) {
      if (server == op.server) continue;
      est_other = std::max(est_other, agg.max_full_estimate);
    }

    sched::OpContext ctx;
    ctx.op_id = op.op_id;
    ctx.request_id = rid;
    ctx.client = params_.id;
    ctx.key = op.key;
    ctx.demand_us = op.demand_us;
    ctx.request_arrival = now;
    ctx.remaining_critical_us = critical_us;
    ctx.est_other_completion = est_other;
    ctx.bottleneck_ops = bottleneck_ops;
    ctx.bottleneck_demand_us = bottleneck_demand;
    ctx.total_demand_us = total_demand;
    ctx.deadline = now + params_.edf_slo_us;
    ctx.expiry = expiry;
    ctx.is_write = op.sent_ctx.is_write;
    ctx.write_size = op.sent_ctx.write_size;
    op_to_request_.emplace(op.op_id, rid);
    op.sent_ctx = ctx;
    send_op_(op.server, ctx);
    ++ops_generated_;
    if (tracer_ != nullptr) {
      tracer_->op_send(now, op.op_id, rid, params_.id, op.server, op.demand_us,
                       /*resend=*/false);
    }
  }
  auto [it, inserted] = pending_.emplace(rid, std::move(pending));
  DAS_CHECK(inserted);
  for (PendingOp& op : it->second.ops) {
    if (params_.retry_timeout_us > 0) arm_retry(rid, op);
    // Writes already fan out to every replica; hedging applies to reads.
    if (params_.hedge_delay_us > 0 && params_.replication >= 2 &&
        !op.sent_ctx.is_write) {
      arm_hedge(rid, op);
    }
  }
  if (params_.overload.deadlines()) {
    // The deadline is enforced client-side by a timer, not by waiting for
    // servers to report expiry: a request stuck behind a dead or saturated
    // server fails at exactly arrival + budget no matter what.
    it->second.deadline_timer =
        sim_.schedule_at(expiry, [this, rid] { expire_request(rid); });
  }
  ++requests_generated_;
  ++tenant_generated_[tenant];
}

void Client::expire_request(RequestId rid) {
  const auto req_it = pending_.find(rid);
  // The timer is cancelled whenever the request settles first; a find miss
  // can only mean a stale timer raced settlement in the same instant.
  if (req_it == pending_.end()) return;
  PendingRequest& req = req_it->second;
  const SimTime now = sim_.now();
  // Tear down every op still in flight. A response (including a server-side
  // kExpired shed, which by time ordering always arrives after this timer)
  // lands in the unknown-op path and discards as a duplicate.
  for (PendingOp& op : req.ops) {
    if (op.done) continue;
    op.done = true;
    sim_.cancel(op.retry_timer);
    sim_.cancel(op.hedge_timer);
    op_to_request_.erase(op.op_id);
  }
  if (admission_ != nullptr) admission_->on_overload(req.tenant);
  metrics_.record_request_expired(req.arrival, now, req.tenant);
  if (tracer_ != nullptr) {
    tracer_->request_expired(now, rid, params_.id, now - req.arrival);
  }
  ++tenant_expired_[req.tenant];
  ++requests_expired_;
  pending_.erase(req_it);
}

void Client::arm_hedge(RequestId rid, PendingOp& op) {
  const OperationId op_id = op.op_id;
  op.hedge_timer = sim_.schedule_after(params_.hedge_delay_us, [this, rid, op_id] {
    const auto req_it = pending_.find(rid);
    if (req_it == pending_.end()) return;
    auto& ops = req_it->second.ops;
    const auto it = std::find_if(ops.begin(), ops.end(), [&](const PendingOp& o) {
      return o.op_id == op_id;
    });
    if (it == ops.end() || it->done || it->hedged) return;
    // Pick the best OTHER replica under the current learned view. Hedging to
    // a suspected replica only doubles the load on a host that is not
    // answering, so pick_alternate skips suspects.
    const auto replicas = partitioner_.replicas_for(it->key, params_.replication);
    const ServerId alternate = selector_->pick_alternate(
        replicas, learned_view(), {it->demand_us, it->key, sim_.now()},
        it->server);
    if (alternate == kInvalidServer) return;  // no distinct live replica
    it->hedged = true;
    ++ops_hedged_;
    send_op_(alternate, it->sent_ctx);
    if (tracer_ != nullptr) {
      tracer_->op_send(sim_.now(), op_id, rid, params_.id, alternate,
                       it->demand_us, /*resend=*/true);
    }
  });
}

void Client::arm_retry(RequestId rid, PendingOp& op) {
  // Exponential backoff: timeout doubles with each attempt, bounded by the
  // configured cap, with ±20% jitter so clients whose ops died in the same
  // loss burst (or crash) do not retransmit in lockstep.
  Duration timeout =
      params_.retry_timeout_us * static_cast<double>(1u << std::min(op.attempts - 1,
                                                                    10u));
  if (params_.retry_backoff_max_us > 0) {
    timeout = std::min(timeout, params_.retry_backoff_max_us);
  }
  timeout *= retry_rng_.uniform(0.8, 1.2);
  const OperationId op_id = op.op_id;
  op.retry_timer = sim_.schedule_after(timeout, [this, rid, op_id] {
    const auto req_it = pending_.find(rid);
    if (req_it == pending_.end()) return;
    auto& ops = req_it->second.ops;
    const auto it = std::find_if(ops.begin(), ops.end(), [&](const PendingOp& o) {
      return o.op_id == op_id;
    });
    if (it == ops.end() || it->done) return;
    // Failure detection: one more consecutive unanswered timeout against
    // this server.
    note_rto(it->server);
    if (params_.retry_max_attempts > 0 &&
        it->attempts >= params_.retry_max_attempts) {
      abandon_op(rid, *it);
      return;
    }
    ++it->attempts;
    ++ops_retransmitted_;
    maybe_fail_over(req_it->second, *it);
    send_op_(it->server, it->sent_ctx);
    if (tracer_ != nullptr) {
      tracer_->op_send(sim_.now(), op_id, rid, params_.id, it->server,
                       it->demand_us, /*resend=*/true);
    }
    arm_retry(rid, *it);
  });
}

void Client::note_rto(ServerId server) {
  if (params_.suspicion_rto_threshold == 0) return;
  ++rto_strikes_[server];
  if (suspected_[server] == 0 &&
      rto_strikes_[server] >= params_.suspicion_rto_threshold) {
    suspected_[server] = 1;
    ++suspicions_raised_;
  }
}

void Client::maybe_fail_over(PendingRequest& req, PendingOp& op) {
  // Writes are fanned out to every replica already — a write retry must keep
  // hammering its own replica. Reads can move.
  if (params_.replication < 2 || op.sent_ctx.is_write) return;
  if (suspected_[op.server] == 0) return;
  const auto replicas = partitioner_.replicas_for(op.key, params_.replication);
  const ServerId best = selector_->pick_alternate(
      replicas, learned_view(), {op.demand_us, op.key, sim_.now()}, op.server);
  if (best == kInvalidServer) return;  // every replica suspected: keep trying
  op.server = best;
  ++ops_failed_over_;
  req.failed_over = true;
}

void Client::abandon_op(RequestId rid, PendingOp& op) {
  // The retry budget is spent: declare the op failed so the request leaves
  // the books as FAILED rather than hanging in flight forever. A straggler
  // response arriving later is discarded as a duplicate. If the server's
  // last word on this op was BUSY, the exhaustion is the overload layer's
  // doing and the op counts as shed instead.
  op.done = true;
  sim_.cancel(op.hedge_timer);
  op_to_request_.erase(op.op_id);
  ++ops_abandoned_;
  const auto req_it = pending_.find(rid);
  DAS_CHECK(req_it != pending_.end());
  PendingRequest& req = req_it->second;
  if (op.busy_rejected) {
    ++req.shed_ops;
  } else {
    ++req.failed_ops;
  }
  DAS_CHECK(req.remaining > 0);
  --req.remaining;
  if (req.remaining == 0) finalize_degraded(rid);
}

void Client::shed_op(RequestId rid, PendingOp& op) {
  // BUSY with no retry machinery to lean on: the op is terminally shed.
  op.done = true;
  sim_.cancel(op.retry_timer);
  sim_.cancel(op.hedge_timer);
  op_to_request_.erase(op.op_id);
  const auto req_it = pending_.find(rid);
  DAS_CHECK(req_it != pending_.end());
  PendingRequest& req = req_it->second;
  ++req.shed_ops;
  DAS_CHECK(req.remaining > 0);
  --req.remaining;
  if (req.remaining == 0) finalize_degraded(rid);
}

void Client::finalize_degraded(RequestId rid) {
  const auto req_it = pending_.find(rid);
  DAS_CHECK(req_it != pending_.end());
  PendingRequest& req = req_it->second;
  DAS_CHECK(req.remaining == 0);
  DAS_CHECK(req.shed_ops > 0 || req.failed_ops > 0);
  const SimTime now = sim_.now();
  sim_.cancel(req.deadline_timer);
  if (req.shed_ops > 0) {
    // Shed outranks failed: an overload rejection is load the system chose
    // to turn away, not a fault — the distinction is what E22 measures.
    metrics_.record_request_shed(req.arrival, now, req.tenant);
    if (tracer_ != nullptr) {
      tracer_->request_shed(now, rid, params_.id, now - req.arrival,
                            /*at_admission=*/false);
    }
    ++tenant_shed_[req.tenant];
    ++requests_shed_;
  } else {
    metrics_.record_request_failure(req.arrival, now, req.tenant);
    if (tracer_ != nullptr) {
      tracer_->request_complete(now, rid, params_.id, now - req.arrival);
    }
    ++tenant_failed_[req.tenant];
    ++requests_failed_;
  }
  pending_.erase(req_it);
}

void Client::on_shed_response(const OpResponse& resp, RequestId rid) {
  const auto req_it = pending_.find(rid);
  DAS_CHECK_MSG(req_it != pending_.end(), "shed response for settled request");
  PendingRequest& req = req_it->second;
  const auto pop =
      std::find_if(req.ops.begin(), req.ops.end(),
                   [&](const PendingOp& op) { return op.op_id == resp.op_id; });
  DAS_CHECK(pop != req.ops.end());
  DAS_CHECK_MSG(!pop->done, "shed response for settled op");
  // Every BUSY is an overload signal for the AIMD throttle, whether or not
  // the op survives via retry.
  if (admission_ != nullptr) admission_->on_overload(req.tenant);
  if (params_.retry_timeout_us > 0) {
    // The retry timer armed at send is still running: the retransmission
    // path (backoff, jitter, failover, give-up budget) handles the redo.
    // The explicit BUSY just told us sooner than silence would have.
    pop->busy_rejected = true;
    return;
  }
  shed_op(rid, *pop);
}

void Client::on_response(const OpResponse& resp) {
  const SimTime now = sim_.now();

  // Any response — including a duplicate — clears the server's failure
  // suspicion: the streak of consecutive unanswered timeouts is broken.
  rto_strikes_[resp.server] = 0;
  suspected_[resp.server] = 0;

  const auto op_it = op_to_request_.find(resp.op_id);
  if (op_it == op_to_request_.end()) {
    // With retransmission or hedging enabled, a second copy of a served op
    // yields a duplicate response; with the overload layer on, a server-side
    // shed of an already-settled request lands here too (a kExpired shed
    // ALWAYS does: the client's own deadline timer fires strictly first).
    // Otherwise it is a protocol bug. The duplicate stays a pure liveness
    // signal: the EWMA update below must NOT run, or each redundant answer
    // double-applies the same piggyback and skews the learned view.
    DAS_CHECK_MSG(params_.retry_timeout_us > 0 || params_.hedge_delay_us > 0 ||
                      params_.overload.enabled(),
                  "response for unknown op");
    ++duplicate_responses_;
    return;
  }
  if (params_.adaptive) {
    // Applies to BUSY responses too: the piggybacked d_hat/mu_hat are real —
    // explicit rejection feeding the learned view is what steers subsequent
    // picks away from the saturated server.
    d_est_[resp.server] +=
        params_.ewma_alpha * (resp.d_hat_us - d_est_[resp.server]);
    mu_est_[resp.server] +=
        params_.ewma_alpha * (resp.mu_hat - mu_est_[resp.server]);
  }
  const RequestId rid = op_it->second;
  if (resp.status != OpStatus::kOk) {
    // The op was shed server-side; it is still pending (the mapping stays
    // while the retry path may yet rescue it).
    on_shed_response(resp, rid);
    return;
  }
  op_to_request_.erase(op_it);

  const auto req_it = pending_.find(rid);
  DAS_CHECK_MSG(req_it != pending_.end(), "response for completed request");
  PendingRequest& req = req_it->second;

  const auto pop = std::find_if(req.ops.begin(), req.ops.end(),
                                [&](const PendingOp& op) { return op.op_id == resp.op_id; });
  DAS_CHECK(pop != req.ops.end());
  DAS_CHECK_MSG(!pop->done, "duplicate response");
  pop->done = true;
  pop->delivered_at = now;
  pop->timing = resp.timing;
  sim_.cancel(pop->retry_timer);
  sim_.cancel(pop->hedge_timer);
  DAS_CHECK(req.remaining > 0);
  --req.remaining;
  if (tracer_ != nullptr) {
    tracer_->response(now, resp.op_id, rid, params_.id, resp.server);
  }

  if (req.remaining == 0) {
    if (req.shed_ops > 0 || req.failed_ops > 0) {
      // A sibling op was shed or abandoned earlier: the request is degraded
      // as a whole even though this last op did get served. Its latency must
      // not enter the RCT population.
      finalize_degraded(rid);
      return;
    }
    sim_.cancel(req.deadline_timer);
    if (admission_ != nullptr) admission_->on_success(req.tenant);
    metrics_.record_request(req.arrival, now, req.ops.size(), req.tenant);
    if (req.failed_over) ++requests_completed_failover_;
    if (tracer_ != nullptr) {
      tracer_->request_complete(now, rid, params_.id, now - req.arrival);
    }
    // The critical op is the one whose response completed the request; its
    // siblings' idle tails since delivery form the straggler slack.
    if (breakdown_ != nullptr && pop->timing.valid) {
      double slack_sum = 0;
      for (const PendingOp& op : req.ops) {
        if (op.op_id == pop->op_id) continue;
        slack_sum += now - op.delivered_at;
      }
      breakdown_->record(trace::make_request_breakdown(
          req.arrival, now, pop->timing, slack_sum, req.ops.size()));
    }
    ++tenant_completed_[req.tenant];
    pending_.erase(req_it);
    ++requests_completed_;
    return;
  }

  if (!params_.progress_updates) return;

  // Recompute the scheduling estimates from the surviving ops under the
  // *current* per-server view and propagate when the critical path moved
  // enough to change scheduling decisions.
  double new_critical = 0;
  double remaining_demand = 0;
  // Iteration order below decides the order progress updates hit the
  // network (event sequence numbers!), so this must NOT be an unordered
  // container: libstdc++ and libc++ would send in different orders and
  // produce different results. First-touch order — the order ops appear in
  // the request — is deterministic everywhere. A request touches few
  // distinct servers (fan-out mean 8), so the linear scan is cheap.
  std::vector<std::pair<ServerId, SimTime>> server_max_full;
  for (const PendingOp& op : req.ops) {
    if (op.done) continue;
    remaining_demand += op.demand_us;
    new_critical =
        std::max(new_critical, service_estimate_us(op.server, op.demand_us));
    const auto slot = std::find_if(
        server_max_full.begin(), server_max_full.end(),
        [&](const auto& entry) { return entry.first == op.server; });
    const SimTime est = full_estimate(now, op.server, op.demand_us);
    if (slot == server_max_full.end()) {
      server_max_full.emplace_back(op.server, est);
    } else {
      slot->second = std::max(slot->second, est);
    }
  }
  // Send when either the critical path (DAS's key) or the total remaining
  // (ReqSRPT's key) moved by more than the threshold, relative to its last
  // sent value.
  const bool critical_moved =
      std::abs(new_critical - req.last_sent_critical) >=
      params_.progress_threshold * std::max(req.last_sent_critical, 1.0);
  const bool total_moved =
      std::abs(remaining_demand - req.last_sent_total) >=
      params_.progress_threshold * std::max(req.last_sent_total, 1.0);
  if (!critical_moved && !total_moved) return;
  req.last_sent_critical = new_critical;
  req.last_sent_total = remaining_demand;
  // One update per distinct server still holding pending ops; the deferral
  // bound is per destination (max full estimate over the OTHER servers).
  for (const auto& [server, unused] : server_max_full) {
    (void)unused;
    SimTime est_other = 0;
    for (const auto& [other, est] : server_max_full) {
      if (other == server) continue;
      est_other = std::max(est_other, est);
    }
    sched::ProgressUpdate update;
    update.remaining_critical_us = new_critical;
    update.est_other_completion = est_other;
    update.remaining_total_us = remaining_demand;
    send_progress_(server, rid, update);
    ++progress_sent_;
  }
}

}  // namespace das::core
