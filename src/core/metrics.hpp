// Measurement collection for one simulation run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/rct_breakdown.hpp"

namespace das::core {

/// Aggregated over the measurement window (requests that ARRIVE inside it;
/// warmup and cooldown arrivals are excluded but still simulated).
class Metrics {
 public:
  void set_window(SimTime begin, SimTime end) {
    window_begin_ = begin;
    window_end_ = end;
  }
  bool in_window(SimTime arrival) const {
    return arrival >= window_begin_ && arrival < window_end_;
  }

  /// Additionally aggregates mean RCT into fixed buckets of request
  /// COMPLETION time (bucketed over the whole run, warmup included), for
  /// plotting adaptation transients. 0 disables.
  void enable_timeline(Duration bucket_us);

  /// Additionally keeps a per-tenant RCT recorder and failure counter for
  /// `count` tenants; record calls then attribute to their tenant index.
  /// Never called (count 0) in single-tenant runs — zero overhead there.
  void enable_tenants(std::size_t count);

  void record_request(SimTime arrival, SimTime completion, std::size_t fanout,
                      std::uint32_t tenant = 0);
  /// A request gave up (all retry budget spent on at least one op). Failed
  /// requests never enter the RCT population — mixing give-up times into a
  /// latency distribution would reward abandoning early — but they are
  /// counted, both in-window and on the degradation timeline.
  void record_request_failure(SimTime arrival, SimTime failed_at,
                              std::uint32_t tenant = 0);
  /// A request was SHED by the overload layer (admission refusal or a BUSY
  /// rejection the client did not ride out). Like failures, shed requests
  /// never enter the RCT population but are counted in-window and on the
  /// degradation timeline.
  void record_request_shed(SimTime arrival, SimTime shed_at,
                           std::uint32_t tenant = 0);
  /// A request's end-to-end deadline passed before completion.
  void record_request_expired(SimTime arrival, SimTime expired_at,
                              std::uint32_t tenant = 0);
  void record_operation(SimTime server_arrival, SimTime completion, Duration wait);

  const LatencyRecorder& rct() const { return rct_; }
  const LatencyRecorder& op_latency() const { return op_latency_; }
  const LatencyRecorder& op_wait() const { return op_wait_; }
  const StreamingStats& fanout() const { return fanout_; }

  std::uint64_t requests_measured() const { return rct_.moments().count(); }
  std::uint64_t requests_failed_measured() const { return failures_measured_; }
  std::uint64_t requests_shed_measured() const { return shed_measured_; }
  std::uint64_t requests_expired_measured() const { return expired_measured_; }

  std::size_t tenant_count() const { return tenant_rct_.size(); }
  const LatencyRecorder& tenant_rct(std::size_t t) const {
    return tenant_rct_.at(t);
  }
  std::uint64_t tenant_failed_measured(std::size_t t) const {
    return tenant_failures_measured_.at(t);
  }
  std::uint64_t tenant_shed_measured(std::size_t t) const {
    return tenant_shed_measured_.at(t);
  }
  std::uint64_t tenant_expired_measured(std::size_t t) const {
    return tenant_expired_measured_.at(t);
  }

  /// One point per non-empty bucket: bucket start time, mean and p99 RCT
  /// (p99 from the log-bucketed histogram, so ±0.5% relative), completion
  /// count, and failed-request count (degradation timeline; a bucket with
  /// only failures still yields a point, with zeroed latency stats).
  struct TimelinePoint {
    SimTime bucket_start = 0;
    double mean_rct = 0;
    double p99_rct = 0;
    std::size_t count = 0;
    std::size_t failed = 0;
    /// Overload-layer outcomes in this bucket (metastability studies read
    /// recovery — or its absence — off these two columns plus `count`).
    std::size_t shed = 0;
    std::size_t expired = 0;
  };
  std::vector<TimelinePoint> timeline() const;

 private:
  SimTime window_begin_ = 0;
  SimTime window_end_ = kTimeInfinity;
  LatencyRecorder rct_{1e9};
  LatencyRecorder op_latency_{1e9};
  LatencyRecorder op_wait_{1e9};
  StreamingStats fanout_;
  std::uint64_t failures_measured_ = 0;
  std::uint64_t shed_measured_ = 0;
  std::uint64_t expired_measured_ = 0;
  /// Per-tenant RCT recorders and in-window failure counts; empty unless
  /// enable_tenants was called (multi-tenant runs only).
  std::vector<LatencyRecorder> tenant_rct_;
  std::vector<std::uint64_t> tenant_failures_measured_;
  std::vector<std::uint64_t> tenant_shed_measured_;
  std::vector<std::uint64_t> tenant_expired_measured_;
  Duration timeline_bucket_us_ = 0;
  std::vector<LatencyRecorder> timeline_buckets_;
  /// Failed/shed/expired-request counts per timeline bucket (indexed like
  /// the latency buckets; grown on demand).
  std::vector<std::size_t> timeline_failed_;
  std::vector<std::size_t> timeline_shed_;
  std::vector<std::size_t> timeline_expired_;
};

/// One tenant's slice of a multi-tenant run. Accounting closes exactly:
/// generated == completed + failed + shed + expired per tenant, and the
/// per-field sums over tenants equal the cluster totals (both checked by
/// Cluster::run).
struct TenantOutcome {
  std::string name;
  /// Arrival-rate weight from the TenantSpec (as configured, unnormalised).
  double share = 1.0;
  std::uint64_t requests_generated = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t requests_measured = 0;
  std::uint64_t requests_failed_measured = 0;
  /// Overload-layer degradation (all zero with the layer off): who pays
  /// under overload.
  std::uint64_t requests_shed = 0;
  std::uint64_t requests_expired = 0;
  std::uint64_t requests_shed_measured = 0;
  std::uint64_t requests_expired_measured = 0;
  /// This tenant's fraction of the cluster's in-window completions
  /// (goodput). Sums to 1 over tenants when anything completed.
  double goodput_share = 0;
  LatencySummary rct;  // this tenant's request completion time (µs)
};

/// What an experiment returns: the paper's reported quantities plus the
/// accounting needed to sanity-check a run (conservation, utilisation).
struct ExperimentResult {
  LatencySummary rct;             // request completion time (µs)
  LatencySummary op_latency;      // single-operation latency (µs)
  LatencySummary op_wait;         // queueing wait component (µs)
  std::uint64_t requests_generated = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_measured = 0;
  /// Graceful-degradation accounting (fault layer). Conservation holds as
  /// requests_generated == requests_completed + requests_failed +
  /// requests_shed + requests_expired at drain.
  std::uint64_t requests_failed = 0;
  std::uint64_t requests_failed_measured = 0;
  /// Overload-layer accounting (src/overload); all zero with the layer off.
  std::uint64_t requests_shed = 0;           ///< admission refusal / BUSY give-up
  std::uint64_t requests_expired = 0;        ///< end-to-end deadline passed
  std::uint64_t requests_shed_measured = 0;
  std::uint64_t requests_expired_measured = 0;
  std::uint64_t requests_shed_admission = 0;  ///< refused before any op was sent
  std::uint64_t ops_rejected_busy = 0;        ///< server cap rejections
  std::uint64_t ops_shed_sojourn = 0;         ///< server sojourn drops
  std::uint64_t ops_expired_dropped = 0;      ///< server expiry drops at dequeue
  /// Service time spent on ops that completed after their expiry (served
  /// work nobody was waiting for; no mid-service abort exists).
  double wasted_service_us = 0;
  /// In-window settle and success rates (requests/s over the measure
  /// window). goodput <= throughput always; the gap is paid degradation.
  double throughput_rps = 0;  ///< completed + failed + shed + expired
  double goodput_rps = 0;     ///< completed only
  std::uint64_t requests_completed_after_failover = 0;
  std::uint64_t ops_failed_over = 0;
  std::uint64_t ops_abandoned = 0;
  std::uint64_t suspicions_raised = 0;
  std::uint64_t ops_dropped_crashed = 0;
  std::uint64_t server_crashes = 0;
  std::uint64_t server_recoveries = 0;
  std::uint64_t net_messages_dropped_partition = 0;
  /// completed / (completed + failed); 1.0 for a run with nothing failed.
  double availability = 1.0;
  std::uint64_t ops_generated = 0;
  std::uint64_t ops_completed = 0;
  double mean_server_utilization = 0;
  double max_server_utilization = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_messages_dropped = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t progress_messages = 0;
  std::uint64_t ops_retransmitted = 0;
  std::uint64_t duplicate_responses = 0;
  std::uint64_t ops_hedged = 0;
  /// Mechanism-activation counters summed over servers (sched::
  /// MechanismCounters); all zero for policies without the mechanism.
  std::uint64_t ops_deferred = 0;
  std::uint64_t ops_resumed = 0;
  std::uint64_t ops_aged = 0;
  std::uint64_t reranks_applied = 0;
  /// Store-model counters summed over servers (store::StoreModelStats);
  /// all zero in synthetic mode.
  std::uint64_t store_flushes = 0;
  std::uint64_t store_compactions = 0;
  std::uint64_t store_write_stalls = 0;
  std::uint64_t store_stalled_write_ops = 0;
  std::uint64_t store_memtable_hits = 0;
  std::uint64_t store_level_reads = 0;
  double store_compaction_busy_us = 0;
  double store_write_stall_us = 0;
  /// Per-request RCT decomposition aggregated over the measurement window
  /// (always collected; pure arithmetic on existing timestamps).
  trace::BreakdownSummary breakdown;
  /// Mean RCT per completion-time bucket; empty unless the config enabled
  /// timeline collection.
  std::vector<Metrics::TimelinePoint> timeline;
  /// Per-tenant outcomes; empty for single-tenant (legacy) runs.
  std::vector<TenantOutcome> tenants;
  /// Jain fairness index over the per-tenant mean RCTs, (0, 1]; 1.0 means
  /// every tenant sees the same mean RCT (and for runs with < 2 measured
  /// tenants, where fairness is vacuous).
  double jain_fairness = 1.0;
  double sim_duration_us = 0;
  double wall_seconds = 0;
};

}  // namespace das::core
