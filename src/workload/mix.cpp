#include "workload/mix.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/check.hpp"

namespace das::workload {

OpKind OpMix::sample(Rng& rng) const {
  if (read_only()) return OpKind::kRead;
  const double u = rng.next_double();
  if (u < update) return OpKind::kUpdate;
  if (u < update + rmw) return OpKind::kRmw;
  return OpKind::kRead;
}

std::string OpMix::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "mix:%g:%g:%g", read, update, rmw);
  return buf;
}

OpMix parse_mix(const std::string& spec) {
  if (spec == "ycsb-a") return OpMix{0.5, 0.5, 0.0};
  if (spec == "ycsb-b") return OpMix{0.95, 0.05, 0.0};
  if (spec == "ycsb-c") return OpMix{1.0, 0.0, 0.0};
  if (spec == "ycsb-f") return OpMix{0.5, 0.0, 0.5};
  const std::string prefix = "mix:";
  if (spec.rfind(prefix, 0) != 0) {
    throw std::logic_error("unknown mix spec '" + spec +
                           "'; expected ycsb-a|ycsb-b|ycsb-c|ycsb-f or "
                           "mix:READ:UPDATE:RMW");
  }
  double fractions[3] = {0, 0, 0};
  std::size_t at = prefix.size();
  for (int i = 0; i < 3; ++i) {
    const std::size_t end = spec.find(':', at);
    const bool last = (i == 2);
    if ((last && end != std::string::npos) ||
        (!last && end == std::string::npos)) {
      throw std::logic_error("malformed mix spec '" + spec +
                             "'; expected mix:READ:UPDATE:RMW");
    }
    const std::string field =
        spec.substr(at, last ? std::string::npos : end - at);
    if (field.empty()) {
      throw std::logic_error("empty argument in mix spec '" + spec + "'");
    }
    if (field.find_first_of(" \t\n\r\f\v") != std::string::npos) {
      throw std::logic_error("whitespace in argument '" + field +
                             "' of mix spec '" + spec + "'");
    }
    try {
      std::size_t pos = 0;
      fractions[i] = std::stod(field, &pos);
      DAS_CHECK(pos == field.size());
    } catch (...) {
      throw std::logic_error("bad number '" + field + "' in mix spec '" + spec +
                             "'");
    }
    if (!std::isfinite(fractions[i]) || fractions[i] < 0.0 ||
        fractions[i] > 1.0) {
      throw std::logic_error("mix fraction '" + field + "' outside [0,1] in '" +
                             spec + "'");
    }
    at = (end == std::string::npos) ? spec.size() : end + 1;
  }
  const double sum = fractions[0] + fractions[1] + fractions[2];
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::logic_error("mix fractions in '" + spec +
                           "' must sum to 1, got " + std::to_string(sum));
  }
  return OpMix{fractions[0], fractions[1], fractions[2]};
}

}  // namespace das::workload
