// Workload registry: named, composable workload families behind one factory.
//
// A *tenant spec* is a '+'-joined list of family clauses, each of which
// mutates one aspect of a TenantSpec:
//
//   ycsb-a | ycsb-b | ycsb-c | ycsb-f   named YCSB operation mixes
//   mix:READ:UPDATE:RMW                 explicit operation mix
//   zipf:THETA                          key-popularity skew
//   fanout:<int dist spec>              multiget fan-out distribution
//   size:<real dist spec>               value-size distribution
//   share:WEIGHT                        arrival-rate weight (> 0)
//   name:LABEL                          tenant label for metrics/JSON
//   drift:PERIOD_US:STRIDE              rotate the rank->key mapping
//   storm:START_US:END_US:KEYS:SHARE:SEED   append a hot-key storm window
//   replay:PATH                         replay a .csv/.jsonl trace instead
//                                       of synthesizing traffic
//   legacy                              no-op: inherit all cluster defaults
//
// Example: "ycsb-b+zipf:1.1+share:3+name:heavy+drift:5000:37".
// Unset aspects inherit the cluster-level configuration, so "legacy" (or the
// empty registry) reproduces the pre-registry workload bit-for-bit.
//
// Multiple tenants share one cluster via a ';'-separated list of tenant
// specs ("ycsb-c+share:1;ycsb-a+share:4"). Each tenant owns an equal
// contiguous slice of the keyspace and an arrival-rate share proportional
// to its weight.
//
// New families register through WorkloadFactory::register_workload (the
// workload_factory pattern); parse errors throw std::logic_error naming the
// clause and listing known families.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "workload/mix.hpp"
#include "workload/multiget.hpp"

namespace das::workload {

/// Everything one tenant needs to generate traffic. Unset fields (negative
/// theta, empty spec strings) inherit the cluster-level defaults.
struct TenantSpec {
  /// Label used in per-tenant metrics and bench JSON; parse_tenants fills
  /// "t<index>" when a spec does not name itself.
  std::string name;
  /// Arrival-rate weight; tenant i receives share_i / sum(shares) of the
  /// cluster arrival rate.
  double share = 1.0;
  /// Key-popularity skew; < 0 inherits the cluster zipf_theta.
  double zipf_theta = -1.0;
  /// Multiget fan-out distribution spec; empty inherits the cluster fanout.
  std::string fanout_spec;
  /// Value-size distribution spec; empty inherits the cluster value size.
  std::string value_size_spec;
  /// Operation mix; has_mix=false inherits the cluster write_fraction
  /// behaviour (reads + legacy write path).
  bool has_mix = false;
  OpMix mix{};
  /// Popularity drift (rotation + storms); default stationary.
  DriftOptions drift{};
  /// Non-empty: replay this trace file instead of synthesizing traffic.
  std::string replay_path;

  [[nodiscard]] std::string describe() const;
};

/// Registry mapping family names to builders that apply one clause to a
/// TenantSpec under construction.
class WorkloadFactory {
 public:
  using Builder =
      std::function<void(const std::vector<std::string>& args, TenantSpec& spec)>;

  /// The process-wide factory, pre-loaded with the built-in families above.
  static WorkloadFactory& instance();

  /// Registers (or replaces) a family.
  void register_workload(const std::string& family, Builder builder);

  [[nodiscard]] bool has(const std::string& family) const;
  /// Known family names, sorted (std::map order) for stable error messages.
  [[nodiscard]] std::vector<std::string> known_families() const;

  /// Parses one clause ("family[:arg...]") and applies it to `spec`.
  void apply(const std::string& clause, TenantSpec& spec) const;

  /// Parses a full '+'-joined tenant spec.
  [[nodiscard]] TenantSpec parse_tenant(const std::string& spec) const;

  /// Parses a ';'-separated multi-tenant spec; fills default names
  /// ("t0", "t1", ...) for tenants that did not set one.
  [[nodiscard]] std::vector<TenantSpec> parse_tenants(const std::string& spec) const;

 private:
  WorkloadFactory();
  std::map<std::string, Builder> builders_;
};

/// Convenience wrappers over WorkloadFactory::instance().
TenantSpec parse_tenant(const std::string& spec);
std::vector<TenantSpec> parse_tenants(const std::string& spec);

}  // namespace das::workload
