#include "workload/registry.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "workload/spec.hpp"

namespace das::workload {

namespace {

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t at = 0;
  while (true) {
    const std::size_t next = s.find(sep, at);
    parts.push_back(s.substr(at, next == std::string::npos ? std::string::npos
                                                           : next - at));
    if (next == std::string::npos) break;
    at = next + 1;
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

double clause_number(const std::string& clause, const std::string& field,
                     const char* what) {
  if (field.empty()) {
    throw std::logic_error(std::string("empty ") + what +
                           " in workload clause '" + clause + "'");
  }
  if (field.find_first_of(" \t\n\r\f\v") != std::string::npos) {
    throw std::logic_error(std::string("whitespace in ") + what +
                           " of workload clause '" + clause + "'");
  }
  double v = 0;
  try {
    std::size_t pos = 0;
    v = std::stod(field, &pos);
    DAS_CHECK(pos == field.size());
  } catch (...) {
    throw std::logic_error(std::string("bad ") + what + " '" + field +
                           "' in workload clause '" + clause + "'");
  }
  if (!std::isfinite(v)) {
    throw std::logic_error(std::string("non-finite ") + what + " '" + field +
                           "' in workload clause '" + clause + "'");
  }
  return v;
}

void expect_arity(const std::string& clause, const std::vector<std::string>& args,
                  std::size_t want, const char* usage) {
  if (args.size() != want) {
    throw std::logic_error("malformed workload clause '" + clause +
                           "'; expected " + usage);
  }
}

}  // namespace

std::string TenantSpec::describe() const {
  std::ostringstream os;
  os << (name.empty() ? std::string{"tenant"} : name) << "(share=" << share;
  if (!replay_path.empty()) {
    os << ", replay=" << replay_path << ")";
    return os.str();
  }
  if (zipf_theta >= 0) os << ", theta=" << zipf_theta;
  if (!fanout_spec.empty()) os << ", fanout=" << fanout_spec;
  if (!value_size_spec.empty()) os << ", size=" << value_size_spec;
  if (has_mix) os << ", " << mix.describe();
  if (drift.rotate_period_us > 0) {
    os << ", rotate=" << drift.rotate_period_us << "us/" << drift.rotate_stride;
  }
  if (!drift.storms.empty()) os << ", storms=" << drift.storms.size();
  os << ")";
  return os.str();
}

WorkloadFactory::WorkloadFactory() {
  register_workload("legacy",
                    [](const std::vector<std::string>& args, TenantSpec&) {
                      if (!args.empty()) {
                        throw std::logic_error(
                            "workload clause 'legacy' takes no arguments");
                      }
                    });
  for (const char* name : {"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-f"}) {
    register_workload(name, [name](const std::vector<std::string>& args,
                                   TenantSpec& spec) {
      if (!args.empty()) {
        throw std::logic_error(std::string("workload clause '") + name +
                               "' takes no arguments");
      }
      spec.mix = parse_mix(name);
      spec.has_mix = true;
    });
  }
  register_workload("mix", [](const std::vector<std::string>& args,
                              TenantSpec& spec) {
    const std::string clause = "mix:" + join(args, ':');
    expect_arity(clause, args, 3, "mix:READ:UPDATE:RMW");
    spec.mix = parse_mix(clause);
    spec.has_mix = true;
  });
  register_workload("zipf", [](const std::vector<std::string>& args,
                               TenantSpec& spec) {
    const std::string clause = "zipf:" + join(args, ':');
    expect_arity(clause, args, 1, "zipf:THETA");
    const double theta = clause_number(clause, args[0], "theta");
    if (theta < 0) {
      throw std::logic_error("zipf theta must be >= 0 in workload clause '" +
                             clause + "'");
    }
    spec.zipf_theta = theta;
  });
  register_workload("fanout", [](const std::vector<std::string>& args,
                                 TenantSpec& spec) {
    const std::string dist = join(args, ':');
    if (dist.empty()) {
      throw std::logic_error(
          "malformed workload clause 'fanout'; expected fanout:<int dist spec>");
    }
    parse_int_dist(dist);  // validate eagerly; a typo must fail at parse time
    spec.fanout_spec = dist;
  });
  register_workload("size", [](const std::vector<std::string>& args,
                               TenantSpec& spec) {
    const std::string dist = join(args, ':');
    if (dist.empty()) {
      throw std::logic_error(
          "malformed workload clause 'size'; expected size:<real dist spec>");
    }
    parse_real_dist(dist);  // validate eagerly
    spec.value_size_spec = dist;
  });
  register_workload("share", [](const std::vector<std::string>& args,
                                TenantSpec& spec) {
    const std::string clause = "share:" + join(args, ':');
    expect_arity(clause, args, 1, "share:WEIGHT");
    const double share = clause_number(clause, args[0], "weight");
    if (share <= 0) {
      throw std::logic_error("share weight must be > 0 in workload clause '" +
                             clause + "'");
    }
    spec.share = share;
  });
  register_workload("name", [](const std::vector<std::string>& args,
                               TenantSpec& spec) {
    const std::string clause = "name:" + join(args, ':');
    expect_arity(clause, args, 1, "name:LABEL");
    if (args[0].empty()) {
      throw std::logic_error("empty label in workload clause 'name:'");
    }
    spec.name = args[0];
  });
  register_workload("drift", [](const std::vector<std::string>& args,
                                TenantSpec& spec) {
    const std::string clause = "drift:" + join(args, ':');
    expect_arity(clause, args, 2, "drift:PERIOD_US:STRIDE");
    const double period = clause_number(clause, args[0], "period_us");
    const double stride = clause_number(clause, args[1], "stride");
    if (period <= 0) {
      throw std::logic_error("drift period must be > 0 in workload clause '" +
                             clause + "'");
    }
    if (stride < 1 || stride != std::floor(stride)) {
      throw std::logic_error(
          "drift stride must be a positive integer in workload clause '" +
          clause + "'");
    }
    spec.drift.rotate_period_us = period;
    spec.drift.rotate_stride = static_cast<std::uint64_t>(stride);
  });
  register_workload("storm", [](const std::vector<std::string>& args,
                                TenantSpec& spec) {
    const std::string clause = "storm:" + join(args, ':');
    expect_arity(clause, args, 5, "storm:START_US:END_US:KEYS:SHARE:SEED");
    StormWindow storm;
    storm.start = clause_number(clause, args[0], "start_us");
    storm.end = clause_number(clause, args[1], "end_us");
    const double keys = clause_number(clause, args[2], "keys");
    storm.share = clause_number(clause, args[3], "share");
    const double seed = clause_number(clause, args[4], "seed");
    if (storm.start < 0 || storm.end <= storm.start) {
      throw std::logic_error(
          "storm window must have 0 <= start < end in workload clause '" +
          clause + "'");
    }
    if (keys < 1 || keys != std::floor(keys)) {
      throw std::logic_error(
          "storm keys must be a positive integer in workload clause '" +
          clause + "'");
    }
    if (storm.share < 0 || storm.share > 1) {
      throw std::logic_error("storm share must be in [0,1] in workload clause '" +
                             clause + "'");
    }
    if (seed < 0 || seed != std::floor(seed)) {
      throw std::logic_error(
          "storm seed must be a non-negative integer in workload clause '" +
          clause + "'");
    }
    storm.keys = static_cast<std::uint64_t>(keys);
    storm.seed = static_cast<std::uint64_t>(seed);
    spec.drift.storms.push_back(storm);
  });
  register_workload("replay", [](const std::vector<std::string>& args,
                                 TenantSpec& spec) {
    const std::string path = join(args, ':');
    if (path.empty()) {
      throw std::logic_error(
          "malformed workload clause 'replay'; expected replay:PATH");
    }
    spec.replay_path = path;
  });
}

WorkloadFactory& WorkloadFactory::instance() {
  static WorkloadFactory factory;
  return factory;
}

void WorkloadFactory::register_workload(const std::string& family,
                                        Builder builder) {
  DAS_CHECK_MSG(!family.empty(), "workload family name must be non-empty");
  DAS_CHECK_MSG(builder != nullptr, "workload builder must be callable");
  builders_[family] = std::move(builder);
}

bool WorkloadFactory::has(const std::string& family) const {
  return builders_.count(family) != 0;
}

std::vector<std::string> WorkloadFactory::known_families() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) names.push_back(name);
  return names;
}

void WorkloadFactory::apply(const std::string& clause, TenantSpec& spec) const {
  if (clause.empty()) {
    throw std::logic_error("empty clause in workload spec");
  }
  auto parts = split_on(clause, ':');
  const std::string family = parts[0];
  const auto it = builders_.find(family);
  if (it == builders_.end()) {
    std::ostringstream os;
    os << "unknown workload family '" << family << "' in clause '" << clause
       << "'; known families:";
    for (const auto& name : known_families()) os << ' ' << name;
    throw std::logic_error(os.str());
  }
  parts.erase(parts.begin());
  it->second(parts, spec);
}

TenantSpec WorkloadFactory::parse_tenant(const std::string& spec) const {
  if (spec.empty()) throw std::logic_error("empty workload spec");
  TenantSpec tenant;
  for (const std::string& clause : split_on(spec, '+')) apply(clause, tenant);
  if (!tenant.replay_path.empty() &&
      (tenant.has_mix || tenant.zipf_theta >= 0 || !tenant.fanout_spec.empty() ||
       tenant.drift.enabled())) {
    throw std::logic_error(
        "workload spec '" + spec +
        "' combines replay with synthetic clauses (mix/zipf/fanout/drift); a "
        "replay tenant takes its operations verbatim from the trace");
  }
  return tenant;
}

std::vector<TenantSpec> WorkloadFactory::parse_tenants(
    const std::string& spec) const {
  if (spec.empty()) throw std::logic_error("empty multi-tenant workload spec");
  std::vector<TenantSpec> tenants;
  for (const std::string& one : split_on(spec, ';')) {
    if (one.empty()) {
      throw std::logic_error("empty tenant in multi-tenant workload spec '" +
                             spec + "'");
    }
    tenants.push_back(parse_tenant(one));
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name.empty()) tenants[i].name = "t" + std::to_string(i);
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    for (std::size_t j = i + 1; j < tenants.size(); ++j) {
      if (tenants[i].name == tenants[j].name) {
        throw std::logic_error("duplicate tenant name '" + tenants[i].name +
                               "' in multi-tenant workload spec '" + spec + "'");
      }
    }
  }
  return tenants;
}

TenantSpec parse_tenant(const std::string& spec) {
  return WorkloadFactory::instance().parse_tenant(spec);
}

std::vector<TenantSpec> parse_tenants(const std::string& spec) {
  return WorkloadFactory::instance().parse_tenants(spec);
}

}  // namespace das::workload
