// Trace replay: file-backed request streams.
//
// A replay trace is a flat list of timestamped single-key operations in one
// of two self-describing text formats, autodetected by file extension:
//
//   CSV  (.csv)    header `timestamp_us,op,key,size_bytes`, then one row per
//                  operation, e.g. `12.5,read,1042,512`
//   JSONL (.jsonl) one object per line:
//                  {"timestamp_us": 12.5, "op": "read", "key": 1042,
//                   "size_bytes": 512}
//
// `op` is `read` or `write`; `size_bytes` is the value size (used as the
// write payload for writes and to seed the key's catalogued size for reads).
// Timestamps must be non-negative and non-decreasing. Loading is strict:
// any malformed line throws std::logic_error naming the line number —
// a corrupt trace must never silently run a different experiment.
//
// Iteration is deterministic and file-order: clients shard the record list
// by index stride, so the same trace file always produces the same
// simulation regardless of how many clients replay it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace das::workload {

enum class ReplayOp : std::uint8_t { kRead, kWrite };

struct ReplayRecord {
  SimTime timestamp_us = 0;
  ReplayOp op = ReplayOp::kRead;
  KeyId key = 0;
  Bytes size_bytes = 0;
};

struct ReplayTrace {
  std::vector<ReplayRecord> records;

  /// Loads a trace, dispatching on extension (.csv / .jsonl). Throws
  /// std::logic_error on unknown extensions or malformed content.
  static ReplayTrace load(const std::string& path);
  static ReplayTrace load_csv(const std::string& path);
  static ReplayTrace load_jsonl(const std::string& path);

  /// Writes the trace in the format matching the extension.
  void save(const std::string& path) const;
  void save_csv(const std::string& path) const;
  void save_jsonl(const std::string& path) const;

  /// Largest key id referenced, or 0 for an empty trace.
  [[nodiscard]] KeyId max_key() const;
  [[nodiscard]] std::size_t size() const { return records.size(); }
  [[nodiscard]] bool empty() const { return records.empty(); }
};

}  // namespace das::workload
