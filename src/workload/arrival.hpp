// Open-loop arrival processes.
//
// Requests arrive independently of completions (open loop), the standard
// methodology for latency-under-load studies: a closed loop would let a slow
// scheduler throttle its own offered load and hide queueing pathologies.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/rate_function.hpp"

namespace das::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Time of the next arrival strictly after `now`. Monotone in `now`.
  virtual SimTime next_arrival_after(SimTime now, Rng& rng) const = 0;
  /// Long-run average rate (arrivals per microsecond), for calibration.
  virtual double mean_rate() const = 0;
  virtual std::string describe() const = 0;
};

using ArrivalPtr = std::shared_ptr<const ArrivalProcess>;

/// Homogeneous Poisson process with `rate` arrivals per microsecond.
ArrivalPtr make_poisson_arrivals(double rate);

/// Evenly spaced arrivals (1/rate apart); a zero-variance control.
ArrivalPtr make_deterministic_arrivals(double rate);

/// Non-homogeneous Poisson process whose instantaneous rate is
/// `base_rate * modulation(t)`; sampled exactly by Lewis-Shedler thinning.
/// `mean_rate()` reports base_rate times the modulation's value averaged over
/// `averaging_horizon` (numerical average, step 1ms).
ArrivalPtr make_modulated_poisson(double base_rate, RatePtr modulation,
                                  SimTime averaging_horizon);

}  // namespace das::workload
