#include "workload/arrival.hpp"

#include <sstream>

#include "common/check.hpp"

namespace das::workload {

namespace {

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : rate_(rate) { DAS_CHECK(rate > 0); }
  SimTime next_arrival_after(SimTime now, Rng& rng) const override {
    return now + rng.exponential(1.0 / rate_);
  }
  double mean_rate() const override { return rate_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "poisson(rate=" << rate_ << "/us)";
    return os.str();
  }

 private:
  double rate_;
};

class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(double rate) : rate_(rate) { DAS_CHECK(rate > 0); }
  SimTime next_arrival_after(SimTime now, Rng&) const override {
    return now + 1.0 / rate_;
  }
  double mean_rate() const override { return rate_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "deterministic(rate=" << rate_ << "/us)";
    return os.str();
  }

 private:
  double rate_;
};

class ModulatedPoisson final : public ArrivalProcess {
 public:
  ModulatedPoisson(double base_rate, RatePtr modulation, SimTime horizon)
      : base_(base_rate), mod_(std::move(modulation)) {
    DAS_CHECK(base_rate > 0);
    DAS_CHECK(mod_ != nullptr);
    DAS_CHECK(horizon > 0);
    max_rate_ = base_ * mod_->max_value();
    DAS_CHECK_MSG(max_rate_ > 0, "modulation must be positive somewhere");
    // Numerical long-run average of the modulation.
    const Duration step = kMillisecond;
    double acc = 0;
    std::size_t n = 0;
    for (SimTime t = 0; t < horizon; t += step, ++n) acc += mod_->value_at(t);
    mean_rate_ = base_ * (n ? acc / static_cast<double>(n) : mod_->value_at(0));
  }

  SimTime next_arrival_after(SimTime now, Rng& rng) const override {
    // Lewis-Shedler thinning: candidate points at the max rate, accepted with
    // probability rate(t)/max_rate.
    SimTime t = now;
    for (;;) {
      t += rng.exponential(1.0 / max_rate_);
      const double accept = base_ * mod_->value_at(t) / max_rate_;
      if (rng.chance(accept)) return t;
    }
  }
  double mean_rate() const override { return mean_rate_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "modulated_poisson(base=" << base_ << "/us, " << mod_->describe() << ")";
    return os.str();
  }

 private:
  double base_;
  RatePtr mod_;
  double max_rate_ = 0;
  double mean_rate_ = 0;
};

}  // namespace

ArrivalPtr make_poisson_arrivals(double rate) {
  return std::make_shared<PoissonArrivals>(rate);
}

ArrivalPtr make_deterministic_arrivals(double rate) {
  return std::make_shared<DeterministicArrivals>(rate);
}

ArrivalPtr make_modulated_poisson(double base_rate, RatePtr modulation,
                                  SimTime averaging_horizon) {
  return std::make_shared<ModulatedPoisson>(base_rate, std::move(modulation),
                                            averaging_horizon);
}

}  // namespace das::workload
