#include "workload/rate_function.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace das::workload {

namespace {

class ConstantRate final : public RateFunction {
 public:
  explicit ConstantRate(double v) : v_(v) { DAS_CHECK(v >= 0); }
  double value_at(SimTime) const override { return v_; }
  double max_value() const override { return v_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << v_ << ")";
    return os.str();
  }

 private:
  double v_;
};

class SinusoidalRate final : public RateFunction {
 public:
  SinusoidalRate(double base, double amplitude, Duration period)
      : base_(base), amp_(amplitude), period_(period) {
    DAS_CHECK(base >= 0);
    DAS_CHECK(amplitude >= 0);
    DAS_CHECK_MSG(amplitude <= base, "sinusoid would go negative");
    DAS_CHECK(period > 0);
  }
  double value_at(SimTime t) const override {
    return base_ + amp_ * std::sin(2.0 * std::numbers::pi * t / period_);
  }
  double max_value() const override { return base_ + amp_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "sinusoid(base=" << base_ << ", amp=" << amp_ << ", period=" << period_
       << "us)";
    return os.str();
  }

 private:
  double base_, amp_;
  Duration period_;
};

class StepRate final : public RateFunction {
 public:
  StepRate(std::vector<SimTime> boundaries, std::vector<double> levels)
      : boundaries_(std::move(boundaries)), levels_(std::move(levels)) {
    DAS_CHECK(!levels_.empty());
    DAS_CHECK(boundaries_.size() == levels_.size() - 1);
    DAS_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()));
    for (double v : levels_) DAS_CHECK(v >= 0);
  }
  double value_at(SimTime t) const override {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
    return levels_[static_cast<std::size_t>(it - boundaries_.begin())];
  }
  double max_value() const override {
    return *std::max_element(levels_.begin(), levels_.end());
  }
  std::string describe() const override {
    return "step(" + std::to_string(levels_.size()) + " levels)";
  }

 private:
  std::vector<SimTime> boundaries_;
  std::vector<double> levels_;
};

}  // namespace

RatePtr make_constant_rate(double value) { return std::make_shared<ConstantRate>(value); }

RatePtr make_sinusoidal_rate(double base, double amplitude, Duration period) {
  return std::make_shared<SinusoidalRate>(base, amplitude, period);
}

RatePtr make_step_rate(std::vector<SimTime> boundaries, std::vector<double> levels) {
  return std::make_shared<StepRate>(std::move(boundaries), std::move(levels));
}

RatePtr make_markov_two_state(double high, double low, Duration mean_dwell_high,
                              Duration mean_dwell_low, SimTime horizon,
                              std::uint64_t seed) {
  DAS_CHECK(high >= low);
  DAS_CHECK(low >= 0);
  DAS_CHECK(mean_dwell_high > 0);
  DAS_CHECK(mean_dwell_low > 0);
  DAS_CHECK(horizon > 0);
  // Pre-sample alternating dwell intervals into a step schedule.
  Rng rng{seed};
  std::vector<SimTime> boundaries;
  std::vector<double> levels;
  bool in_high = true;
  SimTime t = 0;
  levels.push_back(high);
  while (t < horizon) {
    t += rng.exponential(in_high ? mean_dwell_high : mean_dwell_low);
    in_high = !in_high;
    boundaries.push_back(t);
    levels.push_back(in_high ? high : low);
  }
  return make_step_rate(std::move(boundaries), std::move(levels));
}

}  // namespace das::workload
