// Textual distribution specs: "geometric:0.125:128" -> IntDistPtr.
//
// Lets tools and scripts describe workloads on a command line; the grammar
// is `family:arg:arg...` with arguments in the same order as the factory
// functions in common/distributions.hpp.
//
//   Int families:   fixed:K | uniform:LO:HI | geometric:P:CAP |
//                   zipf:N:THETA | bimodal:SMALL:LARGE:P_LARGE
//   Real families:  constant:V | uniform:LO:HI | exponential:MEAN |
//                   lognormal:MEAN:SIGMA | bimodal:SMALL:LARGE:P_LARGE |
//                   gpareto:LOC:SCALE:SHAPE:CAP
//
// Parsers throw std::logic_error with a precise message on malformed specs —
// a typo must never silently run a different experiment.
#pragma once

#include <string>

#include "common/distributions.hpp"

namespace das::workload {

/// Parses an integer-distribution spec (multiget fan-outs etc.).
IntDistPtr parse_int_dist(const std::string& spec);

/// Parses a real-distribution spec (value sizes etc.).
RealDistPtr parse_real_dist(const std::string& spec);

}  // namespace das::workload
