// Multiget request generation.
//
// An end-user request asks for `k` distinct keys; `k` is drawn from a
// configurable fan-out distribution and keys from a Zipf popularity law over
// the keyspace. This mirrors the Rein (EuroSys'17) methodology the paper
// evaluates against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace das::workload {

/// One generated request: the distinct keys to fetch.
struct MultigetSpec {
  std::vector<KeyId> keys;
};

class MultigetGenerator {
 public:
  struct Config {
    /// Total number of keys in the store.
    std::uint64_t key_universe = 0;
    /// Zipf skew of key popularity; 0 = uniform.
    double zipf_theta = 0.0;
    /// Number of keys per request (>= 1); clamped to the universe size.
    IntDistPtr fanout;
    /// Permute popularity ranks to keys so that hot keys scatter across the
    /// keyspace (and hence across servers) instead of clustering at low ids.
    std::uint64_t rank_permutation_seed = 0x9E3779B9;
  };

  explicit MultigetGenerator(Config config);

  /// Draws one request with distinct keys.
  MultigetSpec generate(Rng& rng) const;

  /// Draws a single key from the popularity law (write workloads).
  KeyId sample_key(Rng& rng) const { return key_for_rank(zipf_.sample(rng)); }

  double mean_fanout() const { return config_.fanout->mean(); }
  std::uint64_t key_universe() const { return config_.key_universe; }
  std::string describe() const;

  /// Key id occupying popularity rank `rank` (0 = hottest); exposed so load
  /// calibration can compute exact per-server demand shares. A true
  /// bijection: every key has exactly one rank.
  KeyId key_for_rank(std::uint64_t rank) const;
  /// P(single drawn key has popularity rank `rank`).
  double rank_pmf(std::uint64_t rank) const { return zipf_.pmf(rank); }

 private:
  Config config_;
  ZipfGenerator zipf_;
  /// rank -> key permutation (Fisher-Yates from rank_permutation_seed), so
  /// hot keys scatter uniformly over the keyspace and hence over servers.
  std::vector<KeyId> rank_to_key_;
};

/// A recorded request stream: arrival times plus key sets. Traces decouple
/// workload generation from simulation (every policy replays the identical
/// stream — paired comparison) and serialise to a plain text format.
struct TraceRequest {
  SimTime arrival = 0;
  std::vector<KeyId> keys;
};

struct Trace {
  std::vector<TraceRequest> requests;

  /// Generates `count` requests with the given interarrival process.
  static Trace generate(const MultigetGenerator& gen, double arrival_rate,
                        std::size_t count, Rng& rng);

  /// Plain-text round trip: one line per request, "arrival k key...".
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// Total key accesses across all requests.
  std::size_t total_operations() const;
};

}  // namespace das::workload
