// Multiget request generation.
//
// An end-user request asks for `k` distinct keys; `k` is drawn from a
// configurable fan-out distribution and keys from a Zipf popularity law over
// the keyspace. This mirrors the Rein (EuroSys'17) methodology the paper
// evaluates against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace das::workload {

/// One generated request: the distinct keys to fetch.
struct MultigetSpec {
  std::vector<KeyId> keys;
};

/// A hot-key storm: inside [start, end) each key draw lands on a small
/// pre-sampled hot set with probability `share` (before falling back to the
/// stationary popularity law). The hot set is fixed key ids drawn from
/// `seed` at construction — specific keys go viral, independent of any rank
/// rotation happening underneath.
struct StormWindow {
  SimTime start = 0;
  SimTime end = 0;
  /// Number of distinct keys in the storm hot set (>= 1).
  std::uint64_t keys = 1;
  /// Probability a single key draw comes from the hot set, in [0, 1].
  double share = 0.0;
  /// Seeds the selection of the hot set.
  std::uint64_t seed = 1;
};

/// Time-varying popularity: the rank -> key mapping rotates by
/// `rotate_stride` ranks every `rotate_period_us`, plus optional storm
/// windows. Disabled (all defaults) leaves the generator stationary and
/// bit-identical to the pre-drift implementation.
struct DriftOptions {
  /// Epoch length; 0 disables rotation.
  Duration rotate_period_us = 0;
  /// Ranks the mapping shifts per epoch (effective rank = (rank +
  /// epoch * stride) % universe).
  std::uint64_t rotate_stride = 1;
  std::vector<StormWindow> storms;

  [[nodiscard]] bool enabled() const {
    return rotate_period_us > 0 || !storms.empty();
  }
};

class MultigetGenerator {
 public:
  struct Config {
    /// Total number of keys in the store.
    std::uint64_t key_universe = 0;
    /// Zipf skew of key popularity; 0 = uniform.
    double zipf_theta = 0.0;
    /// Number of keys per request (>= 1); clamped to the universe size.
    IntDistPtr fanout;
    /// Permute popularity ranks to keys so that hot keys scatter across the
    /// keyspace (and hence across servers) instead of clustering at low ids.
    std::uint64_t rank_permutation_seed = 0x9E3779B9;
    /// Offset added to every produced key id; a tenant owning the keyspace
    /// slice [key_base, key_base + key_universe) generates only its own keys.
    std::uint64_t key_base = 0;
    /// Time-varying popularity (rotation + storms); default stationary.
    DriftOptions drift;
  };

  explicit MultigetGenerator(Config config);

  /// Draws one request with distinct keys, at simulation time `now` (the
  /// time only matters when drift is configured).
  MultigetSpec generate(Rng& rng, SimTime now) const;
  MultigetSpec generate(Rng& rng) const { return generate(rng, 0); }

  /// Draws a single key from the popularity law (write workloads).
  KeyId sample_key(Rng& rng, SimTime now) const;
  KeyId sample_key(Rng& rng) const { return sample_key(rng, 0); }

  double mean_fanout() const { return config_.fanout->mean(); }
  std::uint64_t key_universe() const { return config_.key_universe; }
  std::uint64_t key_base() const { return config_.key_base; }
  const DriftOptions& drift() const { return config_.drift; }
  std::string describe() const;

  /// Key id occupying popularity rank `rank` (0 = hottest) at epoch 0;
  /// exposed so load calibration can compute exact per-server demand shares.
  /// A true bijection: every key has exactly one rank.
  KeyId key_for_rank(std::uint64_t rank) const;
  /// Same, at simulation time `now` (rotation applied).
  KeyId key_for_rank_at(std::uint64_t rank, SimTime now) const {
    return key_for_rank(effective_rank(rank, now));
  }
  /// P(single drawn key has popularity rank `rank`).
  double rank_pmf(std::uint64_t rank) const { return zipf_.pmf(rank); }

  /// Rotation epoch active at `now` (0 when rotation is disabled).
  std::uint64_t epoch_at(SimTime now) const;
  /// Rank after applying the rotation active at `now`.
  std::uint64_t effective_rank(std::uint64_t rank, SimTime now) const;
  /// Index into drift().storms of the window covering `now`, or npos. When
  /// windows overlap the earliest-listed one wins.
  static constexpr std::size_t kNoStorm = static_cast<std::size_t>(-1);
  std::size_t active_storm(SimTime now) const;
  /// The pre-sampled hot set of storm `index` (final key ids, key_base
  /// applied).
  const std::vector<KeyId>& storm_keys(std::size_t index) const;

 private:
  Config config_;
  ZipfGenerator zipf_;
  /// rank -> key permutation (Fisher-Yates from rank_permutation_seed), so
  /// hot keys scatter uniformly over the keyspace and hence over servers.
  std::vector<KeyId> rank_to_key_;
  /// Per-storm pre-sampled hot sets (final key ids).
  std::vector<std::vector<KeyId>> storm_sets_;
};

/// A recorded request stream: arrival times plus key sets. Traces decouple
/// workload generation from simulation (every policy replays the identical
/// stream — paired comparison) and serialise to a plain text format.
struct TraceRequest {
  SimTime arrival = 0;
  std::vector<KeyId> keys;
};

struct Trace {
  std::vector<TraceRequest> requests;

  /// Generates `count` requests with the given interarrival process.
  static Trace generate(const MultigetGenerator& gen, double arrival_rate,
                        std::size_t count, Rng& rng);

  /// Plain-text round trip: one line per request, "arrival k key...".
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// Total key accesses across all requests.
  std::size_t total_operations() const;
};

}  // namespace das::workload
