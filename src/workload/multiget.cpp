#include "workload/multiget.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "store/hash_table.hpp"

namespace das::workload {

MultigetGenerator::MultigetGenerator(Config config)
    : config_(std::move(config)),
      zipf_(config_.key_universe == 0 ? 1 : config_.key_universe, config_.zipf_theta) {
  DAS_CHECK(config_.key_universe >= 1);
  DAS_CHECK(config_.fanout != nullptr);
  if (config_.drift.rotate_period_us > 0) {
    DAS_CHECK_MSG(config_.drift.rotate_stride >= 1,
                  "drift rotate_stride must be >= 1");
  }
  rank_to_key_.resize(config_.key_universe);
  for (std::uint64_t k = 0; k < config_.key_universe; ++k) rank_to_key_[k] = k;
  Rng perm_rng{config_.rank_permutation_seed};
  for (std::uint64_t i = config_.key_universe; i > 1; --i) {
    const std::uint64_t j = perm_rng.next_below(i);
    std::swap(rank_to_key_[i - 1], rank_to_key_[j]);
  }
  storm_sets_.reserve(config_.drift.storms.size());
  for (const StormWindow& storm : config_.drift.storms) {
    DAS_CHECK_MSG(storm.end > storm.start, "storm window must have end > start");
    DAS_CHECK_MSG(storm.share >= 0 && storm.share <= 1,
                  "storm share must be in [0, 1]");
    DAS_CHECK_MSG(storm.keys >= 1 && storm.keys <= config_.key_universe,
                  "storm hot-set size must be in [1, key_universe]");
    // Distinct hot keys drawn uniformly from the universe: a storm makes
    // previously unremarkable keys hot, so the set ignores the Zipf law.
    Rng storm_rng{storm.seed};
    FlatSet<KeyId> seen;  // membership only, never iterated
    std::vector<KeyId> set;
    set.reserve(static_cast<std::size_t>(storm.keys));
    while (set.size() < storm.keys) {
      const KeyId key = config_.key_base + storm_rng.next_below(config_.key_universe);
      if (seen.insert(key)) set.push_back(key);
    }
    storm_sets_.push_back(std::move(set));
  }
}

KeyId MultigetGenerator::key_for_rank(std::uint64_t rank) const {
  DAS_CHECK(rank < config_.key_universe);
  return config_.key_base + rank_to_key_[rank];
}

std::uint64_t MultigetGenerator::epoch_at(SimTime now) const {
  if (config_.drift.rotate_period_us <= 0) return 0;
  return static_cast<std::uint64_t>(now / config_.drift.rotate_period_us);
}

std::uint64_t MultigetGenerator::effective_rank(std::uint64_t rank,
                                                SimTime now) const {
  const std::uint64_t epoch = epoch_at(now);
  if (epoch == 0) return rank;
  const std::uint64_t shift =
      (epoch % config_.key_universe) * (config_.drift.rotate_stride % config_.key_universe);
  return (rank + shift) % config_.key_universe;
}

std::size_t MultigetGenerator::active_storm(SimTime now) const {
  for (std::size_t i = 0; i < config_.drift.storms.size(); ++i) {
    const StormWindow& storm = config_.drift.storms[i];
    if (now >= storm.start && now < storm.end && storm.share > 0) return i;
  }
  return kNoStorm;
}

const std::vector<KeyId>& MultigetGenerator::storm_keys(std::size_t index) const {
  DAS_CHECK(index < storm_sets_.size());
  return storm_sets_[index];
}

KeyId MultigetGenerator::sample_key(Rng& rng, SimTime now) const {
  const std::size_t storm = active_storm(now);
  if (storm != kNoStorm && rng.chance(config_.drift.storms[storm].share)) {
    const auto& set = storm_sets_[storm];
    return set[static_cast<std::size_t>(rng.next_below(set.size()))];
  }
  return key_for_rank(effective_rank(zipf_.sample(rng), now));
}

MultigetSpec MultigetGenerator::generate(Rng& rng, SimTime now) const {
  const std::uint64_t want64 =
      std::min<std::uint64_t>(config_.fanout->sample(rng), config_.key_universe);
  const auto want = static_cast<std::size_t>(want64);
  MultigetSpec spec;
  spec.keys.reserve(want);
  FlatSet<KeyId> seen;  // membership only, never iterated
  seen.reserve(want * 2);
  // Rejection-sample distinct keys; bounded because want <= universe. After a
  // generous number of misses (heavy skew + large fan-out), fall back to
  // scanning ranks in popularity order, which always terminates.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 64 * want + 64;
  while (spec.keys.size() < want && attempts < max_attempts) {
    ++attempts;
    const KeyId key = sample_key(rng, now);
    if (seen.insert(key)) spec.keys.push_back(key);
  }
  for (std::uint64_t rank = 0; spec.keys.size() < want; ++rank) {
    DAS_CHECK(rank < config_.key_universe);
    const KeyId key = key_for_rank_at(rank, now);
    if (seen.insert(key)) spec.keys.push_back(key);
  }
  return spec;
}

std::string MultigetGenerator::describe() const {
  std::ostringstream os;
  os << "multiget(universe=" << config_.key_universe << ", theta=" << config_.zipf_theta
     << ", fanout=" << config_.fanout->describe();
  if (config_.key_base != 0) os << ", base=" << config_.key_base;
  if (config_.drift.rotate_period_us > 0) {
    os << ", rotate=" << config_.drift.rotate_period_us << "us/"
       << config_.drift.rotate_stride;
  }
  if (!config_.drift.storms.empty()) os << ", storms=" << config_.drift.storms.size();
  os << ")";
  return os.str();
}

Trace Trace::generate(const MultigetGenerator& gen, double arrival_rate,
                      std::size_t count, Rng& rng) {
  DAS_CHECK(arrival_rate > 0);
  Trace trace;
  trace.requests.reserve(count);
  SimTime t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / arrival_rate);
    TraceRequest req;
    req.arrival = t;
    req.keys = gen.generate(rng).keys;
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open trace file for writing: " + path);
  out.precision(17);
  for (const auto& req : requests) {
    out << req.arrival << ' ' << req.keys.size();
    for (KeyId k : req.keys) out << ' ' << k;
    out << '\n';
  }
  DAS_CHECK_MSG(out.good(), "short write to trace file: " + path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in{path};
  DAS_CHECK_MSG(in.good(), "cannot open trace file: " + path);
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    TraceRequest req;
    std::size_t n = 0;
    ls >> req.arrival >> n;
    DAS_CHECK_MSG(!ls.fail(), "malformed trace line: " + line);
    req.keys.resize(n);
    for (auto& k : req.keys) ls >> k;
    DAS_CHECK_MSG(!ls.fail(), "truncated trace line: " + line);
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

std::size_t Trace::total_operations() const {
  std::size_t total = 0;
  for (const auto& req : requests) total += req.keys.size();
  return total;
}

}  // namespace das::workload
