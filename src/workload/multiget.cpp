#include "workload/multiget.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "store/hash_table.hpp"

namespace das::workload {

MultigetGenerator::MultigetGenerator(Config config)
    : config_(std::move(config)),
      zipf_(config_.key_universe == 0 ? 1 : config_.key_universe, config_.zipf_theta) {
  DAS_CHECK(config_.key_universe >= 1);
  DAS_CHECK(config_.fanout != nullptr);
  rank_to_key_.resize(config_.key_universe);
  for (std::uint64_t k = 0; k < config_.key_universe; ++k) rank_to_key_[k] = k;
  Rng perm_rng{config_.rank_permutation_seed};
  for (std::uint64_t i = config_.key_universe; i > 1; --i) {
    const std::uint64_t j = perm_rng.next_below(i);
    std::swap(rank_to_key_[i - 1], rank_to_key_[j]);
  }
}

KeyId MultigetGenerator::key_for_rank(std::uint64_t rank) const {
  DAS_CHECK(rank < config_.key_universe);
  return rank_to_key_[rank];
}

MultigetSpec MultigetGenerator::generate(Rng& rng) const {
  const std::uint64_t want64 =
      std::min<std::uint64_t>(config_.fanout->sample(rng), config_.key_universe);
  const auto want = static_cast<std::size_t>(want64);
  MultigetSpec spec;
  spec.keys.reserve(want);
  FlatSet<KeyId> seen;  // membership only, never iterated
  seen.reserve(want * 2);
  // Rejection-sample distinct keys; bounded because want <= universe. After a
  // generous number of misses (heavy skew + large fan-out), fall back to
  // scanning ranks in popularity order, which always terminates.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 64 * want + 64;
  while (spec.keys.size() < want && attempts < max_attempts) {
    ++attempts;
    const KeyId key = key_for_rank(zipf_.sample(rng));
    if (seen.insert(key)) spec.keys.push_back(key);
  }
  for (std::uint64_t rank = 0; spec.keys.size() < want; ++rank) {
    DAS_CHECK(rank < config_.key_universe);
    const KeyId key = key_for_rank(rank);
    if (seen.insert(key)) spec.keys.push_back(key);
  }
  return spec;
}

std::string MultigetGenerator::describe() const {
  std::ostringstream os;
  os << "multiget(universe=" << config_.key_universe << ", theta=" << config_.zipf_theta
     << ", fanout=" << config_.fanout->describe() << ")";
  return os.str();
}

Trace Trace::generate(const MultigetGenerator& gen, double arrival_rate,
                      std::size_t count, Rng& rng) {
  DAS_CHECK(arrival_rate > 0);
  Trace trace;
  trace.requests.reserve(count);
  SimTime t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / arrival_rate);
    TraceRequest req;
    req.arrival = t;
    req.keys = gen.generate(rng).keys;
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open trace file for writing: " + path);
  out.precision(17);
  for (const auto& req : requests) {
    out << req.arrival << ' ' << req.keys.size();
    for (KeyId k : req.keys) out << ' ' << k;
    out << '\n';
  }
  DAS_CHECK_MSG(out.good(), "short write to trace file: " + path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in{path};
  DAS_CHECK_MSG(in.good(), "cannot open trace file: " + path);
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    TraceRequest req;
    std::size_t n = 0;
    ls >> req.arrival >> n;
    DAS_CHECK_MSG(!ls.fail(), "malformed trace line: " + line);
    req.keys.resize(n);
    for (auto& k : req.keys) ls >> k;
    DAS_CHECK_MSG(!ls.fail(), "truncated trace line: " + line);
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

std::size_t Trace::total_operations() const {
  std::size_t total = 0;
  for (const auto& req : requests) total += req.keys.size();
  return total;
}

}  // namespace das::workload
