// Deterministic time-varying intensity profiles.
//
// One abstraction serves two roles: modulating open-loop arrival rates
// (time-varying *load*) and modulating server service capacity (time-varying
// *performance*) — the two axes the paper's "adaptive" claim targets. A
// profile is a pure function of simulated time so replays are reproducible;
// stochastic profiles (Markov-modulated) pre-sample their trajectory from a
// seed at construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace das::workload {

class RateFunction {
 public:
  virtual ~RateFunction() = default;
  /// Instantaneous multiplier (or absolute rate, caller's convention) at `t`.
  virtual double value_at(SimTime t) const = 0;
  /// Upper bound over all t; thinning samplers need it.
  virtual double max_value() const = 0;
  virtual std::string describe() const = 0;
};

using RatePtr = std::shared_ptr<const RateFunction>;

/// Constant profile.
RatePtr make_constant_rate(double value);

/// base + amplitude * sin(2*pi*t/period). Requires amplitude <= base so the
/// profile stays non-negative.
RatePtr make_sinusoidal_rate(double base, double amplitude, Duration period);

/// Piecewise-constant schedule: value_at(t) is levels[i] for t in
/// [boundaries[i-1], boundaries[i]); the last level extends forever.
RatePtr make_step_rate(std::vector<SimTime> boundaries, std::vector<double> levels);

/// Two-state Markov-modulated profile alternating between `high` and `low`
/// with exponentially distributed dwell times; the trajectory is pre-sampled
/// up to `horizon` from `seed` and holds its last state beyond it.
RatePtr make_markov_two_state(double high, double low, Duration mean_dwell_high,
                              Duration mean_dwell_low, SimTime horizon,
                              std::uint64_t seed);

}  // namespace das::workload
