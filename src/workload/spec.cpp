#include "workload/spec.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace das::workload {

namespace {

std::vector<std::string> split(const std::string& spec) {
  std::vector<std::string> parts;
  std::istringstream is{spec};
  std::string part;
  while (std::getline(is, part, ':')) parts.push_back(part);
  // getline drops a trailing empty field ("fixed:" splits to one part);
  // reinstate it so arity checks see the dangling colon.
  if (!spec.empty() && spec.back() == ':') parts.emplace_back();
  return parts;
}

double to_double(const std::string& spec, const std::string& field) {
  if (field.empty()) {
    throw std::logic_error("empty argument in distribution spec '" + spec + "'");
  }
  // std::stod skips leading whitespace and accepts "nan"/"inf"; a spec is a
  // machine-written token, so both indicate a typo and must be rejected.
  if (field.find_first_of(" \t\n\r\f\v") != std::string::npos) {
    throw std::logic_error("whitespace in argument '" + field +
                           "' of distribution spec '" + spec + "'");
  }
  double v = 0;
  try {
    std::size_t pos = 0;
    v = std::stod(field, &pos);
    DAS_CHECK(pos == field.size());
  } catch (...) {
    throw std::logic_error("bad number '" + field + "' in distribution spec '" +
                           spec + "'");
  }
  if (!std::isfinite(v)) {
    throw std::logic_error("non-finite number '" + field +
                           "' in distribution spec '" + spec + "'");
  }
  return v;
}

std::uint32_t to_u32(const std::string& spec, const std::string& field) {
  const double v = to_double(spec, field);
  DAS_CHECK_MSG(v >= 0 && v == static_cast<std::uint32_t>(v),
                "expected non-negative integer in spec '" + spec + "'");
  return static_cast<std::uint32_t>(v);
}

[[noreturn]] void bad_arity(const std::string& spec, const char* usage) {
  throw std::logic_error("malformed distribution spec '" + spec + "'; expected " +
                         usage);
}

}  // namespace

IntDistPtr parse_int_dist(const std::string& spec) {
  const auto parts = split(spec);
  DAS_CHECK_MSG(!parts.empty(), "empty distribution spec");
  const std::string& family = parts[0];
  if (family == "fixed") {
    if (parts.size() != 2) bad_arity(spec, "fixed:K");
    return make_fixed_int(to_u32(spec, parts[1]));
  }
  if (family == "uniform") {
    if (parts.size() != 3) bad_arity(spec, "uniform:LO:HI");
    return make_uniform_int(to_u32(spec, parts[1]), to_u32(spec, parts[2]));
  }
  if (family == "geometric") {
    if (parts.size() != 3) bad_arity(spec, "geometric:P:CAP");
    return make_geometric(to_double(spec, parts[1]), to_u32(spec, parts[2]));
  }
  if (family == "zipf") {
    if (parts.size() != 3) bad_arity(spec, "zipf:N:THETA");
    return make_zipf_int(to_u32(spec, parts[1]), to_double(spec, parts[2]));
  }
  if (family == "bimodal") {
    if (parts.size() != 4) bad_arity(spec, "bimodal:SMALL:LARGE:P_LARGE");
    return make_bimodal(to_u32(spec, parts[1]), to_u32(spec, parts[2]),
                        to_double(spec, parts[3]));
  }
  throw std::logic_error("unknown int distribution family '" + family +
                         "' in spec '" + spec + "'");
}

RealDistPtr parse_real_dist(const std::string& spec) {
  const auto parts = split(spec);
  DAS_CHECK_MSG(!parts.empty(), "empty distribution spec");
  const std::string& family = parts[0];
  if (family == "constant") {
    if (parts.size() != 2) bad_arity(spec, "constant:V");
    return make_constant(to_double(spec, parts[1]));
  }
  if (family == "uniform") {
    if (parts.size() != 3) bad_arity(spec, "uniform:LO:HI");
    return make_uniform_real(to_double(spec, parts[1]), to_double(spec, parts[2]));
  }
  if (family == "exponential") {
    if (parts.size() != 2) bad_arity(spec, "exponential:MEAN");
    return make_exponential(to_double(spec, parts[1]));
  }
  if (family == "lognormal") {
    if (parts.size() != 3) bad_arity(spec, "lognormal:MEAN:SIGMA");
    return make_lognormal_mean(to_double(spec, parts[1]), to_double(spec, parts[2]));
  }
  if (family == "bimodal") {
    if (parts.size() != 4) bad_arity(spec, "bimodal:SMALL:LARGE:P_LARGE");
    return make_bimodal_real(to_double(spec, parts[1]), to_double(spec, parts[2]),
                             to_double(spec, parts[3]));
  }
  if (family == "gpareto") {
    if (parts.size() != 5) bad_arity(spec, "gpareto:LOC:SCALE:SHAPE:CAP");
    return make_generalized_pareto(to_double(spec, parts[1]),
                                   to_double(spec, parts[2]),
                                   to_double(spec, parts[3]),
                                   to_double(spec, parts[4]));
  }
  throw std::logic_error("unknown real distribution family '" + family +
                         "' in spec '" + spec + "'");
}

}  // namespace das::workload
