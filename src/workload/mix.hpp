// Operation mixes: what fraction of requests read, update, or
// read-modify-write.
//
// A mix is a categorical distribution over {read, update, rmw} sampled once
// per request. Reads are multiget fan-outs, updates are write-all PUTs, and
// RMW is modeled as a write-all round whose per-replica demand includes both
// the read of the old value and the write of the new one (YCSB workload F's
// read-modify-write).
//
// Spec grammar (same colon style as distribution specs):
//   mix:READ:UPDATE:RMW   explicit fractions, must sum to 1 (±1e-9)
//   ycsb-a                50% read / 50% update
//   ycsb-b                95% read /  5% update
//   ycsb-c               100% read
//   ycsb-f                50% read / 50% read-modify-write
//
// Parse errors throw std::logic_error with a precise message.
#pragma once

#include <string>

#include "common/rng.hpp"

namespace das::workload {

/// Per-request operation kind drawn from an OpMix.
enum class OpKind : std::uint8_t { kRead, kUpdate, kRmw };

/// A categorical distribution over operation kinds.
struct OpMix {
  double read = 1.0;
  double update = 0.0;
  double rmw = 0.0;

  /// True when every request is a plain read (the legacy default).
  [[nodiscard]] bool read_only() const { return update <= 0.0 && rmw <= 0.0; }

  /// Draws one operation kind. Consumes exactly one uniform when the mix has
  /// any write component and zero draws when read-only, so read-only mixes
  /// stay bit-identical to the pre-mix workload path.
  [[nodiscard]] OpKind sample(Rng& rng) const;

  /// Human-readable description, e.g. "mix:0.95:0.05:0".
  [[nodiscard]] std::string describe() const;
};

/// Parses a mix spec ("ycsb-a" | "mix:R:U:M"). Throws std::logic_error on
/// malformed specs, unknown names, fractions outside [0,1], or fractions not
/// summing to 1.
OpMix parse_mix(const std::string& spec);

}  // namespace das::workload
