#include "workload/replay.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace das::workload {

namespace {

[[noreturn]] void bad_line(const std::string& path, std::size_t line_no,
                           const std::string& why) {
  throw std::logic_error("replay trace " + path + ":" +
                         std::to_string(line_no) + ": " + why);
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double parse_number(const std::string& path, std::size_t line_no,
                    const std::string& field, const char* what) {
  if (field.empty()) bad_line(path, line_no, std::string("empty ") + what);
  double v = 0;
  try {
    std::size_t pos = 0;
    v = std::stod(field, &pos);
    DAS_CHECK(pos == field.size());
  } catch (...) {
    bad_line(path, line_no, std::string("bad ") + what + " '" + field + "'");
  }
  if (!std::isfinite(v)) {
    bad_line(path, line_no, std::string("non-finite ") + what + " '" + field + "'");
  }
  return v;
}

ReplayOp parse_op(const std::string& path, std::size_t line_no,
                  const std::string& field) {
  if (field == "read") return ReplayOp::kRead;
  if (field == "write") return ReplayOp::kWrite;
  bad_line(path, line_no, "unknown op '" + field + "' (expected read|write)");
}

ReplayRecord make_record(const std::string& path, std::size_t line_no,
                         const std::string& ts, const std::string& op,
                         const std::string& key, const std::string& size) {
  ReplayRecord rec;
  rec.timestamp_us = parse_number(path, line_no, ts, "timestamp_us");
  if (rec.timestamp_us < 0) bad_line(path, line_no, "negative timestamp_us");
  rec.op = parse_op(path, line_no, op);
  const double key_v = parse_number(path, line_no, key, "key");
  if (key_v < 0 || key_v != std::floor(key_v)) {
    bad_line(path, line_no, "key '" + key + "' is not a non-negative integer");
  }
  rec.key = static_cast<KeyId>(key_v);
  const double size_v = parse_number(path, line_no, size, "size_bytes");
  if (size_v < 0 || size_v != std::floor(size_v)) {
    bad_line(path, line_no,
             "size_bytes '" + size + "' is not a non-negative integer");
  }
  rec.size_bytes = static_cast<Bytes>(size_v);
  return rec;
}

void check_monotone(const std::string& path, std::size_t line_no,
                    const ReplayTrace& trace, const ReplayRecord& rec) {
  if (!trace.records.empty() && rec.timestamp_us < trace.records.back().timestamp_us) {
    bad_line(path, line_no, "timestamps must be non-decreasing");
  }
}

std::string strip_ws(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Extracts the value token for `"name":` from a one-line JSON object.
/// Handles numbers and quoted strings — the full trace grammar, nothing more.
std::string json_field(const std::string& path, std::size_t line_no,
                       const std::string& line, const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) bad_line(path, line_no, "missing field " + needle);
  std::size_t p = at + needle.size();
  while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p])) != 0) ++p;
  if (p >= line.size() || line[p] != ':') {
    bad_line(path, line_no, "expected ':' after " + needle);
  }
  ++p;
  while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p])) != 0) ++p;
  if (p >= line.size()) bad_line(path, line_no, "missing value for " + needle);
  if (line[p] == '"') {
    const std::size_t close = line.find('"', p + 1);
    if (close == std::string::npos) {
      bad_line(path, line_no, "unterminated string for " + needle);
    }
    return line.substr(p + 1, close - p - 1);
  }
  std::size_t end = p;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return strip_ws(line.substr(p, end - p));
}

}  // namespace

ReplayTrace ReplayTrace::load(const std::string& path) {
  if (has_suffix(path, ".csv")) return load_csv(path);
  if (has_suffix(path, ".jsonl")) return load_jsonl(path);
  throw std::logic_error("replay trace '" + path +
                         "' has unknown extension (expected .csv or .jsonl)");
}

ReplayTrace ReplayTrace::load_csv(const std::string& path) {
  std::ifstream in{path};
  DAS_CHECK_MSG(in.good(), "cannot open replay trace: " + path);
  ReplayTrace trace;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = strip_ws(line);
    if (trimmed.empty()) continue;
    if (!saw_header) {
      if (trimmed != "timestamp_us,op,key,size_bytes") {
        bad_line(path, line_no,
                 "expected header 'timestamp_us,op,key,size_bytes', got '" +
                     trimmed + "'");
      }
      saw_header = true;
      continue;
    }
    std::string fields[4];
    std::size_t at = 0;
    for (int i = 0; i < 4; ++i) {
      const std::size_t comma = trimmed.find(',', at);
      const bool last = (i == 3);
      if ((last && comma != std::string::npos) ||
          (!last && comma == std::string::npos)) {
        bad_line(path, line_no, "expected 4 comma-separated fields");
      }
      fields[i] = trimmed.substr(at, last ? std::string::npos : comma - at);
      at = (comma == std::string::npos) ? trimmed.size() : comma + 1;
    }
    const ReplayRecord rec =
        make_record(path, line_no, fields[0], fields[1], fields[2], fields[3]);
    check_monotone(path, line_no, trace, rec);
    trace.records.push_back(rec);
  }
  DAS_CHECK_MSG(saw_header, "replay trace " + path + " is empty (no header)");
  return trace;
}

ReplayTrace ReplayTrace::load_jsonl(const std::string& path) {
  std::ifstream in{path};
  DAS_CHECK_MSG(in.good(), "cannot open replay trace: " + path);
  ReplayTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = strip_ws(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() != '{' || trimmed.back() != '}') {
      bad_line(path, line_no, "expected one JSON object per line");
    }
    const ReplayRecord rec = make_record(
        path, line_no, json_field(path, line_no, trimmed, "timestamp_us"),
        json_field(path, line_no, trimmed, "op"),
        json_field(path, line_no, trimmed, "key"),
        json_field(path, line_no, trimmed, "size_bytes"));
    check_monotone(path, line_no, trace, rec);
    trace.records.push_back(rec);
  }
  return trace;
}

void ReplayTrace::save(const std::string& path) const {
  if (has_suffix(path, ".csv")) {
    save_csv(path);
    return;
  }
  if (has_suffix(path, ".jsonl")) {
    save_jsonl(path);
    return;
  }
  throw std::logic_error("replay trace '" + path +
                         "' has unknown extension (expected .csv or .jsonl)");
}

void ReplayTrace::save_csv(const std::string& path) const {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open replay trace for writing: " + path);
  out.precision(17);
  out << "timestamp_us,op,key,size_bytes\n";
  for (const ReplayRecord& rec : records) {
    out << rec.timestamp_us << ','
        << (rec.op == ReplayOp::kRead ? "read" : "write") << ',' << rec.key
        << ',' << rec.size_bytes << '\n';
  }
  DAS_CHECK_MSG(out.good(), "short write to replay trace: " + path);
}

void ReplayTrace::save_jsonl(const std::string& path) const {
  std::ofstream out{path};
  DAS_CHECK_MSG(out.good(), "cannot open replay trace for writing: " + path);
  out.precision(17);
  for (const ReplayRecord& rec : records) {
    out << "{\"timestamp_us\": " << rec.timestamp_us << ", \"op\": \""
        << (rec.op == ReplayOp::kRead ? "read" : "write")
        << "\", \"key\": " << rec.key << ", \"size_bytes\": " << rec.size_bytes
        << "}\n";
  }
  DAS_CHECK_MSG(out.good(), "short write to replay trace: " + path);
}

KeyId ReplayTrace::max_key() const {
  KeyId max = 0;
  for (const ReplayRecord& rec : records) max = std::max(max, rec.key);
  return max;
}

}  // namespace das::workload
