// Deterministic fault-injection plans.
//
// A FaultPlan is a scripted timeline of fault events — server crashes and
// recoveries, gray-failure slowdown windows, per-link partitions, and
// cluster-wide loss bursts — that the Cluster executes through the Simulator.
// Plans come from two sources: a human-written CLI spec (parse_fault_plan,
// grammar below) and a seeded chaos generator (make_chaos_plan). Both are
// deterministic: the same spec or the same (options, seed) pair always yields
// the same plan, so every fault experiment replays bit-identically.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace das::fault {

/// What happens at one instant of the fault timeline.
enum class FaultKind {
  kCrash,      // fail-stop: server drops queued + in-flight ops, goes dark
  kRecover,    // crashed server comes back empty and answers again
  kSlowStart,  // gray failure: server speed multiplied by `factor` (< 1)
  kSlowEnd,    // gray-failure window closes; speed factor back to 1
  kPartition,  // client->server link (both directions) drops every message
  kHeal,       // partitioned link carries traffic again
  kLossStart,  // cluster-wide loss burst: every message dropped w.p. `factor`
  kLossEnd,    // loss burst ends
};

std::string to_string(FaultKind kind);

/// Wildcard for partition/heal events that cut a server off from every
/// client at once (`partition@20ms:*-s1`).
inline constexpr ClientId kAllClients = std::numeric_limits<ClientId>::max();

/// One scripted instant. `server` addresses crash/recover/slow/partition
/// events; `client` is only meaningful for partition/heal (kAllClients =
/// every client); `factor` carries the slowdown multiplier (kSlowStart) or
/// the burst loss probability (kLossStart).
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrash;
  ServerId server = kInvalidServer;
  ClientId client = kAllClients;
  double factor = 1.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// True when the plan can destroy messages or queued work (crash,
  /// partition, or loss burst) — such plans require retransmission to keep
  /// the request accounting closed.
  bool loses_work() const;

  /// True when replaying the timeline leaves some server crashed or some
  /// link partitioned at the end — requests aimed there can never complete,
  /// so the client needs a bounded retry budget (or live replicas) to
  /// declare them failed instead of retrying forever.
  bool has_unrecovered_failure() const;

  /// Structural validation: event indices in range, factors sane, and
  /// per-target lifecycles alternate correctly (no double crash, no recover
  /// of an up server, no heal of an intact link, no nested slow or loss
  /// windows). Throws std::invalid_argument naming the offending event.
  void validate(std::uint32_t num_servers, std::uint32_t num_clients) const;
};

/// Parses the --faults CLI grammar: a comma-separated event list where each
/// token is one of
///   crash@T:sN            recover@T:sN
///   slow@T1-T2:sN:xF      (slowdown window, speed multiplied by F)
///   partition@T:cA-sB     heal@T:cA-sB      (cA may be * for all clients)
///   lossburst@T1-T2:pP    (loss burst window with drop probability P)
/// Times accept a `us` or `ms` suffix; a bare number means microseconds.
/// Throws std::invalid_argument naming the malformed token. Window forms
/// (slow, lossburst) expand to start/end event pairs.
FaultPlan parse_fault_plan(const std::string& spec);

/// Knobs for the seeded chaos generator. Counts are how many fault windows
/// of each kind to script inside [0, horizon_us); every window recovers
/// before the horizon so chaos plans always terminate under retry-forever.
struct ChaosOptions {
  double horizon_us = 0;
  std::uint32_t num_servers = 0;
  std::uint32_t num_clients = 0;
  std::uint32_t crashes = 0;
  std::uint32_t slowdowns = 0;
  std::uint32_t partitions = 0;
};

/// Deterministically scripts a random fault plan from (options, seed): crash
/// windows never overlap on the same server, slowdown factors land in
/// [0.15, 0.6], and every fault heals before options.horizon_us. The result
/// passes FaultPlan::validate for the given topology.
FaultPlan make_chaos_plan(const ChaosOptions& options, std::uint64_t seed);

}  // namespace das::fault
